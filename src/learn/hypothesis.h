#ifndef FOLEARN_LEARN_HYPOTHESIS_H_
#define FOLEARN_LEARN_HYPOTHESIS_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fo/formula.h"
#include "graph/graph.h"
#include "learn/dataset.h"
#include "mc/evaluator.h"
#include "types/type.h"

namespace folearn {

// A hypothesis h_{φ,w̄} (paper §3): a formula φ(x̄; ȳ) with k query
// variables and ℓ parameter variables, plus the parameter tuple w̄ ∈ V^ℓ.
// h_{φ,w̄}(v̄) = 1 iff G ⊨ φ(v̄; w̄).
struct Hypothesis {
  FormulaRef formula;
  std::vector<std::string> query_vars;  // x1, …, xk
  std::vector<std::string> param_vars;  // y1, …, yℓ
  std::vector<Vertex> parameters;       // w̄

  int k() const { return static_cast<int>(query_vars.size()); }
  int ell() const { return static_cast<int>(param_vars.size()); }

  // The concatenated frame x̄·ȳ — the free-variable order used when the
  // formula is compiled (mc/compiler.h).
  std::vector<std::string> AllVars() const;

  // h(v̄): evaluates φ with x̄ ↦ tuple, ȳ ↦ parameters. Compiled unless
  // options.force_interpreter is set; verdicts are identical either way.
  bool Classify(const Graph& graph, std::span<const Vertex> tuple,
                const EvalOptions& options = {}) const;
};

// err_Λ(h): the fraction of examples classified wrongly (paper §3).
// Compiles φ once and reuses the plan across all examples (per-graph
// memoization of sentence-valued subformulas included); with
// options.force_interpreter it loops Classify through the reference
// evaluator instead. Governor checkpoints fire at identical points in
// both modes.
double TrainingError(const Graph& graph, const Hypothesis& hypothesis,
                     const TrainingSet& examples,
                     const EvalOptions& options = {});

// The machine form of a hypothesis delivered by every learner in this
// library: a set Φ of accepted local types (Corollary 6: every rank-q
// query with fixed parameters is a union of local (q, r)-types of v̄w̄).
//
//   h(v̄) = 1   ⟺   ltp_{rank,radius}(G, v̄·parameters) ∈ accepted.
//
// Convertible to an explicit h_{φ,w̄} via relativised Hintikka formulas
// (quantifier rank ≤ rank + O(log radius) — the paper's (L,Q) relaxation).
struct TypeSetHypothesis {
  int k = 0;
  int rank = 0;    // q
  int radius = 0;  // r
  std::vector<Vertex> parameters;  // w̄ (vertices of the evaluation graph)
  std::shared_ptr<TypeRegistry> registry;
  std::vector<TypeId> accepted;  // Φ, sorted

  int ell() const { return static_cast<int>(parameters.size()); }

  // h(v̄): computes the local type of tuple·parameters and tests membership.
  bool Classify(const Graph& graph, std::span<const Vertex> tuple) const;

  // err_Λ(h).
  double Error(const Graph& graph, const TrainingSet& examples) const;

  // Materialises the explicit formula hypothesis (paper-facing form):
  // φ(x̄; ȳ) = ⋁_{θ ∈ Φ} θ’s relativised Hintikka formula.
  Hypothesis ToExplicit() const;
};

}  // namespace folearn

#endif  // FOLEARN_LEARN_HYPOTHESIS_H_
