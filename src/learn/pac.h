#ifndef FOLEARN_LEARN_PAC_H_
#define FOLEARN_LEARN_PAC_H_

#include <functional>
#include <memory>

#include "fo/formula.h"
#include "graph/graph.h"
#include "learn/dataset.h"
#include "learn/hypothesis.h"
#include "util/rng.h"

namespace folearn {

// The (agnostic) PAC layer (paper §3): unknown distributions D on
// V(G)^k × {0,1}, sample-complexity bounds from uniform convergence, and
// the ERM → PAC wrapper.

// An example-generating distribution.
class ExampleDistribution {
 public:
  virtual ~ExampleDistribution() = default;
  virtual LabeledExample Sample(Rng& rng) = 0;
  virtual int k() const = 0;
};

// Uniform tuples labelled by a hidden query h_{φ,w̄}, with optional label
// noise (noise 0 = the realisable case; noise > 0 = agnostic, with best
// possible generalisation error = noise_rate).
std::unique_ptr<ExampleDistribution> MakeQueryDistribution(
    const Graph& graph, FormulaRef query, std::vector<std::string> vars,
    int k, double noise_rate = 0.0);

// Draws m examples.
TrainingSet DrawSample(ExampleDistribution& distribution, int m, Rng& rng);

// Monte-Carlo estimate of the generalisation error of a classifier.
double EstimateGeneralizationError(
    const std::function<bool(std::span<const Vertex>)>& classify,
    ExampleDistribution& distribution, int samples, Rng& rng);

// Uniform-convergence sample bound for a finite hypothesis class
// (paper §3): m ≥ (2/ε²)·(ln|H| + ln(2/δ)) guarantees that with
// probability ≥ 1−δ every h ∈ H has |err_train − err_gen| ≤ ε. Takes
// ln|H| directly (it is the quantity the theory is stated in).
int64_t AgnosticSampleComplexity(double ln_hypothesis_count, double epsilon,
                                 double delta);

// ln|H_{k,ℓ,q}(G)| for the type-set hypothesis class the library actually
// searches: |H| ≤ 2^T · n^ℓ where T is the number of distinct local
// (q, r)-types realised by (k+ℓ)-tuples of G. T is estimated from
// `samples` random tuples (an underestimate converging from below).
double EstimateLnHypothesisCount(const Graph& graph, int k, int ell, int rank,
                                 int radius, int samples, Rng& rng);

// One PAC experiment: draw m training examples from the distribution, run
// `learner`, and report training and (estimated) generalisation error.
struct PacExperimentResult {
  double training_error = 0.0;
  double generalization_error = 0.0;
};
PacExperimentResult RunPacExperiment(
    const Graph& graph, ExampleDistribution& distribution, int m_train,
    int m_test,
    const std::function<TypeSetHypothesis(const TrainingSet&)>& learner,
    Rng& rng);

}  // namespace folearn

#endif  // FOLEARN_LEARN_PAC_H_
