#include "learn/hardness.h"

#include <optional>

#include <algorithm>
#include <map>

#include "fo/printer.h"
#include "fo/transform.h"
#include "graph/algorithms.h"
#include "learn/erm.h"
#include "types/hintikka.h"
#include "types/type.h"
#include "util/strings.h"

namespace folearn {

namespace {

std::string VocabularySignature(const Vocabulary& vocabulary) {
  return Join(vocabulary.names(), "\x1f");
}

}  // namespace

Hypothesis TypeErmOracle::Solve(const Graph& graph,
                                const TrainingSet& examples, int k,
                                int ell_star, int rank_star, double epsilon) {
  (void)epsilon;  // the oracle returns the exact class optimum
  FOLEARN_CHECK_GE(k, 1);
  ++calls_;
  // Canonical TypeIds across calls: share one registry per vocabulary, so
  // equal local types yield syntactically identical answer formulas — the
  // property Claim 9's monochromatic-triple search relies on.
  static thread_local std::map<std::string, std::shared_ptr<TypeRegistry>>
      registries;
  std::string signature = VocabularySignature(graph.vocabulary());
  auto& registry = registries[signature];
  if (registry == nullptr ||
      !(registry->vocabulary() == graph.vocabulary())) {
    registry = std::make_shared<TypeRegistry>(graph.vocabulary());
  }

  ErmOptions options{rank_star, -1, governor_};
  int ell = ell_star > 0 ? ell_star : relaxation_ell_;
  ErmResult result =
      ell == 0 ? TypeMajorityErm(graph, examples, {}, options, registry)
               : BruteForceErm(graph, examples, ell, options, registry);
  return result.hypothesis.ToExplicit();
}

namespace {

class Reducer {
 public:
  Reducer(ErmOracle& oracle, const ModelCheckOptions& options,
          HardnessStats* stats)
      : oracle_(oracle), options_(options), stats_(stats) {}

  bool Check(const Graph& graph, const FormulaRef& sentence, int depth) {
    if (!GovernorCheckpoint(options_.governor)) return false;
    if (stats_ != nullptr) {
      ++stats_->recursion_nodes;
      stats_->max_depth = std::max(stats_->max_depth, depth);
    }
    switch (sentence->kind()) {
      case FormulaKind::kTrue:
        return true;
      case FormulaKind::kFalse:
        return false;
      case FormulaKind::kNot:
        return !Check(graph, sentence->child(0), depth);
      case FormulaKind::kAnd:
        for (const FormulaRef& child : sentence->children()) {
          if (!Check(graph, child, depth)) return false;
        }
        return true;
      case FormulaKind::kOr:
        for (const FormulaRef& child : sentence->children()) {
          if (Check(graph, child, depth)) return true;
        }
        return false;
      case FormulaKind::kForall: {
        // ∀x ψ ≡ ¬∃x ¬ψ.
        FormulaRef dual = Formula::Exists(sentence->quantified_var(),
                                          Formula::Not(sentence->child(0)));
        return !Check(graph, dual, depth);
      }
      case FormulaKind::kExists:
        return CheckExists(graph, sentence->quantified_var(),
                           sentence->child(0), depth);
      default:
        FOLEARN_CHECK(false) << "atom with free variables is not a sentence";
        return false;
    }
  }

 private:
  // The core of Lemma 7: decide G ⊨ ∃x ψ(x) with oracle calls only.
  bool CheckExists(const Graph& graph, const std::string& var,
                   const FormulaRef& body, int depth) {
    const int n = graph.order();
    if (n == 0) return false;
    const int rank_star = body->quantifier_rank();  // q − 1

    // Pairwise separating formulas γ_{u,v} (compared as canonical strings).
    std::map<std::pair<Vertex, Vertex>, std::string> gamma;
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = u + 1; v < n; ++v) {
        if (!GovernorCheckpoint(options_.governor)) return false;
        gamma[{u, v}] = SeparatingFormulaKey(graph, u, v, rank_star);
      }
    }

    // Ramsey pruning: while a monochromatic triple exists, drop its middle
    // vertex (Claim 9 guarantees it is type-redundant).
    std::vector<Vertex> reps(n);
    for (Vertex v = 0; v < n; ++v) reps[v] = v;
    bool removed = true;
    while (removed) {
      removed = false;
      if (!GovernorCheckpoint(options_.governor)) return false;
      for (size_t i = 0; i < reps.size() && !removed; ++i) {
        for (size_t j = i + 1; j < reps.size() && !removed; ++j) {
          const std::string& gij = gamma[{reps[i], reps[j]}];
          for (size_t l = j + 1; l < reps.size(); ++l) {
            if (gamma[{reps[i], reps[l]}] == gij &&
                gamma[{reps[j], reps[l]}] == gij) {
              reps.erase(reps.begin() + j);
              removed = true;
              if (stats_ != nullptr) ++stats_->triples_removed;
              break;
            }
          }
        }
      }
    }
    if (stats_ != nullptr) {
      stats_->max_representatives =
          std::max(stats_->max_representatives, static_cast<int>(reps.size()));
    }

    // Recurse: G ⊨ ∃x ψ iff G ⊨ ψ(t) for some representative t, and ψ(t)
    // is turned into a sentence over the expansion G_t via P_t, Q_t.
    for (Vertex t : reps) {
      if (!GovernorCheckpoint(options_.governor)) return false;
      Graph expanded = graph;
      std::string pt_name = "_Pt" + std::to_string(depth);
      std::string qt_name = "_Qt" + std::to_string(depth);
      ColorId pt = expanded.AddColor(pt_name);
      ColorId qt = expanded.AddColor(qt_name);
      expanded.SetColor(t, pt);
      for (Vertex u : graph.Neighbors(t)) expanded.SetColor(u, qt);
      FormulaRef rewritten = EliminateVariableViaColors(
          body, var, pt_name, qt_name, [&](const std::string& color) {
            std::optional<ColorId> id = graph.FindColor(color);
            FOLEARN_CHECK(id.has_value())
                << "unknown colour '" << color << "' in sentence";
            return graph.HasColor(t, *id);
          });
      FOLEARN_CHECK(rewritten->free_variables().empty());
      if (Check(expanded, rewritten, depth + 1)) return true;
    }
    return false;
  }

  // Computes γ_{u,v} and returns its canonical string key.
  std::string SeparatingFormulaKey(const Graph& graph, Vertex u, Vertex v,
                                   int rank_star) {
    if (stats_ != nullptr) ++stats_->oracle_calls;
    if (!options_.use_general_case) {
      // Base case L(1,0,q) = 0: the oracle must answer without parameters.
      TrainingSet examples = {{{u}, false}, {{v}, true}};
      Hypothesis h = oracle_.Solve(graph, examples, /*k=*/1, /*ell_star=*/0,
                                   rank_star, /*epsilon=*/0.25);
      FOLEARN_CHECK(h.parameters.empty())
          << "base-case oracle returned parameters";
      return ToString(h.formula);
    }
    return ToString(GeneralCaseGamma(graph, u, v, rank_star));
  }

  // Lemma 7, general case: the oracle may use up to ℓ parameters; defeat
  // them with 2ℓ disjoint copies of G.
  FormulaRef GeneralCaseGamma(const Graph& graph, Vertex u, Vertex v,
                              int rank_star) {
    const int ell = std::max(1, options_.general_case_ell);
    const int n = graph.order();
    Graph hat = DisjointCopies(graph, 2 * ell);
    TrainingSet examples;
    for (int i = 0; i < 2 * ell; ++i) {
      examples.push_back({{u + i * n}, false});
      examples.push_back({{v + i * n}, true});
    }
    Hypothesis h = oracle_.Solve(hat, examples, /*k=*/1, /*ell_star=*/0,
                                 rank_star, /*epsilon=*/0.125);
    FOLEARN_CHECK_LE(static_cast<int>(h.parameters.size()), ell)
        << "oracle exceeded its parameter relaxation";

    // An index i is covered if a parameter lies in copy i, wrong if the
    // hypothesis misclassifies u^(i) or v^(i).
    std::vector<bool> covered(2 * ell, false);
    for (Vertex w : h.parameters) covered[w / n] = true;
    int chosen = -1;
    for (int i = 0; i < 2 * ell && chosen == -1; ++i) {
      if (covered[i]) continue;
      bool wrong = h.Classify(hat, std::vector<Vertex>{u + i * n}) ||
                   !h.Classify(hat, std::vector<Vertex>{v + i * n});
      if (!wrong) chosen = i;
    }
    if (chosen == -1) {
      // The oracle violated its error guarantee (possible only with a
      // misbehaving oracle); fall back to a vacuous answer.
      return Formula::False();
    }

    // Locality fold (the executable Gaifman step, DESIGN.md §4): the
    // uncovered copy contains no parameters, so within it the hypothesis is
    // a function of the single-vertex local type alone. Collect the
    // accepted local types of that copy; their Hintikka disjunction is the
    // r-local, parameter-free γ, valid on G because copy ≅ G.
    const int radius = GaifmanRadius(rank_star);
    auto& registry = GammaRegistry(graph.vocabulary());
    std::vector<TypeId> accepted;
    for (Vertex z = 0; z < n; ++z) {
      Vertex z_hat = z + chosen * n;
      if (!h.Classify(hat, std::vector<Vertex>{z_hat})) continue;
      Vertex tuple[] = {z_hat};
      accepted.push_back(
          ComputeLocalType(hat, tuple, rank_star, radius, registry.get()));
    }
    std::sort(accepted.begin(), accepted.end());
    accepted.erase(std::unique(accepted.begin(), accepted.end()),
                   accepted.end());
    HintikkaBuilder builder(*registry);
    std::vector<FormulaRef> parts;
    for (TypeId type : accepted) {
      parts.push_back(builder.BuildLocal(type, {QueryVar(1)}, radius));
    }
    return Formula::Or(std::move(parts));
  }

  std::shared_ptr<TypeRegistry>& GammaRegistry(const Vocabulary& vocabulary) {
    auto& registry = gamma_registries_[VocabularySignature(vocabulary)];
    if (registry == nullptr) {
      registry = std::make_shared<TypeRegistry>(vocabulary);
    }
    return registry;
  }

  ErmOracle& oracle_;
  const ModelCheckOptions& options_;
  HardnessStats* stats_;
  std::map<std::string, std::shared_ptr<TypeRegistry>> gamma_registries_;
};

}  // namespace

bool ModelCheckViaErm(const Graph& graph, const FormulaRef& sentence,
                      ErmOracle& oracle, const ModelCheckOptions& options,
                      HardnessStats* stats) {
  FOLEARN_CHECK(sentence->free_variables().empty())
      << "model checking requires a sentence";
  Reducer reducer(oracle, options, stats);
  bool value = reducer.Check(graph, sentence, 0);
  if (stats != nullptr) stats->status = GovernorStatus(options.governor);
  return value;
}

}  // namespace folearn
