#include "learn/vc.h"

#include <algorithm>
#include <map>
#include <set>

#include "learn/dataset.h"
#include "util/combinatorics.h"

namespace folearn {

namespace {

// Shattering check: every labelling of the sample must be constant on the
// classes of at least one partition. `classes[p][i]` = class of sample
// element i under partition p.
bool IsShattered(const std::vector<std::vector<int>>& classes,
                 int sample_size) {
  const uint32_t total_masks = uint32_t{1} << sample_size;
  std::vector<bool> achieved(total_masks, false);
  uint32_t remaining = total_masks;
  for (const std::vector<int>& partition : classes) {
    // Collect the class membership bitmasks within the sample.
    std::map<int, uint32_t> class_masks;
    for (int i = 0; i < sample_size; ++i) {
      class_masks[partition[i]] |= uint32_t{1} << i;
    }
    std::vector<uint32_t> masks;
    masks.reserve(class_masks.size());
    for (const auto& [cls, mask] : class_masks) masks.push_back(mask);
    // All accept/reject combinations of the classes.
    const uint32_t combos = uint32_t{1} << masks.size();
    for (uint32_t combo = 0; combo < combos; ++combo) {
      uint32_t labelling = 0;
      for (size_t c = 0; c < masks.size(); ++c) {
        if (combo & (uint32_t{1} << c)) labelling |= masks[c];
      }
      if (!achieved[labelling]) {
        achieved[labelling] = true;
        if (--remaining == 0) return true;
      }
    }
  }
  return remaining == 0;
}

}  // namespace

VcResult ComputeVcDimension(const Graph& graph, int k,
                            const VcOptions& options) {
  FOLEARN_CHECK_GE(k, 1);
  VcResult result;
  if (graph.order() == 0) return result;
  const int radius = options.EffectiveRadius();

  std::vector<std::vector<Vertex>> pool = AllTuples(graph.order(), k);

  // One partition of the pool per parameter tuple w̄, as dense class ids.
  std::set<std::vector<int>> distinct;
  TypeRegistry registry(graph.vocabulary());
  ForEachTuple(graph.order(), options.ell,
               [&](const std::vector<int64_t>& raw) {
                 std::vector<Vertex> params(raw.begin(), raw.end());
                 std::vector<int> partition;
                 partition.reserve(pool.size());
                 std::map<TypeId, int> dense;
                 for (const std::vector<Vertex>& tuple : pool) {
                   // A partial partition would mislead the shattering
                   // search, so an interrupted parameter tuple is dropped
                   // whole.
                   if (!GovernorCheckpoint(options.governor)) return false;
                   std::vector<Vertex> combined = tuple;
                   combined.insert(combined.end(), params.begin(),
                                   params.end());
                   TypeId type = ComputeLocalType(
                       graph, combined, options.rank, radius, &registry);
                   auto [it, inserted] =
                       dense.emplace(type, static_cast<int>(dense.size()));
                   partition.push_back(it->second);
                 }
                 distinct.insert(std::move(partition));
                 return true;
               });
  std::vector<std::vector<int>> partitions(distinct.begin(), distinct.end());
  result.distinct_partitions = static_cast<int64_t>(partitions.size());

  // Deduplicate pool elements with identical behaviour columns — two such
  // elements can never be labelled independently, so shattered sets contain
  // at most one of each column class.
  std::map<std::vector<int>, int> column_index;
  std::vector<int> representatives;
  for (size_t i = 0; i < pool.size(); ++i) {
    std::vector<int> column;
    column.reserve(partitions.size());
    for (const std::vector<int>& partition : partitions) {
      column.push_back(partition[i]);
    }
    if (column_index.emplace(std::move(column), static_cast<int>(i)).second) {
      representatives.push_back(static_cast<int>(i));
    }
  }

  // DFS for a maximum shattered subset of the representatives.
  int64_t budget = options.search_budget;
  std::vector<int> current;
  std::vector<int> best;
  // classes_for(sample) built incrementally: per partition the class ids of
  // the selected sample elements.
  std::vector<std::vector<int>> sample_classes(partitions.size());

  std::function<void(size_t)> dfs = [&](size_t start) {
    if (static_cast<int>(current.size()) > static_cast<int>(best.size())) {
      best = current;
    }
    if (static_cast<int>(current.size()) >= options.max_dimension) return;
    for (size_t idx = start; idx < representatives.size(); ++idx) {
      if (!GovernorCheckpoint(options.governor)) return;
      if (budget-- <= 0) {
        result.budget_exhausted = true;
        return;
      }
      int pool_index = representatives[idx];
      for (size_t p = 0; p < partitions.size(); ++p) {
        sample_classes[p].push_back(partitions[p][pool_index]);
      }
      current.push_back(pool_index);
      if (IsShattered(sample_classes, static_cast<int>(current.size()))) {
        dfs(idx + 1);
      }
      current.pop_back();
      for (size_t p = 0; p < partitions.size(); ++p) {
        sample_classes[p].pop_back();
      }
      if (result.budget_exhausted || GovernorInterrupted(options.governor)) {
        return;
      }
    }
  };
  dfs(0);
  result.status = GovernorStatus(options.governor);

  result.vc_dimension = static_cast<int>(best.size());
  for (int pool_index : best) {
    result.shattered_sample.push_back(pool[pool_index]);
  }
  return result;
}

}  // namespace folearn
