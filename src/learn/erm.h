#ifndef FOLEARN_LEARN_ERM_H_
#define FOLEARN_LEARN_ERM_H_

#include <memory>
#include <span>
#include <vector>

#include "fo/enumerate.h"
#include "graph/graph.h"
#include "learn/dataset.h"
#include "learn/hypothesis.h"
#include "learn/search_state.h"
#include "mc/bytecode.h"
#include "mc/compiler.h"
#include "types/type.h"
#include "util/governor.h"

namespace folearn {

// Empirical risk minimisation (paper §3, FO-ERM).
//
// The hypothesis class H_{k,ℓ,q}(G) is "all rank-q formulas φ(x̄; ȳ) with
// all parameter tuples w̄ ∈ V^ℓ". With w̄ fixed, Corollary 6 reduces the
// formula dimension to an exactly solvable problem: every rank-q
// hypothesis is a union of local (q, r(q))-types of v̄w̄, and the
// per-type majority vote is the exact empirical risk minimiser over that
// (strictly larger) class. The learners below differ only in how they
// search the *parameter* dimension.

struct ErmOptions {
  int rank = 1;     // q: quantifier-rank budget of the hypothesis class
  int radius = -1;  // r: locality radius; −1 ⇒ GaifmanRadius(rank)
  // Optional resource governor (nullptr = ungoverned). Work unit: one
  // local-type computation. Shared across nested calls — BruteForceErm's
  // per-candidate TypeMajorityErm calls draw from the same budget.
  ResourceGovernor* governor = nullptr;
  // Worker threads for the parameter sweep in BruteForceErm (resolved via
  // EffectiveThreads: 0 = hardware concurrency). The result — hypothesis,
  // error, serialised model bytes, diagnostics — is byte-identical for
  // every thread count; see BruteForceErm below. TypeMajorityErm itself is
  // always single-threaded (it is the per-candidate work unit).
  int threads = 1;
  // Optional per-vertex ball cache bound to the same graph (nullptr =
  // fresh BFS per type computation). Not thread-safe: only consulted on
  // single-threaded paths; parallel sweeps create one cache per worker
  // internally.
  BallCache* ball_cache = nullptr;
  // Byte budget for each internally created per-worker ball cache
  // (BallCache::kNoBudget = unbounded). Purely a memory/perf knob —
  // results are identical with any budget.
  int64_t cache_bytes = BallCache::kNoBudget;
  // Optional memory account (nullptr = unaccounted; must outlive the
  // call). The per-worker registry shards and ball caches the parallel
  // sweep creates charge it; pair it with GovernorLimits::mem_budget on
  // the same budget so an overflowing sweep is cut with
  // kResourceExhausted and returns best-so-far. Accounting never changes
  // results — only whether and when the governor cuts.
  MemBudget* mem_budget = nullptr;
  // Checkpoint/resume hooks for BruteForceErm's parameter scan (default:
  // off). With a checkpointer the scan persists its frontier between
  // candidate segments; with `scan.resume` it continues a saved scan and
  // produces the byte-identical result (model, error, governor ledger) of
  // the uninterrupted run. See learn/search_state.h.
  ScanHooks scan;

  int EffectiveRadius() const {
    return radius >= 0 ? radius : GaifmanRadius(rank);
  }
};

struct ErmResult {
  TypeSetHypothesis hypothesis;
  double training_error = 1.0;
  // kComplete: exact class optimum. Otherwise the governor tripped and the
  // hypothesis is the best found so far; `training_error` is then measured
  // over the examples processed before the interruption (1.0 if none).
  RunStatus status = RunStatus::kComplete;
  // Diagnostics.
  int64_t parameter_tuples_tried = 0;
  int64_t distinct_types_seen = 0;
};

// Exact ERM for a FIXED parameter tuple w̄: groups the examples by
// ltp_{q,r}(G, v̄w̄) and accepts exactly the types whose examples are
// majority-positive. Error = Σ_θ min(pos_θ, neg_θ) / m — a lower bound for
// every rank-q formula with these parameters, achieved by the returned
// type-set hypothesis. Deterministic: ties (pos == neg) reject the type.
//
// `registry` may be shared across calls (same graph vocabulary) so that
// TypeIds and output formulas are canonical across parameter candidates —
// the hardness reduction depends on this canonicity.
ErmResult TypeMajorityErm(const Graph& graph, const TrainingSet& examples,
                          std::span<const Vertex> parameters,
                          const ErmOptions& options,
                          std::shared_ptr<TypeRegistry> registry = nullptr);

// Algorithm 1 / Proposition 11: brute force over all w̄ ∈ V(G)^ℓ
// (n^ℓ · m type computations; FPT for constant ℓ). Returns the best
// hypothesis found; scans parameters in lexicographic order and keeps the
// first minimiser, so the result is deterministic. With `early_stop` the
// scan ends at the first zero-error candidate (disable it to measure the
// full n^ℓ cost). Anytime: if `options.governor` trips mid-scan, the best
// candidate fully evaluated so far is returned (deterministically for a
// work-budget or injected trip — same inputs + same budget ⇒ identical
// result).
//
// With options.threads > 1 the candidate errors are evaluated in parallel
// (per-worker type-registry shards and ball caches; deterministic
// index-ordered argmin), and the winning candidate is then re-evaluated
// single-threaded on `registry`, so TypeIds, serialised model bytes,
// governor work accounting, and every diagnostic are identical to the
// single-threaded scan. Deterministic governor limits (work budget, fault
// injector) fix the evaluated range up front and are charged as the
// sequential-equivalent batch; the wall-clock deadline is polled
// cooperatively per candidate.
ErmResult BruteForceErm(const Graph& graph, const TrainingSet& examples,
                        int ell, const ErmOptions& options,
                        std::shared_ptr<TypeRegistry> registry = nullptr,
                        bool early_stop = true);

// Literal "step through all formulas" ERM over an explicitly enumerated
// syntactic slice (plus all parameter tuples): the cross-checking baseline
// of experiment E9. Exponentially slower than TypeMajorityErm; only for
// tiny instances.
struct EnumerationErmResult {
  Hypothesis hypothesis;
  double training_error = 1.0;
  RunStatus status = RunStatus::kComplete;  // best-so-far when interrupted
  int64_t formulas_tried = 0;
  // Compiled plans dropped from the per-worker caches to honour
  // EvalOptions::cache_bytes. Thread- and timing-dependent telemetry (a
  // worker's compilation order depends on chunk claiming), deliberately
  // excluded from the byte-identity contract; everything else in this
  // struct is deterministic.
  int64_t plan_cache_evictions = 0;
};
// `threads` parallelises the tuple×formula grid exactly like
// BruteForceErm's sweep (same determinism guarantees; 0 = hardware
// concurrency).
//
// Candidate formulas are compiled once per worker and the plans (plus
// their per-graph subformula memos) are reused across every parameter
// tuple and training example — the compiled engine's headline win on the
// E9 grid. `eval` controls the per-candidate evaluation only
// (force_interpreter routes through the reference evaluator;
// eval.governor is ignored — the grid-level `governor` parameter is the
// budget, charged one unit per candidate in both modes).
// `hooks` enables checkpoint/resume of the grid scan (learner tag
// "enumeration"), with the same byte-identity guarantee as BruteForceErm.
EnumerationErmResult EnumerationErm(const Graph& graph,
                                    const TrainingSet& examples, int ell,
                                    const EnumerationOptions& enumeration,
                                    ResourceGovernor* governor = nullptr,
                                    int threads = 1,
                                    const EvalOptions& eval = {},
                                    const ScanHooks& hooks = {});

// Same grid search over an explicitly pre-enumerated candidate slice. The
// formulas must use the canonical frame QueryVars(k) · ParamVars(ell)
// (what the EnumerationOptions overload enumerates with) — anything else
// CHECK-fails at compile/evaluation time as an unbound variable. Lets
// callers amortise the (substantial) syntactic enumeration across
// repeated runs, and lets bench_erm_core time the search itself.
EnumerationErmResult EnumerationErm(const Graph& graph,
                                    const TrainingSet& examples, int ell,
                                    std::span<const FormulaRef> formulas,
                                    ResourceGovernor* governor = nullptr,
                                    int threads = 1,
                                    const EvalOptions& eval = {},
                                    const ScanHooks& hooks = {});

// A candidate with its graph-independent compilation artifacts hoisted out
// of the grid scan: the tree plan and, when prepared for EvalEngine::kVm,
// the lowered bytecode. Produced by PrepareFormulas; consumed by the
// overload below. Prepared plans are caller-owned — the per-worker plan
// caches neither count them against EvalOptions::cache_bytes nor evict
// them (per-graph evaluators are still built, and evicted, per worker).
struct PreparedFormula {
  FormulaRef formula;
  std::shared_ptr<const CompiledFormula> plan;
  std::shared_ptr<const LoweredPlan> lowered;  // null unless VM-prepared
};

// Compiles (and for EvalEngine::kVm lowers) every candidate against the
// canonical frame QueryVars(k) · ParamVars(ell). Lets callers amortise
// plan construction across repeated runs and keep it out of benches' timed
// regions; graph binding still happens inside EnumerationErm.
std::vector<PreparedFormula> PrepareFormulas(
    std::span<const FormulaRef> formulas, int k, int ell, EvalEngine engine);

// Grid search over pre-compiled candidates: identical results to the
// FormulaRef overload on the same formulas, minus the per-worker
// compile/lower work (and minus its cache_bytes eviction telemetry).
EnumerationErmResult EnumerationErm(const Graph& graph,
                                    const TrainingSet& examples, int ell,
                                    std::span<const PreparedFormula> formulas,
                                    ResourceGovernor* governor = nullptr,
                                    int threads = 1,
                                    const EvalOptions& eval = {},
                                    const ScanHooks& hooks = {});

}  // namespace folearn

#endif  // FOLEARN_LEARN_ERM_H_
