#ifndef FOLEARN_LEARN_ALGORITHM2_H_
#define FOLEARN_LEARN_ALGORITHM2_H_

#include <vector>

#include "fo/formula.h"
#include "graph/graph.h"
#include "learn/dataset.h"
#include "learn/hypothesis.h"

namespace folearn {

// Proposition 12 / Algorithm 2: the realisable unary case (k = 1).
//
// Given unary examples that some hypothesis in H_{1,ℓ,q}(G) classifies
// perfectly, find a consistent hypothesis with ℓ·n model-checking calls per
// candidate formula instead of n^ℓ parameter enumeration: a parameter
// prefix (w_1, …, w_i) is tested for extendability by evaluating
//
//   ∃y_{i+1} … ∃y_ℓ ∀x ((P₊x → φ_i) ∧ (P₋x → ¬φ_i))
//
// on the colour expansion of G with S_j = {w_j}, P₊/P₋ = positive/negative
// example sets; extendable prefixes are grown one vertex at a time.
//
// The paper iterates over the (finite but astronomical) set of all
// normal-form formulas; this implementation takes the candidate formulas
// φ(x, y1, …, yℓ) as an explicit argument (see DESIGN.md §4).
struct Algorithm2Result {
  bool found = false;
  Hypothesis hypothesis;  // valid iff found
  int64_t model_checking_calls = 0;
};

Algorithm2Result RealizableUnaryErm(
    const Graph& graph, const TrainingSet& examples, int ell,
    const std::vector<FormulaRef>& candidate_formulas);

// A default candidate family for RealizableUnaryErm when no hand-written
// formulas are available: distance templates "dist(x1, ȳ) ≤ d" for
// d ≤ radius, the disjunction of the positive examples' local-type
// (Hintikka) formulas, and their unions. Covers the common realisable
// shapes "near some parameter" / "locally looks like a positive" /
// "either".
std::vector<FormulaRef> DefaultUnaryCandidates(const Graph& graph,
                                               const TrainingSet& examples,
                                               int ell, int rank,
                                               int radius);

}  // namespace folearn

#endif  // FOLEARN_LEARN_ALGORITHM2_H_
