#include "learn/counting_erm.h"

#include <algorithm>
#include <map>

#include "fo/transform.h"
#include "util/combinatorics.h"

namespace folearn {

bool CountingHypothesis::Classify(const Graph& graph,
                                  std::span<const Vertex> tuple) const {
  FOLEARN_CHECK_EQ(static_cast<int>(tuple.size()), k);
  FOLEARN_CHECK(registry != nullptr);
  std::vector<Vertex> combined(tuple.begin(), tuple.end());
  combined.insert(combined.end(), parameters.begin(), parameters.end());
  TypeId type = ComputeLocalCountingType(graph, combined, rank, radius,
                                         registry.get());
  return std::binary_search(accepted.begin(), accepted.end(), type);
}

double CountingHypothesis::Error(const Graph& graph,
                                 const TrainingSet& examples) const {
  if (examples.empty()) return 0.0;
  int64_t wrong = 0;
  for (const LabeledExample& example : examples) {
    if (Classify(graph, example.tuple) != example.label) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(examples.size());
}

Hypothesis CountingHypothesis::ToExplicit() const {
  FOLEARN_CHECK(registry != nullptr);
  Hypothesis result;
  result.query_vars = QueryVars(k);
  result.param_vars = ParamVars(static_cast<int>(parameters.size()));
  result.parameters = parameters;
  std::vector<std::string> all_vars = result.query_vars;
  all_vars.insert(all_vars.end(), result.param_vars.begin(),
                  result.param_vars.end());
  CountingHintikkaBuilder builder(*registry);
  std::vector<FormulaRef> parts;
  parts.reserve(accepted.size());
  for (TypeId type : accepted) {
    parts.push_back(
        RelativizeToBall(builder.Build(type, all_vars), all_vars, radius));
  }
  result.formula = Formula::Or(std::move(parts));
  return result;
}

CountingErmResult CountingTypeMajorityErm(
    const Graph& graph, const TrainingSet& examples,
    std::span<const Vertex> parameters, const CountingErmOptions& options,
    std::shared_ptr<CountingTypeRegistry> registry) {
  if (registry == nullptr) {
    registry = std::make_shared<CountingTypeRegistry>(graph.vocabulary(),
                                                      options.cap);
  }
  FOLEARN_CHECK_EQ(registry->cap(), options.cap);
  const int radius = options.EffectiveRadius();

  CountingErmResult result;
  result.parameter_tuples_tried = 1;
  CountingHypothesis& h = result.hypothesis;
  h.rank = options.rank;
  h.radius = radius;
  h.parameters.assign(parameters.begin(), parameters.end());
  h.registry = registry;
  h.k = examples.empty() ? 0 : static_cast<int>(examples[0].tuple.size());

  std::map<TypeId, std::pair<int64_t, int64_t>> counts;
  for (const LabeledExample& example : examples) {
    FOLEARN_CHECK_EQ(static_cast<int>(example.tuple.size()), h.k);
    std::vector<Vertex> combined = example.tuple;
    combined.insert(combined.end(), parameters.begin(), parameters.end());
    TypeId type = ComputeLocalCountingType(graph, combined, options.rank,
                                           radius, registry.get());
    auto& entry = counts[type];
    (example.label ? entry.first : entry.second) += 1;
  }
  result.distinct_types_seen = static_cast<int64_t>(counts.size());

  int64_t wrong = 0;
  for (const auto& [type, count] : counts) {
    if (count.first > count.second) {
      h.accepted.push_back(type);
      wrong += count.second;
    } else {
      wrong += count.first;
    }
  }
  result.training_error =
      examples.empty()
          ? 0.0
          : static_cast<double>(wrong) / static_cast<double>(examples.size());
  return result;
}

CountingErmResult CountingBruteForceErm(
    const Graph& graph, const TrainingSet& examples, int ell,
    const CountingErmOptions& options,
    std::shared_ptr<CountingTypeRegistry> registry) {
  FOLEARN_CHECK_GE(ell, 0);
  if (registry == nullptr) {
    registry = std::make_shared<CountingTypeRegistry>(graph.vocabulary(),
                                                      options.cap);
  }
  CountingErmResult best;
  int64_t tried = 0;
  ForEachTuple(graph.order(), ell, [&](const std::vector<int64_t>& raw) {
    std::vector<Vertex> parameters(raw.begin(), raw.end());
    CountingErmResult candidate =
        CountingTypeMajorityErm(graph, examples, parameters, options,
                                registry);
    ++tried;
    if (tried == 1 || candidate.training_error < best.training_error) {
      best = std::move(candidate);
    }
    return best.training_error > 0.0;
  });
  best.parameter_tuples_tried = tried;
  return best;
}

}  // namespace folearn
