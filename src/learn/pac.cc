#include "learn/pac.h"

#include <cmath>
#include <set>

#include "mc/bytecode.h"
#include "mc/compiler.h"
#include "mc/evaluator.h"
#include "mc/vm.h"
#include "types/type.h"

namespace folearn {

namespace {

class QueryDistribution : public ExampleDistribution {
 public:
  QueryDistribution(const Graph& graph, FormulaRef query,
                    std::vector<std::string> vars, int k, double noise_rate)
      : graph_(graph),
        query_(std::move(query)),
        vars_(std::move(vars)),
        k_(k),
        noise_rate_(noise_rate) {
    FOLEARN_CHECK_GT(graph.order(), 0);
    FOLEARN_CHECK(noise_rate >= 0.0 && noise_rate <= 1.0);
    // The hidden query is fixed for the distribution's lifetime: compile
    // and lower it once and label every sample through the same bytecode
    // (ungoverned and unstatted, so the engine choice is unobservable
    // beyond speed).
    plan_ = std::make_unique<CompiledFormula>(CompileFormula(query_, vars_));
    lowered_ = std::make_unique<LoweredPlan>(LowerPlan(*plan_));
    evaluator_ = std::make_unique<VmEvaluator>(*plan_, *lowered_, graph_);
  }

  LabeledExample Sample(Rng& rng) override {
    std::vector<Vertex> tuple(k_);
    for (Vertex& v : tuple) {
      v = static_cast<Vertex>(rng.UniformIndex(graph_.order()));
    }
    bool label = evaluator_->Eval(tuple);
    if (noise_rate_ > 0.0 && rng.Bernoulli(noise_rate_)) label = !label;
    return {std::move(tuple), label};
  }

  int k() const override { return k_; }

 private:
  const Graph& graph_;
  FormulaRef query_;
  std::vector<std::string> vars_;
  std::unique_ptr<CompiledFormula> plan_;
  std::unique_ptr<LoweredPlan> lowered_;
  std::unique_ptr<VmEvaluator> evaluator_;
  int k_;
  double noise_rate_;
};

}  // namespace

std::unique_ptr<ExampleDistribution> MakeQueryDistribution(
    const Graph& graph, FormulaRef query, std::vector<std::string> vars,
    int k, double noise_rate) {
  return std::make_unique<QueryDistribution>(graph, std::move(query),
                                             std::move(vars), k, noise_rate);
}

TrainingSet DrawSample(ExampleDistribution& distribution, int m, Rng& rng) {
  TrainingSet examples;
  examples.reserve(m);
  for (int i = 0; i < m; ++i) examples.push_back(distribution.Sample(rng));
  return examples;
}

double EstimateGeneralizationError(
    const std::function<bool(std::span<const Vertex>)>& classify,
    ExampleDistribution& distribution, int samples, Rng& rng) {
  FOLEARN_CHECK_GT(samples, 0);
  int64_t wrong = 0;
  for (int i = 0; i < samples; ++i) {
    LabeledExample example = distribution.Sample(rng);
    if (classify(example.tuple) != example.label) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(samples);
}

int64_t AgnosticSampleComplexity(double ln_hypothesis_count, double epsilon,
                                 double delta) {
  FOLEARN_CHECK_GT(epsilon, 0.0);
  FOLEARN_CHECK(delta > 0.0 && delta < 1.0);
  double m = 2.0 * (ln_hypothesis_count + std::log(2.0 / delta)) /
             (epsilon * epsilon);
  return static_cast<int64_t>(std::ceil(m));
}

double EstimateLnHypothesisCount(const Graph& graph, int k, int ell, int rank,
                                 int radius, int samples, Rng& rng) {
  FOLEARN_CHECK_GT(graph.order(), 0);
  TypeRegistry registry(graph.vocabulary());
  std::set<TypeId> realized;
  for (int i = 0; i < samples; ++i) {
    std::vector<Vertex> tuple(k + ell);
    for (Vertex& v : tuple) {
      v = static_cast<Vertex>(rng.UniformIndex(graph.order()));
    }
    realized.insert(
        ComputeLocalType(graph, tuple, rank, radius, &registry));
  }
  // |H| ≤ 2^T · n^ℓ  ⇒  ln|H| ≤ T·ln2 + ℓ·ln n.
  return static_cast<double>(realized.size()) * std::log(2.0) +
         ell * std::log(static_cast<double>(graph.order()));
}

PacExperimentResult RunPacExperiment(
    const Graph& graph, ExampleDistribution& distribution, int m_train,
    int m_test,
    const std::function<TypeSetHypothesis(const TrainingSet&)>& learner,
    Rng& rng) {
  TrainingSet train = DrawSample(distribution, m_train, rng);
  TypeSetHypothesis hypothesis = learner(train);
  PacExperimentResult result;
  result.training_error = hypothesis.Error(graph, train);
  result.generalization_error = EstimateGeneralizationError(
      [&](std::span<const Vertex> tuple) {
        return hypothesis.Classify(graph, tuple);
      },
      distribution, m_test, rng);
  return result;
}

}  // namespace folearn
