#include "learn/model_io.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "fo/parser.h"
#include "fo/printer.h"
#include "util/checkpoint.h"
#include "util/strings.h"

namespace folearn {

namespace {

bool ParseInt(const std::string& token, int* out) {
  if (token.empty()) return false;
  int value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> tokens = Split(line, ' ');
  tokens.erase(std::remove(tokens.begin(), tokens.end(), std::string()),
               tokens.end());
  return tokens;
}

}  // namespace

std::string TrainingSetToText(const TrainingSet& examples) {
  std::ostringstream out;
  int k = examples.empty() ? 0 : static_cast<int>(examples[0].tuple.size());
  out << "examples " << k << "\n";
  for (const LabeledExample& example : examples) {
    out << (example.label ? '+' : '-');
    for (Vertex v : example.tuple) out << ' ' << v;
    out << "\n";
  }
  return out.str();
}

std::optional<TrainingSet> TrainingSetFromText(std::string_view text,
                                               std::string* error) {
  TrainingSet examples;
  int k = -1;
  for (const std::string& raw : Split(text, '\n')) {
    std::string line(StripWhitespace(raw));
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tokens = Tokens(line);
    if (tokens[0] == "examples") {
      if (k != -1 || tokens.size() != 2 || !ParseInt(tokens[1], &k)) {
        Fail(error, "malformed 'examples' header: " + line);
        return std::nullopt;
      }
      continue;
    }
    if (tokens[0] != "+" && tokens[0] != "-") {
      Fail(error, "example lines must start with '+' or '-': " + line);
      return std::nullopt;
    }
    if (k == -1) {
      Fail(error, "'examples <k>' header must come first");
      return std::nullopt;
    }
    if (static_cast<int>(tokens.size()) != k + 1) {
      Fail(error, "expected " + std::to_string(k) + " vertices: " + line);
      return std::nullopt;
    }
    LabeledExample example;
    example.label = tokens[0] == "+";
    for (int i = 1; i <= k; ++i) {
      int v = 0;
      if (!ParseInt(tokens[i], &v)) {
        Fail(error, "bad vertex: " + tokens[i]);
        return std::nullopt;
      }
      example.tuple.push_back(v);
    }
    examples.push_back(std::move(example));
  }
  if (k == -1) {
    Fail(error, "missing 'examples <k>' header");
    return std::nullopt;
  }
  return examples;
}

std::string HypothesisToText(const Hypothesis& hypothesis) {
  std::ostringstream out;
  out << "hypothesis k " << hypothesis.k() << " ell " << hypothesis.ell()
      << "\n";
  if (!hypothesis.parameters.empty()) {
    out << "params";
    for (Vertex v : hypothesis.parameters) out << ' ' << v;
    out << "\n";
  }
  out << "formula " << ToString(hypothesis.formula) << "\n";
  return out.str();
}

std::optional<Hypothesis> HypothesisFromText(std::string_view text,
                                             std::string* error) {
  Hypothesis hypothesis;
  int k = -1;
  int ell = -1;
  bool have_formula = false;
  for (const std::string& raw : Split(text, '\n')) {
    std::string line(StripWhitespace(raw));
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tokens = Tokens(line);
    if (tokens[0] == "hypothesis") {
      if (tokens.size() != 5 || tokens[1] != "k" || tokens[3] != "ell" ||
          !ParseInt(tokens[2], &k) || !ParseInt(tokens[4], &ell)) {
        Fail(error, "malformed 'hypothesis' header: " + line);
        return std::nullopt;
      }
    } else if (tokens[0] == "params") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        int v = 0;
        if (!ParseInt(tokens[i], &v)) {
          Fail(error, "bad parameter vertex: " + tokens[i]);
          return std::nullopt;
        }
        hypothesis.parameters.push_back(v);
      }
    } else if (tokens[0] == "formula") {
      std::string formula_text = line.substr(std::string("formula").size());
      std::string parse_error;
      std::optional<FormulaRef> formula =
          ParseFormula(formula_text, &parse_error);
      if (!formula.has_value()) {
        Fail(error, "formula parse error: " + parse_error);
        return std::nullopt;
      }
      hypothesis.formula = *formula;
      have_formula = true;
    } else {
      Fail(error, "unknown keyword: " + tokens[0]);
      return std::nullopt;
    }
  }
  if (k < 0 || ell < 0 || !have_formula) {
    Fail(error, "hypothesis requires header and formula");
    return std::nullopt;
  }
  if (static_cast<int>(hypothesis.parameters.size()) != ell) {
    Fail(error, "parameter count does not match ell");
    return std::nullopt;
  }
  hypothesis.query_vars = QueryVars(k);
  hypothesis.param_vars = ParamVars(ell);
  // The formula's free variables must be covered by x1..xk, y1..yℓ.
  for (const std::string& var : hypothesis.formula->free_variables()) {
    bool known =
        std::find(hypothesis.query_vars.begin(), hypothesis.query_vars.end(),
                  var) != hypothesis.query_vars.end() ||
        std::find(hypothesis.param_vars.begin(), hypothesis.param_vars.end(),
                  var) != hypothesis.param_vars.end();
    if (!known) {
      Fail(error, "formula uses unknown free variable '" + var + "'");
      return std::nullopt;
    }
  }
  return hypothesis;
}

namespace {

// Shared shape of the four Status-typed wrappers below: run the optional+
// error-string parser, lift failures to kInvalidArgument; for files, read
// first (kNotFound on a missing path) and prefix diagnostics with the path.
template <typename T>
StatusOr<T> LiftParse(std::optional<T> parsed, const std::string& error) {
  if (!parsed.has_value()) return InvalidArgumentError(error);
  return *std::move(parsed);
}

template <typename T>
StatusOr<T> PrefixPath(StatusOr<T> parsed, const std::string& path) {
  if (parsed.ok()) return parsed;
  return Status(parsed.status().code(),
                path + ": " + parsed.status().message());
}

}  // namespace

StatusOr<TrainingSet> ParseTrainingSet(std::string_view text) {
  std::string error;
  return LiftParse(TrainingSetFromText(text, &error), error);
}

StatusOr<TrainingSet> LoadTrainingSetFile(const std::string& path) {
  StatusOr<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return PrefixPath(ParseTrainingSet(*text), path);
}

StatusOr<Hypothesis> ParseHypothesis(std::string_view text) {
  std::string error;
  return LiftParse(HypothesisFromText(text, &error), error);
}

StatusOr<Hypothesis> LoadHypothesisFile(const std::string& path) {
  StatusOr<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return PrefixPath(ParseHypothesis(*text), path);
}

}  // namespace folearn
