#ifndef FOLEARN_LEARN_SUBLINEAR_H_
#define FOLEARN_LEARN_SUBLINEAR_H_

#include <memory>

#include "graph/graph.h"
#include "learn/dataset.h"
#include "learn/erm.h"

namespace folearn {

// Sublinear-time learning — the research line the paper builds on:
//
//  * Grohe–Ritzert (LICS 2017, the paper's [22]): on graphs of maximum
//    degree d, FO-ERM runs in time polynomial in d and m, INDEPENDENT of
//    the background graph size. The key observation (also behind the
//    paper's Lemma 15): a parameter w farther than 2r+1 from every
//    training example contributes the same information to every example's
//    local type, so it can never resolve a conflict — the only parameters
//    worth trying live in N_{2r+1}(examples), a set whose size is bounded
//    by m·d^{O(r)}, not by n.
//
//  * Grohe–Löding–Ritzert (ALT 2017, [21]) / Grienenberger–Ritzert (ICDT
//    2019, [19]) and the paper's conclusion: with a PREPROCESSING pass one
//    can hope for sublinear learning even on unbounded-degree structures.
//    `LocalTypeIndex` is that pass for k = 1: it precomputes every
//    vertex's local type once; afterwards each parameter-free ERM call
//    costs O(m) dictionary lookups, independent of n.

// --- Degree-bounded sublinear ERM (no preprocessing) --------------------------

struct SublinearErmResult {
  ErmResult erm;  // erm.status records governor interruption (best-so-far)
  // |N_{2r+1}(examples)|: the actual candidate pool (≪ n on bounded-degree
  // graphs).
  int64_t candidate_pool_size = 0;
};

// ERM over H_{k,ℓ,q} with the parameter search restricted to the
// (2r+1)-neighbourhood of the training examples plus one "far"
// representative per extra slot (a far parameter's contribution is
// example-independent, so one representative suffices). Runtime depends on
// m and the local degree structure, not on n. `ell` ≤ 2 recommended.
SublinearErmResult SublinearErm(const Graph& graph,
                                const TrainingSet& examples, int ell,
                                const ErmOptions& options);

// --- Preprocessing + O(m) queries (k = 1) --------------------------------------

// Precomputes ltp_{rank,radius}(G, v) for every vertex. Building costs one
// pass over the graph; afterwards Lookup is O(1) and parameter-free unary
// ERM is O(m log m).
class LocalTypeIndex {
 public:
  // Builds the index (the "polynomial-time preprocessing phase"). With a
  // governor (work unit: one vertex type computation) the build may stop
  // early; `build_status()` reports it and Lookup CHECK-fails on vertices
  // past the interruption point.
  LocalTypeIndex(const Graph& graph, int rank, int radius,
                 ResourceGovernor* governor = nullptr);

  TypeId Lookup(Vertex v) const {
    FOLEARN_CHECK_GE(v, 0);
    FOLEARN_CHECK_LT(static_cast<size_t>(v), types_.size())
        << "vertex " << v << " not indexed (build status: "
        << RunStatusName(build_status_) << ")";
    return types_[v];
  }

  // Parameter-free unary ERM using only index lookups — no graph access.
  ErmResult Erm(const TrainingSet& examples) const;

  int rank() const { return rank_; }
  int radius() const { return radius_; }
  RunStatus build_status() const { return build_status_; }
  int64_t indexed_vertices() const {
    return static_cast<int64_t>(types_.size());
  }
  int64_t distinct_types() const;
  const std::shared_ptr<TypeRegistry>& registry() const { return registry_; }

 private:
  int rank_;
  int radius_;
  RunStatus build_status_ = RunStatus::kComplete;
  std::shared_ptr<TypeRegistry> registry_;
  std::vector<TypeId> types_;
};

}  // namespace folearn

#endif  // FOLEARN_LEARN_SUBLINEAR_H_
