#ifndef FOLEARN_LEARN_VC_H_
#define FOLEARN_LEARN_VC_H_

#include <vector>

#include "graph/graph.h"
#include "types/type.h"
#include "util/governor.h"

namespace folearn {

// VC dimension of the hypothesis classes H_{k,ℓ,q}(G) (paper §3: PAC
// learnability ⟺ bounded VC dimension; Adler–Adler: nowhere dense classes
// are exactly the subgraph-closed classes where FO has bounded VC
// dimension).
//
// The library's realised hypothesis class for fixed (k, ℓ, q, r) is
//   { v̄ ↦ [ltp_{q,r}(G, v̄w̄) ∈ Φ] : w̄ ∈ V^ℓ, Φ a set of types },
// i.e. per parameter tuple w̄ an arbitrary union of the local-type classes
// of the induced partition of V^k. A sample S is shattered iff every
// labelling of S is constant on the classes of SOME w̄-partition — which is
// exactly checkable, so the VC dimension is computable exactly on small
// graphs.

struct VcOptions {
  int ell = 0;
  int rank = 1;
  int radius = -1;        // −1 ⇒ GaifmanRadius(rank)
  int max_dimension = 8;  // stop growing shattered sets beyond this
  // Budget on shattered-set search nodes (DFS over sample sets).
  int64_t search_budget = 2000000;
  // Optional resource governor (nullptr = ungoverned). Work unit: one
  // type computation in the partition phase, one DFS node in the search
  // phase. On interruption the result is a lower bound (like
  // budget_exhausted) with `status` recording why.
  ResourceGovernor* governor = nullptr;

  int EffectiveRadius() const {
    return radius >= 0 ? radius : GaifmanRadius(rank);
  }
};

struct VcResult {
  int vc_dimension = 0;
  // A witnessing shattered sample (indices into AllTuples(n, k)).
  std::vector<std::vector<Vertex>> shattered_sample;
  // Number of distinct w̄-induced partitions of the tuple pool.
  int64_t distinct_partitions = 0;
  bool budget_exhausted = false;  // result is a lower bound if true
  // Governor outcome; interrupted ⇒ vc_dimension is a lower bound over the
  // partitions/sets examined before the trip.
  RunStatus status = RunStatus::kComplete;
};

// Exact VC dimension of the type-set class over all k-tuples of G.
// Cost: n^ℓ partitions × shattering DFS — small graphs only.
VcResult ComputeVcDimension(const Graph& graph, int k,
                            const VcOptions& options);

}  // namespace folearn

#endif  // FOLEARN_LEARN_VC_H_
