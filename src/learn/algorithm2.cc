#include "learn/algorithm2.h"

#include <set>

#include "fo/transform.h"
#include "mc/evaluator.h"
#include "types/hintikka.h"
#include "types/type.h"

namespace folearn {

namespace {

constexpr char kPositiveColor[] = "_Pplus";
constexpr char kNegativeColor[] = "_Pminus";

std::string PrefixColor(int j) { return "_S" + std::to_string(j); }

// Ψ_i(x, y_{i+1}, …, y_ℓ) = ∃y_1 … ∃y_i (⋀_{j ≤ i} S_j(y_j) ∧ φ).
FormulaRef PrefixFormula(const FormulaRef& phi, int prefix_length) {
  FormulaRef body = phi;
  std::vector<FormulaRef> guards;
  for (int j = 1; j <= prefix_length; ++j) {
    guards.push_back(Formula::Color(PrefixColor(j), ParamVar(j)));
  }
  guards.push_back(body);
  FormulaRef result = Formula::And(std::move(guards));
  for (int j = prefix_length; j >= 1; --j) {
    result = Formula::Exists(ParamVar(j), result);
  }
  return result;
}

// ∃y_{i+1} … ∃y_ℓ ∀x ((P₊x → Ψ) ∧ (P₋x → ¬Ψ)).
FormulaRef ConsistencySentence(const FormulaRef& phi, int prefix_length,
                               int ell) {
  FormulaRef psi = PrefixFormula(phi, prefix_length);
  FormulaRef x_condition = Formula::And(
      Formula::Implies(Formula::Color(kPositiveColor, QueryVar(1)), psi),
      Formula::Implies(Formula::Color(kNegativeColor, QueryVar(1)),
                       Formula::Not(psi)));
  FormulaRef sentence = Formula::Forall(QueryVar(1), std::move(x_condition));
  for (int j = ell; j > prefix_length; --j) {
    sentence = Formula::Exists(ParamVar(j), sentence);
  }
  return sentence;
}

}  // namespace

Algorithm2Result RealizableUnaryErm(
    const Graph& graph, const TrainingSet& examples, int ell,
    const std::vector<FormulaRef>& candidate_formulas) {
  FOLEARN_CHECK_GE(ell, 0);
  Algorithm2Result result;
  if (graph.order() == 0) return result;

  // Colour expansion: S_1, …, S_ℓ (parameter prefix markers), P₊, P₋.
  Graph expanded = graph;
  std::vector<ColorId> prefix_colors;
  for (int j = 1; j <= ell; ++j) {
    prefix_colors.push_back(expanded.AddColor(PrefixColor(j)));
  }
  ColorId positive = expanded.AddColor(kPositiveColor);
  ColorId negative = expanded.AddColor(kNegativeColor);
  for (const LabeledExample& example : examples) {
    FOLEARN_CHECK_EQ(example.tuple.size(), 1u) << "Algorithm 2 requires k=1";
    expanded.SetColor(example.tuple[0], example.label ? positive : negative);
  }

  for (const FormulaRef& phi : candidate_formulas) {
    // Reset prefix colours from any previous candidate.
    for (int j = 0; j < ell; ++j) {
      for (Vertex v : expanded.VerticesWithColor(prefix_colors[j])) {
        expanded.SetColor(v, prefix_colors[j], false);
      }
    }
    std::vector<Vertex> prefix;
    bool consistent = true;
    if (ell == 0) {
      ++result.model_checking_calls;
      consistent = EvaluateSentence(expanded, ConsistencySentence(phi, 0, 0));
    }
    for (int i = 1; i <= ell && consistent; ++i) {
      FormulaRef sentence = ConsistencySentence(phi, i, ell);
      bool found_wi = false;
      for (Vertex u = 0; u < expanded.order(); ++u) {
        expanded.SetColor(u, prefix_colors[i - 1], true);
        ++result.model_checking_calls;
        if (EvaluateSentence(expanded, sentence)) {
          prefix.push_back(u);
          found_wi = true;
          break;
        }
        expanded.SetColor(u, prefix_colors[i - 1], false);
      }
      consistent = found_wi;
    }
    if (!consistent) continue;

    Hypothesis hypothesis{phi, QueryVars(1), ParamVars(ell), prefix};
    // The prefix search certifies consistency; verify against the raw
    // examples on the original graph as a defence-in-depth check.
    if (TrainingError(graph, hypothesis, examples) == 0.0) {
      result.found = true;
      result.hypothesis = std::move(hypothesis);
      return result;
    }
  }
  return result;
}

std::vector<FormulaRef> DefaultUnaryCandidates(const Graph& graph,
                                               const TrainingSet& examples,
                                               int ell, int rank,
                                               int radius) {
  FOLEARN_CHECK_GE(ell, 0);
  FOLEARN_CHECK_GE(radius, 0);
  std::vector<FormulaRef> candidates;

  // Distance templates: x1 within distance d of some parameter.
  std::vector<FormulaRef> distance_templates;
  for (int d = 0; d <= radius && ell > 0; ++d) {
    FreshVariablePool pool;
    pool.Reserve(QueryVar(1));
    for (int j = 1; j <= ell; ++j) pool.Reserve(ParamVar(j));
    distance_templates.push_back(
        DistToTupleAtMost(QueryVar(1), ParamVars(ell), d, pool));
  }

  // The disjunction of the positive examples' local types.
  auto registry = std::make_shared<TypeRegistry>(graph.vocabulary());
  std::set<TypeId> positive_types;
  for (const LabeledExample& example : examples) {
    if (!example.label) continue;
    FOLEARN_CHECK_EQ(example.tuple.size(), 1u);
    positive_types.insert(ComputeLocalType(graph, example.tuple, rank,
                                           radius, registry.get()));
  }
  FormulaRef type_disjunction;
  if (!positive_types.empty()) {
    HintikkaBuilder builder(*registry);
    std::vector<FormulaRef> parts;
    for (TypeId type : positive_types) {
      parts.push_back(builder.BuildLocal(type, {QueryVar(1)}, radius));
    }
    type_disjunction = Formula::Or(std::move(parts));
  }

  for (const FormulaRef& d : distance_templates) candidates.push_back(d);
  if (type_disjunction != nullptr) {
    candidates.push_back(type_disjunction);
    for (const FormulaRef& d : distance_templates) {
      candidates.push_back(Formula::Or(d, type_disjunction));
      candidates.push_back(Formula::And(d, type_disjunction));
    }
  }
  return candidates;
}

}  // namespace folearn
