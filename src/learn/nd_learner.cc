#include "learn/nd_learner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "graph/algorithms.h"
#include "nd/covering.h"
#include "types/type.h"
#include "util/combinatorics.h"
#include "util/parallel.h"

namespace folearn {

int NdLearnerOptions::GameRadius(int k) const {
  int r = EffectiveRadius();
  int64_t base = static_cast<int64_t>(k + 2) * (2 * r + 1);
  int64_t radius = base;
  for (int i = 1; i < ell_star; ++i) radius *= 3;
  FOLEARN_CHECK_LE(radius, int64_t{1} << 28) << "game radius overflow";
  return static_cast<int>(radius);
}

namespace {

// One level of the contraction chain: the current graph G^i, its examples
// Λ^i, and the mapping of its vertices back to the original graph
// (kNoVertex for synthetic type-vertices t_{I,θ}).
struct Level {
  Graph graph;
  std::vector<Vertex> to_original;
  TrainingSet examples;
};

// Per-level conflict analysis.
struct ConflictInfo {
  std::vector<TypeId> example_types;  // local type per example
  int conflicting_type_classes = 0;
  std::vector<int> critical_indices;  // indices into level.examples (Γ^i)
};

ConflictInfo AnalyzeConflicts(const Level& level, int rank, int radius,
                              ResourceGovernor* governor) {
  ConflictInfo info;
  TypeRegistry registry(level.graph.vocabulary());
  info.example_types.reserve(level.examples.size());
  std::map<TypeId, std::pair<int64_t, int64_t>> counts;
  for (const LabeledExample& example : level.examples) {
    if (!GovernorCheckpoint(governor)) return info;  // caller checks status
    TypeId type =
        ComputeLocalType(level.graph, example.tuple, rank, radius, &registry);
    info.example_types.push_back(type);
    auto& entry = counts[type];
    (example.label ? entry.first : entry.second) += 1;
  }
  std::set<TypeId> conflicting;
  for (const auto& [type, count] : counts) {
    if (count.first > 0 && count.second > 0) conflicting.insert(type);
  }
  info.conflicting_type_classes = static_cast<int>(conflicting.size());
  for (size_t i = 0; i < level.examples.size(); ++i) {
    if (conflicting.count(info.example_types[i]) > 0) {
      info.critical_indices.push_back(static_cast<int>(i));
    }
  }
  return info;
}

// Lemma 14: greedy selection of high-impact centres.
//
// attended[v] = |Γ^i(v)| = number of critical tuples v̄ with
// v ∈ N_{2r+1}(v̄). Selection: repeatedly take the highest-count vertex at
// distance > 4r+2 from all previously selected, up to `max_centers`.
// Synthetic isolated vertices are skipped (Remark 17(1): they are never
// useful parameters).
std::vector<Vertex> SelectCenters(const Level& level,
                                  const std::vector<int>& critical_indices,
                                  int radius, int max_centers,
                                  ResourceGovernor* governor) {
  const int attend_radius = 2 * radius + 1;
  std::vector<int64_t> attended(level.graph.order(), 0);
  for (int index : critical_indices) {
    if (!GovernorCheckpoint(governor)) return {};
    std::vector<Vertex> ball =
        Ball(level.graph, level.examples[index].tuple, attend_radius);
    for (Vertex v : ball) ++attended[v];
  }
  std::vector<Vertex> order(level.graph.order());
  for (Vertex v = 0; v < level.graph.order(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
    return attended[a] > attended[b];
  });

  std::vector<Vertex> centers;
  std::vector<int> dist_to_centers(level.graph.order(), kUnreachable);
  for (Vertex v : order) {
    if (static_cast<int>(centers.size()) >= max_centers) break;
    if (attended[v] == 0) break;
    if (level.to_original[v] == kNoVertex) continue;  // synthetic
    if (!centers.empty() && dist_to_centers[v] != kUnreachable &&
        dist_to_centers[v] <= 4 * radius + 2) {
      continue;
    }
    centers.push_back(v);
    // Refresh distances to the selected set.
    dist_to_centers = BfsDistances(level.graph, centers, 4 * radius + 2);
  }
  return centers;
}

// Key for sharing t_{I,θ} vertices: the component's index set plus its type.
struct ComponentKey {
  std::vector<int> indices;
  TypeId type;
  bool operator<(const ComponentKey& other) const {
    if (indices != other.indices) return indices < other.indices;
    return type < other.type;
  }
};

// Lemma 16: contract G^i to G^{i+1} given the guessed Y, the covering
// (Z, R′), and Splitter’s answers w̄.
//
// Returns std::nullopt if no example survives the projection.
std::optional<Level> ContractLevel(const Level& level,
                                   const std::vector<Vertex>& y_set,
                                   const std::vector<Vertex>& z_set,
                                   int r_prime,
                                   const std::vector<Vertex>& splitter_moves,
                                   int k, int rank, int radius, int step,
                                   ResourceGovernor* governor) {
  const Graph& g = level.graph;
  const int keep_radius = 6 * radius + 3;        // N_{6r+3}(Y)
  const int comp_radius = 2 * radius + 1;        // H_v̄ edge threshold
  const int color_max_d = (k + 2) * (2 * radius + 1);

  // Distances used by colours and the projection.
  std::vector<std::vector<int>> dist_from_y;
  dist_from_y.reserve(y_set.size());
  for (Vertex y : y_set) {
    Vertex source[] = {y};
    dist_from_y.push_back(BfsDistances(g, source, color_max_d));
  }
  std::vector<int> dist_to_y = BfsDistances(g, y_set, keep_radius);

  // Vertex set of G^{i+1}: N_{R′}(Z) plus carried-over isolated vertices.
  std::vector<Vertex> keep = Ball(g, z_set, r_prime);
  for (Vertex v = 0; v < g.order(); ++v) {
    if (g.Degree(v) == 0) keep.push_back(v);
  }
  std::sort(keep.begin(), keep.end());
  keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
  InducedSubgraph induced = BuildInducedSubgraph(g, keep);

  Level next;
  next.graph = std::move(induced.graph);
  next.to_original.resize(next.graph.order());
  for (Vertex v = 0; v < next.graph.order(); ++v) {
    next.to_original[v] = level.to_original[induced.to_original[v]];
  }

  std::string tag = std::to_string(step);
  // Colours D_{j,d}: distance-d shells around each y_j (within the kept
  // vertex set).
  for (size_t j = 0; j < y_set.size(); ++j) {
    for (int d = 0; d <= color_max_d; ++d) {
      ColorId color = next.graph.AddColor("_D" + tag + "_" +
                                          std::to_string(j) + "_" +
                                          std::to_string(d));
      for (Vertex v = 0; v < next.graph.order(); ++v) {
        Vertex old = induced.to_original[v];
        if (dist_from_y[j][old] == d) next.graph.SetColor(v, color);
      }
    }
  }
  // Colours C_j = N_1(w_j) and B_j = {w_j}; then isolate w_j.
  for (size_t j = 0; j < splitter_moves.size(); ++j) {
    Vertex w_old = splitter_moves[j];
    Vertex w_new = induced.from_original[w_old];
    FOLEARN_CHECK_NE(w_new, kNoVertex)
        << "splitter move outside the contracted graph";
    ColorId c_color =
        next.graph.AddColor("_C" + tag + "_" + std::to_string(j));
    Vertex source[] = {w_old};
    std::vector<Vertex> closed = Ball(g, source, 1);
    for (Vertex u : closed) {
      Vertex mapped = induced.from_original[u];
      if (mapped != kNoVertex) next.graph.SetColor(mapped, c_color);
    }
    ColorId b_color =
        next.graph.AddColor("_B" + tag + "_" + std::to_string(j));
    next.graph.SetColor(w_new, b_color);
    next.graph.IsolateVertex(w_new);
  }

  // Project the examples. Only critical examples touching N_{6r+3}(Y)
  // survive; far components collapse to shared t_{I,θ} vertices.
  TypeRegistry registry(g.vocabulary());
  std::map<ComponentKey, Vertex> type_vertices;
  int type_vertex_counter = 0;
  for (const LabeledExample& example : level.examples) {
    if (!GovernorCheckpoint(governor)) return std::nullopt;
    bool touches_y = false;
    for (Vertex v : example.tuple) {
      if (dist_to_y[v] != kUnreachable && dist_to_y[v] <= keep_radius) {
        touches_y = true;
        break;
      }
    }
    if (!touches_y) continue;

    // Components of H_v̄: indices a, b joined iff dist(v_a, v_b) ≤ 2r+1.
    std::vector<int> component(k);
    for (int a = 0; a < k; ++a) component[a] = a;
    for (int a = 0; a < k; ++a) {
      Vertex source[] = {example.tuple[a]};
      std::vector<int> dist = BfsDistances(g, source, comp_radius);
      for (int b = a + 1; b < k; ++b) {
        int d = dist[example.tuple[b]];
        if (d != kUnreachable && d <= comp_radius) {
          // Union (tiny k: path-compression-free relabel).
          int from = component[b];
          int to = component[a];
          for (int c = 0; c < k; ++c) {
            if (component[c] == from) component[c] = to;
          }
        }
      }
    }

    std::vector<Vertex> projected(k, kNoVertex);
    bool ok = true;
    for (int root = 0; root < k && ok; ++root) {
      std::vector<int> members;
      for (int a = 0; a < k; ++a) {
        if (component[a] == root) members.push_back(a);
      }
      if (members.empty()) continue;
      bool near_y = false;
      for (int a : members) {
        int d = dist_to_y[example.tuple[a]];
        if (d != kUnreachable && d <= keep_radius) {
          near_y = true;
          break;
        }
      }
      if (near_y) {
        for (int a : members) {
          Vertex mapped = induced.from_original[example.tuple[a]];
          if (mapped == kNoVertex) {
            // With heuristic X/Y/Z choices the (k+2)(2r+1) containment
            // argument can fail; drop the example rather than mis-project.
            ok = false;
            break;
          }
          projected[a] = mapped;
        }
      } else {
        ComponentKey key;
        key.indices = members;
        std::vector<Vertex> sub_tuple;
        for (int a : members) sub_tuple.push_back(example.tuple[a]);
        key.type = ComputeLocalType(g, sub_tuple, rank, radius, &registry);
        auto [it, inserted] = type_vertices.emplace(key, kNoVertex);
        if (inserted) {
          Vertex t = next.graph.AddVertex();
          next.to_original.push_back(kNoVertex);
          ColorId color = next.graph.AddColor(
              "_T" + tag + "_" + std::to_string(type_vertex_counter++));
          next.graph.SetColor(t, color);
          it->second = t;
        }
        for (int a : members) projected[a] = it->second;
      }
    }
    if (!ok) continue;
    next.examples.push_back({std::move(projected), example.label});
  }
  if (next.examples.empty()) return std::nullopt;
  return next;
}

class CandidateCollector {
 public:
  CandidateCollector(const NdLearnerOptions& options, int k,
                     SplitterStrategy* splitter, int rounds,
                     NdLearnerResult* result)
      : options_(options),
        k_(k),
        splitter_(splitter),
        rounds_(rounds),
        result_(result) {}

  void Collect(const Level& level, int step,
               const std::vector<Vertex>& prefix) {
    // The "stop here" candidate is always available: later steps only add
    // parameters.
    AddCandidate(prefix);
    if (step >= rounds_) return;
    if (Full()) return;

    const int radius = options_.EffectiveRadius();
    ConflictInfo conflicts =
        AnalyzeConflicts(level, options_.rank, radius, options_.governor);
    if (GovernorInterrupted(options_.governor)) return;
    NdStepStats stats;
    stats.step = step;
    stats.graph_order = level.graph.order();
    stats.examples = static_cast<int>(level.examples.size());
    stats.conflicts = conflicts.conflicting_type_classes;
    stats.critical = static_cast<int>(conflicts.critical_indices.size());
    // Record the step entry up front (depth-first recursion would otherwise
    // report deeper levels before their parents); `branches` is patched in
    // by index after the branch loop.
    const size_t stats_index = result_->steps.size();
    result_->steps.push_back(stats);
    if (conflicts.critical_indices.empty()) {
      return;  // every example classified by its local type alone
    }

    // Lemma 14 centre budget: ⌈kℓ*s/ε⌉.
    int max_centers = static_cast<int>(
        std::min<double>(64.0, std::ceil(k_ * options_.ell_star * rounds_ /
                                         options_.epsilon)));
    std::vector<Vertex> x_set =
        SelectCenters(level, conflicts.critical_indices, radius, max_centers,
                      options_.governor);
    result_->steps[stats_index].x_size = static_cast<int>(x_set.size());
    if (x_set.empty() || GovernorInterrupted(options_.governor)) return;

    // Unroll the nondeterministic guess Y ⊆ X, |Y| ≤ ℓ*. X is sorted by
    // impact, so lexicographically early subsets carry the most attended
    // conflicts; we enumerate in that order and cap the branch count.
    std::vector<std::vector<int64_t>> subsets;
    ForEachSubsetUpTo(
        static_cast<int64_t>(x_set.size()),
        /*min_size=*/1,
        std::min<int>(options_.ell_star, static_cast<int>(x_set.size())),
        [&](const std::vector<int64_t>& subset) {
          subsets.push_back(subset);
          return static_cast<int>(subsets.size()) <
                 options_.max_branches_per_step;
        });

    int branches = 0;
    for (const std::vector<int64_t>& subset : subsets) {
      if (Full()) break;
      if (!GovernorCheckpoint(options_.governor)) break;
      ++branches;
      std::vector<Vertex> y_set;
      for (int64_t index : subset) y_set.push_back(x_set[index]);
      ExploreBranch(level, step, prefix, y_set);
    }
    result_->steps[stats_index].branches = branches;
  }

  bool Full() const {
    return static_cast<int>(candidates_.size()) >=
           options_.max_total_candidates;
  }

  const std::vector<std::vector<Vertex>>& candidates() const {
    return candidates_;
  }

 private:
  void ExploreBranch(const Level& level, int step,
                     const std::vector<Vertex>& prefix,
                     const std::vector<Vertex>& y_set) {
    const int radius = options_.EffectiveRadius();
    // Lemma 3 covering at radius (k+2)(2r+1).
    CoveringResult covering = GreedyBallCovering(
        level.graph, y_set, (k_ + 2) * (2 * radius + 1));
    // Splitter's answers to Connector picks z_j at radius R′.
    std::vector<Vertex> moves;
    std::vector<Vertex> prefix_extension = prefix;
    for (Vertex z : covering.centers) {
      Vertex w = splitter_->ChooseRemoval(level.graph, z, covering.radius);
      moves.push_back(w);
      Vertex original = level.to_original[w];
      if (original != kNoVertex) prefix_extension.push_back(original);
    }
    std::optional<Level> next =
        ContractLevel(level, y_set, covering.centers, covering.radius, moves,
                      k_, options_.rank, radius, step, options_.governor);
    if (!next.has_value()) {
      AddCandidate(prefix_extension);
      return;
    }
    Collect(*next, step + 1, prefix_extension);
  }

  void AddCandidate(const std::vector<Vertex>& candidate) {
    if (Full()) return;
    if (seen_.insert(candidate).second) candidates_.push_back(candidate);
  }

  const NdLearnerOptions& options_;
  int k_;
  SplitterStrategy* splitter_;
  int rounds_;
  NdLearnerResult* result_;
  std::vector<std::vector<Vertex>> candidates_;
  std::set<std::vector<Vertex>> seen_;
};

}  // namespace

NdLearnerResult LearnNowhereDense(const Graph& graph,
                                  const TrainingSet& examples,
                                  const NdLearnerOptions& options) {
  FOLEARN_CHECK_GE(options.ell_star, 1);
  FOLEARN_CHECK_GT(options.epsilon, 0.0);
  NdLearnerResult result;
  if (examples.empty()) {
    result.erm.training_error = 0.0;
    return result;
  }
  const int k = static_cast<int>(examples[0].tuple.size());
  const int rounds = options.EffectiveRounds(k);

  std::unique_ptr<SplitterStrategy> default_splitter;
  SplitterStrategy* splitter = options.splitter;
  if (splitter == nullptr) {
    default_splitter = MakeTreeSplitter();
    splitter = default_splitter.get();
  }

  Level root;
  root.graph = graph;
  root.to_original.resize(graph.order());
  for (Vertex v = 0; v < graph.order(); ++v) root.to_original[v] = v;
  root.examples = examples;

  // Resuming: the saved frontier was written during the final phase, so the
  // original process completed collection before dying, and collection is a
  // deterministic pure function of the inputs — replay it ungoverned. Its
  // original charge is part of the restored ledger, which RunResumableScan
  // primes below; charging the replay too would double-count it.
  const bool resuming = options.scan.resume != nullptr;
  NdLearnerOptions collect_options = options;
  if (resuming) collect_options.governor = nullptr;

  CandidateCollector collector(collect_options, k, splitter, rounds, &result);
  collector.Collect(root, 0, {});

  // Final phase: evaluate every candidate parameter tuple by type-majority
  // ERM on the original graph; keep the best.
  const int final_radius = options.final_radius >= 0
                               ? options.final_radius
                               : 2 * options.EffectiveRadius() + 1;
  ErmOptions erm_options{options.rank, final_radius, options.governor};
  auto registry = std::make_shared<TypeRegistry>(graph.vocabulary());
  const std::vector<std::vector<Vertex>>& candidates = collector.candidates();
  const int64_t num_candidates = static_cast<int64_t>(candidates.size());
  const int64_t m = static_cast<int64_t>(examples.size());
  // Sequential checkpoint cost: candidate 0 pays m (no leading outer
  // checkpoint — it runs even under a tripped governor); every later
  // candidate pays 1 + m. After p ≥ 1 complete candidates the scan has
  // spent p·(m+1) − 1 checkpoints.
  const int64_t unit = m + 1;
  ResourceGovernor* governor = options.governor;
  const int64_t allowance =
      governor == nullptr || resuming ? kNoLimit
                                      : governor->DeterministicAllowance();
  const int64_t full = allowance == kNoLimit
                           ? num_candidates
                           : std::min(num_candidates, (allowance + 1) / unit);
  if (full == 0 && !resuming) {
    // Not even the first candidate can complete (or there are none): keep
    // the sequential loop, whose partial-first-candidate semantics the
    // parallel path cannot reproduce more cheaply.
    bool have_complete = false;
    bool first = true;
    for (const std::vector<Vertex>& candidate : candidates) {
      if (!first && !GovernorCheckpoint(governor)) break;
      ErmResult erm =
          TypeMajorityErm(graph, examples, candidate, erm_options, registry);
      ++result.candidates_evaluated;
      const bool complete = erm.status == RunStatus::kComplete;
      if (first || (complete &&
                    (!have_complete ||
                     erm.training_error < result.erm.training_error))) {
        result.erm = std::move(erm);
        result.parameters = candidate;
      }
      first = false;
      have_complete = have_complete || complete;
      if (have_complete && result.erm.training_error == 0.0) break;
      if (GovernorInterrupted(governor)) break;
    }
    result.status = GovernorStatus(governor);
    result.erm.status = result.status;
    return result;
  }

  // Same evaluate-then-settle scheme as BruteForceErm: errors in [0, full)
  // on per-worker registry shards and ball caches, deterministic argmin
  // with ties to the lowest index, then the winner alone is re-evaluated
  // on the shared registry so its TypeIds are thread-count independent.
  const int workers = EffectiveThreads(options.threads);
  std::vector<std::shared_ptr<TypeRegistry>> shards(workers);
  std::vector<std::unique_ptr<BallCache>> caches(workers);
  ErmOptions shard_base = erm_options;
  shard_base.governor = nullptr;

  ScanSpec spec;
  spec.n_items = num_candidates;
  spec.unit = unit;
  // Candidate 0 of a fresh scan pays m, not m + 1 (no leading outer
  // checkpoint); RunResumableScan's discount reproduces the sequential
  // ledger exactly, resumed or not.
  spec.first_item_discount = 1;
  spec.early_stop = true;  // the sequential loop stops at zero error
  spec.threads = workers;
  spec.chunk_size = 1;  // few, expensive candidates
  spec.governor = governor;
  spec.checkpointer = options.scan.checkpointer;
  spec.resume = options.scan.resume;
  spec.learner = "nd";
  spec.fingerprint = options.scan.fingerprint;
  ScanOutcome outcome = RunResumableScan(
      spec, [&](int64_t index, int worker) -> std::pair<double, bool> {
        if (shards[worker] == nullptr) {
          shards[worker] = std::make_shared<TypeRegistry>(graph.vocabulary());
          caches[worker] =
              std::make_unique<BallCache>(graph, options.cache_bytes);
        }
        ErmOptions local = shard_base;
        local.ball_cache = caches[worker].get();
        ErmResult erm = TypeMajorityErm(graph, examples, candidates[index],
                                        local, shards[worker]);
        return {erm.training_error, erm.training_error == 0.0};
      });
  const int64_t winner = outcome.winner;
  result.candidates_evaluated = outcome.tried;

  if (winner < 0) {
    // Passive stop before the first candidate finished: evaluate it under
    // the (about to latch) governor, like the sequential loop's
    // unconditional first iteration. The parallel path only runs with at
    // least one candidate (full >= 1, or a resumed scan of such a run).
    FOLEARN_CHECK_GT(num_candidates, 0);
    if (governor != nullptr) governor->CheckpointBatch(1);
    result.erm = TypeMajorityErm(graph, examples, candidates[0], erm_options,
                                 registry);
    result.parameters = candidates[0];
    result.candidates_evaluated = 1;
  } else {
    ErmOptions winner_options = erm_options;
    winner_options.governor = nullptr;
    result.erm = TypeMajorityErm(graph, examples, candidates[winner],
                                 winner_options, registry);
    result.parameters = candidates[winner];
  }
  result.status = GovernorStatus(governor);
  result.erm.status = result.status;
  return result;
}

}  // namespace folearn
