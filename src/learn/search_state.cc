#include "learn/search_state.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/parallel.h"
#include "util/strings.h"

namespace folearn {

namespace {

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string HexU64(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

bool ParseHexU64(std::string_view text, uint64_t* value) {
  if (text.size() != 16) return false;
  uint64_t result = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    result = (result << 4) | static_cast<uint64_t>(digit);
  }
  *value = result;
  return true;
}

// Decimal int64 with an optional leading '-' (best_index can be −1).
bool ParseSignedInt64(std::string_view text, int64_t* value) {
  bool negative = false;
  if (!text.empty() && text[0] == '-') {
    negative = true;
    text.remove_prefix(1);
  }
  if (text.empty() || text.size() > 18) return false;
  int64_t result = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    result = result * 10 + (c - '0');
  }
  *value = negative ? -result : result;
  return true;
}

Status FieldError(int line, const std::string& detail) {
  return DataLossError("frontier line " + std::to_string(line) + ": " +
                       detail);
}

}  // namespace

std::string SerializeFrontier(const SearchFrontier& frontier) {
  std::string out;
  out += "learner " + frontier.learner + '\n';
  out += "fingerprint " + HexU64(frontier.fingerprint) + '\n';
  out += "cursor " + std::to_string(frontier.cursor) + '\n';
  out += "best_index " + std::to_string(frontier.best_index) + '\n';
  out += "best_error_bits " + HexU64(DoubleBits(frontier.best_error)) + '\n';
  out += "tried " + std::to_string(frontier.tried) + '\n';
  out += "governor_work " + std::to_string(frontier.governor_work) + '\n';
  out +=
      "governor_checkpoints " + std::to_string(frontier.governor_checkpoints) +
      '\n';
  return out;
}

StatusOr<SearchFrontier> ParseFrontier(std::string_view payload) {
  // Fields in fixed order, one per line; anything else is corrupt.
  std::vector<std::string> lines = Split(payload, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  constexpr const char* kFields[] = {
      "learner",          "fingerprint",   "cursor",
      "best_index",       "best_error_bits", "tried",
      "governor_work",    "governor_checkpoints"};
  constexpr int kNumFields = 8;
  if (static_cast<int>(lines.size()) != kNumFields) {
    return DataLossError("frontier payload has " +
                         std::to_string(lines.size()) + " lines, expected " +
                         std::to_string(kNumFields));
  }
  SearchFrontier frontier;
  for (int i = 0; i < kNumFields; ++i) {
    const std::string& line = lines[i];
    const std::string prefix = std::string(kFields[i]) + ' ';
    if (line.substr(0, prefix.size()) != prefix) {
      return FieldError(i + 1, "expected '" + std::string(kFields[i]) +
                                   " <value>', got '" + line + "'");
    }
    const std::string value = line.substr(prefix.size());
    bool parsed = true;
    switch (i) {
      case 0:
        frontier.learner = value;
        parsed = !value.empty() && value.find(' ') == std::string::npos;
        break;
      case 1:
        parsed = ParseHexU64(value, &frontier.fingerprint);
        break;
      case 2:
        parsed = ParseSignedInt64(value, &frontier.cursor) &&
                 frontier.cursor >= 0;
        break;
      case 3:
        parsed = ParseSignedInt64(value, &frontier.best_index) &&
                 frontier.best_index >= -1;
        break;
      case 4: {
        uint64_t bits = 0;
        parsed = ParseHexU64(value, &bits);
        frontier.best_error = DoubleFromBits(bits);
        break;
      }
      case 5:
        parsed =
            ParseSignedInt64(value, &frontier.tried) && frontier.tried >= 0;
        break;
      case 6:
        parsed = ParseSignedInt64(value, &frontier.governor_work) &&
                 frontier.governor_work >= 0;
        break;
      case 7:
        parsed = ParseSignedInt64(value, &frontier.governor_checkpoints) &&
                 frontier.governor_checkpoints >= 0;
        break;
    }
    if (!parsed) {
      return FieldError(i + 1, "malformed " + std::string(kFields[i]) +
                                   " value '" + value + "'");
    }
  }
  if (frontier.best_index >= frontier.cursor) {
    return DataLossError("frontier best_index " +
                         std::to_string(frontier.best_index) +
                         " not below cursor " +
                         std::to_string(frontier.cursor));
  }
  return frontier;
}

Status SaveFrontier(const std::string& path, const SearchFrontier& frontier) {
  return WriteCheckpointFile(path, SerializeFrontier(frontier));
}

StatusOr<SearchFrontier> LoadFrontier(const std::string& path) {
  StatusOr<std::string> payload = ReadCheckpointFile(path);
  if (!payload.ok()) return payload.status();
  StatusOr<SearchFrontier> frontier = ParseFrontier(*payload);
  if (!frontier.ok()) {
    return Status(frontier.status().code(),
                  path + ": " + frontier.status().message());
  }
  return frontier;
}

Status CheckFrontierCompatible(const SearchFrontier& frontier,
                               std::string_view learner,
                               uint64_t fingerprint) {
  if (frontier.learner != learner) {
    return InvalidArgumentError(
        "checkpoint was written by learner '" + frontier.learner +
        "', this run uses '" + std::string(learner) + "'");
  }
  if (frontier.fingerprint != fingerprint) {
    return InvalidArgumentError(
        "checkpoint fingerprint " + HexU64(frontier.fingerprint) +
        " does not match this problem instance (" + HexU64(fingerprint) +
        "): graph, training data, or learner parameters differ");
  }
  return OkStatus();
}

void SearchCheckpointer::Save(const SearchFrontier& frontier) {
  if (disabled_) return;
  Status status = SaveFrontier(path_, frontier);
  if (!status.ok()) {
    std::fprintf(stderr,
                 "warning: checkpointing disabled: %s\n",
                 status.message().c_str());
    disabled_ = true;
    return;
  }
  ++saves_;
  timer_.Restart();
  if (crash_after_saves_ >= 0 && saves_ >= crash_after_saves_) {
    InjectedCrash("checkpoint-save", saves_);
  }
}

ScanOutcome RunResumableScan(
    const ScanSpec& spec,
    const std::function<std::pair<double, bool>(int64_t, int)>& eval) {
  FOLEARN_CHECK_GE(spec.n_items, 0);
  FOLEARN_CHECK_GT(spec.unit, 0);
  FOLEARN_CHECK_GE(spec.first_item_discount, 0);
  FOLEARN_CHECK_LE(spec.first_item_discount, 1);
  FOLEARN_CHECK_GE(spec.stride, 1);
  ResourceGovernor* governor = spec.governor;

  ScanOutcome out;
  int64_t start = 0;
  if (spec.resume != nullptr) {
    const SearchFrontier& frontier = *spec.resume;
    // The CLI validates external frontiers (CheckFrontierCompatible + the
    // parse-level range checks); an incompatible one here is a caller bug.
    FOLEARN_CHECK(frontier.learner == spec.learner)
        << "resume frontier from learner '" << frontier.learner << "'";
    FOLEARN_CHECK_EQ(frontier.fingerprint, spec.fingerprint);
    FOLEARN_CHECK_LE(frontier.cursor, spec.n_items);
    start = frontier.cursor;
    out.winner = frontier.best_index;
    out.best_error = frontier.best_error;
    out.tried = frontier.tried;
    if (governor != nullptr) {
      governor->RestoreLedger(frontier.governor_work,
                              frontier.governor_checkpoints);
    }
    if (spec.early_stop && out.winner >= 0 && out.best_error == 0.0) {
      // The uninterrupted scan stopped at this hit; nothing left to do.
      return out;
    }
  }
  // The first candidate's discount is only live on a fresh scan: a resumed
  // ledger already includes it.
  const int64_t discount = start == 0 ? spec.first_item_discount : 0;

  const int64_t allowance =
      governor == nullptr ? kNoLimit : governor->DeterministicAllowance();
  const int64_t budget_items =
      allowance == kNoLimit
          ? spec.n_items - start
          : std::min(spec.n_items - start, (allowance + discount) / spec.unit);
  const int64_t full_end = start + budget_items;

  SweepOptions sweep;
  sweep.threads = spec.threads;
  sweep.chunk_size = spec.chunk_size;
  sweep.governor = governor;
  sweep.stop_on_hit = spec.early_stop;

  // Last fully-settled frontier: the state after the most recent completed
  // segment (initially the scan entry state). Periodic saves write it, and
  // an interrupted scan writes it once more on the way out, so a Ctrl-C or
  // tripped budget never discards progress past the last save interval.
  SearchFrontier settled;
  settled.learner = spec.learner;
  settled.fingerprint = spec.fingerprint;
  settled.cursor = start;
  settled.best_index = out.winner;
  settled.best_error = out.best_error;
  settled.tried = out.tried;
  if (governor != nullptr) {
    settled.governor_work = governor->work_used();
    settled.governor_checkpoints = governor->checkpoints_passed();
  }

  int64_t cursor = start;
  bool passive = false;
  bool hit = false;
  while (cursor < full_end && !passive && !hit) {
    const int64_t seg_start = cursor;
    const int64_t seg_end =
        spec.checkpointer == nullptr
            ? full_end
            : std::min(full_end, seg_start + spec.stride);
    const int64_t seg_n = seg_end - seg_start;
    const int64_t seg_discount = seg_start == 0 ? discount : 0;
    SweepOutcome segment = ParallelSweep(
        seg_n, sweep,
        [&](int64_t index, int worker) {
          return eval(seg_start + index, worker);
        });

    // Merge: segments scan in increasing index order, so an earlier best
    // (including the resumed prefix) wins ties.
    if (segment.best_index >= 0 &&
        (out.winner < 0 || segment.best_key < out.best_error)) {
      out.winner = seg_start + segment.best_index;
      out.best_error = segment.best_key;
    }

    int64_t charge;
    if (segment.passive_stop) {
      // Deadline/cancellation: timing-dependent, like the sequential
      // deadline path; the trailing unit latches the trip.
      passive = true;
      out.tried += segment.evaluated;
      charge = segment.evaluated == 0 && seg_discount == 1
                   ? 0
                   : segment.evaluated * spec.unit + 1 - seg_discount;
    } else if (segment.first_hit >= 0) {
      hit = true;
      out.tried += segment.first_hit + 1;
      charge = (segment.first_hit + 1) * spec.unit - seg_discount;
    } else {
      out.tried += seg_n;
      charge = seg_n * spec.unit - seg_discount;
    }
    if (governor != nullptr) governor->CheckpointBatch(charge);
    cursor = seg_end;

    if (!passive && !hit) {
      settled.cursor = cursor;
      settled.best_index = out.winner;
      settled.best_error = out.best_error;
      settled.tried = out.tried;
      if (governor != nullptr) {
        settled.governor_work = governor->work_used();
        settled.governor_checkpoints = governor->checkpoints_passed();
      }
      if (spec.checkpointer != nullptr && spec.checkpointer->Due()) {
        spec.checkpointer->Save(settled);
      }
    }
  }

  if (!passive && !hit && full_end < spec.n_items) {
    // Deterministic trip mid-range: the sequential loop may still have
    // started (and counted) one partial candidate past the last complete
    // one; the leftover units plus the failing call latch the trip.
    const int64_t leftover =
        allowance - (budget_items * spec.unit - discount);
    if (governor != nullptr) governor->CheckpointBatch(leftover + 1);
    if (leftover > 0) out.tried += 1;
  }

  // Interrupted (cancellation, deadline, or a tripped deterministic
  // limit): persist the last settled frontier regardless of the save
  // interval, so the interruption exits through the same final-checkpoint
  // path as a periodic save and `--resume` continues from the cut instead
  // of losing everything since the last interval. A resumed run re-charges
  // any partial trailing work exactly as the interrupted one did, so the
  // byte-identity guarantee is unchanged.
  if (spec.checkpointer != nullptr &&
      (passive || GovernorInterrupted(governor))) {
    spec.checkpointer->Save(settled);
  }
  return out;
}

}  // namespace folearn
