#include "learn/dataset.h"

#include "mc/evaluator.h"
#include "util/combinatorics.h"

namespace folearn {

std::pair<int64_t, int64_t> CountLabels(const TrainingSet& examples) {
  int64_t positives = 0;
  for (const LabeledExample& example : examples) {
    if (example.label) ++positives;
  }
  return {positives, static_cast<int64_t>(examples.size()) - positives};
}

std::vector<std::vector<Vertex>> AllTuples(int n, int k) {
  FOLEARN_CHECK_LE(SaturatingPow(n, k), int64_t{10} * 1000 * 1000)
      << "AllTuples would materialise too many tuples";
  std::vector<std::vector<Vertex>> tuples;
  ForEachTuple(n, k, [&](const std::vector<int64_t>& tuple) {
    std::vector<Vertex> converted(tuple.begin(), tuple.end());
    tuples.push_back(std::move(converted));
    return true;
  });
  return tuples;
}

std::vector<std::vector<Vertex>> SampleTuples(int n, int k, int count,
                                              Rng& rng) {
  FOLEARN_CHECK_GT(n, 0);
  std::vector<std::vector<Vertex>> tuples;
  tuples.reserve(count);
  for (int i = 0; i < count; ++i) {
    std::vector<Vertex> tuple(k);
    for (Vertex& v : tuple) v = static_cast<Vertex>(rng.UniformIndex(n));
    tuples.push_back(std::move(tuple));
  }
  return tuples;
}

TrainingSet LabelByQuery(const Graph& graph, const FormulaRef& query,
                         std::span<const std::string> vars,
                         const std::vector<std::vector<Vertex>>& tuples) {
  // Batched evaluation: the query is compiled once and the plan reused
  // across all tuples (mc/compiled_eval.h).
  std::vector<bool> labels = EvaluateOnTuples(graph, query, vars, tuples);
  TrainingSet examples;
  examples.reserve(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    examples.push_back({tuples[i], labels[i]});
  }
  return examples;
}

void FlipLabels(TrainingSet& examples, double rate, Rng& rng) {
  for (LabeledExample& example : examples) {
    if (rng.Bernoulli(rate)) example.label = !example.label;
  }
}

std::pair<TrainingSet, TrainingSet> SplitTrainTest(const TrainingSet& all,
                                                   double train_fraction,
                                                   Rng& rng) {
  FOLEARN_CHECK(train_fraction >= 0.0 && train_fraction <= 1.0);
  TrainingSet shuffled = all;
  rng.Shuffle(shuffled);
  size_t cut = static_cast<size_t>(train_fraction * shuffled.size());
  TrainingSet train(shuffled.begin(), shuffled.begin() + cut);
  TrainingSet test(shuffled.begin() + cut, shuffled.end());
  return {std::move(train), std::move(test)};
}

}  // namespace folearn
