#ifndef FOLEARN_LEARN_ND_LEARNER_H_
#define FOLEARN_LEARN_ND_LEARNER_H_

#include <vector>

#include "graph/graph.h"
#include "learn/dataset.h"
#include "learn/erm.h"
#include "nd/splitter_game.h"

namespace folearn {

// Theorem 13: the fixed-parameter tractable (L,Q)-FO-ERM learner for
// nowhere dense graphs.
//
// Pipeline per step i (paper §5):
//  1. Conflicts Ξ: pairs of opposite-label examples with equal local
//     (q*, r)-types; critical set Γ^i = examples involved in a conflict.
//     Non-critical examples are classified by their local type alone.
//  2. Lemma 14: greedily select centres X (pairwise distance > 4r+2,
//     maximising the number of attended critical tuples |Γ^i(x)|, at most
//     ⌈kℓ*s/ε⌉ of them) — parameters outside N_{4r+2}(X) can only
//     discriminate an ε/(ℓ*s) fraction of Γ.
//  3. Guess Y ⊆ X with |Y| ≤ ℓ* (deterministically unrolled; branches
//     ranked by attended-conflict mass and capped).
//  4. Lemma 3: covering Z ⊆ Y with radius R′ = 3^j·(k+2)(2r+1) and
//     pairwise disjoint R′-balls.
//  5. Splitter’s answers w_j to Connector picks z_j at radius R′ become
//     this step’s parameters ŵ^i.
//  6. Lemma 16: contract to G^{i+1} = induced N_{R′}(Z) plus carried-over
//     isolated vertices, expanded by distance colours D_{j,d}, neighbour
//     colours C_j, marker colours B_j, with Splitter’s vertices isolated,
//     and examples projected component-wise (far components replaced by
//     shared isolated type-vertices t_{I,θ}).
//  7. Recurse; after ≤ s steps, evaluate every collected parameter
//     candidate by type-majority ERM on the original graph and return the
//     best hypothesis.
//
// Substitutions from the paper (all in DESIGN.md §4): type-majority ERM
// instead of formula enumeration; realised types only for the t_{I,θ}
// vertices; heuristic Splitter strategies with a round budget s;
// branch/candidate caps for the nondeterministic Y guess.
struct NdLearnerOptions {
  int ell_star = 1;   // ℓ*: parameters per step
  int rank = 1;       // q*: quantifier-rank budget
  double epsilon = 0.25;
  int radius = -1;    // r; −1 ⇒ GaifmanRadius(rank)
  int splitter_rounds = -1;  // s; −1 ⇒ DefaultSplitterRounds(R)
  SplitterStrategy* splitter = nullptr;  // default: tree splitter
  int max_branches_per_step = 16;   // cap on Y-guess unrolling
  int max_total_candidates = 256;   // cap on collected parameter tuples
  int final_radius = -1;  // radius of the final type ERM; −1 ⇒ 2r+1
  // Optional resource governor (nullptr = ungoverned), shared by the
  // candidate-collection recursion and the final ERM phase. Work unit: one
  // local-type computation / branch exploration. On interruption the best
  // candidate evaluated so far is returned (anytime semantics).
  ResourceGovernor* governor = nullptr;
  // Worker threads for the final candidate-evaluation phase (0 = hardware
  // concurrency). Deterministic: the returned hypothesis, error, and
  // diagnostics are identical for any value — see BruteForceErm for the
  // mechanism. The collection recursion itself stays single-threaded (its
  // steps are sequentially dependent).
  int threads = 1;
  // Byte budget for the final phase's per-worker ball caches
  // (BallCache::kNoBudget = unbounded); results are budget-independent.
  int64_t cache_bytes = BallCache::kNoBudget;
  // Checkpoint/resume hooks for the final candidate-evaluation scan
  // (learner tag "nd"). Checkpoints are only written during the final
  // phase, so a resumable state implies candidate collection completed in
  // the original process; the resumed run replays the (deterministic)
  // collection ungoverned — its charge is already part of the restored
  // governor ledger — and continues the scan. See learn/search_state.h.
  ScanHooks scan;

  int EffectiveRadius() const {
    return radius >= 0 ? radius : GaifmanRadius(rank);
  }
  // R = 3^{ℓ*−1} · (k+2)(2r+1): the splitter-game radius (paper §5).
  int GameRadius(int k) const;
  int EffectiveRounds(int k) const {
    return splitter_rounds >= 0 ? splitter_rounds
                                : DefaultSplitterRounds(GameRadius(k));
  }
};

struct NdStepStats {
  int step = 0;
  int graph_order = 0;
  int examples = 0;
  int conflicts = 0;        // conflicting type classes
  int critical = 0;         // |Γ^i|
  int x_size = 0;           // |X|
  int branches = 0;         // Y guesses explored
};

struct NdLearnerResult {
  ErmResult erm;  // best hypothesis (types over the original graph) + error
  // kComplete: the full pipeline ran. Otherwise the governor tripped and
  // `erm` is the best candidate evaluated before the interruption.
  RunStatus status = RunStatus::kComplete;
  std::vector<NdStepStats> steps;
  int64_t candidates_evaluated = 0;
  // Parameters of the winning candidate (original-graph vertices).
  std::vector<Vertex> parameters;
};

NdLearnerResult LearnNowhereDense(const Graph& graph,
                                  const TrainingSet& examples,
                                  const NdLearnerOptions& options);

}  // namespace folearn

#endif  // FOLEARN_LEARN_ND_LEARNER_H_
