#include "learn/hypothesis.h"

#include <algorithm>

#include "mc/bytecode.h"
#include "mc/compiled_eval.h"
#include "mc/compiler.h"
#include "mc/vm.h"
#include "types/hintikka.h"

namespace folearn {

std::vector<std::string> Hypothesis::AllVars() const {
  std::vector<std::string> vars = query_vars;
  vars.insert(vars.end(), param_vars.begin(), param_vars.end());
  return vars;
}

bool Hypothesis::Classify(const Graph& graph, std::span<const Vertex> tuple,
                          const EvalOptions& options) const {
  FOLEARN_CHECK_EQ(tuple.size(), query_vars.size());
  FOLEARN_CHECK_EQ(parameters.size(), param_vars.size());
  if (ResolveEngine(options) == EvalEngine::kInterpreted) {
    Assignment assignment(query_vars, tuple);
    for (size_t i = 0; i < param_vars.size(); ++i) {
      assignment.Bind(param_vars[i], parameters[i]);
    }
    return Evaluate(graph, formula, assignment, options);
  }
  std::vector<Vertex> values(tuple.begin(), tuple.end());
  values.insert(values.end(), parameters.begin(), parameters.end());
  return EvaluateQuery(graph, formula, AllVars(), values, options);
}

double TrainingError(const Graph& graph, const Hypothesis& hypothesis,
                     const TrainingSet& examples, const EvalOptions& options) {
  if (examples.empty()) return 0.0;
  int64_t wrong = 0;
  const EvalEngine engine = ResolveEngine(options);
  if (engine == EvalEngine::kInterpreted) {
    for (const LabeledExample& example : examples) {
      if (hypothesis.Classify(graph, example.tuple, options) !=
          example.label) {
        ++wrong;
      }
    }
  } else {
    // Compile φ(x̄; ȳ) once and sweep the example tuples over one slot
    // environment, with the parameters written into the tail up front.
    FOLEARN_CHECK_EQ(hypothesis.parameters.size(),
                     hypothesis.param_vars.size());
    CompiledFormula plan =
        CompileFormula(hypothesis.formula, hypothesis.AllVars());
    const size_t k = hypothesis.query_vars.size();
    std::vector<Vertex> env(k + hypothesis.parameters.size());
    std::copy(hypothesis.parameters.begin(), hypothesis.parameters.end(),
              env.begin() + static_cast<ptrdiff_t>(k));
    auto sweep = [&](auto& evaluator) {
      for (const LabeledExample& example : examples) {
        FOLEARN_CHECK_EQ(example.tuple.size(), k);
        std::copy(example.tuple.begin(), example.tuple.end(), env.begin());
        if (evaluator.Eval(env) != example.label) ++wrong;
      }
    };
    if (engine == EvalEngine::kVm) {
      LoweredPlan lowered = LowerPlan(plan);
      VmEvaluator evaluator(plan, lowered, graph, options);
      sweep(evaluator);
    } else {
      CompiledEvaluator evaluator(plan, graph, options);
      sweep(evaluator);
    }
  }
  return static_cast<double>(wrong) / static_cast<double>(examples.size());
}

bool TypeSetHypothesis::Classify(const Graph& graph,
                                 std::span<const Vertex> tuple) const {
  FOLEARN_CHECK_EQ(static_cast<int>(tuple.size()), k);
  FOLEARN_CHECK(registry != nullptr);
  std::vector<Vertex> combined(tuple.begin(), tuple.end());
  combined.insert(combined.end(), parameters.begin(), parameters.end());
  TypeId type =
      ComputeLocalType(graph, combined, rank, radius, registry.get());
  return std::binary_search(accepted.begin(), accepted.end(), type);
}

double TypeSetHypothesis::Error(const Graph& graph,
                                const TrainingSet& examples) const {
  if (examples.empty()) return 0.0;
  int64_t wrong = 0;
  for (const LabeledExample& example : examples) {
    if (Classify(graph, example.tuple) != example.label) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(examples.size());
}

Hypothesis TypeSetHypothesis::ToExplicit() const {
  FOLEARN_CHECK(registry != nullptr);
  Hypothesis result;
  result.query_vars = QueryVars(k);
  result.param_vars = ParamVars(ell());
  result.parameters = parameters;
  std::vector<std::string> all_vars = result.query_vars;
  all_vars.insert(all_vars.end(), result.param_vars.begin(),
                  result.param_vars.end());
  HintikkaBuilder builder(*registry);
  std::vector<FormulaRef> parts;
  parts.reserve(accepted.size());
  for (TypeId type : accepted) {
    parts.push_back(builder.BuildLocal(type, all_vars, radius));
  }
  result.formula = Formula::Or(std::move(parts));
  return result;
}

}  // namespace folearn
