#ifndef FOLEARN_LEARN_COUNTING_ERM_H_
#define FOLEARN_LEARN_COUNTING_ERM_H_

#include <memory>
#include <span>

#include "graph/graph.h"
#include "learn/dataset.h"
#include "learn/hypothesis.h"
#include "types/counting_type.h"

namespace folearn {

// ERM for first-order logic with counting (FO+C) — the extension named in
// the paper's conclusion ("extend our results to … first-order logic with
// counting"), following van Bergerem (LICS 2019). A rank-q, threshold-≤T
// counting query with fixed parameters is a union of local COUNTING types
// (cap T), so the exact per-type majority vote carries over verbatim.
//
// Strictly more expressive at equal rank: "deg(x) ≥ t" is a rank-1 cap-t
// counting concept but needs rank t in plain FO (t pairwise-distinct
// witnesses).

struct CountingErmOptions {
  int rank = 1;
  int cap = 2;      // T: the largest observable threshold
  int radius = -1;  // −1 ⇒ GaifmanRadius(rank)

  int EffectiveRadius() const {
    return radius >= 0 ? radius : GaifmanRadius(rank);
  }
};

// The counting analogue of TypeSetHypothesis.
struct CountingHypothesis {
  int k = 0;
  int rank = 0;
  int radius = 0;
  std::vector<Vertex> parameters;
  std::shared_ptr<CountingTypeRegistry> registry;
  std::vector<TypeId> accepted;  // sorted

  bool Classify(const Graph& graph, std::span<const Vertex> tuple) const;
  double Error(const Graph& graph, const TrainingSet& examples) const;
  // Materialises an explicit FO+C formula hypothesis (counting Hintikka
  // disjunction, relativised to the hypothesis radius).
  Hypothesis ToExplicit() const;
};

struct CountingErmResult {
  CountingHypothesis hypothesis;
  double training_error = 1.0;
  int64_t parameter_tuples_tried = 0;
  int64_t distinct_types_seen = 0;
};

// Exact counting-ERM for fixed parameters (per-type majority vote).
CountingErmResult CountingTypeMajorityErm(
    const Graph& graph, const TrainingSet& examples,
    std::span<const Vertex> parameters, const CountingErmOptions& options,
    std::shared_ptr<CountingTypeRegistry> registry = nullptr);

// Brute force over all parameter tuples w̄ ∈ V^ℓ.
CountingErmResult CountingBruteForceErm(
    const Graph& graph, const TrainingSet& examples, int ell,
    const CountingErmOptions& options,
    std::shared_ptr<CountingTypeRegistry> registry = nullptr);

}  // namespace folearn

#endif  // FOLEARN_LEARN_COUNTING_ERM_H_
