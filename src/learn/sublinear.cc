#include "learn/sublinear.h"

#include <algorithm>
#include <map>
#include <set>

#include "graph/algorithms.h"
#include "util/combinatorics.h"

namespace folearn {

SublinearErmResult SublinearErm(const Graph& graph,
                                const TrainingSet& examples, int ell,
                                const ErmOptions& options) {
  FOLEARN_CHECK_GE(ell, 0);
  SublinearErmResult result;
  auto registry = std::make_shared<TypeRegistry>(graph.vocabulary());
  if (examples.empty() || ell == 0) {
    result.erm = TypeMajorityErm(graph, examples, {}, options, registry);
    return result;
  }
  const int radius = options.EffectiveRadius();

  // Candidate pool: the (2r+1)-neighbourhood of all example entries —
  // parameters outside it add example-independent information only
  // (Lemma 15 / the [22] locality argument) — plus one far representative
  // so hypotheses that want an "inert" parameter slot still exist.
  std::vector<Vertex> sources;
  for (const LabeledExample& example : examples) {
    sources.insert(sources.end(), example.tuple.begin(),
                   example.tuple.end());
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  std::vector<int> dist = BfsDistances(graph, sources, 2 * radius + 1);
  std::vector<Vertex> pool;
  Vertex far_representative = kNoVertex;
  for (Vertex v = 0; v < graph.order(); ++v) {
    if (dist[v] != kUnreachable) {
      pool.push_back(v);
    } else if (far_representative == kNoVertex) {
      far_representative = v;
    }
  }
  if (far_representative != kNoVertex) pool.push_back(far_representative);
  result.candidate_pool_size = static_cast<int64_t>(pool.size());

  // Brute force over pool^ell (pool is example-local, so this is
  // m·d^{O(r)}-sized, not n-sized). Anytime: keeps the best fully
  // evaluated candidate when the governor trips mid-scan.
  bool have_complete = false;
  int64_t tried = 0;
  ForEachTuple(static_cast<int64_t>(pool.size()), ell,
               [&](const std::vector<int64_t>& raw) {
                 if (!GovernorCheckpoint(options.governor)) return false;
                 std::vector<Vertex> parameters;
                 parameters.reserve(raw.size());
                 for (int64_t index : raw) parameters.push_back(pool[index]);
                 ErmResult candidate = TypeMajorityErm(
                     graph, examples, parameters, options, registry);
                 ++tried;
                 if (candidate.status == RunStatus::kComplete) {
                   if (!have_complete ||
                       candidate.training_error <
                           result.erm.training_error) {
                     result.erm = std::move(candidate);
                     have_complete = true;
                   }
                 } else if (tried == 1) {
                   result.erm = std::move(candidate);
                 }
                 if (GovernorInterrupted(options.governor)) return false;
                 return result.erm.training_error > 0.0 || !have_complete;
               });
  result.erm.parameter_tuples_tried = tried;
  result.erm.status = GovernorStatus(options.governor);
  return result;
}

LocalTypeIndex::LocalTypeIndex(const Graph& graph, int rank, int radius,
                               ResourceGovernor* governor)
    : rank_(rank),
      radius_(radius),
      registry_(std::make_shared<TypeRegistry>(graph.vocabulary())) {
  types_.reserve(graph.order());
  for (Vertex v = 0; v < graph.order(); ++v) {
    if (!GovernorCheckpoint(governor)) break;
    Vertex tuple[] = {v};
    types_.push_back(
        ComputeLocalType(graph, tuple, rank, radius, registry_.get()));
  }
  build_status_ = GovernorStatus(governor);
}

ErmResult LocalTypeIndex::Erm(const TrainingSet& examples) const {
  ErmResult result;
  result.parameter_tuples_tried = 1;
  TypeSetHypothesis& h = result.hypothesis;
  h.rank = rank_;
  h.radius = radius_;
  h.registry = registry_;
  h.k = 1;

  std::map<TypeId, std::pair<int64_t, int64_t>> counts;
  for (const LabeledExample& example : examples) {
    FOLEARN_CHECK_EQ(example.tuple.size(), 1u)
        << "LocalTypeIndex supports unary examples";
    auto& entry = counts[Lookup(example.tuple[0])];
    (example.label ? entry.first : entry.second) += 1;
  }
  result.distinct_types_seen = static_cast<int64_t>(counts.size());
  int64_t wrong = 0;
  for (const auto& [type, count] : counts) {
    if (count.first > count.second) {
      h.accepted.push_back(type);
      wrong += count.second;
    } else {
      wrong += count.first;
    }
  }
  result.training_error =
      examples.empty()
          ? 0.0
          : static_cast<double>(wrong) / static_cast<double>(examples.size());
  return result;
}

int64_t LocalTypeIndex::distinct_types() const {
  std::set<TypeId> distinct(types_.begin(), types_.end());
  return static_cast<int64_t>(distinct.size());
}

}  // namespace folearn
