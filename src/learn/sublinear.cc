#include "learn/sublinear.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "graph/algorithms.h"
#include "learn/search_state.h"
#include "util/combinatorics.h"
#include "util/parallel.h"

namespace folearn {

namespace {

// The original single-threaded pool scan, kept as the fallback for ranges
// whose allowance cannot fit even one candidate (partial-first-candidate
// semantics) — mirrors BruteForceErmSequential.
void SublinearScanSequential(const Graph& graph, const TrainingSet& examples,
                             int ell, const ErmOptions& options,
                             std::span<const Vertex> pool,
                             std::shared_ptr<TypeRegistry> registry,
                             SublinearErmResult* result) {
  bool have_complete = false;
  int64_t tried = 0;
  ForEachTuple(static_cast<int64_t>(pool.size()), ell,
               [&](const std::vector<int64_t>& raw) {
                 if (!GovernorCheckpoint(options.governor)) return false;
                 std::vector<Vertex> parameters;
                 parameters.reserve(raw.size());
                 for (int64_t index : raw) parameters.push_back(pool[index]);
                 ErmResult candidate = TypeMajorityErm(
                     graph, examples, parameters, options, registry);
                 ++tried;
                 if (candidate.status == RunStatus::kComplete) {
                   if (!have_complete ||
                       candidate.training_error <
                           result->erm.training_error) {
                     result->erm = std::move(candidate);
                     have_complete = true;
                   }
                 } else if (tried == 1) {
                   result->erm = std::move(candidate);
                 }
                 if (GovernorInterrupted(options.governor)) return false;
                 return result->erm.training_error > 0.0 || !have_complete;
               });
  result->erm.parameter_tuples_tried = tried;
  result->erm.status = GovernorStatus(options.governor);
}

}  // namespace

SublinearErmResult SublinearErm(const Graph& graph,
                                const TrainingSet& examples, int ell,
                                const ErmOptions& options) {
  FOLEARN_CHECK_GE(ell, 0);
  SublinearErmResult result;
  auto registry = std::make_shared<TypeRegistry>(graph.vocabulary());
  if (examples.empty() || ell == 0) {
    result.erm = TypeMajorityErm(graph, examples, {}, options, registry);
    return result;
  }
  const int radius = options.EffectiveRadius();

  // Candidate pool: the (2r+1)-neighbourhood of all example entries —
  // parameters outside it add example-independent information only
  // (Lemma 15 / the [22] locality argument) — plus one far representative
  // so hypotheses that want an "inert" parameter slot still exist. The pool
  // is a pure function of (graph, examples, radius), so a resumed run
  // recomputes it identically.
  std::vector<Vertex> sources;
  for (const LabeledExample& example : examples) {
    sources.insert(sources.end(), example.tuple.begin(),
                   example.tuple.end());
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  std::vector<int> dist = BfsDistances(graph, sources, 2 * radius + 1);
  std::vector<Vertex> pool;
  Vertex far_representative = kNoVertex;
  for (Vertex v = 0; v < graph.order(); ++v) {
    if (dist[v] != kUnreachable) {
      pool.push_back(v);
    } else if (far_representative == kNoVertex) {
      far_representative = v;
    }
  }
  if (far_representative != kNoVertex) pool.push_back(far_representative);
  result.candidate_pool_size = static_cast<int64_t>(pool.size());

  // Brute force over pool^ell (pool is example-local, so this is
  // m·d^{O(r)}-sized, not n-sized), with the same evaluate-then-settle
  // scheme as BruteForceErm: errors on per-worker registry shards, then the
  // winner alone re-evaluated on the caller's registry so TypeIds,
  // serialised model bytes, and diagnostics are identical for any thread
  // count — and for a resumed scan. Anytime: keeps the best fully
  // evaluated candidate when the governor trips mid-scan.
  const int64_t n_items = SaturatingPow(static_cast<int64_t>(pool.size()),
                                        ell);
  const int64_t m = static_cast<int64_t>(examples.size());
  const int64_t unit = m + 1;
  ResourceGovernor* governor = options.governor;

  if (options.scan.resume == nullptr) {
    const int64_t allowance =
        governor == nullptr ? kNoLimit : governor->DeterministicAllowance();
    const int64_t full =
        allowance == kNoLimit ? n_items : std::min(n_items, allowance / unit);
    if (full == 0) {
      SublinearScanSequential(graph, examples, ell, options, pool, registry,
                              &result);
      return result;
    }
  }

  const int workers = EffectiveThreads(options.threads);
  std::vector<std::shared_ptr<TypeRegistry>> shards(workers);
  std::vector<std::unique_ptr<BallCache>> caches(workers);
  ErmOptions shard_options = options;
  shard_options.governor = nullptr;
  shard_options.threads = 1;

  ScanSpec spec;
  spec.n_items = n_items;
  spec.unit = unit;
  spec.early_stop = true;  // the sequential loop stops at zero error
  spec.threads = workers;
  spec.chunk_size = 8;
  spec.governor = governor;
  spec.checkpointer = options.scan.checkpointer;
  spec.resume = options.scan.resume;
  spec.learner = "sublinear";
  spec.fingerprint = options.scan.fingerprint;
  ScanOutcome outcome = RunResumableScan(
      spec, [&](int64_t index, int worker) -> std::pair<double, bool> {
        if (shards[worker] == nullptr) {
          shards[worker] = std::make_shared<TypeRegistry>(graph.vocabulary());
          caches[worker] =
              std::make_unique<BallCache>(graph, options.cache_bytes);
        }
        std::vector<int64_t> raw =
            NthTuple(static_cast<int64_t>(pool.size()), ell, index);
        std::vector<Vertex> parameters;
        parameters.reserve(raw.size());
        for (int64_t pool_index : raw) parameters.push_back(pool[pool_index]);
        ErmOptions local = shard_options;
        local.ball_cache = caches[worker].get();
        ErmResult candidate = TypeMajorityErm(graph, examples, parameters,
                                              local, shards[worker]);
        return {candidate.training_error, candidate.training_error == 0.0};
      });

  if (outcome.winner >= 0) {
    std::vector<int64_t> raw =
        NthTuple(static_cast<int64_t>(pool.size()), ell, outcome.winner);
    std::vector<Vertex> parameters;
    parameters.reserve(raw.size());
    for (int64_t pool_index : raw) parameters.push_back(pool[pool_index]);
    ErmOptions winner_options = options;
    winner_options.governor = nullptr;
    result.erm = TypeMajorityErm(graph, examples, parameters, winner_options,
                                 registry);
  }
  result.erm.parameter_tuples_tried = outcome.tried;
  result.erm.status = GovernorStatus(options.governor);
  return result;
}

LocalTypeIndex::LocalTypeIndex(const Graph& graph, int rank, int radius,
                               ResourceGovernor* governor)
    : rank_(rank),
      radius_(radius),
      registry_(std::make_shared<TypeRegistry>(graph.vocabulary())) {
  types_.reserve(graph.order());
  for (Vertex v = 0; v < graph.order(); ++v) {
    if (!GovernorCheckpoint(governor)) break;
    Vertex tuple[] = {v};
    types_.push_back(
        ComputeLocalType(graph, tuple, rank, radius, registry_.get()));
  }
  build_status_ = GovernorStatus(governor);
}

ErmResult LocalTypeIndex::Erm(const TrainingSet& examples) const {
  ErmResult result;
  result.parameter_tuples_tried = 1;
  TypeSetHypothesis& h = result.hypothesis;
  h.rank = rank_;
  h.radius = radius_;
  h.registry = registry_;
  h.k = 1;

  std::map<TypeId, std::pair<int64_t, int64_t>> counts;
  for (const LabeledExample& example : examples) {
    FOLEARN_CHECK_EQ(example.tuple.size(), 1u)
        << "LocalTypeIndex supports unary examples";
    auto& entry = counts[Lookup(example.tuple[0])];
    (example.label ? entry.first : entry.second) += 1;
  }
  result.distinct_types_seen = static_cast<int64_t>(counts.size());
  int64_t wrong = 0;
  for (const auto& [type, count] : counts) {
    if (count.first > count.second) {
      h.accepted.push_back(type);
      wrong += count.second;
    } else {
      wrong += count.first;
    }
  }
  result.training_error =
      examples.empty()
          ? 0.0
          : static_cast<double>(wrong) / static_cast<double>(examples.size());
  return result;
}

int64_t LocalTypeIndex::distinct_types() const {
  std::set<TypeId> distinct(types_.begin(), types_.end());
  return static_cast<int64_t>(distinct.size());
}

}  // namespace folearn
