#include "learn/erm.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "mc/compiled_eval.h"
#include "mc/compiler.h"
#include "util/combinatorics.h"
#include "util/parallel.h"

namespace folearn {

ErmResult TypeMajorityErm(const Graph& graph, const TrainingSet& examples,
                          std::span<const Vertex> parameters,
                          const ErmOptions& options,
                          std::shared_ptr<TypeRegistry> registry) {
  if (registry == nullptr) {
    registry = std::make_shared<TypeRegistry>(graph.vocabulary());
  }
  const int radius = options.EffectiveRadius();

  ErmResult result;
  result.parameter_tuples_tried = 1;
  TypeSetHypothesis& h = result.hypothesis;
  h.rank = options.rank;
  h.radius = radius;
  h.parameters.assign(parameters.begin(), parameters.end());
  h.registry = registry;
  h.k = examples.empty() ? 0 : static_cast<int>(examples[0].tuple.size());

  // Count labels per local type of v̄w̄. Checkpoint per type computation;
  // an interrupted run majority-votes over the examples seen so far.
  std::map<TypeId, std::pair<int64_t, int64_t>> counts;  // type → (pos, neg)
  int64_t seen = 0;
  std::vector<Vertex> combined;
  combined.reserve(static_cast<size_t>(h.k) + parameters.size());
  for (const LabeledExample& example : examples) {
    if (!GovernorCheckpoint(options.governor)) break;
    FOLEARN_CHECK_EQ(static_cast<int>(example.tuple.size()), h.k);
    combined.assign(example.tuple.begin(), example.tuple.end());
    combined.insert(combined.end(), parameters.begin(), parameters.end());
    TypeId type = ComputeLocalType(graph, combined, options.rank, radius,
                                   registry.get(), options.ball_cache);
    ++seen;
    auto& entry = counts[type];
    if (example.label) {
      ++entry.first;
    } else {
      ++entry.second;
    }
  }
  result.status = GovernorStatus(options.governor);
  result.distinct_types_seen = static_cast<int64_t>(counts.size());

  int64_t wrong = 0;
  for (const auto& [type, count] : counts) {
    if (count.first > count.second) {
      h.accepted.push_back(type);  // majority-positive: accept
      wrong += count.second;
    } else {
      wrong += count.first;
    }
  }
  // counts is an ordered map, so `accepted` is already sorted.
  if (seen > 0) {
    result.training_error =
        static_cast<double>(wrong) / static_cast<double>(seen);
  } else {
    // Vacuously perfect on an empty training set; pessimistic when the
    // governor tripped before the first example.
    result.training_error = examples.empty() ? 0.0 : 1.0;
  }
  return result;
}

namespace {

// The original single-threaded scan, kept verbatim as the fallback for
// ranges the deterministic allowance cannot fit even one candidate into
// (the governor then trips inside the first candidate, and the partial
// majority vote / pessimistic-fallback semantics of PR 2 apply
// unchanged). The unified parallel path below reproduces this loop's
// results exactly whenever at least one candidate completes.
ErmResult BruteForceErmSequential(const Graph& graph,
                                  const TrainingSet& examples, int ell,
                                  const ErmOptions& options,
                                  std::shared_ptr<TypeRegistry> registry,
                                  bool early_stop) {
  ErmResult best;
  bool have_complete = false;
  int64_t tried = 0;
  ForEachTuple(graph.order(), ell, [&](const std::vector<int64_t>& raw) {
    if (!GovernorCheckpoint(options.governor)) return false;
    std::vector<Vertex> parameters(raw.begin(), raw.end());
    ErmResult candidate =
        TypeMajorityErm(graph, examples, parameters, options, registry);
    ++tried;
    if (candidate.status == RunStatus::kComplete) {
      if (!have_complete || candidate.training_error < best.training_error) {
        best = std::move(candidate);
        have_complete = true;
      }
    } else if (tried == 1) {
      // Interrupted mid-candidate with nothing better: keep the partial
      // majority vote rather than returning an empty hypothesis.
      best = std::move(candidate);
    }
    if (GovernorInterrupted(options.governor)) return false;
    return !early_stop || best.training_error > 0.0 || !have_complete;
  });
  if (tried == 0) {
    // Governor tripped before the first candidate: still return a
    // well-formed (vacuous) hypothesis rather than a default-constructed
    // shell, so callers can serialise the result unconditionally.
    best = TypeMajorityErm(graph, examples,
                           std::vector<Vertex>(static_cast<size_t>(ell), 0),
                           options, registry);
  }
  best.parameter_tuples_tried = tried;
  best.status = GovernorStatus(options.governor);
  return best;
}

}  // namespace

ErmResult BruteForceErm(const Graph& graph, const TrainingSet& examples,
                        int ell, const ErmOptions& options,
                        std::shared_ptr<TypeRegistry> registry,
                        bool early_stop) {
  FOLEARN_CHECK_GE(ell, 0);
  if (registry == nullptr) {
    registry = std::make_shared<TypeRegistry>(graph.vocabulary());
  }
  const int64_t n_items = SaturatingPow(graph.order(), ell);
  const int64_t m = static_cast<int64_t>(examples.size());
  // Sequential checkpoint cost per candidate: one outer checkpoint in the
  // scan plus one per example inside TypeMajorityErm.
  const int64_t unit = m + 1;
  ResourceGovernor* governor = options.governor;

  // Deterministic limits fix the number of candidates that can complete
  // *before* the sweep runs, so an interrupted run picks its winner from
  // the same range for every thread count.
  const int64_t allowance =
      governor == nullptr ? kNoLimit : governor->DeterministicAllowance();
  const int64_t full =
      allowance == kNoLimit ? n_items : std::min(n_items, allowance / unit);
  if (full == 0) {
    // Not even one candidate fits (or the range is empty): the sequential
    // loop's partial-candidate semantics apply.
    return BruteForceErmSequential(graph, examples, ell, options, registry,
                                   early_stop);
  }

  // Evaluate candidate errors in [0, full). Workers share nothing mutable:
  // each lazily builds its own registry shard and ball cache; the governor
  // is only polled read-only for deadline/cancellation. The hypotheses
  // built here are discarded — only (error, index) feeds the reduction —
  // so shard-local TypeIds never leak into the result.
  const int workers = EffectiveThreads(options.threads);
  std::vector<std::shared_ptr<TypeRegistry>> shards(workers);
  std::vector<std::unique_ptr<BallCache>> caches(workers);
  ErmOptions shard_options = options;
  shard_options.governor = nullptr;
  shard_options.threads = 1;

  SweepOptions sweep;
  sweep.threads = workers;
  sweep.chunk_size = 8;
  sweep.governor = governor;
  sweep.stop_on_hit = early_stop;
  SweepOutcome outcome = ParallelSweep(
      full, sweep, [&](int64_t index, int worker) -> std::pair<double, bool> {
        if (shards[worker] == nullptr) {
          shards[worker] = std::make_shared<TypeRegistry>(graph.vocabulary());
          caches[worker] = std::make_unique<BallCache>(graph);
        }
        std::vector<int64_t> raw = NthTuple(graph.order(), ell, index);
        std::vector<Vertex> parameters(raw.begin(), raw.end());
        ErmOptions local = shard_options;
        local.ball_cache = caches[worker].get();
        ErmResult candidate = TypeMajorityErm(graph, examples, parameters,
                                              local, shards[worker]);
        return {candidate.training_error,
                early_stop && candidate.training_error == 0.0};
      });

  // Settle the governor with the sequential-equivalent charge and work out
  // which candidate the sequential scan would have returned.
  int64_t winner = -1;
  int64_t tried = 0;
  if (outcome.passive_stop) {
    // Deadline/cancellation: best over the candidates that finished before
    // the stop (timing-dependent, like the sequential deadline path). The
    // trailing charge latches the trip.
    if (governor != nullptr) {
      governor->CheckpointBatch(outcome.evaluated * unit + 1);
    }
    winner = outcome.best_index;
    tried = outcome.evaluated;
  } else if (outcome.first_hit >= 0) {
    // Early stop at the first zero-error candidate.
    if (governor != nullptr) {
      governor->CheckpointBatch((outcome.first_hit + 1) * unit);
    }
    winner = outcome.first_hit;
    tried = outcome.first_hit + 1;
  } else if (full < n_items) {
    // The deterministic limit trips mid-scan, possibly inside a partial
    // candidate the sequential loop would still have counted.
    const int64_t partial = allowance - full * unit;
    if (governor != nullptr) governor->CheckpointBatch(allowance + 1);
    winner = outcome.best_index;
    tried = full + (partial > 0 ? 1 : 0);
  } else {
    if (governor != nullptr) governor->CheckpointBatch(n_items * unit);
    winner = outcome.best_index;
    tried = full;
  }

  ErmResult best;
  if (winner < 0) {
    // Nothing completed (a passive stop before the first candidate):
    // mirror the sequential tried == 0 fallback, evaluating the vacuous
    // candidate under the (now tripped) governor.
    best = TypeMajorityErm(graph, examples,
                           std::vector<Vertex>(static_cast<size_t>(ell), 0),
                           options, registry);
  } else {
    // Re-evaluate only the winner on the caller's registry, ungoverned
    // (its work is already charged above): TypeIds and serialised bytes
    // come out exactly as in a single-threaded run that interned only the
    // winning candidate, independent of thread count.
    std::vector<int64_t> raw = NthTuple(graph.order(), ell, winner);
    std::vector<Vertex> parameters(raw.begin(), raw.end());
    ErmOptions winner_options = options;
    winner_options.governor = nullptr;
    best = TypeMajorityErm(graph, examples, parameters, winner_options,
                           registry);
  }
  best.parameter_tuples_tried = tried;
  best.status = GovernorStatus(governor);
  return best;
}

namespace {

EnumerationErmResult EnumerationErmSequential(
    const Graph& graph, const TrainingSet& examples, int ell,
    std::span<const FormulaRef> formulas,
    const std::vector<std::string>& query_vars,
    const std::vector<std::string>& param_vars, ResourceGovernor* governor,
    const EvalOptions& eval) {
  EnumerationErmResult best;
  ForEachTuple(graph.order(), ell, [&](const std::vector<int64_t>& raw) {
    std::vector<Vertex> parameters(raw.begin(), raw.end());
    for (const FormulaRef& formula : formulas) {
      if (!GovernorCheckpoint(governor)) return false;
      Hypothesis candidate{formula, query_vars, param_vars, parameters};
      double error = TrainingError(graph, candidate, examples, eval);
      ++best.formulas_tried;
      if (best.hypothesis.formula == nullptr || error < best.training_error) {
        best.hypothesis = std::move(candidate);
        best.training_error = error;
        if (error == 0.0) return false;
      }
    }
    return true;
  });
  best.status = GovernorStatus(governor);
  return best;
}

// Per-worker compiled-plan cache for the enumeration grid: each worker
// compiles a candidate formula at most once and keeps the evaluator (with
// its per-graph memo) alive across all parameter tuples and examples.
struct EnumerationPlanCache {
  std::vector<std::unique_ptr<CompiledFormula>> plans;
  std::vector<std::unique_ptr<CompiledEvaluator>> evaluators;
  std::vector<Vertex> env;
};

}  // namespace

EnumerationErmResult EnumerationErm(const Graph& graph,
                                    const TrainingSet& examples, int ell,
                                    const EnumerationOptions& enumeration,
                                    ResourceGovernor* governor, int threads,
                                    const EvalOptions& eval) {
  const int k = examples.empty() ? 0
                                 : static_cast<int>(examples[0].tuple.size());
  EnumerationOptions full_options = enumeration;
  full_options.free_variables = QueryVars(k);
  std::vector<std::string> param_vars = ParamVars(ell);
  full_options.free_variables.insert(full_options.free_variables.end(),
                                     param_vars.begin(), param_vars.end());
  std::vector<FormulaRef> formulas = EnumerateFormulas(full_options);
  return EnumerationErm(graph, examples, ell, formulas, governor, threads,
                        eval);
}

EnumerationErmResult EnumerationErm(const Graph& graph,
                                    const TrainingSet& examples, int ell,
                                    std::span<const FormulaRef> formulas,
                                    ResourceGovernor* governor, int threads,
                                    const EvalOptions& eval) {
  const int k = examples.empty() ? 0
                                 : static_cast<int>(examples[0].tuple.size());
  std::vector<std::string> query_vars = QueryVars(k);
  std::vector<std::string> param_vars = ParamVars(ell);
  // The grid governor is the budget; per-candidate evaluation is always
  // ungoverned (matching the TrainingError default of the PR 2 code).
  EvalOptions candidate_eval = eval;
  candidate_eval.governor = nullptr;

  // Flattened grid in scan order: index = tuple_index · |formulas| +
  // formula_index. One sequential checkpoint per grid item.
  const int64_t num_formulas = static_cast<int64_t>(formulas.size());
  const int64_t num_tuples = SaturatingPow(graph.order(), ell);
  const int64_t n_items =
      num_formulas == 0 ? 0 : SaturatingMul(num_tuples, num_formulas);
  const int64_t allowance =
      governor == nullptr ? kNoLimit : governor->DeterministicAllowance();
  const int64_t full =
      allowance == kNoLimit ? n_items : std::min(n_items, allowance);
  if (full == 0) {
    return EnumerationErmSequential(graph, examples, ell, formulas,
                                    query_vars, param_vars, governor,
                                    candidate_eval);
  }

  std::vector<std::string> all_vars = query_vars;
  all_vars.insert(all_vars.end(), param_vars.begin(), param_vars.end());
  const int64_t m = static_cast<int64_t>(examples.size());

  SweepOptions sweep;
  sweep.threads = EffectiveThreads(threads);
  sweep.chunk_size = 64;
  sweep.governor = governor;
  sweep.stop_on_hit = true;  // the sequential loop always stops at zero
  std::vector<EnumerationPlanCache> plan_caches(sweep.threads);
  SweepOutcome outcome = ParallelSweep(
      full, sweep, [&](int64_t index, int worker) -> std::pair<double, bool> {
        const int64_t formula_index = index % num_formulas;
        std::vector<int64_t> raw =
            NthTuple(graph.order(), ell, index / num_formulas);
        if (candidate_eval.force_interpreter) {
          std::vector<Vertex> parameters(raw.begin(), raw.end());
          Hypothesis candidate{formulas[formula_index], query_vars,
                               param_vars, parameters};
          double error =
              TrainingError(graph, candidate, examples, candidate_eval);
          return {error, error == 0.0};
        }
        EnumerationPlanCache& cache = plan_caches[worker];
        if (cache.plans.empty()) {
          cache.plans.resize(num_formulas);
          cache.evaluators.resize(num_formulas);
          cache.env.resize(all_vars.size());
        }
        if (cache.evaluators[formula_index] == nullptr) {
          cache.plans[formula_index] = std::make_unique<CompiledFormula>(
              CompileFormula(formulas[formula_index], all_vars));
          cache.evaluators[formula_index] =
              std::make_unique<CompiledEvaluator>(
                  *cache.plans[formula_index], graph, candidate_eval);
        }
        CompiledEvaluator& evaluator = *cache.evaluators[formula_index];
        for (int j = 0; j < ell; ++j) {
          cache.env[k + j] = static_cast<Vertex>(raw[j]);
        }
        int64_t wrong = 0;
        for (const LabeledExample& example : examples) {
          FOLEARN_CHECK_EQ(static_cast<int>(example.tuple.size()), k);
          std::copy(example.tuple.begin(), example.tuple.end(),
                    cache.env.begin());
          if (evaluator.Eval(cache.env) != example.label) ++wrong;
        }
        double error =
            m == 0 ? 0.0
                   : static_cast<double>(wrong) / static_cast<double>(m);
        return {error, error == 0.0};
      });

  int64_t winner = -1;
  EnumerationErmResult best;
  if (outcome.passive_stop) {
    if (governor != nullptr) governor->CheckpointBatch(outcome.evaluated + 1);
    winner = outcome.best_index;
    best.formulas_tried = outcome.evaluated;
  } else if (outcome.first_hit >= 0) {
    if (governor != nullptr) governor->CheckpointBatch(outcome.first_hit + 1);
    winner = outcome.first_hit;
    best.formulas_tried = outcome.first_hit + 1;
  } else if (full < n_items) {
    if (governor != nullptr) governor->CheckpointBatch(allowance + 1);
    winner = outcome.best_index;
    best.formulas_tried = full;
  } else {
    if (governor != nullptr) governor->CheckpointBatch(n_items);
    winner = outcome.best_index;
    best.formulas_tried = full;
  }
  if (winner >= 0) {
    std::vector<int64_t> raw =
        NthTuple(graph.order(), ell, winner / num_formulas);
    std::vector<Vertex> parameters(raw.begin(), raw.end());
    best.hypothesis = Hypothesis{formulas[winner % num_formulas], query_vars,
                                 param_vars, parameters};
    best.training_error = outcome.best_key;
    if (outcome.first_hit >= 0 && !outcome.passive_stop) {
      best.training_error = 0.0;
    }
  }
  best.status = GovernorStatus(governor);
  return best;
}

}  // namespace folearn
