#include "learn/erm.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include <deque>

#include "learn/search_state.h"
#include "mc/bytecode.h"
#include "mc/compiled_eval.h"
#include "mc/compiler.h"
#include "mc/vm.h"
#include "util/combinatorics.h"
#include "util/parallel.h"

namespace folearn {

ErmResult TypeMajorityErm(const Graph& graph, const TrainingSet& examples,
                          std::span<const Vertex> parameters,
                          const ErmOptions& options,
                          std::shared_ptr<TypeRegistry> registry) {
  if (registry == nullptr) {
    registry = std::make_shared<TypeRegistry>(graph.vocabulary());
  }
  const int radius = options.EffectiveRadius();

  ErmResult result;
  result.parameter_tuples_tried = 1;
  TypeSetHypothesis& h = result.hypothesis;
  h.rank = options.rank;
  h.radius = radius;
  h.parameters.assign(parameters.begin(), parameters.end());
  h.registry = registry;
  h.k = examples.empty() ? 0 : static_cast<int>(examples[0].tuple.size());

  // Count labels per local type of v̄w̄. Checkpoint per type computation;
  // an interrupted run majority-votes over the examples seen so far.
  std::map<TypeId, std::pair<int64_t, int64_t>> counts;  // type → (pos, neg)
  int64_t seen = 0;
  std::vector<Vertex> combined;
  combined.reserve(static_cast<size_t>(h.k) + parameters.size());
  for (const LabeledExample& example : examples) {
    if (!GovernorCheckpoint(options.governor)) break;
    FOLEARN_CHECK_EQ(static_cast<int>(example.tuple.size()), h.k);
    combined.assign(example.tuple.begin(), example.tuple.end());
    combined.insert(combined.end(), parameters.begin(), parameters.end());
    TypeId type = ComputeLocalType(graph, combined, options.rank, radius,
                                   registry.get(), options.ball_cache);
    ++seen;
    auto& entry = counts[type];
    if (example.label) {
      ++entry.first;
    } else {
      ++entry.second;
    }
  }
  result.status = GovernorStatus(options.governor);
  result.distinct_types_seen = static_cast<int64_t>(counts.size());

  int64_t wrong = 0;
  for (const auto& [type, count] : counts) {
    if (count.first > count.second) {
      h.accepted.push_back(type);  // majority-positive: accept
      wrong += count.second;
    } else {
      wrong += count.first;
    }
  }
  // counts is an ordered map, so `accepted` is already sorted.
  if (seen > 0) {
    result.training_error =
        static_cast<double>(wrong) / static_cast<double>(seen);
  } else {
    // Vacuously perfect on an empty training set; pessimistic when the
    // governor tripped before the first example.
    result.training_error = examples.empty() ? 0.0 : 1.0;
  }
  return result;
}

namespace {

// The original single-threaded scan, kept verbatim as the fallback for
// ranges the deterministic allowance cannot fit even one candidate into
// (the governor then trips inside the first candidate, and the partial
// majority vote / pessimistic-fallback semantics of PR 2 apply
// unchanged). The unified parallel path below reproduces this loop's
// results exactly whenever at least one candidate completes.
ErmResult BruteForceErmSequential(const Graph& graph,
                                  const TrainingSet& examples, int ell,
                                  const ErmOptions& options,
                                  std::shared_ptr<TypeRegistry> registry,
                                  bool early_stop) {
  ErmResult best;
  bool have_complete = false;
  int64_t tried = 0;
  ForEachTuple(graph.order(), ell, [&](const std::vector<int64_t>& raw) {
    if (!GovernorCheckpoint(options.governor)) return false;
    std::vector<Vertex> parameters(raw.begin(), raw.end());
    ErmResult candidate =
        TypeMajorityErm(graph, examples, parameters, options, registry);
    ++tried;
    if (candidate.status == RunStatus::kComplete) {
      if (!have_complete || candidate.training_error < best.training_error) {
        best = std::move(candidate);
        have_complete = true;
      }
    } else if (tried == 1) {
      // Interrupted mid-candidate with nothing better: keep the partial
      // majority vote rather than returning an empty hypothesis.
      best = std::move(candidate);
    }
    if (GovernorInterrupted(options.governor)) return false;
    return !early_stop || best.training_error > 0.0 || !have_complete;
  });
  if (tried == 0) {
    // Governor tripped before the first candidate: still return a
    // well-formed (vacuous) hypothesis rather than a default-constructed
    // shell, so callers can serialise the result unconditionally.
    best = TypeMajorityErm(graph, examples,
                           std::vector<Vertex>(static_cast<size_t>(ell), 0),
                           options, registry);
  }
  best.parameter_tuples_tried = tried;
  best.status = GovernorStatus(options.governor);
  return best;
}

}  // namespace

ErmResult BruteForceErm(const Graph& graph, const TrainingSet& examples,
                        int ell, const ErmOptions& options,
                        std::shared_ptr<TypeRegistry> registry,
                        bool early_stop) {
  FOLEARN_CHECK_GE(ell, 0);
  if (registry == nullptr) {
    registry = std::make_shared<TypeRegistry>(graph.vocabulary());
  }
  const int64_t n_items = SaturatingPow(graph.order(), ell);
  const int64_t m = static_cast<int64_t>(examples.size());
  // Sequential checkpoint cost per candidate: one outer checkpoint in the
  // scan plus one per example inside TypeMajorityErm.
  const int64_t unit = m + 1;
  ResourceGovernor* governor = options.governor;

  if (options.scan.resume == nullptr) {
    // Deterministic limits fix the number of candidates that can complete
    // before anything runs; if not even one fits (or the range is empty),
    // the sequential loop's partial-candidate semantics apply. A resumed
    // scan never takes this path — its first candidate completed in the
    // original process.
    const int64_t allowance =
        governor == nullptr ? kNoLimit : governor->DeterministicAllowance();
    const int64_t full =
        allowance == kNoLimit ? n_items : std::min(n_items, allowance / unit);
    if (full == 0) {
      return BruteForceErmSequential(graph, examples, ell, options, registry,
                                     early_stop);
    }
  }

  // Evaluate candidate errors over the budgeted range. Workers share
  // nothing mutable: each lazily builds its own registry shard and ball
  // cache; the governor is only polled read-only for deadline/cancellation.
  // The hypotheses built here are discarded — only (error, index) feeds the
  // reduction — so shard-local TypeIds never leak into the result. This is
  // also what makes checkpoints tiny: no shard, cache, or registry state
  // needs to survive a crash, only the scan frontier.
  const int workers = EffectiveThreads(options.threads);
  std::vector<std::shared_ptr<TypeRegistry>> shards(workers);
  std::vector<std::unique_ptr<BallCache>> caches(workers);
  ErmOptions shard_options = options;
  shard_options.governor = nullptr;
  shard_options.threads = 1;

  ScanSpec spec;
  spec.n_items = n_items;
  spec.unit = unit;
  spec.early_stop = early_stop;
  spec.threads = workers;
  spec.chunk_size = 8;
  spec.governor = governor;
  spec.checkpointer = options.scan.checkpointer;
  spec.resume = options.scan.resume;
  spec.learner = "brute";
  spec.fingerprint = options.scan.fingerprint;
  ScanOutcome outcome = RunResumableScan(
      spec, [&](int64_t index, int worker) -> std::pair<double, bool> {
        if (shards[worker] == nullptr) {
          shards[worker] = std::make_shared<TypeRegistry>(graph.vocabulary());
          caches[worker] =
              std::make_unique<BallCache>(graph, options.cache_bytes);
          if (options.mem_budget != nullptr) {
            // Shard accounting: worker-local registries and caches charge
            // the caller's budget while they live (they are torn down
            // before the sweep returns, releasing their bytes).
            shards[worker]->set_mem_account(options.mem_budget);
            caches[worker]->set_mem_account(options.mem_budget);
          }
        }
        std::vector<int64_t> raw = NthTuple(graph.order(), ell, index);
        std::vector<Vertex> parameters(raw.begin(), raw.end());
        ErmOptions local = shard_options;
        local.ball_cache = caches[worker].get();
        ErmResult candidate = TypeMajorityErm(graph, examples, parameters,
                                              local, shards[worker]);
        return {candidate.training_error,
                early_stop && candidate.training_error == 0.0};
      });
  const int64_t winner = outcome.winner;
  const int64_t tried = outcome.tried;

  ErmResult best;
  if (winner < 0) {
    // Nothing completed (a passive stop before the first candidate):
    // mirror the sequential tried == 0 fallback, evaluating the vacuous
    // candidate under the (now tripped) governor.
    best = TypeMajorityErm(graph, examples,
                           std::vector<Vertex>(static_cast<size_t>(ell), 0),
                           options, registry);
  } else {
    // Re-evaluate only the winner on the caller's registry, ungoverned
    // (its work is already charged above): TypeIds and serialised bytes
    // come out exactly as in a single-threaded run that interned only the
    // winning candidate, independent of thread count.
    std::vector<int64_t> raw = NthTuple(graph.order(), ell, winner);
    std::vector<Vertex> parameters(raw.begin(), raw.end());
    ErmOptions winner_options = options;
    winner_options.governor = nullptr;
    best = TypeMajorityErm(graph, examples, parameters, winner_options,
                           registry);
  }
  best.parameter_tuples_tried = tried;
  best.status = GovernorStatus(governor);
  return best;
}

namespace {

EnumerationErmResult EnumerationErmSequential(
    const Graph& graph, const TrainingSet& examples, int ell,
    std::span<const FormulaRef> formulas,
    const std::vector<std::string>& query_vars,
    const std::vector<std::string>& param_vars, ResourceGovernor* governor,
    const EvalOptions& eval) {
  EnumerationErmResult best;
  ForEachTuple(graph.order(), ell, [&](const std::vector<int64_t>& raw) {
    std::vector<Vertex> parameters(raw.begin(), raw.end());
    for (const FormulaRef& formula : formulas) {
      if (!GovernorCheckpoint(governor)) return false;
      Hypothesis candidate{formula, query_vars, param_vars, parameters};
      double error = TrainingError(graph, candidate, examples, eval);
      ++best.formulas_tried;
      if (best.hypothesis.formula == nullptr || error < best.training_error) {
        best.hypothesis = std::move(candidate);
        best.training_error = error;
        if (error == 0.0) return false;
      }
    }
    return true;
  });
  best.status = GovernorStatus(governor);
  return best;
}

// Per-worker compiled-plan cache for the enumeration grid: each worker
// compiles (and, for the VM engine, lowers) a candidate formula at most
// once and keeps the evaluator (with its per-graph memo) alive across all
// parameter tuples and examples. With a byte budget
// (EvalOptions::cache_bytes ≥ 0) the oldest self-compiled plans are
// dropped FIFO when the estimated footprint exceeds it — they recompile
// on next use, so only speed, never results, depends on the budget.
// Prepared (caller-owned) plans are never charged or evicted; only their
// per-graph evaluators live here.
struct EnumerationPlanCache {
  std::vector<std::unique_ptr<CompiledFormula>> plans;
  std::vector<std::shared_ptr<const LoweredPlan>> lowered;  // VM engine only
  std::vector<std::unique_ptr<CompiledEvaluator>> evaluators;
  std::vector<std::unique_ptr<VmEvaluator>> vms;
  std::vector<Vertex> env;
  std::deque<int64_t> compiled_order;  // oldest formula index at the front
  int64_t bytes = 0;
  int64_t evictions = 0;

  static int64_t PlanBytes(const CompiledFormula& plan) {
    // Nodes dominate; a flat allowance covers the evaluator's buffers.
    return static_cast<int64_t>(plan.nodes().size()) * 64 + 512;
  }

  // Budget footprint of a self-compiled entry: the tree plan plus its
  // bytecode, when lowered.
  int64_t EntryBytes(int64_t index) const {
    int64_t total = PlanBytes(*plans[index]);
    if (lowered[index] != nullptr) total += lowered[index]->bytes();
    return total;
  }

  void EnforceBudget(int64_t max_bytes) {
    if (max_bytes < 0) return;
    // The entry just compiled (at the back) always survives its own call.
    while (bytes > max_bytes && compiled_order.size() > 1) {
      const int64_t oldest = compiled_order.front();
      compiled_order.pop_front();
      bytes -= EntryBytes(oldest);
      // Evaluators reference the plan and bytecode: drop them first.
      vms[oldest].reset();
      evaluators[oldest].reset();
      lowered[oldest].reset();
      plans[oldest].reset();
      ++evictions;
    }
  }
};

// Shared implementation of the enumeration grid overloads. Exactly one of
// `formulas` / `prepared` is populated; with `prepared` the compile/lower
// step is skipped (plans are caller-owned).
EnumerationErmResult EnumerationErmGrid(
    const Graph& graph, const TrainingSet& examples, int ell,
    std::span<const FormulaRef> formulas,
    std::span<const PreparedFormula> prepared, ResourceGovernor* governor,
    int threads, const EvalOptions& eval, const ScanHooks& hooks) {
  const bool use_prepared = !prepared.empty();
  const int k = examples.empty() ? 0
                                 : static_cast<int>(examples[0].tuple.size());
  std::vector<std::string> query_vars = QueryVars(k);
  std::vector<std::string> param_vars = ParamVars(ell);
  // The grid governor is the budget; per-candidate evaluation is always
  // ungoverned (matching the TrainingError default of the PR 2 code).
  EvalOptions candidate_eval = eval;
  candidate_eval.governor = nullptr;
  const EvalEngine engine = ResolveEngine(candidate_eval);
  const auto formula_at = [&](int64_t index) -> const FormulaRef& {
    return use_prepared ? prepared[index].formula : formulas[index];
  };

  // Flattened grid in scan order: index = tuple_index · |formulas| +
  // formula_index. One sequential checkpoint per grid item.
  const int64_t num_formulas =
      use_prepared ? static_cast<int64_t>(prepared.size())
                   : static_cast<int64_t>(formulas.size());
  const int64_t num_tuples = SaturatingPow(graph.order(), ell);
  const int64_t n_items =
      num_formulas == 0 ? 0 : SaturatingMul(num_tuples, num_formulas);
  if (hooks.resume == nullptr) {
    const int64_t allowance =
        governor == nullptr ? kNoLimit : governor->DeterministicAllowance();
    const int64_t full =
        allowance == kNoLimit ? n_items : std::min(n_items, allowance);
    if (full == 0) {
      if (!use_prepared) {
        return EnumerationErmSequential(graph, examples, ell, formulas,
                                        query_vars, param_vars, governor,
                                        candidate_eval);
      }
      std::vector<FormulaRef> plain;
      plain.reserve(prepared.size());
      for (const PreparedFormula& p : prepared) plain.push_back(p.formula);
      return EnumerationErmSequential(graph, examples, ell, plain,
                                      query_vars, param_vars, governor,
                                      candidate_eval);
    }
  }

  std::vector<std::string> all_vars = query_vars;
  all_vars.insert(all_vars.end(), param_vars.begin(), param_vars.end());
  const int64_t m = static_cast<int64_t>(examples.size());

  ScanSpec spec;
  spec.n_items = n_items;
  spec.unit = 1;
  spec.early_stop = true;  // the sequential loop always stops at zero
  spec.threads = EffectiveThreads(threads);
  spec.chunk_size = 64;
  spec.governor = governor;
  spec.checkpointer = hooks.checkpointer;
  spec.resume = hooks.resume;
  spec.learner = "enumeration";
  spec.fingerprint = hooks.fingerprint;
  std::vector<EnumerationPlanCache> plan_caches(spec.threads);
  // One dense adjacency index for the whole grid: every worker's
  // VmEvaluators share it read-only (per-evaluator auto-builds would
  // multiply its footprint by the candidate count).
  const std::shared_ptr<const VmGraphIndex> vm_index =
      engine == EvalEngine::kVm ? VmGraphIndex::Build(graph) : nullptr;
  ScanOutcome outcome = RunResumableScan(
      spec, [&](int64_t index, int worker) -> std::pair<double, bool> {
        const int64_t formula_index = index % num_formulas;
        std::vector<int64_t> raw =
            NthTuple(graph.order(), ell, index / num_formulas);
        if (engine == EvalEngine::kInterpreted) {
          std::vector<Vertex> parameters(raw.begin(), raw.end());
          Hypothesis candidate{formula_at(formula_index), query_vars,
                               param_vars, parameters};
          double error =
              TrainingError(graph, candidate, examples, candidate_eval);
          return {error, error == 0.0};
        }
        EnumerationPlanCache& cache = plan_caches[worker];
        if (cache.plans.empty()) {
          cache.plans.resize(num_formulas);
          cache.lowered.resize(num_formulas);
          cache.evaluators.resize(num_formulas);
          cache.vms.resize(num_formulas);
          cache.env.resize(all_vars.size());
        }
        const bool is_vm = engine == EvalEngine::kVm;
        const bool have = is_vm ? cache.vms[formula_index] != nullptr
                                : cache.evaluators[formula_index] != nullptr;
        if (!have) {
          const CompiledFormula* plan;
          if (use_prepared) {
            plan = prepared[formula_index].plan.get();
            if (is_vm) {
              cache.lowered[formula_index] = prepared[formula_index].lowered;
              if (cache.lowered[formula_index] == nullptr) {
                cache.lowered[formula_index] =
                    std::make_shared<const LoweredPlan>(LowerPlan(*plan));
              }
            }
          } else {
            cache.plans[formula_index] = std::make_unique<CompiledFormula>(
                CompileFormula(formula_at(formula_index), all_vars));
            plan = cache.plans[formula_index].get();
            if (is_vm) {
              cache.lowered[formula_index] =
                  std::make_shared<const LoweredPlan>(LowerPlan(*plan));
            }
            cache.compiled_order.push_back(formula_index);
            cache.bytes += cache.EntryBytes(formula_index);
            cache.EnforceBudget(candidate_eval.cache_bytes);
          }
          if (is_vm) {
            cache.vms[formula_index] = std::make_unique<VmEvaluator>(
                *plan, *cache.lowered[formula_index], graph, candidate_eval,
                vm_index);
          } else {
            cache.evaluators[formula_index] =
                std::make_unique<CompiledEvaluator>(*plan, graph,
                                                    candidate_eval);
          }
        }
        for (int j = 0; j < ell; ++j) {
          cache.env[k + j] = static_cast<Vertex>(raw[j]);
        }
        const auto sweep = [&](auto& evaluator) -> int64_t {
          int64_t wrong = 0;
          for (const LabeledExample& example : examples) {
            FOLEARN_CHECK_EQ(static_cast<int>(example.tuple.size()), k);
            std::copy(example.tuple.begin(), example.tuple.end(),
                      cache.env.begin());
            if (evaluator.Eval(cache.env) != example.label) ++wrong;
          }
          return wrong;
        };
        const int64_t wrong = is_vm ? sweep(*cache.vms[formula_index])
                                    : sweep(*cache.evaluators[formula_index]);
        double error =
            m == 0 ? 0.0
                   : static_cast<double>(wrong) / static_cast<double>(m);
        return {error, error == 0.0};
      });

  EnumerationErmResult best;
  best.formulas_tried = outcome.tried;
  for (const EnumerationPlanCache& cache : plan_caches) {
    best.plan_cache_evictions += cache.evictions;
  }
  if (outcome.winner >= 0) {
    std::vector<int64_t> raw =
        NthTuple(graph.order(), ell, outcome.winner / num_formulas);
    std::vector<Vertex> parameters(raw.begin(), raw.end());
    best.hypothesis = Hypothesis{formula_at(outcome.winner % num_formulas),
                                 query_vars, param_vars, parameters};
    best.training_error = outcome.best_error;
  }
  best.status = GovernorStatus(governor);
  return best;
}

}  // namespace

EnumerationErmResult EnumerationErm(const Graph& graph,
                                    const TrainingSet& examples, int ell,
                                    const EnumerationOptions& enumeration,
                                    ResourceGovernor* governor, int threads,
                                    const EvalOptions& eval,
                                    const ScanHooks& hooks) {
  const int k = examples.empty() ? 0
                                 : static_cast<int>(examples[0].tuple.size());
  EnumerationOptions full_options = enumeration;
  full_options.free_variables = QueryVars(k);
  std::vector<std::string> param_vars = ParamVars(ell);
  full_options.free_variables.insert(full_options.free_variables.end(),
                                     param_vars.begin(), param_vars.end());
  std::vector<FormulaRef> formulas = EnumerateFormulas(full_options);
  return EnumerationErm(graph, examples, ell, formulas, governor, threads,
                        eval, hooks);
}

EnumerationErmResult EnumerationErm(const Graph& graph,
                                    const TrainingSet& examples, int ell,
                                    std::span<const FormulaRef> formulas,
                                    ResourceGovernor* governor, int threads,
                                    const EvalOptions& eval,
                                    const ScanHooks& hooks) {
  return EnumerationErmGrid(graph, examples, ell, formulas, {}, governor,
                            threads, eval, hooks);
}

EnumerationErmResult EnumerationErm(const Graph& graph,
                                    const TrainingSet& examples, int ell,
                                    std::span<const PreparedFormula> formulas,
                                    ResourceGovernor* governor, int threads,
                                    const EvalOptions& eval,
                                    const ScanHooks& hooks) {
  if (formulas.empty()) {
    return EnumerationErmGrid(graph, examples, ell, {}, {}, governor,
                              threads, eval, hooks);
  }
  return EnumerationErmGrid(graph, examples, ell, {}, formulas, governor,
                            threads, eval, hooks);
}

std::vector<PreparedFormula> PrepareFormulas(
    std::span<const FormulaRef> formulas, int k, int ell,
    EvalEngine engine) {
  std::vector<std::string> all_vars = QueryVars(k);
  std::vector<std::string> param_vars = ParamVars(ell);
  all_vars.insert(all_vars.end(), param_vars.begin(), param_vars.end());
  std::vector<PreparedFormula> prepared;
  prepared.reserve(formulas.size());
  for (const FormulaRef& formula : formulas) {
    PreparedFormula p;
    p.formula = formula;
    p.plan = std::make_shared<const CompiledFormula>(
        CompileFormula(formula, all_vars));
    if (engine == EvalEngine::kVm) {
      p.lowered = std::make_shared<const LoweredPlan>(LowerPlan(*p.plan));
    }
    prepared.push_back(std::move(p));
  }
  return prepared;
}

}  // namespace folearn
