#include "learn/erm.h"

#include <algorithm>
#include <map>

#include "util/combinatorics.h"

namespace folearn {

ErmResult TypeMajorityErm(const Graph& graph, const TrainingSet& examples,
                          std::span<const Vertex> parameters,
                          const ErmOptions& options,
                          std::shared_ptr<TypeRegistry> registry) {
  if (registry == nullptr) {
    registry = std::make_shared<TypeRegistry>(graph.vocabulary());
  }
  const int radius = options.EffectiveRadius();

  ErmResult result;
  result.parameter_tuples_tried = 1;
  TypeSetHypothesis& h = result.hypothesis;
  h.rank = options.rank;
  h.radius = radius;
  h.parameters.assign(parameters.begin(), parameters.end());
  h.registry = registry;
  h.k = examples.empty() ? 0 : static_cast<int>(examples[0].tuple.size());

  // Count labels per local type of v̄w̄. Checkpoint per type computation;
  // an interrupted run majority-votes over the examples seen so far.
  std::map<TypeId, std::pair<int64_t, int64_t>> counts;  // type → (pos, neg)
  int64_t seen = 0;
  for (const LabeledExample& example : examples) {
    if (!GovernorCheckpoint(options.governor)) break;
    FOLEARN_CHECK_EQ(static_cast<int>(example.tuple.size()), h.k);
    std::vector<Vertex> combined = example.tuple;
    combined.insert(combined.end(), parameters.begin(), parameters.end());
    TypeId type = ComputeLocalType(graph, combined, options.rank, radius,
                                   registry.get());
    ++seen;
    auto& entry = counts[type];
    if (example.label) {
      ++entry.first;
    } else {
      ++entry.second;
    }
  }
  result.status = GovernorStatus(options.governor);
  result.distinct_types_seen = static_cast<int64_t>(counts.size());

  int64_t wrong = 0;
  for (const auto& [type, count] : counts) {
    if (count.first > count.second) {
      h.accepted.push_back(type);  // majority-positive: accept
      wrong += count.second;
    } else {
      wrong += count.first;
    }
  }
  // counts is an ordered map, so `accepted` is already sorted.
  if (seen > 0) {
    result.training_error =
        static_cast<double>(wrong) / static_cast<double>(seen);
  } else {
    // Vacuously perfect on an empty training set; pessimistic when the
    // governor tripped before the first example.
    result.training_error = examples.empty() ? 0.0 : 1.0;
  }
  return result;
}

ErmResult BruteForceErm(const Graph& graph, const TrainingSet& examples,
                        int ell, const ErmOptions& options,
                        std::shared_ptr<TypeRegistry> registry,
                        bool early_stop) {
  FOLEARN_CHECK_GE(ell, 0);
  if (registry == nullptr) {
    registry = std::make_shared<TypeRegistry>(graph.vocabulary());
  }
  ErmResult best;
  bool have_complete = false;
  int64_t tried = 0;
  ForEachTuple(graph.order(), ell, [&](const std::vector<int64_t>& raw) {
    if (!GovernorCheckpoint(options.governor)) return false;
    std::vector<Vertex> parameters(raw.begin(), raw.end());
    ErmResult candidate =
        TypeMajorityErm(graph, examples, parameters, options, registry);
    ++tried;
    if (candidate.status == RunStatus::kComplete) {
      if (!have_complete || candidate.training_error < best.training_error) {
        best = std::move(candidate);
        have_complete = true;
      }
    } else if (tried == 1) {
      // Interrupted mid-candidate with nothing better: keep the partial
      // majority vote rather than returning an empty hypothesis.
      best = std::move(candidate);
    }
    if (GovernorInterrupted(options.governor)) return false;
    return !early_stop || best.training_error > 0.0 || !have_complete;
  });
  if (tried == 0) {
    // Governor tripped before the first candidate: still return a
    // well-formed (vacuous) hypothesis rather than a default-constructed
    // shell, so callers can serialise the result unconditionally.
    best = TypeMajorityErm(graph, examples,
                           std::vector<Vertex>(static_cast<size_t>(ell), 0),
                           options, registry);
  }
  best.parameter_tuples_tried = tried;
  best.status = GovernorStatus(options.governor);
  return best;
}

EnumerationErmResult EnumerationErm(const Graph& graph,
                                    const TrainingSet& examples, int ell,
                                    const EnumerationOptions& enumeration,
                                    ResourceGovernor* governor) {
  const int k = examples.empty() ? 0
                                 : static_cast<int>(examples[0].tuple.size());
  std::vector<std::string> query_vars = QueryVars(k);
  std::vector<std::string> param_vars = ParamVars(ell);

  EnumerationOptions full = enumeration;
  full.free_variables = query_vars;
  full.free_variables.insert(full.free_variables.end(), param_vars.begin(),
                             param_vars.end());
  std::vector<FormulaRef> formulas = EnumerateFormulas(full);

  EnumerationErmResult best;
  ForEachTuple(graph.order(), ell, [&](const std::vector<int64_t>& raw) {
    std::vector<Vertex> parameters(raw.begin(), raw.end());
    for (const FormulaRef& formula : formulas) {
      if (!GovernorCheckpoint(governor)) return false;
      Hypothesis candidate{formula, query_vars, param_vars, parameters};
      double error = TrainingError(graph, candidate, examples);
      ++best.formulas_tried;
      if (best.hypothesis.formula == nullptr || error < best.training_error) {
        best.hypothesis = std::move(candidate);
        best.training_error = error;
        if (error == 0.0) return false;
      }
    }
    return true;
  });
  best.status = GovernorStatus(governor);
  return best;
}

}  // namespace folearn
