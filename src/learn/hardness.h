#ifndef FOLEARN_LEARN_HARDNESS_H_
#define FOLEARN_LEARN_HARDNESS_H_

#include <memory>

#include "fo/formula.h"
#include "graph/graph.h"
#include "learn/dataset.h"
#include "learn/hypothesis.h"
#include "util/governor.h"

namespace folearn {

// Theorem 1 / Lemma 7: the hardness reduction, executable.
//
// FO model checking is solved using *only* an (L,Q)-FO-ERM oracle (plus
// graph surgery): pairwise oracle calls on two-element training sets yield
// separating formulas γ_{u,v}; a Ramsey-style pruning extracts a small set
// T of rank-(q−1)-type representatives; and the outer ∃-quantifier is
// eliminated by recolouring (P_t = {t}, Q_t = N(t)) and recursing on the
// rewritten sentence.
//
// Substitutions from the paper (DESIGN.md §4): instead of invoking the
// galactic bound h(p) = R(2, s, 3), the pruning directly searches for
// monochromatic triples until none exists — the proof only needs that such
// a triple exists *whenever* |T| exceeds the Ramsey bound, so searching
// directly terminates strictly earlier with the same guarantee.

// The learning oracle the reduction consumes. Implementations must return a
// hypothesis whose training error is within ε of optimal for
// H_{k,ℓ*,q*}(G), with the (L,Q) relaxation: the returned formula may have
// larger rank and up to L(k,ℓ*,q*) parameters.
class ErmOracle {
 public:
  virtual ~ErmOracle() = default;

  virtual Hypothesis Solve(const Graph& graph, const TrainingSet& examples,
                           int k, int ell_star, int rank_star,
                           double epsilon) = 0;
};

// The canonical oracle: type-majority ERM (+ brute-force parameter search
// when `relaxation_ell > 0`, exercising the reduction's general case).
// Answers are canonical — equal inputs with equal local types produce
// syntactically identical formulas — which Claim 9's triple search needs.
class TypeErmOracle : public ErmOracle {
 public:
  // `relaxation_ell` = L(1, 0, q): how many parameters the oracle may use
  // even when the caller asks for ℓ* = 0 (0 = the paper's base case).
  // `governor` (optional) bounds each Solve call's inner ERM scan; share it
  // with ModelCheckOptions::governor to bound a whole reduction run.
  explicit TypeErmOracle(int relaxation_ell = 0,
                         ResourceGovernor* governor = nullptr)
      : relaxation_ell_(relaxation_ell), governor_(governor) {}

  Hypothesis Solve(const Graph& graph, const TrainingSet& examples, int k,
                   int ell_star, int rank_star, double epsilon) override;

  int64_t calls() const { return calls_; }

 private:
  int relaxation_ell_;
  ResourceGovernor* governor_;
  int64_t calls_ = 0;
};

struct HardnessStats {
  int64_t oracle_calls = 0;
  int64_t recursion_nodes = 0;
  int64_t triples_removed = 0;
  int max_representatives = 0;  // largest |T| after pruning
  int max_depth = 0;
  // kComplete: the returned truth value is exact. Otherwise the governor
  // tripped mid-reduction and the returned value is unspecified (the
  // recursion unwound early, possibly under a negation) — check this
  // before trusting the answer.
  RunStatus status = RunStatus::kComplete;
};

struct ModelCheckOptions {
  // If true, γ_{u,v} is computed through the general-case construction
  // (2ℓ disjoint copies Ĝ, covered/wrong index accounting, locality fold);
  // if false, the base case L(1,0,q) = 0 is used directly.
  bool use_general_case = false;
  // ℓ for the general case (the oracle's parameter relaxation).
  int general_case_ell = 1;
  // Optional resource governor (nullptr = ungoverned). Work unit: one
  // oracle call / pruning scan / recursion step. Interruption is recorded
  // in HardnessStats::status.
  ResourceGovernor* governor = nullptr;
};

// Decides graph ⊨ sentence via the Lemma 7 reduction. The sentence may be
// any FO sentence (∀ handled by dualisation, boolean structure by
// recursion). CHECK-fails on non-sentences. If `options.governor` trips,
// the reduction unwinds and returns false with stats->status (when stats
// are requested) describing the interruption.
bool ModelCheckViaErm(const Graph& graph, const FormulaRef& sentence,
                      ErmOracle& oracle, const ModelCheckOptions& options = {},
                      HardnessStats* stats = nullptr);

}  // namespace folearn

#endif  // FOLEARN_LEARN_HARDNESS_H_
