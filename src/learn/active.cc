#include "learn/active.h"

#include <map>

namespace folearn {

ActiveLearnResult LearnWithMembershipQueries(
    const Graph& graph,
    const std::vector<std::vector<Vertex>>& candidate_tuples,
    std::span<const Vertex> parameters, const ErmOptions& options,
    const MembershipOracle& oracle) {
  ActiveLearnResult result;
  auto registry = std::make_shared<TypeRegistry>(graph.vocabulary());
  const int radius = options.EffectiveRadius();

  TypeSetHypothesis& h = result.hypothesis;
  h.rank = options.rank;
  h.radius = radius;
  h.parameters.assign(parameters.begin(), parameters.end());
  h.registry = registry;
  h.k = candidate_tuples.empty()
            ? 0
            : static_cast<int>(candidate_tuples[0].size());

  // One representative per realised local type.
  std::map<TypeId, const std::vector<Vertex>*> representatives;
  for (const std::vector<Vertex>& tuple : candidate_tuples) {
    FOLEARN_CHECK_EQ(static_cast<int>(tuple.size()), h.k);
    std::vector<Vertex> combined = tuple;
    combined.insert(combined.end(), parameters.begin(), parameters.end());
    TypeId type = ComputeLocalType(graph, combined, options.rank, radius,
                                   registry.get());
    representatives.emplace(type, &tuple);
  }
  result.distinct_types = static_cast<int64_t>(representatives.size());

  // One membership query per class decides the class's label.
  for (const auto& [type, tuple] : representatives) {
    ++result.membership_queries;
    if (oracle(*tuple)) h.accepted.push_back(type);
  }
  // map iteration is sorted, so `accepted` is sorted.
  return result;
}

}  // namespace folearn
