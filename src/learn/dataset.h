#ifndef FOLEARN_LEARN_DATASET_H_
#define FOLEARN_LEARN_DATASET_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fo/formula.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace folearn {

// A labelled training example (v̄, λ) ∈ V(G)^k × {0, 1} (paper §3).
struct LabeledExample {
  std::vector<Vertex> tuple;
  bool label = false;
};

// The training sequence Λ.
using TrainingSet = std::vector<LabeledExample>;

// Number of positive / negative examples.
std::pair<int64_t, int64_t> CountLabels(const TrainingSet& examples);

// All k-tuples over [0, n) in lexicographic order (n^k of them — small
// inputs only; callers must bound n^k themselves).
std::vector<std::vector<Vertex>> AllTuples(int n, int k);

// `count` uniform k-tuples over [0, n).
std::vector<std::vector<Vertex>> SampleTuples(int n, int k, int count,
                                              Rng& rng);

// Labels `tuples` by the hidden query φ(vars): the realisable-case training
// data generator (target = h_{φ,w̄} with parameters already substituted into
// the variable binding by the caller listing them in vars/appending them to
// each tuple, or simply a parameter-free φ).
TrainingSet LabelByQuery(const Graph& graph, const FormulaRef& query,
                         std::span<const std::string> vars,
                         const std::vector<std::vector<Vertex>>& tuples);

// Flips each label independently with probability `rate` (agnostic noise).
void FlipLabels(TrainingSet& examples, double rate, Rng& rng);

// Random split into (train, test) with `train_fraction` of examples in the
// first component.
std::pair<TrainingSet, TrainingSet> SplitTrainTest(const TrainingSet& all,
                                                   double train_fraction,
                                                   Rng& rng);

}  // namespace folearn

#endif  // FOLEARN_LEARN_DATASET_H_
