#ifndef FOLEARN_LEARN_MODEL_IO_H_
#define FOLEARN_LEARN_MODEL_IO_H_

#include <optional>
#include <string>
#include <string_view>

#include "learn/dataset.h"
#include "learn/hypothesis.h"
#include "util/status.h"

namespace folearn {

// Text serialisation for training sets and learned hypotheses, so models
// can be saved, shipped, and re-evaluated (and so the CLI tool has a wire
// format). Deterministic, line-oriented, diff-friendly.

// Training set format:
//
//   examples <k>
//   + v1 v2 … vk        # one line per example, '+' positive / '-' negative
//   - v1 v2 … vk
std::string TrainingSetToText(const TrainingSet& examples);
std::optional<TrainingSet> TrainingSetFromText(std::string_view text,
                                               std::string* error = nullptr);

// Hypothesis format (the explicit h_{φ,w̄} form):
//
//   hypothesis k <k> ell <ℓ>
//   params v1 … vℓ       # omitted when ℓ = 0
//   formula <φ in the parser syntax, one line>
//
// Round-trips through the formula parser; the query/parameter variables are
// the canonical x1…xk / y1…yℓ.
std::string HypothesisToText(const Hypothesis& hypothesis);
std::optional<Hypothesis> HypothesisFromText(std::string_view text,
                                             std::string* error = nullptr);

// Status-typed variants (recoverable errors for the CLI and other loaders):
// malformed text is kInvalidArgument with the parser diagnostic; the file
// loaders report a missing/unreadable path as kNotFound and prefix parse
// diagnostics with the path. Truncated or bit-flipped inputs come back as
// errors, never aborts (tests/corrupt_input_test.cc).
StatusOr<TrainingSet> ParseTrainingSet(std::string_view text);
StatusOr<TrainingSet> LoadTrainingSetFile(const std::string& path);
StatusOr<Hypothesis> ParseHypothesis(std::string_view text);
StatusOr<Hypothesis> LoadHypothesisFile(const std::string& path);

}  // namespace folearn

#endif  // FOLEARN_LEARN_MODEL_IO_H_
