#ifndef FOLEARN_LEARN_ACTIVE_H_
#define FOLEARN_LEARN_ACTIVE_H_

#include <functional>
#include <span>

#include "graph/graph.h"
#include "learn/erm.h"

namespace folearn {

// Active learning with membership queries — the OTHER query-learning model
// the paper's related-work section contrasts itself against (ten
// Cate–Dalmau ICDT 2021 and the classical exact-learning line): instead of
// a fixed labelled sample, the learner may ASK the target for labels.
//
// For the local-type hypothesis class, exact identification is cheap: two
// tuples with the same local type receive the same label under EVERY
// hypothesis in the class, so one membership query per REALISED type
// pins the target down exactly. Query complexity = #realised types —
// a function of the parameters and the local structure, not of n.

// The membership oracle: the hidden target's label for a tuple.
using MembershipOracle = std::function<bool(std::span<const Vertex>)>;

struct ActiveLearnResult {
  TypeSetHypothesis hypothesis;
  int64_t membership_queries = 0;
  int64_t distinct_types = 0;
};

// Exactly learns any target REALISABLE in the type-set class over
// (k, rank, radius, parameters): enumerates the candidate tuples, groups
// them by local type, and spends one membership query per class.
//
// `candidate_tuples` is the instance space slice to identify the target
// on (e.g. AllTuples(n, k) for total identification, or any subset of
// interest). If the target is NOT realisable in the class, the result is
// the best class-approximation of the queried representatives.
ActiveLearnResult LearnWithMembershipQueries(
    const Graph& graph, const std::vector<std::vector<Vertex>>& candidate_tuples,
    std::span<const Vertex> parameters, const ErmOptions& options,
    const MembershipOracle& oracle);

}  // namespace folearn

#endif  // FOLEARN_LEARN_ACTIVE_H_
