#ifndef FOLEARN_LEARN_SEARCH_STATE_H_
#define FOLEARN_LEARN_SEARCH_STATE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <utility>

#include "util/checkpoint.h"
#include "util/governor.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace folearn {

// Checkpoint/resume for the library's search loops.
//
// Every anytime scan in this code base — BruteForceErm's n^ℓ parameter
// sweep, EnumerationErm's tuple×formula grid, SublinearErm's pool^ℓ scan,
// the nd-learner's final candidate evaluation — is an argmin over a fixed
// index range whose interruption points are already deterministic (PR 2's
// governor). That makes the entire search state a tiny *frontier*: the
// next index to evaluate, the best (error, index) so far, and the governor
// ledger. `RunResumableScan` factors the evaluate-then-settle scheme those
// loops share, and — when a `SearchCheckpointer` is attached — persists the
// frontier after every segment of candidates, so a killed process can be
// restarted with `--resume` and produce the byte-identical model, training
// error, and governor diagnostics of an uninterrupted run, for any thread
// count. The mechanism that makes this cheap is the same one that makes
// the parallel sweeps deterministic: the winner is re-evaluated from
// scratch on the caller's registry, so no registry shard, ball cache, or
// memo table ever needs to be serialised — only the frontier does.

// The complete resumable state of one search scan. Serialised as a short
// text payload inside the checksummed checkpoint envelope
// (util/checkpoint.h).
struct SearchFrontier {
  // Which search loop wrote this frontier ("brute", "enumeration",
  // "sublinear", "nd"). Resuming with a different learner is refused.
  std::string learner;
  // FNV-1a 64 fingerprint of the problem instance (inputs that determine
  // the scan: graph bytes, training data, learner parameters). Guards
  // against resuming against different inputs. Thread count, evaluation
  // mode, and resource limits are deliberately NOT part of the
  // fingerprint: they do not change the scan's semantics.
  uint64_t fingerprint = 0;
  // Next candidate index to evaluate; every index below it has been
  // evaluated and charged to the governor ledger below.
  int64_t cursor = 0;
  // Lexicographic argmin of (error, index) over [0, cursor); −1 if none.
  int64_t best_index = -1;
  // Its training error. Serialised as exact IEEE-754 bits, so a resumed
  // comparison is bit-identical to the uninterrupted one.
  double best_error = std::numeric_limits<double>::infinity();
  // Candidates counted in the `tried` diagnostic so far.
  int64_t tried = 0;
  // Governor ledger at the save point (ResourceGovernor::work_used /
  // checkpoints_passed), restored via RestoreLedger so budget and injector
  // trips land at the same cut points as an uninterrupted run.
  int64_t governor_work = 0;
  int64_t governor_checkpoints = 0;
};

// Frontier ⇄ checkpoint-payload text (one "key value" pair per line).
std::string SerializeFrontier(const SearchFrontier& frontier);
// Rejects unknown/missing/duplicate fields and malformed values with a
// line-level diagnostic; never aborts on foreign bytes.
StatusOr<SearchFrontier> ParseFrontier(std::string_view payload);

// Envelope-wrapped file forms (WriteCheckpointFile/ReadCheckpointFile).
Status SaveFrontier(const std::string& path, const SearchFrontier& frontier);
StatusOr<SearchFrontier> LoadFrontier(const std::string& path);

// Refuses a frontier recorded by a different learner or for a different
// problem instance (InvalidArgument with both values in the message).
Status CheckFrontierCompatible(const SearchFrontier& frontier,
                               std::string_view learner,
                               uint64_t fingerprint);

// Owns the checkpoint file of one run: decides when a save is due
// (`every_ms` ≤ 0 ⇒ after every segment) and writes atomically. A failed
// write warns once on stderr and disables further saves — checkpointing is
// an aid, never a reason to kill a healthy run. For the crash-loop tests,
// `crash_after_saves` = k kills the process (exit kCrashExitCode) right
// after the k-th successful save, modelling a power cut at the worst
// moment: state on disk, result not yet reported.
class SearchCheckpointer {
 public:
  explicit SearchCheckpointer(std::string path, double every_ms = 0)
      : path_(path), every_ms_(every_ms) {}

  void set_crash_after_saves(int64_t k) { crash_after_saves_ = k; }

  bool Due() const {
    return !disabled_ &&
           (every_ms_ <= 0 || timer_.ElapsedMillis() >= every_ms_);
  }

  // Persists `frontier` (atomic replace) and restarts the interval timer.
  void Save(const SearchFrontier& frontier);

  const std::string& path() const { return path_; }
  int64_t saves() const { return saves_; }

 private:
  std::string path_;
  double every_ms_;
  Stopwatch timer_;
  int64_t saves_ = 0;
  int64_t crash_after_saves_ = -1;
  bool disabled_ = false;
};

// Checkpoint/resume hooks threaded through the learner option structs.
// Default-constructed = no checkpointing, no resume — the learners then
// behave exactly as before this subsystem existed.
struct ScanHooks {
  SearchCheckpointer* checkpointer = nullptr;  // save frontier when due
  const SearchFrontier* resume = nullptr;      // continue from this state
  // Problem-instance fingerprint stamped into saved frontiers (the CLI
  // hashes its input files and parameters; library tests pick any value).
  uint64_t fingerprint = 0;
};

// One resumable argmin scan. The charging model generalises all four
// search loops: evaluating candidate i costs `unit` governor units, except
// that the very first candidate of a fresh scan may be `first_item_discount`
// units cheaper (the nd-learner's final phase runs its first candidate
// without a leading outer checkpoint; every other loop has discount 0).
struct ScanSpec {
  int64_t n_items = 0;  // full candidate range [0, n_items)
  int64_t unit = 1;     // governor units per candidate
  int64_t first_item_discount = 0;  // 0 or 1; see above
  bool early_stop = true;  // stop at the first zero-error candidate
  int threads = 1;         // resolved worker count (EffectiveThreads)
  int64_t chunk_size = 16;
  ResourceGovernor* governor = nullptr;     // nullptr = ungoverned
  SearchCheckpointer* checkpointer = nullptr;  // nullptr = no saves
  const SearchFrontier* resume = nullptr;      // nullptr = fresh scan
  // Stamped into saved frontiers; a `resume` frontier must match (the
  // public loaders validate via CheckFrontierCompatible; the scan itself
  // treats a mismatch as a caller bug).
  std::string learner;
  uint64_t fingerprint = 0;
  // Candidates per checkpoint segment when a checkpointer is attached
  // (without one the whole range is a single segment, exactly the PR 3
  // sweep). Segment charges are additive, so the governor ledger after any
  // prefix of segments equals the uninterrupted ledger at that cursor.
  int64_t stride = 64;
};

struct ScanOutcome {
  // Lexicographic argmin of (error, index) over everything evaluated,
  // including the resumed prefix; −1 if nothing completed.
  int64_t winner = -1;
  double best_error = std::numeric_limits<double>::infinity();
  // Sequential-equivalent `tried` diagnostic (counts the partial candidate
  // a tripping sequential loop would have started).
  int64_t tried = 0;
};

// Runs the scan: fixes the evaluable range from the governor's
// deterministic allowance, sweeps it in segments (ParallelSweep), merges
// best-so-far across segments and the resumed prefix, charges the
// sequential-equivalent units after each segment, and saves the frontier
// whenever the checkpointer says a save is due. `eval(index, worker)`
// returns (error, hit) and must be safe to call concurrently (mutable
// scratch per worker). On resume the governor ledger is primed via
// RestoreLedger before anything is charged.
//
// Callers keep two responsibilities: the full==0 sequential fallback
// (when not even one candidate fits the allowance — partial-candidate
// semantics live there), and re-evaluating the winner on their own
// registry.
ScanOutcome RunResumableScan(
    const ScanSpec& spec,
    const std::function<std::pair<double, bool>(int64_t, int)>& eval);

}  // namespace folearn

#endif  // FOLEARN_LEARN_SEARCH_STATE_H_
