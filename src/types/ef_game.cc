#include "types/ef_game.h"

#include <unordered_map>
#include <vector>

#include "util/hash.h"

namespace folearn {

namespace {

// The partial-isomorphism check: colours per position, and pairwise
// equality/adjacency patterns must agree.
bool PartialIsomorphism(const Graph& g, std::span<const Vertex> g_tuple,
                        const Graph& h, std::span<const Vertex> h_tuple) {
  const size_t k = g_tuple.size();
  for (size_t i = 0; i < k; ++i) {
    for (ColorId c = 0; c < g.vocabulary().size(); ++c) {
      if (g.HasColor(g_tuple[i], c) != h.HasColor(h_tuple[i], c)) {
        return false;
      }
    }
    for (size_t j = i + 1; j < k; ++j) {
      if ((g_tuple[i] == g_tuple[j]) != (h_tuple[i] == h_tuple[j])) {
        return false;
      }
      if (g.HasEdge(g_tuple[i], g_tuple[j]) !=
          h.HasEdge(h_tuple[i], h_tuple[j])) {
        return false;
      }
    }
  }
  return true;
}

class EfSolver {
 public:
  EfSolver(const Graph& g, const Graph& h, EfGameStats* stats)
      : g_(g), h_(h), stats_(stats) {}

  bool DuplicatorWins(std::vector<Vertex>& g_tuple,
                      std::vector<Vertex>& h_tuple, int rounds) {
    if (stats_ != nullptr) ++stats_->positions_explored;
    if (!PartialIsomorphism(g_, g_tuple, h_, h_tuple)) return false;
    if (rounds == 0) return true;
    std::vector<int64_t> key;
    key.reserve(g_tuple.size() + h_tuple.size() + 1);
    key.push_back(rounds);
    for (Vertex v : g_tuple) key.push_back(v);
    for (Vertex v : h_tuple) key.push_back(~static_cast<int64_t>(v));
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    // Spoiler may play in either structure; Duplicator needs an answer for
    // every such move.
    bool duplicator_wins = true;
    // Spoiler in G.
    for (Vertex u = 0; u < g_.order() && duplicator_wins; ++u) {
      bool answered = false;
      g_tuple.push_back(u);
      for (Vertex v = 0; v < h_.order() && !answered; ++v) {
        h_tuple.push_back(v);
        answered = DuplicatorWins(g_tuple, h_tuple, rounds - 1);
        h_tuple.pop_back();
      }
      g_tuple.pop_back();
      duplicator_wins = answered;
    }
    // Spoiler in H.
    for (Vertex v = 0; v < h_.order() && duplicator_wins; ++v) {
      bool answered = false;
      h_tuple.push_back(v);
      for (Vertex u = 0; u < g_.order() && !answered; ++u) {
        g_tuple.push_back(u);
        answered = DuplicatorWins(g_tuple, h_tuple, rounds - 1);
        g_tuple.pop_back();
      }
      h_tuple.pop_back();
      duplicator_wins = answered;
    }
    memo_.emplace(std::move(key), duplicator_wins);
    return duplicator_wins;
  }

 private:
  const Graph& g_;
  const Graph& h_;
  EfGameStats* stats_;
  std::unordered_map<std::vector<int64_t>, bool, VectorHash<int64_t>> memo_;
};

}  // namespace

bool DuplicatorWins(const Graph& g, std::span<const Vertex> g_tuple,
                    const Graph& h, std::span<const Vertex> h_tuple,
                    int rounds, EfGameStats* stats) {
  FOLEARN_CHECK(g.vocabulary() == h.vocabulary())
      << "EF game requires a shared vocabulary";
  FOLEARN_CHECK_EQ(g_tuple.size(), h_tuple.size());
  FOLEARN_CHECK_GE(rounds, 0);
  std::vector<Vertex> g_working(g_tuple.begin(), g_tuple.end());
  std::vector<Vertex> h_working(h_tuple.begin(), h_tuple.end());
  EfSolver solver(g, h, stats);
  return solver.DuplicatorWins(g_working, h_working, rounds);
}

int SpoilerWinningRounds(const Graph& g, std::span<const Vertex> g_tuple,
                         const Graph& h, std::span<const Vertex> h_tuple,
                         int max_rounds) {
  for (int rounds = 0; rounds <= max_rounds; ++rounds) {
    if (!DuplicatorWins(g, g_tuple, h, h_tuple, rounds)) return rounds;
  }
  return max_rounds + 1;
}

}  // namespace folearn
