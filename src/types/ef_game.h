#ifndef FOLEARN_TYPES_EF_GAME_H_
#define FOLEARN_TYPES_EF_GAME_H_

#include <cstdint>
#include <span>

#include "graph/graph.h"

namespace folearn {

// The Ehrenfeucht–Fraïssé game, played explicitly.
//
// The q-round EF game on (G, ū) vs (H, v̄): each round Spoiler picks a
// vertex in one structure, Duplicator answers in the other; Duplicator
// wins if after every round the map ū ↦ v̄ is a partial isomorphism
// (colours, equalities, adjacencies all match). The EF theorem:
//
//   Duplicator wins the q-round game  ⟺  tp_q(G, ū) = tp_q(H, v̄),
//
// which makes this module an independent oracle for the hash-consed type
// machinery in types/type.h — the two are cross-validated in the test
// suite. Cost O((|G|·|H|)^q): small structures only.

struct EfGameStats {
  int64_t positions_explored = 0;
};

// True iff Duplicator wins the `rounds`-round EF game on (g, g_tuple) vs
// (h, h_tuple). The graphs must share a vocabulary and the tuples must have
// equal arity.
bool DuplicatorWins(const Graph& g, std::span<const Vertex> g_tuple,
                    const Graph& h, std::span<const Vertex> h_tuple,
                    int rounds, EfGameStats* stats = nullptr);

// The least q such that Spoiler wins the q-round game (i.e. the structures
// are distinguishable by a rank-q formula), or `max_rounds + 1` if
// Duplicator survives all `max_rounds` rounds.
int SpoilerWinningRounds(const Graph& g, std::span<const Vertex> g_tuple,
                         const Graph& h, std::span<const Vertex> h_tuple,
                         int max_rounds);

}  // namespace folearn

#endif  // FOLEARN_TYPES_EF_GAME_H_
