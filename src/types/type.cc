#include "types/type.h"

#include <algorithm>

namespace folearn {

AtomicType::AtomicType(const Graph& graph, std::span<const Vertex> tuple)
    : arity_(static_cast<int>(tuple.size())),
      num_colors_(graph.vocabulary().size()) {
  int total_bits =
      arity_ * num_colors_ + arity_ * (arity_ - 1);  // colours + eq + adj
  bits_.assign((total_bits + 63) / 64, 0);
  for (int i = 0; i < arity_; ++i) {
    for (ColorId c = 0; c < num_colors_; ++c) {
      if (graph.HasColor(tuple[i], c)) SetBit(BitIndexColor(i, c));
    }
    for (int j = i + 1; j < arity_; ++j) {
      if (tuple[i] == tuple[j]) SetBit(BitIndexEqual(i, j));
      if (graph.HasEdge(tuple[i], tuple[j])) SetBit(BitIndexAdjacent(i, j));
    }
  }
}

int AtomicType::BitIndexColor(int position, ColorId color) const {
  return position * num_colors_ + color;
}

int AtomicType::BitIndexEqual(int i, int j) const {
  FOLEARN_CHECK_LT(i, j);
  // Pairs (i, j), i < j, enumerated row-wise.
  int pair_index = i * arity_ - i * (i + 1) / 2 + (j - i - 1);
  return arity_ * num_colors_ + pair_index;
}

int AtomicType::BitIndexAdjacent(int i, int j) const {
  return BitIndexEqual(i, j) + arity_ * (arity_ - 1) / 2;
}

bool AtomicType::GetBit(int index) const {
  return (bits_[index / 64] >> (index % 64)) & 1;
}

void AtomicType::SetBit(int index) {
  bits_[index / 64] |= uint64_t{1} << (index % 64);
}

bool AtomicType::HasColor(int position, ColorId color) const {
  FOLEARN_CHECK_GE(position, 0);
  FOLEARN_CHECK_LT(position, arity_);
  FOLEARN_CHECK_GE(color, 0);
  FOLEARN_CHECK_LT(color, num_colors_);
  return GetBit(BitIndexColor(position, color));
}

bool AtomicType::Equal(int i, int j) const {
  FOLEARN_CHECK(i >= 0 && j >= 0 && i < arity_ && j < arity_);
  if (i == j) return true;
  if (i > j) std::swap(i, j);
  return GetBit(BitIndexEqual(i, j));
}

bool AtomicType::Adjacent(int i, int j) const {
  FOLEARN_CHECK(i >= 0 && j >= 0 && i < arity_ && j < arity_);
  if (i == j) return false;
  if (i > j) std::swap(i, j);
  return GetBit(BitIndexAdjacent(i, j));
}

std::vector<int64_t> TypeRegistry::EncodeKey(const TypeNode& node) {
  std::vector<int64_t> key;
  key.reserve(3 + node.atomic.bits().size() + node.children.size());
  key.push_back(node.arity);
  key.push_back(node.rank);
  key.push_back(static_cast<int64_t>(node.atomic.bits().size()));
  for (uint64_t word : node.atomic.bits()) {
    key.push_back(static_cast<int64_t>(word));
  }
  for (TypeId child : node.children) key.push_back(child);
  return key;
}

int64_t TypeRegistry::ApproxNodeBytes(const TypeNode& node,
                                      size_t key_words) {
  // Node payload + the index entry (key vector stored in the map, hash
  // node header, bucket share) — the same estimation style BallCache's
  // kPerEntryOverhead uses.
  return static_cast<int64_t>(sizeof(TypeNode)) +
         static_cast<int64_t>(node.atomic.bits().capacity() *
                              sizeof(uint64_t)) +
         static_cast<int64_t>(node.children.capacity() * sizeof(TypeId)) +
         static_cast<int64_t>(key_words * sizeof(int64_t)) +
         static_cast<int64_t>(4 * sizeof(void*) + sizeof(TypeId));
}

TypeId TypeRegistry::Intern(TypeNode node) {
  FOLEARN_CHECK(std::is_sorted(node.children.begin(), node.children.end()));
  FOLEARN_CHECK(std::adjacent_find(node.children.begin(),
                                   node.children.end()) ==
                node.children.end());
  std::vector<int64_t> key = EncodeKey(node);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TypeId id = static_cast<TypeId>(nodes_.size());
  const int64_t cost = ApproxNodeBytes(node, key.size());
  charged_bytes_ += cost;
  if (account_ != nullptr) account_->Charge(cost);
  nodes_.push_back(std::move(node));
  index_.emplace(std::move(key), id);
  return id;
}

std::vector<TypeId> TypeRegistry::MergeFrom(const TypeRegistry& other) {
  FOLEARN_CHECK(vocabulary_ == other.vocabulary())
      << "registry merge across vocabularies";
  std::vector<TypeId> translation(other.nodes_.size(), kNoType);
  for (TypeId id = 0; id < static_cast<TypeId>(other.nodes_.size()); ++id) {
    TypeNode node = other.nodes_[id];
    for (TypeId& child : node.children) {
      FOLEARN_CHECK_LT(child, id) << "registry ids not topologically ordered";
      child = translation[child];
    }
    // Remapped children keep set semantics but may lose sortedness under
    // the new numbering (the translation is injective, so no duplicates).
    std::sort(node.children.begin(), node.children.end());
    translation[id] = Intern(std::move(node));
  }
  return translation;
}

TypeComputer::TypeComputer(const Graph& graph, TypeRegistry* registry)
    : graph_(graph), registry_(registry) {
  FOLEARN_CHECK(registry != nullptr);
  FOLEARN_CHECK(graph.vocabulary() == registry->vocabulary())
      << "TypeRegistry vocabulary does not match the graph";
}

TypeId TypeComputer::Type(std::span<const Vertex> tuple, int rank) {
  FOLEARN_CHECK_GE(rank, 0);
  std::vector<int64_t> key;
  key.reserve(tuple.size() + 1);
  key.push_back(rank);
  for (Vertex v : tuple) key.push_back(v);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  TypeNode node;
  node.arity = static_cast<int>(tuple.size());
  node.rank = rank;
  node.atomic = AtomicType(graph_, tuple);
  if (rank > 0) {
    std::vector<Vertex> extended(tuple.begin(), tuple.end());
    extended.push_back(kNoVertex);
    for (Vertex u = 0; u < graph_.order(); ++u) {
      extended.back() = u;
      node.children.push_back(Type(extended, rank - 1));
    }
    std::sort(node.children.begin(), node.children.end());
    node.children.erase(
        std::unique(node.children.begin(), node.children.end()),
        node.children.end());
  }
  TypeId id = registry_->Intern(std::move(node));
  cache_.emplace(std::move(key), id);
  return id;
}

TypeId ComputeType(const Graph& graph, std::span<const Vertex> tuple,
                   int rank, TypeRegistry* registry) {
  TypeComputer computer(graph, registry);
  return computer.Type(tuple, rank);
}

TypeId ComputeLocalType(const Graph& graph, std::span<const Vertex> tuple,
                        int rank, int radius, TypeRegistry* registry,
                        BallCache* ball_cache) {
  if (ball_cache == nullptr) {
    NeighborhoodGraph neighborhood =
        BuildNeighborhoodGraph(graph, tuple, radius);
    return ComputeType(neighborhood.induced.graph, neighborhood.tuple, rank,
                       registry);
  }
  std::vector<Vertex> ball = ball_cache->TupleBall(tuple, radius);
  InducedSubgraph induced = BuildInducedSubgraph(graph, ball);
  return ComputeType(induced.graph, induced.MapTuple(tuple), rank, registry);
}

std::vector<TypeId> ComputeLocalTypes(
    const Graph& graph, const std::vector<std::vector<Vertex>>& tuples,
    int rank, int radius, TypeRegistry* registry) {
  std::vector<TypeId> ids;
  ids.reserve(tuples.size());
  for (const std::vector<Vertex>& tuple : tuples) {
    ids.push_back(ComputeLocalType(graph, tuple, rank, radius, registry));
  }
  return ids;
}

int GaifmanRadius(int rank) {
  FOLEARN_CHECK_GE(rank, 0);
  // (7^q − 1) / 2: 0, 3, 24, 171, …
  int64_t power = 1;
  for (int i = 0; i < rank; ++i) power *= 7;
  int64_t radius = (power - 1) / 2;
  FOLEARN_CHECK_LE(radius, 1 << 28) << "Gaifman radius overflow";
  return static_cast<int>(radius);
}

}  // namespace folearn
