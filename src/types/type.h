#ifndef FOLEARN_TYPES_TYPE_H_
#define FOLEARN_TYPES_TYPE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/algorithms.h"
#include "graph/graph.h"
#include "util/hash.h"

namespace folearn {

// Rank-q first-order types as concrete data (paper §2, "Types").
//
// The paper works with tp_q(G, v̄) = the set of all rank-q formulas
// satisfied by v̄, made finite through a syntactic normal form. The
// executable equivalent is the Ehrenfeucht–Fraïssé type tree:
//
//   tp_0(G, v̄)  = the atomic type of v̄ (colours, equalities, adjacencies);
//   tp_q(G, v̄)  = (atomic type, { tp_{q−1}(G, v̄u) : u ∈ V(G) }).
//
// Two tuples receive the same TypeId iff they satisfy exactly the same
// FO formulas of quantifier rank ≤ q (over the registry's vocabulary) — the
// standard EF/Hintikka characterisation. Types are hash-consed into a
// TypeRegistry, so comparing types is integer comparison.
//
// Local types ltp_{q,r}(G, v̄) = tp_q(N_r^G(v̄), v̄) (Fact 5) are types of
// the induced r-ball with the tuple mapped along.

using TypeId = int32_t;
inline constexpr TypeId kNoType = -1;

// The quantifier-free description of a k-tuple: per-entry colour
// memberships, pairwise equalities, pairwise adjacencies, packed into bits.
class AtomicType {
 public:
  AtomicType() = default;

  // Reads the atomic type of `tuple` off `graph`.
  AtomicType(const Graph& graph, std::span<const Vertex> tuple);

  int arity() const { return arity_; }
  int num_colors() const { return num_colors_; }

  bool HasColor(int position, ColorId color) const;
  bool Equal(int i, int j) const;
  bool Adjacent(int i, int j) const;

  bool operator==(const AtomicType& other) const {
    return arity_ == other.arity_ && num_colors_ == other.num_colors_ &&
           bits_ == other.bits_;
  }

  const std::vector<uint64_t>& bits() const { return bits_; }

 private:
  int BitIndexColor(int position, ColorId color) const;
  int BitIndexEqual(int i, int j) const;
  int BitIndexAdjacent(int i, int j) const;
  bool GetBit(int index) const;
  void SetBit(int index);

  int arity_ = 0;
  int num_colors_ = 0;
  std::vector<uint64_t> bits_;
};

// One hash-consed type: the atomic part plus the sorted set of child types
// (rank−1 types of the extended tuples). rank 0 ⇒ children empty.
struct TypeNode {
  int arity = 0;
  int rank = 0;
  AtomicType atomic;
  std::vector<TypeId> children;  // sorted, unique
};

// Interns TypeNodes. A registry is bound to one vocabulary: TypeIds are
// only comparable for types computed over graphs with that vocabulary
// (colour names and ids must match — this matters because the learner's
// contraction step and the hardness reduction both *expand* vocabularies,
// and each expansion level gets its own registry).
class TypeRegistry {
 public:
  explicit TypeRegistry(Vocabulary vocabulary)
      : vocabulary_(std::move(vocabulary)) {}

  ~TypeRegistry() {
    if (account_ != nullptr) account_->Release(charged_bytes_);
  }

  TypeId Intern(TypeNode node);

  // Mirrors the registry's approximate footprint into a MemBudget account
  // (must outlive the registry; existing nodes are charged on attach).
  // Interned types are correctness state, not cache — growth uses forced
  // Charge, and an over-limit budget surfaces as the governor's
  // kResourceExhausted cut at the next checkpoint rather than a refusal
  // here.
  void set_mem_account(MemBudget* account) {
    if (account_ != nullptr) account_->Release(charged_bytes_);
    account_ = account;
    if (account_ != nullptr && charged_bytes_ > 0) {
      account_->Charge(charged_bytes_);
    }
  }

  // Approximate accounted footprint: node payloads plus hash-index
  // overhead, the same estimation style BallCache uses.
  int64_t approx_bytes() const { return charged_bytes_; }

  // Re-interns every node of `other` (same vocabulary) into this registry,
  // children before parents (registry ids are topologically ordered by
  // construction — a node's children are interned before the node itself).
  // Returns the id translation: translation[id in other] = id here.
  // Idempotent on content: merging a registry into an equal one adds
  // nothing. Used to fold per-worker registry shards from parallel sweeps
  // into one canonical registry deterministically (shard merge order is
  // fixed by the caller, and hash-consing makes re-interning
  // order-insensitive for types already present).
  std::vector<TypeId> MergeFrom(const TypeRegistry& other);

  const TypeNode& Node(TypeId id) const {
    FOLEARN_CHECK_GE(id, 0);
    FOLEARN_CHECK_LT(static_cast<size_t>(id), nodes_.size());
    return nodes_[id];
  }

  const Vocabulary& vocabulary() const { return vocabulary_; }

  // Number of distinct interned types.
  int64_t size() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  static std::vector<int64_t> EncodeKey(const TypeNode& node);
  static int64_t ApproxNodeBytes(const TypeNode& node, size_t key_words);

  Vocabulary vocabulary_;
  std::vector<TypeNode> nodes_;
  std::unordered_map<std::vector<int64_t>, TypeId, VectorHash<int64_t>>
      index_;
  int64_t charged_bytes_ = 0;
  MemBudget* account_ = nullptr;
};

// Computes rank-q types of tuples over a fixed graph, memoising across
// calls (the recursion for tp_q(v̄) visits tp_{q−1}(v̄u) for every u, so
// repeated queries share work). The graph must outlive the computer.
class TypeComputer {
 public:
  TypeComputer(const Graph& graph, TypeRegistry* registry);

  // tp_rank(G, tuple).
  TypeId Type(std::span<const Vertex> tuple, int rank);

  int64_t cache_size() const { return static_cast<int64_t>(cache_.size()); }

 private:
  const Graph& graph_;
  TypeRegistry* registry_;
  std::unordered_map<std::vector<int64_t>, TypeId, VectorHash<int64_t>>
      cache_;
};

// One-shot tp_q(G, v̄).
TypeId ComputeType(const Graph& graph, std::span<const Vertex> tuple,
                   int rank, TypeRegistry* registry);

// Local type ltp_{q,r}(G, v̄) = tp_q(N_r^G(v̄), v̄) (paper §2 / Fact 5).
// With a non-null `ball_cache` (bound to `graph`) the r-ball is assembled
// from cached per-vertex balls instead of a fresh multi-source BFS —
// semantically identical, and much cheaper when tuple entries recur across
// calls (as the example tuples do in every ERM sweep).
TypeId ComputeLocalType(const Graph& graph, std::span<const Vertex> tuple,
                        int rank, int radius, TypeRegistry* registry,
                        BallCache* ball_cache = nullptr);

// Batch variant sharing the ball computation per tuple; returns one TypeId
// per tuple.
std::vector<TypeId> ComputeLocalTypes(
    const Graph& graph, const std::vector<std::vector<Vertex>>& tuples,
    int rank, int radius, TypeRegistry* registry);

// The Gaifman locality radius r(q) used for Fact 5: with
// r = (7^q − 1) / 2, equal (q, r)-local types imply equal q-types. The
// classical bound from Gaifman's theorem; configurable call sites may use
// smaller radii as a heuristic (documented wherever they do).
int GaifmanRadius(int rank);

}  // namespace folearn

#endif  // FOLEARN_TYPES_TYPE_H_
