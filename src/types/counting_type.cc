#include "types/counting_type.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace folearn {

TypeId CountingTypeRegistry::Intern(CountingTypeNode node) {
  FOLEARN_CHECK(std::is_sorted(
      node.children.begin(), node.children.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  std::vector<int64_t> key;
  key.reserve(4 + node.atomic.bits().size() + 2 * node.children.size());
  key.push_back(node.arity);
  key.push_back(node.rank);
  key.push_back(node.cap);
  key.push_back(static_cast<int64_t>(node.atomic.bits().size()));
  for (uint64_t word : node.atomic.bits()) {
    key.push_back(static_cast<int64_t>(word));
  }
  for (const auto& [child, count] : node.children) {
    key.push_back(child);
    key.push_back(count);
  }
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TypeId id = static_cast<TypeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  index_.emplace(std::move(key), id);
  return id;
}

namespace {

class CountingTypeComputer {
 public:
  CountingTypeComputer(const Graph& graph, CountingTypeRegistry* registry)
      : graph_(graph), registry_(registry) {
    FOLEARN_CHECK(registry != nullptr);
    FOLEARN_CHECK(graph.vocabulary() == registry->vocabulary())
        << "CountingTypeRegistry vocabulary does not match the graph";
  }

  TypeId Type(std::span<const Vertex> tuple, int rank) {
    FOLEARN_CHECK_GE(rank, 0);
    std::vector<int64_t> key;
    key.reserve(tuple.size() + 1);
    key.push_back(rank);
    for (Vertex v : tuple) key.push_back(v);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;

    CountingTypeNode node;
    node.arity = static_cast<int>(tuple.size());
    node.rank = rank;
    node.cap = registry_->cap();
    node.atomic = AtomicType(graph_, tuple);
    if (rank > 0) {
      std::map<TypeId, int> counts;
      std::vector<Vertex> extended(tuple.begin(), tuple.end());
      extended.push_back(kNoVertex);
      for (Vertex u = 0; u < graph_.order(); ++u) {
        extended.back() = u;
        ++counts[Type(extended, rank - 1)];
      }
      for (const auto& [child, count] : counts) {
        node.children.emplace_back(child,
                                   std::min(count, registry_->cap()));
      }
    }
    TypeId id = registry_->Intern(std::move(node));
    cache_.emplace(std::move(key), id);
    return id;
  }

 private:
  const Graph& graph_;
  CountingTypeRegistry* registry_;
  std::unordered_map<std::vector<int64_t>, TypeId, VectorHash<int64_t>>
      cache_;
};

}  // namespace

TypeId ComputeCountingType(const Graph& graph, std::span<const Vertex> tuple,
                           int rank, CountingTypeRegistry* registry) {
  CountingTypeComputer computer(graph, registry);
  return computer.Type(tuple, rank);
}

TypeId ComputeLocalCountingType(const Graph& graph,
                                std::span<const Vertex> tuple, int rank,
                                int radius, CountingTypeRegistry* registry) {
  NeighborhoodGraph neighborhood =
      BuildNeighborhoodGraph(graph, tuple, radius);
  return ComputeCountingType(neighborhood.induced.graph, neighborhood.tuple,
                             rank, registry);
}

namespace {

// The full quantifier-free description (shared logic with the FO Hintikka
// builder, restated here to keep the modules independent).
FormulaRef AtomicDescription(const CountingTypeRegistry& registry,
                             const AtomicType& atomic,
                             const std::vector<std::string>& vars) {
  const Vocabulary& vocabulary = registry.vocabulary();
  FOLEARN_CHECK_EQ(atomic.num_colors(), vocabulary.size());
  std::vector<FormulaRef> parts;
  for (int i = 0; i < atomic.arity(); ++i) {
    for (ColorId c = 0; c < atomic.num_colors(); ++c) {
      FormulaRef atom = Formula::Color(vocabulary.Name(c), vars[i]);
      parts.push_back(atomic.HasColor(i, c) ? atom
                                            : Formula::Not(std::move(atom)));
    }
    for (int j = i + 1; j < atomic.arity(); ++j) {
      FormulaRef eq = Formula::Equals(vars[i], vars[j]);
      parts.push_back(atomic.Equal(i, j) ? eq : Formula::Not(std::move(eq)));
      FormulaRef edge = Formula::Edge(vars[i], vars[j]);
      parts.push_back(atomic.Adjacent(i, j) ? edge
                                            : Formula::Not(std::move(edge)));
    }
  }
  return Formula::And(std::move(parts));
}

}  // namespace

FormulaRef CountingHintikkaBuilder::Build(
    TypeId type, const std::vector<std::string>& vars) {
  const CountingTypeNode& node = registry_.Node(type);
  FOLEARN_CHECK_EQ(static_cast<int>(vars.size()), node.arity);
  std::ostringstream key_stream;
  key_stream << type << '|' << Join(vars, ",");
  std::string key = key_stream.str();
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  FormulaRef result = AtomicDescription(registry_, node.atomic, vars);
  if (node.rank > 0) {
    std::string fresh = "_c" + std::to_string(node.arity + 1);
    for (const std::string& var : vars) {
      FOLEARN_CHECK_NE(var, fresh)
          << "variable clashes with counting-Hintikka-internal name";
    }
    std::vector<std::string> extended = vars;
    extended.push_back(fresh);
    std::vector<FormulaRef> parts = {std::move(result)};
    std::vector<FormulaRef> some_child;
    for (const auto& [child, count] : node.children) {
      FormulaRef child_formula = Build(child, extended);
      parts.push_back(Formula::CountExists(count, fresh, child_formula));
      if (count < node.cap) {
        // Exact multiplicity: not one more.
        parts.push_back(Formula::Not(
            Formula::CountExists(count + 1, fresh, child_formula)));
      }
      some_child.push_back(std::move(child_formula));
    }
    parts.push_back(
        Formula::Forall(fresh, Formula::Or(std::move(some_child))));
    result = Formula::And(std::move(parts));
  }
  memo_.emplace(std::move(key), result);
  return result;
}

}  // namespace folearn
