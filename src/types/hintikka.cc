#include "types/hintikka.h"

#include <sstream>

#include "fo/transform.h"
#include "util/strings.h"

namespace folearn {

namespace {

// The full quantifier-free description of an atomic type over `vars`.
FormulaRef AtomicDescription(const TypeRegistry& registry,
                             const AtomicType& atomic,
                             const std::vector<std::string>& vars) {
  const Vocabulary& vocabulary = registry.vocabulary();
  FOLEARN_CHECK_EQ(atomic.num_colors(), vocabulary.size());
  std::vector<FormulaRef> parts;
  for (int i = 0; i < atomic.arity(); ++i) {
    for (ColorId c = 0; c < atomic.num_colors(); ++c) {
      FormulaRef atom = Formula::Color(vocabulary.Name(c), vars[i]);
      parts.push_back(atomic.HasColor(i, c) ? atom
                                            : Formula::Not(std::move(atom)));
    }
    for (int j = i + 1; j < atomic.arity(); ++j) {
      FormulaRef eq = Formula::Equals(vars[i], vars[j]);
      parts.push_back(atomic.Equal(i, j) ? eq : Formula::Not(std::move(eq)));
      FormulaRef edge = Formula::Edge(vars[i], vars[j]);
      parts.push_back(atomic.Adjacent(i, j) ? edge
                                            : Formula::Not(std::move(edge)));
    }
  }
  return Formula::And(std::move(parts));
}

}  // namespace

FormulaRef HintikkaBuilder::Build(TypeId type,
                                    const std::vector<std::string>& vars) {
  const TypeNode& node = registry_.Node(type);
  FOLEARN_CHECK_EQ(static_cast<int>(vars.size()), node.arity);
  std::ostringstream key_stream;
  key_stream << type << '|' << Join(vars, ",");
  std::string key = key_stream.str();
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  FormulaRef result = AtomicDescription(registry_, node.atomic, vars);
  if (node.rank > 0) {
    std::string fresh = "_h" + std::to_string(node.arity + 1);
    for (const std::string& var : vars) {
      FOLEARN_CHECK_NE(var, fresh)
          << "variable clashes with Hintikka-internal name";
    }
    std::vector<std::string> extended = vars;
    extended.push_back(fresh);
    std::vector<FormulaRef> exists_parts;
    std::vector<FormulaRef> forall_parts;
    for (TypeId child : node.children) {
      FormulaRef child_formula = Build(child, extended);
      exists_parts.push_back(
          Formula::Exists(fresh, child_formula));
      forall_parts.push_back(std::move(child_formula));
    }
    std::vector<FormulaRef> all_parts;
    all_parts.push_back(std::move(result));
    for (FormulaRef& part : exists_parts) all_parts.push_back(std::move(part));
    all_parts.push_back(
        Formula::Forall(fresh, Formula::Or(std::move(forall_parts))));
    result = Formula::And(std::move(all_parts));
  }
  memo_.emplace(std::move(key), result);
  return result;
}

FormulaRef HintikkaBuilder::BuildLocal(TypeId type,
                                         const std::vector<std::string>& vars,
                                         int radius) {
  return RelativizeToBall(Build(type, vars), vars, radius);
}

FormulaRef HintikkaFormula(const TypeRegistry& registry, TypeId type,
                           const std::vector<std::string>& vars) {
  HintikkaBuilder builder(registry);
  return builder.Build(type, vars);
}

FormulaRef LocalHintikkaFormula(const TypeRegistry& registry, TypeId type,
                                const std::vector<std::string>& vars,
                                int radius) {
  HintikkaBuilder builder(registry);
  return builder.BuildLocal(type, vars, radius);
}

}  // namespace folearn
