#ifndef FOLEARN_TYPES_COUNTING_TYPE_H_
#define FOLEARN_TYPES_COUNTING_TYPE_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fo/formula.h"
#include "types/type.h"

namespace folearn {

// Rank-q COUNTING types: the FO+C analogue of src/types/type.h, supporting
// the threshold quantifiers ∃^{≥t} (the extension the paper's conclusion
// asks for, following van Bergerem LICS 2019).
//
//   ctp_0(G, v̄)  = atomic type;
//   ctp_q(G, v̄)  = (atomic type,
//                    multiset { ctp_{q−1}(G, v̄u) : u ∈ V(G) } with
//                    multiplicities CAPPED at `cap`).
//
// Two tuples with equal rank-q cap-T counting types satisfy exactly the
// same FO+C formulas of quantifier rank ≤ q whose thresholds are ≤ T (the
// counting Ehrenfeucht–Fraïssé argument): the capped multiplicities are
// precisely what ∃^{≥t}, t ≤ T, can observe.
//
// cap = 1 degenerates to plain FO types.

struct CountingTypeNode {
  int arity = 0;
  int rank = 0;
  int cap = 1;
  AtomicType atomic;
  // (child type, multiplicity capped at `cap`), sorted by child id.
  std::vector<std::pair<TypeId, int>> children;
};

// Interns counting types; ids live in the same TypeId space but are only
// comparable within one registry (fixed vocabulary AND cap).
class CountingTypeRegistry {
 public:
  CountingTypeRegistry(Vocabulary vocabulary, int cap)
      : vocabulary_(std::move(vocabulary)), cap_(cap) {
    FOLEARN_CHECK_GE(cap, 1);
  }

  TypeId Intern(CountingTypeNode node);

  const CountingTypeNode& Node(TypeId id) const {
    FOLEARN_CHECK_GE(id, 0);
    FOLEARN_CHECK_LT(static_cast<size_t>(id), nodes_.size());
    return nodes_[id];
  }

  const Vocabulary& vocabulary() const { return vocabulary_; }
  int cap() const { return cap_; }
  int64_t size() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  Vocabulary vocabulary_;
  int cap_;
  std::vector<CountingTypeNode> nodes_;
  std::unordered_map<std::vector<int64_t>, TypeId, VectorHash<int64_t>>
      index_;
};

// ctp_rank(G, tuple) with the registry's cap.
TypeId ComputeCountingType(const Graph& graph, std::span<const Vertex> tuple,
                           int rank, CountingTypeRegistry* registry);

// Local counting type: ctp of the induced radius-ball around the tuple.
TypeId ComputeLocalCountingType(const Graph& graph,
                                std::span<const Vertex> tuple, int rank,
                                int radius, CountingTypeRegistry* registry);

// Counting Hintikka formula: an FO+C formula of rank ≤ q (thresholds ≤
// cap + 1) defining the counting type exactly:
//   atomic ∧ ⋀_{(θ′,c)} ∃^{≥c} z φ_{θ′}
//          ∧ ⋀_{(θ′,c), c < cap} ¬∃^{≥c+1} z φ_{θ′}
//          ∧ ∀z ⋁_{(θ′,·)} φ_{θ′}.
class CountingHintikkaBuilder {
 public:
  explicit CountingHintikkaBuilder(const CountingTypeRegistry& registry)
      : registry_(registry) {}

  FormulaRef Build(TypeId type, const std::vector<std::string>& vars);

 private:
  const CountingTypeRegistry& registry_;
  std::unordered_map<std::string, FormulaRef> memo_;
};

}  // namespace folearn

#endif  // FOLEARN_TYPES_COUNTING_TYPE_H_
