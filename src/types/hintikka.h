#ifndef FOLEARN_TYPES_HINTIKKA_H_
#define FOLEARN_TYPES_HINTIKKA_H_

#include <string>
#include <vector>

#include "fo/formula.h"
#include "types/type.h"

namespace folearn {

// Hintikka (characteristic) formulas: for every rank-q type θ of arity k
// there is a formula φ_θ(x1, …, xk) of quantifier rank exactly ≤ q such
// that for every graph H over the registry's vocabulary and every tuple ū,
//
//     H ⊨ φ_θ(ū)  ⟺  tp_q(H, ū) = θ.
//
// Construction (standard):
//   rank 0:  the full atomic description (colours, equalities, adjacencies,
//            positive or negated);
//   rank q:  atomic ∧ ⋀_{θ′ ∈ children} ∃z φ_{θ′}(x̄, z)
//                  ∧ ∀z ⋁_{θ′ ∈ children} φ_{θ′}(x̄, z).
//
// This is what lets the library return *actual formulas* wherever the paper
// says "a formula of quantifier rank q": every hypothesis and every oracle
// answer is a boolean combination of Hintikka formulas.
class HintikkaBuilder {
 public:
  explicit HintikkaBuilder(const TypeRegistry& registry)
      : registry_(registry) {}

  // φ_θ over the given free variable names (size = arity of θ). Quantified
  // variables are named "_h<arity>" and must not clash with `vars`.
  // Memoised: repeated types share subformula DAGs.
  FormulaRef Build(TypeId type, const std::vector<std::string>& vars);

  // The r-local version: quantifiers relativised to the radius-r ball
  // around `vars`, so for every graph G and tuple ū,
  //     G ⊨ φ(ū)  ⟺  ltp_{q,r}(G, ū) = θ
  // (evaluating the plain Hintikka formula inside the induced ball equals
  // evaluating the relativised one in G). Quantifier rank grows by
  // O(log r) — the paper's Q(k,ℓ,q) = q + log R effect.
  FormulaRef BuildLocal(TypeId type, const std::vector<std::string>& vars,
                          int radius);

 private:
  const TypeRegistry& registry_;
  // Memo keyed by (type, joined variable names).
  std::unordered_map<std::string, FormulaRef> memo_;
};

// One-shot helpers.
FormulaRef HintikkaFormula(const TypeRegistry& registry, TypeId type,
                           const std::vector<std::string>& vars);
FormulaRef LocalHintikkaFormula(const TypeRegistry& registry, TypeId type,
                                const std::vector<std::string>& vars,
                                int radius);

}  // namespace folearn

#endif  // FOLEARN_TYPES_HINTIKKA_H_
