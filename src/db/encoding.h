#ifndef FOLEARN_DB_ENCODING_H_
#define FOLEARN_DB_ENCODING_H_

#include <string>
#include <vector>

#include "db/database.h"
#include "fo/formula.h"
#include "graph/graph.h"

namespace folearn {

// Incidence encoding of a relational database as a coloured graph
// (the paper's "relational structures can easily be encoded as graphs"):
//
//   * one vertex per domain element, coloured `Elem`;
//   * one vertex per tuple t ∈ R, coloured `Rel_R`;
//   * one vertex per (tuple, position i), coloured `Pos_i`, with edges
//     tuple-vertex — position-vertex — element-vertex.
//
// Elements of the same tuple are at graph distance 4, so bounded-arity
// sparse databases encode to sparse (degree-bounded, nowhere dense when the
// incidence structure is) graphs, and FO queries translate with a constant
// quantifier-rank overhead of 2 per relational atom.
struct EncodedDatabase {
  Graph graph;
  // element_vertex[e] = graph vertex of domain element e.
  std::vector<Vertex> element_vertex;

  // Translates a domain element to its graph vertex.
  Vertex VertexOf(int element) const {
    FOLEARN_CHECK_GE(element, 0);
    FOLEARN_CHECK_LT(static_cast<size_t>(element), element_vertex.size());
    return element_vertex[element];
  }

  // Maps a database tuple to a graph tuple (for building training sets).
  std::vector<Vertex> MapTuple(const std::vector<int>& elements) const;
};

EncodedDatabase EncodeDatabase(const Database& database);

// Colour names used by the encoding.
std::string ElementColorName();                     // "Elem"
std::string RelationColorName(const std::string&);  // "Rel_<name>"
std::string PositionColorName(int position);        // "Pos_<i>" (0-based)

// The graph-side translation of the relational atom R(v1, …, vr):
//   ∃t (Rel_R(t) ∧ ⋀_i ∃p (Pos_i(p) ∧ E(t, p) ∧ E(p, v_i))).
// Adds quantifier rank 2 (t plus one nested p at a time).
FormulaRef RelationAtom(const std::string& relation,
                        const std::vector<std::string>& vars);

// Element-sorted quantifiers: ∃x (Elem(x) ∧ φ) and ∀x (Elem(x) → φ) —
// queries over the encoded graph should range over element vertices only.
FormulaRef ExistsElem(const std::string& var, FormulaRef body);
FormulaRef ForallElem(const std::string& var, FormulaRef body);

}  // namespace folearn

#endif  // FOLEARN_DB_ENCODING_H_
