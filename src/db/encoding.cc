#include "db/encoding.h"

namespace folearn {

std::string ElementColorName() { return "Elem"; }

std::string RelationColorName(const std::string& relation) {
  return "Rel_" + relation;
}

std::string PositionColorName(int position) {
  return "Pos_" + std::to_string(position);
}

std::vector<Vertex> EncodedDatabase::MapTuple(
    const std::vector<int>& elements) const {
  std::vector<Vertex> mapped;
  mapped.reserve(elements.size());
  for (int element : elements) mapped.push_back(VertexOf(element));
  return mapped;
}

EncodedDatabase EncodeDatabase(const Database& database) {
  EncodedDatabase encoded;
  Graph& g = encoded.graph;

  ColorId elem_color = g.AddColor(ElementColorName());
  int max_arity = 0;
  for (const RelationSchema& relation : database.schema().relations()) {
    g.AddColor(RelationColorName(relation.name));
    max_arity = std::max(max_arity, relation.arity);
  }
  std::vector<ColorId> position_colors;
  for (int i = 0; i < max_arity; ++i) {
    position_colors.push_back(g.AddColor(PositionColorName(i)));
  }

  encoded.element_vertex.resize(database.domain_size());
  for (int e = 0; e < database.domain_size(); ++e) {
    Vertex v = g.AddVertex();
    g.SetColor(v, elem_color);
    encoded.element_vertex[e] = v;
  }

  for (const RelationSchema& relation : database.schema().relations()) {
    ColorId relation_color = *g.FindColor(RelationColorName(relation.name));
    for (const std::vector<int>& tuple : database.Tuples(relation.name)) {
      Vertex tuple_vertex = g.AddVertex();
      g.SetColor(tuple_vertex, relation_color);
      for (int i = 0; i < relation.arity; ++i) {
        Vertex position_vertex = g.AddVertex();
        g.SetColor(position_vertex, position_colors[i]);
        g.AddEdge(tuple_vertex, position_vertex);
        g.AddEdge(position_vertex, encoded.element_vertex[tuple[i]]);
      }
    }
  }
  return encoded;
}

FormulaRef RelationAtom(const std::string& relation,
                        const std::vector<std::string>& vars) {
  FOLEARN_CHECK(!vars.empty());
  const std::string tuple_var = "_t";
  std::vector<FormulaRef> parts;
  parts.push_back(Formula::Color(RelationColorName(relation), tuple_var));
  for (size_t i = 0; i < vars.size(); ++i) {
    FOLEARN_CHECK_NE(vars[i], tuple_var);
    const std::string position_var = "_p";
    FOLEARN_CHECK_NE(vars[i], position_var);
    parts.push_back(Formula::Exists(
        position_var,
        Formula::And(
            {Formula::Color(PositionColorName(static_cast<int>(i)),
                            position_var),
             Formula::Edge(tuple_var, position_var),
             Formula::Edge(position_var, vars[i])})));
  }
  return Formula::Exists(tuple_var, Formula::And(std::move(parts)));
}

FormulaRef ExistsElem(const std::string& var, FormulaRef body) {
  return Formula::Exists(
      var, Formula::And(Formula::Color(ElementColorName(), var),
                        std::move(body)));
}

FormulaRef ForallElem(const std::string& var, FormulaRef body) {
  return Formula::Forall(
      var, Formula::Implies(Formula::Color(ElementColorName(), var),
                            std::move(body)));
}

}  // namespace folearn
