#include "db/database.h"

namespace folearn {

void Schema::AddRelation(std::string name, int arity) {
  FOLEARN_CHECK(!name.empty());
  FOLEARN_CHECK_GE(arity, 1);
  FOLEARN_CHECK(index_.find(name) == index_.end())
      << "duplicate relation '" << name << "'";
  index_.emplace(name, static_cast<int>(relations_.size()));
  relations_.push_back({std::move(name), arity});
}

const RelationSchema* Schema::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return &relations_[it->second];
}

void Database::AddTuple(const std::string& relation, std::vector<int> tuple) {
  const RelationSchema* rel = schema_.Find(relation);
  FOLEARN_CHECK(rel != nullptr) << "unknown relation '" << relation << "'";
  FOLEARN_CHECK_EQ(static_cast<int>(tuple.size()), rel->arity);
  for (int element : tuple) {
    FOLEARN_CHECK(element >= 0 && element < domain_size_)
        << "element " << element << " outside domain";
  }
  relations_[relation].insert(std::move(tuple));
}

bool Database::Contains(const std::string& relation,
                        const std::vector<int>& tuple) const {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return false;
  return it->second.count(tuple) > 0;
}

const std::set<std::vector<int>>& Database::Tuples(
    const std::string& relation) const {
  static const std::set<std::vector<int>>* empty =
      new std::set<std::vector<int>>();
  FOLEARN_CHECK(schema_.Find(relation) != nullptr)
      << "unknown relation '" << relation << "'";
  auto it = relations_.find(relation);
  return it == relations_.end() ? *empty : it->second;
}

int64_t Database::TotalTuples() const {
  int64_t total = 0;
  for (const auto& [name, tuples] : relations_) {
    total += static_cast<int64_t>(tuples.size());
  }
  return total;
}

}  // namespace folearn
