#ifndef FOLEARN_DB_DATABASE_H_
#define FOLEARN_DB_DATABASE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/check.h"

namespace folearn {

// A relational database substrate. The paper states all results for
// coloured graphs and notes that "arbitrary relational structures can
// easily be encoded as graphs"; this module is that encoding, so the
// learners can be exercised on genuinely relational data (see
// db/encoding.h).

// One relation symbol with fixed arity.
struct RelationSchema {
  std::string name;
  int arity = 0;
};

// A relational schema: named relations with arities.
class Schema {
 public:
  Schema() = default;

  // Declares a relation; names must be unique, arity ≥ 1.
  void AddRelation(std::string name, int arity);

  const RelationSchema* Find(const std::string& name) const;

  const std::vector<RelationSchema>& relations() const { return relations_; }

 private:
  std::vector<RelationSchema> relations_;
  std::map<std::string, int> index_;
};

// A database instance: a finite domain {0, …, domain_size−1} plus a set of
// tuples per relation.
class Database {
 public:
  Database(Schema schema, int domain_size)
      : schema_(std::move(schema)), domain_size_(domain_size) {
    FOLEARN_CHECK_GE(domain_size, 0);
  }

  const Schema& schema() const { return schema_; }
  int domain_size() const { return domain_size_; }

  // Inserts a tuple into `relation`; arity and domain bounds are checked.
  // Idempotent.
  void AddTuple(const std::string& relation, std::vector<int> tuple);

  bool Contains(const std::string& relation,
                const std::vector<int>& tuple) const;

  const std::set<std::vector<int>>& Tuples(const std::string& relation) const;

  int64_t TotalTuples() const;

 private:
  Schema schema_;
  int domain_size_;
  std::map<std::string, std::set<std::vector<int>>> relations_;
};

}  // namespace folearn

#endif  // FOLEARN_DB_DATABASE_H_
