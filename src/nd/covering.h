#ifndef FOLEARN_ND_COVERING_H_
#define FOLEARN_ND_COVERING_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace folearn {

// Lemma 3 (Vitali-style ball covering): for X ⊆ V(G) and r ≥ 1 there are
// Z ⊆ X and R = 3^i·r (0 ≤ i ≤ |X|−1) such that
//   (i)  the R-balls around distinct z, z′ ∈ Z are disjoint, and
//   (ii) N_r(X) ⊆ N_R(Z).
struct CoveringResult {
  std::vector<Vertex> centers;  // Z, subset of the input X
  int radius = 0;               // R = 3^i · r
  int iterations = 0;           // the i with R = 3^i · r
};

// Implements the constructive proof: Z_0 = X; while some pair of R_i-balls
// intersects, take an inclusion-maximal subset with pairwise disjoint
// R_i-balls and triple the radius. Terminates after ≤ |X|−1 iterations.
// Requires r ≥ 1 and X non-empty.
CoveringResult GreedyBallCovering(const Graph& graph,
                                  std::span<const Vertex> centers, int r);

// Verification helper for tests: checks properties (i) and (ii).
bool VerifyCovering(const Graph& graph, std::span<const Vertex> original,
                    const CoveringResult& covering, int r);

}  // namespace folearn

#endif  // FOLEARN_ND_COVERING_H_
