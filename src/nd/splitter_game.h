#ifndef FOLEARN_ND_SPLITTER_GAME_H_
#define FOLEARN_ND_SPLITTER_GAME_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/algorithms.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace folearn {

// The (r, s)-splitter game (paper §2, Fact 4; Grohe–Kreutzer–Siebertz).
//
// Position: a graph G_i. In round i+1 Connector picks a vertex v ∈ V(G_i)
// (in the modified game also a radius r′ ≤ r), Splitter answers with
// w ∈ N_{r′}^{G_i}(v), and the game continues on
// G_{i+1} := G_i[N_{r′}^{G_i}(v) \ {w}]. Splitter wins when G_{i+1} = ∅.
// A class is nowhere dense iff for every r some finite s suffices for
// Splitter on all its members (Fact 4).
//
// Theorem 13's learner replays Splitter's answers as hypothesis parameters,
// so strategies are first-class objects here.

// A Splitter strategy: given the current game graph and Connector's pick
// (vertex + effective radius), choose the vertex to delete from the ball.
class SplitterStrategy {
 public:
  virtual ~SplitterStrategy() = default;

  // Must return a vertex in N_radius^{graph}(pick) (pick itself allowed).
  virtual Vertex ChooseRemoval(const Graph& graph, Vertex pick,
                               int radius) = 0;

  virtual std::string name() const = 0;
};

// A Connector strategy: choose the next pick (vertex, radius ≤ max_radius).
class ConnectorStrategy {
 public:
  virtual ~ConnectorStrategy() = default;

  struct Pick {
    Vertex vertex;
    int radius;
  };

  virtual Pick ChoosePick(const Graph& graph, int max_radius) = 0;

  virtual std::string name() const = 0;
};

// --- Splitter strategies ----------------------------------------------------

// Deletes Connector's own vertex. Optimal on stars and radius-0 games;
// the simplest baseline.
std::unique_ptr<SplitterStrategy> MakeCenterSplitter();

// Forest strategy: roots the component of the pick (deterministically at its
// minimum vertex), then deletes the ball vertex closest to the root. On
// forests this wins the radius-r game within r + 1 rounds.
std::unique_ptr<SplitterStrategy> MakeTreeSplitter();

// Deletes the maximum-degree vertex of the ball (hub removal) — an
// effective heuristic on sparse graphs that are not forests.
std::unique_ptr<SplitterStrategy> MakeGreedyDegreeSplitter();

// Exact minimax play via game-tree search with memoisation. Exponential:
// only usable for graphs up to ~a dozen vertices; `budget` caps explored
// positions (falls back to the greedy choice when exhausted).
std::unique_ptr<SplitterStrategy> MakeMinimaxSplitter(int64_t budget = 200000);

// --- Connector strategies ---------------------------------------------------

// Uniformly random vertex, full radius.
std::unique_ptr<ConnectorStrategy> MakeRandomConnector(Rng& rng);

// Picks the vertex whose r-ball is largest (an adversarial heuristic that
// keeps the game graph as big as possible).
std::unique_ptr<ConnectorStrategy> MakeGreedyBallConnector();

// --- Game runner -------------------------------------------------------------

struct SplitterGameResult {
  bool splitter_won = false;
  int rounds_used = 0;
  // Splitter's deletions, as vertices of the *original* graph, in order.
  std::vector<Vertex> splitter_moves;
  // Connector's picks, as vertices of the original graph.
  std::vector<Vertex> connector_picks;
};

// Plays the (radius, max_rounds)-splitter game.
SplitterGameResult PlaySplitterGame(const Graph& graph, int radius,
                                    int max_rounds,
                                    SplitterStrategy& splitter,
                                    ConnectorStrategy& connector);

// Upper bound on the rounds Splitter needs on `graph` at `radius` when
// playing `splitter` against the worst of the given connectors (each tried;
// the maximum rounds over connectors is reported). Returns max_rounds + 1
// if some connector survives max_rounds.
int MeasureSplitterRounds(const Graph& graph, int radius, int max_rounds,
                          SplitterStrategy& splitter,
                          const std::vector<ConnectorStrategy*>& connectors);

// The number of rounds the library budgets for Splitter on the nowhere
// dense families it generates: s(r) = r + 2 — enough for forests with the
// tree strategy, and used as the default `s` in the Theorem 13 learner
// (effective nowhere denseness: s is a computable function of r).
int DefaultSplitterRounds(int radius);

}  // namespace folearn

#endif  // FOLEARN_ND_SPLITTER_GAME_H_
