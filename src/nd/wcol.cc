#include "nd/wcol.h"

#include <algorithm>
#include <deque>

#include "graph/invariants.h"

namespace folearn {

int WeakColoringNumber(const Graph& graph, const std::vector<Vertex>& order,
                       int radius) {
  const int n = graph.order();
  FOLEARN_CHECK_EQ(static_cast<int>(order.size()), n);
  FOLEARN_CHECK_GE(radius, 0);
  // rank[v] = position of v in the order (smaller = earlier = "smaller").
  std::vector<int> rank(n);
  for (int i = 0; i < n; ++i) {
    FOLEARN_CHECK(graph.IsValidVertex(order[i]));
    rank[order[i]] = i;
  }
  // wreach_count[v] = |WReach_r[L, v]| accumulated below.
  std::vector<int> wreach_count(n, 0);
  // Process u in increasing order. u is weakly r-reachable from every v
  // reached by a BFS from u of depth ≤ r that only moves through vertices
  // of rank ≥ rank[u] (u must be the path minimum). Every v itself also has
  // rank ≥ rank[u] except v = u (v is on the path too) — note v ∈ the path,
  // so v's rank must also be ≥ rank[u]; the BFS restriction enforces that.
  std::vector<int> depth(n);
  for (int i = 0; i < n; ++i) {
    Vertex u = order[i];
    std::fill(depth.begin(), depth.end(), -1);
    depth[u] = 0;
    std::deque<Vertex> queue = {u};
    ++wreach_count[u];  // u reaches itself
    while (!queue.empty()) {
      Vertex v = queue.front();
      queue.pop_front();
      if (depth[v] >= radius) continue;
      for (Vertex w : graph.Neighbors(v)) {
        if (depth[w] != -1) continue;
        if (rank[w] < rank[u]) continue;  // u must stay the path minimum
        depth[w] = depth[v] + 1;
        queue.push_back(w);
        ++wreach_count[w];  // u ∈ WReach_r[L, w]
      }
    }
  }
  return *std::max_element(wreach_count.begin(), wreach_count.end());
}

int WeakColoringNumberDegeneracyOrder(const Graph& graph, int radius,
                                      std::vector<Vertex>* order_out) {
  DegeneracyResult degeneracy = ComputeDegeneracy(graph);
  // The peeling order removes low-degree vertices first; for wcol we want
  // the *reverse*: high-connectivity vertices should come early (small) so
  // few vertices are weakly reachable. Empirically the reverse peeling
  // order is the standard heuristic.
  std::vector<Vertex> order(degeneracy.order.rbegin(),
                            degeneracy.order.rend());
  if (order_out != nullptr) *order_out = order;
  return WeakColoringNumber(graph, order, radius);
}

}  // namespace folearn
