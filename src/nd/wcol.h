#ifndef FOLEARN_ND_WCOL_H_
#define FOLEARN_ND_WCOL_H_

#include <vector>

#include "graph/graph.h"

namespace folearn {

// Weak r-colouring numbers — the second classical yardstick for nowhere
// denseness (besides the splitter game, Fact 4): a class C is nowhere dense
// iff for every r, wcol_r(G) ∈ n^{o(1)} for G ∈ C; bounded-expansion
// classes have wcol_r(G) ≤ f(r).
//
// A vertex u is *weakly r-reachable* from v under a linear order L if some
// path from v to u of length ≤ r has u as its L-minimum. wcol_r(G, L) is
// the maximum over v of |WReach_r[L, v]|; wcol_r(G) minimises over orders.
// Computing the optimal order is NP-hard, so we evaluate the standard
// degeneracy-order heuristic (and any caller-supplied order).

// wcol_r of `graph` under `order` (order[i] = the i-th smallest vertex).
// Cost O(n · ball_r) — one bounded BFS per vertex in increasing order.
int WeakColoringNumber(const Graph& graph, const std::vector<Vertex>& order,
                       int radius);

// wcol_r under the min-degree-peeling (degeneracy) order, the common
// heuristic; returns the number and (optionally) the order used.
int WeakColoringNumberDegeneracyOrder(const Graph& graph, int radius,
                                      std::vector<Vertex>* order_out =
                                          nullptr);

}  // namespace folearn

#endif  // FOLEARN_ND_WCOL_H_
