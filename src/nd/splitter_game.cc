#include "nd/splitter_game.h"

#include <algorithm>
#include <map>

namespace folearn {

namespace {

class CenterSplitter : public SplitterStrategy {
 public:
  Vertex ChooseRemoval(const Graph& graph, Vertex pick, int radius) override {
    (void)graph;
    (void)radius;
    return pick;
  }
  std::string name() const override { return "center"; }
};

class TreeSplitter : public SplitterStrategy {
 public:
  Vertex ChooseRemoval(const Graph& graph, Vertex pick, int radius) override {
    // Root the component of `pick` at its minimum vertex; delete the ball
    // vertex closest to that root. On a forest the topmost ball vertex
    // separates the ball from the rest of its component, and its removal
    // splits the remaining ball into strictly shallower subtrees.
    Vertex pick_array[] = {pick};
    std::vector<int> from_pick = BfsDistances(graph, pick_array);
    Vertex root = kNoVertex;
    for (Vertex v = 0; v < graph.order(); ++v) {
      if (from_pick[v] != kUnreachable) {
        root = v;
        break;
      }
    }
    FOLEARN_CHECK_NE(root, kNoVertex);
    Vertex root_array[] = {root};
    std::vector<int> depth = BfsDistances(graph, root_array);
    Vertex best = pick;
    for (Vertex v = 0; v < graph.order(); ++v) {
      if (from_pick[v] == kUnreachable || from_pick[v] > radius) continue;
      if (depth[v] < depth[best] || (depth[v] == depth[best] && v < best)) {
        best = v;
      }
    }
    return best;
  }
  std::string name() const override { return "tree"; }
};

class GreedyDegreeSplitter : public SplitterStrategy {
 public:
  Vertex ChooseRemoval(const Graph& graph, Vertex pick, int radius) override {
    Vertex pick_array[] = {pick};
    std::vector<Vertex> ball = Ball(graph, pick_array, radius);
    Vertex best = ball.front();
    for (Vertex v : ball) {
      if (graph.Degree(v) > graph.Degree(best)) best = v;
    }
    return best;
  }
  std::string name() const override { return "greedy-degree"; }
};

// --- Minimax ---------------------------------------------------------------

// Exact "rounds Splitter needs" computation on small graphs.
class MinimaxSolver {
 public:
  explicit MinimaxSolver(int64_t budget) : budget_(budget) {}

  // Minimal s such that Splitter wins the (radius, s)-game on `graph`,
  // capped at `cap` (returns cap + 1 if more are needed or budget ran out).
  int RoundsNeeded(const Graph& graph, int radius, int cap) {
    if (graph.order() == 0) return 0;
    if (cap <= 0) return 1;  // cannot finish in 0 rounds on non-empty graph
    std::vector<int64_t> key = EncodeGraph(graph);
    key.push_back(radius);
    auto it = memo_.find(key);
    // Memo holds only conclusive (un-capped) values, so any hit is exact.
    if (it != memo_.end()) return std::min(it->second, cap + 1);
    if (budget_ <= 0) return cap + 1;
    --budget_;
    int worst = 0;
    for (Vertex v = 0; v < graph.order(); ++v) {
      Vertex pick_array[] = {v};
      std::vector<Vertex> ball = Ball(graph, pick_array, radius);
      int best_for_splitter = cap + 1;
      for (Vertex w : ball) {
        std::vector<Vertex> rest;
        for (Vertex u : ball) {
          if (u != w) rest.push_back(u);
        }
        Graph next = BuildInducedSubgraph(graph, rest).graph;
        int rounds = RoundsNeeded(next, radius, best_for_splitter - 2);
        best_for_splitter = std::min(best_for_splitter, rounds + 1);
        if (best_for_splitter == 1) break;
      }
      worst = std::max(worst, best_for_splitter);
      if (worst > cap) break;
    }
    if (worst <= cap) memo_[std::move(key)] = worst;  // conclusive only
    return worst;
  }

  int64_t budget() const { return budget_; }

 private:
  static std::vector<int64_t> EncodeGraph(const Graph& graph) {
    // Canonical encoding of the labelled graph: order, colour bits, edges.
    std::vector<int64_t> key;
    key.push_back(graph.order());
    for (Vertex v = 0; v < graph.order(); ++v) {
      int64_t colors = 0;
      for (ColorId c = 0; c < graph.vocabulary().size() && c < 62; ++c) {
        if (graph.HasColor(v, c)) colors |= int64_t{1} << c;
      }
      key.push_back(colors);
      for (Vertex u : graph.Neighbors(v)) {
        if (u > v) key.push_back((static_cast<int64_t>(v) << 32) | u);
      }
    }
    return key;
  }

  int64_t budget_;
  std::map<std::vector<int64_t>, int> memo_;
};

class MinimaxSplitter : public SplitterStrategy {
 public:
  explicit MinimaxSplitter(int64_t budget) : budget_(budget) {}

  Vertex ChooseRemoval(const Graph& graph, Vertex pick, int radius) override {
    Vertex pick_array[] = {pick};
    std::vector<Vertex> ball = Ball(graph, pick_array, radius);
    MinimaxSolver solver(budget_);
    Vertex best = ball.front();
    int best_rounds = -1;
    constexpr int kCap = 16;
    for (Vertex w : ball) {
      std::vector<Vertex> rest;
      for (Vertex u : ball) {
        if (u != w) rest.push_back(u);
      }
      Graph next = BuildInducedSubgraph(graph, rest).graph;
      int rounds = solver.RoundsNeeded(next, radius, kCap);
      if (best_rounds == -1 || rounds < best_rounds) {
        best_rounds = rounds;
        best = w;
      }
      if (solver.budget() <= 0) break;
    }
    if (solver.budget() <= 0 && best_rounds == -1) {
      return GreedyDegreeSplitter().ChooseRemoval(graph, pick, radius);
    }
    return best;
  }
  std::string name() const override { return "minimax"; }

 private:
  int64_t budget_;
};

// --- Connectors --------------------------------------------------------------

class RandomConnector : public ConnectorStrategy {
 public:
  explicit RandomConnector(Rng& rng) : rng_(rng) {}

  Pick ChoosePick(const Graph& graph, int max_radius) override {
    FOLEARN_CHECK_GT(graph.order(), 0);
    return {static_cast<Vertex>(rng_.UniformIndex(graph.order())),
            max_radius};
  }
  std::string name() const override { return "random"; }

 private:
  Rng& rng_;
};

class GreedyBallConnector : public ConnectorStrategy {
 public:
  Pick ChoosePick(const Graph& graph, int max_radius) override {
    FOLEARN_CHECK_GT(graph.order(), 0);
    Vertex best = 0;
    size_t best_size = 0;
    for (Vertex v = 0; v < graph.order(); ++v) {
      Vertex pick_array[] = {v};
      size_t size = Ball(graph, pick_array, max_radius).size();
      if (size > best_size) {
        best_size = size;
        best = v;
      }
    }
    return {best, max_radius};
  }
  std::string name() const override { return "greedy-ball"; }
};

}  // namespace

std::unique_ptr<SplitterStrategy> MakeCenterSplitter() {
  return std::make_unique<CenterSplitter>();
}
std::unique_ptr<SplitterStrategy> MakeTreeSplitter() {
  return std::make_unique<TreeSplitter>();
}
std::unique_ptr<SplitterStrategy> MakeGreedyDegreeSplitter() {
  return std::make_unique<GreedyDegreeSplitter>();
}
std::unique_ptr<SplitterStrategy> MakeMinimaxSplitter(int64_t budget) {
  return std::make_unique<MinimaxSplitter>(budget);
}
std::unique_ptr<ConnectorStrategy> MakeRandomConnector(Rng& rng) {
  return std::make_unique<RandomConnector>(rng);
}
std::unique_ptr<ConnectorStrategy> MakeGreedyBallConnector() {
  return std::make_unique<GreedyBallConnector>();
}

SplitterGameResult PlaySplitterGame(const Graph& graph, int radius,
                                    int max_rounds,
                                    SplitterStrategy& splitter,
                                    ConnectorStrategy& connector) {
  FOLEARN_CHECK_GE(radius, 0);
  FOLEARN_CHECK_GE(max_rounds, 0);
  SplitterGameResult result;
  Graph current = graph;
  std::vector<Vertex> to_original(graph.order());
  for (Vertex v = 0; v < graph.order(); ++v) to_original[v] = v;

  while (result.rounds_used < max_rounds) {
    if (current.order() == 0) {
      result.splitter_won = true;
      return result;
    }
    ConnectorStrategy::Pick pick = connector.ChoosePick(current, radius);
    FOLEARN_CHECK(current.IsValidVertex(pick.vertex));
    FOLEARN_CHECK(pick.radius >= 0 && pick.radius <= radius)
        << "connector radius out of range";
    Vertex removal = splitter.ChooseRemoval(current, pick.vertex, pick.radius);
    Vertex pick_array[] = {pick.vertex};
    std::vector<Vertex> ball = Ball(current, pick_array, pick.radius);
    FOLEARN_CHECK(std::binary_search(ball.begin(), ball.end(), removal))
        << "splitter strategy '" << splitter.name()
        << "' chose a vertex outside the ball";
    result.connector_picks.push_back(to_original[pick.vertex]);
    result.splitter_moves.push_back(to_original[removal]);
    ++result.rounds_used;

    std::vector<Vertex> rest;
    rest.reserve(ball.size() - 1);
    for (Vertex u : ball) {
      if (u != removal) rest.push_back(u);
    }
    InducedSubgraph next = BuildInducedSubgraph(current, rest);
    std::vector<Vertex> next_to_original(next.graph.order());
    for (Vertex v = 0; v < next.graph.order(); ++v) {
      next_to_original[v] = to_original[next.to_original[v]];
    }
    current = std::move(next.graph);
    to_original = std::move(next_to_original);
  }
  result.splitter_won = current.order() == 0;
  return result;
}

int MeasureSplitterRounds(const Graph& graph, int radius, int max_rounds,
                          SplitterStrategy& splitter,
                          const std::vector<ConnectorStrategy*>& connectors) {
  int worst = 0;
  for (ConnectorStrategy* connector : connectors) {
    SplitterGameResult result =
        PlaySplitterGame(graph, radius, max_rounds, splitter, *connector);
    int rounds =
        result.splitter_won ? result.rounds_used : max_rounds + 1;
    worst = std::max(worst, rounds);
  }
  return worst;
}

int DefaultSplitterRounds(int radius) { return radius + 2; }

}  // namespace folearn
