#include "nd/covering.h"

#include <algorithm>

#include "graph/algorithms.h"

namespace folearn {

namespace {

// Pairwise distances among `vertices` (kUnreachable when disconnected).
std::vector<std::vector<int>> PairwiseDistances(
    const Graph& graph, const std::vector<Vertex>& vertices) {
  std::vector<std::vector<int>> result(vertices.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    Vertex source[] = {vertices[i]};
    std::vector<int> dist = BfsDistances(graph, source);
    result[i].resize(vertices.size());
    for (size_t j = 0; j < vertices.size(); ++j) {
      result[i][j] = dist[vertices[j]];
    }
  }
  return result;
}

// Balls N_R(u), N_R(v) are disjoint iff dist(u, v) > 2R.
bool BallsDisjoint(int distance, int64_t radius) {
  return distance == kUnreachable || distance > 2 * radius;
}

}  // namespace

CoveringResult GreedyBallCovering(const Graph& graph,
                                  std::span<const Vertex> centers, int r) {
  FOLEARN_CHECK_GE(r, 1);
  FOLEARN_CHECK(!centers.empty());
  std::vector<Vertex> z(centers.begin(), centers.end());
  std::sort(z.begin(), z.end());
  z.erase(std::unique(z.begin(), z.end()), z.end());

  std::vector<std::vector<int>> dist = PairwiseDistances(graph, z);
  // active[i] marks membership of z[i] in the current Z_i.
  std::vector<bool> active(z.size(), true);
  int64_t radius = r;
  int iterations = 0;
  while (true) {
    // Does some pair of active radius-balls intersect?
    bool overlap = false;
    for (size_t i = 0; i < z.size() && !overlap; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < z.size(); ++j) {
        if (!active[j]) continue;
        if (!BallsDisjoint(dist[i][j], radius)) {
          overlap = true;
          break;
        }
      }
    }
    if (!overlap) break;
    // Inclusion-maximal subset with pairwise disjoint radius-balls: greedily
    // keep centres that are disjoint from all already-kept ones.
    std::vector<bool> kept(z.size(), false);
    for (size_t i = 0; i < z.size(); ++i) {
      if (!active[i]) continue;
      bool ok = true;
      for (size_t j = 0; j < i; ++j) {
        if (kept[j] && !BallsDisjoint(dist[i][j], radius)) {
          ok = false;
          break;
        }
      }
      kept[i] = ok;
    }
    active = kept;
    radius *= 3;
    ++iterations;
    FOLEARN_CHECK_LE(iterations, static_cast<int>(z.size()))
        << "covering exceeded the |X| − 1 iteration bound";
    FOLEARN_CHECK_LE(radius, int64_t{1} << 30) << "covering radius overflow";
  }

  CoveringResult result;
  for (size_t i = 0; i < z.size(); ++i) {
    if (active[i]) result.centers.push_back(z[i]);
  }
  result.radius = static_cast<int>(radius);
  result.iterations = iterations;
  return result;
}

bool VerifyCovering(const Graph& graph, std::span<const Vertex> original,
                    const CoveringResult& covering, int r) {
  // (i) pairwise disjoint R-balls.
  std::vector<std::vector<int>> dist =
      PairwiseDistances(graph, covering.centers);
  for (size_t i = 0; i < covering.centers.size(); ++i) {
    for (size_t j = i + 1; j < covering.centers.size(); ++j) {
      if (!BallsDisjoint(dist[i][j], covering.radius)) return false;
    }
  }
  // (ii) N_r(X) ⊆ N_R(Z).
  std::vector<Vertex> inner = Ball(graph, original, r);
  std::vector<Vertex> outer =
      Ball(graph, covering.centers, covering.radius);
  return std::includes(outer.begin(), outer.end(), inner.begin(),
                       inner.end());
}

}  // namespace folearn
