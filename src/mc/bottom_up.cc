#include "mc/bottom_up.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/hash.h"

namespace folearn {

namespace {

void SortRows(Relation& relation) {
  std::sort(relation.rows.begin(), relation.rows.end());
  relation.rows.erase(
      std::unique(relation.rows.begin(), relation.rows.end()),
      relation.rows.end());
}

Relation BooleanRelation(bool value) {
  Relation result;
  if (value) result.rows.push_back({});
  return result;
}

// Positions of `subset` variables inside `superset` (both sorted).
std::vector<int> Positions(const std::vector<std::string>& subset,
                           const std::vector<std::string>& superset) {
  std::vector<int> positions;
  positions.reserve(subset.size());
  for (const std::string& var : subset) {
    auto it = std::lower_bound(superset.begin(), superset.end(), var);
    FOLEARN_CHECK(it != superset.end() && *it == var);
    positions.push_back(static_cast<int>(it - superset.begin()));
  }
  return positions;
}

// Expands `relation` to the variable set `target` ⊇ relation.vars by taking
// the product with the full domain on the missing variables.
Relation ExpandTo(const Relation& relation,
                  const std::vector<std::string>& target, int domain,
                  ResourceGovernor* governor = nullptr) {
  if (relation.vars == target) return relation;
  Relation result;
  result.vars = target;
  std::vector<int> source_positions = Positions(relation.vars, target);
  std::vector<bool> fixed(target.size(), false);
  for (int p : source_positions) fixed[p] = true;
  std::vector<int> free_positions;
  for (size_t i = 0; i < target.size(); ++i) {
    if (!fixed[i]) free_positions.push_back(static_cast<int>(i));
  }
  // Iterate rows × domain^(missing).
  std::vector<Vertex> row(target.size());
  for (const std::vector<Vertex>& source_row : relation.rows) {
    for (size_t i = 0; i < source_positions.size(); ++i) {
      row[source_positions[i]] = source_row[i];
    }
    // Odometer over the free positions.
    std::vector<Vertex> counters(free_positions.size(), 0);
    bool tripped = false;
    while (true) {
      if (!GovernorCheckpoint(governor)) {
        tripped = true;
        break;
      }
      for (size_t i = 0; i < free_positions.size(); ++i) {
        row[free_positions[i]] = counters[i];
      }
      result.rows.push_back(row);
      int pos = static_cast<int>(counters.size()) - 1;
      while (pos >= 0 && counters[pos] == domain - 1) counters[pos--] = 0;
      if (pos < 0) break;
      ++counters[pos];
    }
    if (tripped) break;
    if (free_positions.empty()) {
      // Single row already pushed by the loop body above.
    }
  }
  SortRows(result);
  return result;
}

class BottomUpEvaluator {
 public:
  BottomUpEvaluator(const Graph& graph, const EvalOptions& options,
                    EvalStats* stats)
      : graph_(graph), governor_(options.governor), stats_(stats) {}

  const Relation& Eval(const Formula* f) {
    auto it = memo_.find(f);
    if (it != memo_.end()) return it->second;
    Relation computed = Compute(f);
    return memo_.emplace(f, std::move(computed)).first->second;
  }

 private:
  Relation Compute(const Formula* f) {
    switch (f->kind()) {
      case FormulaKind::kTrue:
        return BooleanRelation(true);
      case FormulaKind::kFalse:
        return BooleanRelation(false);
      case FormulaKind::kEdge:
        return EdgeRelation(f->var1(), f->var2());
      case FormulaKind::kEquals:
        return EqualsRelation(f->var1(), f->var2());
      case FormulaKind::kColor:
        return ColorRelation(f->color_name(), f->var1());
      case FormulaKind::kNot:
        return Complement(Eval(f->child(0).get()));
      case FormulaKind::kAnd: {
        Relation result = Eval(f->child(0).get());
        for (size_t i = 1; i < f->children().size(); ++i) {
          result = Join(result, Eval(f->child(i).get()));
        }
        return result;
      }
      case FormulaKind::kOr: {
        // Union over the combined variable set.
        std::vector<std::string> all_vars = f->free_variables();
        Relation result;
        result.vars = all_vars;
        for (const FormulaRef& child : f->children()) {
          Relation expanded =
              ExpandTo(Eval(child.get()), all_vars, graph_.order(),
                       governor_);
          result.rows.insert(result.rows.end(), expanded.rows.begin(),
                             expanded.rows.end());
        }
        SortRows(result);
        return result;
      }
      case FormulaKind::kExists:
        return Project(Eval(f->child(0).get()), f->quantified_var());
      case FormulaKind::kForall:
        return ForallProject(Eval(f->child(0).get()), f->quantified_var());
      case FormulaKind::kCountExists:
        return CountProject(Eval(f->child(0).get()), f->quantified_var(),
                            f->threshold());
      case FormulaKind::kSetMember:
      case FormulaKind::kExistsSet:
      case FormulaKind::kForallSet:
        FOLEARN_CHECK(false)
            << "bottom-up evaluation does not support MSO set quantifiers";
        return BooleanRelation(false);
    }
    FOLEARN_CHECK(false) << "unreachable";
    return BooleanRelation(false);
  }

  Relation EdgeRelation(const std::string& x, const std::string& y) {
    CountAtoms(2 * graph_.EdgeCount());
    Relation result;
    result.vars = {x, y};
    std::sort(result.vars.begin(), result.vars.end());
    const bool x_first = result.vars[0] == x;
    for (Vertex u = 0; u < graph_.order(); ++u) {
      if (!GovernorCheckpoint(governor_)) break;
      for (Vertex v : graph_.Neighbors(u)) {
        // Row in sorted-variable order.
        if (x_first) {
          result.rows.push_back({u, v});
        } else {
          result.rows.push_back({v, u});
        }
      }
    }
    SortRows(result);
    return result;
  }

  Relation EqualsRelation(const std::string& x, const std::string& y) {
    CountAtoms(graph_.order());
    Relation result;
    result.vars = {x, y};
    std::sort(result.vars.begin(), result.vars.end());
    for (Vertex v = 0; v < graph_.order(); ++v) {
      result.rows.push_back({v, v});
    }
    return result;
  }

  Relation ColorRelation(const std::string& color, const std::string& x) {
    CountAtoms(graph_.order());
    std::optional<ColorId> id = graph_.FindColor(color);
    FOLEARN_CHECK(id.has_value())
        << "colour '" << color << "' not in the graph's vocabulary";
    Relation result;
    result.vars = {x};
    for (Vertex v : graph_.VerticesWithColor(*id)) {
      result.rows.push_back({v});
    }
    return result;
  }

  // ¬R = full product over R.vars minus R.
  Relation Complement(const Relation& relation) {
    Relation result;
    result.vars = relation.vars;
    std::vector<Vertex> row(relation.vars.size(), 0);
    size_t next_excluded = 0;
    // Enumerate the full product in lexicographic order and emit rows not
    // present in `relation` (whose rows are sorted).
    while (true) {
      if (!GovernorCheckpoint(governor_)) break;
      while (next_excluded < relation.rows.size() &&
             relation.rows[next_excluded] < row) {
        ++next_excluded;
      }
      if (next_excluded >= relation.rows.size() ||
          relation.rows[next_excluded] != row) {
        result.rows.push_back(row);
      }
      if (row.empty()) break;
      int pos = static_cast<int>(row.size()) - 1;
      while (pos >= 0 && row[pos] == graph_.order() - 1) row[pos--] = 0;
      if (pos < 0) break;
      ++row[pos];
    }
    return result;
  }

  // Natural join on shared variables.
  Relation Join(const Relation& left, const Relation& right) {
    // Shared and result variable sets.
    std::vector<std::string> shared;
    std::set_intersection(left.vars.begin(), left.vars.end(),
                          right.vars.begin(), right.vars.end(),
                          std::back_inserter(shared));
    Relation result;
    std::set_union(left.vars.begin(), left.vars.end(), right.vars.begin(),
                   right.vars.end(), std::back_inserter(result.vars));
    std::vector<int> left_shared = Positions(shared, left.vars);
    std::vector<int> right_shared = Positions(shared, right.vars);
    std::vector<int> left_in_result = Positions(left.vars, result.vars);
    std::vector<int> right_in_result = Positions(right.vars, result.vars);

    // Hash the smaller side by its shared-variable key.
    const bool left_small = left.rows.size() <= right.rows.size();
    const Relation& build = left_small ? left : right;
    const Relation& probe = left_small ? right : left;
    const std::vector<int>& build_key = left_small ? left_shared
                                                   : right_shared;
    const std::vector<int>& probe_key = left_small ? right_shared
                                                   : left_shared;
    const std::vector<int>& build_out = left_small ? left_in_result
                                                   : right_in_result;
    const std::vector<int>& probe_out = left_small ? right_in_result
                                                   : left_in_result;

    std::unordered_map<std::vector<Vertex>, std::vector<int>,
                       VectorHash<Vertex>>
        index;
    for (size_t i = 0; i < build.rows.size(); ++i) {
      std::vector<Vertex> key;
      key.reserve(build_key.size());
      for (int p : build_key) key.push_back(build.rows[i][p]);
      index[std::move(key)].push_back(static_cast<int>(i));
    }
    std::vector<Vertex> out(result.vars.size());
    for (const std::vector<Vertex>& probe_row : probe.rows) {
      if (!GovernorCheckpoint(governor_)) break;
      std::vector<Vertex> key;
      key.reserve(probe_key.size());
      for (int p : probe_key) key.push_back(probe_row[p]);
      auto it = index.find(key);
      if (it == index.end()) continue;
      for (int build_index : it->second) {
        const std::vector<Vertex>& build_row = build.rows[build_index];
        for (size_t i = 0; i < build_row.size(); ++i) {
          out[build_out[i]] = build_row[i];
        }
        for (size_t i = 0; i < probe_row.size(); ++i) {
          out[probe_out[i]] = probe_row[i];
        }
        result.rows.push_back(out);
      }
    }
    SortRows(result);
    return result;
  }

  // ∃v: drop column v (deduplicating). If v is absent, ψ is independent of
  // v and quantification over a non-empty domain is the identity.
  Relation Project(const Relation& relation, const std::string& var) {
    CheckNonEmptyDomain();
    auto it = std::lower_bound(relation.vars.begin(), relation.vars.end(),
                               var);
    if (it == relation.vars.end() || *it != var) return relation;
    int drop = static_cast<int>(it - relation.vars.begin());
    Relation result;
    result.vars = relation.vars;
    result.vars.erase(result.vars.begin() + drop);
    result.rows.reserve(relation.rows.size());
    for (const std::vector<Vertex>& row : relation.rows) {
      if (!GovernorCheckpoint(governor_)) break;
      std::vector<Vertex> projected = row;
      projected.erase(projected.begin() + drop);
      result.rows.push_back(std::move(projected));
    }
    SortRows(result);
    return result;
  }

  // ∀v: keep the groups (over the remaining variables) that have ALL n
  // extensions in the relation.
  Relation ForallProject(const Relation& relation, const std::string& var) {
    CheckNonEmptyDomain();
    auto it = std::lower_bound(relation.vars.begin(), relation.vars.end(),
                               var);
    if (it == relation.vars.end() || *it != var) return relation;
    int drop = static_cast<int>(it - relation.vars.begin());
    Relation result;
    result.vars = relation.vars;
    result.vars.erase(result.vars.begin() + drop);
    std::map<std::vector<Vertex>, int64_t> group_counts;
    for (const std::vector<Vertex>& row : relation.rows) {
      if (!GovernorCheckpoint(governor_)) break;
      std::vector<Vertex> group = row;
      group.erase(group.begin() + drop);
      ++group_counts[std::move(group)];
    }
    for (const auto& [group, count] : group_counts) {
      if (count == graph_.order()) result.rows.push_back(group);
    }
    return result;  // map iteration is sorted
  }

  // ∃^{≥t} v: keep the groups with at least t extensions.
  Relation CountProject(const Relation& relation, const std::string& var,
                        int threshold) {
    CheckNonEmptyDomain();
    auto it = std::lower_bound(relation.vars.begin(), relation.vars.end(),
                               var);
    if (it == relation.vars.end() || *it != var) {
      // ψ independent of v: ∃^{≥t} v ψ ≡ ψ ∧ (n ≥ t).
      if (graph_.order() >= threshold) return relation;
      Relation result;
      result.vars = relation.vars;
      return result;
    }
    int drop = static_cast<int>(it - relation.vars.begin());
    Relation result;
    result.vars = relation.vars;
    result.vars.erase(result.vars.begin() + drop);
    std::map<std::vector<Vertex>, int64_t> group_counts;
    for (const std::vector<Vertex>& row : relation.rows) {
      if (!GovernorCheckpoint(governor_)) break;
      std::vector<Vertex> group = row;
      group.erase(group.begin() + drop);
      ++group_counts[std::move(group)];
    }
    for (const auto& [group, count] : group_counts) {
      if (count >= threshold) result.rows.push_back(group);
    }
    return result;
  }

  void CheckNonEmptyDomain() {
    FOLEARN_CHECK_GT(graph_.order(), 0)
        << "quantifier evaluated on the empty graph";
  }

  void CountAtoms(int64_t scanned) {
    if (stats_ != nullptr) stats_->atom_evaluations += scanned;
  }

  const Graph& graph_;
  ResourceGovernor* governor_;
  EvalStats* stats_;
  std::unordered_map<const Formula*, Relation> memo_;
};

}  // namespace

bool Relation::Contains(const Assignment& assignment) const {
  std::vector<Vertex> row;
  row.reserve(vars.size());
  for (const std::string& var : vars) {
    std::optional<Vertex> value = assignment.Lookup(var);
    FOLEARN_CHECK(value.has_value()) << "unbound variable '" << var << "'";
    row.push_back(*value);
  }
  return std::binary_search(rows.begin(), rows.end(), row);
}

Relation EvaluateBottomUp(const Graph& graph, const FormulaRef& formula,
                          EvalStats* stats) {
  return EvaluateBottomUp(graph, formula, EvalOptions{}, stats);
}

Relation EvaluateBottomUp(const Graph& graph, const FormulaRef& formula,
                          const EvalOptions& options, EvalStats* stats) {
  FOLEARN_CHECK(formula != nullptr);
  BottomUpEvaluator evaluator(graph, options, stats);
  Relation relation = evaluator.Eval(formula.get());
  if (stats != nullptr) stats->status = GovernorStatus(options.governor);
  return relation;
}

std::vector<std::vector<Vertex>> AnswerQuery(
    const Graph& graph, const FormulaRef& formula,
    const std::vector<std::string>& vars, const EvalOptions& options) {
  for (const std::string& var : formula->free_variables()) {
    FOLEARN_CHECK(std::find(vars.begin(), vars.end(), var) != vars.end())
        << "output variables must cover free variable '" << var << "'";
  }
  Relation relation = EvaluateBottomUp(graph, formula, options);
  // Expand to the full (sorted) output variable set, then permute columns
  // into the requested order.
  std::vector<std::string> sorted_vars = vars;
  std::sort(sorted_vars.begin(), sorted_vars.end());
  FOLEARN_CHECK(std::adjacent_find(sorted_vars.begin(), sorted_vars.end()) ==
                sorted_vars.end())
      << "duplicate output variable";
  Relation expanded =
      ExpandTo(relation, sorted_vars, graph.order(), options.governor);
  // Column i of the output = position of vars[i] in sorted_vars.
  std::vector<int> order;
  order.reserve(vars.size());
  for (const std::string& var : vars) {
    order.push_back(static_cast<int>(
        std::lower_bound(sorted_vars.begin(), sorted_vars.end(), var) -
        sorted_vars.begin()));
  }
  std::vector<std::vector<Vertex>> result;
  result.reserve(expanded.rows.size());
  for (const std::vector<Vertex>& row : expanded.rows) {
    std::vector<Vertex> out(vars.size());
    for (size_t i = 0; i < vars.size(); ++i) out[i] = row[order[i]];
    result.push_back(std::move(out));
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace folearn
