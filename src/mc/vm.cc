#include "mc/vm.h"

#include <algorithm>
#include <bit>
#include <optional>

#include "util/check.h"
#include "util/governor.h"

namespace folearn {

std::shared_ptr<const VmGraphIndex> VmGraphIndex::Build(const Graph& graph) {
  const int32_t order = graph.order();
  if (order > kMaxOrder) return nullptr;
  auto index = std::make_shared<VmGraphIndex>();
  index->order = order;
  index->stride = (order + 63) / 64;
  index->bits.assign(static_cast<size_t>(order) * index->stride, 0);
  for (Vertex u = 0; u < order; ++u) {
    uint64_t* row = index->bits.data() +
                    static_cast<size_t>(u) * index->stride;
    for (Vertex v : graph.Neighbors(u)) {
      row[v >> 6] |= uint64_t{1} << (v & 63);
    }
  }
  const int num_colors = graph.vocabulary().size();
  index->color_bits.assign(
      static_cast<size_t>(num_colors) * index->stride, 0);
  for (ColorId c = 0; c < num_colors; ++c) {
    // The graph stores colour classes as word bitsets in exactly this
    // layout, so a row is a straight copy instead of a bit-by-bit repack.
    const std::span<const uint64_t> words = graph.ColorWords(c);
    FOLEARN_CHECK_EQ(words.size(), static_cast<size_t>(index->stride));
    std::copy(words.begin(), words.end(),
              index->color_bits.data() +
                  static_cast<size_t>(c) * index->stride);
  }
  return index;
}

VmEvaluator::VmEvaluator(const CompiledFormula& plan,
                         const LoweredPlan& lowered, const Graph& graph,
                         const EvalOptions& options,
                         std::shared_ptr<const VmGraphIndex> edge_index)
    : plan_(plan),
      lowered_(lowered),
      graph_(graph),
      options_(options),
      edge_index_(std::move(edge_index)) {
  colors_.reserve(plan.color_names().size());
  color_rows_.reserve(plan.color_names().size());
  for (const std::string& name : plan.color_names()) {
    std::optional<ColorId> color = graph.FindColor(name);
    colors_.push_back(color.has_value() ? *color : ColorId{-1});
    color_rows_.push_back(
        color.has_value() ? graph.ColorWords(*color).data() : nullptr);
  }
  bool runnable = lowered.supported;
  if (runnable) {
    // The fast program scans guard colour classes directly; a graph that
    // cannot resolve one of those names must take the tree engine, whose
    // full-scan path reproduces the interpreter's lazy missing-colour
    // semantics at the guard's original position.
    for (int32_t index : lowered.guard_colors) {
      if (colors_[index] < 0) {
        runnable = false;
        break;
      }
    }
  }
  if (!runnable) {
    fallback_.emplace(plan, graph, options);
    return;
  }
  if (edge_index_ == nullptr &&
      graph.order() <= VmGraphIndex::kAutoBuildOrder) {
    edge_index_ = VmGraphIndex::Build(graph);
    auto_built_index_ = true;
  }
  if (edge_index_ != nullptr) scratch_body_.assign(edge_index_->stride, 0);
  env_.assign(plan.env_size(), 0);
  memo_.assign(plan.num_memo_slots(), -1);
  frames_.resize(static_cast<size_t>(
      std::max(lowered.fast.num_frames, lowered.counting.num_frames)));
  color_members_.resize(colors_.size());
  color_members_ready_.assign(colors_.size(), false);
}

void VmEvaluator::ResetMemo() {
  if (fallback_.has_value()) {
    fallback_->ResetMemo();
    return;
  }
  memo_.assign(memo_.size(), -1);
  // An auto-built adjacency index is stale after a graph mutation (the
  // only reason to call ResetMemo); a caller-shared index is the caller's
  // to rebuild.
  if (auto_built_index_) edge_index_ = VmGraphIndex::Build(graph_);
  for (std::vector<Vertex>& members : color_members_) members.clear();
  color_members_ready_.assign(color_members_ready_.size(), false);
  cache_evictions_ += static_cast<int64_t>(color_members_transient_.size());
  color_members_transient_.clear();
  color_member_bytes_ = 0;
}

const std::vector<Vertex>& VmEvaluator::ColorMembers(int32_t index) {
  std::vector<Vertex>& members = color_members_[index];
  if (!color_members_ready_[index]) {
    color_members_ready_[index] = true;
    const ColorId color = colors_[index];
    for (Vertex v = 0; v < graph_.order(); ++v) {
      if (graph_.HasColor(v, color)) members.push_back(v);
    }
    color_member_bytes_ +=
        static_cast<int64_t>(members.capacity() * sizeof(Vertex));
    // Over budget: keep the list for the remainder of this Eval call (an
    // enclosing scan frame may hold a live span into it) and mark it
    // transient; the next call's prologue drops it.
    if (options_.cache_bytes >= 0 &&
        color_member_bytes_ > options_.cache_bytes) {
      color_members_transient_.push_back(index);
    }
  }
  return members;
}

void VmEvaluator::DropTransientColorMembers() {
  for (int32_t index : color_members_transient_) {
    std::vector<Vertex>& members = color_members_[index];
    color_member_bytes_ -=
        static_cast<int64_t>(members.capacity() * sizeof(Vertex));
    members.clear();
    members.shrink_to_fit();
    color_members_ready_[index] = false;
  }
  cache_evictions_ += static_cast<int64_t>(color_members_transient_.size());
  color_members_transient_.clear();
}

bool VmEvaluator::Eval(std::span<const Vertex> tuple, EvalStats* stats) {
  if (fallback_.has_value()) return fallback_->Eval(tuple, stats);
  FOLEARN_CHECK_EQ(tuple.size(), plan_.free_vars().size());
  DropTransientColorMembers();
  for (size_t i = 0; i < tuple.size(); ++i) {
    env_[i] = tuple[i];
  }
  for (int32_t slot : plan_.used_free_slots()) {
    FOLEARN_CHECK(graph_.IsValidVertex(env_[slot]))
        << "variable '" << plan_.free_vars()[slot]
        << "' bound to invalid vertex " << env_[slot];
  }
  const bool counting = stats != nullptr || options_.governor != nullptr;
  const bool value = counting ? Run<true>(lowered_.counting, stats)
                              : Run<false>(lowered_.fast, nullptr);
  if (stats != nullptr) {
    stats->status = GovernorStatus(options_.governor);
    const int64_t total =
        cache_evictions_ +
        static_cast<int64_t>(color_members_transient_.size());
    stats->cache_evictions += total - reported_evictions_;
    reported_evictions_ = total;
  }
  return value;
}

// Unchecked bit-test atom primitives: every vertex reaching these was
// validated once (free variables in Eval's prologue, loop variables by
// construction of the scan domains), so Graph::HasEdge/HasColor's
// per-call CHECKs and HasEdge's binary search are pure overhead here.
bool VmEvaluator::EdgeHolds(Vertex u, Vertex v) {
  if (edge_index_ != nullptr) return edge_index_->Test(u, v);
  return graph_.HasEdge(u, v);  // order above kMaxOrder: no dense matrix
}

bool VmEvaluator::ColorHolds(int32_t index, Vertex v) {
  const uint64_t* row = color_rows_[index];
  if (row == nullptr) {
    FOLEARN_CHECK(options_.missing_color_is_false)
        << "colour '" << plan_.color_names()[index]
        << "' not in the graph's vocabulary";
    return false;
  }
  return (row[static_cast<uint32_t>(v) >> 6] >> (v & 63)) & 1;
}

bool VmEvaluator::AtomHolds(const VmAtom& atom) {
  bool value;
  switch (atom.kind) {
    case 0:
      value = EdgeHolds(env_[atom.a], env_[atom.b]);
      break;
    case 1:
      value = env_[atom.a] == env_[atom.b];
      break;
    default:
      value = ColorHolds(atom.b, env_[atom.a]);
      break;
  }
  return value == (atom.expect != 0);
}

bool VmEvaluator::RunAtoms(const VmAtom* first, int32_t count, bool disj) {
  const VmAtom* const end = first + count;
  for (const VmAtom* atom = first; atom != end; ++atom) {
    if (AtomHolds(*atom) == disj) return disj;
  }
  return !disj;
}

// stride == 1 (order ≤ 64): the whole body set fits one register, so the
// scratch row and its fills are pure overhead — classify, combine, and
// test entirely in registers. Semantically identical to BodySet.
uint64_t VmEvaluator::BodyWord(int32_t scan_slot, const VmAtom* first,
                               int32_t count, bool disj) {
  const VmGraphIndex& index = *edge_index_;
  const uint64_t tail = index.TailMask();
  uint64_t body = disj ? 0 : tail;
  for (const VmAtom* atom = first; atom != first + count; ++atom) {
    uint64_t lit;
    const bool a_scan = atom->a == scan_slot;
    const bool b_scan = atom->kind != 2 && atom->b == scan_slot;
    if (!a_scan && !b_scan) {
      bool value;
      switch (atom->kind) {
        case 0: value = EdgeHolds(env_[atom->a], env_[atom->b]); break;
        case 1: value = env_[atom->a] == env_[atom->b]; break;
        default: value = ColorHolds(atom->b, env_[atom->a]); break;
      }
      lit = value ? tail : 0;
    } else {
      switch (atom->kind) {
        case 0:  // E(y, y) never holds (simple graph)
          lit = a_scan && b_scan
                    ? 0
                    : index.AdjacencyRow(env_[a_scan ? atom->b
                                                     : atom->a])[0];
          break;
        case 1:
          lit = a_scan && b_scan
                    ? tail
                    : uint64_t{1} << env_[a_scan ? atom->b : atom->a];
          break;
        default: {
          const ColorId color = colors_[atom->b];
          if (color < 0) {
            FOLEARN_CHECK(options_.missing_color_is_false)
                << "colour '" << plan_.color_names()[atom->b]
                << "' not in the graph's vocabulary";
            lit = 0;
          } else {
            lit = index.ColorRow(color)[0];
          }
          break;
        }
      }
    }
    if (atom->expect == 0) lit = ~lit & tail;
    if (disj) {
      body |= lit;
    } else {
      body &= lit;
    }
  }
  return body;
}

const uint64_t* VmEvaluator::BodySet(int32_t scan_slot, const VmAtom* first,
                                     int32_t count, bool disj) {
  const VmGraphIndex& index = *edge_index_;
  const int32_t stride = index.stride;
  const uint64_t tail = index.TailMask();
  uint64_t* body = scratch_body_.data();
  if (disj) {
    std::fill(body, body + stride, 0);
  } else {
    std::fill(body, body + stride, ~uint64_t{0});
    body[stride - 1] = tail;
  }
  for (const VmAtom* atom = first; atom != first + count; ++atom) {
    const bool neg = atom->expect == 0;
    // Classify the literal's value set relative to the scan variable.
    enum class Shape { kRow, kEmpty, kFull, kSingle };
    Shape shape = Shape::kEmpty;
    const uint64_t* row = nullptr;
    Vertex single = -1;
    const bool a_scan = atom->a == scan_slot;
    const bool b_scan = atom->kind != 2 && atom->b == scan_slot;
    if (!a_scan && !b_scan) {
      // Scan-free literal: one scalar evaluation covers every candidate.
      bool value;
      switch (atom->kind) {
        case 0: value = EdgeHolds(env_[atom->a], env_[atom->b]); break;
        case 1: value = env_[atom->a] == env_[atom->b]; break;
        default: value = ColorHolds(atom->b, env_[atom->a]); break;
      }
      shape = value ? Shape::kFull : Shape::kEmpty;
    } else {
      switch (atom->kind) {
        case 0:  // edge: the pivot's adjacency row (E(y,y) never holds)
          if (a_scan && b_scan) {
            shape = Shape::kEmpty;
          } else {
            shape = Shape::kRow;
            row = index.AdjacencyRow(env_[a_scan ? atom->b : atom->a]);
          }
          break;
        case 1:  // equality: a singleton (or everything for y = y)
          if (a_scan && b_scan) {
            shape = Shape::kFull;
          } else {
            shape = Shape::kSingle;
            single = env_[a_scan ? atom->b : atom->a];
          }
          break;
        default: {  // colour on the scan variable
          const ColorId color = colors_[atom->b];
          if (color < 0) {
            FOLEARN_CHECK(options_.missing_color_is_false)
                << "colour '" << plan_.color_names()[atom->b]
                << "' not in the graph's vocabulary";
            shape = Shape::kEmpty;
          } else {
            shape = Shape::kRow;
            row = index.ColorRow(color);
          }
          break;
        }
      }
    }
    // Fold the negation into the constant shapes; kRow/kSingle negate in
    // the combine below.
    if (neg && shape == Shape::kFull) shape = Shape::kEmpty;
    else if (neg && shape == Shape::kEmpty) shape = Shape::kFull;

    if (!disj) {  // conjunctive: intersect
      switch (shape) {
        case Shape::kFull:
          break;
        case Shape::kEmpty:
          std::fill(body, body + stride, 0);
          return body;
        case Shape::kRow:
          if (neg) {
            for (int32_t i = 0; i < stride; ++i) body[i] &= ~row[i];
          } else {
            for (int32_t i = 0; i < stride; ++i) body[i] &= row[i];
          }
          break;
        case Shape::kSingle: {
          const uint64_t bit = uint64_t{1} << (single & 63);
          if (neg) {
            body[single >> 6] &= ~bit;
          } else {
            const bool kept = (body[single >> 6] & bit) != 0;
            std::fill(body, body + stride, 0);
            if (kept) body[single >> 6] = bit;
          }
          break;
        }
      }
    } else {  // disjunctive: unite
      switch (shape) {
        case Shape::kEmpty:
          break;
        case Shape::kFull:
          std::fill(body, body + stride, ~uint64_t{0});
          body[stride - 1] = tail;
          return body;
        case Shape::kRow:
          if (neg) {
            for (int32_t i = 0; i < stride; ++i) body[i] |= ~row[i];
          } else {
            for (int32_t i = 0; i < stride; ++i) body[i] |= row[i];
          }
          break;
        case Shape::kSingle: {
          const uint64_t bit = uint64_t{1} << (single & 63);
          if (neg) {
            // Everything except `single` (keeping it if already present).
            const bool kept = (body[single >> 6] & bit) != 0;
            std::fill(body, body + stride, ~uint64_t{0});
            if (!kept) body[single >> 6] &= ~bit;
          } else {
            body[single >> 6] |= bit;
          }
          break;
        }
      }
    }
  }
  body[stride - 1] &= tail;  // complements set bits past `order`
  return body;
}

bool VmEvaluator::VectorQuantifier(const uint64_t* domain, int32_t scan_slot,
                                   const VmAtom* first, int32_t count,
                                   bool disj, bool is_exists) {
  const VmGraphIndex& index = *edge_index_;
  const int32_t stride = index.stride;
  const uint64_t tail = index.TailMask();
  if (stride == 1) {
    const uint64_t body = BodyWord(scan_slot, first, count, disj);
    const uint64_t dom = domain != nullptr ? domain[0] : tail;
    return is_exists ? (dom & body) != 0 : (dom & ~body) == 0;
  }
  const uint64_t* body = BodySet(scan_slot, first, count, disj);
  if (is_exists) {
    for (int32_t i = 0; i < stride; ++i) {
      const uint64_t dom =
          domain != nullptr ? domain[i]
                            : (i == stride - 1 ? tail : ~uint64_t{0});
      if ((dom & body[i]) != 0) return true;
    }
    return false;
  }
  for (int32_t i = 0; i < stride; ++i) {
    const uint64_t dom =
        domain != nullptr ? domain[i]
                          : (i == stride - 1 ? tail : ~uint64_t{0});
    if ((dom & ~body[i]) != 0) return false;
  }
  return true;
}

bool VmEvaluator::VectorCountAtLeast(int32_t scan_slot, const VmAtom* first,
                                     int32_t count, bool disj,
                                     int64_t needed) {
  const int32_t stride = edge_index_->stride;
  if (stride == 1) {
    return std::popcount(BodyWord(scan_slot, first, count, disj)) >= needed;
  }
  const uint64_t* body = BodySet(scan_slot, first, count, disj);
  int64_t total = 0;
  for (int32_t i = 0; i < stride; ++i) {
    total += std::popcount(body[i]);
    if (total >= needed) return true;
  }
  return total >= needed;
}

// The dispatch loop. One handler body serves both lanes: kCounting is the
// counting program (interpreter-identical checkpoints and counters, plus
// per-opcode dispatch tallies), !kCounting the fast program. Handlers read
// the instruction through `ip`, then either fall through (++ip) or jump
// (ip = code + target); every path terminates in a kHalt*.
template <bool kCounting>
bool VmEvaluator::Run(const BytecodeProgram& program, EvalStats* stats) {
  const VmInst* const code = program.code.data();
  const VmAtom* const atoms = program.atoms.data();
  const VmInst* ip = code;
  [[maybe_unused]] int64_t counts[kNumVmOps] = {};
  bool result = false;

#define VM_COUNT()                                      \
  do {                                                  \
    if constexpr (kCounting) {                          \
      ++counts[static_cast<int>(ip->op)];               \
    }                                                   \
  } while (0)

#if FOLEARN_VM_COMPUTED_GOTO
  // One jump table per instantiation; order must match the VmOp enum.
  static const void* const kJump[kNumVmOps] = {
      &&op_kHaltTrue,    &&op_kHaltFalse,  &&op_kHaltTripped,
      &&op_kJump,        &&op_kEdge,       &&op_kEquals,
      &&op_kColor,       &&op_kAtomRun,    &&op_kMemoCheck,
      &&op_kMemoWrite,   &&op_kCheckpoint, &&op_kScanBegin,
      &&op_kScanNext,    &&op_kEqBind,     &&op_kNScanBegin,
      &&op_kNScanNext,   &&op_kCScanBegin, &&op_kCScanNext,
      &&op_kCntBegin,    &&op_kCntTop,     &&op_kCntHit,
      &&op_kCntStep,     &&op_kCntExit,    &&op_kScanAtoms,
      &&op_kEqBindAtoms, &&op_kNScanAtoms, &&op_kCScanAtoms,
      &&op_kCntAtoms,
  };
#define VM_DISPATCH()                                   \
  do {                                                  \
    VM_COUNT();                                         \
    goto* kJump[static_cast<int>(ip->op)];              \
  } while (0)
#define VM_CASE(name) op_##name:
  VM_DISPATCH();
#else
#define VM_DISPATCH() goto vm_dispatch
#define VM_CASE(name) case VmOp::name:
vm_dispatch:
  VM_COUNT();
  switch (ip->op) {
    default:
      FOLEARN_CHECK(false) << "invalid opcode";
      return false;
#endif

  VM_CASE(kHaltTrue) {
    result = true;
    goto vm_done;
  }
  VM_CASE(kHaltFalse) {
    result = false;
    goto vm_done;
  }
  VM_CASE(kHaltTripped) {
    // Governor tripped: the verdict is unspecified by contract; return
    // false like the interpreter's unwound recursion.
    result = false;
    goto vm_done;
  }
  VM_CASE(kJump) {
    ip = code + ip->t;
    VM_DISPATCH();
  }
  VM_CASE(kEdge) {
    if constexpr (kCounting) {
      if (stats != nullptr) ++stats->atom_evaluations;
    }
    ip = code + (EdgeHolds(env_[ip->a], env_[ip->b]) ? ip->t : ip->f);
    VM_DISPATCH();
  }
  VM_CASE(kEquals) {
    if constexpr (kCounting) {
      if (stats != nullptr) ++stats->atom_evaluations;
    }
    ip = code + (env_[ip->a] == env_[ip->b] ? ip->t : ip->f);
    VM_DISPATCH();
  }
  VM_CASE(kColor) {
    if constexpr (kCounting) {
      if (stats != nullptr) ++stats->atom_evaluations;
    }
    ip = code + (ColorHolds(ip->b, env_[ip->a]) ? ip->t : ip->f);
    VM_DISPATCH();
  }
  VM_CASE(kAtomRun) {
    const VmAtom* atom = atoms + ip->c;
    const VmAtom* const end = atom + ip->d;
    const bool disj = (ip->flags & kFlagDisjunctive) != 0;
    bool verdict = !disj;
    for (; atom != end; ++atom) {
      if constexpr (kCounting) {
        if (stats != nullptr) ++stats->atom_evaluations;
      }
      if (AtomHolds(*atom) == disj) {
        verdict = disj;
        break;
      }
    }
    ip = code + (verdict ? ip->t : ip->f);
    VM_DISPATCH();
  }
  VM_CASE(kMemoCheck) {
    const int8_t memo = memo_[ip->a];
    if (memo < 0) {
      ++ip;
    } else {
      ip = code + (memo != 0 ? ip->t : ip->f);
    }
    VM_DISPATCH();
  }
  VM_CASE(kMemoWrite) {
    memo_[ip->a] = static_cast<int8_t>(ip->b);
    ip = code + ip->t;
    VM_DISPATCH();
  }
  VM_CASE(kCheckpoint) {
    // Interpreter order: a failed checkpoint unwinds before the branch is
    // counted.
    if (!GovernorCheckpoint(options_.governor)) {
      ip = code + ip->t;
    } else {
      if (stats != nullptr) ++stats->quantifier_branches;
      ++ip;
    }
    VM_DISPATCH();
  }
  VM_CASE(kScanBegin) {
    FOLEARN_CHECK_GT(graph_.order(), 0)
        << "quantifier evaluated on the empty graph";
    env_[ip->a] = 0;
    ++ip;
    VM_DISPATCH();
  }
  VM_CASE(kScanNext) {
    ip = code + (++env_[ip->a] < graph_.order() ? ip->t : ip->f);
    VM_DISPATCH();
  }
  VM_CASE(kEqBind) {
    FOLEARN_CHECK_GT(graph_.order(), 0)
        << "quantifier evaluated on the empty graph";
    env_[ip->a] = env_[ip->b];
    ++ip;
    VM_DISPATCH();
  }
  VM_CASE(kNScanBegin) {
    FOLEARN_CHECK_GT(graph_.order(), 0)
        << "quantifier evaluated on the empty graph";
    const std::span<const Vertex> members = graph_.Neighbors(env_[ip->b]);
    Frame& frame = frames_[ip->c];
    frame.cur = members.data();
    frame.end = frame.cur + members.size();
    if (frame.cur == frame.end) {
      ip = code + ip->f;
    } else {
      env_[ip->a] = *frame.cur;
      ++ip;
    }
    VM_DISPATCH();
  }
  VM_CASE(kNScanNext) {
    Frame& frame = frames_[ip->c];
    if (++frame.cur == frame.end) {
      ip = code + ip->f;
    } else {
      env_[ip->a] = *frame.cur;
      ip = code + ip->t;
    }
    VM_DISPATCH();
  }
  VM_CASE(kCScanBegin) {
    FOLEARN_CHECK_GT(graph_.order(), 0)
        << "quantifier evaluated on the empty graph";
    const std::vector<Vertex>& members = ColorMembers(ip->b);
    Frame& frame = frames_[ip->c];
    frame.cur = members.data();
    frame.end = frame.cur + members.size();
    if (frame.cur == frame.end) {
      ip = code + ip->f;
    } else {
      env_[ip->a] = *frame.cur;
      ++ip;
    }
    VM_DISPATCH();
  }
  VM_CASE(kCScanNext) {
    Frame& frame = frames_[ip->c];
    if (++frame.cur == frame.end) {
      ip = code + ip->f;
    } else {
      env_[ip->a] = *frame.cur;
      ip = code + ip->t;
    }
    VM_DISPATCH();
  }
  VM_CASE(kCntBegin) {
    FOLEARN_CHECK_GT(graph_.order(), 0)
        << "quantifier evaluated on the empty graph";
    frames_[ip->c].needed = ip->b;
    env_[ip->a] = 0;
    ++ip;
    VM_DISPATCH();
  }
  VM_CASE(kCntTop) {
    // Loop guard plus the interpreter's early abort (not enough vertices
    // left to reach the threshold) — pure checks, no observable events.
    const Frame& frame = frames_[ip->c];
    const Vertex v = env_[ip->a];
    if (v >= graph_.order() || frame.needed <= 0 ||
        graph_.order() - v < frame.needed) {
      ip = code + ip->f;
    } else {
      ++ip;
    }
    VM_DISPATCH();
  }
  VM_CASE(kCntHit) {
    --frames_[ip->c].needed;
    ++ip;
    VM_DISPATCH();
  }
  VM_CASE(kCntStep) {
    ++env_[ip->a];
    ip = code + ip->t;
    VM_DISPATCH();
  }
  VM_CASE(kCntExit) {
    ip = code + (frames_[ip->c].needed == 0 ? ip->t : ip->f);
    VM_DISPATCH();
  }
  VM_CASE(kScanAtoms) {
    FOLEARN_CHECK_GT(graph_.order(), 0)
        << "quantifier evaluated on the empty graph";
    const bool is_exists = (ip->flags & kFlagExists) != 0;
    const bool disj = (ip->flags & kFlagDisjunctive) != 0;
    const VmAtom* const first = atoms + ip->c;
    bool verdict;
    if (!kCounting && edge_index_ != nullptr) {
      // Word-parallel: the body set over all vertices in O(order/64).
      verdict = VectorQuantifier(nullptr, ip->a, first, ip->d, disj,
                                 is_exists);
    } else {
      verdict = !is_exists;
      for (Vertex v = 0; v < graph_.order(); ++v) {
        env_[ip->a] = v;
        if (RunAtoms(first, ip->d, disj) == is_exists) {
          verdict = is_exists;
          break;
        }
      }
    }
    ip = code + (verdict ? ip->t : ip->f);
    VM_DISPATCH();
  }
  VM_CASE(kEqBindAtoms) {
    FOLEARN_CHECK_GT(graph_.order(), 0)
        << "quantifier evaluated on the empty graph";
    env_[ip->a] = env_[ip->b];
    // Single-vertex domain: the quantifier's verdict is the body's.
    ip = code +
         (RunAtoms(atoms + ip->c, ip->d, (ip->flags & kFlagDisjunctive) != 0)
              ? ip->t
              : ip->f);
    VM_DISPATCH();
  }
  VM_CASE(kNScanAtoms) {
    FOLEARN_CHECK_GT(graph_.order(), 0)
        << "quantifier evaluated on the empty graph";
    const bool is_exists = (ip->flags & kFlagExists) != 0;
    const bool disj = (ip->flags & kFlagDisjunctive) != 0;
    const VmAtom* const first = atoms + ip->c;
    const std::span<const Vertex> neighbors = graph_.Neighbors(env_[ip->b]);
    bool verdict;
    if (!kCounting && edge_index_ != nullptr &&
        static_cast<int32_t>(neighbors.size()) > edge_index_->stride) {
      // Dense pivot: bitset algebra over the adjacency row beats walking
      // the neighbour list (sparser pivots keep the scalar loop).
      verdict = VectorQuantifier(edge_index_->AdjacencyRow(env_[ip->b]),
                                 ip->a, first, ip->d, disj, is_exists);
    } else {
      verdict = !is_exists;
      for (Vertex v : neighbors) {
        env_[ip->a] = v;
        if (RunAtoms(first, ip->d, disj) == is_exists) {
          verdict = is_exists;
          break;
        }
      }
    }
    ip = code + (verdict ? ip->t : ip->f);
    VM_DISPATCH();
  }
  VM_CASE(kCScanAtoms) {
    FOLEARN_CHECK_GT(graph_.order(), 0)
        << "quantifier evaluated on the empty graph";
    const bool is_exists = (ip->flags & kFlagExists) != 0;
    const bool disj = (ip->flags & kFlagDisjunctive) != 0;
    const VmAtom* const first = atoms + ip->c;
    bool verdict;
    // Guard colours are guaranteed resolved (see the runnable check), so
    // the index's colour row is the exact scan domain.
    if (!kCounting && edge_index_ != nullptr) {
      verdict = VectorQuantifier(edge_index_->ColorRow(colors_[ip->b]),
                                 ip->a, first, ip->d, disj, is_exists);
    } else {
      verdict = !is_exists;
      for (Vertex v : ColorMembers(ip->b)) {
        env_[ip->a] = v;
        if (RunAtoms(first, ip->d, disj) == is_exists) {
          verdict = is_exists;
          break;
        }
      }
    }
    ip = code + (verdict ? ip->t : ip->f);
    VM_DISPATCH();
  }
  VM_CASE(kCntAtoms) {
    FOLEARN_CHECK_GT(graph_.order(), 0)
        << "quantifier evaluated on the empty graph";
    const bool disj = (ip->flags & kFlagDisjunctive) != 0;
    const VmAtom* const first = atoms + ip->c;
    bool verdict;
    if (!kCounting && edge_index_ != nullptr) {
      // Popcount of the body set (the scalar loop's early abort is a pure
      // speed trick — the verdict is the same threshold test).
      verdict = VectorCountAtLeast(ip->a, first, ip->d, disj, ip->b);
    } else {
      int64_t needed = ip->b;
      for (Vertex v = 0; v < graph_.order() && needed > 0; ++v) {
        if (graph_.order() - v < needed) break;
        env_[ip->a] = v;
        if (RunAtoms(first, ip->d, disj)) --needed;
      }
      verdict = needed == 0;
    }
    ip = code + (verdict ? ip->t : ip->f);
    VM_DISPATCH();
  }

#if !FOLEARN_VM_COMPUTED_GOTO
  }  // switch
#endif

vm_done:
  if constexpr (kCounting) {
    if (stats != nullptr) {
      if (stats->vm_op_dispatches.size() <
          static_cast<size_t>(kNumVmOps)) {
        stats->vm_op_dispatches.resize(kNumVmOps, 0);
      }
      for (int i = 0; i < kNumVmOps; ++i) {
        stats->vm_op_dispatches[i] += counts[i];
      }
    }
  }
  return result;

#undef VM_COUNT
#undef VM_DISPATCH
#undef VM_CASE
}

template bool VmEvaluator::Run<false>(const BytecodeProgram&, EvalStats*);
template bool VmEvaluator::Run<true>(const BytecodeProgram&, EvalStats*);

}  // namespace folearn
