#include "mc/compiled_eval.h"

#include <optional>

namespace folearn {

CompiledEvaluator::CompiledEvaluator(const CompiledFormula& plan,
                                     const Graph& graph,
                                     const EvalOptions& options)
    : plan_(plan), graph_(graph), options_(options) {
  colors_.reserve(plan.color_names().size());
  for (const std::string& name : plan.color_names()) {
    std::optional<ColorId> color = graph.FindColor(name);
    // Unresolved colours stay -1 and fail (or evaluate to false) only when
    // the atom actually executes — the interpreter's lazy semantics.
    colors_.push_back(color.has_value() ? *color : ColorId{-1});
  }
  env_.assign(plan.env_size(), 0);
  set_buffers_.resize(plan.num_set_slots());
  set_env_.assign(plan.num_set_slots(), nullptr);
  memo_.assign(plan.num_memo_slots(), -1);
  color_members_.resize(colors_.size());
  color_members_ready_.assign(colors_.size(), false);
}

void CompiledEvaluator::ResetMemo() {
  memo_.assign(memo_.size(), -1);
  for (std::vector<Vertex>& members : color_members_) members.clear();
  color_members_ready_.assign(color_members_ready_.size(), false);
  // Condemned lists are gone now; count them so eviction reporting stays
  // monotone across an explicit reset.
  cache_evictions_ += static_cast<int64_t>(color_members_transient_.size());
  color_members_transient_.clear();
  color_member_bytes_ = 0;
}

const std::vector<Vertex>& CompiledEvaluator::ColorMembers(int32_t index) {
  std::vector<Vertex>& members = color_members_[index];
  if (!color_members_ready_[index]) {
    color_members_ready_[index] = true;
    const ColorId color = colors_[index];
    for (Vertex v = 0; v < graph_.order(); ++v) {
      if (graph_.HasColor(v, color)) members.push_back(v);
    }
    color_member_bytes_ +=
        static_cast<int64_t>(members.capacity() * sizeof(Vertex));
    // Over budget: keep the list for the remainder of this Eval call (live
    // references into it may sit in enclosing quantifier frames) and mark
    // it transient; Eval's prologue drops transients between calls, so the
    // retained footprint is bounded while any single call stays correct.
    if (options_.cache_bytes >= 0 &&
        color_member_bytes_ > options_.cache_bytes) {
      color_members_transient_.push_back(index);
    }
  }
  return members;
}

void CompiledEvaluator::DropTransientColorMembers() {
  for (int32_t index : color_members_transient_) {
    std::vector<Vertex>& members = color_members_[index];
    color_member_bytes_ -=
        static_cast<int64_t>(members.capacity() * sizeof(Vertex));
    members.clear();
    members.shrink_to_fit();
    color_members_ready_[index] = false;
  }
  cache_evictions_ += static_cast<int64_t>(color_members_transient_.size());
  color_members_transient_.clear();
}

bool CompiledEvaluator::Eval(std::span<const Vertex> tuple, EvalStats* stats) {
  FOLEARN_CHECK_EQ(tuple.size(), plan_.free_vars().size());
  DropTransientColorMembers();
  stats_ = stats;
  counting_ = stats != nullptr || options_.governor != nullptr;
  for (size_t i = 0; i < tuple.size(); ++i) {
    env_[i] = tuple[i];
  }
  for (int32_t slot : plan_.used_free_slots()) {
    FOLEARN_CHECK(graph_.IsValidVertex(env_[slot]))
        << "variable '" << plan_.free_vars()[slot]
        << "' bound to invalid vertex " << env_[slot];
  }
  bool value = EvalNode(plan_.root());
  if (stats != nullptr) {
    stats->status = GovernorStatus(options_.governor);
    // Evictions since the last report: lists marked transient during this
    // call are counted now (they are already condemned — the next call's
    // prologue frees them).
    const int64_t total =
        cache_evictions_ + static_cast<int64_t>(color_members_transient_.size());
    stats->cache_evictions += total - reported_evictions_;
    reported_evictions_ = total;
  }
  return value;
}

bool CompiledEvaluator::EvalNode(int32_t id) {
  const CompiledNode& node = plan_.nodes()[id];
  if (node.memo_id >= 0 && !counting_) {
    int8_t& memo = memo_[node.memo_id];
    if (memo >= 0) return memo != 0;
    bool value = EvalRaw(node);
    memo = value ? 1 : 0;
    return value;
  }
  return EvalRaw(node);
}

bool CompiledEvaluator::EvalRaw(const CompiledNode& node) {
  switch (node.op) {
    case COp::kTrue:
      return true;
    case COp::kFalse:
      return false;
    case COp::kEdge:
      CountAtom();
      return graph_.HasEdge(env_[node.a], env_[node.b]);
    case COp::kEquals:
      CountAtom();
      return env_[node.a] == env_[node.b];
    case COp::kColor: {
      CountAtom();
      const ColorId color = colors_[node.b];
      if (color < 0) {
        FOLEARN_CHECK(options_.missing_color_is_false)
            << "colour '" << plan_.color_names()[node.b]
            << "' not in the graph's vocabulary";
        return false;
      }
      return graph_.HasColor(env_[node.a], color);
    }
    case COp::kSetMember: {
      CountAtom();
      FOLEARN_CHECK(node.b >= 0)
          << "unbound set variable '"
          << plan_.free_set_names()[-node.b - 1] << "'";
      const std::vector<bool>* members = set_env_[node.b];
      FOLEARN_CHECK(members != nullptr)
          << "unbound set variable '" << plan_.set_slot_names()[node.b]
          << "'";
      return (*members)[env_[node.a]];
    }
    case COp::kNot:
      return !EvalNode(node.child);
    case COp::kAnd:
      return EvalConjuncts(node);
    case COp::kOr:
      return EvalDisjuncts(node);
    case COp::kExists:
    case COp::kForall:
      return EvalBlock(node, 0);
    case COp::kGuardedExists:
    case COp::kGuardedForall:
    case COp::kColorGuardedExists:
    case COp::kColorGuardedForall:
    case COp::kEqGuardedExists:
    case COp::kEqGuardedForall:
      return EvalGuarded(node);
    case COp::kCountExists:
      return EvalCountExists(node);
    case COp::kExistsSet:
    case COp::kForallSet:
      return EvalSetQuantifier(node);
  }
  FOLEARN_CHECK(false) << "unreachable";
  return false;
}

bool CompiledEvaluator::EvalConjuncts(const CompiledNode& node) {
  for (int32_t child : plan_.children(node)) {
    if (!EvalNode(child)) return false;
  }
  return true;
}

bool CompiledEvaluator::EvalDisjuncts(const CompiledNode& node) {
  for (int32_t child : plan_.children(node)) {
    if (EvalNode(child)) return true;
  }
  return false;
}

// One level of a fused same-kind quantifier block: slots [a, a+b).
bool CompiledEvaluator::EvalBlock(const CompiledNode& node, int32_t level) {
  FOLEARN_CHECK_GT(graph_.order(), 0)
      << "quantifier evaluated on the empty graph";
  const bool is_exists = node.op == COp::kExists;
  const int32_t slot = node.a + level;
  const bool innermost = level + 1 == node.b;
  for (Vertex v = 0; v < graph_.order(); ++v) {
    if (counting_) {
      if (!GovernorCheckpoint(options_.governor)) return false;
      CountBranch();
    }
    env_[slot] = v;
    const bool value =
        innermost ? EvalNode(node.child) : EvalBlock(node, level + 1);
    if (value == is_exists) return is_exists;
  }
  return !is_exists;
}

// ∃y (… ∧ g(y) ∧ …) / ∀y (… ∨ ¬g(y) ∨ …) for a guard atom g: an equality
// y = x (x = env[b]), an edge E(x, y), or a colour Red(y). Children are
// the body's full conjunct/disjunct list; children[threshold] is the
// guard. The fast lane scans only the guard's domain — the single vertex
// x, Neighbors(x), or the colour class — where the guard is known true
// (∃) / false (∀), so it is skipped and only the remaining parts run. The
// counting lane replays the interpreter's full vertex scan (checkpoint +
// branch per vertex, left-to-right short-circuit through the child list,
// each child counting its own atoms — the guard included) so governed
// runs cut at identical points. An unresolved guard colour also takes the
// full scan, so the compiled colour atom reproduces the interpreter's
// lazy missing-colour semantics (false or CHECK) at its interpreter
// position.
bool CompiledEvaluator::EvalGuarded(const CompiledNode& node) {
  FOLEARN_CHECK_GT(graph_.order(), 0)
      << "quantifier evaluated on the empty graph";
  const bool is_exists = node.op == COp::kGuardedExists ||
                         node.op == COp::kColorGuardedExists ||
                         node.op == COp::kEqGuardedExists;
  const bool is_color = node.op == COp::kColorGuardedExists ||
                        node.op == COp::kColorGuardedForall;
  const bool is_equals = node.op == COp::kEqGuardedExists ||
                         node.op == COp::kEqGuardedForall;
  std::span<const int32_t> children = plan_.children(node);
  const int32_t guard = node.threshold;
  if (!counting_ && (!is_color || colors_[node.b] >= 0)) {
    // Non-members never matter: the guard kills the conjunction (∃) or
    // satisfies the disjunction (∀) by itself, so only the guard's domain
    // is scanned.
    const Vertex pinned = env_[node.b];
    const Vertex* first = &pinned;
    size_t count = 1;
    if (!is_equals && is_color) {
      const std::vector<Vertex>& members = ColorMembers(node.b);
      first = members.data();
      count = members.size();
    } else if (!is_equals) {
      const std::span<const Vertex> members = graph_.Neighbors(pinned);
      first = members.data();
      count = members.size();
    }
    for (Vertex v : std::span<const Vertex>(first, count)) {
      env_[node.a] = v;
      if (is_exists) {
        bool all = true;
        for (int32_t i = 0; i < node.num_children; ++i) {
          if (i != guard && !EvalNode(children[i])) {
            all = false;
            break;
          }
        }
        if (all) return true;
      } else {
        bool any = false;
        for (int32_t i = 0; i < node.num_children; ++i) {
          if (i != guard && EvalNode(children[i])) {
            any = true;
            break;
          }
        }
        if (!any) return false;
      }
    }
    return !is_exists;
  }
  for (Vertex v = 0; v < graph_.order(); ++v) {
    if (!GovernorCheckpoint(options_.governor)) return false;
    CountBranch();
    env_[node.a] = v;
    if (is_exists) {
      bool all = true;
      for (int32_t child : children) {
        if (!EvalNode(child)) {
          all = false;
          break;
        }
      }
      if (all) return true;
    } else {
      bool any = false;
      for (int32_t child : children) {
        if (EvalNode(child)) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
  }
  return !is_exists;
}

bool CompiledEvaluator::EvalCountExists(const CompiledNode& node) {
  FOLEARN_CHECK_GT(graph_.order(), 0)
      << "quantifier evaluated on the empty graph";
  int needed = node.threshold;
  for (Vertex v = 0; v < graph_.order() && needed > 0; ++v) {
    // Early abort: not enough vertices left to reach the threshold.
    if (graph_.order() - v < needed) break;
    if (counting_) {
      if (!GovernorCheckpoint(options_.governor)) return false;
      CountBranch();
    }
    env_[node.a] = v;
    if (EvalNode(node.child)) --needed;
  }
  return needed == 0;
}

bool CompiledEvaluator::EvalSetQuantifier(const CompiledNode& node) {
  FOLEARN_CHECK_LE(graph_.order(), 22)
      << "MSO set quantification enumerates 2^n subsets; structure too "
         "large";
  const bool is_exists = node.op == COp::kExistsSet;
  std::vector<bool>& buffer = set_buffers_[node.a];
  buffer.assign(graph_.order(), false);
  set_env_[node.a] = &buffer;
  const uint64_t subsets = uint64_t{1} << graph_.order();
  for (uint64_t mask = 0; mask < subsets; ++mask) {
    if (counting_) {
      if (!GovernorCheckpoint(options_.governor)) {
        set_env_[node.a] = nullptr;
        return false;
      }
      CountBranch();
    }
    for (Vertex v = 0; v < graph_.order(); ++v) {
      buffer[v] = (mask >> v) & 1;
    }
    const bool value = EvalNode(node.child);
    if (value == is_exists) {
      set_env_[node.a] = nullptr;
      return is_exists;
    }
  }
  set_env_[node.a] = nullptr;
  return !is_exists;
}

}  // namespace folearn
