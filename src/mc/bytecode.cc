#include "mc/bytecode.h"

#include <utility>

#include "util/check.h"

namespace folearn {

const char* VmOpName(VmOp op) {
  switch (op) {
    case VmOp::kHaltTrue: return "halt_true";
    case VmOp::kHaltFalse: return "halt_false";
    case VmOp::kHaltTripped: return "halt_tripped";
    case VmOp::kJump: return "jump";
    case VmOp::kEdge: return "edge";
    case VmOp::kEquals: return "equals";
    case VmOp::kColor: return "color";
    case VmOp::kAtomRun: return "atom_run";
    case VmOp::kMemoCheck: return "memo_check";
    case VmOp::kMemoWrite: return "memo_write";
    case VmOp::kCheckpoint: return "checkpoint";
    case VmOp::kScanBegin: return "scan_begin";
    case VmOp::kScanNext: return "scan_next";
    case VmOp::kEqBind: return "eq_bind";
    case VmOp::kNScanBegin: return "nscan_begin";
    case VmOp::kNScanNext: return "nscan_next";
    case VmOp::kCScanBegin: return "cscan_begin";
    case VmOp::kCScanNext: return "cscan_next";
    case VmOp::kCntBegin: return "cnt_begin";
    case VmOp::kCntTop: return "cnt_top";
    case VmOp::kCntHit: return "cnt_hit";
    case VmOp::kCntStep: return "cnt_step";
    case VmOp::kCntExit: return "cnt_exit";
    case VmOp::kScanAtoms: return "scan_atoms";
    case VmOp::kEqBindAtoms: return "eq_bind_atoms";
    case VmOp::kNScanAtoms: return "nscan_atoms";
    case VmOp::kCScanAtoms: return "cscan_atoms";
    case VmOp::kCntAtoms: return "cnt_atoms";
  }
  return "unknown";
}

namespace {

// Degenerate plans aside, programs are a small multiple of the node count;
// the cap only exists to stop pathological memo-shared DAGs (whose every
// occurrence is inlined) from exploding — such plans fall back to the tree
// engine instead.
constexpr size_t kMaxCode = size_t{1} << 20;

// A constant-pool run reference produced by literal folding.
struct RunRef {
  int32_t first = 0;
  int32_t count = 0;
  bool disj = false;
};

class Lowerer {
 public:
  Lowerer(const CompiledFormula& plan, bool counting)
      : plan_(plan), nodes_(plan.nodes()), counting_(counting) {}

  bool Lower(BytecodeProgram* out, std::vector<int32_t>* guard_colors,
             int32_t* superinstructions, int32_t* atom_runs) {
    const int32_t halt_true = NewLabel();
    const int32_t halt_false = NewLabel();
    if (counting_) trip_label_ = NewLabel();
    EmitNode(plan_.root(), halt_true, halt_false);
    Place(halt_true);
    Emit({.op = VmOp::kHaltTrue});
    Place(halt_false);
    Emit({.op = VmOp::kHaltFalse});
    if (counting_) {
      Place(trip_label_);
      Emit({.op = VmOp::kHaltTripped});
    }
    if (!ok_) return false;
    // Backpatch: every non-negative t/f holds a label id by construction.
    for (VmInst& inst : code_) {
      if (inst.t >= 0) inst.t = labels_[inst.t];
      if (inst.f >= 0) inst.f = labels_[inst.f];
    }
    out->code = std::move(code_);
    out->atoms = std::move(atoms_);
    out->num_frames = num_frames_;
    *guard_colors = std::move(guard_colors_);
    *superinstructions = superinstructions_;
    *atom_runs = atom_runs_;
    return true;
  }

 private:
  int32_t NewLabel() {
    labels_.push_back(-1);
    return static_cast<int32_t>(labels_.size()) - 1;
  }

  void Place(int32_t label) {
    labels_[label] = static_cast<int32_t>(code_.size());
  }

  void Emit(VmInst inst) { code_.push_back(inst); }

  void EmitJump(int32_t target) {
    Emit({.op = VmOp::kJump, .t = target});
  }

  int32_t NewFrame() { return num_frames_++; }

  // --- literal folding ---------------------------------------------------

  // Folds an atom or a ¬-chain over an atom into one constant-pool entry.
  // Memoized nodes are never folded in the fast lane (they cannot occur on
  // a literal in practice — atoms always read a slot — but the guard keeps
  // the memo contract local to EmitNode).
  bool FoldLiteral(int32_t id, VmAtom* out) const {
    bool expect = true;
    const CompiledNode* node = &nodes_[id];
    while (node->op == COp::kNot) {
      if (!counting_ && node->memo_id >= 0) return false;
      expect = !expect;
      node = &nodes_[node->child];
    }
    if (!counting_ && node->memo_id >= 0) return false;
    switch (node->op) {
      case COp::kEdge: out->kind = 0; break;
      case COp::kEquals: out->kind = 1; break;
      case COp::kColor: out->kind = 2; break;
      default: return false;
    }
    out->expect = expect ? 1 : 0;
    out->a = node->a;
    out->b = node->b;
    return true;
  }

  // Folds a whole quantifier body — a single literal or a one-level ∧/∨ of
  // literals — into one run, enabling the loop+body superinstructions.
  bool TryFoldBody(int32_t id, RunRef* out) {
    const CompiledNode& node = nodes_[id];
    if (!counting_ && node.memo_id >= 0) return false;
    VmAtom single;
    if (FoldLiteral(id, &single)) {
      out->first = static_cast<int32_t>(atoms_.size());
      out->count = 1;
      out->disj = false;
      atoms_.push_back(single);
      return true;
    }
    if (node.op != COp::kAnd && node.op != COp::kOr) return false;
    return TryFoldList(plan_.children(node), /*skip=*/-1,
                       node.op == COp::kOr, out);
  }

  // Folds every child (minus `skip`, the guard) into one run, preserving
  // the child order so short-circuit behaviour is unchanged.
  bool TryFoldList(std::span<const int32_t> children, int32_t skip,
                   bool disj, RunRef* out) {
    std::vector<VmAtom> run;
    run.reserve(children.size());
    for (int32_t i = 0; i < static_cast<int32_t>(children.size()); ++i) {
      if (i == skip) continue;
      VmAtom atom;
      if (!FoldLiteral(children[i], &atom)) return false;
      run.push_back(atom);
    }
    out->first = static_cast<int32_t>(atoms_.size());
    out->count = static_cast<int32_t>(run.size());
    out->disj = disj;
    atoms_.insert(atoms_.end(), run.begin(), run.end());
    return true;
  }

  // --- node emission -----------------------------------------------------

  // Emits `id` with jump-threaded targets: control reaches `t` exactly when
  // the subformula is true. In the fast lane a memoized node first consults
  // its memo slot and stores its verdict on both exits, mirroring the tree
  // engine's EvalNode; the counting lane never touches memos.
  void EmitNode(int32_t id, int32_t t, int32_t f) {
    if (!ok_) return;
    if (code_.size() > kMaxCode) {
      ok_ = false;
      return;
    }
    const CompiledNode& node = nodes_[id];
    if (!counting_ && node.memo_id >= 0) {
      const int32_t on_true = NewLabel();
      const int32_t on_false = NewLabel();
      Emit({.op = VmOp::kMemoCheck, .a = node.memo_id, .t = t, .f = f});
      EmitRaw(id, on_true, on_false);
      Place(on_true);
      Emit({.op = VmOp::kMemoWrite, .a = node.memo_id, .b = 1, .t = t});
      Place(on_false);
      Emit({.op = VmOp::kMemoWrite, .a = node.memo_id, .b = 0, .t = f});
      return;
    }
    EmitRaw(id, t, f);
  }

  void EmitRaw(int32_t id, int32_t t, int32_t f) {
    const CompiledNode& node = nodes_[id];
    switch (node.op) {
      case COp::kTrue:
        EmitJump(t);
        return;
      case COp::kFalse:
        EmitJump(f);
        return;
      case COp::kEdge:
      case COp::kEquals:
      case COp::kColor: {
        VmAtom atom;
        FOLEARN_CHECK(FoldLiteral(id, &atom));
        EmitLiteral(atom, t, f);
        return;
      }
      case COp::kNot:
        // Negation is free under jump-threading: swap the targets.
        EmitNode(node.child, f, t);
        return;
      case COp::kAnd:
        EmitList(plan_.children(node), /*skip=*/-1, /*conj=*/true, t, f);
        return;
      case COp::kOr:
        EmitList(plan_.children(node), /*skip=*/-1, /*conj=*/false, t, f);
        return;
      case COp::kExists:
      case COp::kForall:
        EmitBlockLevel(node, 0, t, f);
        return;
      case COp::kGuardedExists:
      case COp::kGuardedForall:
      case COp::kColorGuardedExists:
      case COp::kColorGuardedForall:
      case COp::kEqGuardedExists:
      case COp::kEqGuardedForall:
        EmitGuarded(node, t, f);
        return;
      case COp::kCountExists:
        EmitCount(node, t, f);
        return;
      case COp::kSetMember:
      case COp::kExistsSet:
      case COp::kForallSet:
        ok_ = false;  // MSO is not lowered: tree-engine fallback
        return;
    }
    FOLEARN_CHECK(false) << "unreachable";
  }

  // One literal as a standalone jump-threaded atom instruction. A negated
  // literal swaps the targets instead of carrying an expect bit.
  void EmitLiteral(const VmAtom& atom, int32_t sat, int32_t unsat) {
    VmInst inst;
    inst.op = atom.kind == 0   ? VmOp::kEdge
              : atom.kind == 1 ? VmOp::kEquals
                               : VmOp::kColor;
    inst.a = atom.a;
    inst.b = atom.b;
    if (atom.expect != 0) {
      inst.t = sat;
      inst.f = unsat;
    } else {
      inst.t = unsat;
      inst.f = sat;
    }
    Emit(inst);
  }

  // Short-circuit chain over a child list (minus the optional guard),
  // fusing maximal consecutive literal runs into kAtomRun. `conj`: all
  // children must hold (∧, reach t only at the end) vs any may hold (∨).
  void EmitList(std::span<const int32_t> children, int32_t skip, bool conj,
                int32_t t, int32_t f) {
    std::vector<int32_t> items;
    items.reserve(children.size());
    for (int32_t i = 0; i < static_cast<int32_t>(children.size()); ++i) {
      if (i != skip) items.push_back(children[i]);
    }
    if (items.empty()) {
      EmitJump(conj ? t : f);  // empty ∧ is true, empty ∨ is false
      return;
    }
    size_t i = 0;
    while (i < items.size()) {
      std::vector<VmAtom> run;
      size_t j = i;
      while (j < items.size()) {
        VmAtom atom;
        if (!FoldLiteral(items[j], &atom)) break;
        run.push_back(atom);
        ++j;
      }
      const size_t after = run.empty() ? i + 1 : j;
      const bool last = after == items.size();
      const int32_t next = last ? (conj ? t : f) : NewLabel();
      if (run.size() >= 2) {
        const int32_t first = static_cast<int32_t>(atoms_.size());
        atoms_.insert(atoms_.end(), run.begin(), run.end());
        VmInst inst;
        inst.op = VmOp::kAtomRun;
        inst.flags = conj ? 0 : kFlagDisjunctive;
        inst.c = first;
        inst.d = static_cast<int32_t>(run.size());
        inst.t = conj ? next : t;
        inst.f = conj ? f : next;
        Emit(inst);
        ++atom_runs_;
      } else if (run.size() == 1) {
        EmitLiteral(run[0], conj ? next : t, conj ? f : next);
      } else {
        EmitNode(items[i], conj ? next : t, conj ? f : next);
      }
      i = after;
      if (!last) Place(next);
    }
  }

  void EmitCheckpoint() {
    if (counting_) Emit({.op = VmOp::kCheckpoint, .t = trip_label_});
  }

  // One level of a (fused) quantifier block as a full vertex scan. The
  // counting lane checkpoints at the top of every iteration, exactly where
  // the interpreter does.
  void EmitBlockLevel(const CompiledNode& node, int32_t level, int32_t t,
                      int32_t f) {
    const bool is_exists = node.op == COp::kExists;
    const int32_t slot = node.a + level;
    const bool innermost = level + 1 == node.b;
    if (!counting_ && innermost) {
      RunRef run;
      if (TryFoldBody(node.child, &run)) {
        VmInst inst;
        inst.op = VmOp::kScanAtoms;
        inst.flags = static_cast<uint8_t>((is_exists ? kFlagExists : 0) |
                                          (run.disj ? kFlagDisjunctive : 0));
        inst.a = slot;
        inst.c = run.first;
        inst.d = run.count;
        inst.t = t;
        inst.f = f;
        Emit(inst);
        ++superinstructions_;
        ++atom_runs_;
        return;
      }
    }
    const int32_t body = NewLabel();
    const int32_t next = NewLabel();
    Emit({.op = VmOp::kScanBegin, .a = slot});
    Place(body);
    EmitCheckpoint();
    const int32_t body_t = is_exists ? t : next;
    const int32_t body_f = is_exists ? next : f;
    if (innermost) {
      EmitNode(node.child, body_t, body_f);
    } else {
      EmitBlockLevel(node, level + 1, body_t, body_f);
    }
    Place(next);
    Emit({.op = VmOp::kScanNext,
          .a = slot,
          .t = body,
          .f = is_exists ? f : t});
  }

  // Guarded quantifiers. Fast lane: scan only the guard's domain (single
  // vertex / neighbourhood / colour class) with the guard skipped from the
  // body, fusing into one opcode when the rest of the body is pure
  // literals. Counting lane: the interpreter's full scan over the complete
  // child list, guard included at its original position.
  void EmitGuarded(const CompiledNode& node, int32_t t, int32_t f) {
    const bool is_exists = node.op == COp::kGuardedExists ||
                           node.op == COp::kColorGuardedExists ||
                           node.op == COp::kEqGuardedExists;
    if (counting_) {
      const int32_t body = NewLabel();
      const int32_t next = NewLabel();
      Emit({.op = VmOp::kScanBegin, .a = node.a});
      Place(body);
      EmitCheckpoint();
      EmitList(plan_.children(node), /*skip=*/-1, is_exists,
               is_exists ? t : next, is_exists ? next : f);
      Place(next);
      Emit({.op = VmOp::kScanNext,
            .a = node.a,
            .t = body,
            .f = is_exists ? f : t});
      return;
    }
    const bool is_color = node.op == COp::kColorGuardedExists ||
                          node.op == COp::kColorGuardedForall;
    const bool is_equals = node.op == COp::kEqGuardedExists ||
                           node.op == COp::kEqGuardedForall;
    const int32_t guard = node.threshold;
    if (is_color) guard_colors_.push_back(node.b);
    RunRef run;
    if (TryFoldList(plan_.children(node), guard, !is_exists, &run)) {
      VmInst inst;
      inst.op = is_equals  ? VmOp::kEqBindAtoms
                : is_color ? VmOp::kCScanAtoms
                           : VmOp::kNScanAtoms;
      inst.flags = static_cast<uint8_t>((is_exists ? kFlagExists : 0) |
                                        (run.disj ? kFlagDisjunctive : 0));
      inst.a = node.a;
      inst.b = node.b;
      inst.c = run.first;
      inst.d = run.count;
      inst.t = t;
      inst.f = f;
      Emit(inst);
      ++superinstructions_;
      ++atom_runs_;
      return;
    }
    if (is_equals) {
      // Single-vertex domain: the quantifier's verdict is the body's.
      Emit({.op = VmOp::kEqBind, .a = node.a, .b = node.b});
      EmitList(plan_.children(node), guard, is_exists, t, f);
      return;
    }
    const int32_t frame = NewFrame();
    const int32_t body = NewLabel();
    const int32_t next = NewLabel();
    const int32_t exhausted = is_exists ? f : t;
    Emit({.op = is_color ? VmOp::kCScanBegin : VmOp::kNScanBegin,
          .a = node.a,
          .b = node.b,
          .c = frame,
          .f = exhausted});
    Place(body);
    EmitList(plan_.children(node), guard, is_exists, is_exists ? t : next,
             is_exists ? next : f);
    Place(next);
    Emit({.op = is_color ? VmOp::kCScanNext : VmOp::kNScanNext,
          .a = node.a,
          .c = frame,
          .t = body,
          .f = exhausted});
  }

  // ∃^{≥threshold}: the interpreter's loop with its early abort, either as
  // one superinstruction (fast lane, pure-literal body) or as an explicit
  // loop whose counting lane checkpoints once per evaluated vertex.
  void EmitCount(const CompiledNode& node, int32_t t, int32_t f) {
    if (!counting_) {
      RunRef run;
      if (TryFoldBody(node.child, &run)) {
        VmInst inst;
        inst.op = VmOp::kCntAtoms;
        inst.flags = run.disj ? kFlagDisjunctive : 0;
        inst.a = node.a;
        inst.b = node.threshold;
        inst.c = run.first;
        inst.d = run.count;
        inst.t = t;
        inst.f = f;
        Emit(inst);
        ++superinstructions_;
        ++atom_runs_;
        return;
      }
    }
    const int32_t frame = NewFrame();
    const int32_t top = NewLabel();
    const int32_t hit = NewLabel();
    const int32_t step = NewLabel();
    const int32_t exit = NewLabel();
    Emit({.op = VmOp::kCntBegin,
          .a = node.a,
          .b = node.threshold,
          .c = frame});
    Place(top);
    Emit({.op = VmOp::kCntTop, .a = node.a, .c = frame, .f = exit});
    EmitCheckpoint();
    EmitNode(node.child, hit, step);
    Place(hit);
    Emit({.op = VmOp::kCntHit, .c = frame});
    Place(step);
    Emit({.op = VmOp::kCntStep, .a = node.a, .t = top});
    Place(exit);
    Emit({.op = VmOp::kCntExit, .c = frame, .t = t, .f = f});
  }

  const CompiledFormula& plan_;
  const std::vector<CompiledNode>& nodes_;
  const bool counting_;

  std::vector<VmInst> code_;
  std::vector<VmAtom> atoms_;
  std::vector<int32_t> labels_;
  std::vector<int32_t> guard_colors_;
  int32_t num_frames_ = 0;
  int32_t trip_label_ = -1;
  int32_t superinstructions_ = 0;
  int32_t atom_runs_ = 0;
  bool ok_ = true;
};

}  // namespace

LoweredPlan LowerPlan(const CompiledFormula& plan) {
  LoweredPlan out;
  for (const CompiledNode& node : plan.nodes()) {
    if (node.op == COp::kSetMember || node.op == COp::kExistsSet ||
        node.op == COp::kForallSet) {
      return out;  // MSO: evaluate on the tree engine
    }
  }
  Lowerer fast(plan, /*counting=*/false);
  if (!fast.Lower(&out.fast, &out.guard_colors, &out.superinstructions,
                  &out.fused_atom_runs)) {
    return out;
  }
  std::vector<int32_t> unused_colors;
  int32_t unused_supers = 0;
  int32_t unused_runs = 0;
  Lowerer counting(plan, /*counting=*/true);
  if (!counting.Lower(&out.counting, &unused_colors, &unused_supers,
                      &unused_runs)) {
    return out;
  }
  out.supported = true;
  return out;
}

}  // namespace folearn
