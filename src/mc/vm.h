#ifndef FOLEARN_MC_VM_H_
#define FOLEARN_MC_VM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "mc/bytecode.h"
#include "mc/compiled_eval.h"
#include "mc/compiler.h"
#include "mc/evaluator.h"

// Dispatch strategy for the VM's inner loop: computed goto (one indirect
// branch per handler, the branch predictor sees per-opcode history) under
// GCC/Clang, a plain switch loop everywhere else or when the portable
// fallback is forced with -DFOLEARN_VM_SWITCH_DISPATCH=ON. Both paths are
// byte-identical in behaviour (CI builds and tests the switch leg).
#if !defined(FOLEARN_VM_SWITCH_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define FOLEARN_VM_COMPUTED_GOTO 1
#else
#define FOLEARN_VM_COMPUTED_GOTO 0
#endif

namespace folearn {

// Dense bit-matrix adjacency index: one row of ⌈order/64⌉ words per
// vertex, so an edge atom is a single unchecked bit test instead of
// Graph::HasEdge's bounds-checked binary search — the VM validates every
// vertex once at bind/scan time, so the per-atom checks are pure
// overhead. Immutable after Build; share one instance across every
// evaluator bound to the same graph (the enumeration-ERM grid keeps
// thousands alive at once — per-evaluator copies would multiply the
// O(order²/8) footprint by the candidate count).
struct VmGraphIndex {
  int32_t order = 0;
  int32_t stride = 0;           // uint64 words per row
  std::vector<uint64_t> bits;   // order × stride, row-major
  // One row per graph colour (vocabulary order): a straight copy of
  // Graph::ColorWords (same word layout), so quantifier bodies can be
  // combined with bitset algebra alongside adjacency rows.
  std::vector<uint64_t> color_bits;  // vocabulary.size() × stride

  // Orders above this would cost > 32 MiB; Build then returns nullptr and
  // the VM keeps using Graph::HasEdge (still correct, just slower).
  static constexpr int32_t kMaxOrder = 1 << 14;
  // VmEvaluator builds a private index this large on its own when the
  // caller does not pass a shared one (≤ 2 MiB; cheap for a single
  // evaluator, wasteful if the caller meant to share).
  static constexpr int32_t kAutoBuildOrder = 1 << 12;

  static std::shared_ptr<const VmGraphIndex> Build(const Graph& graph);

  bool Test(Vertex u, Vertex v) const {
    return (bits[static_cast<size_t>(u) * stride + (v >> 6)] >>
            (v & 63)) & 1;
  }

  const uint64_t* AdjacencyRow(Vertex v) const {
    return bits.data() + static_cast<size_t>(v) * stride;
  }
  const uint64_t* ColorRow(ColorId color) const {
    return color_bits.data() + static_cast<size_t>(color) * stride;
  }
  // All-ones mask for the last word of a row (rows keep the bits past
  // `order` zero; complements must re-apply this).
  uint64_t TailMask() const {
    const int rem = order & 63;
    return rem == 0 ? ~uint64_t{0} : (uint64_t{1} << rem) - 1;
  }
};

// Executes a lowered bytecode plan (mc/bytecode.h) against one graph.
// Drop-in peer of CompiledEvaluator with the same contract: construction
// binds plan + bytecode to the graph (colour names resolve once, buffers
// allocate once), then Eval serves any number of tuples. The same two-lane
// rules apply — ungoverned, unstatted calls run the `fast` program
// (superinstructions, guard domains, memos); calls with a governor or an
// EvalStats sink run the `counting` program, whose counters and governor
// cut points are byte-identical to the interpreter and the tree engine.
//
// Plans the lowering rejects (MSO set quantifiers, oversized programs) and
// graphs that cannot resolve a fast-lane guard colour delegate every call
// to an internal tree-engine fallback, so verdicts never depend on which
// engine actually ran.
//
// Not thread-safe: one evaluator per thread (plans and LoweredPlans may be
// shared freely).
class VmEvaluator {
 public:
  // `plan`, `lowered` (the result of LowerPlan(plan)), and `graph` must
  // outlive the evaluator. `edge_index`, when given, must have been built
  // from this graph; without one the evaluator builds its own for graphs
  // up to VmGraphIndex::kAutoBuildOrder (callers binding many evaluators
  // to one graph should Build once and share).
  VmEvaluator(const CompiledFormula& plan, const LoweredPlan& lowered,
              const Graph& graph, const EvalOptions& options = {},
              std::shared_ptr<const VmGraphIndex> edge_index = nullptr);

  // Decides G ⊨ φ(tuple); same signature and semantics as
  // CompiledEvaluator::Eval. With `stats`, the VM additionally accumulates
  // per-opcode dispatch counts into stats->vm_op_dispatches.
  bool Eval(std::span<const Vertex> tuple, EvalStats* stats = nullptr);

  // Drops memoized subformula verdicts and colour-member lists (needed
  // only if the bound graph is mutated between calls).
  void ResetMemo();

  const CompiledFormula& plan() const { return plan_; }
  const LoweredPlan& lowered() const { return lowered_; }
  // True when this evaluator delegates to the tree engine (unsupported
  // plan or unresolved guard colour on this graph).
  bool uses_fallback() const { return fallback_.has_value(); }

 private:
  template <bool kCounting>
  bool Run(const BytecodeProgram& program, EvalStats* stats);

  // Unchecked bit-test atom primitives over the dense adjacency index and
  // the graph's raw colour bitmaps; ColorHolds keeps the interpreter's
  // lazy missing-colour semantics (CHECK or false).
  bool EdgeHolds(Vertex u, Vertex v);
  bool ColorHolds(int32_t index, Vertex v);

  // Word-parallel quantifier bodies (fast lane only; the counting lane
  // replays the interpreter instruction for instruction). BodySet fills
  // scratch_body_ with the set of scan-variable values satisfying the
  // atom run — colour atoms contribute their bitmap row, edge atoms the
  // pivot's adjacency row, equalities a singleton, scan-free atoms a
  // scalar full/empty — combined by AND (conjunctive) or OR (disjunctive).
  const uint64_t* BodySet(int32_t scan_slot, const VmAtom* first,
                          int32_t count, bool disj);
  // Single-word BodySet for order ≤ 64 (stride 1): no scratch traffic.
  uint64_t BodyWord(int32_t scan_slot, const VmAtom* first, int32_t count,
                    bool disj);
  // ∃/∀ over `domain` (nullptr = all vertices) of the atom-run body.
  bool VectorQuantifier(const uint64_t* domain, int32_t scan_slot,
                        const VmAtom* first, int32_t count, bool disj,
                        bool is_exists);
  // ∃^{≥needed} over all vertices: popcount of the body set.
  bool VectorCountAtLeast(int32_t scan_slot, const VmAtom* first,
                          int32_t count, bool disj, int64_t needed);
  // One atom of a fused run; returns whether the literal is satisfied
  // (value == expect), with the interpreter's lazy missing-colour
  // semantics (CHECK or false) for colour atoms.
  bool AtomHolds(const VmAtom& atom);
  // Evaluates atoms [first, first + count) as a conjunction (disj=false)
  // or disjunction (disj=true). Fast-lane superinstructions only — does
  // not count atom evaluations.
  bool RunAtoms(const VmAtom* first, int32_t count, bool disj);

  // Colour-member lists with the tree engine's exact byte-budget
  // semantics (transient marking over EvalOptions::cache_bytes, dropped at
  // the next call boundary, evictions reported monotonically).
  const std::vector<Vertex>& ColorMembers(int32_t index);
  void DropTransientColorMembers();

  // Per-loop-site scan state for guard-fused and counting loops.
  struct Frame {
    const Vertex* cur = nullptr;
    const Vertex* end = nullptr;
    int64_t needed = 0;
  };

  const CompiledFormula& plan_;
  const LoweredPlan& lowered_;
  const Graph& graph_;
  EvalOptions options_;
  // Engaged when the lowered plan is unsupported or a guard colour is
  // unresolved on this graph; then every call delegates wholesale.
  std::optional<CompiledEvaluator> fallback_;
  // Bit-test atom domains: the shared (or auto-built) adjacency matrix and
  // one raw membership row per resolved plan colour (nullptr otherwise).
  std::shared_ptr<const VmGraphIndex> edge_index_;
  bool auto_built_index_ = false;  // rebuild in ResetMemo (graph mutated)
  std::vector<uint64_t> scratch_body_;  // one row for BodySet
  // Raw word-bitset rows (Graph::ColorWords) per plan colour name.
  std::vector<const uint64_t*> color_rows_;
  std::vector<ColorId> colors_;  // per plan colour name; -1 = unresolved
  std::vector<Vertex> env_;
  std::vector<int8_t> memo_;  // -1 unknown, else the cached verdict
  std::vector<Frame> frames_;
  std::vector<std::vector<Vertex>> color_members_;
  std::vector<bool> color_members_ready_;
  int64_t color_member_bytes_ = 0;
  std::vector<int32_t> color_members_transient_;
  int64_t cache_evictions_ = 0;
  int64_t reported_evictions_ = 0;
};

}  // namespace folearn

#endif  // FOLEARN_MC_VM_H_
