#ifndef FOLEARN_MC_PLAN_CACHE_H_
#define FOLEARN_MC_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "fo/formula.h"
#include "mc/bytecode.h"
#include "mc/compiler.h"
#include "mc/evaluator.h"
#include "util/mem_budget.h"

namespace folearn {

// One cached compilation artefact: the tree plan, plus — for
// EvalEngine::kVm entries — its lowered bytecode and how long the lowering
// took (amortised across every reuse; surfaced by the server's get-model
// stats). All members are immutable and shareable across threads and
// graphs; per-graph state lives in the evaluators.
struct CachedPlan {
  std::shared_ptr<const CompiledFormula> plan;
  std::shared_ptr<const LoweredPlan> bytecode;  // null for non-VM entries
  double lower_ms = 0.0;
};

// A thread-safe, byte-budgeted cache of compiled evaluation plans.
//
// CompileFormula is cheap relative to a single quantifier sweep but far
// from free, and a long-lived process (the folearnd server, a batched
// experiment driver) sees the same handful of formula shapes over and
// over — every `evaluate` of a saved model, every repeat of a `query`.
// Plans are immutable and explicitly shareable across threads and graphs
// (mc/compiler.h), which makes them the one compilation artefact a server
// can safely keep warm globally; the per-graph state (memo tables, colour
// classes) lives in each CompiledEvaluator/VmEvaluator instead.
//
// Keying: (printed formula, free-variable frame, engine kind,
// eval-options fingerprint). Printing canonicalises structurally equal
// formulas parsed from different requests; the frame is part of the key
// because slot assignment depends on it; the engine and options
// fingerprint keep tree-only and tree+bytecode entries from colliding or
// double-counting their byte budgets when a server mixes engines.
//
// Budgeting mirrors BallCache: `bytes() <= max_bytes` is a hard invariant
// maintained by FIFO eviction, the accounting covers the plan's node and
// string payloads, the bytecode (when present), and per-entry
// key/metadata overhead, and a single entry larger than the whole budget
// is returned uncached (the shared_ptrs keep it alive for the caller; the
// cache remembers only that it happened).
class PlanCache {
 public:
  static constexpr int64_t kNoBudget = -1;

  explicit PlanCache(int64_t max_bytes = kNoBudget) : max_bytes_(max_bytes) {}

  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Mirrors accounted bytes into a MemBudget account (must outlive the
  // cache). Inserts go through TryCharge; a refused charge returns the
  // compiled entry uncached — identical results, colder cache.
  void set_mem_account(MemBudget* account);

  // Read-through mode (yellow/red pressure): while *flag is true, misses
  // compile but are not inserted; hits still serve.
  void set_read_through(const std::atomic<bool>* flag);

  // Evicts FIFO-oldest entries until bytes() <= target_bytes (the red
  // tier drops the cache to a floor without destroying it).
  void Trim(int64_t target_bytes);

  // Returns the cached artefacts for (formula, free_var_order,
  // ResolveEngine(options), options fingerprint), compiling — and for the
  // VM engine lowering — on a miss (budget permitting). Safe to call from
  // any number of threads; compilation happens outside the lock, so two
  // threads racing on the same key may both compile — the first insert
  // wins and both get usable artefacts.
  CachedPlan GetOrCompile(const FormulaRef& formula,
                          std::span<const std::string> free_var_order,
                          const EvalOptions& options);

  // Diagnostics (snapshot under the lock).
  int64_t hits() const;
  int64_t misses() const;
  int64_t evictions() const;
  int64_t oversize_misses() const;
  // Inserts refused by read-through mode or the memory account.
  int64_t shed_inserts() const;
  int64_t bytes() const;
  int64_t entries() const;
  int64_t max_bytes() const { return max_bytes_; }

  // Full footprint of one cache entry: plan payload + bytecode payload (if
  // any) + key string + map and FIFO bookkeeping. Exposed for tests
  // asserting the budget invariant.
  static int64_t EntryBytes(const std::string& key, const CachedPlan& entry);

 private:
  // Evicts the FIFO-oldest entry; mu_ must be held.
  void EvictOneLocked();

  const int64_t max_bytes_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, CachedPlan> cache_;
  std::deque<std::string> insertion_order_;  // FIFO eviction
  int64_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t oversize_misses_ = 0;
  int64_t shed_inserts_ = 0;
  MemBudget* account_ = nullptr;
  const std::atomic<bool>* read_through_ = nullptr;
};

}  // namespace folearn

#endif  // FOLEARN_MC_PLAN_CACHE_H_
