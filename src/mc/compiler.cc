#include "mc/compiler.h"

#include <map>
#include <optional>
#include <tuple>
#include <utility>

#include "util/check.h"

namespace folearn {

namespace {

// Does the binary atom (edge or equality) mention `qvar` on exactly one
// side, i.e. is it E(qvar, z) / qvar = z (or mirrored) for some other
// variable z? Returns the partner variable name or nullptr. Callers check
// the atom kind.
const std::string* GuardPartner(const Formula& atom, const std::string& qvar) {
  const bool first = atom.var1() == qvar;
  const bool second = atom.var2() == qvar;
  if (first == second) return nullptr;  // neither, or E(qvar, qvar)
  return first ? &atom.var2() : &atom.var1();
}

}  // namespace

class FormulaCompiler {
 public:
  explicit FormulaCompiler(std::span<const std::string> free_var_order) {
    plan_.free_vars_.assign(free_var_order.begin(), free_var_order.end());
    used_free_.assign(free_var_order.size(), false);
    for (size_t i = 0; i < free_var_order.size(); ++i) {
      // Reverse lookup finds the later slot, so duplicate names shadow
      // exactly like sequential Assignment::Bind calls.
      element_scope_.emplace_back(free_var_order[i], static_cast<int32_t>(i));
    }
    next_slot_ = static_cast<int32_t>(free_var_order.size());
  }

  CompiledFormula Run(const FormulaRef& formula) {
    FOLEARN_CHECK(formula != nullptr);
    plan_.root_ = Compile(formula);
    plan_.env_size_ = next_slot_;
    for (size_t i = 0; i < used_free_.size(); ++i) {
      if (used_free_[i]) {
        plan_.used_free_slots_.push_back(static_cast<int32_t>(i));
      }
    }
    return std::move(plan_);
  }

 private:
  // Negative codes < -1 encode free set variables (never bound by a set
  // quantifier in scope): code -(i+1) refers to plan_.free_set_names_[i].
  int32_t ResolveSetVar(const std::string& name) {
    for (auto it = set_scope_.rbegin(); it != set_scope_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    for (size_t i = 0; i < plan_.free_set_names_.size(); ++i) {
      if (plan_.free_set_names_[i] == name) {
        return -static_cast<int32_t>(i) - 1;
      }
    }
    plan_.free_set_names_.push_back(name);
    return -static_cast<int32_t>(plan_.free_set_names_.size());
  }

  int32_t ResolveVar(const std::string& name) {
    for (auto it = element_scope_.rbegin(); it != element_scope_.rend();
         ++it) {
      if (it->first == name) {
        if (it->second < static_cast<int32_t>(used_free_.size())) {
          used_free_[it->second] = true;
        }
        return it->second;
      }
    }
    FOLEARN_CHECK(false) << "unbound variable '" << name << "'";
    return -1;
  }

  // Resolution without the CHECK, for guard-shape detection.
  int32_t TryResolveVar(const std::string& name) const {
    for (auto it = element_scope_.rbegin(); it != element_scope_.rend();
         ++it) {
      if (it->first == name) return it->second;
    }
    return -1;
  }

  int32_t ColorIndex(const std::string& name) {
    for (size_t i = 0; i < plan_.color_names_.size(); ++i) {
      if (plan_.color_names_[i] == name) return static_cast<int32_t>(i);
    }
    plan_.color_names_.push_back(name);
    return static_cast<int32_t>(plan_.color_names_.size()) - 1;
  }

  enum class GuardKind { kEquals, kEdge, kColor };

  // Guard position for the Exists/Forall node `f`: (index, kind) of the
  // strongest specialisable guard anywhere in the body's top-level
  // connective list (a bare guard body counts as a one-element list).
  // Preference follows domain size: an equality guard qvar = z (∃) /
  // qvar ≠ z (∀) over an already-bound z pins a single vertex, an edge
  // guard E(qvar, z) / ¬E(qvar, z) iterates N(z), and a colour guard
  // Red(qvar) / ¬Red(qvar) iterates the colour class. The guard compiles
  // as an ordinary child node and the counting lane replays the
  // interpreter's left-to-right short-circuit through the whole child
  // list, so — unlike a leading-only rule — any position keeps atom/branch
  // accounting byte-identical to the interpreter.
  std::optional<std::pair<int32_t, GuardKind>> GuardPos(
      const Formula& f) const {
    const std::string& qvar = f.quantified_var();
    const bool is_exists = f.kind() == FormulaKind::kExists;
    // The guard atom appears positively under ∃ and negated under ∀.
    auto positive_part = [&](const Formula& part) -> const Formula* {
      if (is_exists) return &part;
      return part.kind() == FormulaKind::kNot ? part.child(0).get() : nullptr;
    };
    auto binary_guards = [&](const Formula& part, FormulaKind kind) {
      const Formula* atom = positive_part(part);
      if (atom == nullptr || atom->kind() != kind) return false;
      const std::string* partner = GuardPartner(*atom, qvar);
      return partner != nullptr && TryResolveVar(*partner) >= 0;
    };
    auto color_guards = [&](const Formula& part) {
      const Formula* atom = positive_part(part);
      return atom != nullptr && atom->kind() == FormulaKind::kColor &&
             atom->var1() == qvar;
    };
    const Formula& body = *f.child(0);
    const FormulaKind list_kind =
        is_exists ? FormulaKind::kAnd : FormulaKind::kOr;
    auto scan = [&](auto&& guards) -> std::optional<int32_t> {
      if (body.kind() == list_kind) {
        for (size_t i = 0; i < body.children().size(); ++i) {
          if (guards(*body.child(i))) return static_cast<int32_t>(i);
        }
        return std::nullopt;
      }
      if (guards(body)) return 0;
      return std::nullopt;
    };
    auto equals_guards = [&](const Formula& part) {
      return binary_guards(part, FormulaKind::kEquals);
    };
    auto edge_guards = [&](const Formula& part) {
      return binary_guards(part, FormulaKind::kEdge);
    };
    if (std::optional<int32_t> pos = scan(equals_guards)) {
      return std::make_pair(*pos, GuardKind::kEquals);
    }
    if (std::optional<int32_t> pos = scan(edge_guards)) {
      return std::make_pair(*pos, GuardKind::kEdge);
    }
    if (std::optional<int32_t> pos = scan(color_guards)) {
      return std::make_pair(*pos, GuardKind::kColor);
    }
    return std::nullopt;
  }

  bool IsGuarded(const Formula& f) const { return GuardPos(f).has_value(); }

  // Dedup key: node identity plus the slots its free element/set variables
  // currently resolve to. Closed subformulas therefore share one plan node
  // (and one memo slot) across every occurrence; open ones compile per
  // distinct slot environment.
  using Key =
      std::tuple<const Formula*, std::vector<int32_t>, std::vector<int32_t>>;

  Key MakeKey(const FormulaRef& f) {
    std::vector<int32_t> element_slots;
    element_slots.reserve(f->free_variables().size());
    for (const std::string& name : f->free_variables()) {
      element_slots.push_back(ResolveVar(name));
    }
    std::vector<int32_t> set_codes;
    set_codes.reserve(f->free_set_variables().size());
    for (const std::string& name : f->free_set_variables()) {
      set_codes.push_back(ResolveSetVar(name));
    }
    return {f.get(), std::move(element_slots), std::move(set_codes)};
  }

  int32_t Emit(const FormulaRef& f, CompiledNode node,
               std::vector<int32_t> children = {}) {
    node.first_child = static_cast<int32_t>(plan_.child_ids_.size());
    node.num_children = static_cast<int32_t>(children.size());
    plan_.child_ids_.insert(plan_.child_ids_.end(), children.begin(),
                            children.end());
    for (int32_t child : children) {
      node.free_mask |= plan_.nodes_[child].free_mask;
    }
    if (node.child >= 0) node.free_mask |= plan_.nodes_[node.child].free_mask;
    if (f->free_variables().empty() && f->free_set_variables().empty() &&
        node.op != COp::kTrue && node.op != COp::kFalse) {
      node.memo_id = plan_.num_memo_slots_++;
    }
    plan_.nodes_.push_back(node);
    return static_cast<int32_t>(plan_.nodes_.size()) - 1;
  }

  uint64_t SlotMask(int32_t slot) const {
    if (slot >= 0 && slot < static_cast<int32_t>(used_free_.size()) &&
        slot < 64) {
      return uint64_t{1} << slot;
    }
    return 0;
  }

  int32_t CompileGuarded(const FormulaRef& f) {
    const bool is_exists = f->kind() == FormulaKind::kExists;
    const auto [guard_pos, guard_kind] = *GuardPos(*f);
    CompiledNode node;
    switch (guard_kind) {
      case GuardKind::kEquals:
        node.op = is_exists ? COp::kEqGuardedExists : COp::kEqGuardedForall;
        break;
      case GuardKind::kEdge:
        node.op = is_exists ? COp::kGuardedExists : COp::kGuardedForall;
        break;
      case GuardKind::kColor:
        node.op = is_exists ? COp::kColorGuardedExists
                            : COp::kColorGuardedForall;
        break;
    }
    node.a = next_slot_++;
    node.threshold = guard_pos;
    ++plan_.guarded_nodes_;

    // Children are the body's FULL conjunct/disjunct list — the guard
    // included, compiled like any atom, its index in `threshold` — so the
    // counting lane can replay the interpreter's short-circuit order
    // through the list while the fast lane scans only the guard's domain
    // (a single vertex / Neighbors(env[b]) / the colour class) with the
    // guard skipped.
    const FormulaRef& body = f->child(0);
    const FormulaKind list_kind =
        is_exists ? FormulaKind::kAnd : FormulaKind::kOr;
    std::span<const FormulaRef> parts =
        body->kind() == list_kind ? body->children()
                                  : std::span<const FormulaRef>(&body, 1);
    const Formula& guard_part = *parts[guard_pos];
    const Formula& atom = is_exists ? guard_part : *guard_part.child(0);
    if (guard_kind == GuardKind::kColor) {
      node.b = ColorIndex(atom.color_name());
    } else {
      node.b = ResolveVar(*GuardPartner(atom, f->quantified_var()));
      node.free_mask = SlotMask(node.b);
    }

    element_scope_.emplace_back(f->quantified_var(), node.a);
    std::vector<int32_t> children;
    children.reserve(parts.size());
    for (const FormulaRef& part : parts) children.push_back(Compile(part));
    element_scope_.pop_back();
    return Emit(f, node, std::move(children));
  }

  int32_t CompileQuantifierBlock(const FormulaRef& f) {
    const FormulaKind kind = f->kind();
    CompiledNode node;
    node.op = kind == FormulaKind::kExists ? COp::kExists : COp::kForall;
    node.a = next_slot_;

    // Collect the maximal same-kind run; an inner quantifier that is
    // guard-specialisable stops the run (the guarded loop is worth more
    // than one fused level).
    const Formula* level = f.get();
    std::vector<const std::string*> vars;
    while (true) {
      vars.push_back(&level->quantified_var());
      const Formula& body = *level->child(0);
      if (body.kind() != kind || IsGuarded(body)) break;
      level = &body;
    }
    node.b = static_cast<int32_t>(vars.size());
    next_slot_ += node.b;
    plan_.fused_levels_ += node.b > 1 ? node.b : 0;

    for (size_t i = 0; i < vars.size(); ++i) {
      element_scope_.emplace_back(*vars[i], node.a + static_cast<int32_t>(i));
    }
    node.child = Compile(level->child(0));
    element_scope_.resize(element_scope_.size() - vars.size());
    return Emit(f, node);
  }

  int32_t Compile(const FormulaRef& f) {
    Key key = MakeKey(f);
    auto it = dedup_.find(key);
    if (it != dedup_.end()) return it->second;
    int32_t id = CompileFresh(f);
    dedup_.emplace(std::move(key), id);
    return id;
  }

  int32_t CompileFresh(const FormulaRef& f) {
    CompiledNode node;
    switch (f->kind()) {
      case FormulaKind::kTrue:
        node.op = COp::kTrue;
        return Emit(f, node);
      case FormulaKind::kFalse:
        node.op = COp::kFalse;
        return Emit(f, node);
      case FormulaKind::kEdge:
      case FormulaKind::kEquals:
        node.op = f->kind() == FormulaKind::kEdge ? COp::kEdge : COp::kEquals;
        node.a = ResolveVar(f->var1());
        node.b = ResolveVar(f->var2());
        node.free_mask = SlotMask(node.a) | SlotMask(node.b);
        return Emit(f, node);
      case FormulaKind::kColor:
        node.op = COp::kColor;
        node.a = ResolveVar(f->var1());
        node.b = ColorIndex(f->color_name());
        node.free_mask = SlotMask(node.a);
        return Emit(f, node);
      case FormulaKind::kSetMember:
        node.op = COp::kSetMember;
        node.a = ResolveVar(f->var1());
        node.b = ResolveSetVar(f->set_name());
        node.free_mask = SlotMask(node.a);
        return Emit(f, node);
      case FormulaKind::kNot:
        node.op = COp::kNot;
        node.child = Compile(f->child(0));
        return Emit(f, node);
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        node.op = f->kind() == FormulaKind::kAnd ? COp::kAnd : COp::kOr;
        std::vector<int32_t> children;
        children.reserve(f->children().size());
        for (const FormulaRef& child : f->children()) {
          children.push_back(Compile(child));
        }
        return Emit(f, node, std::move(children));
      }
      case FormulaKind::kCountExists:
        node.op = COp::kCountExists;
        node.a = next_slot_++;
        node.threshold = f->threshold();
        element_scope_.emplace_back(f->quantified_var(), node.a);
        node.child = Compile(f->child(0));
        element_scope_.pop_back();
        return Emit(f, node);
      case FormulaKind::kExists:
      case FormulaKind::kForall:
        if (IsGuarded(*f)) return CompileGuarded(f);
        return CompileQuantifierBlock(f);
      case FormulaKind::kExistsSet:
      case FormulaKind::kForallSet: {
        node.op = f->kind() == FormulaKind::kExistsSet ? COp::kExistsSet
                                                       : COp::kForallSet;
        node.a = plan_.num_set_slots();
        plan_.set_slot_names_.push_back(f->quantified_var());
        set_scope_.emplace_back(f->quantified_var(), node.a);
        node.child = Compile(f->child(0));
        set_scope_.pop_back();
        return Emit(f, node);
      }
    }
    FOLEARN_CHECK(false) << "unreachable";
    return -1;
  }

  CompiledFormula plan_;
  std::vector<std::pair<std::string, int32_t>> element_scope_;
  std::vector<std::pair<std::string, int32_t>> set_scope_;
  std::vector<bool> used_free_;
  std::map<Key, int32_t> dedup_;
  int32_t next_slot_ = 0;
};

CompiledFormula CompileFormula(const FormulaRef& formula,
                               std::span<const std::string> free_var_order) {
  return FormulaCompiler(free_var_order).Run(formula);
}

}  // namespace folearn
