#include "mc/plan_cache.h"

#include <chrono>
#include <utility>

#include "fo/printer.h"
#include "util/check.h"

namespace folearn {

namespace {

// Key = printed formula + frame + engine + options fingerprint, separated
// by the unit separator (which cannot occur in formula text or variable
// names). The engine/fingerprint suffix keeps a tree-only entry and a
// tree+bytecode entry for the same formula distinct, so neither collides
// with nor double-counts the other's byte budget.
std::string MakeKey(const FormulaRef& formula,
                    std::span<const std::string> free_var_order,
                    const EvalOptions& options) {
  std::string key = ToString(formula);
  for (const std::string& var : free_var_order) {
    key.push_back('\x1f');
    key.append(var);
  }
  key.push_back('\x1f');
  key.append(EvalEngineName(ResolveEngine(options)));
  key.push_back('\x1f');
  key.append(options.missing_color_is_false ? "mcf1" : "mcf0");
  return key;
}

int64_t StringBytes(const std::string& s) {
  return static_cast<int64_t>(sizeof(std::string)) +
         static_cast<int64_t>(s.capacity());
}

int64_t PlanPayloadBytes(const CompiledFormula& plan) {
  int64_t bytes = static_cast<int64_t>(sizeof(CompiledFormula));
  bytes += static_cast<int64_t>(plan.nodes().capacity()) *
           static_cast<int64_t>(sizeof(CompiledNode));
  // The child-id array is not directly exposed; every child id appears in
  // exactly one node's window, so summing the windows counts it exactly.
  for (const CompiledNode& node : plan.nodes()) {
    bytes += static_cast<int64_t>(node.num_children) *
             static_cast<int64_t>(sizeof(int32_t));
  }
  for (const std::string& s : plan.free_vars()) bytes += StringBytes(s);
  for (const std::string& s : plan.color_names()) bytes += StringBytes(s);
  for (const std::string& s : plan.set_slot_names()) bytes += StringBytes(s);
  for (const std::string& s : plan.free_set_names()) bytes += StringBytes(s);
  bytes += static_cast<int64_t>(plan.used_free_slots().capacity()) *
           static_cast<int64_t>(sizeof(int32_t));
  return bytes;
}

}  // namespace

int64_t PlanCache::EntryBytes(const std::string& key,
                              const CachedPlan& entry) {
  // Key is stored twice (map key + FIFO queue), plus hash-map node and
  // control-block overhead, estimated the same way BallCache does.
  constexpr int64_t kPerEntryOverhead =
      4 * sizeof(void*) + sizeof(CachedPlan) + 2 * sizeof(int64_t);
  FOLEARN_CHECK(entry.plan != nullptr);
  int64_t bytes =
      PlanPayloadBytes(*entry.plan) + 2 * StringBytes(key) + kPerEntryOverhead;
  if (entry.bytecode != nullptr) bytes += entry.bytecode->bytes();
  return bytes;
}

PlanCache::~PlanCache() {
  if (account_ != nullptr) account_->Release(bytes_);
}

void PlanCache::set_mem_account(MemBudget* account) {
  std::lock_guard<std::mutex> lock(mu_);
  if (account_ != nullptr) account_->Release(bytes_);
  account_ = account;
  if (account_ != nullptr && bytes_ > 0) account_->Charge(bytes_);
}

void PlanCache::set_read_through(const std::atomic<bool>* flag) {
  std::lock_guard<std::mutex> lock(mu_);
  read_through_ = flag;
}

void PlanCache::EvictOneLocked() {
  FOLEARN_CHECK(!insertion_order_.empty());
  auto old_it = cache_.find(insertion_order_.front());
  insertion_order_.pop_front();
  FOLEARN_CHECK(old_it != cache_.end());
  const int64_t freed = EntryBytes(old_it->first, old_it->second);
  bytes_ -= freed;
  if (account_ != nullptr) account_->Release(freed);
  cache_.erase(old_it);
  ++evictions_;
}

void PlanCache::Trim(int64_t target_bytes) {
  if (target_bytes < 0) target_bytes = 0;
  std::lock_guard<std::mutex> lock(mu_);
  while (bytes_ > target_bytes && !insertion_order_.empty()) {
    EvictOneLocked();
  }
}

CachedPlan PlanCache::GetOrCompile(const FormulaRef& formula,
                                   std::span<const std::string> free_var_order,
                                   const EvalOptions& options) {
  std::string key = MakeKey(formula, free_var_order, options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  // Compile (and for the VM engine, lower) outside the lock: plans can
  // take a while and the cache must not serialise unrelated requests
  // behind one compilation.
  CachedPlan entry;
  entry.plan = std::make_shared<const CompiledFormula>(
      CompileFormula(formula, free_var_order));
  if (ResolveEngine(options) == EvalEngine::kVm) {
    const auto start = std::chrono::steady_clock::now();
    entry.bytecode = std::make_shared<const LoweredPlan>(LowerPlan(*entry.plan));
    entry.lower_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  }
  const int64_t cost = EntryBytes(key, entry);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;  // a racing compile won
  if (read_through_ != nullptr &&
      read_through_->load(std::memory_order_relaxed)) {
    ++shed_inserts_;
    return entry;  // pressure tier says: serve, but do not grow
  }
  if (max_bytes_ >= 0 && cost > max_bytes_) {
    ++oversize_misses_;
    return entry;  // caller keeps it alive; too big to ever cache
  }
  if (max_bytes_ >= 0) {
    while (bytes_ + cost > max_bytes_) {
      EvictOneLocked();
    }
  }
  if (account_ != nullptr && !account_->TryCharge(cost)) {
    ++shed_inserts_;
    return entry;  // byte budget refused the growth; serve uncached
  }
  insertion_order_.push_back(key);
  bytes_ += cost;
  cache_.emplace(std::move(key), entry);
  return entry;
}

int64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

int64_t PlanCache::oversize_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return oversize_misses_;
}

int64_t PlanCache::shed_inserts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_inserts_;
}

int64_t PlanCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t PlanCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(cache_.size());
}

}  // namespace folearn
