#ifndef FOLEARN_MC_EVALUATOR_H_
#define FOLEARN_MC_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fo/formula.h"
#include "graph/graph.h"
#include "util/governor.h"

namespace folearn {

// A variable assignment for formula evaluation. Bindings form a stack so
// quantifier scoping (shadowing) works naturally.
class Assignment {
 public:
  Assignment() = default;

  // Builds an assignment binding vars[i] ↦ values[i].
  Assignment(std::span<const std::string> vars,
             std::span<const Vertex> values);

  void Bind(const std::string& var, Vertex value) {
    entries_.emplace_back(var, value);
  }

  // Pops the most recent binding of `var`.
  void Unbind(const std::string& var);

  // Innermost binding of `var`, if any.
  std::optional<Vertex> Lookup(const std::string& var) const;

  // --- MSO set bindings (set variables live in their own namespace) ------
  using SetValue = std::shared_ptr<const std::vector<bool>>;

  void BindSet(const std::string& set_var, SetValue members) {
    set_entries_.emplace_back(set_var, std::move(members));
  }
  void UnbindSet(const std::string& set_var);
  // Innermost binding of `set_var`, or nullptr.
  SetValue LookupSet(const std::string& set_var) const;

 private:
  std::vector<std::pair<std::string, Vertex>> entries_;
  std::vector<std::pair<std::string, SetValue>> set_entries_;
};

// Optional instrumentation for the evaluation experiments (E6).
struct EvalStats {
  int64_t atom_evaluations = 0;
  int64_t quantifier_branches = 0;
  // kComplete: the returned truth value is exact. Otherwise the governor
  // tripped mid-evaluation and the returned value is unspecified (the
  // recursion unwound early, possibly under a negation).
  RunStatus status = RunStatus::kComplete;
};

struct EvalOptions {
  // If true, colour atoms naming colours absent from the graph's vocabulary
  // evaluate to false (used after vocabulary-erasing transformations); if
  // false, such atoms CHECK-fail — the safer default for catching bugs.
  bool missing_color_is_false = false;
  // Optional resource governor (nullptr = ungoverned). Work unit: one
  // quantifier branch (one vertex binding or one MSO subset). On a trip the
  // evaluation unwinds immediately; the returned bool is then unspecified —
  // check `stats->status` or the governor itself.
  ResourceGovernor* governor = nullptr;
};

// The FO-MC substrate (paper §4): decides G ⊨ φ under `assignment` by the
// standard recursive semantics. All free variables of φ must be bound.
// Cost O(n^q · |φ|) — XP in the quantifier rank; this is the library's
// stand-in for an FPT model checker (see DESIGN.md §4 for the
// substitution rationale). Graphs must be non-empty when a quantifier is
// evaluated (finite-model-theory convention: no empty structures).
//
// MSO: set quantifiers are evaluated by enumerating all 2^n subsets —
// structures up to ~22 vertices only (CHECK-enforced).
bool Evaluate(const Graph& graph, const FormulaRef& formula,
              const Assignment& assignment, const EvalOptions& options = {},
              EvalStats* stats = nullptr);

// G ⊨ φ for a sentence φ (no free variables).
bool EvaluateSentence(const Graph& graph, const FormulaRef& sentence,
                      const EvalOptions& options = {},
                      EvalStats* stats = nullptr);

// G ⊨ φ(v̄) binding vars[i] ↦ tuple[i].
bool EvaluateQuery(const Graph& graph, const FormulaRef& formula,
                   std::span<const std::string> vars,
                   std::span<const Vertex> tuple,
                   const EvalOptions& options = {},
                   EvalStats* stats = nullptr);

// Evaluates φ(x1, …, xk) on every k-tuple in `tuples` (query answering).
std::vector<bool> EvaluateOnTuples(
    const Graph& graph, const FormulaRef& formula,
    std::span<const std::string> vars,
    const std::vector<std::vector<Vertex>>& tuples,
    const EvalOptions& options = {}, EvalStats* stats = nullptr);

}  // namespace folearn

#endif  // FOLEARN_MC_EVALUATOR_H_
