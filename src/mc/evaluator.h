#ifndef FOLEARN_MC_EVALUATOR_H_
#define FOLEARN_MC_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fo/formula.h"
#include "graph/graph.h"
#include "util/governor.h"

namespace folearn {

// A variable assignment for formula evaluation. Bindings form a stack so
// quantifier scoping (shadowing) works naturally.
//
// Internally each distinct name owns its own value stack (evaluation
// touches a handful of names, so the name list is a small vector), and the
// index of the most recently touched name is cached: the common pattern —
// a quantifier loop binding/reading/unbinding the same variable — runs
// without any string comparison after the first access.
class Assignment {
 public:
  Assignment() = default;

  // Builds an assignment binding vars[i] ↦ values[i].
  Assignment(std::span<const std::string> vars,
             std::span<const Vertex> values);

  void Bind(const std::string& var, Vertex value) {
    FindOrCreate(var).values.push_back(value);
  }

  // Overwrites the innermost binding of `var` (which must exist) — the
  // re-binding idiom of batched evaluation loops.
  void Rebind(const std::string& var, Vertex value);

  // Pops the most recent binding of `var`.
  void Unbind(const std::string& var);

  // Innermost binding of `var`, if any.
  std::optional<Vertex> Lookup(const std::string& var) const;

  // --- MSO set bindings (set variables live in their own namespace) ------
  using SetValue = std::shared_ptr<const std::vector<bool>>;

  void BindSet(const std::string& set_var, SetValue members) {
    FindOrCreateSet(set_var).values.push_back(std::move(members));
  }
  void UnbindSet(const std::string& set_var);
  // Innermost binding of `set_var`, or nullptr.
  SetValue LookupSet(const std::string& set_var) const;

 private:
  // Per-name binding stack. Emptied stacks stay in place so repeated
  // bind/unbind cycles reuse their capacity and keep the cache index valid.
  struct VarStack {
    std::string name;
    std::vector<Vertex> values;
  };
  struct SetStack {
    std::string name;
    std::vector<SetValue> values;
  };

  VarStack& FindOrCreate(const std::string& var);
  const VarStack* Find(const std::string& var) const;
  SetStack& FindOrCreateSet(const std::string& set_var);
  const SetStack* FindSet(const std::string& set_var) const;

  std::vector<VarStack> stacks_;
  std::vector<SetStack> set_stacks_;
  // Index into stacks_ of the most recently accessed name.
  mutable size_t last_hit_ = 0;
};

// Which engine executes compiled-path evaluations. All three produce
// byte-identical verdicts, EvalStats counters, and governor cut points
// (enforced by the three-way differential grid in
// compiled_vs_interpreted_test); they differ only in speed:
//  * kVm — plans are lowered to register bytecode (mc/bytecode.h) run by a
//    threaded-dispatch VM (mc/vm.h). The default and the fastest.
//  * kCompiled — the PR 3 tree engine (mc/compiled_eval.h): flattened
//    node-tree walk, retained as the VM's differential oracle and as the
//    fallback for plans the lowering rejects.
//  * kInterpreted — the recursive reference interpreter.
enum class EvalEngine : uint8_t {
  kVm,
  kCompiled,
  kInterpreted,
};

// CLI-facing engine names: "vm", "compiled", "interpreted".
const char* EvalEngineName(EvalEngine engine);
// Inverse of EvalEngineName; nullopt for unknown names.
std::optional<EvalEngine> ParseEvalEngine(const std::string& name);

// Optional instrumentation for the evaluation experiments (E6).
struct EvalStats {
  int64_t atom_evaluations = 0;
  int64_t quantifier_branches = 0;
  // Wall-clock split of the compiled path: plan construction vs plan
  // execution, accumulated across calls like the counters above. Both stay
  // zero on the interpreted path (and when no stats sink is attached the
  // clock is never read at all).
  double compile_ms = 0.0;
  double eval_ms = 0.0;
  // Finer-grained split for the VM engine: bytecode lowering (part of plan
  // construction, amortized across calls when plans are cached) vs bytecode
  // execution (also included in eval_ms). Zero on the other engines.
  double lower_ms = 0.0;
  double exec_ms = 0.0;
  // Per-opcode dispatch tallies from the VM's counting lane, indexed by
  // VmOp (mc/bytecode.h; names via VmOpName). Empty until a VM evaluation
  // ran with this sink; sized kNumVmOps afterwards.
  std::vector<int64_t> vm_op_dispatches;
  // Memo-table entries dropped to honour EvalOptions::cache_bytes
  // (compiled path only; stays 0 when the budget is unlimited). Purely a
  // performance signal: verdicts and work counts are identical with any
  // budget.
  int64_t cache_evictions = 0;
  // kComplete: the returned truth value is exact. Otherwise the governor
  // tripped mid-evaluation and the returned value is unspecified (the
  // recursion unwound early, possibly under a negation).
  RunStatus status = RunStatus::kComplete;
};

struct EvalOptions {
  // If true, colour atoms naming colours absent from the graph's vocabulary
  // evaluate to false (used after vocabulary-erasing transformations); if
  // false, such atoms CHECK-fail — the safer default for catching bugs.
  bool missing_color_is_false = false;
  // Engine for EvaluateSentence/EvaluateQuery/EvaluateOnTuples and
  // everything layered on them (training error, dataset labelling,
  // enumeration ERM). Verdicts, work counts, and governor cut points are
  // identical across engines; they differ only in speed. See ResolveEngine
  // for the interaction with force_interpreter.
  EvalEngine engine = EvalEngine::kVm;
  // Escape hatch predating `engine`: when set, routes everything through
  // the interpreted reference evaluator regardless of `engine`. Kept so
  // existing call sites (and saved configs) keep their meaning.
  bool force_interpreter = false;
  // Optional resource governor (nullptr = ungoverned). Work unit: one
  // quantifier branch (one vertex binding or one MSO subset). On a trip the
  // evaluation unwinds immediately; the returned bool is then unspecified —
  // check `stats->status` or the governor itself.
  ResourceGovernor* governor = nullptr;
  // Byte budget for the evaluation-side memo tables (the compiled
  // evaluator's colour-member lists and the enumeration-ERM plan caches);
  // −1 = unbounded. Memos over budget are recomputed on demand instead of
  // retained, with deterministic (insertion-order) eviction; results are
  // identical with any budget. Evictions are reported via
  // EvalStats::cache_evictions.
  int64_t cache_bytes = -1;
};

// The engine that actually runs under `options`: force_interpreter wins,
// otherwise options.engine.
inline EvalEngine ResolveEngine(const EvalOptions& options) {
  return options.force_interpreter ? EvalEngine::kInterpreted
                                   : options.engine;
}

// The FO-MC substrate (paper §4): decides G ⊨ φ under `assignment` by the
// standard recursive semantics. All free variables of φ must be bound.
// Cost O(n^q · |φ|) — XP in the quantifier rank; this is the library's
// stand-in for an FPT model checker (see DESIGN.md §4 for the
// substitution rationale). Graphs must be non-empty when a quantifier is
// evaluated (finite-model-theory convention: no empty structures).
//
// MSO: set quantifiers are evaluated by enumerating all 2^n subsets —
// structures up to ~22 vertices only (CHECK-enforced).
//
// This entry point always runs the recursive interpreter: it is the
// reference oracle the compiled engine (mc/compiler.h, mc/compiled_eval.h)
// is differentially tested against. The sentence/query/tuple-batch helpers
// below compile by default and honour `options.force_interpreter`.
bool Evaluate(const Graph& graph, const FormulaRef& formula,
              const Assignment& assignment, const EvalOptions& options = {},
              EvalStats* stats = nullptr);

// G ⊨ φ for a sentence φ (no free variables). Compiled unless
// options.force_interpreter is set.
bool EvaluateSentence(const Graph& graph, const FormulaRef& sentence,
                      const EvalOptions& options = {},
                      EvalStats* stats = nullptr);

// G ⊨ φ(v̄) binding vars[i] ↦ tuple[i]. Compiled unless
// options.force_interpreter is set.
bool EvaluateQuery(const Graph& graph, const FormulaRef& formula,
                   std::span<const std::string> vars,
                   std::span<const Vertex> tuple,
                   const EvalOptions& options = {},
                   EvalStats* stats = nullptr);

// Evaluates φ(x1, …, xk) on every k-tuple in `tuples` (query answering).
// One plan is compiled and reused across all tuples (the interpreted
// fallback likewise builds its assignment once and rebinds per tuple).
std::vector<bool> EvaluateOnTuples(
    const Graph& graph, const FormulaRef& formula,
    std::span<const std::string> vars,
    const std::vector<std::vector<Vertex>>& tuples,
    const EvalOptions& options = {}, EvalStats* stats = nullptr);

}  // namespace folearn

#endif  // FOLEARN_MC_EVALUATOR_H_
