#ifndef FOLEARN_MC_COMPILED_EVAL_H_
#define FOLEARN_MC_COMPILED_EVAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "mc/compiler.h"
#include "mc/evaluator.h"

namespace folearn {

// Executes a CompiledFormula plan against one graph. Construction binds the
// plan to the graph: colour names resolve to ColorIds once, the slot
// environment and the MSO subset buffers are allocated once, and the memo
// table for sentence-valued subformulas starts empty. One evaluator then
// serves any number of Eval calls — the intended pattern for training-error
// loops and batched query answering (compile once, evaluate per tuple).
//
// Two lanes:
//  * Ungoverned and unstatted calls take the fast lane — edge-guarded
//    quantifiers iterate Neighbors(x), colour-guarded ones the colour
//    class, closed subformulas hit the memo — and only the verdict is
//    observable.
//  * With a governor or an EvalStats sink attached the evaluator mirrors
//    the interpreter checkpoint for checkpoint and counter for counter
//    (full vertex scans, no memo reads or writes), so work accounting and
//    fault-injection cut points are byte-identical to mc/evaluator.cc.
//
// Not thread-safe: one evaluator per thread (plans may be shared freely).
class CompiledEvaluator {
 public:
  // `plan` and `graph` must outlive the evaluator. `options.governor`, if
  // set, is checkpointed by every Eval call.
  CompiledEvaluator(const CompiledFormula& plan, const Graph& graph,
                    const EvalOptions& options = {});

  // Decides G ⊨ φ(tuple) with free slot i ↦ tuple[i]; tuple must have
  // exactly plan.free_vars().size() entries. With `stats`, counters
  // accumulate exactly like the interpreter's and `stats->status` is set
  // from the governor on return.
  bool Eval(std::span<const Vertex> tuple, EvalStats* stats = nullptr);

  // Drops all memoized subformula values (needed only if the bound graph
  // is mutated between calls).
  void ResetMemo();

  const CompiledFormula& plan() const { return plan_; }

 private:
  bool EvalNode(int32_t id);
  bool EvalRaw(const CompiledNode& node);
  bool EvalConjuncts(const CompiledNode& node);
  bool EvalDisjuncts(const CompiledNode& node);
  bool EvalBlock(const CompiledNode& node, int32_t level);
  bool EvalGuarded(const CompiledNode& node);
  bool EvalCountExists(const CompiledNode& node);
  bool EvalSetQuantifier(const CompiledNode& node);
  // Vertices of the plan's colour `index`, computed on first use and kept
  // until ResetMemo (colour-guarded quantifiers scan this instead of V(G)).
  // Under EvalOptions::cache_bytes, lists past the budget survive only the
  // current Eval call (see DropTransientColorMembers).
  const std::vector<Vertex>& ColorMembers(int32_t index);
  // Frees colour-member lists marked transient by the byte budget. Called
  // between Eval calls only: during a call, enclosing quantifier frames may
  // hold live spans into the lists.
  void DropTransientColorMembers();

  void CountAtom() {
    if (stats_ != nullptr) ++stats_->atom_evaluations;
  }
  void CountBranch() {
    if (stats_ != nullptr) ++stats_->quantifier_branches;
  }

  const CompiledFormula& plan_;
  const Graph& graph_;
  EvalOptions options_;
  std::vector<ColorId> colors_;  // per plan colour name; -1 = unresolved
  std::vector<Vertex> env_;
  std::vector<std::vector<bool>> set_buffers_;
  std::vector<const std::vector<bool>*> set_env_;
  std::vector<int8_t> memo_;  // -1 unknown, else the cached verdict
  std::vector<std::vector<Vertex>> color_members_;  // per plan colour
  std::vector<bool> color_members_ready_;
  // Byte budget bookkeeping (EvalOptions::cache_bytes): payload bytes held,
  // slots to free at the next call boundary, and eviction counters
  // (cumulative / last value surfaced into an EvalStats sink).
  int64_t color_member_bytes_ = 0;
  std::vector<int32_t> color_members_transient_;
  int64_t cache_evictions_ = 0;
  int64_t reported_evictions_ = 0;
  EvalStats* stats_ = nullptr;
  bool counting_ = false;
};

}  // namespace folearn

#endif  // FOLEARN_MC_COMPILED_EVAL_H_
