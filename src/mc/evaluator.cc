#include "mc/evaluator.h"

#include <algorithm>
#include <chrono>

#include "mc/bytecode.h"
#include "mc/compiled_eval.h"
#include "mc/compiler.h"
#include "mc/vm.h"

namespace folearn {

const char* EvalEngineName(EvalEngine engine) {
  switch (engine) {
    case EvalEngine::kVm: return "vm";
    case EvalEngine::kCompiled: return "compiled";
    case EvalEngine::kInterpreted: return "interpreted";
  }
  return "unknown";
}

std::optional<EvalEngine> ParseEvalEngine(const std::string& name) {
  if (name == "vm") return EvalEngine::kVm;
  if (name == "compiled") return EvalEngine::kCompiled;
  if (name == "interpreted") return EvalEngine::kInterpreted;
  return std::nullopt;
}

Assignment::Assignment(std::span<const std::string> vars,
                       std::span<const Vertex> values) {
  FOLEARN_CHECK_EQ(vars.size(), values.size());
  for (size_t i = 0; i < vars.size(); ++i) Bind(vars[i], values[i]);
}

Assignment::VarStack& Assignment::FindOrCreate(const std::string& var) {
  if (last_hit_ < stacks_.size() && stacks_[last_hit_].name == var) {
    return stacks_[last_hit_];
  }
  for (size_t i = 0; i < stacks_.size(); ++i) {
    if (stacks_[i].name == var) {
      last_hit_ = i;
      return stacks_[i];
    }
  }
  last_hit_ = stacks_.size();
  stacks_.push_back(VarStack{var, {}});
  return stacks_.back();
}

const Assignment::VarStack* Assignment::Find(const std::string& var) const {
  if (last_hit_ < stacks_.size() && stacks_[last_hit_].name == var) {
    return &stacks_[last_hit_];
  }
  for (size_t i = 0; i < stacks_.size(); ++i) {
    if (stacks_[i].name == var) {
      last_hit_ = i;
      return &stacks_[i];
    }
  }
  return nullptr;
}

void Assignment::Rebind(const std::string& var, Vertex value) {
  VarStack* stack = const_cast<VarStack*>(Find(var));
  FOLEARN_CHECK(stack != nullptr && !stack->values.empty())
      << "rebinding unbound variable '" << var << "'";
  stack->values.back() = value;
}

void Assignment::Unbind(const std::string& var) {
  VarStack* stack = const_cast<VarStack*>(Find(var));
  FOLEARN_CHECK(stack != nullptr && !stack->values.empty())
      << "unbinding unbound variable '" << var << "'";
  stack->values.pop_back();
}

std::optional<Vertex> Assignment::Lookup(const std::string& var) const {
  const VarStack* stack = Find(var);
  if (stack == nullptr || stack->values.empty()) return std::nullopt;
  return stack->values.back();
}

Assignment::SetStack& Assignment::FindOrCreateSet(const std::string& set_var) {
  for (size_t i = 0; i < set_stacks_.size(); ++i) {
    if (set_stacks_[i].name == set_var) return set_stacks_[i];
  }
  set_stacks_.push_back(SetStack{set_var, {}});
  return set_stacks_.back();
}

const Assignment::SetStack* Assignment::FindSet(
    const std::string& set_var) const {
  for (size_t i = 0; i < set_stacks_.size(); ++i) {
    if (set_stacks_[i].name == set_var) return &set_stacks_[i];
  }
  return nullptr;
}

void Assignment::UnbindSet(const std::string& set_var) {
  SetStack* stack = const_cast<SetStack*>(FindSet(set_var));
  FOLEARN_CHECK(stack != nullptr && !stack->values.empty())
      << "unbinding unbound set variable '" << set_var << "'";
  stack->values.pop_back();
}

Assignment::SetValue Assignment::LookupSet(const std::string& set_var) const {
  const SetStack* stack = FindSet(set_var);
  if (stack == nullptr || stack->values.empty()) return nullptr;
  return stack->values.back();
}

namespace {

class Evaluator {
 public:
  Evaluator(const Graph& graph, const EvalOptions& options, EvalStats* stats)
      : graph_(graph), options_(options), stats_(stats) {}

  bool Eval(const FormulaRef& f, Assignment& assignment) {
    switch (f->kind()) {
      case FormulaKind::kTrue:
        return true;
      case FormulaKind::kFalse:
        return false;
      case FormulaKind::kEdge: {
        CountAtom();
        return graph_.HasEdge(Value(assignment, f->var1()),
                              Value(assignment, f->var2()));
      }
      case FormulaKind::kEquals: {
        CountAtom();
        return Value(assignment, f->var1()) == Value(assignment, f->var2());
      }
      case FormulaKind::kColor: {
        CountAtom();
        std::optional<ColorId> color = graph_.FindColor(f->color_name());
        if (!color.has_value()) {
          FOLEARN_CHECK(options_.missing_color_is_false)
              << "colour '" << f->color_name()
              << "' not in the graph's vocabulary";
          return false;
        }
        return graph_.HasColor(Value(assignment, f->var1()), *color);
      }
      case FormulaKind::kNot:
        return !Eval(f->child(0), assignment);
      case FormulaKind::kAnd:
        for (const FormulaRef& child : f->children()) {
          if (!Eval(child, assignment)) return false;
        }
        return true;
      case FormulaKind::kOr:
        for (const FormulaRef& child : f->children()) {
          if (Eval(child, assignment)) return true;
        }
        return false;
      case FormulaKind::kSetMember: {
        CountAtom();
        Assignment::SetValue members = assignment.LookupSet(f->set_name());
        FOLEARN_CHECK(members != nullptr)
            << "unbound set variable '" << f->set_name() << "'";
        Vertex v = Value(assignment, f->var1());
        return (*members)[v];
      }
      case FormulaKind::kExistsSet:
      case FormulaKind::kForallSet: {
        FOLEARN_CHECK_LE(graph_.order(), 22)
            << "MSO set quantification enumerates 2^n subsets; structure "
               "too large";
        const bool is_exists = f->kind() == FormulaKind::kExistsSet;
        const std::string& set_var = f->quantified_var();
        const uint64_t subsets = uint64_t{1} << graph_.order();
        for (uint64_t mask = 0; mask < subsets; ++mask) {
          if (!GovernorCheckpoint(options_.governor)) return false;
          if (stats_ != nullptr) ++stats_->quantifier_branches;
          auto members = std::make_shared<std::vector<bool>>(graph_.order());
          for (Vertex v = 0; v < graph_.order(); ++v) {
            (*members)[v] = (mask >> v) & 1;
          }
          assignment.BindSet(set_var, std::move(members));
          bool value = Eval(f->child(0), assignment);
          assignment.UnbindSet(set_var);
          if (value == is_exists) return is_exists;
        }
        return !is_exists;
      }
      case FormulaKind::kCountExists: {
        FOLEARN_CHECK_GT(graph_.order(), 0)
            << "quantifier evaluated on the empty graph";
        const std::string& var = f->quantified_var();
        int needed = f->threshold();
        for (Vertex v = 0; v < graph_.order() && needed > 0; ++v) {
          // Early abort: not enough vertices left to reach the threshold.
          if (graph_.order() - v < needed) break;
          if (!GovernorCheckpoint(options_.governor)) return false;
          if (stats_ != nullptr) ++stats_->quantifier_branches;
          assignment.Bind(var, v);
          if (Eval(f->child(0), assignment)) --needed;
          assignment.Unbind(var);
        }
        return needed == 0;
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        FOLEARN_CHECK_GT(graph_.order(), 0)
            << "quantifier evaluated on the empty graph";
        const bool is_exists = f->kind() == FormulaKind::kExists;
        const std::string& var = f->quantified_var();
        for (Vertex v = 0; v < graph_.order(); ++v) {
          if (!GovernorCheckpoint(options_.governor)) return false;
          if (stats_ != nullptr) ++stats_->quantifier_branches;
          assignment.Bind(var, v);
          bool value = Eval(f->child(0), assignment);
          assignment.Unbind(var);
          if (value == is_exists) return is_exists;
        }
        return !is_exists;
      }
    }
    FOLEARN_CHECK(false) << "unreachable";
    return false;
  }

 private:
  Vertex Value(const Assignment& assignment, const std::string& var) {
    std::optional<Vertex> value = assignment.Lookup(var);
    FOLEARN_CHECK(value.has_value()) << "unbound variable '" << var << "'";
    FOLEARN_CHECK(graph_.IsValidVertex(*value))
        << "variable '" << var << "' bound to invalid vertex " << *value;
    return *value;
  }

  void CountAtom() {
    if (stats_ != nullptr) ++stats_->atom_evaluations;
  }

  const Graph& graph_;
  const EvalOptions& options_;
  EvalStats* stats_;
};

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - start)
      .count();
}

// Compile-then-evaluate for the one-shot entry points, routed to the tree
// engine or the bytecode VM per ResolveEngine (the interpreted path never
// reaches here). The clock is read only when a stats sink is attached.
bool PlanEvalOnce(const Graph& graph, const FormulaRef& formula,
                  std::span<const std::string> vars,
                  std::span<const Vertex> tuple, const EvalOptions& options,
                  EvalStats* stats) {
  SteadyClock::time_point start;
  if (stats != nullptr) start = SteadyClock::now();
  CompiledFormula plan = CompileFormula(formula, vars);
  if (stats != nullptr) {
    stats->compile_ms += MsSince(start);
    start = SteadyClock::now();
  }
  if (ResolveEngine(options) == EvalEngine::kVm) {
    LoweredPlan lowered = LowerPlan(plan);
    VmEvaluator evaluator(plan, lowered, graph, options);
    if (stats != nullptr) {
      stats->lower_ms += MsSince(start);
      start = SteadyClock::now();
    }
    bool value = evaluator.Eval(tuple, stats);
    if (stats != nullptr) {
      const double ms = MsSince(start);
      stats->eval_ms += ms;
      stats->exec_ms += ms;
    }
    return value;
  }
  CompiledEvaluator evaluator(plan, graph, options);
  bool value = evaluator.Eval(tuple, stats);
  if (stats != nullptr) stats->eval_ms += MsSince(start);
  return value;
}

}  // namespace

bool Evaluate(const Graph& graph, const FormulaRef& formula,
              const Assignment& assignment, const EvalOptions& options,
              EvalStats* stats) {
  FOLEARN_CHECK(formula != nullptr);
  Assignment working = assignment;
  bool value = Evaluator(graph, options, stats).Eval(formula, working);
  if (stats != nullptr) stats->status = GovernorStatus(options.governor);
  return value;
}

bool EvaluateSentence(const Graph& graph, const FormulaRef& sentence,
                      const EvalOptions& options, EvalStats* stats) {
  FOLEARN_CHECK(sentence->free_variables().empty())
      << "sentence expected, but formula has free variables";
  FOLEARN_CHECK(sentence->free_set_variables().empty())
      << "sentence expected, but formula has free set variables";
  if (ResolveEngine(options) == EvalEngine::kInterpreted) {
    return Evaluate(graph, sentence, Assignment(), options, stats);
  }
  return PlanEvalOnce(graph, sentence, {}, {}, options, stats);
}

bool EvaluateQuery(const Graph& graph, const FormulaRef& formula,
                   std::span<const std::string> vars,
                   std::span<const Vertex> tuple, const EvalOptions& options,
                   EvalStats* stats) {
  if (ResolveEngine(options) == EvalEngine::kInterpreted) {
    return Evaluate(graph, formula, Assignment(vars, tuple), options, stats);
  }
  FOLEARN_CHECK(formula != nullptr);
  FOLEARN_CHECK_EQ(vars.size(), tuple.size());
  return PlanEvalOnce(graph, formula, vars, tuple, options, stats);
}

std::vector<bool> EvaluateOnTuples(
    const Graph& graph, const FormulaRef& formula,
    std::span<const std::string> vars,
    const std::vector<std::vector<Vertex>>& tuples, const EvalOptions& options,
    EvalStats* stats) {
  FOLEARN_CHECK(formula != nullptr);
  std::vector<bool> results;
  results.reserve(tuples.size());
  if (tuples.empty()) return results;

  const EvalEngine engine = ResolveEngine(options);
  if (engine != EvalEngine::kInterpreted) {
    // One plan, one evaluator, all tuples — the batched fast path.
    SteadyClock::time_point start;
    if (stats != nullptr) start = SteadyClock::now();
    CompiledFormula plan = CompileFormula(formula, vars);
    if (stats != nullptr) {
      stats->compile_ms += MsSince(start);
      start = SteadyClock::now();
    }
    if (engine == EvalEngine::kVm) {
      LoweredPlan lowered = LowerPlan(plan);
      VmEvaluator evaluator(plan, lowered, graph, options);
      if (stats != nullptr) {
        stats->lower_ms += MsSince(start);
        start = SteadyClock::now();
      }
      for (const std::vector<Vertex>& tuple : tuples) {
        FOLEARN_CHECK_EQ(tuple.size(), vars.size());
        results.push_back(evaluator.Eval(tuple, stats));
      }
      if (stats != nullptr) {
        const double ms = MsSince(start);
        stats->eval_ms += ms;
        stats->exec_ms += ms;
      }
      return results;
    }
    CompiledEvaluator evaluator(plan, graph, options);
    for (const std::vector<Vertex>& tuple : tuples) {
      FOLEARN_CHECK_EQ(tuple.size(), vars.size());
      results.push_back(evaluator.Eval(tuple, stats));
    }
    if (stats != nullptr) stats->eval_ms += MsSince(start);
    return results;
  }

  // Interpreted fallback: build the assignment once and rebind per tuple
  // (the evaluator restores the binding stacks after every call, even when
  // the governor trips mid-recursion, so reuse is sound).
  Evaluator evaluator(graph, options, stats);
  Assignment assignment(vars, tuples.front());
  for (size_t i = 0; i < tuples.size(); ++i) {
    const std::vector<Vertex>& tuple = tuples[i];
    FOLEARN_CHECK_EQ(tuple.size(), vars.size());
    if (i > 0) {
      for (size_t j = 0; j < vars.size(); ++j) {
        assignment.Rebind(vars[j], tuple[j]);
      }
    }
    results.push_back(evaluator.Eval(formula, assignment));
  }
  if (stats != nullptr) stats->status = GovernorStatus(options.governor);
  return results;
}

}  // namespace folearn
