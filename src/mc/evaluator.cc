#include "mc/evaluator.h"

#include <algorithm>

namespace folearn {

Assignment::Assignment(std::span<const std::string> vars,
                       std::span<const Vertex> values) {
  FOLEARN_CHECK_EQ(vars.size(), values.size());
  for (size_t i = 0; i < vars.size(); ++i) Bind(vars[i], values[i]);
}

void Assignment::Unbind(const std::string& var) {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->first == var) {
      entries_.erase(std::next(it).base());
      return;
    }
  }
  FOLEARN_CHECK(false) << "unbinding unbound variable '" << var << "'";
}

std::optional<Vertex> Assignment::Lookup(const std::string& var) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->first == var) return it->second;
  }
  return std::nullopt;
}

void Assignment::UnbindSet(const std::string& set_var) {
  for (auto it = set_entries_.rbegin(); it != set_entries_.rend(); ++it) {
    if (it->first == set_var) {
      set_entries_.erase(std::next(it).base());
      return;
    }
  }
  FOLEARN_CHECK(false) << "unbinding unbound set variable '" << set_var
                       << "'";
}

Assignment::SetValue Assignment::LookupSet(const std::string& set_var) const {
  for (auto it = set_entries_.rbegin(); it != set_entries_.rend(); ++it) {
    if (it->first == set_var) return it->second;
  }
  return nullptr;
}

namespace {

class Evaluator {
 public:
  Evaluator(const Graph& graph, const EvalOptions& options, EvalStats* stats)
      : graph_(graph), options_(options), stats_(stats) {}

  bool Eval(const FormulaRef& f, Assignment& assignment) {
    switch (f->kind()) {
      case FormulaKind::kTrue:
        return true;
      case FormulaKind::kFalse:
        return false;
      case FormulaKind::kEdge: {
        CountAtom();
        return graph_.HasEdge(Value(assignment, f->var1()),
                              Value(assignment, f->var2()));
      }
      case FormulaKind::kEquals: {
        CountAtom();
        return Value(assignment, f->var1()) == Value(assignment, f->var2());
      }
      case FormulaKind::kColor: {
        CountAtom();
        std::optional<ColorId> color = graph_.FindColor(f->color_name());
        if (!color.has_value()) {
          FOLEARN_CHECK(options_.missing_color_is_false)
              << "colour '" << f->color_name()
              << "' not in the graph's vocabulary";
          return false;
        }
        return graph_.HasColor(Value(assignment, f->var1()), *color);
      }
      case FormulaKind::kNot:
        return !Eval(f->child(0), assignment);
      case FormulaKind::kAnd:
        for (const FormulaRef& child : f->children()) {
          if (!Eval(child, assignment)) return false;
        }
        return true;
      case FormulaKind::kOr:
        for (const FormulaRef& child : f->children()) {
          if (Eval(child, assignment)) return true;
        }
        return false;
      case FormulaKind::kSetMember: {
        CountAtom();
        Assignment::SetValue members = assignment.LookupSet(f->set_name());
        FOLEARN_CHECK(members != nullptr)
            << "unbound set variable '" << f->set_name() << "'";
        Vertex v = Value(assignment, f->var1());
        return (*members)[v];
      }
      case FormulaKind::kExistsSet:
      case FormulaKind::kForallSet: {
        FOLEARN_CHECK_LE(graph_.order(), 22)
            << "MSO set quantification enumerates 2^n subsets; structure "
               "too large";
        const bool is_exists = f->kind() == FormulaKind::kExistsSet;
        const std::string& set_var = f->quantified_var();
        const uint64_t subsets = uint64_t{1} << graph_.order();
        for (uint64_t mask = 0; mask < subsets; ++mask) {
          if (!GovernorCheckpoint(options_.governor)) return false;
          if (stats_ != nullptr) ++stats_->quantifier_branches;
          auto members = std::make_shared<std::vector<bool>>(graph_.order());
          for (Vertex v = 0; v < graph_.order(); ++v) {
            (*members)[v] = (mask >> v) & 1;
          }
          assignment.BindSet(set_var, std::move(members));
          bool value = Eval(f->child(0), assignment);
          assignment.UnbindSet(set_var);
          if (value == is_exists) return is_exists;
        }
        return !is_exists;
      }
      case FormulaKind::kCountExists: {
        FOLEARN_CHECK_GT(graph_.order(), 0)
            << "quantifier evaluated on the empty graph";
        const std::string& var = f->quantified_var();
        int needed = f->threshold();
        for (Vertex v = 0; v < graph_.order() && needed > 0; ++v) {
          // Early abort: not enough vertices left to reach the threshold.
          if (graph_.order() - v < needed) break;
          if (!GovernorCheckpoint(options_.governor)) return false;
          if (stats_ != nullptr) ++stats_->quantifier_branches;
          assignment.Bind(var, v);
          if (Eval(f->child(0), assignment)) --needed;
          assignment.Unbind(var);
        }
        return needed == 0;
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        FOLEARN_CHECK_GT(graph_.order(), 0)
            << "quantifier evaluated on the empty graph";
        const bool is_exists = f->kind() == FormulaKind::kExists;
        const std::string& var = f->quantified_var();
        for (Vertex v = 0; v < graph_.order(); ++v) {
          if (!GovernorCheckpoint(options_.governor)) return false;
          if (stats_ != nullptr) ++stats_->quantifier_branches;
          assignment.Bind(var, v);
          bool value = Eval(f->child(0), assignment);
          assignment.Unbind(var);
          if (value == is_exists) return is_exists;
        }
        return !is_exists;
      }
    }
    FOLEARN_CHECK(false) << "unreachable";
    return false;
  }

 private:
  Vertex Value(const Assignment& assignment, const std::string& var) {
    std::optional<Vertex> value = assignment.Lookup(var);
    FOLEARN_CHECK(value.has_value()) << "unbound variable '" << var << "'";
    FOLEARN_CHECK(graph_.IsValidVertex(*value))
        << "variable '" << var << "' bound to invalid vertex " << *value;
    return *value;
  }

  void CountAtom() {
    if (stats_ != nullptr) ++stats_->atom_evaluations;
  }

  const Graph& graph_;
  const EvalOptions& options_;
  EvalStats* stats_;
};

}  // namespace

bool Evaluate(const Graph& graph, const FormulaRef& formula,
              const Assignment& assignment, const EvalOptions& options,
              EvalStats* stats) {
  FOLEARN_CHECK(formula != nullptr);
  Assignment working = assignment;
  bool value = Evaluator(graph, options, stats).Eval(formula, working);
  if (stats != nullptr) stats->status = GovernorStatus(options.governor);
  return value;
}

bool EvaluateSentence(const Graph& graph, const FormulaRef& sentence,
                      const EvalOptions& options, EvalStats* stats) {
  FOLEARN_CHECK(sentence->free_variables().empty())
      << "sentence expected, but formula has free variables";
  FOLEARN_CHECK(sentence->free_set_variables().empty())
      << "sentence expected, but formula has free set variables";
  return Evaluate(graph, sentence, Assignment(), options, stats);
}

bool EvaluateQuery(const Graph& graph, const FormulaRef& formula,
                   std::span<const std::string> vars,
                   std::span<const Vertex> tuple, const EvalOptions& options,
                   EvalStats* stats) {
  return Evaluate(graph, formula, Assignment(vars, tuple), options, stats);
}

std::vector<bool> EvaluateOnTuples(
    const Graph& graph, const FormulaRef& formula,
    std::span<const std::string> vars,
    const std::vector<std::vector<Vertex>>& tuples, const EvalOptions& options,
    EvalStats* stats) {
  std::vector<bool> results;
  results.reserve(tuples.size());
  for (const std::vector<Vertex>& tuple : tuples) {
    results.push_back(
        EvaluateQuery(graph, formula, vars, tuple, options, stats));
  }
  return results;
}

}  // namespace folearn
