#ifndef FOLEARN_MC_BOTTOM_UP_H_
#define FOLEARN_MC_BOTTOM_UP_H_

#include <string>
#include <vector>

#include "fo/formula.h"
#include "graph/graph.h"
#include "mc/evaluator.h"

namespace folearn {

// Bottom-up (algebraic) model checking: evaluates a formula to the full
// RELATION of satisfying assignments instead of probing one assignment at a
// time. This is the classical database-style evaluation of FO queries:
//
//   cost O(|φ| · n^w), where w = the maximum number of free variables of
//   any subformula (the "width"),
//
// versus O(n^q) per probe × n^k probes for the recursive evaluator when
// answering a query on all k-tuples. For the local, low-width formulas this
// library produces, bottom-up answering is the right tool (experiment E6).
//
// Shared subformulas (Hintikka DAGs!) are evaluated once via pointer
// memoisation.

// A finite relation: sorted variable names plus sorted, duplicate-free rows
// (row[i] binds vars[i]). A 0-ary relation is either {()} ("true") or {}
// ("false").
struct Relation {
  std::vector<std::string> vars;
  std::vector<std::vector<Vertex>> rows;

  int arity() const { return static_cast<int>(vars.size()); }
  bool IsBooleanTrue() const { return vars.empty() && !rows.empty(); }

  // Membership test for an assignment covering (at least) `vars`.
  bool Contains(const Assignment& assignment) const;
};

// Evaluates `formula` over `graph` to its relation of satisfying
// assignments. Quantifiers follow the non-empty-structure convention
// (CHECK-fails on quantified evaluation over the empty graph).
Relation EvaluateBottomUp(const Graph& graph, const FormulaRef& formula,
                          EvalStats* stats = nullptr);

// Governed variant. options.governor is checkpointed once per
// relational-algebra row processed; on a trip the returned relation is
// unspecified (built from partially evaluated operands) — check
// `stats->status` or the governor itself.
Relation EvaluateBottomUp(const Graph& graph, const FormulaRef& formula,
                          const EvalOptions& options,
                          EvalStats* stats = nullptr);

// Query answering: all tuples (v1, …, vk) with G ⊨ φ(v̄), in the given
// variable order (vars must cover the formula's free variables; extra vars
// range over all vertices). Lexicographically sorted. Under a governor the
// returned set may be incomplete (same caveat as above).
std::vector<std::vector<Vertex>> AnswerQuery(
    const Graph& graph, const FormulaRef& formula,
    const std::vector<std::string>& vars, const EvalOptions& options = {});

}  // namespace folearn

#endif  // FOLEARN_MC_BOTTOM_UP_H_
