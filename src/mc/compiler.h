#ifndef FOLEARN_MC_COMPILER_H_
#define FOLEARN_MC_COMPILER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fo/formula.h"

namespace folearn {

// Compilation of formulas into flat, slot-indexed evaluation plans.
//
// The recursive evaluator in mc/evaluator.h resolves every variable
// occurrence by a reverse linear scan over a name→vertex binding stack and
// chases shared_ptr children on every step. Since the learners evaluate a
// handful of distinct formula shapes millions of times (one per candidate ×
// training example × quantifier branch), the classic query-plan split pays
// off: `CompileFormula` resolves all variable occurrences to integer slots
// once (de Bruijn-style frame indices), flattens the DAG into a contiguous
// node array, and marks the specialisable hot shapes; the matching
// `CompiledEvaluator` (mc/compiled_eval.h) then runs the plan over a plain
// `Vertex env[]` with no string handling at all.
//
// Specialisations emitted by the compiler:
//  * guarded quantifiers — a guard atom anywhere in the body's top-level
//    connective list shrinks the quantifier's domain: an equality guard
//    ∃y (… ∧ y=x ∧ …) / ∀y (… ∨ y≠x ∨ …) checks the single vertex x, an
//    edge guard ∃y (… ∧ E(x,y) ∧ …) / ∀y (… ∨ ¬E(x,y) ∨ …) iterates
//    Neighbors(x), and a colour guard ∃y (… ∧ Red(y) ∧ …) /
//    ∀y (… ∨ ¬Red(y) ∨ …) iterates the colour class — preferred in that
//    order (when ungoverned; the governed path keeps the full scan and
//    replays the interpreter's left-to-right short-circuit so work
//    accounting stays byte-identical);
//  * quantifier blocks — maximal runs of same-kind quantifiers fuse into a
//    single loop nest over consecutive slots (guard specialisation takes
//    precedence at each level).
//
// Subformulas are deduplicated by (node identity, slot environment), so a
// shared DAG node reached under two different quantifier scopes compiles
// twice, while sentence-valued (closed) subformulas always collapse to one
// plan node and get a memo slot: the evaluator computes them once per
// graph.

// Opcodes of the compiled plan.
enum class COp : uint8_t {
  kTrue,
  kFalse,
  kEdge,           // E(env[a], env[b])
  kEquals,         // env[a] == env[b]
  kColor,          // colour_names[b](env[a])
  kNot,            // ¬ child
  kAnd,            // ∧ children
  kOr,             // ∨ children
  kExists,         // fused block: slots [a, a+b), body = child
  kForall,         // fused block: slots [a, a+b), body = child
  kGuardedExists,  // ∃ env[a] ∈ N(env[b]): ∧ children (full conjunct list;
                   // children[threshold] is the edge guard)
  kGuardedForall,  // ∀ env[a] ∈ N(env[b]): ∨ children (full disjunct list;
                   // children[threshold] is the ¬edge guard)
  kColorGuardedExists,  // ∃ env[a] with colour_names[b](env[a]): ∧ children
                        // (children[threshold] is the colour guard)
  kColorGuardedForall,  // ∀ env[a]: ∨ children; children[threshold] is the
                        // ¬colour_names[b] guard
  kEqGuardedExists,     // ∃ env[a] = env[b]: ∧ children — evaluates the
                        // body at the single vertex env[b]
  kEqGuardedForall,     // ∀ env[a]: ∨ children with ¬(env[a] = env[b])
                        // guard — likewise a single-vertex body check
  kCountExists,    // ∃^{≥threshold} env[a], body = child
  kSetMember,      // env[a] ∈ set slot b (b < 0: free set variable)
  kExistsSet,      // set slot a, body = child
  kForallSet,      // set slot a, body = child
};

// One flattened plan node. Field meaning depends on `op` (see COp): `a`/`b`
// are slot indices (or the colour-table index for kColor, the fused block
// length for kExists/kForall), single-child ops use `child`, n-ary ops use
// the [first_child, first_child + num_children) window into the plan's
// child-id array.
struct CompiledNode {
  COp op = COp::kTrue;
  int32_t a = -1;
  int32_t b = -1;
  int32_t child = -1;
  int32_t first_child = 0;
  int32_t num_children = 0;
  int32_t threshold = 0;
  // Memo-table slot for sentence-valued (closed) subformulas, -1 otherwise.
  int32_t memo_id = -1;
  // Bitmask of the free-variable slots (< 64) read anywhere beneath this
  // node; bound slots are excluded. A zero mask together with no free set
  // variables is what makes a node memoizable.
  uint64_t free_mask = 0;
};

// An executable evaluation plan: the flattened node array plus the tables
// the evaluator needs (free-variable order, colour names for lazy per-graph
// resolution, set-slot names for diagnostics). Immutable after compilation;
// one plan may be shared by any number of evaluators (and graphs).
class CompiledFormula {
 public:
  const std::vector<CompiledNode>& nodes() const { return nodes_; }
  int32_t root() const { return root_; }

  // Child-node ids of an n-ary node.
  std::span<const int32_t> children(const CompiledNode& node) const {
    return {child_ids_.data() + node.first_child,
            static_cast<size_t>(node.num_children)};
  }

  // The free-variable order fixed at compilation: slot i ↦ free_vars()[i].
  const std::vector<std::string>& free_vars() const { return free_vars_; }
  // Free slots actually read by some atom (unused vars are never
  // validated, matching the interpreter's lazy semantics).
  const std::vector<int32_t>& used_free_slots() const {
    return used_free_slots_;
  }

  // Colour names referenced by kColor nodes (resolved per graph by the
  // evaluator, so vocabulary expansions keep working).
  const std::vector<std::string>& color_names() const { return color_names_; }

  // Names of bound set slots and of free (never-bound) set variables.
  const std::vector<std::string>& set_slot_names() const {
    return set_slot_names_;
  }
  const std::vector<std::string>& free_set_names() const {
    return free_set_names_;
  }

  int32_t env_size() const { return env_size_; }
  int32_t num_set_slots() const {
    return static_cast<int32_t>(set_slot_names_.size());
  }
  int32_t num_memo_slots() const { return num_memo_slots_; }

  // Specialisation diagnostics (asserted on by the differential tests).
  int32_t guarded_nodes() const { return guarded_nodes_; }
  int32_t fused_levels() const { return fused_levels_; }

 private:
  friend class FormulaCompiler;

  std::vector<CompiledNode> nodes_;
  std::vector<int32_t> child_ids_;
  int32_t root_ = -1;
  std::vector<std::string> free_vars_;
  std::vector<int32_t> used_free_slots_;
  std::vector<std::string> color_names_;
  std::vector<std::string> set_slot_names_;
  std::vector<std::string> free_set_names_;
  int32_t env_size_ = 0;
  int32_t num_memo_slots_ = 0;
  int32_t guarded_nodes_ = 0;
  int32_t fused_levels_ = 0;
};

// Compiles `formula` against the frame layout free_var_order[i] ↦ slot i
// (later duplicates shadow earlier ones, like sequential Assignment::Bind).
// Every free element variable of the formula must appear in the order;
// unknown variables CHECK-fail here with the interpreter's "unbound
// variable" wording (the interpreter defers that failure until the atom is
// reached — the compiler front-loads it). Free set variables compile to a
// plan that CHECK-fails only if the membership atom actually executes,
// matching the interpreter exactly.
CompiledFormula CompileFormula(const FormulaRef& formula,
                               std::span<const std::string> free_var_order);

}  // namespace folearn

#endif  // FOLEARN_MC_COMPILER_H_
