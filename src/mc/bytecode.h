#ifndef FOLEARN_MC_BYTECODE_H_
#define FOLEARN_MC_BYTECODE_H_

#include <cstdint>
#include <vector>

#include "mc/compiler.h"

namespace folearn {

// Lowering of compiled tree plans (mc/compiler.h) into linear, register-
// based bytecode executed by the dispatch-loop VM in mc/vm.h.
//
// The tree engine (mc/compiled_eval.h) already fixes everything semantic —
// slot assignment, guard selection, quantifier fusion, memo slots, the
// two-lane evaluation contract — so the lowering's only job is to turn the
// per-node recursion into straight-line code: quantifiers become loops with
// backward jumps, connectives become jump-threaded short-circuit chains
// (negation compiles to nothing — the child's true/false targets swap), and
// the hot shapes collapse into superinstructions whose whole loop runs
// inside one opcode handler:
//
//  * guard+quantifier fusion — an equality guard binds a single vertex
//    (kEqBindAtoms), an edge guard scans Neighbors(x) (kNScanAtoms), a
//    colour guard scans the colour class (kCScanAtoms);
//  * atom runs — maximal consecutive runs of (possibly negated) atoms in a
//    conjunct/disjunct list fuse into one kAtomRun over the constant pool
//    of VmAtom entries, and a quantifier whose whole body is such a run
//    fuses loop + body into a single opcode (kScanAtoms, kCntAtoms, and
//    the guarded forms above).
//
// Two programs are lowered per plan, mirroring the tree engine's lanes:
//
//  * `fast` — superinstructions, guard domains, memo checks; only the
//    verdict is observable.
//  * `counting` — replays the interpreter instruction for instruction:
//    full vertex scans with one kCheckpoint (governor checkpoint + branch
//    count) per vertex per level, left-to-right short-circuit through the
//    complete child list including the guard, no memo reads or writes.
//    EvalStats counters and governor cut points come out byte-identical to
//    mc/evaluator.cc.
//
// MSO set quantifiers are not lowered: LowerPlan returns supported=false
// and the VM evaluator falls back to the tree engine (which is itself
// byte-identical to the interpreter), so verdicts never depend on which
// engine actually ran.

// Bytecode opcodes. Operand roles are per-opcode (see VmInst); `t`/`f` are
// jump targets taken on true/false outcomes, -1 when the opcode falls
// through instead.
enum class VmOp : uint8_t {
  // Terminals.
  kHaltTrue,    // return true
  kHaltFalse,   // return false
  kHaltTripped, // governor tripped: unwind (returned value is unspecified)
  kJump,        // unconditional jump to t

  // Atoms (jump-threaded: jump to t when the atom holds, else f).
  kEdge,   // E(env[a], env[b])
  kEquals, // env[a] == env[b]
  kColor,  // colour a = plan colour index b applied to env[a]

  // A fused run of consecutive atoms: constant-pool entries
  // [c, c + d). Conjunctive (default): every entry's value must equal its
  // `expect` bit, first mismatch jumps f, full pass jumps t. Disjunctive
  // (kFlagDisjunctive): first match jumps t, exhaustion jumps f.
  kAtomRun,

  // Memoized closed subformulas (fast program only).
  kMemoCheck, // memo slot a: jump t/f on a cached verdict, else fall through
  kMemoWrite, // memo slot a := b (0/1), then jump t

  // Governor checkpoint + quantifier-branch count (counting program only).
  // A trip jumps to t (the kHaltTripped instruction); otherwise falls
  // through after counting one branch.
  kCheckpoint,

  // Generic quantifier loop over all vertices: env[a] is the loop counter.
  kScanBegin, // CHECK order > 0; env[a] = 0; fall through into the body
  kScanNext,  // ++env[a]; jump t (body) while env[a] < order, else f

  // Guard-fused loops with non-atom bodies. Loop state (cursor/end) lives
  // in frame c; env[a] is the bound vertex, env[b] the pivot (or b the
  // plan colour index for the colour forms).
  kEqBind,     // env[a] = env[b]; fall through (single-vertex domain)
  kNScanBegin, // begin Neighbors(env[b]) scan; empty domain jumps f
  kNScanNext,  // advance; jump t (body) or f (exhausted)
  kCScanBegin, // begin colour-class scan of plan colour b; empty jumps f
  kCScanNext,  // advance; jump t (body) or f (exhausted)

  // Counting quantifier ∃^{≥threshold} with a non-atom body.
  kCntBegin, // CHECK order > 0; frame c: needed = b; env[a] = 0
  kCntTop,   // loop guard incl. the interpreter's early abort; exit jumps f
  kCntHit,   // --needed (body was true); falls through to kCntStep
  kCntStep,  // ++env[a]; jump t (the kCntTop)
  kCntExit,  // needed == 0 ? jump t : jump f

  // Superinstructions: quantifier loop + pure-atom body in one opcode.
  // flags carry kFlagExists and kFlagDisjunctive; atoms [c, c + d).
  kScanAtoms,   // full vertex scan (unguarded quantifier)
  kEqBindAtoms, // single-vertex domain env[b] (equality guard)
  kNScanAtoms,  // Neighbors(env[b]) scan (edge guard)
  kCScanAtoms,  // colour-class scan of plan colour b (colour guard)
  kCntAtoms,    // ∃^{≥b} with early abort
};

inline constexpr int kNumVmOps = static_cast<int>(VmOp::kCntAtoms) + 1;

// Human-readable opcode name (per-opcode dispatch counter reporting).
const char* VmOpName(VmOp op);

inline constexpr uint8_t kFlagExists = 1;      // quantifier kind
inline constexpr uint8_t kFlagDisjunctive = 2; // atom-run connective

// One constant-pool atom: an (optionally negated) literal inside a fused
// run. The literal is satisfied when the atom's value equals `expect`.
struct VmAtom {
  uint8_t kind = 0;   // 0 = edge, 1 = equals, 2 = colour
  uint8_t expect = 1; // 0 for a negated literal
  int32_t a = -1;     // slot
  int32_t b = -1;     // slot (edge/equals) or plan colour index (colour)
};

// One fixed-width instruction. Operand meaning is per-opcode (see VmOp);
// unused fields stay -1.
struct VmInst {
  VmOp op = VmOp::kHaltFalse;
  uint8_t flags = 0;
  int32_t a = -1; // slot / memo slot
  int32_t b = -1; // slot, colour index, threshold, or memo value
  int32_t c = -1; // first constant-pool atom, or loop frame index
  int32_t d = -1; // atom count
  int32_t t = -1; // true / loop-body / unconditional jump target
  int32_t f = -1; // false / exhausted target
};

// One executable lane: the instruction stream plus its constant pool.
// Execution starts at code[0]; every path ends in a kHalt*.
struct BytecodeProgram {
  std::vector<VmInst> code;
  std::vector<VmAtom> atoms;
  int32_t num_frames = 0; // loop frames the VM must allocate

  int64_t bytes() const {
    return static_cast<int64_t>(code.capacity()) * sizeof(VmInst) +
           static_cast<int64_t>(atoms.capacity()) * sizeof(VmAtom);
  }
};

// Both lanes of a lowered plan plus lowering diagnostics. Immutable after
// LowerPlan; shareable across threads and graphs exactly like the tree
// plan it was lowered from (all per-graph state lives in the VM).
struct LoweredPlan {
  // False when the plan contains MSO set quantification (or the program
  // exceeded the size cap): the VM then delegates whole evaluations to the
  // tree engine, which is differentially verified against the interpreter.
  bool supported = false;
  BytecodeProgram fast;
  BytecodeProgram counting;
  // Plan colour indices the fast program scans as guard domains. A graph
  // that cannot resolve one of these names forces the tree-engine fallback
  // (the tree engine reproduces the interpreter's lazy missing-colour
  // semantics at the guard's original position).
  std::vector<int32_t> guard_colors;
  // Diagnostics, surfaced by benches and the server's get-model stats.
  int32_t superinstructions = 0; // fused quantifier+atom-body opcodes
  int32_t fused_atom_runs = 0;   // kAtomRun + superinstruction runs

  int64_t bytes() const {
    return static_cast<int64_t>(sizeof(LoweredPlan)) + fast.bytes() +
           counting.bytes() +
           static_cast<int64_t>(guard_colors.capacity()) * sizeof(int32_t);
  }
};

// Lowers `plan` into both bytecode lanes. Pure function of the plan: safe
// to call concurrently, and the result may be cached and shared (the
// PlanCache stores it next to the tree plan).
LoweredPlan LowerPlan(const CompiledFormula& plan);

}  // namespace folearn

#endif  // FOLEARN_MC_BYTECODE_H_
