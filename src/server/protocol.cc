#include "server/protocol.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace folearn {

namespace {

void AppendU32(std::string& out, uint32_t value) {
  // Little-endian, independent of host byte order.
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
  out.push_back(static_cast<char>((value >> 16) & 0xff));
  out.push_back(static_cast<char>((value >> 24) & 0xff));
}

bool ReadU32(std::string_view bytes, size_t& pos, uint32_t& value) {
  if (bytes.size() - pos < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data() + pos);
  value = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
          (static_cast<uint32_t>(p[2]) << 16) |
          (static_cast<uint32_t>(p[3]) << 24);
  pos += 4;
  return true;
}

// Full transfer helpers: loop over short reads/writes, retry EINTR.
// Returns bytes transferred (== size on success); on a read, 0 means the
// peer closed before the first byte.
ssize_t ReadFull(int fd, char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::read(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;  // peer closed
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

Status WriteFull(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a peer that closed mid-write yields EPIPE instead of
    // killing the process with SIGPIPE.
    ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return UnavailableError(std::string("socket write failed: ") +
                              std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

}  // namespace

void Message::Set(std::string_view key, std::string_view value) {
  for (auto& [k, v] : fields) {
    if (k == key) {
      v.assign(value);
      return;
    }
  }
  fields.emplace_back(std::string(key), std::string(value));
}

const std::string* Message::Find(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Message::Get(std::string_view key,
                         std::string_view fallback) const {
  const std::string* value = Find(key);
  return value != nullptr ? *value : std::string(fallback);
}

std::string EncodeMessage(const Message& message) {
  std::string out;
  AppendU32(out, static_cast<uint32_t>(message.fields.size()));
  for (const auto& [key, value] : message.fields) {
    AppendU32(out, static_cast<uint32_t>(key.size()));
    out.append(key);
    AppendU32(out, static_cast<uint32_t>(value.size()));
    out.append(value);
  }
  return out;
}

StatusOr<Message> DecodeMessage(std::string_view payload) {
  size_t pos = 0;
  uint32_t count = 0;
  if (!ReadU32(payload, pos, count)) {
    return DataLossError("frame payload truncated: missing field count");
  }
  Message message;
  message.fields.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t key_len = 0;
    if (!ReadU32(payload, pos, key_len) ||
        payload.size() - pos < key_len) {
      return DataLossError("frame payload truncated in field key");
    }
    std::string key(payload.substr(pos, key_len));
    pos += key_len;
    uint32_t value_len = 0;
    if (!ReadU32(payload, pos, value_len) ||
        payload.size() - pos < value_len) {
      return DataLossError("frame payload truncated in field value");
    }
    message.fields.emplace_back(std::move(key),
                                std::string(payload.substr(pos, value_len)));
    pos += value_len;
  }
  if (pos != payload.size()) {
    return DataLossError("frame payload has trailing bytes");
  }
  return message;
}

Status ValidateSocketPath(const std::string& path) {
  if (path.empty()) {
    return InvalidArgumentError("socket path must not be empty");
  }
  // One byte of sun_path is the NUL terminator.
  constexpr size_t kMax = sizeof(sockaddr_un{}.sun_path) - 1;
  if (path.size() > kMax) {
    return InvalidArgumentError(
        "socket path is " + std::to_string(path.size()) +
        " bytes; unix socket paths on this platform hold at most " +
        std::to_string(kMax) +
        " (binding would silently truncate): " + path);
  }
  return OkStatus();
}

Status WriteFrame(int fd, const Message& message) {
  std::string payload = EncodeMessage(message);
  if (payload.size() > kMaxFrameBytes) {
    return InvalidArgumentError("frame exceeds kMaxFrameBytes");
  }
  std::string frame;
  frame.reserve(4 + payload.size());
  AppendU32(frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return WriteFull(fd, frame.data(), frame.size());
}

// A receive timeout (SO_RCVTIMEO armed by Client::Connect) surfaces from
// read(2) as EAGAIN/EWOULDBLOCK; it is named explicitly and is
// kUnavailable — retry-safe by the client's classification, exactly like
// a daemon that died mid-request (learn dedup absorbs the replay).
StatusOr<Message> ReadFrame(int fd) {
  char header[4];
  ssize_t n = ReadFull(fd, header, sizeof(header));
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return UnavailableError("socket read timed out (io-timeout)");
    }
    return UnavailableError(std::string("socket read failed: ") +
                            std::strerror(errno));
  }
  if (n == 0) return NotFoundError("connection closed");
  if (n < static_cast<ssize_t>(sizeof(header))) {
    return DataLossError("connection closed inside a frame header");
  }
  size_t pos = 0;
  uint32_t length = 0;
  ReadU32(std::string_view(header, sizeof(header)), pos, length);
  if (length > kMaxFrameBytes) {
    return DataLossError("frame length " + std::to_string(length) +
                         " exceeds the 64 MiB protocol limit");
  }
  std::string payload(length, '\0');
  n = ReadFull(fd, payload.data(), payload.size());
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return UnavailableError("socket read timed out (io-timeout)");
    }
    return UnavailableError(std::string("socket read failed: ") +
                            std::strerror(errno));
  }
  if (static_cast<size_t>(n) < payload.size()) {
    return DataLossError("connection closed inside a frame payload");
  }
  return DecodeMessage(payload);
}

}  // namespace folearn
