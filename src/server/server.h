#ifndef FOLEARN_SERVER_SERVER_H_
#define FOLEARN_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mc/plan_cache.h"
#include "server/protocol.h"
#include "util/governor.h"
#include "util/status.h"

namespace folearn {

// folearnd: a long-lived learn/evaluate/query server.
//
// The batch CLI pays the full setup cost — graph parsing, type-registry
// population, ball materialisation, formula compilation — on every
// invocation. The server loads a graph once per *session* and keeps the
// derived state warm across requests:
//
//   * the session's TypeRegistry (canonical TypeIds across learns),
//   * a byte-budgeted BallCache bound to the session graph,
//   * per-session CompiledEvaluators (per-graph memo tables), and
//   * a process-wide PlanCache of compiled formulas (shared across
//     sessions — plans are graph-independent).
//
// Concurrency model: one thread per connection; requests on one
// connection are sequential (frame in → frame out), requests on
// different connections run in parallel. Requests touching the same
// session serialise on the session mutex; cross-session requests share
// nothing mutable but the plan cache (internally locked).
//
// Admission control and overload behaviour: at most
// ServerOptions::max_inflight substantive requests (learn / evaluate /
// query / load-graph) execute at once. Excess requests are *shed* — they
// receive an immediate status=shed response on a healthy connection
// instead of queueing without bound or having the connection dropped.
// Per-request deadline-ms / max-work fields become a ResourceGovernor
// (clamped by the server-wide caps), so an admitted request that runs
// too long degrades to status=partial with best-so-far payload — the
// same anytime semantics as the CLI, exit-code analogue 3.
//
// Protocol operations (see protocol.h for framing):
//
//   ping           echoes "payload" back
//   load-graph     graph=<graph text> → session=<id>
//   close-session  session=<id>
//   learn          session, data=<training set text>, rank, radius, ell,
//                  threads, deadline-ms, max-work →
//                  model=<hypothesis text>, training-error, work-used
//   evaluate       session, model=<hypothesis text>,
//                  data=<training set text> → error=<fraction>
//   query          session, sentence=<FO sentence> → result=true|false
//                  (partial → result=indeterminate)
//   stats          → request/session/cache counters
//   shutdown       stops the serve loop after responding
struct ServerOptions {
  std::string socket_path;
  // Concurrent substantive requests admitted before shedding; must be >= 1.
  int max_inflight = 8;
  // Server-wide caps on per-request governor limits (kNoLimit = uncapped).
  // A request asking for more than the cap is clamped to the cap; with a
  // cap set, requests that ask for nothing still run under it.
  int64_t max_deadline_ms = kNoLimit;
  int64_t max_work = kNoLimit;
  // Byte budget of each session's BallCache (BallCache::kNoBudget = off).
  int64_t ball_cache_bytes = 32 << 20;
  // Byte budget of the shared compiled-plan cache.
  int64_t plan_cache_bytes = 8 << 20;
  // listen(2) backlog.
  int backlog = 64;
};

// Monotonic counters, snapshot under the server lock.
struct ServerStats {
  int64_t requests = 0;         // frames dispatched (all ops)
  int64_t ok = 0;
  int64_t partial = 0;
  int64_t shed = 0;
  int64_t errors = 0;
  int64_t sessions_opened = 0;
  int64_t sessions_closed = 0;
  int64_t plan_hits = 0;        // PlanCache hits/misses at snapshot time
  int64_t plan_misses = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds and listens on options.socket_path (removing a stale socket
  // file first). kUnavailable on any socket-layer failure.
  Status Start();

  // Accepts and serves connections until Shutdown() (or a "shutdown"
  // request) is observed, then drains: stops accepting, waits for every
  // connection thread, removes the socket file. Call Start() first.
  void Serve();

  // Requests a graceful stop of Serve(). Safe from any thread and from
  // signal handlers (one write(2) on a pre-opened pipe).
  void Shutdown();

  const std::string& socket_path() const { return options_.socket_path; }

  ServerStats Snapshot() const;

 private:
  struct Session;

  // Dispatches one decoded request to its handler; never throws, always
  // returns a response message.
  Message Dispatch(const Message& request);

  Message HandlePing(const Message& request);
  Message HandleLoadGraph(const Message& request);
  Message HandleCloseSession(const Message& request);
  Message HandleLearn(const Message& request);
  Message HandleEvaluate(const Message& request);
  Message HandleQuery(const Message& request);
  Message HandleStats(const Message& request);

  std::shared_ptr<Session> FindSession(uint64_t id);

  // Builds the per-request governor limits from the request fields and
  // the server caps. Returns false (with *error filled) on malformed
  // values. *governed is false when neither the request nor the server
  // imposes a limit.
  bool RequestLimits(const Message& request, GovernorLimits* limits,
                     bool* governed, std::string* error) const;

  void ConnectionLoop(int fd);
  void RecordOutcome(const Message& response);

  ServerOptions options_;
  PlanCache plan_cache_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: Shutdown() → poll wakeup
  std::atomic<bool> stopping_{false};
  std::atomic<int> inflight_{0};

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;
  ServerStats stats_;
  std::vector<std::thread> connections_;
};

}  // namespace folearn

#endif  // FOLEARN_SERVER_SERVER_H_
