#ifndef FOLEARN_SERVER_SERVER_H_
#define FOLEARN_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "mc/plan_cache.h"
#include "server/protocol.h"
#include "server/session_store.h"
#include "util/governor.h"
#include "util/mem_budget.h"
#include "util/status.h"

namespace folearn {

// folearnd: a long-lived learn/evaluate/query server.
//
// The batch CLI pays the full setup cost — graph parsing, type-registry
// population, ball materialisation, formula compilation — on every
// invocation. The server loads a graph once per *session* and keeps the
// derived state warm across requests:
//
//   * the session's TypeRegistry (canonical TypeIds across learns),
//   * a byte-budgeted BallCache bound to the session graph,
//   * per-session warm evaluators (per-graph memo tables, bytecode VM or
//     compiled tree per ServerOptions::eval_engine),
//   * a process-wide PlanCache of compiled plans and lowered bytecode
//     (shared across sessions — both are graph-independent; entries are
//     keyed by engine + options so tree and VM plans never collide), and
//   * registered *model handles*: every learn registers its hypothesis
//     under a session-scoped model-id, so evaluate/query can reference
//     the already-parsed model instead of shipping its text every time.
//
// Durability: with ServerOptions::state_dir set, every acknowledged
// session mutation (creation, learned model registration, close) is
// journaled through the checkpoint envelope *before* the response frame
// is written (src/server/session_store.h). A restarted daemon pointed at
// the same state dir recovers every journaled session and model handle;
// graphs are re-parsed lazily on first use, so restart is instant and an
// idle-evicted session re-warms transparently. Learn requests may carry a
// client-supplied "request-id": the acknowledged response is recorded in
// a bounded per-session dedup window (journaled with the session), so a
// client that retries a dropped learn — including across a daemon
// restart — gets the byte-identical original response instead of a
// duplicate side effect.
//
// Concurrency model: one thread per connection; requests on one
// connection are sequential (frame in → frame out), requests on
// different connections run in parallel. Requests touching the same
// session serialise on the session mutex; cross-session requests share
// nothing mutable but the plan cache (internally locked). A client that
// disconnects mid-request (or sends a torn frame) costs exactly its
// connection: the session, its admission slot, and the daemon survive
// (writes use MSG_NOSIGNAL, so a dead peer yields EPIPE, never SIGPIPE).
//
// Admission control and overload behaviour: at most
// ServerOptions::max_inflight substantive requests (learn / evaluate /
// query / load-graph) execute at once. Excess requests are *shed* — they
// receive an immediate status=shed response on a healthy connection
// instead of queueing without bound or having the connection dropped.
// Per-request deadline-ms / max-work fields become a ResourceGovernor
// (clamped by the server-wide caps), so an admitted request that runs
// too long degrades to status=partial with best-so-far payload — the
// same anytime semantics as the CLI, exit-code analogue 3.
//
// Protocol operations (see protocol.h for framing and retry semantics):
//
//   ping           echoes "payload"; with session=<id>, also refreshes
//                  that session's idle clock (heartbeat) and reports
//                  session-known=0|1
//   load-graph     graph=<graph text> → session=<id>
//   close-session  session=<id> (also removes the session's journal)
//   learn          session, data=<training set text>, rank, radius, ell,
//                  threads, deadline-ms, max-work, [request-id] →
//                  model=<hypothesis text>, model-id, training-error,
//                  work-used; a repeated request-id replays the original
//                  response with deduped=1
//   evaluate       session, model=<hypothesis text> | model-id=<id>,
//                  data=<training set text> → error=<fraction>
//   query          session, sentence=<FO sentence> → result=true|false
//                  (partial → result=indeterminate); or model-id=<id>,
//                  tuple=<v1 v2 …> → result=true|false (the model's
//                  classification of the tuple)
//   get-model      session, model-id → model=<hypothesis text>
//   list-models    session → models=<space-separated ids>
//   stats          → request/session/cache/journal counters
//   shutdown       stops the serve loop after responding
struct ServerOptions {
  std::string socket_path;
  // Durable session journal directory; empty = sessions are memory-only.
  std::string state_dir;
  // Concurrent substantive requests admitted before shedding; must be >= 1.
  int max_inflight = 8;
  // Server-wide caps on per-request governor limits (kNoLimit = uncapped).
  // A request asking for more than the cap is clamped to the cap; with a
  // cap set, requests that ask for nothing still run under it.
  int64_t max_deadline_ms = kNoLimit;
  int64_t max_work = kNoLimit;
  // Idle-session TTL (kNoLimit = never evict). A session untouched for
  // this long is evicted from memory: journaled sessions demote to cold
  // entries that lazily re-warm on next use, memory-only sessions close.
  int64_t session_ttl_ms = kNoLimit;
  // Byte budget of each session's BallCache (BallCache::kNoBudget = off).
  int64_t ball_cache_bytes = 32 << 20;
  // Byte budget of the shared compiled-plan cache.
  int64_t plan_cache_bytes = 8 << 20;
  // Evaluation engine for evaluate/query requests (learn goes through the
  // type-majority path and never touches it). Every engine produces
  // identical verdicts; kVm is the fast default, kCompiled the tree
  // engine, kInterpreted the reference oracle.
  EvalEngine eval_engine = EvalEngine::kVm;
  // Bound of the per-session learn dedup window (journaled with it).
  int dedup_window = 64;
  // listen(2) backlog.
  int backlog = 64;
  // Test hook (chaos harness): die with kCrashExitCode right after the
  // Nth completed journal write; < 0 disables.
  int64_t crash_at_journal_write = -1;

  // ---- Memory governance (tentpole: pressure-aware degradation). ----
  //
  // Process-wide byte budget. kNoLimit = ungoverned: the watchdog still
  // publishes RSS/accounted gauges but the tier stays green. With a
  // budget, the watchdog classifies max(RSS, accounted bytes) against it
  // every mem_watchdog_ms and the server *degrades* instead of dying:
  //   yellow  caches flip to read-through; non-mmap load-graph is shed
  //   red     + idle warm state evicted LRU-first, plan cache trimmed to
  //             a floor
  //   black   every substantive request is shed (code 75, retry-safe);
  //             heartbeats, stats, close-session and shutdown still work
  // The daemon never aborts on memory pressure.
  int64_t mem_budget_bytes = kNoLimit;
  // Per-session byte cap (child account of the process budget; kNoLimit =
  // only the process budget governs). A session whose registry + caches +
  // journal footprint exceed it has its learns cut with
  // status=partial run-status=resource-exhausted at the next governor
  // checkpoint — best-so-far results, never an abort.
  int64_t session_mem_bytes = kNoLimit;
  // Watchdog poll cadence.
  int64_t mem_watchdog_ms = 200;
  // Tier thresholds as fractions of mem_budget_bytes.
  PressureThresholds pressure;
  // Test hook: pin the pressure tier (0=green 1=yellow 2=red 3=black)
  // regardless of measured memory; < 0 disables. The pinned tier drives
  // the same degradation paths as a measured one.
  int force_tier = -1;
  // Journal compaction: a session whose journaled record would exceed
  // either cap drops its oldest model handles (never the one being
  // registered) before the atomic rewrite. kNoLimit = unbounded.
  int64_t max_session_models = kNoLimit;
  int64_t journal_compact_bytes = kNoLimit;
};

// Monotonic counters, snapshot under the stats lock.
struct ServerStats {
  int64_t requests = 0;         // frames dispatched (all ops)
  int64_t ok = 0;
  int64_t partial = 0;
  int64_t shed = 0;
  int64_t errors = 0;
  int64_t sessions_opened = 0;
  int64_t sessions_closed = 0;
  int64_t sessions_recovered = 0;  // journal entries indexed at Start()
  int64_t sessions_rewarmed = 0;   // lazy journal loads on first use
  int64_t sessions_evicted = 0;    // idle-TTL evictions (either kind)
  int64_t models_registered = 0;
  int64_t dedup_hits = 0;          // learn request-id replays
  int64_t disconnects = 0;         // connections dropped mid-request
  int64_t journal_writes = 0;      // SessionStore counter at snapshot time
  int64_t plan_hits = 0;           // PlanCache hits/misses at snapshot time
  int64_t plan_misses = 0;
  int64_t inflight = 0;            // gauge: substantive requests in flight
  // Memory governance.
  int64_t mem_shed = 0;            // requests shed for memory pressure
  int64_t tier_transitions = 0;    // watchdog tier changes
  int64_t warm_evictions = 0;      // red-tier warm-state demotions
  int64_t models_compacted = 0;    // model handles dropped by compaction
  int64_t journal_compactions = 0; // journal rewrites that dropped handles
  int64_t mem_tier = 0;            // gauge: current pressure tier
  int64_t rss_bytes = 0;           // gauge: RSS at snapshot time
  int64_t mem_used_bytes = 0;      // gauge: accounted bytes at snapshot
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Initialises the session journal (creating state_dir if needed),
  // indexes every journaled session for lazy re-warm, then binds and
  // listens on options.socket_path (removing a stale socket file first).
  // kUnavailable on any socket-layer failure; kInvalidArgument on an
  // over-long socket path; journal corruption of the meta file is
  // kDataLoss.
  Status Start();

  // Accepts and serves connections until Shutdown() (or a "shutdown"
  // request) is observed, then drains: stops accepting, waits for every
  // connection thread, removes the socket file. Call Start() first.
  // With session_ttl_ms set, also sweeps idle sessions.
  void Serve();

  // Requests a graceful stop of Serve(). Safe from any thread and from
  // signal handlers (one write(2) on a pre-opened pipe).
  void Shutdown();

  const std::string& socket_path() const { return options_.socket_path; }

  ServerStats Snapshot() const;

 private:
  struct Session;

  // One entry in the session table. `live` is the warm in-memory state;
  // a journaled slot with live == nullptr is *cold* and re-warms from the
  // store on first use. `mu` guards `live`; the idle clock is atomic so
  // heartbeats never take the slot lock.
  struct SessionSlot {
    std::mutex mu;
    std::shared_ptr<Session> live;
    bool journaled = false;
    std::atomic<int64_t> last_used_ms{0};
  };

  // Dispatches one decoded request to its handler; never throws, always
  // returns a response message.
  Message Dispatch(const Message& request);

  Message HandlePing(const Message& request);
  Message HandleLoadGraph(const Message& request);
  Message HandleCloseSession(const Message& request);
  Message HandleLearn(const Message& request);
  Message HandleEvaluate(const Message& request);
  Message HandleQuery(const Message& request);
  Message HandleGetModel(const Message& request);
  Message HandleListModels(const Message& request);
  Message HandleStats(const Message& request);

  // Resolves a session id to its warm state, lazily re-warming a cold
  // journaled slot (parse graph, reinstall models and dedup window).
  // NotFound for an id that is neither live nor journaled; kDataLoss for
  // a corrupt journal file.
  StatusOr<std::shared_ptr<Session>> AcquireSession(uint64_t id);

  std::shared_ptr<SessionSlot> FindSlot(uint64_t id);

  // Journals the session's current durable state; on failure the caller
  // must roll back the in-memory mutation and fail the request.
  Status JournalSession(uint64_t id, const Session& session);

  // Demotes (journaled) or closes (memory-only) sessions idle longer
  // than session_ttl_ms. Called from the accept loop's poll cadence.
  void EvictIdleSessions();

  // Red-tier back-pressure: demotes idle journaled sessions (LRU-first)
  // and drops memory-only sessions' warm evaluators/ball entries until
  // accounted bytes fall back under the red threshold. Never touches a
  // session a request currently holds. Data is never lost — journaled
  // sessions re-warm lazily, memory-only sessions keep graph and models.
  void EvictWarmStateUnderPressure();

  // Watchdog body: classifies pressure every mem_watchdog_ms until
  // Shutdown(). Runs for the lifetime of Serve().
  void WatchdogLoop();

  // One watchdog tick: measure, classify (or honour force_tier), publish
  // the tier, flip caches to read-through at >= yellow, run red-tier
  // reclamation. Also called once from Start() so a pinned force_tier
  // gates requests before the first tick.
  void UpdatePressure();

  PressureTier CurrentTier() const {
    return static_cast<PressureTier>(
        tier_.load(std::memory_order_relaxed));
  }

  // Attaches a freshly built session to the memory-governance tree
  // (child budget, registry/ball-cache accounts, read-through flag).
  void AttachSessionMemory(Session* session);

  // Builds the per-request governor limits from the request fields and
  // the server caps. Returns false (with *error filled) on malformed
  // values. *governed is false when neither the request nor the server
  // imposes a limit.
  bool RequestLimits(const Message& request, GovernorLimits* limits,
                     bool* governed, std::string* error) const;

  void ConnectionLoop(int fd);
  void RecordOutcome(const Message& response);
  void BumpStat(int64_t ServerStats::*counter, int64_t delta = 1);

  ServerOptions options_;
  // Root of the memory-governance tree; session budgets are children.
  // Declared before plan_cache_ and the session table so every account
  // that charges it is destroyed first.
  MemBudget mem_budget_;
  PlanCache plan_cache_;
  SessionStore store_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: Shutdown() → poll wakeup
  std::atomic<bool> stopping_{false};
  std::atomic<int> inflight_{0};

  // Published by the watchdog, read lock-free on every dispatch.
  std::atomic<int> tier_{0};
  std::atomic<bool> cache_read_through_{false};
  std::thread watchdog_;

  // Lock order: mu_ (session table) → SessionSlot::mu → Session::mu →
  // stats_mu_ / the store's internal mutex. Never the reverse.
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<SessionSlot>> sessions_;
  uint64_t next_session_id_ = 1;
  mutable std::mutex stats_mu_;
  ServerStats stats_;
  std::vector<std::thread> connections_;
};

}  // namespace folearn

#endif  // FOLEARN_SERVER_SERVER_H_
