#ifndef FOLEARN_SERVER_PROTOCOL_H_
#define FOLEARN_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace folearn {

// Wire protocol of the folearnd daemon (local stream socket).
//
// Every request and every response is one *frame*:
//
//   uint32_le payload_length | payload
//
// and the payload is a flat field list:
//
//   uint32_le field_count
//   field_count × ( uint32_le key_len | key | uint32_le value_len | value )
//
// Keys and values are uninterpreted byte strings (graph files, model
// files, and training sets travel verbatim in values — the existing text
// formats are the payload encoding, so everything on the wire can be
// replayed through the CLI). A frame larger than kMaxFrameBytes is a
// protocol error: the peer is told (status=error) and the connection is
// closed, because the stream position after an oversized frame is
// untrusted.
//
// Requests carry the operation in the "op" field; responses always carry
// "status" and "code":
//
//   status   one of ok | partial | shed | error
//   code     the CLI exit-code equivalent ("0", "3", "64", "65", "66"),
//            so clients can reuse the sysexits conventions unchanged
//
// `partial` means the request ran but a deadline/budget tripped and the
// payload is best-so-far (exit-code analogue 3). `shed` means admission
// control refused to start the work — the connection stays healthy and
// the client may retry. `error` carries a human-readable "error" field.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

// Response status values (the protocol strings).
inline constexpr char kStatusOk[] = "ok";
inline constexpr char kStatusPartial[] = "partial";
inline constexpr char kStatusShed[] = "shed";
inline constexpr char kStatusError[] = "error";

// An ordered key→value field list. Order is preserved on the wire (and in
// Encode/Decode round trips); lookups scan — messages have a handful of
// fields.
struct Message {
  std::vector<std::pair<std::string, std::string>> fields;

  // Appends, or overwrites the first existing binding of `key`.
  void Set(std::string_view key, std::string_view value);
  // First value bound to `key`, or nullptr.
  const std::string* Find(std::string_view key) const;
  std::string Get(std::string_view key, std::string_view fallback = "") const;
  bool Has(std::string_view key) const { return Find(key) != nullptr; }
};

// Payload (de)serialisation. DecodeMessage rejects truncated or
// overrunning field tables as kDataLoss.
std::string EncodeMessage(const Message& message);
StatusOr<Message> DecodeMessage(std::string_view payload);

// Validates a unix socket path against sockaddr_un::sun_path capacity.
// kInvalidArgument (CLI exit-code analogue 64) with a diagnostic naming
// the limit for empty or over-long paths; binding an over-long path would
// otherwise silently truncate it.
Status ValidateSocketPath(const std::string& path);

// Blocking frame transfer over a connected stream socket fd. Both retry
// EINTR and short transfers. ReadFrame distinguishes a clean close at a
// frame boundary (kNotFound, the normal end of a connection) from a close
// mid-frame or an oversized/undecodable frame (kDataLoss) and transport
// errors (kUnavailable).
Status WriteFrame(int fd, const Message& message);
StatusOr<Message> ReadFrame(int fd);

}  // namespace folearn

#endif  // FOLEARN_SERVER_PROTOCOL_H_
