#include "server/session_store.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string_view>

#include "server/protocol.h"
#include "util/checkpoint.h"
#include "util/governor.h"

namespace folearn {

namespace {

constexpr char kJournalVersion[] = "1";
constexpr char kSessionPrefix[] = "session-";
constexpr char kSessionSuffix[] = ".ckpt";

// Strict decimal uint64, no sign, no trailing bytes.
bool ParseU64(std::string_view text, uint64_t* value) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t result = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (result > (UINT64_MAX - digit) / 10) return false;
    result = result * 10 + digit;
  }
  *value = result;
  return true;
}

Status VersionSkew(const std::string& path, const std::string& found) {
  return DataLossError("journal '" + path + "' has journal-version '" +
                       found + "', this build reads version " +
                       kJournalVersion);
}

}  // namespace

std::string SessionStore::SessionPath(uint64_t id) const {
  return dir_ + "/" + kSessionPrefix + std::to_string(id) + kSessionSuffix;
}

std::string SessionStore::MetaPath() const { return dir_ + "/meta.ckpt"; }

void SessionStore::CountWriteLocked() {
  ++journal_writes_;
  if (crash_at_ >= 0 && journal_writes_ >= crash_at_) {
    InjectedCrash("journal-write", journal_writes_);
  }
}

Status SessionStore::Init() {
  if (!enabled()) return OkStatus();
  if (::mkdir(dir_.c_str(), 0700) != 0 && errno != EEXIST) {
    return UnavailableError("cannot create state dir '" + dir_ + "': " +
                            std::strerror(errno));
  }
  struct stat st{};
  if (::stat(dir_.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return UnavailableError("state dir '" + dir_ + "' is not a directory");
  }
  // Probe the atomic-write path once so a read-only directory fails at
  // startup with a clear diagnostic, not on the first acknowledged learn.
  const std::string probe = dir_ + "/.probe";
  Status writable = WriteFileAtomic(probe, "probe");
  if (!writable.ok()) {
    return UnavailableError("state dir '" + dir_ +
                            "' is not writable: " + writable.message());
  }
  std::remove(probe.c_str());
  return OkStatus();
}

StatusOr<std::vector<uint64_t>> SessionStore::ListSessions() const {
  std::vector<uint64_t> ids;
  if (!enabled()) return ids;
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) {
    return UnavailableError("cannot list state dir '" + dir_ + "': " +
                            std::strerror(errno));
  }
  const std::string_view prefix = kSessionPrefix;
  const std::string_view suffix = kSessionSuffix;
  while (dirent* entry = ::readdir(dir)) {
    std::string_view name = entry->d_name;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.substr(0, prefix.size()) != prefix) continue;
    if (name.substr(name.size() - suffix.size()) != suffix) continue;
    std::string_view digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    uint64_t id = 0;
    if (!ParseU64(digits, &id)) continue;
    ids.push_back(id);
  }
  ::closedir(dir);
  std::sort(ids.begin(), ids.end());
  return ids;
}

StatusOr<SessionRecord> SessionStore::Load(uint64_t id) const {
  const std::string path = SessionPath(id);
  StatusOr<std::string> payload = ReadCheckpointFile(path);
  if (!payload.ok()) return payload.status();
  StatusOr<Message> fields = DecodeMessage(*payload);
  if (!fields.ok()) {
    return DataLossError("journal '" + path +
                         "' payload: " + fields.status().message());
  }
  const std::string version = fields->Get("journal-version");
  if (version != kJournalVersion) return VersionSkew(path, version);
  SessionRecord record;
  record.graph_text = fields->Get("graph");
  record.graph_file = fields->Get("graph-file");
  if (!record.graph_file.empty()) {
    if (!ParseU64(fields->Get("graph-fingerprint"),
                  &record.graph_fingerprint)) {
      return DataLossError("journal '" + path + "' has a file-backed graph "
                           "but a malformed graph-fingerprint field");
    }
  }
  uint64_t recorded_id = 0;
  if (!ParseU64(fields->Get("session"), &recorded_id) || recorded_id != id) {
    return DataLossError("journal '" + path + "' names session '" +
                         fields->Get("session") + "', expected " +
                         std::to_string(id));
  }
  record.id = id;
  if (!ParseU64(fields->Get("next-model", "1"), &record.next_model_id)) {
    return DataLossError("journal '" + path + "' has a malformed "
                         "next-model field");
  }
  // Models and dedup entries travel as prefixed keys; field order on the
  // wire is insertion order, which preserves the dedup window's FIFO.
  for (const auto& [key, value] : fields->fields) {
    constexpr std::string_view kModelPrefix = "model-";
    constexpr std::string_view kLearnPrefix = "learn-";
    if (key.size() > kModelPrefix.size() &&
        std::string_view(key).substr(0, kModelPrefix.size()) == kModelPrefix) {
      uint64_t model_id = 0;
      if (!ParseU64(std::string_view(key).substr(kModelPrefix.size()),
                    &model_id)) {
        return DataLossError("journal '" + path + "' has a malformed model "
                             "key '" + key + "'");
      }
      record.models.emplace_back(model_id, value);
    } else if (key.size() > kLearnPrefix.size() &&
               std::string_view(key).substr(0, kLearnPrefix.size()) ==
                   kLearnPrefix) {
      record.learns.emplace_back(key.substr(kLearnPrefix.size()), value);
    }
  }
  return record;
}

Status SessionStore::Save(const SessionRecord& record) {
  if (!enabled()) return OkStatus();
  Message fields;
  fields.Set("journal-version", kJournalVersion);
  fields.Set("session", std::to_string(record.id));
  fields.Set("graph", record.graph_text);
  if (!record.graph_file.empty()) {
    fields.Set("graph-file", record.graph_file);
    fields.Set("graph-fingerprint",
               std::to_string(record.graph_fingerprint));
  }
  fields.Set("next-model", std::to_string(record.next_model_id));
  for (const auto& [model_id, text] : record.models) {
    fields.fields.emplace_back("model-" + std::to_string(model_id), text);
  }
  for (const auto& [request_id, response] : record.learns) {
    fields.fields.emplace_back("learn-" + request_id, response);
  }
  std::lock_guard<std::mutex> lock(mu_);
  Status written =
      WriteCheckpointFile(SessionPath(record.id), EncodeMessage(fields));
  if (!written.ok()) return written;
  CountWriteLocked();
  return OkStatus();
}

Status SessionStore::Remove(uint64_t id) {
  if (!enabled()) return OkStatus();
  std::lock_guard<std::mutex> lock(mu_);
  const std::string path = SessionPath(id);
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return UnavailableError("cannot remove journal '" + path + "': " +
                            std::strerror(errno));
  }
  CountWriteLocked();
  return OkStatus();
}

Status SessionStore::SaveNextSessionId(uint64_t next_session_id) {
  if (!enabled()) return OkStatus();
  Message fields;
  fields.Set("journal-version", kJournalVersion);
  fields.Set("next-session", std::to_string(next_session_id));
  std::lock_guard<std::mutex> lock(mu_);
  Status written = WriteCheckpointFile(MetaPath(), EncodeMessage(fields));
  if (!written.ok()) return written;
  CountWriteLocked();
  return OkStatus();
}

StatusOr<uint64_t> SessionStore::LoadNextSessionId() const {
  if (!enabled()) return static_cast<uint64_t>(1);
  StatusOr<std::string> payload = ReadCheckpointFile(MetaPath());
  if (!payload.ok()) {
    if (payload.status().code() == StatusCode::kNotFound) {
      return static_cast<uint64_t>(1);
    }
    return payload.status();
  }
  StatusOr<Message> fields = DecodeMessage(*payload);
  if (!fields.ok()) {
    return DataLossError("journal '" + MetaPath() +
                         "' payload: " + fields.status().message());
  }
  const std::string version = fields->Get("journal-version");
  if (version != kJournalVersion) return VersionSkew(MetaPath(), version);
  uint64_t next = 0;
  if (!ParseU64(fields->Get("next-session"), &next) || next == 0) {
    return DataLossError("journal '" + MetaPath() +
                         "' has a malformed next-session field");
  }
  return next;
}

int64_t SessionStore::journal_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_writes_;
}

}  // namespace folearn
