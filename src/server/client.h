#ifndef FOLEARN_SERVER_CLIENT_H_
#define FOLEARN_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "server/protocol.h"
#include "util/status.h"

namespace folearn {

// Blocking client for the folearnd socket protocol. One connection per
// Client; requests on one client are sequential (the protocol is strict
// request/response). Not thread-safe — use one Client per thread; the
// server multiplexes connections, not frames.
class Client {
 public:
  // Connects to a folearnd socket. kUnavailable if the daemon is not
  // listening there.
  static StatusOr<Client> Connect(const std::string& socket_path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // One request/response round trip. Transport failures (daemon died,
  // corrupt frame) are kUnavailable/kDataLoss; a response frame with
  // status=error/shed/partial is still an OK Call — interpret the
  // "status"/"code" fields (or use ResponseExitCode below).
  StatusOr<Message> Call(const Message& request);

  // Convenience wrappers over Call.
  Status Ping();
  StatusOr<uint64_t> LoadGraph(const std::string& graph_text);
  Status CloseSession(uint64_t session);
  Status RequestShutdown();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

// Maps a response's status/code fields onto the CLI exit-code
// convention: ok → 0, partial/shed → 3, error → its "code" field
// (64/65/66, defaulting to 1 when absent or unparsable).
int ResponseExitCode(const Message& response);

}  // namespace folearn

#endif  // FOLEARN_SERVER_CLIENT_H_
