#ifndef FOLEARN_SERVER_CLIENT_H_
#define FOLEARN_SERVER_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "server/protocol.h"
#include "util/rng.h"
#include "util/status.h"

namespace folearn {

// Blocking client for the folearnd socket protocol. One connection per
// Client; requests on one client are sequential (the protocol is strict
// request/response). Not thread-safe — use one Client per thread; the
// server multiplexes connections, not frames.
class Client {
 public:
  // Connects to a folearnd socket. kUnavailable if the daemon is not
  // listening there. With io_timeout_ms > 0 every socket receive (and
  // send) is bounded by SO_RCVTIMEO/SO_SNDTIMEO: a server that accepted
  // the connection but never answers turns into a retry-safe kUnavailable
  // ("socket read timed out") instead of blocking the caller forever.
  // 0 = no timeout (the historical behaviour).
  static StatusOr<Client> Connect(const std::string& socket_path,
                                  int64_t io_timeout_ms = 0);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // One request/response round trip. Transport failures (daemon died,
  // corrupt frame) are kUnavailable/kDataLoss; a response frame with
  // status=error/shed/partial is still an OK Call — interpret the
  // "status"/"code" fields (or use ResponseExitCode below).
  StatusOr<Message> Call(const Message& request);

  // Convenience wrappers over Call.
  Status Ping();
  StatusOr<uint64_t> LoadGraph(const std::string& graph_text);
  Status CloseSession(uint64_t session);
  Status RequestShutdown();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

// Maps a response's status/code fields onto the CLI exit-code
// convention: ok → 0, partial/shed → 3, error → its "code" field
// (64/65/66, defaulting to 1 when absent or unparsable).
int ResponseExitCode(const Message& response);

// Retry classification.
//
// Retry-safe — nothing committed, or the commit is idempotent to repeat:
//   * a status=shed response (admission control refused before any work),
//   * a kUnavailable transport failure (daemon down, restarting, or the
//     connection died mid-request — learns carry a request-id, so the
//     server's dedup window absorbs the replay of a request that did
//     commit before the connection died).
// Terminal — retrying cannot help, or could mask corruption:
//   * a status=error response (the request itself is at fault),
//   * kDataLoss (torn or corrupt frame: the stream is untrusted),
//   * kInvalidArgument (bad socket path or request).
bool IsRetryableTransportFailure(const Status& status);
bool IsRetryableResponse(const Message& response);

struct RetryPolicy {
  // Additional attempts after the first; 0 = plain single-shot Call.
  int max_retries = 0;
  // Base backoff; attempt n sleeps backoff_ms·2ⁿ, capped, plus jitter
  // uniform in [0, current backoff) to de-synchronise retrying clients.
  int64_t backoff_ms = 50;
  int64_t max_backoff_ms = 2000;
  // Re-dial the socket after a transport failure (daemon restart).
  bool reconnect = true;
  // Per-receive socket timeout for every dialed connection (see
  // Client::Connect); 0 = wait forever. A timeout is a retry-safe
  // transport failure, so it composes with max_retries: a hung server
  // costs io_timeout_ms per attempt instead of hanging the workload.
  int64_t io_timeout_ms = 0;
  // Jitter seed — deterministic for reproducible tests.
  uint64_t jitter_seed = 0x5eed5eed;
};

// A Client plus a retry loop: transparently re-dials and re-sends through
// shed responses and daemon restarts, with capped exponential backoff and
// jitter. Terminal failures surface immediately. Like Client, one
// instance per thread.
class RetryingClient {
 public:
  RetryingClient(std::string socket_path, RetryPolicy policy);

  // Round trip with retries. Returns the final response (which may still
  // be shed, if the budget ran out) or the last transport failure.
  StatusOr<Message> Call(const Message& request);

  // Attempts spent on the last Call (1 = no retries were needed).
  int last_attempts() const { return last_attempts_; }

 private:
  Status EnsureConnected();

  std::string socket_path_;
  RetryPolicy policy_;
  std::optional<Client> client_;
  Rng rng_;
  int last_attempts_ = 0;
};

}  // namespace folearn

#endif  // FOLEARN_SERVER_CLIENT_H_
