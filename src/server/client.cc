#include "server/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace folearn {

StatusOr<Client> Client::Connect(const std::string& socket_path,
                                 int64_t io_timeout_ms) {
  Status path_ok = ValidateSocketPath(socket_path);
  if (!path_ok.ok()) return path_ok;
  if (io_timeout_ms < 0) {
    return InvalidArgumentError("io-timeout-ms must be >= 0");
  }
  sockaddr_un addr{};
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  if (io_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(io_timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((io_timeout_ms % 1000) * 1000);
    // Receive timeout turns a hung server into a retry-safe kUnavailable
    // (protocol.cc names the EAGAIN); the send timeout bounds the
    // symmetric hazard of a peer that stops draining its socket buffer.
    if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
      int saved = errno;
      ::close(fd);
      return UnavailableError(std::string("setsockopt failed: ") +
                              std::strerror(saved));
    }
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    return UnavailableError("cannot connect to " + socket_path + ": " +
                            std::strerror(saved));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<Message> Client::Call(const Message& request) {
  if (fd_ < 0) return UnavailableError("client is not connected");
  Status written = WriteFrame(fd_, request);
  if (!written.ok()) return written;
  StatusOr<Message> response = ReadFrame(fd_);
  if (!response.ok() &&
      response.status().code() == StatusCode::kNotFound) {
    // A clean close where a response was due means the daemon went away
    // mid-request — surface it as a transport failure, not "no message".
    return UnavailableError("server closed the connection mid-request");
  }
  return response;
}

Status Client::Ping() {
  Message request;
  request.Set("op", "ping");
  StatusOr<Message> response = Call(request);
  if (!response.ok()) return response.status();
  if (response->Get("status") != kStatusOk) {
    return UnavailableError("ping failed: " + response->Get("error"));
  }
  return OkStatus();
}

StatusOr<uint64_t> Client::LoadGraph(const std::string& graph_text) {
  Message request;
  request.Set("op", "load-graph");
  request.Set("graph", graph_text);
  StatusOr<Message> response = Call(request);
  if (!response.ok()) return response.status();
  if (response->Get("status") != kStatusOk) {
    return Status(StatusCode::kInvalidArgument,
                  "load-graph failed: " + response->Get("error"));
  }
  try {
    return static_cast<uint64_t>(std::stoull(response->Get("session")));
  } catch (const std::exception&) {
    return DataLossError("load-graph response carries no session id");
  }
}

Status Client::CloseSession(uint64_t session) {
  Message request;
  request.Set("op", "close-session");
  request.Set("session", std::to_string(session));
  StatusOr<Message> response = Call(request);
  if (!response.ok()) return response.status();
  if (response->Get("status") != kStatusOk) {
    return InvalidArgumentError("close-session failed: " +
                                response->Get("error"));
  }
  return OkStatus();
}

Status Client::RequestShutdown() {
  Message request;
  request.Set("op", "shutdown");
  StatusOr<Message> response = Call(request);
  if (!response.ok()) return response.status();
  return OkStatus();
}

bool IsRetryableTransportFailure(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

bool IsRetryableResponse(const Message& response) {
  return response.Get("status") == kStatusShed;
}

RetryingClient::RetryingClient(std::string socket_path, RetryPolicy policy)
    : socket_path_(std::move(socket_path)),
      policy_(policy),
      rng_(policy.jitter_seed) {}

Status RetryingClient::EnsureConnected() {
  if (client_.has_value()) return OkStatus();
  StatusOr<Client> connected =
      Client::Connect(socket_path_, policy_.io_timeout_ms);
  if (!connected.ok()) return connected.status();
  client_.emplace(*std::move(connected));
  return OkStatus();
}

StatusOr<Message> RetryingClient::Call(const Message& request) {
  Status last = OkStatus();
  last_attempts_ = 0;
  for (int attempt = 0; attempt <= policy_.max_retries; ++attempt) {
    if (attempt > 0) {
      // Capped exponential backoff with uniform jitter on top.
      int64_t backoff = policy_.backoff_ms;
      for (int i = 1; i < attempt; ++i) {
        backoff = std::min(backoff * 2, policy_.max_backoff_ms);
      }
      backoff = std::min(backoff, policy_.max_backoff_ms);
      if (backoff > 0) backoff += rng_.UniformInt(0, backoff - 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    ++last_attempts_;
    Status connected = EnsureConnected();
    if (!connected.ok()) {
      last = connected;
      if (!IsRetryableTransportFailure(last) || !policy_.reconnect) {
        return last;
      }
      continue;
    }
    StatusOr<Message> response = client_->Call(request);
    if (response.ok()) {
      if (!IsRetryableResponse(*response) ||
          attempt == policy_.max_retries) {
        return response;
      }
      last = UnavailableError("request shed by the server");
      continue;  // shed: same healthy connection, just backed off
    }
    last = response.status();
    if (!IsRetryableTransportFailure(last)) return last;
    // Transport died mid-request: the connection is unusable either way;
    // drop it, and re-dial on the next attempt if the policy allows.
    client_.reset();
    if (!policy_.reconnect) return last;
  }
  return last;
}

int ResponseExitCode(const Message& response) {
  const std::string status = response.Get("status");
  if (status == kStatusOk) return 0;
  if (status == kStatusPartial || status == kStatusShed) return 3;
  try {
    size_t pos = 0;
    int code = std::stoi(response.Get("code", "1"), &pos);
    return code > 0 ? code : 1;
  } catch (const std::exception&) {
    return 1;
  }
}

}  // namespace folearn
