#include "server/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace folearn {

StatusOr<Client> Client::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("bad socket path: '" + socket_path + "'");
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    return UnavailableError("cannot connect to " + socket_path + ": " +
                            std::strerror(saved));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<Message> Client::Call(const Message& request) {
  if (fd_ < 0) return UnavailableError("client is not connected");
  Status written = WriteFrame(fd_, request);
  if (!written.ok()) return written;
  StatusOr<Message> response = ReadFrame(fd_);
  if (!response.ok() &&
      response.status().code() == StatusCode::kNotFound) {
    // A clean close where a response was due means the daemon went away
    // mid-request — surface it as a transport failure, not "no message".
    return UnavailableError("server closed the connection mid-request");
  }
  return response;
}

Status Client::Ping() {
  Message request;
  request.Set("op", "ping");
  StatusOr<Message> response = Call(request);
  if (!response.ok()) return response.status();
  if (response->Get("status") != kStatusOk) {
    return UnavailableError("ping failed: " + response->Get("error"));
  }
  return OkStatus();
}

StatusOr<uint64_t> Client::LoadGraph(const std::string& graph_text) {
  Message request;
  request.Set("op", "load-graph");
  request.Set("graph", graph_text);
  StatusOr<Message> response = Call(request);
  if (!response.ok()) return response.status();
  if (response->Get("status") != kStatusOk) {
    return Status(StatusCode::kInvalidArgument,
                  "load-graph failed: " + response->Get("error"));
  }
  try {
    return static_cast<uint64_t>(std::stoull(response->Get("session")));
  } catch (const std::exception&) {
    return DataLossError("load-graph response carries no session id");
  }
}

Status Client::CloseSession(uint64_t session) {
  Message request;
  request.Set("op", "close-session");
  request.Set("session", std::to_string(session));
  StatusOr<Message> response = Call(request);
  if (!response.ok()) return response.status();
  if (response->Get("status") != kStatusOk) {
    return InvalidArgumentError("close-session failed: " +
                                response->Get("error"));
  }
  return OkStatus();
}

Status Client::RequestShutdown() {
  Message request;
  request.Set("op", "shutdown");
  StatusOr<Message> response = Call(request);
  if (!response.ok()) return response.status();
  return OkStatus();
}

int ResponseExitCode(const Message& response) {
  const std::string status = response.Get("status");
  if (status == kStatusOk) return 0;
  if (status == kStatusPartial || status == kStatusShed) return 3;
  try {
    size_t pos = 0;
    int code = std::stoi(response.Get("code", "1"), &pos);
    return code > 0 ? code : 1;
  } catch (const std::exception&) {
    return 1;
  }
}

}  // namespace folearn
