#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "fo/parser.h"
#include "graph/algorithms.h"
#include "graph/io.h"
#include "learn/erm.h"
#include "learn/hypothesis.h"
#include "learn/model_io.h"
#include "mc/compiled_eval.h"
#include "types/type.h"

namespace folearn {

namespace {

// Substantive operations count against max_inflight; control-plane ops
// (ping, stats, close-session, shutdown) are always admitted so a loaded
// server stays observable and stoppable.
bool IsSubstantive(const std::string& op) {
  return op == "learn" || op == "evaluate" || op == "query" ||
         op == "load-graph";
}

Message MakeError(int code, std::string_view message) {
  Message response;
  response.Set("status", kStatusError);
  response.Set("code", std::to_string(code));
  response.Set("error", message);
  return response;
}

Message MakeErrorFromStatus(const Status& status) {
  return MakeError(StatusExitCode(status), status.message());
}

Message MakeOk() {
  Message response;
  response.Set("status", kStatusOk);
  response.Set("code", "0");
  return response;
}

// Parses a decimal int64 request field. Returns false (with *error named
// after the field) on trailing garbage, overflow, or non-numeric input —
// the protocol mirror of the CLI's exit-64 flag validation.
bool ParseInt64Field(const Message& request, const char* key,
                     int64_t fallback, int64_t* value, std::string* error) {
  const std::string* raw = request.Find(key);
  if (raw == nullptr) {
    *value = fallback;
    return true;
  }
  try {
    size_t pos = 0;
    *value = std::stoll(*raw, &pos);
    if (pos != raw->size()) throw std::invalid_argument(*raw);
  } catch (const std::exception&) {
    *error = "invalid value '" + *raw + "' for field '" + key + "'";
    return false;
  }
  return true;
}

bool ParseIntField(const Message& request, const char* key, int fallback,
                   int* value, std::string* error) {
  int64_t wide = 0;
  if (!ParseInt64Field(request, key, fallback, &wide, error)) return false;
  if (wide < INT32_MIN || wide > INT32_MAX) {
    *error = "invalid value '" + request.Get(key) + "' for field '" + key +
             "' (out of int range)";
    return false;
  }
  *value = static_cast<int>(wide);
  return true;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

// Every tuple entry must be a vertex of `graph`: the training set and the
// model file are external input and must not reach the library's CHECKs.
Status ValidateTuples(const Graph& graph, const TrainingSet& examples) {
  for (const LabeledExample& example : examples) {
    for (Vertex v : example.tuple) {
      if (!graph.IsValidVertex(v)) {
        return DataLossError("example names vertex " + std::to_string(v) +
                             " outside the session graph (order " +
                             std::to_string(graph.order()) + ")");
      }
    }
  }
  return OkStatus();
}

}  // namespace

// Per-session state kept warm across requests. All fields are guarded by
// `mu` — requests touching one session serialise; different sessions run
// in parallel.
struct Server::Session {
  explicit Session(Graph g, int64_t ball_cache_bytes)
      : graph(std::move(g)),
        registry(std::make_shared<TypeRegistry>(
            Vocabulary(graph.vocabulary()))),
        ball_cache(graph, ball_cache_bytes) {}

  Graph graph;
  std::shared_ptr<TypeRegistry> registry;
  BallCache ball_cache;

  // Warm per-graph evaluators, keyed by plan identity (the plan cache
  // hands out stable shared_ptrs; a recompiled plan gets a fresh
  // evaluator). Holding the plan alongside keeps it alive even if the
  // plan cache evicts it. Bounded: cleared wholesale when it outgrows
  // kMaxWarmEvaluators — per-graph memos are cheap to rebuild.
  static constexpr size_t kMaxWarmEvaluators = 64;
  std::unordered_map<const CompiledFormula*,
                     std::pair<std::shared_ptr<const CompiledFormula>,
                               std::unique_ptr<CompiledEvaluator>>>
      evaluators;

  CompiledEvaluator* WarmEvaluator(
      std::shared_ptr<const CompiledFormula> plan,
      const EvalOptions& options) {
    auto it = evaluators.find(plan.get());
    if (it != evaluators.end()) return it->second.second.get();
    if (evaluators.size() >= kMaxWarmEvaluators) evaluators.clear();
    const CompiledFormula* key = plan.get();
    auto evaluator =
        std::make_unique<CompiledEvaluator>(*plan, graph, options);
    CompiledEvaluator* raw = evaluator.get();
    evaluators.emplace(
        key, std::make_pair(std::move(plan), std::move(evaluator)));
    return raw;
  }

  std::mutex mu;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), plan_cache_(options_.plan_cache_bytes) {
  FOLEARN_CHECK_GE(options_.max_inflight, 1)
      << "max_inflight must admit at least one request";
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

Status Server::Start() {
  if (options_.socket_path.empty()) {
    return InvalidArgumentError("socket path must not be empty");
  }
  sockaddr_un addr{};
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path too long: " +
                                options_.socket_path);
  }
  if (::pipe(wake_pipe_) != 0) {
    return UnavailableError(std::string("pipe failed: ") +
                            std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return UnavailableError(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a past run
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return UnavailableError("bind failed on " + options_.socket_path + ": " +
                            std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return UnavailableError(std::string("listen failed: ") +
                            std::strerror(errno));
  }
  return OkStatus();
}

void Server::Shutdown() {
  stopping_.store(true, std::memory_order_release);
  // Wake every poller. The byte is never drained, so the pipe stays
  // readable and all current and future polls return immediately. One
  // write(2) — async-signal-safe.
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::Serve() {
  FOLEARN_CHECK_GE(listen_fd_, 0) << "Serve() before Start()";
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        stopping_.load(std::memory_order_acquire)) {
      break;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(mu_);
    connections_.emplace_back([this, fd] { ConnectionLoop(fd); });
  }
  // Drain: no new connections; unblock in-flight reads; join everything.
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  for (std::thread& thread : connections) thread.join();
}

void Server::ConnectionLoop(int fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{fd, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // graceful stop
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    StatusOr<Message> request = ReadFrame(fd);
    if (!request.ok()) {
      // Clean close (kNotFound) ends the connection silently; a corrupt
      // frame gets one last diagnostic — the stream position is
      // untrusted afterwards, so the connection closes either way.
      if (request.status().code() == StatusCode::kDataLoss) {
        (void)WriteFrame(fd, MakeErrorFromStatus(request.status()));
      }
      break;
    }
    const bool is_shutdown = request->Get("op") == "shutdown";
    Message response = Dispatch(*request);
    if (!WriteFrame(fd, response).ok()) break;
    if (is_shutdown) {
      Shutdown();
      break;
    }
  }
  ::close(fd);
}

Message Server::Dispatch(const Message& request) {
  const std::string op = request.Get("op");
  const bool substantive = IsSubstantive(op);
  if (substantive) {
    int current = inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (current > options_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      Message response;
      response.Set("status", kStatusShed);
      response.Set("code", "3");
      response.Set("error",
                   "server at max-inflight capacity; retry the request");
      RecordOutcome(response);
      return response;
    }
  }
  Message response;
  if (op == "ping") {
    response = HandlePing(request);
  } else if (op == "load-graph") {
    response = HandleLoadGraph(request);
  } else if (op == "close-session") {
    response = HandleCloseSession(request);
  } else if (op == "learn") {
    response = HandleLearn(request);
  } else if (op == "evaluate") {
    response = HandleEvaluate(request);
  } else if (op == "query") {
    response = HandleQuery(request);
  } else if (op == "stats") {
    response = HandleStats(request);
  } else if (op == "shutdown") {
    response = MakeOk();
  } else {
    response = MakeError(kExitUsage, "unknown op '" + op + "'");
  }
  if (substantive) inflight_.fetch_sub(1, std::memory_order_acq_rel);
  RecordOutcome(response);
  return response;
}

void Server::RecordOutcome(const Message& response) {
  const std::string status = response.Get("status");
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.requests;
  if (status == kStatusOk) {
    ++stats_.ok;
  } else if (status == kStatusPartial) {
    ++stats_.partial;
  } else if (status == kStatusShed) {
    ++stats_.shed;
  } else {
    ++stats_.errors;
  }
}

Message Server::HandlePing(const Message& request) {
  Message response = MakeOk();
  response.Set("payload", request.Get("payload"));
  return response;
}

Message Server::HandleLoadGraph(const Message& request) {
  const std::string* text = request.Find("graph");
  if (text == nullptr) {
    return MakeError(kExitUsage, "load-graph requires a 'graph' field");
  }
  StatusOr<Graph> graph = ParseGraph(*text);
  if (!graph.ok()) return MakeErrorFromStatus(graph.status());
  auto session = std::make_shared<Session>(*std::move(graph),
                                           options_.ball_cache_bytes);
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_session_id_++;
    sessions_.emplace(id, session);
    ++stats_.sessions_opened;
  }
  Message response = MakeOk();
  response.Set("session", std::to_string(id));
  response.Set("order", std::to_string(session->graph.order()));
  return response;
}

std::shared_ptr<Server::Session> Server::FindSession(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

namespace {

// Resolves the "session" field to an id; false + error response on a
// missing or malformed field.
bool ParseSessionId(const Message& request, uint64_t* id,
                    Message* error_response) {
  const std::string* raw = request.Find("session");
  if (raw == nullptr) {
    *error_response =
        MakeError(kExitUsage, "request requires a 'session' field");
    return false;
  }
  try {
    size_t pos = 0;
    unsigned long long wide = std::stoull(*raw, &pos);
    if (pos != raw->size()) throw std::invalid_argument(*raw);
    *id = wide;
  } catch (const std::exception&) {
    *error_response =
        MakeError(kExitUsage, "invalid session id '" + *raw + "'");
    return false;
  }
  return true;
}

}  // namespace

Message Server::HandleCloseSession(const Message& request) {
  uint64_t id = 0;
  Message error;
  if (!ParseSessionId(request, &id, &error)) return error;
  std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(id) == 0) {
    return MakeError(kExitUsage, "unknown session " + std::to_string(id));
  }
  ++stats_.sessions_closed;
  return MakeOk();
}

bool Server::RequestLimits(const Message& request, GovernorLimits* limits,
                           bool* governed, std::string* error) const {
  int64_t deadline_ms = kNoLimit;
  int64_t max_work = kNoLimit;
  if (!ParseInt64Field(request, "deadline-ms", kNoLimit, &deadline_ms,
                       error) ||
      !ParseInt64Field(request, "max-work", kNoLimit, &max_work, error)) {
    return false;
  }
  if (deadline_ms != kNoLimit && deadline_ms < 0) {
    *error = "field 'deadline-ms' must be >= 0";
    return false;
  }
  if (max_work != kNoLimit && max_work <= 0) {
    *error = "field 'max-work' must be positive";
    return false;
  }
  // Server caps clamp the request; with a cap set, a request asking for
  // nothing still runs capped — the caps are the operator's protection
  // against a tenant monopolising the daemon.
  if (options_.max_deadline_ms != kNoLimit &&
      (deadline_ms == kNoLimit || deadline_ms > options_.max_deadline_ms)) {
    deadline_ms = options_.max_deadline_ms;
  }
  if (options_.max_work != kNoLimit &&
      (max_work == kNoLimit || max_work > options_.max_work)) {
    max_work = options_.max_work;
  }
  limits->deadline_ms = deadline_ms;
  limits->max_work = max_work;
  *governed = deadline_ms != kNoLimit || max_work != kNoLimit;
  return true;
}

Message Server::HandleLearn(const Message& request) {
  uint64_t id = 0;
  Message error;
  if (!ParseSessionId(request, &id, &error)) return error;
  std::shared_ptr<Session> session = FindSession(id);
  if (session == nullptr) {
    return MakeError(kExitUsage, "unknown session " + std::to_string(id));
  }
  const std::string* data_text = request.Find("data");
  if (data_text == nullptr) {
    return MakeError(kExitUsage, "learn requires a 'data' field");
  }
  StatusOr<TrainingSet> data = ParseTrainingSet(*data_text);
  if (!data.ok()) return MakeErrorFromStatus(data.status());

  ErmOptions options;
  std::string field_error;
  int ell = 0;
  if (!ParseIntField(request, "rank", 1, &options.rank, &field_error) ||
      !ParseIntField(request, "radius", -1, &options.radius, &field_error) ||
      !ParseIntField(request, "ell", 0, &ell, &field_error) ||
      !ParseIntField(request, "threads", 1, &options.threads,
                     &field_error)) {
    return MakeError(kExitUsage, field_error);
  }
  if (options.rank < 0) {
    return MakeError(kExitUsage, "field 'rank' must be >= 0");
  }
  if (options.radius < -1) {
    return MakeError(kExitUsage,
                     "field 'radius' must be >= 0 (or -1 for automatic)");
  }
  if (ell < 0) return MakeError(kExitUsage, "field 'ell' must be >= 0");
  if (options.threads < 0) {
    return MakeError(kExitUsage, "field 'threads' must be >= 0");
  }
  const std::string learner = request.Get("learner", "brute");
  if (learner != "brute") {
    return MakeError(kExitUsage,
                     "unsupported learner '" + learner +
                         "' (the server implements 'brute')");
  }
  GovernorLimits limits;
  bool governed = false;
  if (!RequestLimits(request, &limits, &governed, &field_error)) {
    return MakeError(kExitUsage, field_error);
  }

  std::lock_guard<std::mutex> session_lock(session->mu);
  Status tuples_ok = ValidateTuples(session->graph, *data);
  if (!tuples_ok.ok()) return MakeErrorFromStatus(tuples_ok);

  std::optional<ResourceGovernor> governor;
  if (governed) governor.emplace(limits);
  options.governor = governor.has_value() ? &*governor : nullptr;
  // The session ball cache is single-threaded state; the library only
  // consults it on single-threaded scans anyway (parallel sweeps build
  // per-worker caches), so it is attached exactly then.
  if (options.threads == 1) options.ball_cache = &session->ball_cache;
  options.cache_bytes = options_.ball_cache_bytes;

  ErmResult result =
      BruteForceErm(session->graph, *data, ell, options, session->registry);

  Message response = MakeOk();
  if (IsInterrupted(result.status)) {
    response.Set("status", kStatusPartial);
    response.Set("code", "3");
    response.Set("run-status", RunStatusName(result.status));
  }
  response.Set("model", HypothesisToText(result.hypothesis.ToExplicit()));
  response.Set("training-error", FormatDouble(result.training_error));
  response.Set("types-seen", std::to_string(result.distinct_types_seen));
  response.Set("tuples-tried",
               std::to_string(result.parameter_tuples_tried));
  if (governor.has_value()) {
    response.Set("work-used", std::to_string(governor->work_used()));
  }
  return response;
}

Message Server::HandleEvaluate(const Message& request) {
  uint64_t id = 0;
  Message error;
  if (!ParseSessionId(request, &id, &error)) return error;
  std::shared_ptr<Session> session = FindSession(id);
  if (session == nullptr) {
    return MakeError(kExitUsage, "unknown session " + std::to_string(id));
  }
  const std::string* model_text = request.Find("model");
  const std::string* data_text = request.Find("data");
  if (model_text == nullptr || data_text == nullptr) {
    return MakeError(kExitUsage,
                     "evaluate requires 'model' and 'data' fields");
  }
  StatusOr<Hypothesis> hypothesis = ParseHypothesis(*model_text);
  if (!hypothesis.ok()) return MakeErrorFromStatus(hypothesis.status());
  StatusOr<TrainingSet> data = ParseTrainingSet(*data_text);
  if (!data.ok()) return MakeErrorFromStatus(data.status());
  GovernorLimits limits;
  bool governed = false;
  std::string field_error;
  if (!RequestLimits(request, &limits, &governed, &field_error)) {
    return MakeError(kExitUsage, field_error);
  }

  std::lock_guard<std::mutex> session_lock(session->mu);
  const Graph& graph = session->graph;
  Status tuples_ok = ValidateTuples(graph, *data);
  if (!tuples_ok.ok()) return MakeErrorFromStatus(tuples_ok);
  for (Vertex w : hypothesis->parameters) {
    if (!graph.IsValidVertex(w)) {
      return MakeErrorFromStatus(DataLossError(
          "model parameter vertex " + std::to_string(w) +
          " outside the session graph"));
    }
  }
  const int k = hypothesis->k();
  for (const LabeledExample& example : *data) {
    if (static_cast<int>(example.tuple.size()) != k) {
      return MakeErrorFromStatus(DataLossError(
          "example arity " + std::to_string(example.tuple.size()) +
          " does not match the model's k=" + std::to_string(k)));
    }
  }

  const std::vector<std::string> frame = hypothesis->AllVars();
  std::shared_ptr<const CompiledFormula> plan =
      plan_cache_.GetOrCompile(hypothesis->formula, frame);

  EvalOptions eval_options;
  eval_options.missing_color_is_false = true;  // external model files
  std::optional<ResourceGovernor> governor;
  if (governed) {
    governor.emplace(limits);
    eval_options.governor = &*governor;
  }
  // Warm path: the ungoverned evaluator (and its per-graph memo) is kept
  // on the session. A governed request runs the mirrored slow lane on a
  // throwaway evaluator so the warm one never observes a governor trip.
  std::optional<CompiledEvaluator> scratch;
  CompiledEvaluator* evaluator;
  if (governed) {
    scratch.emplace(*plan, graph, eval_options);
    evaluator = &*scratch;
  } else {
    evaluator = session->WarmEvaluator(plan, eval_options);
  }

  std::vector<Vertex> env(frame.size());
  int64_t wrong = 0;
  int64_t seen = 0;
  for (const LabeledExample& example : *data) {
    std::copy(example.tuple.begin(), example.tuple.end(), env.begin());
    std::copy(hypothesis->parameters.begin(), hypothesis->parameters.end(),
              env.begin() + k);
    bool verdict = evaluator->Eval(env);
    if (governor.has_value() && governor->Interrupted()) break;
    if (verdict != example.label) ++wrong;
    ++seen;
  }

  Message response = MakeOk();
  if (governor.has_value() && governor->Interrupted()) {
    response.Set("status", kStatusPartial);
    response.Set("code", "3");
    response.Set("run-status", RunStatusName(governor->status()));
  }
  const double error_rate =
      seen == 0 ? 1.0 : static_cast<double>(wrong) / static_cast<double>(seen);
  response.Set("error", FormatDouble(error_rate));
  response.Set("examples-seen", std::to_string(seen));
  if (governor.has_value()) {
    response.Set("work-used", std::to_string(governor->work_used()));
  }
  return response;
}

Message Server::HandleQuery(const Message& request) {
  uint64_t id = 0;
  Message error;
  if (!ParseSessionId(request, &id, &error)) return error;
  std::shared_ptr<Session> session = FindSession(id);
  if (session == nullptr) {
    return MakeError(kExitUsage, "unknown session " + std::to_string(id));
  }
  const std::string* sentence_text = request.Find("sentence");
  if (sentence_text == nullptr) {
    return MakeError(kExitUsage, "query requires a 'sentence' field");
  }
  std::string parse_error;
  std::optional<FormulaRef> sentence =
      ParseFormula(*sentence_text, &parse_error);
  if (!sentence.has_value()) {
    return MakeError(kExitDataError, "cannot parse sentence: " + parse_error);
  }
  if (!(*sentence)->free_variables().empty()) {
    return MakeError(kExitDataError,
                     "query requires a sentence; '" +
                         (*sentence)->free_variables().front() +
                         "' occurs free");
  }
  GovernorLimits limits;
  bool governed = false;
  std::string field_error;
  if (!RequestLimits(request, &limits, &governed, &field_error)) {
    return MakeError(kExitUsage, field_error);
  }

  std::shared_ptr<const CompiledFormula> plan =
      plan_cache_.GetOrCompile(*sentence, {});

  std::lock_guard<std::mutex> session_lock(session->mu);
  EvalOptions eval_options;
  eval_options.missing_color_is_false = true;
  std::optional<ResourceGovernor> governor;
  if (governed) {
    governor.emplace(limits);
    eval_options.governor = &*governor;
  }
  std::optional<CompiledEvaluator> scratch;
  CompiledEvaluator* evaluator;
  if (governed) {
    scratch.emplace(*plan, session->graph, eval_options);
    evaluator = &*scratch;
  } else {
    // Warm path: a repeated sentence is a per-graph memo hit — the
    // evaluator answers without touching the graph again.
    evaluator = session->WarmEvaluator(plan, eval_options);
  }
  bool verdict = evaluator->Eval({});

  Message response = MakeOk();
  if (governor.has_value() && governor->Interrupted()) {
    response.Set("status", kStatusPartial);
    response.Set("code", "3");
    response.Set("run-status", RunStatusName(governor->status()));
    response.Set("result", "indeterminate");
  } else {
    response.Set("result", verdict ? "true" : "false");
  }
  if (governor.has_value()) {
    response.Set("work-used", std::to_string(governor->work_used()));
  }
  return response;
}

Message Server::HandleStats(const Message& request) {
  (void)request;
  ServerStats stats = Snapshot();
  Message response = MakeOk();
  response.Set("requests", std::to_string(stats.requests));
  response.Set("ok", std::to_string(stats.ok));
  response.Set("partial", std::to_string(stats.partial));
  response.Set("shed", std::to_string(stats.shed));
  response.Set("errors", std::to_string(stats.errors));
  response.Set("sessions-opened", std::to_string(stats.sessions_opened));
  response.Set("sessions-closed", std::to_string(stats.sessions_closed));
  response.Set("plan-hits", std::to_string(stats.plan_hits));
  response.Set("plan-misses", std::to_string(stats.plan_misses));
  response.Set("plan-bytes", std::to_string(plan_cache_.bytes()));
  return response;
}

ServerStats Server::Snapshot() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats = stats_;
  }
  stats.plan_hits = plan_cache_.hits();
  stats.plan_misses = plan_cache_.misses();
  return stats;
}

}  // namespace folearn
