#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "fo/parser.h"
#include "graph/algorithms.h"
#include "graph/fog.h"
#include "graph/io.h"
#include "learn/erm.h"
#include "learn/hypothesis.h"
#include "learn/model_io.h"
#include "mc/bytecode.h"
#include "mc/compiled_eval.h"
#include "mc/vm.h"
#include "types/type.h"

namespace folearn {

namespace {

// Substantive operations count against max_inflight; control-plane ops
// (ping, stats, get-model, list-models, close-session, shutdown) are
// always admitted so a loaded server stays observable and stoppable.
bool IsSubstantive(const std::string& op) {
  return op == "learn" || op == "evaluate" || op == "query" ||
         op == "load-graph";
}

Message MakeError(int code, std::string_view message) {
  Message response;
  response.Set("status", kStatusError);
  response.Set("code", std::to_string(code));
  response.Set("error", message);
  return response;
}

Message MakeErrorFromStatus(const Status& status) {
  return MakeError(StatusExitCode(status), status.message());
}

Message MakeOk() {
  Message response;
  response.Set("status", kStatusOk);
  response.Set("code", "0");
  return response;
}

// Maps an AcquireSession failure: an id that is neither live nor
// journaled is a usage error (the CLI-exit-64 analogue); a corrupt or
// unreadable journal keeps its own status semantics (65 / 1).
Message MakeSessionError(uint64_t id, const Status& status) {
  if (status.code() == StatusCode::kNotFound) {
    return MakeError(kExitUsage, "unknown session " + std::to_string(id));
  }
  return MakeErrorFromStatus(status);
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Parses a decimal int64 request field. Returns false (with *error named
// after the field) on trailing garbage, overflow, or non-numeric input —
// the protocol mirror of the CLI's exit-64 flag validation.
bool ParseInt64Field(const Message& request, const char* key,
                     int64_t fallback, int64_t* value, std::string* error) {
  const std::string* raw = request.Find(key);
  if (raw == nullptr) {
    *value = fallback;
    return true;
  }
  try {
    size_t pos = 0;
    *value = std::stoll(*raw, &pos);
    if (pos != raw->size()) throw std::invalid_argument(*raw);
  } catch (const std::exception&) {
    *error = "invalid value '" + *raw + "' for field '" + key + "'";
    return false;
  }
  return true;
}

bool ParseIntField(const Message& request, const char* key, int fallback,
                   int* value, std::string* error) {
  int64_t wide = 0;
  if (!ParseInt64Field(request, key, fallback, &wide, error)) return false;
  if (wide < INT32_MIN || wide > INT32_MAX) {
    *error = "invalid value '" + request.Get(key) + "' for field '" + key +
             "' (out of int range)";
    return false;
  }
  *value = static_cast<int>(wide);
  return true;
}

// Strict decimal uint64 (model ids, session ids in journal fields).
bool ParseU64(std::string_view text, uint64_t* value) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t result = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (result > (UINT64_MAX - digit) / 10) return false;
    result = result * 10 + digit;
  }
  *value = result;
  return true;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

// Every tuple entry must be a vertex of `graph`: the training set and the
// model file are external input and must not reach the library's CHECKs.
Status ValidateTuples(const Graph& graph, const TrainingSet& examples) {
  for (const LabeledExample& example : examples) {
    for (Vertex v : example.tuple) {
      if (!graph.IsValidVertex(v)) {
        return DataLossError("example names vertex " + std::to_string(v) +
                             " outside the session graph (order " +
                             std::to_string(graph.order()) + ")");
      }
    }
  }
  return OkStatus();
}

// One evaluator of whichever engine the server runs, bound to one graph.
// Holds the plan-cache entry so the plan (and bytecode) stay alive even
// after the shared cache evicts them. The VM lane is taken only when the
// entry actually carries supported bytecode; anything else (tree-engine
// server, MSO plan the lowerer rejected) runs the compiled tree.
struct EngineEvaluator {
  CachedPlan cached;
  std::unique_ptr<CompiledEvaluator> tree;
  std::unique_ptr<VmEvaluator> vm;

  EngineEvaluator(const CachedPlan& entry, const Graph& graph,
                  const EvalOptions& options)
      : cached(entry) {
    if (ResolveEngine(options) == EvalEngine::kVm &&
        cached.bytecode != nullptr) {
      vm = std::make_unique<VmEvaluator>(*cached.plan, *cached.bytecode,
                                         graph, options);
    } else {
      tree = std::make_unique<CompiledEvaluator>(*cached.plan, graph,
                                                 options);
    }
  }

  bool Eval(std::span<const Vertex> tuple) {
    return vm != nullptr ? vm->Eval(tuple) : tree->Eval(tuple);
  }
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Approximate serialised footprint of a session record: what journal
// compaction compares against ServerOptions::journal_compact_bytes and
// what a session's journal share charges to its memory account. An
// estimate (string payloads + small per-entry headers) — both consumers
// only need monotonicity in the payload sizes.
int64_t ApproxRecordBytes(const SessionRecord& record) {
  int64_t bytes = 64 + static_cast<int64_t>(record.graph_text.size()) +
                  static_cast<int64_t>(record.graph_file.size());
  for (const auto& [model_id, text] : record.models) {
    bytes += 24 + static_cast<int64_t>(text.size());
  }
  for (const auto& [request_id, payload] : record.learns) {
    bytes += 16 + static_cast<int64_t>(request_id.size()) +
             static_cast<int64_t>(payload.size());
  }
  return bytes;
}

}  // namespace

// Per-session state kept warm across requests. All fields are guarded by
// `mu` — requests touching one session serialise; different sessions run
// in parallel.
struct Server::Session {
  // Declared first so it is destroyed last: registry and ball_cache
  // release their charges through this child budget on the way down, and
  // the budget's own destructor then returns any residual (the journal
  // share) to the process root.
  std::unique_ptr<MemBudget> mem;

  Session(Graph g, std::string text, int64_t ball_cache_bytes)
      : graph(std::move(g)),
        graph_text(std::move(text)),
        registry(std::make_shared<TypeRegistry>(
            Vocabulary(graph.vocabulary()))),
        ball_cache(graph, ball_cache_bytes) {}

  uint64_t id = 0;
  Graph graph;
  // The verbatim graph text, kept so journal writes never re-serialise
  // (byte-stable journals across saves). Empty for file-backed sessions,
  // which journal `graph_file` + `graph_fingerprint` instead and re-warm
  // by (memory-mapped, for .fog) reload.
  std::string graph_text;
  std::string graph_file;
  uint64_t graph_fingerprint = 0;
  std::shared_ptr<TypeRegistry> registry;
  BallCache ball_cache;

  // Registered model handles. `parsed` is filled lazily after a re-warm;
  // on the learn path the already-built hypothesis is stored directly.
  struct ModelEntry {
    std::string text;
    std::optional<Hypothesis> parsed;
    // Per-model evaluation telemetry, surfaced by get-model. Wall-clock
    // only: attaching an EvalStats sink would route the hot path through
    // the engines' slow counting lane.
    int64_t evals = 0;             // example/tuple evaluations so far
    double exec_ms = 0.0;          // cumulative evaluation wall time
    double lower_ms = 0.0;         // bytecode lowering cost (VM, once)
    std::string engine;            // engine of the most recent evaluation
    int64_t vm_instructions = 0;   // fast-lane program size (VM only)
    int64_t vm_superinstructions = 0;
  };
  std::map<uint64_t, ModelEntry> models;  // ordered: stable listing/journal
  uint64_t next_model_id = 1;

  // Bounded learn dedup window, oldest first: request-id → the encoded
  // response payload that was acknowledged for it.
  std::deque<std::pair<std::string, std::string>> learn_dedup;

  // Set by close-session while an in-flight request still holds the
  // object: suppresses journal writes that would resurrect the file.
  bool closed = false;

  // Bytes of the last journaled record charged against `mem` (the durable
  // state is part of the session's footprint; re-charged on every save).
  int64_t journal_charged = 0;

  // Warm per-graph evaluators, keyed by plan identity (the plan cache
  // hands out stable shared_ptrs; a recompiled plan gets a fresh
  // evaluator). The EngineEvaluator holds the whole cache entry, so plan
  // and bytecode stay alive even if the plan cache evicts them. Bounded:
  // cleared wholesale when it outgrows kMaxWarmEvaluators — per-graph
  // memos are cheap to rebuild.
  static constexpr size_t kMaxWarmEvaluators = 64;
  std::unordered_map<const CompiledFormula*, EngineEvaluator> evaluators;

  EngineEvaluator* WarmEvaluator(const CachedPlan& cached,
                                 const EvalOptions& options) {
    auto it = evaluators.find(cached.plan.get());
    if (it != evaluators.end()) return &it->second;
    if (evaluators.size() >= kMaxWarmEvaluators) evaluators.clear();
    auto [pos, inserted] = evaluators.emplace(
        std::piecewise_construct,
        std::forward_as_tuple(cached.plan.get()),
        std::forward_as_tuple(cached, graph, options));
    (void)inserted;
    return &pos->second;
  }

  // The durable view of this session, in journal layout.
  SessionRecord ToRecord() const {
    SessionRecord record;
    record.id = id;
    record.graph_text = graph_text;
    record.graph_file = graph_file;
    record.graph_fingerprint = graph_fingerprint;
    record.next_model_id = next_model_id;
    record.models.reserve(models.size());
    for (const auto& [model_id, entry] : models) {
      record.models.emplace_back(model_id, entry.text);
    }
    record.learns.assign(learn_dedup.begin(), learn_dedup.end());
    return record;
  }

  std::mutex mu;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      mem_budget_(options_.mem_budget_bytes),
      plan_cache_(options_.plan_cache_bytes),
      store_(options_.state_dir) {
  FOLEARN_CHECK_GE(options_.max_inflight, 1)
      << "max_inflight must admit at least one request";
  FOLEARN_CHECK_GE(options_.dedup_window, 1)
      << "dedup_window must hold at least one entry";
  FOLEARN_CHECK_GE(options_.mem_watchdog_ms, 1)
      << "mem_watchdog_ms must be positive";
  store_.set_crash_at_journal_write(options_.crash_at_journal_write);
  plan_cache_.set_mem_account(&mem_budget_);
  plan_cache_.set_read_through(&cache_read_through_);
  // A pinned tier gates requests from the very first dispatch, before the
  // watchdog's first tick.
  if (options_.force_tier >= 0) {
    tier_.store(std::min(options_.force_tier,
                         static_cast<int>(PressureTier::kBlack)),
                std::memory_order_relaxed);
    cache_read_through_.store(
        CurrentTier() >= PressureTier::kYellow, std::memory_order_relaxed);
  }
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

Status Server::Start() {
  Status path_ok = ValidateSocketPath(options_.socket_path);
  if (!path_ok.ok()) return path_ok;
  Status store_ok = store_.Init();
  if (!store_ok.ok()) return store_ok;
  if (store_.enabled()) {
    // Recovery: index every journaled session as a cold slot. Graphs are
    // parsed lazily on first use, so a daemon with thousands of journaled
    // sessions still restarts instantly.
    StatusOr<std::vector<uint64_t>> ids = store_.ListSessions();
    if (!ids.ok()) return ids.status();
    StatusOr<uint64_t> next = store_.LoadNextSessionId();
    if (!next.ok()) return next.status();
    const int64_t now = NowMs();
    uint64_t max_id = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (uint64_t id : *ids) {
        auto slot = std::make_shared<SessionSlot>();
        slot->journaled = true;
        slot->last_used_ms.store(now, std::memory_order_relaxed);
        sessions_.emplace(id, std::move(slot));
        max_id = std::max(max_id, id);
      }
      // Ids must never be reused across restarts — a stale client id
      // must map to "unknown session", never to someone else's graph.
      next_session_id_ = std::max(*next, max_id + 1);
    }
    if (!ids->empty()) {
      BumpStat(&ServerStats::sessions_recovered,
               static_cast<int64_t>(ids->size()));
    }
  }
  sockaddr_un addr{};
  if (::pipe(wake_pipe_) != 0) {
    return UnavailableError(std::string("pipe failed: ") +
                            std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return UnavailableError(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a past run
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return UnavailableError("bind failed on " + options_.socket_path + ": " +
                            std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return UnavailableError(std::string("listen failed: ") +
                            std::strerror(errno));
  }
  return OkStatus();
}

void Server::Shutdown() {
  stopping_.store(true, std::memory_order_release);
  // Wake every poller. The byte is never drained, so the pipe stays
  // readable and all current and future polls return immediately. One
  // write(2) — async-signal-safe.
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::Serve() {
  FOLEARN_CHECK_GE(listen_fd_, 0) << "Serve() before Start()";
  // The memory watchdog runs for the lifetime of the serve loop. It is
  // started even when ungoverned: it then only refreshes the RSS gauge.
  watchdog_ = std::thread([this] { WatchdogLoop(); });
  // With a session TTL, the accept loop doubles as the eviction sweeper:
  // poll wakes at a fraction of the TTL so idle sessions are demoted
  // promptly even when no connection arrives.
  int poll_timeout_ms = -1;
  if (options_.session_ttl_ms != kNoLimit) {
    poll_timeout_ms = static_cast<int>(std::clamp<int64_t>(
        options_.session_ttl_ms / 2, 10, 1000));
  }
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int ready = ::poll(fds, 2, poll_timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 ||
        stopping_.load(std::memory_order_acquire)) {
      break;
    }
    if (options_.session_ttl_ms != kNoLimit) EvictIdleSessions();
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(mu_);
    connections_.emplace_back([this, fd] { ConnectionLoop(fd); });
  }
  // Drain: no new connections; unblock in-flight reads; join everything.
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  for (std::thread& thread : connections) thread.join();
  stopping_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
}

void Server::WatchdogLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    UpdatePressure();
    // Sleep in small slices so Shutdown() is prompt at any cadence.
    int64_t slept = 0;
    while (slept < options_.mem_watchdog_ms &&
           !stopping_.load(std::memory_order_acquire)) {
      const int64_t slice = std::min<int64_t>(
          20, options_.mem_watchdog_ms - slept);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      slept += slice;
    }
  }
}

void Server::UpdatePressure() {
  const int64_t accounted = mem_budget_.used();
  const int64_t rss = ReadRssBytes();
  // Classify the *worse* of what we account and what the kernel charges
  // us for: accounted bytes catch growth RSS hasn't paged in yet, RSS
  // catches everything the accounts cannot see (mmap'd graphs aside —
  // their pages are reclaimable, which is exactly why mmap-backed
  // load-graph stays admitted under pressure).
  const int64_t used = std::max(accounted, rss);
  PressureTier tier;
  if (options_.force_tier >= 0) {
    tier = static_cast<PressureTier>(std::min(
        options_.force_tier, static_cast<int>(PressureTier::kBlack)));
  } else {
    tier = ClassifyPressure(used, options_.mem_budget_bytes,
                            options_.pressure);
  }
  const auto previous = static_cast<PressureTier>(tier_.exchange(
      static_cast<int>(tier), std::memory_order_relaxed));
  // Yellow and above: caches serve hits but stop growing.
  cache_read_through_.store(tier >= PressureTier::kYellow,
                            std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.rss_bytes = rss;
    stats_.mem_used_bytes = accounted;
    stats_.mem_tier = static_cast<int64_t>(tier);
    if (tier != previous) ++stats_.tier_transitions;
  }
  if (tier >= PressureTier::kRed) {
    // Reclaim: shrink the shared plan cache to a floor and demote idle
    // warm state. Both are idempotent, so re-running them every tick at
    // red costs nothing once the state is drained.
    plan_cache_.Trim(options_.plan_cache_bytes >= 0
                         ? options_.plan_cache_bytes / 4
                         : 0);
    EvictWarmStateUnderPressure();
  }
}

void Server::EvictWarmStateUnderPressure() {
  // Oldest-idle first. The red threshold is the reclamation target; with
  // a pinned tier (tests) or no budget there is no target and every idle
  // session is swept.
  const int64_t target =
      options_.mem_budget_bytes != kNoLimit && options_.force_tier < 0
          ? static_cast<int64_t>(static_cast<double>(
                                     options_.mem_budget_bytes) *
                                 options_.pressure.red)
          : 0;
  std::vector<std::pair<int64_t, std::shared_ptr<SessionSlot>>> idle;
  {
    std::lock_guard<std::mutex> lock(mu_);
    idle.reserve(sessions_.size());
    for (auto& [id, slot] : sessions_) {
      idle.emplace_back(
          slot->last_used_ms.load(std::memory_order_relaxed), slot);
    }
  }
  std::sort(idle.begin(), idle.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  int64_t evicted = 0;
  for (auto& [last_used, slot] : idle) {
    if (target > 0 && mem_budget_.used() <= target) break;
    std::unique_lock<std::mutex> slot_lock(slot->mu, std::try_to_lock);
    if (!slot_lock.owns_lock()) continue;  // busy: next tick
    if (slot->live == nullptr) continue;   // already cold
    // Same safety argument as EvictIdleSessions: use_count == 1 under the
    // slot lock means no request holds the session.
    if (slot->live.use_count() != 1) continue;
    if (slot->journaled) {
      // Demote to cold; re-warms lazily from the journal on next use.
      slot->live.reset();
    } else {
      // Memory-only sessions must keep graph + models (dropping them is
      // data loss, which red never inflicts); shed the rebuildable warm
      // state instead.
      std::lock_guard<std::mutex> session_lock(slot->live->mu);
      slot->live->evaluators.clear();
      slot->live->ball_cache.Clear();
    }
    ++evicted;
  }
  if (evicted > 0) BumpStat(&ServerStats::warm_evictions, evicted);
}

void Server::AttachSessionMemory(Session* session) {
  session->mem = std::make_unique<MemBudget>(
      options_.session_mem_bytes == kNoLimit ? kNoMemLimit
                                             : options_.session_mem_bytes,
      &mem_budget_);
  // Correctness state (interned types) charges forcibly; the governor
  // turns overshoot into a kResourceExhausted cut. The ball cache is pure
  // cache: refused charges serve uncached, and the read-through flag
  // freezes growth at yellow.
  session->registry->set_mem_account(session->mem.get());
  session->ball_cache.set_mem_account(session->mem.get());
  session->ball_cache.set_read_through(&cache_read_through_);
  // The graph itself: text graphs own their parse; .fog graphs are mmap'd
  // and reclaimable, so only the text share is charged.
  const int64_t graph_share =
      static_cast<int64_t>(session->graph_text.size());
  if (graph_share > 0) session->mem->Charge(graph_share);
}

void Server::ConnectionLoop(int fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{fd, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // graceful stop
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    StatusOr<Message> request = ReadFrame(fd);
    if (!request.ok()) {
      // Clean close (kNotFound) ends the connection silently; a corrupt
      // or torn frame gets one last diagnostic — the stream position is
      // untrusted afterwards, so the connection closes either way. Only
      // the connection dies: sessions and admission slots are unharmed.
      if (request.status().code() != StatusCode::kNotFound) {
        if (request.status().code() == StatusCode::kDataLoss) {
          (void)WriteFrame(fd, MakeErrorFromStatus(request.status()));
        }
        BumpStat(&ServerStats::disconnects);
      }
      break;
    }
    const bool is_shutdown = request->Get("op") == "shutdown";
    Message response = Dispatch(*request);
    if (!WriteFrame(fd, response).ok()) {
      // Peer vanished between request and response (EPIPE via
      // MSG_NOSIGNAL, never SIGPIPE). Drop the connection only.
      BumpStat(&ServerStats::disconnects);
      break;
    }
    if (is_shutdown) {
      Shutdown();
      break;
    }
  }
  ::close(fd);
}

Message Server::Dispatch(const Message& request) {
  const std::string op = request.Get("op");
  const bool substantive = IsSubstantive(op);
  // Black tier: memory is critically scarce, so every substantive request
  // is shed retry-safe (status=shed, the client's existing retry
  // classification) while heartbeats, stats, close-session and shutdown —
  // the ops that observe, relieve, or end the pressure — stay admitted.
  if (substantive && CurrentTier() == PressureTier::kBlack) {
    Message response;
    response.Set("status", kStatusShed);
    response.Set("code", std::to_string(kExitTempFail));
    response.Set("tier", PressureTierName(PressureTier::kBlack));
    response.Set("error",
                 "memory pressure (black): serving heartbeats only; "
                 "retry the request");
    BumpStat(&ServerStats::mem_shed);
    RecordOutcome(response);
    return response;
  }
  if (substantive) {
    int current = inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (current > options_.max_inflight) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      Message response;
      response.Set("status", kStatusShed);
      response.Set("code", "3");
      response.Set("error",
                   "server at max-inflight capacity; retry the request");
      RecordOutcome(response);
      return response;
    }
  }
  Message response;
  if (op == "ping") {
    response = HandlePing(request);
  } else if (op == "load-graph") {
    response = HandleLoadGraph(request);
  } else if (op == "close-session") {
    response = HandleCloseSession(request);
  } else if (op == "learn") {
    response = HandleLearn(request);
  } else if (op == "evaluate") {
    response = HandleEvaluate(request);
  } else if (op == "query") {
    response = HandleQuery(request);
  } else if (op == "get-model") {
    response = HandleGetModel(request);
  } else if (op == "list-models") {
    response = HandleListModels(request);
  } else if (op == "stats") {
    response = HandleStats(request);
  } else if (op == "shutdown") {
    response = MakeOk();
  } else {
    response = MakeError(kExitUsage, "unknown op '" + op + "'");
  }
  if (substantive) inflight_.fetch_sub(1, std::memory_order_acq_rel);
  RecordOutcome(response);
  return response;
}

void Server::RecordOutcome(const Message& response) {
  const std::string status = response.Get("status");
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.requests;
  if (status == kStatusOk) {
    ++stats_.ok;
  } else if (status == kStatusPartial) {
    ++stats_.partial;
  } else if (status == kStatusShed) {
    ++stats_.shed;
  } else {
    ++stats_.errors;
  }
}

void Server::BumpStat(int64_t ServerStats::*counter, int64_t delta) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.*counter += delta;
}

Message Server::HandlePing(const Message& request) {
  Message response = MakeOk();
  response.Set("payload", request.Get("payload"));
  // Heartbeat: a ping naming a session refreshes its idle clock without
  // re-warming a cold slot (no graph parse on the control plane).
  const std::string* raw = request.Find("session");
  if (raw != nullptr) {
    uint64_t id = 0;
    bool known = false;
    if (ParseU64(*raw, &id)) {
      std::shared_ptr<SessionSlot> slot = FindSlot(id);
      if (slot != nullptr) {
        slot->last_used_ms.store(NowMs(), std::memory_order_relaxed);
        known = true;
      }
    }
    response.Set("session-known", known ? "1" : "0");
  }
  return response;
}

std::shared_ptr<Server::SessionSlot> Server::FindSlot(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

StatusOr<std::shared_ptr<Server::Session>> Server::AcquireSession(
    uint64_t id) {
  std::shared_ptr<SessionSlot> slot = FindSlot(id);
  if (slot == nullptr) {
    return NotFoundError("unknown session " + std::to_string(id));
  }
  slot->last_used_ms.store(NowMs(), std::memory_order_relaxed);
  std::lock_guard<std::mutex> slot_lock(slot->mu);
  if (slot->live != nullptr) return slot->live;
  if (!slot->journaled) {
    return NotFoundError("unknown session " + std::to_string(id));
  }
  // Cold journaled slot: re-warm from the store. The journal is our own
  // acknowledged output, so corruption here is real data loss and is
  // reported as such, not masked as "unknown session".
  StatusOr<SessionRecord> record = store_.Load(id);
  if (!record.ok()) {
    if (record.status().code() == StatusCode::kNotFound) {
      return NotFoundError("unknown session " + std::to_string(id));
    }
    return record.status();
  }
  StatusOr<Graph> graph = [&]() -> StatusOr<Graph> {
    if (record->graph_file.empty()) return ParseGraph(record->graph_text);
    // File-backed session: reload (mmap for .fog) and verify the
    // fingerprint — a swapped file must not silently answer for the graph
    // the client registered.
    uint64_t fingerprint = 0;
    StatusOr<Graph> loaded = LoadGraphAuto(record->graph_file, &fingerprint);
    if (loaded.ok() && fingerprint != record->graph_fingerprint) {
      return DataLossError(
          "graph file '" + record->graph_file + "' for session " +
          std::to_string(id) + " has fingerprint " +
          std::to_string(fingerprint) + ", journal recorded " +
          std::to_string(record->graph_fingerprint));
    }
    return loaded;
  }();
  if (!graph.ok()) {
    return DataLossError("journaled graph for session " + std::to_string(id) +
                         " does not load: " + graph.status().message());
  }
  const int64_t record_bytes = ApproxRecordBytes(*record);
  auto session = std::make_shared<Session>(*std::move(graph),
                                           std::move(record->graph_text),
                                           options_.ball_cache_bytes);
  session->id = id;
  session->graph_file = std::move(record->graph_file);
  session->graph_fingerprint = record->graph_fingerprint;
  session->next_model_id = record->next_model_id;
  for (auto& [model_id, text] : record->models) {
    session->models.emplace(model_id,
                            Session::ModelEntry{std::move(text), {}});
  }
  for (auto& entry : record->learns) {
    session->learn_dedup.push_back(std::move(entry));
  }
  AttachSessionMemory(session.get());
  session->journal_charged = record_bytes;
  session->mem->Charge(record_bytes);
  slot->live = session;
  BumpStat(&ServerStats::sessions_rewarmed);
  return session;
}

Status Server::JournalSession(uint64_t id, const Session& session) {
  (void)id;
  if (!store_.enabled() || session.closed) return OkStatus();
  return store_.Save(session.ToRecord());
}

void Server::EvictIdleSessions() {
  const int64_t now = NowMs();
  std::vector<uint64_t> to_erase;
  int64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, slot] : sessions_) {
      std::unique_lock<std::mutex> slot_lock(slot->mu, std::try_to_lock);
      if (!slot_lock.owns_lock()) continue;  // busy: try next sweep
      if (slot->live == nullptr) continue;   // already cold
      if (now - slot->last_used_ms.load(std::memory_order_relaxed) <=
          options_.session_ttl_ms) {
        continue;
      }
      // use_count == 1 under the slot lock means no handler holds the
      // session and none can acquire it while we hold the lock — the
      // eviction cannot yank state from under an in-flight request.
      if (slot->live.use_count() != 1) continue;
      slot->live.reset();
      ++evicted;
      if (!slot->journaled) to_erase.push_back(id);
    }
    for (uint64_t id : to_erase) sessions_.erase(id);
  }
  if (evicted > 0) BumpStat(&ServerStats::sessions_evicted, evicted);
}

Message Server::HandleLoadGraph(const Message& request) {
  const std::string* text = request.Find("graph");
  const std::string* file = request.Find("graph-file");
  if (text == nullptr && file == nullptr) {
    return MakeError(kExitUsage,
                     "load-graph requires a 'graph' or 'graph-file' field");
  }
  if (text != nullptr && file != nullptr) {
    return MakeError(kExitUsage,
                     "load-graph takes 'graph' or 'graph-file', not both");
  }
  // Yellow and above: refuse new *heap-resident* graphs retry-safe. A
  // .fog file is memory-mapped — its pages are shared and reclaimable —
  // so mmap-backed loads stay admitted until black.
  const PressureTier tier = CurrentTier();
  if (tier >= PressureTier::kYellow) {
    bool mmap_backed = false;
    if (file != nullptr) {
      char magic[8] = {};
      FILE* probe = std::fopen(file->c_str(), "rb");
      if (probe != nullptr) {
        const size_t got = std::fread(magic, 1, sizeof(magic), probe);
        std::fclose(probe);
        mmap_backed = LooksLikeFog(std::string_view(magic, got));
      }
    }
    if (!mmap_backed) {
      Message response;
      response.Set("status", kStatusShed);
      response.Set("code", std::to_string(kExitTempFail));
      response.Set("tier", PressureTierName(tier));
      response.Set("error",
                   std::string("memory pressure (") +
                       PressureTierName(tier) +
                       "): non-mmap load-graph shed; retry later or load "
                       "a .fog file");
      BumpStat(&ServerStats::mem_shed);
      return response;
    }
  }
  uint64_t fingerprint = 0;
  StatusOr<Graph> graph =
      file != nullptr ? LoadGraphAuto(*file, &fingerprint)
                      : ParseGraph(*text);
  if (!graph.ok()) return MakeErrorFromStatus(graph.status());
  uint64_t id = 0;
  {
    // Allocation and the meta write stay under the table lock so the
    // journaled next-session-id is monotone even under concurrent loads.
    std::lock_guard<std::mutex> lock(mu_);
    id = next_session_id_++;
    Status meta = store_.SaveNextSessionId(next_session_id_);
    if (!meta.ok()) return MakeErrorFromStatus(meta);
  }
  auto session = std::make_shared<Session>(
      *std::move(graph), text != nullptr ? *text : std::string(),
      options_.ball_cache_bytes);
  session->id = id;
  if (file != nullptr) {
    session->graph_file = *file;
    session->graph_fingerprint = fingerprint;
  }
  AttachSessionMemory(session.get());
  // Journal before acknowledging: once the client sees the id, a restart
  // must be able to serve it.
  Status saved = OkStatus();
  if (store_.enabled()) {
    SessionRecord record = session->ToRecord();
    saved = store_.Save(record);
    if (saved.ok()) {
      session->journal_charged = ApproxRecordBytes(record);
      session->mem->Charge(session->journal_charged);
    }
  }
  if (!saved.ok()) return MakeErrorFromStatus(saved);
  auto slot = std::make_shared<SessionSlot>();
  slot->live = session;
  slot->journaled = store_.enabled();
  slot->last_used_ms.store(NowMs(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.emplace(id, std::move(slot));
  }
  BumpStat(&ServerStats::sessions_opened);
  Message response = MakeOk();
  response.Set("session", std::to_string(id));
  response.Set("order", std::to_string(session->graph.order()));
  return response;
}

namespace {

// Resolves the "session" field to an id; false + error response on a
// missing or malformed field.
bool ParseSessionId(const Message& request, uint64_t* id,
                    Message* error_response) {
  const std::string* raw = request.Find("session");
  if (raw == nullptr) {
    *error_response =
        MakeError(kExitUsage, "request requires a 'session' field");
    return false;
  }
  try {
    size_t pos = 0;
    unsigned long long wide = std::stoull(*raw, &pos);
    if (pos != raw->size()) throw std::invalid_argument(*raw);
    *id = wide;
  } catch (const std::exception&) {
    *error_response =
        MakeError(kExitUsage, "invalid session id '" + *raw + "'");
    return false;
  }
  return true;
}

// Resolves the "model-id" field; the caller has established it is present.
bool ParseModelIdField(const Message& request, uint64_t* model_id,
                       Message* error_response) {
  const std::string raw = request.Get("model-id");
  if (!ParseU64(raw, model_id)) {
    *error_response =
        MakeError(kExitUsage, "invalid model id '" + raw + "'");
    return false;
  }
  return true;
}

}  // namespace

Message Server::HandleCloseSession(const Message& request) {
  uint64_t id = 0;
  Message error;
  if (!ParseSessionId(request, &id, &error)) return error;
  std::shared_ptr<SessionSlot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return MakeError(kExitUsage, "unknown session " + std::to_string(id));
    }
    slot = it->second;
    sessions_.erase(it);
  }
  std::shared_ptr<Session> live;
  {
    std::lock_guard<std::mutex> slot_lock(slot->mu);
    live = std::move(slot->live);
  }
  Status removed;
  if (live != nullptr) {
    // Mark closed under the session lock so an in-flight learn that
    // still holds the object cannot resurrect the journal file after the
    // remove below.
    std::lock_guard<std::mutex> session_lock(live->mu);
    live->closed = true;
    removed = store_.Remove(id);
  } else {
    removed = store_.Remove(id);
  }
  if (!removed.ok()) return MakeErrorFromStatus(removed);
  BumpStat(&ServerStats::sessions_closed);
  return MakeOk();
}

bool Server::RequestLimits(const Message& request, GovernorLimits* limits,
                           bool* governed, std::string* error) const {
  int64_t deadline_ms = kNoLimit;
  int64_t max_work = kNoLimit;
  if (!ParseInt64Field(request, "deadline-ms", kNoLimit, &deadline_ms,
                       error) ||
      !ParseInt64Field(request, "max-work", kNoLimit, &max_work, error)) {
    return false;
  }
  if (deadline_ms != kNoLimit && deadline_ms < 0) {
    *error = "field 'deadline-ms' must be >= 0";
    return false;
  }
  if (max_work != kNoLimit && max_work <= 0) {
    *error = "field 'max-work' must be positive";
    return false;
  }
  // Server caps clamp the request; with a cap set, a request asking for
  // nothing still runs capped — the caps are the operator's protection
  // against a tenant monopolising the daemon.
  if (options_.max_deadline_ms != kNoLimit &&
      (deadline_ms == kNoLimit || deadline_ms > options_.max_deadline_ms)) {
    deadline_ms = options_.max_deadline_ms;
  }
  if (options_.max_work != kNoLimit &&
      (max_work == kNoLimit || max_work > options_.max_work)) {
    max_work = options_.max_work;
  }
  limits->deadline_ms = deadline_ms;
  limits->max_work = max_work;
  *governed = deadline_ms != kNoLimit || max_work != kNoLimit;
  return true;
}

Message Server::HandleLearn(const Message& request) {
  uint64_t id = 0;
  Message error;
  if (!ParseSessionId(request, &id, &error)) return error;
  StatusOr<std::shared_ptr<Session>> acquired = AcquireSession(id);
  if (!acquired.ok()) return MakeSessionError(id, acquired.status());
  Session& session = **acquired;
  const std::string* data_text = request.Find("data");
  if (data_text == nullptr) {
    return MakeError(kExitUsage, "learn requires a 'data' field");
  }
  const std::string request_id = request.Get("request-id");
  if (request_id.size() > 256) {
    return MakeError(kExitUsage, "field 'request-id' exceeds 256 bytes");
  }
  StatusOr<TrainingSet> data = ParseTrainingSet(*data_text);
  if (!data.ok()) return MakeErrorFromStatus(data.status());

  ErmOptions options;
  std::string field_error;
  int ell = 0;
  if (!ParseIntField(request, "rank", 1, &options.rank, &field_error) ||
      !ParseIntField(request, "radius", -1, &options.radius, &field_error) ||
      !ParseIntField(request, "ell", 0, &ell, &field_error) ||
      !ParseIntField(request, "threads", 1, &options.threads,
                     &field_error)) {
    return MakeError(kExitUsage, field_error);
  }
  if (options.rank < 0) {
    return MakeError(kExitUsage, "field 'rank' must be >= 0");
  }
  if (options.radius < -1) {
    return MakeError(kExitUsage,
                     "field 'radius' must be >= 0 (or -1 for automatic)");
  }
  if (ell < 0) return MakeError(kExitUsage, "field 'ell' must be >= 0");
  if (options.threads < 0) {
    return MakeError(kExitUsage, "field 'threads' must be >= 0");
  }
  const std::string learner = request.Get("learner", "brute");
  if (learner != "brute") {
    return MakeError(kExitUsage,
                     "unsupported learner '" + learner +
                         "' (the server implements 'brute')");
  }
  GovernorLimits limits;
  bool governed = false;
  if (!RequestLimits(request, &limits, &governed, &field_error)) {
    return MakeError(kExitUsage, field_error);
  }
  // Memory governance: with a session or process byte budget the learn
  // runs governed against the session's account — an overflowing sweep is
  // cut at its next checkpoint with run-status=resource-exhausted and the
  // best hypothesis so far, the same anytime contract as deadline/work.
  if (session.mem != nullptr &&
      (options_.session_mem_bytes != kNoLimit ||
       options_.mem_budget_bytes != kNoLimit)) {
    limits.mem_budget = session.mem.get();
    governed = true;
  }

  std::lock_guard<std::mutex> session_lock(session.mu);
  // Idempotent retries: a request-id the session has already acknowledged
  // replays the original response byte-identically — the learn (and its
  // model registration) must not run twice.
  if (!request_id.empty()) {
    for (const auto& [seen_id, payload] : session.learn_dedup) {
      if (seen_id != request_id) continue;
      StatusOr<Message> replay = DecodeMessage(payload);
      if (!replay.ok()) {
        return MakeErrorFromStatus(DataLossError(
            "journaled response for request-id '" + request_id +
            "' is corrupt: " + replay.status().message()));
      }
      BumpStat(&ServerStats::dedup_hits);
      replay->Set("deduped", "1");
      return *std::move(replay);
    }
  }
  Status tuples_ok = ValidateTuples(session.graph, *data);
  if (!tuples_ok.ok()) return MakeErrorFromStatus(tuples_ok);

  std::optional<ResourceGovernor> governor;
  if (governed) governor.emplace(limits);
  options.governor = governor.has_value() ? &*governor : nullptr;
  // The session ball cache is single-threaded state; the library only
  // consults it on single-threaded scans anyway (parallel sweeps build
  // per-worker caches), so it is attached exactly then.
  if (options.threads == 1) options.ball_cache = &session.ball_cache;
  options.cache_bytes = options_.ball_cache_bytes;
  // Per-worker registry shards and ball caches of a parallel sweep charge
  // the session account too (released when the sweep returns).
  options.mem_budget = session.mem != nullptr ? session.mem.get() : nullptr;

  ErmResult result =
      BruteForceErm(session.graph, *data, ell, options, session.registry);

  Message response = MakeOk();
  if (IsInterrupted(result.status)) {
    response.Set("status", kStatusPartial);
    response.Set("code", "3");
    response.Set("run-status", RunStatusName(result.status));
  }
  Hypothesis hypothesis = result.hypothesis.ToExplicit();
  const std::string model_text = HypothesisToText(hypothesis);
  response.Set("model", model_text);
  response.Set("training-error", FormatDouble(result.training_error));
  response.Set("types-seen", std::to_string(result.distinct_types_seen));
  response.Set("tuples-tried",
               std::to_string(result.parameter_tuples_tried));
  if (governor.has_value()) {
    response.Set("work-used", std::to_string(governor->work_used()));
  }

  // Model registration. Identical model text reuses its handle, so
  // repeated learns (warm benches, retried workloads) neither bloat the
  // table nor grow the journal.
  uint64_t model_id = 0;
  bool new_model = true;
  for (const auto& [existing_id, entry] : session.models) {
    if (entry.text == model_text) {
      model_id = existing_id;
      new_model = false;
      break;
    }
  }
  if (new_model) model_id = session.next_model_id;
  response.Set("model-id", std::to_string(model_id));

  // Durability: journal the candidate state (current + this mutation)
  // *before* mutating memory or acknowledging, so a journal failure
  // leaves both the file and the in-memory session unchanged.
  const bool new_dedup_entry = !request_id.empty();
  if (new_model || new_dedup_entry) {
    SessionRecord candidate = session.ToRecord();
    if (new_model) {
      candidate.next_model_id = model_id + 1;
      candidate.models.emplace_back(model_id, model_text);
    }
    if (new_dedup_entry) {
      while (static_cast<int>(candidate.learns.size()) >=
             options_.dedup_window) {
        candidate.learns.erase(candidate.learns.begin());
      }
      candidate.learns.emplace_back(request_id, EncodeMessage(response));
    }
    // Journal compaction: a record over either cap sheds its oldest model
    // handles — never the one this response references — before the
    // atomic rewrite below. Session journals otherwise grow without
    // bound under long-lived learn workloads; this keeps both the file
    // and the re-warm cost flat. The memory table mirrors the drop after
    // a successful save, so handles and journal never diverge.
    std::vector<uint64_t> compacted;
    if (options_.max_session_models != kNoLimit ||
        options_.journal_compact_bytes != kNoLimit) {
      const auto over_caps = [&]() {
        return (options_.max_session_models != kNoLimit &&
                static_cast<int64_t>(candidate.models.size()) >
                    options_.max_session_models) ||
               (options_.journal_compact_bytes != kNoLimit &&
                ApproxRecordBytes(candidate) >
                    options_.journal_compact_bytes);
      };
      size_t scan = 0;  // candidate.models is id-ordered: oldest first
      while (over_caps() && scan < candidate.models.size()) {
        if (candidate.models[scan].first == model_id) {
          ++scan;
          continue;
        }
        compacted.push_back(candidate.models[scan].first);
        candidate.models.erase(candidate.models.begin() +
                               static_cast<ptrdiff_t>(scan));
      }
    }
    if (store_.enabled() && !session.closed) {
      Status journaled = store_.Save(candidate);
      if (!journaled.ok()) return MakeErrorFromStatus(journaled);
      if (session.mem != nullptr) {
        // Re-charge the session's journal share at its new size.
        session.mem->Release(session.journal_charged);
        session.journal_charged = ApproxRecordBytes(candidate);
        session.mem->Charge(session.journal_charged);
      }
    }
    for (uint64_t dropped : compacted) session.models.erase(dropped);
    if (!compacted.empty()) {
      BumpStat(&ServerStats::models_compacted,
               static_cast<int64_t>(compacted.size()));
      BumpStat(&ServerStats::journal_compactions);
    }
    if (new_model) {
      session.next_model_id = model_id + 1;
      session.models.emplace(
          model_id,
          Session::ModelEntry{model_text, std::move(hypothesis)});
      BumpStat(&ServerStats::models_registered);
    }
    if (new_dedup_entry) {
      while (static_cast<int>(session.learn_dedup.size()) >=
             options_.dedup_window) {
        session.learn_dedup.pop_front();
      }
      session.learn_dedup.emplace_back(request_id,
                                       EncodeMessage(response));
    }
  }
  return response;
}

namespace {

// Parses a whitespace-separated vertex tuple ("3 17 4").
bool ParseTupleField(const std::string& text, std::vector<Vertex>* tuple,
                     std::string* error) {
  tuple->clear();
  size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) {
      ++pos;
    }
    if (pos >= text.size()) break;
    size_t end = pos;
    while (end < text.size() && text[end] != ' ' && text[end] != '\t') {
      ++end;
    }
    try {
      size_t used = 0;
      const std::string token = text.substr(pos, end - pos);
      long long value = std::stoll(token, &used);
      if (used != token.size() || value < 0) {
        throw std::invalid_argument(token);
      }
      tuple->push_back(static_cast<Vertex>(value));
    } catch (const std::exception&) {
      *error = "invalid vertex '" + text.substr(pos, end - pos) +
               "' in field 'tuple'";
      return false;
    }
    pos = end;
  }
  if (tuple->empty()) {
    *error = "field 'tuple' names no vertices";
    return false;
  }
  return true;
}

}  // namespace

Message Server::HandleEvaluate(const Message& request) {
  uint64_t id = 0;
  Message error;
  if (!ParseSessionId(request, &id, &error)) return error;
  StatusOr<std::shared_ptr<Session>> acquired = AcquireSession(id);
  if (!acquired.ok()) return MakeSessionError(id, acquired.status());
  Session& session = **acquired;
  const std::string* model_text = request.Find("model");
  const bool by_handle = request.Has("model-id");
  if ((model_text == nullptr) == !by_handle) {
    return MakeError(kExitUsage,
                     "evaluate requires exactly one of 'model' and "
                     "'model-id', plus 'data'");
  }
  const std::string* data_text = request.Find("data");
  if (data_text == nullptr) {
    return MakeError(kExitUsage, "evaluate requires a 'data' field");
  }
  uint64_t model_id = 0;
  if (by_handle && !ParseModelIdField(request, &model_id, &error)) {
    return error;
  }
  StatusOr<TrainingSet> data = ParseTrainingSet(*data_text);
  if (!data.ok()) return MakeErrorFromStatus(data.status());
  GovernorLimits limits;
  bool governed = false;
  std::string field_error;
  if (!RequestLimits(request, &limits, &governed, &field_error)) {
    return MakeError(kExitUsage, field_error);
  }

  std::lock_guard<std::mutex> session_lock(session.mu);
  const Graph& graph = session.graph;
  Status tuples_ok = ValidateTuples(graph, *data);
  if (!tuples_ok.ok()) return MakeErrorFromStatus(tuples_ok);

  // Resolve the hypothesis: the handle path reuses the registered,
  // already-parsed model (the parse is the cost the handle eliminates);
  // the text path parses per request, exactly as the CLI would.
  std::optional<Hypothesis> parsed_from_text;
  const Hypothesis* hypothesis = nullptr;
  Session::ModelEntry* model_entry = nullptr;
  if (by_handle) {
    auto it = session.models.find(model_id);
    if (it == session.models.end()) {
      return MakeError(kExitUsage, "unknown model-id " +
                                       std::to_string(model_id) +
                                       " in session " + std::to_string(id));
    }
    if (!it->second.parsed.has_value()) {
      // First use after a re-warm: parse the journaled text once.
      StatusOr<Hypothesis> reparsed = ParseHypothesis(it->second.text);
      if (!reparsed.ok()) {
        return MakeErrorFromStatus(DataLossError(
            "journaled model " + std::to_string(model_id) +
            " does not parse: " + reparsed.status().message()));
      }
      it->second.parsed = *std::move(reparsed);
    }
    hypothesis = &*it->second.parsed;
    model_entry = &it->second;
  } else {
    StatusOr<Hypothesis> from_text = ParseHypothesis(*model_text);
    if (!from_text.ok()) return MakeErrorFromStatus(from_text.status());
    parsed_from_text = *std::move(from_text);
    hypothesis = &*parsed_from_text;
  }
  for (Vertex w : hypothesis->parameters) {
    if (!graph.IsValidVertex(w)) {
      return MakeErrorFromStatus(DataLossError(
          "model parameter vertex " + std::to_string(w) +
          " outside the session graph"));
    }
  }
  const int k = hypothesis->k();
  for (const LabeledExample& example : *data) {
    if (static_cast<int>(example.tuple.size()) != k) {
      return MakeErrorFromStatus(DataLossError(
          "example arity " + std::to_string(example.tuple.size()) +
          " does not match the model's k=" + std::to_string(k)));
    }
  }

  const std::vector<std::string> frame = hypothesis->AllVars();
  EvalOptions eval_options;
  eval_options.missing_color_is_false = true;  // external model files
  eval_options.engine = options_.eval_engine;
  const CachedPlan cached =
      plan_cache_.GetOrCompile(hypothesis->formula, frame, eval_options);

  std::optional<ResourceGovernor> governor;
  if (governed) {
    governor.emplace(limits);
    eval_options.governor = &*governor;
  }
  // Warm path: the ungoverned evaluator (and its per-graph memo) is kept
  // on the session. A governed request runs the mirrored slow lane on a
  // throwaway evaluator so the warm one never observes a governor trip.
  std::optional<EngineEvaluator> scratch;
  EngineEvaluator* evaluator;
  if (governed) {
    scratch.emplace(cached, graph, eval_options);
    evaluator = &*scratch;
  } else {
    evaluator = session.WarmEvaluator(cached, eval_options);
  }

  std::vector<Vertex> env(frame.size());
  int64_t wrong = 0;
  int64_t seen = 0;
  const auto exec_start = std::chrono::steady_clock::now();
  for (const LabeledExample& example : *data) {
    std::copy(example.tuple.begin(), example.tuple.end(), env.begin());
    std::copy(hypothesis->parameters.begin(), hypothesis->parameters.end(),
              env.begin() + k);
    bool verdict = evaluator->Eval(env);
    if (governor.has_value() && governor->Interrupted()) break;
    if (verdict != example.label) ++wrong;
    ++seen;
  }
  if (model_entry != nullptr) {
    model_entry->evals += seen;
    model_entry->exec_ms += MsSince(exec_start);
    model_entry->engine = EvalEngineName(ResolveEngine(eval_options));
    model_entry->lower_ms = cached.lower_ms;
    if (cached.bytecode != nullptr && cached.bytecode->supported) {
      model_entry->vm_instructions =
          static_cast<int64_t>(cached.bytecode->fast.code.size());
      model_entry->vm_superinstructions = cached.bytecode->superinstructions;
    }
  }

  Message response = MakeOk();
  if (governor.has_value() && governor->Interrupted()) {
    response.Set("status", kStatusPartial);
    response.Set("code", "3");
    response.Set("run-status", RunStatusName(governor->status()));
  }
  const double error_rate =
      seen == 0 ? 1.0 : static_cast<double>(wrong) / static_cast<double>(seen);
  response.Set("error", FormatDouble(error_rate));
  response.Set("examples-seen", std::to_string(seen));
  if (by_handle) response.Set("model-id", std::to_string(model_id));
  if (governor.has_value()) {
    response.Set("work-used", std::to_string(governor->work_used()));
  }
  return response;
}

Message Server::HandleQuery(const Message& request) {
  uint64_t id = 0;
  Message error;
  if (!ParseSessionId(request, &id, &error)) return error;
  StatusOr<std::shared_ptr<Session>> acquired = AcquireSession(id);
  if (!acquired.ok()) return MakeSessionError(id, acquired.status());
  Session& session = **acquired;
  const std::string* sentence_text = request.Find("sentence");
  const bool by_handle = request.Has("model-id");
  if ((sentence_text == nullptr) == !by_handle) {
    return MakeError(kExitUsage,
                     "query requires exactly one of 'sentence' and "
                     "'model-id'");
  }
  GovernorLimits limits;
  bool governed = false;
  std::string field_error;
  if (!RequestLimits(request, &limits, &governed, &field_error)) {
    return MakeError(kExitUsage, field_error);
  }

  std::vector<Vertex> env;
  if (by_handle) {
    // Handle form: result = the registered model's classification of the
    // request tuple (h_{φ,w̄}(v̄)), with zero per-request parsing.
    uint64_t model_id = 0;
    if (!ParseModelIdField(request, &model_id, &error)) return error;
    const std::string* tuple_text = request.Find("tuple");
    if (tuple_text == nullptr) {
      return MakeError(kExitUsage,
                       "query by model-id requires a 'tuple' field");
    }
    std::vector<Vertex> tuple;
    if (!ParseTupleField(*tuple_text, &tuple, &field_error)) {
      return MakeError(kExitUsage, field_error);
    }
    std::lock_guard<std::mutex> session_lock(session.mu);
    auto it = session.models.find(model_id);
    if (it == session.models.end()) {
      return MakeError(kExitUsage, "unknown model-id " +
                                       std::to_string(model_id) +
                                       " in session " + std::to_string(id));
    }
    if (!it->second.parsed.has_value()) {
      StatusOr<Hypothesis> reparsed = ParseHypothesis(it->second.text);
      if (!reparsed.ok()) {
        return MakeErrorFromStatus(DataLossError(
            "journaled model " + std::to_string(model_id) +
            " does not parse: " + reparsed.status().message()));
      }
      it->second.parsed = *std::move(reparsed);
    }
    const Hypothesis& hypothesis = *it->second.parsed;
    if (static_cast<int>(tuple.size()) != hypothesis.k()) {
      return MakeErrorFromStatus(DataLossError(
          "tuple arity " + std::to_string(tuple.size()) +
          " does not match the model's k=" +
          std::to_string(hypothesis.k())));
    }
    for (Vertex v : tuple) {
      if (!session.graph.IsValidVertex(v)) {
        return MakeErrorFromStatus(DataLossError(
            "tuple names vertex " + std::to_string(v) +
            " outside the session graph"));
      }
    }
    for (Vertex w : hypothesis.parameters) {
      if (!session.graph.IsValidVertex(w)) {
        return MakeErrorFromStatus(DataLossError(
            "model parameter vertex " + std::to_string(w) +
            " outside the session graph"));
      }
    }
    EvalOptions eval_options;
    eval_options.missing_color_is_false = true;
    eval_options.engine = options_.eval_engine;
    const CachedPlan cached = plan_cache_.GetOrCompile(
        hypothesis.formula, hypothesis.AllVars(), eval_options);
    env = std::move(tuple);
    env.insert(env.end(), hypothesis.parameters.begin(),
               hypothesis.parameters.end());
    std::optional<ResourceGovernor> governor;
    if (governed) {
      governor.emplace(limits);
      eval_options.governor = &*governor;
    }
    std::optional<EngineEvaluator> scratch;
    EngineEvaluator* evaluator;
    if (governed) {
      scratch.emplace(cached, session.graph, eval_options);
      evaluator = &*scratch;
    } else {
      evaluator = session.WarmEvaluator(cached, eval_options);
    }
    const auto exec_start = std::chrono::steady_clock::now();
    bool verdict = evaluator->Eval(env);
    Session::ModelEntry& entry = it->second;
    entry.evals += 1;
    entry.exec_ms += MsSince(exec_start);
    entry.engine = EvalEngineName(ResolveEngine(eval_options));
    entry.lower_ms = cached.lower_ms;
    if (cached.bytecode != nullptr && cached.bytecode->supported) {
      entry.vm_instructions =
          static_cast<int64_t>(cached.bytecode->fast.code.size());
      entry.vm_superinstructions = cached.bytecode->superinstructions;
    }
    Message response = MakeOk();
    response.Set("model-id", std::to_string(model_id));
    if (governor.has_value() && governor->Interrupted()) {
      response.Set("status", kStatusPartial);
      response.Set("code", "3");
      response.Set("run-status", RunStatusName(governor->status()));
      response.Set("result", "indeterminate");
    } else {
      response.Set("result", verdict ? "true" : "false");
    }
    if (governor.has_value()) {
      response.Set("work-used", std::to_string(governor->work_used()));
    }
    return response;
  }

  std::string parse_error;
  std::optional<FormulaRef> sentence =
      ParseFormula(*sentence_text, &parse_error);
  if (!sentence.has_value()) {
    return MakeError(kExitDataError, "cannot parse sentence: " + parse_error);
  }
  if (!(*sentence)->free_variables().empty()) {
    return MakeError(kExitDataError,
                     "query requires a sentence; '" +
                         (*sentence)->free_variables().front() +
                         "' occurs free");
  }

  EvalOptions eval_options;
  eval_options.missing_color_is_false = true;
  eval_options.engine = options_.eval_engine;
  const CachedPlan cached =
      plan_cache_.GetOrCompile(*sentence, {}, eval_options);

  std::lock_guard<std::mutex> session_lock(session.mu);
  std::optional<ResourceGovernor> governor;
  if (governed) {
    governor.emplace(limits);
    eval_options.governor = &*governor;
  }
  std::optional<EngineEvaluator> scratch;
  EngineEvaluator* evaluator;
  if (governed) {
    scratch.emplace(cached, session.graph, eval_options);
    evaluator = &*scratch;
  } else {
    // Warm path: a repeated sentence is a per-graph memo hit — the
    // evaluator answers without touching the graph again.
    evaluator = session.WarmEvaluator(cached, eval_options);
  }
  bool verdict = evaluator->Eval({});

  Message response = MakeOk();
  if (governor.has_value() && governor->Interrupted()) {
    response.Set("status", kStatusPartial);
    response.Set("code", "3");
    response.Set("run-status", RunStatusName(governor->status()));
    response.Set("result", "indeterminate");
  } else {
    response.Set("result", verdict ? "true" : "false");
  }
  if (governor.has_value()) {
    response.Set("work-used", std::to_string(governor->work_used()));
  }
  return response;
}

Message Server::HandleGetModel(const Message& request) {
  uint64_t id = 0;
  Message error;
  if (!ParseSessionId(request, &id, &error)) return error;
  StatusOr<std::shared_ptr<Session>> acquired = AcquireSession(id);
  if (!acquired.ok()) return MakeSessionError(id, acquired.status());
  Session& session = **acquired;
  if (!request.Has("model-id")) {
    return MakeError(kExitUsage, "get-model requires a 'model-id' field");
  }
  uint64_t model_id = 0;
  if (!ParseModelIdField(request, &model_id, &error)) return error;
  std::lock_guard<std::mutex> session_lock(session.mu);
  auto it = session.models.find(model_id);
  if (it == session.models.end()) {
    return MakeError(kExitUsage, "unknown model-id " +
                                     std::to_string(model_id) +
                                     " in session " + std::to_string(id));
  }
  const Session::ModelEntry& entry = it->second;
  Message response = MakeOk();
  response.Set("model-id", std::to_string(model_id));
  response.Set("model", entry.text);
  // Evaluation telemetry accumulated by evaluate/query on this handle.
  // `engine` is the engine of the most recent evaluation (the server
  // default before any); lower-ms and the vm-* fields stay 0 unless the
  // handle has run through the bytecode VM.
  response.Set("engine", entry.engine.empty()
                             ? EvalEngineName(options_.eval_engine)
                             : entry.engine.c_str());
  response.Set("evals", std::to_string(entry.evals));
  response.Set("exec-ms", FormatDouble(entry.exec_ms));
  response.Set("lower-ms", FormatDouble(entry.lower_ms));
  response.Set("vm-instructions", std::to_string(entry.vm_instructions));
  response.Set("vm-superinstructions",
               std::to_string(entry.vm_superinstructions));
  return response;
}

Message Server::HandleListModels(const Message& request) {
  uint64_t id = 0;
  Message error;
  if (!ParseSessionId(request, &id, &error)) return error;
  StatusOr<std::shared_ptr<Session>> acquired = AcquireSession(id);
  if (!acquired.ok()) return MakeSessionError(id, acquired.status());
  Session& session = **acquired;
  std::lock_guard<std::mutex> session_lock(session.mu);
  std::string ids;
  for (const auto& [model_id, entry] : session.models) {
    if (!ids.empty()) ids += ' ';
    ids += std::to_string(model_id);
  }
  Message response = MakeOk();
  response.Set("models", ids);
  response.Set("count", std::to_string(session.models.size()));
  return response;
}

Message Server::HandleStats(const Message& request) {
  (void)request;
  ServerStats stats = Snapshot();
  Message response = MakeOk();
  response.Set("requests", std::to_string(stats.requests));
  response.Set("ok", std::to_string(stats.ok));
  response.Set("partial", std::to_string(stats.partial));
  response.Set("shed", std::to_string(stats.shed));
  response.Set("errors", std::to_string(stats.errors));
  response.Set("sessions-opened", std::to_string(stats.sessions_opened));
  response.Set("sessions-closed", std::to_string(stats.sessions_closed));
  response.Set("sessions-recovered",
               std::to_string(stats.sessions_recovered));
  response.Set("sessions-rewarmed",
               std::to_string(stats.sessions_rewarmed));
  response.Set("sessions-evicted", std::to_string(stats.sessions_evicted));
  response.Set("models-registered",
               std::to_string(stats.models_registered));
  response.Set("dedup-hits", std::to_string(stats.dedup_hits));
  response.Set("disconnects", std::to_string(stats.disconnects));
  response.Set("journal-writes", std::to_string(stats.journal_writes));
  response.Set("durable", store_.enabled() ? "1" : "0");
  response.Set("plan-hits", std::to_string(stats.plan_hits));
  response.Set("plan-misses", std::to_string(stats.plan_misses));
  response.Set("plan-bytes", std::to_string(plan_cache_.bytes()));
  response.Set("inflight", std::to_string(stats.inflight));
  response.Set("eval-engine", EvalEngineName(options_.eval_engine));
  // Memory governance: the current tier, its counters, and the gauges the
  // watchdog published at its last tick (rss/mem-used are refreshed here
  // so `stats` is accurate even between ticks).
  response.Set("mem-tier",
               PressureTierName(static_cast<PressureTier>(stats.mem_tier)));
  response.Set("mem-shed", std::to_string(stats.mem_shed));
  response.Set("tier-transitions", std::to_string(stats.tier_transitions));
  response.Set("warm-evictions", std::to_string(stats.warm_evictions));
  response.Set("models-compacted", std::to_string(stats.models_compacted));
  response.Set("journal-compactions",
               std::to_string(stats.journal_compactions));
  response.Set("mem-budget-bytes",
               std::to_string(options_.mem_budget_bytes));
  response.Set("mem-used-bytes", std::to_string(stats.mem_used_bytes));
  response.Set("mem-peak-bytes", std::to_string(mem_budget_.peak()));
  response.Set("rss-bytes", std::to_string(stats.rss_bytes));
  return response;
}

ServerStats Server::Snapshot() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats = stats_;
  }
  stats.journal_writes = store_.journal_writes();
  stats.plan_hits = plan_cache_.hits();
  stats.plan_misses = plan_cache_.misses();
  stats.inflight = inflight_.load(std::memory_order_acquire);
  stats.mem_tier = tier_.load(std::memory_order_relaxed);
  stats.mem_used_bytes = mem_budget_.used();
  stats.rss_bytes = ReadRssBytes();
  return stats;
}

}  // namespace folearn
