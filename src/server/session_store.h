#ifndef FOLEARN_SERVER_SESSION_STORE_H_
#define FOLEARN_SERVER_SESSION_STORE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace folearn {

// Durable session journal for folearnd (write-ahead, per-session files).
//
// Everything the daemon acknowledges about a session — the graph binding,
// every registered model handle, and the learn dedup window — is recorded
// in a per-session journal file *before* the response frame leaves the
// process, so a crash or restart never loses acknowledged state:
//
//   <state-dir>/meta.ckpt           next-session-id (ids never reused)
//   <state-dir>/session-<id>.ckpt   one complete SessionRecord
//
// Each file is a checkpoint envelope (util/checkpoint.h: version line,
// length, FNV-1a checksum, temp-file + atomic rename), so a reader — or a
// restart racing a crash mid-write — observes either the previous complete
// record or the new one, never a torn file. The payload inside the
// envelope is the wire Message encoding (server/protocol.h), which already
// round-trips arbitrary bytes and rejects truncation as kDataLoss; a
// "journal-version" field guards against future layout skew the same way
// the frontier fingerprint does for checkpoints.
//
// Journal writes serialise on an internal mutex (they are per-request
// rare: session creation, learn, close). The crash hook mirrors the
// checkpointer's --crash-at-save: after the Nth completed journal write
// the process dies with kCrashExitCode, which is how the chaos harness
// kills the daemon at every journal-write point.

// The durable state of one session. Models and learns are kept in
// insertion order; `learns` is the bounded request-id dedup window, oldest
// first, mapping a client-supplied request id to the encoded response
// payload that was acknowledged for it.
struct SessionRecord {
  uint64_t id = 0;
  std::string graph_text;
  // File-backed sessions journal a path plus the payload fingerprint of
  // the graph instead of inlining the text: `graph_file` non-empty means
  // re-warm loads (and, for .fog files, memory-maps) the file and verifies
  // the fingerprint, so a swapped or rewritten file surfaces as data loss
  // rather than silently answering for the wrong graph.
  std::string graph_file;
  uint64_t graph_fingerprint = 0;
  uint64_t next_model_id = 1;
  std::vector<std::pair<uint64_t, std::string>> models;  // id -> model text
  std::vector<std::pair<std::string, std::string>> learns;
};

class SessionStore {
 public:
  // A store with an empty directory is disabled: every mutation succeeds
  // as a no-op and recovery finds nothing.
  SessionStore() = default;
  explicit SessionStore(std::string dir) : dir_(std::move(dir)) {}

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  // Creates the state directory if missing and verifies it is writable
  // (by round-tripping a probe through the atomic-write path).
  Status Init();

  // Ids of every journaled session, ascending. Files that are not
  // session-<id>.ckpt are ignored (the meta file, editor droppings).
  StatusOr<std::vector<uint64_t>> ListSessions() const;

  // Loads and validates one session record. NotFound when the session was
  // never journaled; kDataLoss with a diagnostic for corrupt bytes or
  // journal-version skew.
  StatusOr<SessionRecord> Load(uint64_t id) const;

  // Journal writes. Each completed write counts toward the crash hook.
  Status Save(const SessionRecord& record);
  Status Remove(uint64_t id);
  Status SaveNextSessionId(uint64_t next_session_id);
  // 1 when no meta file exists yet.
  StatusOr<uint64_t> LoadNextSessionId() const;

  int64_t journal_writes() const;

  // Test hook: die (exit kCrashExitCode) immediately after the Nth
  // completed journal write, 1-based; < 0 disables.
  void set_crash_at_journal_write(int64_t n) { crash_at_ = n; }

 private:
  std::string SessionPath(uint64_t id) const;
  std::string MetaPath() const;
  // Called with mu_ held, after a successful write/unlink.
  void CountWriteLocked();

  std::string dir_;
  mutable std::mutex mu_;
  int64_t journal_writes_ = 0;
  int64_t crash_at_ = -1;
};

}  // namespace folearn

#endif  // FOLEARN_SERVER_SESSION_STORE_H_
