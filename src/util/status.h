#ifndef FOLEARN_UTIL_STATUS_H_
#define FOLEARN_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace folearn {

// Recoverable-error model for everything that touches external input.
//
// The library's internal contract is CHECK-based: a violated invariant is a
// programming error and aborts. External input — graph/data/model files,
// checkpoint files, anything a user or another process can hand us — must
// never be able to reach those CHECKs. Loaders for such input return a
// `Status` (or `StatusOr<T>`) instead: corrupt, truncated, or
// version-skewed bytes yield a diagnostic the CLI can print and map to a
// sysexits-style exit code, never UB and never an abort.

enum class StatusCode {
  kOk = 0,
  // The input is structurally readable but semantically wrong (a value out
  // of range, a flag mismatch, an incompatible resume request).
  kInvalidArgument = 1,
  // The input source does not exist / cannot be opened.
  kNotFound = 2,
  // The input bytes are corrupt: parse failure, truncation, checksum or
  // version mismatch.
  kDataLoss = 3,
  // The environment refused an operation (e.g. a file write failed).
  kUnavailable = 4,
  // A byte budget or memory-pressure tier refused the operation. Always
  // retry-safe: nothing was acknowledged, and a retry after pressure
  // subsides (or against a bigger budget) can succeed.
  kResourceExhausted = 5,
};

// sysexits(3)-style process exit codes used by the CLI for input errors.
inline constexpr int kExitUsage = 64;      // EX_USAGE: bad invocation
inline constexpr int kExitDataError = 65;  // EX_DATAERR: corrupt input
inline constexpr int kExitNoInput = 66;    // EX_NOINPUT: missing input
inline constexpr int kExitTempFail = 75;   // EX_TEMPFAIL: retry later

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    FOLEARN_CHECK(code != StatusCode::kOk || message_.empty())
        << "OK status must not carry a message";
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

// Maps a non-OK status onto the CLI exit-code convention: missing input is
// EX_NOINPUT, everything malformed or mismatched is EX_DATAERR, and a
// refused-by-budget operation is EX_TEMPFAIL (75) — the classic "try
// again later" code, distinct from every data-error code so retry loops
// can key on it.
inline int StatusExitCode(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kNotFound:
      return kExitNoInput;
    case StatusCode::kInvalidArgument:
    case StatusCode::kDataLoss:
      return kExitDataError;
    case StatusCode::kResourceExhausted:
      return kExitTempFail;
    case StatusCode::kUnavailable:
      return 1;
  }
  return 1;
}

// A Status or a value. Dereferencing a non-OK StatusOr is a programming
// error (CHECK): callers must test ok() first.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit from error statuses
      : status_(std::move(status)) {
    FOLEARN_CHECK(!status_.ok())
        << "StatusOr constructed from OK status without a value";
  }
  StatusOr(T value)  // NOLINT: implicit from values
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FOLEARN_CHECK(ok()) << "value() on error status: " << status_.message();
    return *value_;
  }
  T& value() & {
    FOLEARN_CHECK(ok()) << "value() on error status: " << status_.message();
    return *value_;
  }
  T&& value() && {
    FOLEARN_CHECK(ok()) << "value() on error status: " << status_.message();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace folearn

#endif  // FOLEARN_UTIL_STATUS_H_
