#ifndef FOLEARN_UTIL_HASH_H_
#define FOLEARN_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace folearn {

// Mixes `value` into an accumulated hash (boost-style hash_combine with a
// 64-bit golden-ratio constant).
inline void HashCombine(size_t& seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

// Hash functor for std::vector<T> where T is hashable.
template <typename T>
struct VectorHash {
  size_t operator()(const std::vector<T>& values) const {
    size_t seed = values.size();
    std::hash<T> hasher;
    for (const T& value : values) HashCombine(seed, hasher(value));
    return seed;
  }
};

// Hash functor for std::pair.
template <typename A, typename B>
struct PairHash {
  size_t operator()(const std::pair<A, B>& p) const {
    size_t seed = std::hash<A>()(p.first);
    HashCombine(seed, std::hash<B>()(p.second));
    return seed;
  }
};

}  // namespace folearn

#endif  // FOLEARN_UTIL_HASH_H_
