#include "util/mem_budget.h"

#include <unistd.h>

#include <cstdio>

namespace folearn {

bool MemBudget::TryCharge(int64_t bytes) {
  FOLEARN_CHECK_GE(bytes, 0);
  if (ResourceFaults::Instance().ShouldFailAlloc()) {
    denied_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Charge leaf-to-root, rolling back the prefix on the first refusal.
  for (MemBudget* node = this; node != nullptr; node = node->parent_) {
    const int64_t now =
        node->used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (node->limit_ != kNoMemLimit && now > node->limit_) {
      for (MemBudget* undo = this; ; undo = undo->parent_) {
        undo->used_.fetch_sub(bytes, std::memory_order_relaxed);
        if (undo == node) break;
      }
      node->denied_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    node->BumpPeak(now);
  }
  return true;
}

void MemBudget::Charge(int64_t bytes) {
  FOLEARN_CHECK_GE(bytes, 0);
  for (MemBudget* node = this; node != nullptr; node = node->parent_) {
    const int64_t now =
        node->used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    node->BumpPeak(now);
  }
}

void MemBudget::Release(int64_t bytes) {
  FOLEARN_CHECK_GE(bytes, 0);
  for (MemBudget* node = this; node != nullptr; node = node->parent_) {
    node->used_.fetch_sub(bytes, std::memory_order_relaxed);
  }
}

const char* PressureTierName(PressureTier tier) {
  switch (tier) {
    case PressureTier::kGreen:
      return "green";
    case PressureTier::kYellow:
      return "yellow";
    case PressureTier::kRed:
      return "red";
    case PressureTier::kBlack:
      return "black";
  }
  FOLEARN_CHECK(false) << "unreachable";
  return "unknown";
}

PressureTier ClassifyPressure(int64_t used_bytes, int64_t budget_bytes,
                              const PressureThresholds& thresholds) {
  if (budget_bytes <= 0) return PressureTier::kGreen;
  const double load =
      static_cast<double>(used_bytes) / static_cast<double>(budget_bytes);
  if (load >= thresholds.black) return PressureTier::kBlack;
  if (load >= thresholds.red) return PressureTier::kRed;
  if (load >= thresholds.yellow) return PressureTier::kYellow;
  return PressureTier::kGreen;
}

int64_t ReadRssBytes() {
  // /proc/self/statm: "size resident shared text lib data dt" in pages.
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return -1;
  long long size_pages = 0;
  long long resident_pages = 0;
  const int parsed =
      std::fscanf(statm, "%lld %lld", &size_pages, &resident_pages);
  std::fclose(statm);
  if (parsed != 2) return -1;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return -1;
  return static_cast<int64_t>(resident_pages) * static_cast<int64_t>(page);
}

ResourceFaults& ResourceFaults::Instance() {
  static ResourceFaults* instance = new ResourceFaults();
  return *instance;
}

void ResourceFaults::ArmAllocFailure(int64_t nth) {
  FOLEARN_CHECK_GE(nth, 1) << "fault must be armed at a positive site";
  alloc_at_.store(alloc_count_.load(std::memory_order_relaxed) + nth,
                  std::memory_order_relaxed);
}

void ResourceFaults::ArmDiskFailure(int64_t nth, DiskMode mode) {
  FOLEARN_CHECK_GE(nth, 1) << "fault must be armed at a positive site";
  FOLEARN_CHECK(mode != DiskMode::kNone) << "arming a no-op disk fault";
  disk_mode_.store(static_cast<int>(mode), std::memory_order_relaxed);
  disk_at_.store(disk_count_.load(std::memory_order_relaxed) + nth,
                 std::memory_order_relaxed);
}

void ResourceFaults::ArmMmapFailure(int64_t nth) {
  FOLEARN_CHECK_GE(nth, 1) << "fault must be armed at a positive site";
  mmap_at_.store(mmap_count_.load(std::memory_order_relaxed) + nth,
                 std::memory_order_relaxed);
}

void ResourceFaults::Reset() {
  alloc_at_.store(0, std::memory_order_relaxed);
  disk_at_.store(0, std::memory_order_relaxed);
  mmap_at_.store(0, std::memory_order_relaxed);
  disk_mode_.store(0, std::memory_order_relaxed);
  alloc_count_.store(0, std::memory_order_relaxed);
  disk_count_.store(0, std::memory_order_relaxed);
  mmap_count_.store(0, std::memory_order_relaxed);
}

bool ResourceFaults::CountAndMaybeFire(std::atomic<int64_t>* counter,
                                       std::atomic<int64_t>* armed_at) {
  const int64_t seen = counter->fetch_add(1, std::memory_order_relaxed) + 1;
  int64_t at = armed_at->load(std::memory_order_relaxed);
  if (at == 0 || seen != at) return false;
  // One-shot: the thread that reaches the trip point disarms it. The
  // exchange makes exactly one caller observe the fault even if several
  // race past the counter.
  return armed_at->compare_exchange_strong(at, 0,
                                           std::memory_order_relaxed);
}

bool ResourceFaults::ShouldFailAlloc() {
  return CountAndMaybeFire(&alloc_count_, &alloc_at_);
}

ResourceFaults::DiskMode ResourceFaults::ShouldFailDiskWrite() {
  if (!CountAndMaybeFire(&disk_count_, &disk_at_)) return DiskMode::kNone;
  return static_cast<DiskMode>(disk_mode_.load(std::memory_order_relaxed));
}

bool ResourceFaults::ShouldFailMmap() {
  return CountAndMaybeFire(&mmap_count_, &mmap_at_);
}

}  // namespace folearn
