#ifndef FOLEARN_UTIL_GOVERNOR_H_
#define FOLEARN_UTIL_GOVERNOR_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/check.h"
#include "util/mem_budget.h"

namespace folearn {

// Anytime resource governance for the library's search loops.
//
// Every algorithm in this code base has a galactic worst case by design —
// brute-force ERM scans n^ℓ parameter tuples (Proposition 11), the
// Theorem 13 learner unrolls nondeterministic guesses, the Theorem 1
// reduction drives n² oracle calls per quantifier, MSO evaluation
// enumerates 2^n subsets. A `ResourceGovernor` turns "run to completion or
// abort" into *anytime* semantics: loops cooperatively call `Checkpoint()`
// (one call per natural work unit — typically one local-type computation
// or one quantifier branch) and stop early when a wall-clock deadline, a
// work budget, or an external cancellation flag trips. Interrupted
// learners return the best hypothesis found so far together with a
// `RunStatus` describing why they stopped.
//
// Determinism: the work-unit counter is independent of timing, so equal
// inputs with an equal `max_work` budget (or an equal `FaultInjector`
// trip point) interrupt at exactly the same point and produce identical
// results. Only `deadline_ms` is timing-dependent; tests use the injector
// instead.

// Why a governed run ended.
enum class RunStatus {
  kComplete = 0,          // ran to completion; the result is exact
  kDeadlineExceeded = 1,  // wall-clock deadline hit; best-so-far result
  kBudgetExhausted = 2,   // work-unit budget hit; best-so-far result
  kCancelled = 3,         // external cancellation flag; best-so-far result
  kResourceExhausted = 4, // memory budget hit; best-so-far result
};

// Stable lower-case name ("complete", "deadline-exceeded", …) for logs and
// the CLI.
const char* RunStatusName(RunStatus status);

inline bool IsInterrupted(RunStatus status) {
  return status != RunStatus::kComplete;
}

// Sentinel for "no limit" in GovernorLimits.
inline constexpr int64_t kNoLimit = -1;

struct GovernorLimits {
  // Wall-clock budget in milliseconds; kNoLimit disables. 0 is legal and
  // trips at the first checkpoint (useful for "plan only" dry runs).
  // Other negative values CHECK-fail at governor construction.
  int64_t deadline_ms = kNoLimit;
  // Work-unit budget; kNoLimit disables. Must be positive otherwise — a
  // zero budget would make every governed call trip before doing anything,
  // which is always a caller bug.
  int64_t max_work = kNoLimit;
  // Optional memory budget (nullptr disables; must outlive the governor).
  // Probed at the clock-probe stride: when the budget (or any of its
  // ancestors) reports OverLimit(), the run is cut with
  // kResourceExhausted and returns best-so-far — the byte-dimension
  // analogue of a deadline cut. Like the deadline, the probe is
  // allocation-pattern-dependent, not deterministic; tests that need a
  // deterministic memory trip use ResourceFaults or a FaultInjector with
  // RunStatus::kResourceExhausted instead.
  const MemBudget* mem_budget = nullptr;
};

// Exit code of a process killed by crash-point injection (FaultInjector::
// CrashAt or a checkpointer's crash-after-save hook). Distinct from every
// ordinary CLI exit code so crash-loop harnesses can tell an injected
// death from a real failure.
inline constexpr int kCrashExitCode = 70;

// Immediate process death for crash-point injection: prints a one-line
// notice and _Exits with kCrashExitCode (no atexit handlers, no flushes —
// the point is to model a kill, not a clean shutdown).
[[noreturn]] void InjectedCrash(const char* where, int64_t at);

// Test-only hook: deterministically trips the governor at exactly the Nth
// checkpoint (1-based), reporting `status`. Lets tests exercise every
// interruption path without timing flakiness. `CrashAt` builds the harsher
// variant: instead of latching a status, the process dies on the spot
// (exit code kCrashExitCode), modelling an OOM kill or power loss for the
// checkpoint/resume tests.
class FaultInjector {
 public:
  explicit FaultInjector(int64_t trip_at_checkpoint,
                         RunStatus status = RunStatus::kBudgetExhausted)
      : trip_at_(trip_at_checkpoint), status_(status) {
    FOLEARN_CHECK_GE(trip_at_checkpoint, 1)
        << "fault injector must trip at a positive checkpoint";
    FOLEARN_CHECK(IsInterrupted(status))
        << "fault injector cannot inject 'complete'";
  }

  // Die (std::_Exit(kCrashExitCode)) at exactly the Nth checkpoint.
  static FaultInjector CrashAt(int64_t trip_at_checkpoint) {
    FaultInjector injector(trip_at_checkpoint);
    injector.crash_ = true;
    return injector;
  }

  int64_t trip_at() const { return trip_at_; }
  RunStatus status() const { return status_; }
  bool crash() const { return crash_; }

 private:
  int64_t trip_at_;
  RunStatus status_;
  bool crash_ = false;
};

class ResourceGovernor {
 public:
  // Unlimited: checkpoints always pass (but still count work).
  ResourceGovernor() : ResourceGovernor(GovernorLimits{}) {}

  // `cancel` and `injector`, when given, must outlive the governor.
  // Negative deadlines (other than kNoLimit) and non-positive work budgets
  // (other than kNoLimit) CHECK-fail.
  explicit ResourceGovernor(const GovernorLimits& limits,
                            const std::atomic<bool>* cancel = nullptr,
                            const FaultInjector* injector = nullptr)
      : limits_(limits),
        cancel_(cancel),
        injector_(injector),
        start_(Clock::now()) {
    FOLEARN_CHECK(limits.deadline_ms == kNoLimit || limits.deadline_ms >= 0)
        << "negative deadline: " << limits.deadline_ms << " ms";
    FOLEARN_CHECK(limits.max_work == kNoLimit || limits.max_work > 0)
        << "work budget must be positive, got " << limits.max_work;
  }

  // The cooperative check. Returns true while the run may continue; once it
  // returns false it latches and every later call returns false too, so
  // nested loops unwind quickly. `units` is the work charged for the step
  // about to run (≥ 1 per call keeps interruption prompt).
  //
  // Cost when not tripping: a few predictable branches and two counter
  // increments; the wall clock is probed only every kClockProbeStride
  // checkpoints (and at the first), keeping the hot-loop overhead
  // negligible (< 2% on the ERM core, measured by bench_erm_core).
  bool Checkpoint(int64_t units = 1) {
    if (status_ != RunStatus::kComplete) return false;
    ++checkpoints_;
    work_ += units;
    if (injector_ != nullptr && checkpoints_ >= injector_->trip_at()) {
      if (injector_->crash()) InjectedCrash("checkpoint", checkpoints_);
      status_ = injector_->status();
      return false;
    }
    if (limits_.max_work != kNoLimit && work_ > limits_.max_work) {
      status_ = RunStatus::kBudgetExhausted;
      return false;
    }
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      status_ = RunStatus::kCancelled;
      return false;
    }
    if ((limits_.deadline_ms != kNoLimit || limits_.mem_budget != nullptr) &&
        checkpoints_ >= next_clock_probe_) {
      next_clock_probe_ = checkpoints_ + kClockProbeStride;
      if (limits_.deadline_ms != kNoLimit) {
        auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           Clock::now() - start_)
                           .count();
        if (elapsed >= limits_.deadline_ms) {
          status_ = RunStatus::kDeadlineExceeded;
          return false;
        }
      }
      if (limits_.mem_budget != nullptr && limits_.mem_budget->OverLimit()) {
        status_ = RunStatus::kResourceExhausted;
        return false;
      }
    }
    return true;
  }

  // How many further unit Checkpoint() calls are guaranteed to pass
  // considering only the *deterministic* limits (work budget and fault
  // injector): kNoLimit if neither is configured, 0 if already tripped.
  // Deadline and cancellation are deliberately excluded — they are
  // timing-dependent and polled separately via PassiveLimitHit(). Parallel
  // sweeps use this to fix their evaluation range up front so an
  // interrupted run selects the same winner for any thread count.
  int64_t DeterministicAllowance() const {
    if (status_ != RunStatus::kComplete) return 0;
    int64_t allowance = kNoLimit;
    if (injector_ != nullptr) {
      int64_t left = injector_->trip_at() - 1 - checkpoints_;
      allowance = left > 0 ? left : 0;
    }
    if (limits_.max_work != kNoLimit) {
      int64_t left = limits_.max_work - work_;
      if (left < 0) left = 0;
      allowance = allowance == kNoLimit ? left : std::min(allowance, left);
    }
    return allowance;
  }

  // Equivalent of `count` sequential unit Checkpoint() calls, in O(1).
  // Returns how many of them would have returned true. If the
  // deterministic limits trip inside the batch, the failing call is
  // counted (like Checkpoint()) and the status latches exactly as the
  // sequential loop would have latched it; otherwise cancellation and the
  // wall clock are probed once at the end of the batch. Parallel sweeps
  // use this to charge the sequential-equivalent work after evaluating a
  // pre-sized range, keeping work_used() and trip points identical to the
  // single-threaded scan.
  int64_t CheckpointBatch(int64_t count) {
    if (count <= 0 || status_ != RunStatus::kComplete) return 0;
    const int64_t allowance = DeterministicAllowance();
    if (allowance != kNoLimit && count > allowance) {
      checkpoints_ += allowance + 1;
      work_ += allowance + 1;
      if (injector_ != nullptr && checkpoints_ >= injector_->trip_at()) {
        if (injector_->crash()) InjectedCrash("checkpoint", checkpoints_);
        status_ = injector_->status();
      } else {
        status_ = RunStatus::kBudgetExhausted;
      }
      return allowance;
    }
    checkpoints_ += count;
    work_ += count;
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      status_ = RunStatus::kCancelled;
      return count - 1;
    }
    if (limits_.deadline_ms != kNoLimit) {
      next_clock_probe_ = checkpoints_ + kClockProbeStride;
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         Clock::now() - start_)
                         .count();
      if (elapsed >= limits_.deadline_ms) {
        status_ = RunStatus::kDeadlineExceeded;
        return count - 1;
      }
    }
    if (limits_.mem_budget != nullptr && limits_.mem_budget->OverLimit()) {
      status_ = RunStatus::kResourceExhausted;
      return count - 1;
    }
    return count;
  }

  // Read-only poll of the timing-dependent limits (deadline elapsed,
  // cancellation flag set, or an already-latched trip). Never mutates the
  // governor, so concurrent calls from worker threads are safe while the
  // owner is not checkpointing.
  bool PassiveLimitHit() const {
    if (status_ != RunStatus::kComplete) return true;
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return true;
    }
    if (limits_.deadline_ms != kNoLimit) {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         Clock::now() - start_)
                         .count();
      if (elapsed >= limits_.deadline_ms) return true;
    }
    if (limits_.mem_budget != nullptr && limits_.mem_budget->OverLimit()) {
      return true;
    }
    return false;
  }

  // Primes the ledger with work already accounted by an earlier process of
  // the same logical run (checkpoint/resume): restored units count against
  // max_work and the fault injector exactly as if they had been charged
  // here, so budget trips and diagnostics land at the same cut points as an
  // uninterrupted run. Must be called before the first Checkpoint()/
  // CheckpointBatch(); the wall-clock deadline is NOT restored — it
  // restarts at construction (deadlines are per-process by design).
  void RestoreLedger(int64_t work, int64_t checkpoints) {
    FOLEARN_CHECK_GE(work, 0);
    FOLEARN_CHECK_GE(checkpoints, 0);
    FOLEARN_CHECK_EQ(work_, 0)
        << "RestoreLedger after work was already charged";
    FOLEARN_CHECK_EQ(checkpoints_, 0);
    FOLEARN_CHECK(status_ == RunStatus::kComplete);
    work_ = work;
    checkpoints_ = checkpoints;
  }

  RunStatus status() const { return status_; }
  bool Interrupted() const { return IsInterrupted(status_); }
  int64_t work_used() const { return work_; }
  int64_t checkpoints_passed() const { return checkpoints_; }
  const GovernorLimits& limits() const { return limits_; }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr int64_t kClockProbeStride = 256;

  GovernorLimits limits_;
  const std::atomic<bool>* cancel_;
  const FaultInjector* injector_;
  Clock::time_point start_;
  int64_t work_ = 0;
  int64_t checkpoints_ = 0;
  int64_t next_clock_probe_ = 0;  // probe at the very first checkpoint
  RunStatus status_ = RunStatus::kComplete;
};

// Null-tolerant helpers: library code takes an optional `ResourceGovernor*`
// (nullptr = ungoverned) and uses these instead of branching on null at
// every checkpoint site.
inline bool GovernorCheckpoint(ResourceGovernor* governor,
                               int64_t units = 1) {
  return governor == nullptr || governor->Checkpoint(units);
}

inline RunStatus GovernorStatus(const ResourceGovernor* governor) {
  return governor == nullptr ? RunStatus::kComplete : governor->status();
}

inline bool GovernorInterrupted(const ResourceGovernor* governor) {
  return governor != nullptr && governor->Interrupted();
}

}  // namespace folearn

#endif  // FOLEARN_UTIL_GOVERNOR_H_
