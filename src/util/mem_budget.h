#ifndef FOLEARN_UTIL_MEM_BUDGET_H_
#define FOLEARN_UTIL_MEM_BUDGET_H_

#include <atomic>
#include <cstdint>

#include "util/check.h"

namespace folearn {

// Process-wide memory governance.
//
// The governor (util/governor.h) budgets time and work; nothing budgeted
// bytes. A long-lived folearnd warming BallCache/TypeRegistry/PlanCache
// state over million-vertex graphs can walk straight into the OOM killer —
// and the kernel's verdict is neither graceful nor deterministic. This
// header adds the byte dimension:
//
//   * `MemBudget` — a hierarchical byte accountant (process cap →
//     per-session caps → per-arena sub-accounts). Charging is two relaxed
//     atomic adds per level; the tree is at most three levels deep here.
//   * `PressureTier` — the degradation ladder the server's RSS watchdog
//     walks: green (normal) → yellow (stop admitting warm-state growth) →
//     red (evict idle warm state, shrink caches) → black (shed everything
//     but heartbeats). Never abort.
//   * `ResourceFaults` — deterministic *resource* fault injection
//     (allocation failure at the Nth charge site, ENOSPC/short-write/
//     fsync/rename failure at the Nth durable write, mmap failure),
//     mirroring FaultInjector's trip-at-Nth-checkpoint discipline so
//     tests can prove byte-identical recovery at every injection point.
//
// Accounting philosophy: caches (BallCache, PlanCache) use `TryCharge`
// and degrade to read-through when refused — caching is semantically
// transparent, so a refused charge never changes a result. Correctness
// state (TypeRegistry nodes, session journals) uses forced `Charge`; the
// governor notices `OverLimit()` at its next probe and cuts the run with
// RunStatus::kResourceExhausted, returning best-so-far — exactly how
// deadline and work cuts already behave.

// Sentinel for "no byte limit" (matches kNoLimit in util/governor.h; kept
// local to avoid an include cycle).
inline constexpr int64_t kNoMemLimit = -1;

class MemBudget {
 public:
  // `parent`, when given, must outlive this budget. A limit of kNoMemLimit
  // disables the local cap (charges still aggregate upward).
  explicit MemBudget(int64_t limit_bytes = kNoMemLimit,
                     MemBudget* parent = nullptr)
      : limit_(limit_bytes), parent_(parent) {
    FOLEARN_CHECK(limit_bytes == kNoMemLimit || limit_bytes >= 0)
        << "negative memory limit: " << limit_bytes;
  }

  // A budget may die with residual charges its accounts never released
  // (e.g. a session's journal share); they return to the parent so the
  // surviving ledger stays exact.
  ~MemBudget() {
    const int64_t residual = used_.load(std::memory_order_relaxed);
    if (parent_ != nullptr && residual > 0) parent_->Release(residual);
  }

  MemBudget(const MemBudget&) = delete;
  MemBudget& operator=(const MemBudget&) = delete;

  // All-or-nothing: charges this node and every ancestor, or rolls back
  // and returns false if any level would exceed its limit (or an armed
  // allocation fault fires — see ResourceFaults). Thread-safe; two relaxed
  // atomic RMWs per level on the success path.
  bool TryCharge(int64_t bytes);

  // Forced accounting: always succeeds, may push used() past limit().
  // Used for correctness state that cannot be refused mid-operation; the
  // governor's memory probe turns the overshoot into a governed
  // kResourceExhausted cut at the next checkpoint.
  void Charge(int64_t bytes);

  // Returns bytes to this node and every ancestor. Pairs with a
  // successful TryCharge or a Charge of the same amount.
  void Release(int64_t bytes);

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t limit() const { return limit_; }
  // Charges refused at this node (not counting ancestor refusals).
  int64_t denied() const { return denied_.load(std::memory_order_relaxed); }

  // True iff this node or any ancestor is over its own limit. The
  // governor's memory probe polls this.
  bool OverLimit() const {
    for (const MemBudget* node = this; node != nullptr;
         node = node->parent_) {
      if (node->limit_ != kNoMemLimit && node->used() > node->limit_) {
        return true;
      }
    }
    return false;
  }

 private:
  void BumpPeak(int64_t used_now) {
    int64_t seen = peak_.load(std::memory_order_relaxed);
    while (used_now > seen &&
           !peak_.compare_exchange_weak(seen, used_now,
                                        std::memory_order_relaxed)) {
    }
  }

  const int64_t limit_;
  MemBudget* const parent_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> denied_{0};
};

// The server's degradation ladder. Ordered: comparisons like
// `tier >= kRed` are meaningful.
enum class PressureTier {
  kGreen = 0,   // normal service
  kYellow = 1,  // stop admitting warm-state growth (caches read-through,
                // non-mmap load-graph shed retry-safe)
  kRed = 2,     // evict idle sessions' warm state, shrink shared caches
  kBlack = 3,   // shed all non-heartbeat requests; never abort
};

// Stable lower-case name ("green", "yellow", "red", "black").
const char* PressureTierName(PressureTier tier);

// Fractions of the budget at which each tier engages.
struct PressureThresholds {
  double yellow = 0.70;
  double red = 0.85;
  double black = 0.95;
};

// Classifies `used_bytes` against `budget_bytes`. A non-positive budget
// (or kNoMemLimit) means ungoverned: always green.
PressureTier ClassifyPressure(int64_t used_bytes, int64_t budget_bytes,
                              const PressureThresholds& thresholds = {});

// Resident set size of the calling process in bytes (/proc/self/statm),
// or -1 where unavailable — callers fall back to accounted bytes.
int64_t ReadRssBytes();

// Process-wide deterministic resource fault injection. Each site class
// keeps a monotone acquisition counter; arming "fail at N" makes exactly
// the Nth acquisition after arming fail, then the site disarms (a
// transient fault — the system must degrade, recover, and keep serving).
// Counters run even while disarmed so sweeps can first count a workload's
// sites, then replay it once per site index — FaultInjector's
// trip-at-Nth-checkpoint discipline applied to bytes and disk.
//
// Thread-safe. Tests must Reset() between cases; production never arms.
class ResourceFaults {
 public:
  enum class DiskMode {
    kNone = 0,       // no fault
    kOpenFail = 1,   // temp file cannot be created (ENOSPC on open)
    kShortWrite = 2, // write stops partway (ENOSPC mid-write)
    kSyncFail = 3,   // data written but fsync fails
    kRenameFail = 4, // durable temp written but the atomic rename fails
  };

  static ResourceFaults& Instance();

  // Arm exactly one failure at the Nth (1-based) future acquisition.
  void ArmAllocFailure(int64_t nth);
  void ArmDiskFailure(int64_t nth, DiskMode mode);
  void ArmMmapFailure(int64_t nth);
  // Disarms everything and zeroes the site counters.
  void Reset();

  // Called by MemBudget::TryCharge. True = this charge must fail.
  bool ShouldFailAlloc();
  // Called by WriteFileAtomic once per durable write. kNone = proceed.
  DiskMode ShouldFailDiskWrite();
  // Called by the .fog mapper before mmap. True = the mapping must fail.
  bool ShouldFailMmap();

  // Acquisitions seen so far per site class (for sweep sizing).
  int64_t alloc_sites() const {
    return alloc_count_.load(std::memory_order_relaxed);
  }
  int64_t disk_writes() const {
    return disk_count_.load(std::memory_order_relaxed);
  }
  int64_t mmaps() const {
    return mmap_count_.load(std::memory_order_relaxed);
  }

 private:
  ResourceFaults() = default;

  // Counter handling shared by the three site classes: bump the site
  // counter; fire iff armed and the counter just reached the trip point,
  // disarming in the same atomic exchange.
  static bool CountAndMaybeFire(std::atomic<int64_t>* counter,
                                std::atomic<int64_t>* armed_at);

  std::atomic<int64_t> alloc_count_{0};
  std::atomic<int64_t> disk_count_{0};
  std::atomic<int64_t> mmap_count_{0};
  // 0 = disarmed; otherwise the absolute counter value that fails.
  std::atomic<int64_t> alloc_at_{0};
  std::atomic<int64_t> disk_at_{0};
  std::atomic<int64_t> mmap_at_{0};
  std::atomic<int> disk_mode_{0};
};

}  // namespace folearn

#endif  // FOLEARN_UTIL_MEM_BUDGET_H_
