#ifndef FOLEARN_UTIL_STRINGS_H_
#define FOLEARN_UTIL_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace folearn {

// Joins `items` with `separator` using operator<< for each element.
template <typename Container>
std::string Join(const Container& items, std::string_view separator) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out << separator;
    out << item;
    first = false;
  }
  return out.str();
}

// Splits `text` on `delimiter`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char delimiter);

// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

}  // namespace folearn

#endif  // FOLEARN_UTIL_STRINGS_H_
