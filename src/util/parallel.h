#ifndef FOLEARN_UTIL_PARALLEL_H_
#define FOLEARN_UTIL_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <limits>

#include "util/governor.h"

namespace folearn {

// Deterministic parallel execution for the library's search sweeps.
//
// Every hot loop in this code base — the n^ℓ parameter scan of
// BruteForceErm (Proposition 11), the tuple×formula grid of
// EnumerationErm, the nd-learner's final candidate evaluation
// (Theorem 13) — is an argmin over an index range where evaluating one
// index is independent of all others. `ParallelSweep` runs such a range
// on a shared lazily-started thread pool and reduces with an
// index-ordered argmin, so the selected winner is byte-identical for any
// thread count:
//
//  * Chunks of indices are claimed in strictly increasing order from an
//    atomic counter, so the set of claimed chunks is always a prefix of
//    the range.
//  * On a "hit" (e.g. a zero-error candidate) workers stop claiming new
//    chunks but run their in-flight chunks to completion; hence every
//    index below the minimum reported hit has been evaluated, and the
//    minimum hit index is exact regardless of timing.
//  * Ties in the reduction key keep the lowest index, matching the
//    first-minimiser rule of the sequential scans.
//
// Governor integration is split in two (see ResourceGovernor):
// deterministic limits (work budget, fault injector) are converted by the
// caller into a fixed evaluation range *before* the sweep via
// `DeterministicAllowance()`, and charged afterwards via
// `CheckpointBatch()`; timing-dependent limits (deadline, cancellation)
// are polled read-only per item via `PassiveLimitHit()` and abort
// mid-chunk with best-so-far semantics, exactly like PR 2's sequential
// anytime loops.

// Resolves a requested thread count: 0 means "hardware concurrency",
// values are clamped to [1, 256]. Negative counts CHECK-fail.
int EffectiveThreads(int requested);

// A lazily started, globally shared pool of worker threads. Grows on
// demand up to the clamp in EffectiveThreads; threads idle on a condition
// variable between jobs and are joined at process exit.
class ThreadPool {
 public:
  static ThreadPool& Global();

  // Runs body(0), …, body(workers−1) concurrently and returns when all
  // have finished. The calling thread executes body(0) itself, so
  // workers == 1 never touches the pool and a call from inside a pool
  // worker (nested parallelism) degrades to a sequential loop instead of
  // deadlocking. Exceptions must not escape `body` (the library is
  // exception-free by convention; CHECK failures abort).
  void RunParallel(int workers, const std::function<void(int)>& body);

  int started_threads() const;

  ~ThreadPool();

 private:
  ThreadPool() = default;
  struct Impl;
  Impl* impl();  // lazily constructed guts
  Impl* impl_ = nullptr;
};

// Static-chunked parallel-for over [0, n): runs body(index, worker) for
// every index, with chunks claimed in increasing order. No reduction, no
// early exit; `threads` is used as given (callers resolve via
// EffectiveThreads).
void ParallelFor(int64_t n, int threads, int64_t chunk_size,
                 const std::function<void(int64_t, int)>& body);

struct SweepOptions {
  int threads = 1;         // resolved worker count (EffectiveThreads)
  int64_t chunk_size = 16;  // indices claimed per chunk
  // Polled read-only per item for deadline/cancellation; nullptr = never
  // stops. Deterministic limits must be pre-resolved by the caller via
  // DeterministicAllowance() — the sweep itself never mutates the
  // governor.
  const ResourceGovernor* governor = nullptr;
  // Stop claiming new chunks once an item reports a hit (in-flight chunks
  // still complete, keeping the minimum hit index exact).
  bool stop_on_hit = true;
};

struct SweepOutcome {
  // Items fully evaluated, summed over workers. Equals n unless a hit or
  // a passive limit stopped the sweep.
  int64_t evaluated = 0;
  // Lexicographic argmin of (key, index) over evaluated items; −1 if none.
  int64_t best_index = -1;
  double best_key = std::numeric_limits<double>::infinity();
  // Minimum index reporting a hit, −1 if none. Exact (thread-count and
  // timing independent) whenever passive_stop is false.
  int64_t first_hit = -1;
  // A deadline/cancellation poll fired; the evaluated set may then be a
  // non-contiguous subset of [0, n) and the outcome is timing-dependent,
  // matching the sequential deadline semantics.
  bool passive_stop = false;
};

// Evaluates eval(index, worker) → (key, hit) for index ∈ [0, n) and
// reduces as described above. `eval` runs concurrently from multiple
// workers: it must only touch shared state read-only, keeping mutable
// scratch per worker index.
SweepOutcome ParallelSweep(
    int64_t n, const SweepOptions& options,
    const std::function<std::pair<double, bool>(int64_t, int)>& eval);

}  // namespace folearn

#endif  // FOLEARN_UTIL_PARALLEL_H_
