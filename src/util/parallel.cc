#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"

namespace folearn {

namespace {

constexpr int kMaxThreads = 256;

// Set while the current thread is executing a pool job, so nested
// RunParallel calls degrade to sequential execution instead of waiting on
// workers that can never be scheduled.
thread_local bool t_in_pool_worker = false;

}  // namespace

int EffectiveThreads(int requested) {
  FOLEARN_CHECK_GE(requested, 0) << "thread count must be >= 0";
  if (requested == 0) {
    unsigned hardware = std::thread::hardware_concurrency();
    requested = hardware == 0 ? 1 : static_cast<int>(hardware);
  }
  if (requested > kMaxThreads) requested = kMaxThreads;
  return requested;
}

struct ThreadPool::Impl {
  std::mutex run_mutex;  // serialises jobs; one job owns the pool at a time

  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::vector<std::thread> threads;
  const std::function<void(int)>* job = nullptr;
  int job_workers = 0;   // pool-side worker count for the current job
  int job_claimed = 0;   // pool workers that have picked up the job
  int job_pending = 0;   // pool workers still running the job
  bool stopping = false;

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    work_cv.notify_all();
    for (std::thread& thread : threads) thread.join();
  }

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      work_cv.wait(lock, [&] {
        return stopping || (job != nullptr && job_claimed < job_workers);
      });
      if (stopping) return;
      // Pool workers are numbered from 1; the submitting thread is 0.
      const int worker = ++job_claimed;
      const std::function<void(int)>* body = job;
      lock.unlock();
      t_in_pool_worker = true;
      (*body)(worker);
      t_in_pool_worker = false;
      lock.lock();
      if (--job_pending == 0) done_cv.notify_all();
    }
  }

  void EnsureThreads(int count) {
    while (static_cast<int>(threads.size()) < count) {
      threads.emplace_back([this] { WorkerLoop(); });
    }
  }
};

ThreadPool::Impl* ThreadPool::impl() {
  // The pool is only grown from RunParallel under run_mutex… but run_mutex
  // lives inside Impl, so construction itself must be race-free. Calls all
  // come from threads that are about to serialise on run_mutex anyway;
  // guard construction with a local static mutex to be safe under TSan.
  static std::mutex init_mutex;
  std::lock_guard<std::mutex> lock(init_mutex);
  if (impl_ == nullptr) impl_ = new Impl();
  return impl_;
}

ThreadPool::~ThreadPool() { delete impl_; }

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

int ThreadPool::started_threads() const {
  if (impl_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return static_cast<int>(impl_->threads.size());
}

void ThreadPool::RunParallel(int workers,
                             const std::function<void(int)>& body) {
  FOLEARN_CHECK_GE(workers, 1);
  FOLEARN_CHECK_LE(workers, kMaxThreads);
  if (workers == 1 || t_in_pool_worker) {
    for (int worker = 0; worker < workers; ++worker) body(worker);
    return;
  }
  Impl* pool = impl();
  std::lock_guard<std::mutex> run_lock(pool->run_mutex);
  {
    std::lock_guard<std::mutex> lock(pool->mutex);
    pool->EnsureThreads(workers - 1);
    pool->job = &body;
    pool->job_workers = workers - 1;
    pool->job_claimed = 0;
    pool->job_pending = workers - 1;
  }
  pool->work_cv.notify_all();
  // The submitting thread is worker 0. Mark it as inside the pool for the
  // duration so nested RunParallel calls degrade to sequential instead of
  // re-locking run_mutex (self-deadlock).
  t_in_pool_worker = true;
  body(0);
  t_in_pool_worker = false;
  std::unique_lock<std::mutex> lock(pool->mutex);
  pool->done_cv.wait(lock, [&] { return pool->job_pending == 0; });
  pool->job = nullptr;
}

void ParallelFor(int64_t n, int threads, int64_t chunk_size,
                 const std::function<void(int64_t, int)>& body) {
  if (n <= 0) return;
  FOLEARN_CHECK_GE(threads, 1);
  if (chunk_size < 1) chunk_size = 1;
  const int64_t total_chunks = (n - 1) / chunk_size + 1;
  std::atomic<int64_t> next_chunk{0};
  auto run = [&](int worker) {
    while (true) {
      const int64_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= total_chunks) return;
      const int64_t begin = chunk * chunk_size;
      const int64_t end =
          n - begin > chunk_size ? begin + chunk_size : n;
      for (int64_t index = begin; index < end; ++index) body(index, worker);
    }
  };
  ThreadPool::Global().RunParallel(threads, run);
}

SweepOutcome ParallelSweep(
    int64_t n, const SweepOptions& options,
    const std::function<std::pair<double, bool>(int64_t, int)>& eval) {
  SweepOutcome out;
  if (n <= 0) return out;
  const int workers = options.threads < 1 ? 1 : options.threads;
  const int64_t chunk_size = options.chunk_size < 1 ? 1 : options.chunk_size;
  const int64_t total_chunks = (n - 1) / chunk_size + 1;

  std::atomic<int64_t> next_chunk{0};
  // Set on a hit (when stop_on_hit): stop claiming chunks, finish
  // in-flight ones so every index below the minimum hit gets evaluated.
  std::atomic<bool> stop_issuing{false};
  // Set on a passive governor limit: abandon mid-chunk immediately.
  std::atomic<bool> abort_now{false};

  struct Local {
    int64_t evaluated = 0;
    int64_t best_index = -1;
    double best_key = std::numeric_limits<double>::infinity();
    int64_t first_hit = -1;
    bool passive = false;
    // Pad out false sharing between adjacent workers' accumulators.
    char padding[64];
  };
  std::vector<Local> locals(workers);

  auto run = [&](int worker) {
    Local& local = locals[worker];
    while (!stop_issuing.load(std::memory_order_relaxed)) {
      const int64_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= total_chunks) return;
      const int64_t begin = chunk * chunk_size;
      const int64_t end =
          n - begin > chunk_size ? begin + chunk_size : n;
      for (int64_t index = begin; index < end; ++index) {
        if (abort_now.load(std::memory_order_relaxed)) return;
        if (options.governor != nullptr && options.governor->PassiveLimitHit()) {
          local.passive = true;
          abort_now.store(true, std::memory_order_relaxed);
          stop_issuing.store(true, std::memory_order_relaxed);
          return;
        }
        const auto [key, hit] = eval(index, worker);
        ++local.evaluated;
        if (local.best_index < 0 || key < local.best_key ||
            (key == local.best_key && index < local.best_index)) {
          local.best_key = key;
          local.best_index = index;
        }
        if (hit) {
          if (local.first_hit < 0 || index < local.first_hit) {
            local.first_hit = index;
          }
          if (options.stop_on_hit) {
            stop_issuing.store(true, std::memory_order_relaxed);
          }
        }
      }
    }
  };
  ThreadPool::Global().RunParallel(workers, run);

  for (const Local& local : locals) {
    out.evaluated += local.evaluated;
    out.passive_stop = out.passive_stop || local.passive;
    if (local.best_index >= 0 &&
        (out.best_index < 0 || local.best_key < out.best_key ||
         (local.best_key == out.best_key &&
          local.best_index < out.best_index))) {
      out.best_key = local.best_key;
      out.best_index = local.best_index;
    }
    if (local.first_hit >= 0 &&
        (out.first_hit < 0 || local.first_hit < out.first_hit)) {
      out.first_hit = local.first_hit;
    }
  }
  return out;
}

}  // namespace folearn
