#include "util/governor.h"

namespace folearn {

const char* RunStatusName(RunStatus status) {
  switch (status) {
    case RunStatus::kComplete:
      return "complete";
    case RunStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case RunStatus::kBudgetExhausted:
      return "budget-exhausted";
    case RunStatus::kCancelled:
      return "cancelled";
  }
  FOLEARN_CHECK(false) << "unreachable";
  return "unknown";
}

}  // namespace folearn
