#include "util/governor.h"

#include <cstdio>
#include <cstdlib>

namespace folearn {

void InjectedCrash(const char* where, int64_t at) {
  std::fprintf(stderr, "crash injection: dying at %s %lld\n", where,
               static_cast<long long>(at));
  std::fflush(stderr);
  std::_Exit(kCrashExitCode);
}

const char* RunStatusName(RunStatus status) {
  switch (status) {
    case RunStatus::kComplete:
      return "complete";
    case RunStatus::kDeadlineExceeded:
      return "deadline-exceeded";
    case RunStatus::kBudgetExhausted:
      return "budget-exhausted";
    case RunStatus::kCancelled:
      return "cancelled";
    case RunStatus::kResourceExhausted:
      return "resource-exhausted";
  }
  FOLEARN_CHECK(false) << "unreachable";
  return "unknown";
}

}  // namespace folearn
