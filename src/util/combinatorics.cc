#include "util/combinatorics.h"

#include <limits>

#include "util/check.h"

namespace folearn {

namespace {
constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();

// a * b saturating at INT64_MAX; requires a, b >= 0.
int64_t SatMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kInt64Max / b) return kInt64Max;
  return a * b;
}

// a + b saturating at INT64_MAX; requires a, b >= 0.
int64_t SatAdd(int64_t a, int64_t b) {
  if (a > kInt64Max - b) return kInt64Max;
  return a + b;
}
}  // namespace

bool ForEachTuple(
    int64_t base, int length,
    const std::function<bool(const std::vector<int64_t>&)>& visit) {
  FOLEARN_CHECK_GE(length, 0);
  if (length > 0) {
    FOLEARN_CHECK_GT(base, 0);
  }
  std::vector<int64_t> tuple(length, 0);
  while (true) {
    if (!visit(tuple)) return false;
    int pos = length - 1;
    while (pos >= 0 && tuple[pos] == base - 1) {
      tuple[pos] = 0;
      --pos;
    }
    if (pos < 0) return true;
    ++tuple[pos];
  }
}

bool ForEachSubset(
    int64_t n, int size,
    const std::function<bool(const std::vector<int64_t>&)>& visit) {
  FOLEARN_CHECK_GE(size, 0);
  FOLEARN_CHECK_GE(n, 0);
  if (size > n) return true;
  std::vector<int64_t> subset(size);
  for (int i = 0; i < size; ++i) subset[i] = i;
  while (true) {
    if (!visit(subset)) return false;
    // Advance to the next increasing sequence.
    int pos = size - 1;
    while (pos >= 0 && subset[pos] == n - size + pos) --pos;
    if (pos < 0) return true;
    ++subset[pos];
    for (int i = pos + 1; i < size; ++i) subset[i] = subset[i - 1] + 1;
  }
}

bool ForEachSubsetUpTo(
    int64_t n, int min_size, int max_size,
    const std::function<bool(const std::vector<int64_t>&)>& visit) {
  FOLEARN_CHECK_GE(min_size, 0);
  FOLEARN_CHECK_GE(max_size, min_size);
  for (int size = min_size; size <= max_size; ++size) {
    if (!ForEachSubset(n, size, visit)) return false;
  }
  return true;
}

std::vector<int64_t> NthTuple(int64_t base, int length, int64_t index) {
  FOLEARN_CHECK_GE(length, 0);
  FOLEARN_CHECK_GE(index, 0);
  if (length > 0) {
    FOLEARN_CHECK_GT(base, 0);
  }
  std::vector<int64_t> tuple(length, 0);
  for (int pos = length - 1; pos >= 0; --pos) {
    tuple[pos] = index % base;
    index /= base;
  }
  FOLEARN_CHECK_EQ(index, 0) << "tuple index out of range";
  return tuple;
}

int64_t SaturatingMul(int64_t a, int64_t b) {
  FOLEARN_CHECK_GE(a, 0);
  FOLEARN_CHECK_GE(b, 0);
  return SatMul(a, b);
}

int64_t Binomial(int64_t n, int64_t k) {
  if (k < 0 || k > n) return 0;
  k = std::min(k, n - k);
  int64_t result = 1;
  for (int64_t i = 1; i <= k; ++i) {
    // result = result * (n - k + i) / i, keeping exact integer arithmetic.
    int64_t numerator = n - k + i;
    // Divide first where possible to delay overflow.
    int64_t g = result % i == 0 ? i : 1;
    int64_t reduced = result / g;
    int64_t rem_div = i / g;
    if (numerator % rem_div == 0) {
      numerator /= rem_div;
      rem_div = 1;
    }
    result = SatMul(reduced, numerator);
    if (rem_div != 1) result /= rem_div;
    if (result == kInt64Max) return kInt64Max;
  }
  return result;
}

int64_t SaturatingPow(int64_t base, int exp) {
  FOLEARN_CHECK_GE(base, 0);
  FOLEARN_CHECK_GE(exp, 0);
  int64_t result = 1;
  for (int i = 0; i < exp; ++i) result = SatMul(result, base);
  return result;
}

namespace {

// R(2-subsets; colours; 3): monochromatic-triangle Ramsey number with
// `colours` colours. Classical recurrence R_c ≤ c·(R_{c−1} − 1) + 2,
// R_1 = 3 (any 3 vertices with one colour contain a mono triangle).
int64_t PairTriangleRamsey(int64_t colours) {
  int64_t r = 3;
  for (int64_t c = 2; c <= colours; ++c) {
    r = SatAdd(SatMul(c, r - 1), 2);
    if (r == kInt64Max) return r;
  }
  return r;
}

// Two-colour graph Ramsey bound R(m, m) ≤ C(2m − 2, m − 1) ≤ 4^m.
int64_t PairTwoColourRamsey(int m) { return Binomial(2 * m - 2, m - 1); }

}  // namespace

int64_t RamseyUpperBound(int k, int64_t colours, int m) {
  FOLEARN_CHECK_GE(k, 1);
  FOLEARN_CHECK_GE(colours, 1);
  FOLEARN_CHECK_GE(m, 1);
  if (m <= k) return m;      // any m-subset is trivially monochromatic
  if (colours == 1) return m;
  if (k == 1) {
    // Pigeonhole: colours·(m−1) + 1 elements force m of one colour.
    return SatAdd(SatMul(colours, m - 1), 1);
  }
  if (k == 2) {
    if (m == 3) return PairTriangleRamsey(colours);
    if (colours == 2) return PairTwoColourRamsey(m);
    // Colour-merging bound: R_c(m) ≤ R_2(R_{c−1}(m), m) ≤ 4^{R_{c−1}(m)}.
    int64_t inner = RamseyUpperBound(2, colours - 1, m);
    if (inner >= 31) return kInt64Max;  // 4^31 overflows; saturate
    return SaturatingPow(4, static_cast<int>(inner));
  }
  // Hypergraph step-down (Erdős–Rado): R_k ≤ 2^{C(R_{k−1}, k−1)}-ish; any
  // finite certificate suffices for our callers, so saturate aggressively.
  int64_t lower_order = RamseyUpperBound(k - 1, colours, m);
  if (lower_order >= 62) return kInt64Max;
  return SaturatingPow(2, static_cast<int>(lower_order));
}

}  // namespace folearn
