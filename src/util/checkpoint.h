#ifndef FOLEARN_UTIL_CHECKPOINT_H_
#define FOLEARN_UTIL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace folearn {

// Durable, tamper-evident state files for crash-safe checkpoint/resume.
//
// A checkpoint file is a small text envelope around an opaque payload:
//
//   folearn-checkpoint v1
//   length <payload bytes>
//   crc <16 hex digits, FNV-1a 64 of the payload>
//   <payload>
//
// Writes go through a temp file in the same directory followed by an
// atomic rename, so a reader (or a crash mid-write) never observes a
// half-written checkpoint: either the previous complete file or the new
// complete file exists. Reads validate magic, version, length, and
// checksum before handing the payload back; every failure mode — missing
// file, foreign bytes, truncation, bit flips, version skew — comes back as
// a Status with a line-level diagnostic, never UB.

// FNV-1a 64-bit hash; the checkpoint checksum and the problem fingerprint
// both use it (stable across platforms, trivially reimplementable).
uint64_t Fnv1a64(std::string_view bytes);
// Continues an FNV-1a accumulation (chain fields without concatenating).
uint64_t Fnv1a64(std::string_view bytes, uint64_t seed);

// Writes `content` to `path` via temp file + rename. On failure the
// original file (if any) is untouched.
Status WriteFileAtomic(const std::string& path, std::string_view content);

// Reads a whole file. NotFound if it cannot be opened.
StatusOr<std::string> ReadFileToString(const std::string& path);

// Wraps `payload` in the checkpoint envelope and writes it atomically.
Status WriteCheckpointFile(const std::string& path, std::string_view payload);

// Reads and validates a checkpoint envelope, returning the payload.
// NotFound if the file is missing; DataLoss with a diagnostic naming the
// offending line for anything corrupt, truncated, or version-skewed.
StatusOr<std::string> ReadCheckpointFile(const std::string& path);

}  // namespace folearn

#endif  // FOLEARN_UTIL_CHECKPOINT_H_
