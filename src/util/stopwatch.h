#ifndef FOLEARN_UTIL_STOPWATCH_H_
#define FOLEARN_UTIL_STOPWATCH_H_

#include <chrono>

namespace folearn {

// Wall-clock stopwatch for the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace folearn

#endif  // FOLEARN_UTIL_STOPWATCH_H_
