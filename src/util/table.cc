#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace folearn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FOLEARN_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  FOLEARN_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](std::ostringstream& out,
                      const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << cells[c]
          << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };
  std::ostringstream out;
  emit_row(out, headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(out, row);
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace folearn
