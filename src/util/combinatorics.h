#ifndef FOLEARN_UTIL_COMBINATORICS_H_
#define FOLEARN_UTIL_COMBINATORICS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace folearn {

// Enumeration helpers shared by the brute-force learners (Proposition 11
// iterates over all parameter tuples w̄ ∈ V(G)^ℓ), the type machinery, and
// the hardness reduction (which enumerates pairs and subsets).

// Calls `visit` on every tuple in {0, …, base−1}^length, in lexicographic
// order. `length == 0` yields exactly the empty tuple. Stops early if
// `visit` returns false; returns false iff it stopped early.
bool ForEachTuple(int64_t base, int length,
                  const std::function<bool(const std::vector<int64_t>&)>& visit);

// Calls `visit` on every strictly increasing `size`-subset of
// {0, …, n−1}. Stops early if `visit` returns false; returns false iff it
// stopped early.
bool ForEachSubset(int64_t n, int size,
                   const std::function<bool(const std::vector<int64_t>&)>& visit);

// Calls `visit` on every subset of {0, …, n−1} of size between `min_size`
// and `max_size` (inclusive), smaller sizes first.
bool ForEachSubsetUpTo(int64_t n, int min_size, int max_size,
                       const std::function<bool(const std::vector<int64_t>&)>& visit);

// The `index`-th tuple (0-based) of the lexicographic enumeration that
// ForEachTuple(base, length, …) produces — i.e. `index` written in base
// `base` with `length` digits, most significant first. Random access into
// the tuple space is what lets the parallel sweeps hand out index ranges
// without replaying the enumeration. Requires 0 ≤ index < base^length
// (CHECK-fails otherwise; length == 0 admits only index 0).
std::vector<int64_t> NthTuple(int64_t base, int length, int64_t index);

// n choose k, saturating at INT64_MAX.
int64_t Binomial(int64_t n, int64_t k);

// a * b over non-negative int64, saturating at INT64_MAX.
int64_t SaturatingMul(int64_t a, int64_t b);

// pow(base, exp) over int64, saturating at INT64_MAX.
int64_t SaturatingPow(int64_t base, int exp);

// A computable upper bound on the hypergraph Ramsey number R(k; colours; m):
// the least r such that every colouring of the k-subsets of an r-set with
// `colours` colours has a monochromatic m-subset.
//
// Used by the hardness reduction (Lemma 7) which sets h(p) = R(2, s, 3):
// pair colourings with s colours force a monochromatic triangle once
// |T| > h(p). For k = 2 we use the classical product bound
// R_2(colours; 3) ≤ 3 · colours! (via the recurrence R ≤ colours·(R'−1)+2),
// and for m > 3 the Greenwood–Gleason style recurrence. Values saturate at
// INT64_MAX — they are galactic by design; the implementation never needs to
// *reach* them, it only needs them as a termination certificate.
int64_t RamseyUpperBound(int k, int64_t colours, int m);

}  // namespace folearn

#endif  // FOLEARN_UTIL_COMBINATORICS_H_
