#ifndef FOLEARN_UTIL_RNG_H_
#define FOLEARN_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/check.h"

namespace folearn {

// Deterministic random number generator used throughout the library.
//
// All randomised components (graph generators, example distributions, random
// strategies) take an `Rng&` so experiments are reproducible from a single
// seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    FOLEARN_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform index in [0, n). Requires n > 0.
  int64_t UniformIndex(int64_t n) {
    FOLEARN_CHECK_GT(n, 0);
    return UniformInt(0, n - 1);
  }

  // Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformReal() < p; }

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (int64_t i = static_cast<int64_t>(items.size()) - 1; i > 0; --i) {
      std::swap(items[i], items[UniformInt(0, i)]);
    }
  }

  // Picks a uniform element of a non-empty vector.
  template <typename T>
  const T& Choose(const std::vector<T>& items) {
    FOLEARN_CHECK(!items.empty());
    return items[UniformIndex(static_cast<int64_t>(items.size()))];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace folearn

#endif  // FOLEARN_UTIL_RNG_H_
