#ifndef FOLEARN_UTIL_TABLE_H_
#define FOLEARN_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace folearn {

// Minimal fixed-column ASCII table printer used by the experiment harnesses
// in bench/ to emit the per-experiment result tables recorded in
// EXPERIMENTS.md.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends one row; the number of cells must match the header count.
  void AddRow(std::vector<std::string> cells);

  // Renders the table (header, separator, rows) with aligned columns.
  std::string ToString() const;

  // Convenience: prints ToString() to stdout.
  void Print() const;

  int row_count() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` significant decimal places.
std::string FormatDouble(double value, int digits = 4);

}  // namespace folearn

#endif  // FOLEARN_UTIL_TABLE_H_
