#ifndef FOLEARN_UTIL_CHECK_H_
#define FOLEARN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Invariant-checking macros for library code.
//
// The library is exception-free (Google style); internal invariants and
// precondition violations abort with a source location and a message.
// `FOLEARN_CHECK` is always on (the cost is negligible for this code base and
// the algorithms here are subtle enough that silent corruption would be far
// more expensive than the branch).

namespace folearn::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "FOLEARN_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Stream sink that builds the optional message of a failed check.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace folearn::internal

// Aborts with a diagnostic if `condition` is false. Supports streaming extra
// context: FOLEARN_CHECK(x > 0) << "x=" << x;
#define FOLEARN_CHECK(condition)                                     \
  if (condition) {                                                   \
  } else /* NOLINT */                                                \
    ::folearn::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define FOLEARN_CHECK_EQ(a, b) FOLEARN_CHECK((a) == (b))
#define FOLEARN_CHECK_NE(a, b) FOLEARN_CHECK((a) != (b))
#define FOLEARN_CHECK_LT(a, b) FOLEARN_CHECK((a) < (b))
#define FOLEARN_CHECK_LE(a, b) FOLEARN_CHECK((a) <= (b))
#define FOLEARN_CHECK_GT(a, b) FOLEARN_CHECK((a) > (b))
#define FOLEARN_CHECK_GE(a, b) FOLEARN_CHECK((a) >= (b))

#endif  // FOLEARN_UTIL_CHECK_H_
