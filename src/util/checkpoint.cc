#include "util/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/mem_budget.h"
#include "util/strings.h"

namespace folearn {

namespace {

constexpr char kMagic[] = "folearn-checkpoint";
constexpr char kVersion[] = "v1";

std::string HexU64(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

// Parses exactly 16 lower-case hex digits; returns false otherwise.
bool ParseHexU64(std::string_view text, uint64_t* value) {
  if (text.size() != 16) return false;
  uint64_t result = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    result = (result << 4) | static_cast<uint64_t>(digit);
  }
  *value = result;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* value) {
  if (text.empty() || text.size() > 19) return false;
  int64_t result = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    result = result * 10 + (c - '0');
  }
  *value = result;
  return true;
}

// Takes the next '\n'-terminated line off `rest`. Returns false if no
// newline remains (truncated header).
bool TakeLine(std::string_view* rest, std::string_view* line) {
  size_t pos = rest->find('\n');
  if (pos == std::string_view::npos) return false;
  *line = rest->substr(0, pos);
  *rest = rest->substr(pos + 1);
  return true;
}

}  // namespace

uint64_t Fnv1a64(std::string_view bytes, uint64_t seed) {
  uint64_t hash = seed;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t Fnv1a64(std::string_view bytes) {
  return Fnv1a64(bytes, 0xcbf29ce484222325ULL);
}

// Every durable artefact in the code base — checkpoint files, session
// journals, .fog graph packs — funnels through here, which makes this the
// single choke point for both the durability discipline (write temp,
// fsync, rename — a crash or ENOSPC at any instant leaves either the old
// file or the new one at `path`, never a torn hybrid) and for
// deterministic disk-fault injection (ResourceFaults::ArmDiskFailure
// fails the Nth write in any of four modes). Every failure path removes
// the temp file and reports kUnavailable: the caller's file at the final
// path is untouched and the operation is retry-safe.
Status WriteFileAtomic(const std::string& path, std::string_view content) {
  const std::string temp = path + ".tmp";
  using DiskMode = ResourceFaults::DiskMode;
  const DiskMode fault = ResourceFaults::Instance().ShouldFailDiskWrite();
  if (fault == DiskMode::kOpenFail) {
    return UnavailableError("cannot open '" + temp +
                            "' for writing: injected ENOSPC");
  }
  const int fd =
      ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return UnavailableError("cannot open '" + temp +
                            "' for writing: " + std::strerror(errno));
  }
  // A short-write fault stops partway through the payload, modelling the
  // disk filling mid-write; the partial temp file is removed below and
  // must never become visible at `path`.
  const size_t goal =
      fault == DiskMode::kShortWrite ? content.size() / 2 : content.size();
  size_t written = 0;
  bool write_failed = false;
  while (written < goal) {
    const ssize_t n = ::write(fd, content.data() + written, goal - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      write_failed = true;
      break;
    }
    written += static_cast<size_t>(n);
  }
  if (write_failed || goal != content.size()) {
    ::close(fd);
    ::unlink(temp.c_str());
    return UnavailableError("short write to '" + temp + "'" +
                            (fault == DiskMode::kShortWrite
                                 ? ": injected ENOSPC"
                                 : ": " + std::string(std::strerror(errno))));
  }
  if (fault == DiskMode::kSyncFail || ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(temp.c_str());
    return UnavailableError("cannot sync '" + temp + "'" +
                            (fault == DiskMode::kSyncFail
                                 ? ": injected fsync failure"
                                 : ": " + std::string(std::strerror(errno))));
  }
  if (::close(fd) != 0) {
    ::unlink(temp.c_str());
    return UnavailableError("cannot close '" + temp +
                            "': " + std::string(std::strerror(errno)));
  }
  if (fault == DiskMode::kRenameFail || std::rename(temp.c_str(), path.c_str()) != 0) {
    ::unlink(temp.c_str());
    return UnavailableError("cannot rename '" + temp + "' to '" + path + "'" +
                            (fault == DiskMode::kRenameFail
                                 ? ": injected rename failure"
                                 : ""));
  }
  return OkStatus();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteCheckpointFile(const std::string& path,
                           std::string_view payload) {
  std::string content;
  content.reserve(payload.size() + 64);
  content += kMagic;
  content += ' ';
  content += kVersion;
  content += '\n';
  content += "length " + std::to_string(payload.size()) + '\n';
  content += "crc " + HexU64(Fnv1a64(payload)) + '\n';
  content += payload;
  return WriteFileAtomic(path, content);
}

StatusOr<std::string> ReadCheckpointFile(const std::string& path) {
  StatusOr<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  std::string_view rest = *content;

  std::string_view line;
  if (!TakeLine(&rest, &line)) {
    return DataLossError(path + ": line 1: truncated header (not a folearn "
                         "checkpoint)");
  }
  std::vector<std::string> header = Split(std::string(line), ' ');
  if (header.size() != 2 || header[0] != kMagic) {
    return DataLossError(path + ": line 1: not a folearn checkpoint");
  }
  if (header[1] != kVersion) {
    return DataLossError(path + ": line 1: unsupported checkpoint version '" +
                         header[1] + "' (this build reads " + kVersion + ")");
  }

  if (!TakeLine(&rest, &line) || line.substr(0, 7) != "length ") {
    return DataLossError(path + ": line 2: expected 'length <bytes>'");
  }
  int64_t length = 0;
  if (!ParseInt64(line.substr(7), &length)) {
    return DataLossError(path + ": line 2: malformed length '" +
                         std::string(line.substr(7)) + "'");
  }

  if (!TakeLine(&rest, &line) || line.substr(0, 4) != "crc ") {
    return DataLossError(path + ": line 3: expected 'crc <16 hex digits>'");
  }
  uint64_t crc = 0;
  if (!ParseHexU64(line.substr(4), &crc)) {
    return DataLossError(path + ": line 3: malformed checksum '" +
                         std::string(line.substr(4)) + "'");
  }

  if (static_cast<int64_t>(rest.size()) != length) {
    return DataLossError(
        path + ": truncated payload: header promises " +
        std::to_string(length) + " bytes, file carries " +
        std::to_string(rest.size()));
  }
  if (Fnv1a64(rest) != crc) {
    return DataLossError(path +
                         ": line 3: checksum mismatch (file is corrupt)");
  }
  return std::string(rest);
}

}  // namespace folearn
