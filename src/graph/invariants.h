#ifndef FOLEARN_GRAPH_INVARIANTS_H_
#define FOLEARN_GRAPH_INVARIANTS_H_

#include <vector>

#include "graph/graph.h"

namespace folearn {

// Sparsity invariants of the graph families the experiments run on. These
// quantify *why* a family is nowhere dense (bounded degeneracy / treedepth
// along the sparse hierarchy) and power the profiling experiments.

// Degeneracy: the smallest d such that every subgraph has a vertex of
// degree ≤ d, with the witnessing (min-degree peeling) elimination order.
struct DegeneracyResult {
  int degeneracy = 0;
  // Peeling order: order[i] was removed i-th (each had degree ≤ degeneracy
  // among the not-yet-removed vertices).
  std::vector<Vertex> order;
};
DegeneracyResult ComputeDegeneracy(const Graph& graph);

// Exact diameter (max eccentricity over the largest reachable pairs);
// disconnected graphs report the max finite component diameter.
int ComputeDiameter(const Graph& graph);

// Girth (length of a shortest cycle), or kNoGirth for forests.
inline constexpr int kNoGirth = -1;
int ComputeGirth(const Graph& graph);

// True iff the graph is acyclic.
bool IsForest(const Graph& graph);

// Upper bound on the treedepth of a FOREST via centroid decomposition:
// td ≤ ⌈log₂(n+1)⌉ per component, and the bound is tight on paths.
// CHECK-fails on non-forests.
int TreedepthUpperBoundForest(const Graph& graph);

// Exact treedepth by exhaustive recursion with memoisation:
// td(∅) = 0; td(G) = max over components; td(connected G) =
// 1 + min_v td(G − v). Exponential — intended for graphs up to ~10
// vertices (tests and ground truth for the bound above).
int ExactTreedepth(const Graph& graph, int64_t budget = 2000000);

}  // namespace folearn

#endif  // FOLEARN_GRAPH_INVARIANTS_H_
