#include "graph/graph.h"

#include <algorithm>

namespace folearn {

ColorId Vocabulary::AddColor(std::string name) {
  FOLEARN_CHECK(!name.empty()) << "colour name must be non-empty";
  FOLEARN_CHECK(index_.find(name) == index_.end())
      << "duplicate colour name '" << name << "'";
  ColorId id = static_cast<ColorId>(names_.size());
  index_.emplace(name, id);
  names_.push_back(std::move(name));
  return id;
}

std::optional<ColorId> Vocabulary::FindColor(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

bool Vocabulary::IsPrefixOf(const Vocabulary& other) const {
  if (names_.size() > other.names_.size()) return false;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] != other.names_[i]) return false;
  }
  return true;
}

Graph::Graph(int order, Vocabulary vocabulary)
    : vocabulary_(std::move(vocabulary)) {
  FOLEARN_CHECK_GE(order, 0);
  adjacency_.resize(order);
  color_members_.resize(vocabulary_.size());
  for (auto& members : color_members_) members.assign(order, false);
}

Vertex Graph::AddVertex() { return AddVertices(1); }

Vertex Graph::AddVertices(int count) {
  FOLEARN_CHECK_GT(count, 0);
  Vertex first = order();
  adjacency_.resize(adjacency_.size() + count);
  for (auto& members : color_members_) {
    members.resize(members.size() + count, false);
  }
  return first;
}

void Graph::AddEdge(Vertex u, Vertex v) {
  CheckVertex(u);
  CheckVertex(v);
  FOLEARN_CHECK_NE(u, v) << "edge relation is irreflexive";
  auto& adj_u = adjacency_[u];
  auto it = std::lower_bound(adj_u.begin(), adj_u.end(), v);
  if (it != adj_u.end() && *it == v) return;  // already present
  adj_u.insert(it, v);
  auto& adj_v = adjacency_[v];
  adj_v.insert(std::lower_bound(adj_v.begin(), adj_v.end(), u), u);
  ++edge_count_;
}

void Graph::RemoveEdge(Vertex u, Vertex v) {
  CheckVertex(u);
  CheckVertex(v);
  auto& adj_u = adjacency_[u];
  auto it = std::lower_bound(adj_u.begin(), adj_u.end(), v);
  if (it == adj_u.end() || *it != v) return;
  adj_u.erase(it);
  auto& adj_v = adjacency_[v];
  adj_v.erase(std::lower_bound(adj_v.begin(), adj_v.end(), u));
  --edge_count_;
}

void Graph::IsolateVertex(Vertex v) {
  CheckVertex(v);
  std::vector<Vertex> neighbours = adjacency_[v];
  for (Vertex u : neighbours) RemoveEdge(v, u);
}

bool Graph::HasEdge(Vertex u, Vertex v) const {
  CheckVertex(u);
  CheckVertex(v);
  const auto& adj_u = adjacency_[u];
  return std::binary_search(adj_u.begin(), adj_u.end(), v);
}

int Graph::MaxDegree() const {
  int max_degree = 0;
  for (const auto& adj : adjacency_) {
    max_degree = std::max(max_degree, static_cast<int>(adj.size()));
  }
  return max_degree;
}

ColorId Graph::AddColor(std::string name) {
  ColorId id = vocabulary_.AddColor(std::move(name));
  color_members_.emplace_back(order(), false);
  return id;
}

void Graph::SetColor(Vertex v, ColorId color, bool member) {
  CheckVertex(v);
  FOLEARN_CHECK_GE(color, 0);
  FOLEARN_CHECK_LT(color, vocabulary_.size());
  color_members_[color][v] = member;
}

std::vector<Vertex> Graph::VerticesWithColor(ColorId color) const {
  FOLEARN_CHECK_GE(color, 0);
  FOLEARN_CHECK_LT(color, vocabulary_.size());
  std::vector<Vertex> result;
  for (Vertex v = 0; v < order(); ++v) {
    if (color_members_[color][v]) result.push_back(v);
  }
  return result;
}

}  // namespace folearn
