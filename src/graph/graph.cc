#include "graph/graph.h"

#include <algorithm>
#include <bit>

namespace folearn {

ColorId Vocabulary::AddColor(std::string name) {
  FOLEARN_CHECK(!name.empty()) << "colour name must be non-empty";
  FOLEARN_CHECK(index_.find(name) == index_.end())
      << "duplicate colour name '" << name << "'";
  ColorId id = static_cast<ColorId>(names_.size());
  index_.emplace(name, id);
  names_.push_back(std::move(name));
  return id;
}

std::optional<ColorId> Vocabulary::FindColor(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

bool Vocabulary::IsPrefixOf(const Vocabulary& other) const {
  if (names_.size() > other.names_.size()) return false;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] != other.names_[i]) return false;
  }
  return true;
}

namespace {
// True iff `view` aliases `owned`'s buffer (an empty owned vector owns
// nothing, so a view into it cannot exist).
template <typename T>
bool ViewsOwned(std::span<const T> view, const std::vector<T>& owned) {
  return !owned.empty() && view.data() == owned.data();
}
}  // namespace

Graph::Graph(int order, Vocabulary vocabulary)
    : vocabulary_(std::move(vocabulary)) {
  FOLEARN_CHECK_GE(order, 0);
  FOLEARN_CHECK_LE(static_cast<int64_t>(order), kMaxGraphOrder);
  order_ = order;
  dyn_adjacency_.resize(order);
  colors_.resize(vocabulary_.size());
  const int words = WordCount(order_);
  for (ColorClass& c : colors_) {
    c.owned_words.assign(words, 0);
    c.words = {c.owned_words.data(), c.owned_words.size()};
  }
}

Graph::Graph(const Graph& other)
    : vocabulary_(other.vocabulary_),
      order_(other.order_),
      edge_count_(other.edge_count_),
      finalized_(other.finalized_),
      dirty_colors_(other.dirty_colors_),
      owned_offsets_(other.owned_offsets_),
      owned_neighbors_(other.owned_neighbors_),
      mapping_(other.mapping_),
      dyn_adjacency_(other.dyn_adjacency_),
      colors_(other.colors_) {
  RebindViews(other);
}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) {
    Graph copy(other);
    *this = std::move(copy);
  }
  return *this;
}

// Vector heap buffers migrate on move, so every view into an owned vector
// stays valid in the destination; only the source must be left coherent.
Graph::Graph(Graph&& other) noexcept
    : vocabulary_(std::move(other.vocabulary_)),
      order_(other.order_),
      edge_count_(other.edge_count_),
      finalized_(other.finalized_),
      dirty_colors_(other.dirty_colors_),
      offsets_(other.offsets_),
      neighbors_(other.neighbors_),
      owned_offsets_(std::move(other.owned_offsets_)),
      owned_neighbors_(std::move(other.owned_neighbors_)),
      mapping_(std::move(other.mapping_)),
      dyn_adjacency_(std::move(other.dyn_adjacency_)),
      colors_(std::move(other.colors_)) {
  other.Reset();
}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    vocabulary_ = std::move(other.vocabulary_);
    order_ = other.order_;
    edge_count_ = other.edge_count_;
    finalized_ = other.finalized_;
    dirty_colors_ = other.dirty_colors_;
    offsets_ = other.offsets_;
    neighbors_ = other.neighbors_;
    owned_offsets_ = std::move(other.owned_offsets_);
    owned_neighbors_ = std::move(other.owned_neighbors_);
    mapping_ = std::move(other.mapping_);
    dyn_adjacency_ = std::move(other.dyn_adjacency_);
    colors_ = std::move(other.colors_);
    other.Reset();
  }
  return *this;
}

void Graph::Reset() {
  vocabulary_ = Vocabulary();
  order_ = 0;
  edge_count_ = 0;
  finalized_ = false;
  dirty_colors_ = 0;
  offsets_ = {};
  neighbors_ = {};
  owned_offsets_.clear();
  owned_neighbors_.clear();
  mapping_.reset();
  dyn_adjacency_.clear();
  colors_.clear();
}

void Graph::RebindViews(const Graph& source) {
  offsets_ = ViewsOwned(source.offsets_, source.owned_offsets_)
                 ? std::span<const uint64_t>(owned_offsets_)
                 : source.offsets_;
  neighbors_ = ViewsOwned(source.neighbors_, source.owned_neighbors_)
                   ? std::span<const Vertex>(owned_neighbors_)
                   : source.neighbors_;
  for (size_t i = 0; i < colors_.size(); ++i) {
    ColorClass& mine = colors_[i];
    const ColorClass& theirs = source.colors_[i];
    mine.words = ViewsOwned(theirs.words, theirs.owned_words)
                     ? std::span<const uint64_t>(mine.owned_words)
                     : theirs.words;
    mine.members = ViewsOwned(theirs.members, theirs.owned_members)
                       ? std::span<const Vertex>(mine.owned_members)
                       : theirs.members;
  }
}

Graph Graph::FromEdges(int32_t order,
                       std::span<const std::pair<Vertex, Vertex>> edges,
                       Vocabulary vocabulary) {
  FOLEARN_CHECK_GE(order, 0);
  std::vector<uint64_t> offsets(static_cast<size_t>(order) + 1, 0);
  for (const auto& [u, v] : edges) {
    FOLEARN_CHECK(u >= 0 && u < order) << "edge endpoint " << u
                                       << " out of range [0," << order << ")";
    FOLEARN_CHECK(v >= 0 && v < order) << "edge endpoint " << v
                                       << " out of range [0," << order << ")";
    FOLEARN_CHECK_NE(u, v) << "edge relation is irreflexive";
    ++offsets[static_cast<size_t>(u) + 1];
    ++offsets[static_cast<size_t>(v) + 1];
  }
  for (int32_t v = 0; v < order; ++v) offsets[v + 1] += offsets[v];
  std::vector<Vertex> neighbors(offsets[order]);
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    neighbors[cursor[u]++] = v;
    neighbors[cursor[v]++] = u;
  }
  // Sort each row and squeeze out duplicate edges in one compaction pass.
  uint64_t write = 0;
  for (int32_t v = 0; v < order; ++v) {
    const uint64_t begin = offsets[v];
    const uint64_t end = offsets[v + 1];
    std::sort(neighbors.begin() + begin, neighbors.begin() + end);
    offsets[v] = write;
    for (uint64_t i = begin; i < end; ++i) {
      if (i > begin && neighbors[i] == neighbors[i - 1]) continue;
      neighbors[write++] = neighbors[i];
    }
  }
  offsets[order] = write;
  neighbors.resize(write);
  neighbors.shrink_to_fit();
  return FromCsr(order, std::move(offsets), std::move(neighbors),
                 std::move(vocabulary));
}

Graph Graph::FromCsr(int32_t order, std::vector<uint64_t> offsets,
                     std::vector<Vertex> neighbors, Vocabulary vocabulary) {
  FOLEARN_CHECK_EQ(offsets.size(), static_cast<size_t>(order) + 1);
  FOLEARN_CHECK_EQ(offsets.front(), 0u);
  FOLEARN_CHECK_EQ(offsets.back(), neighbors.size());
  FOLEARN_CHECK_EQ(neighbors.size() % 2, 0u);
  Graph graph(0, std::move(vocabulary));
  graph.order_ = order;
  graph.edge_count_ = static_cast<int64_t>(neighbors.size() / 2);
  graph.owned_offsets_ = std::move(offsets);
  graph.owned_neighbors_ = std::move(neighbors);
  graph.offsets_ = {graph.owned_offsets_.data(), graph.owned_offsets_.size()};
  graph.neighbors_ = {graph.owned_neighbors_.data(),
                      graph.owned_neighbors_.size()};
  graph.finalized_ = true;
  graph.dyn_adjacency_.clear();
  const int words = WordCount(order);
  for (ColorClass& c : graph.colors_) {
    c.owned_words.assign(words, 0);
    c.words = {c.owned_words.data(), c.owned_words.size()};
  }
  return graph;
}

Graph Graph::FromMappedCsr(int32_t order, std::span<const uint64_t> offsets,
                           std::span<const Vertex> neighbors,
                           Vocabulary vocabulary,
                           std::vector<MappedColor> colors,
                           std::shared_ptr<const GraphStorage> storage) {
  FOLEARN_CHECK_EQ(offsets.size(), static_cast<size_t>(order) + 1);
  FOLEARN_CHECK_EQ(static_cast<int>(colors.size()), vocabulary.size());
  Graph graph(0, std::move(vocabulary));
  graph.order_ = order;
  graph.edge_count_ = static_cast<int64_t>(neighbors.size() / 2);
  graph.offsets_ = offsets;
  graph.neighbors_ = neighbors;
  graph.mapping_ = std::move(storage);
  graph.finalized_ = true;
  graph.dyn_adjacency_.clear();
  graph.colors_.assign(colors.size(), ColorClass{});
  for (size_t i = 0; i < colors.size(); ++i) {
    graph.colors_[i].words = colors[i].words;
    graph.colors_[i].members = colors[i].members;
  }
  return graph;
}

void Graph::Finalize() {
  if (!finalized_) {
    owned_offsets_.assign(static_cast<size_t>(order_) + 1, 0);
    uint64_t total = 0;
    for (int32_t v = 0; v < order_; ++v) {
      owned_offsets_[v] = total;
      total += dyn_adjacency_[v].size();
    }
    owned_offsets_[order_] = total;
    owned_neighbors_.resize(total);
    Vertex* out = owned_neighbors_.data();
    for (int32_t v = 0; v < order_; ++v) {
      const std::vector<Vertex>& row = dyn_adjacency_[v];
      out = std::copy(row.begin(), row.end(), out);
    }
    offsets_ = {owned_offsets_.data(), owned_offsets_.size()};
    neighbors_ = {owned_neighbors_.data(), owned_neighbors_.size()};
    dyn_adjacency_.clear();
    dyn_adjacency_.shrink_to_fit();
    finalized_ = true;
  }
  if (dirty_colors_ > 0) {
    for (ColorClass& c : colors_) {
      if (c.members_clean) continue;
      c.owned_members.clear();
      for (size_t wi = 0; wi < c.words.size(); ++wi) {
        uint64_t word = c.words[wi];
        while (word != 0) {
          const int bit = std::countr_zero(word);
          c.owned_members.push_back(static_cast<Vertex>(wi * 64 + bit));
          word &= word - 1;
        }
      }
      c.members = {c.owned_members.data(), c.owned_members.size()};
      c.members_clean = true;
    }
    dirty_colors_ = 0;
  }
}

void Graph::Unpack() {
  if (!finalized_) return;
  dyn_adjacency_.assign(order_, {});
  for (int32_t v = 0; v < order_; ++v) {
    const uint64_t begin = offsets_[v];
    const uint64_t end = offsets_[v + 1];
    dyn_adjacency_[v].assign(neighbors_.begin() + begin,
                             neighbors_.begin() + end);
  }
  offsets_ = {};
  neighbors_ = {};
  owned_offsets_.clear();
  owned_offsets_.shrink_to_fit();
  owned_neighbors_.clear();
  owned_neighbors_.shrink_to_fit();
  for (ColorId c = 0; c < static_cast<ColorId>(colors_.size()); ++c) {
    EnsureOwnedColor(c);
  }
  mapping_.reset();
  finalized_ = false;
}

void Graph::EnsureOwnedColor(ColorId color) {
  ColorClass& c = colors_[color];
  if (!ViewsOwned(c.words, c.owned_words) && !c.words.empty()) {
    c.owned_words.assign(c.words.begin(), c.words.end());
    c.words = {c.owned_words.data(), c.owned_words.size()};
  }
  if (!ViewsOwned(c.members, c.owned_members) && !c.members.empty()) {
    c.owned_members.assign(c.members.begin(), c.members.end());
    c.members = {c.owned_members.data(), c.owned_members.size()};
  }
}

Vertex Graph::AddVertex() { return AddVertices(1); }

Vertex Graph::AddVertices(int count) {
  FOLEARN_CHECK_GT(count, 0);
  FOLEARN_CHECK_LE(static_cast<int64_t>(order_) + count, kMaxGraphOrder)
      << "graph order would exceed the 32-bit id limit";
  if (finalized_) Unpack();
  Vertex first = order_;
  order_ += count;
  dyn_adjacency_.resize(order_);
  const int words = WordCount(order_);
  for (ColorId c = 0; c < static_cast<ColorId>(colors_.size()); ++c) {
    EnsureOwnedColor(c);
    ColorClass& color = colors_[c];
    color.owned_words.resize(words, 0);
    color.words = {color.owned_words.data(), color.owned_words.size()};
    // Member columns stay accurate: new vertices carry no colours.
  }
  return first;
}

void Graph::AddEdge(Vertex u, Vertex v) {
  CheckVertex(u);
  CheckVertex(v);
  FOLEARN_CHECK_NE(u, v) << "edge relation is irreflexive";
  if (finalized_) Unpack();
  auto& adj_u = dyn_adjacency_[u];
  auto it = std::lower_bound(adj_u.begin(), adj_u.end(), v);
  if (it != adj_u.end() && *it == v) return;  // already present
  adj_u.insert(it, v);
  auto& adj_v = dyn_adjacency_[v];
  adj_v.insert(std::lower_bound(adj_v.begin(), adj_v.end(), u), u);
  ++edge_count_;
}

void Graph::RemoveEdge(Vertex u, Vertex v) {
  CheckVertex(u);
  CheckVertex(v);
  if (finalized_) Unpack();
  auto& adj_u = dyn_adjacency_[u];
  auto it = std::lower_bound(adj_u.begin(), adj_u.end(), v);
  if (it == adj_u.end() || *it != v) return;
  adj_u.erase(it);
  auto& adj_v = dyn_adjacency_[v];
  adj_v.erase(std::lower_bound(adj_v.begin(), adj_v.end(), u));
  --edge_count_;
}

void Graph::IsolateVertex(Vertex v) {
  CheckVertex(v);
  if (finalized_) Unpack();
  std::vector<Vertex> neighbours = dyn_adjacency_[v];
  for (Vertex u : neighbours) RemoveEdge(v, u);
}

bool Graph::HasEdge(Vertex u, Vertex v) const {
  CheckVertex(u);
  CheckVertex(v);
  std::span<const Vertex> adj_u = Neighbors(u);
  return std::binary_search(adj_u.begin(), adj_u.end(), v);
}

int Graph::MaxDegree() const {
  int max_degree = 0;
  for (Vertex v = 0; v < order_; ++v) {
    max_degree = std::max(max_degree, Degree(v));
  }
  return max_degree;
}

ColorId Graph::AddColor(std::string name) {
  ColorId id = vocabulary_.AddColor(std::move(name));
  colors_.emplace_back();
  ColorClass& c = colors_.back();
  c.owned_words.assign(WordCount(order_), 0);
  c.words = {c.owned_words.data(), c.owned_words.size()};
  return id;
}

void Graph::SetColor(Vertex v, ColorId color, bool member) {
  CheckVertex(v);
  CheckColor(color);
  ColorClass& c = colors_[color];
  const uint64_t bit = uint64_t{1} << (v & 63);
  const bool current = (c.words[static_cast<uint32_t>(v) >> 6] & bit) != 0;
  if (current == member) return;
  EnsureOwnedColor(color);
  uint64_t& word = c.owned_words[static_cast<uint32_t>(v) >> 6];
  if (member) {
    word |= bit;
  } else {
    word &= ~bit;
  }
  if (c.members_clean) {
    c.members_clean = false;
    ++dirty_colors_;
    c.owned_members.clear();
    c.members = {};
  }
}

std::vector<Vertex> Graph::VerticesWithColor(ColorId color) const {
  CheckColor(color);
  const ColorClass& c = colors_[color];
  if (c.members_clean) {
    return std::vector<Vertex>(c.members.begin(), c.members.end());
  }
  std::vector<Vertex> result;
  for (size_t wi = 0; wi < c.words.size(); ++wi) {
    uint64_t word = c.words[wi];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      result.push_back(static_cast<Vertex>(wi * 64 + bit));
      word &= word - 1;
    }
  }
  return result;
}

}  // namespace folearn
