#ifndef FOLEARN_GRAPH_GENERATORS_H_
#define FOLEARN_GRAPH_GENERATORS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace folearn {

// Graph families used as the experiment substrate. Theorem 13 is about
// nowhere dense classes; paths, trees, grids, caterpillars, and
// bounded-degree graphs are nowhere dense, while cliques and dense random
// graphs serve as somewhere-dense controls (E7).

// Path P_n: vertices 0—1—…—(n−1).
Graph MakePath(int n);

// Cycle C_n (requires n ≥ 3).
Graph MakeCycle(int n);

// width × height grid; vertex (x, y) is x + y·width.
Graph MakeGrid(int width, int height);

// Complete graph K_n.
Graph MakeComplete(int n);

// Complete bipartite graph K_{a,b}; left part is [0, a).
Graph MakeCompleteBipartite(int a, int b);

// Star with `leaves` leaves; centre is vertex 0.
Graph MakeStar(int leaves);

// Caterpillar: a spine path of `spine` vertices, each with `legs` pendant
// leaves. Spine vertices come first.
Graph MakeCaterpillar(int spine, int legs);

// Complete binary tree of the given depth (depth 0 = single root).
Graph MakeBinaryTree(int depth);

// Uniform random labelled tree on n vertices (random Prüfer sequence).
Graph MakeRandomTree(int n, Rng& rng);

// Erdős–Rényi G(n, p).
Graph MakeErdosRenyi(int n, double p, Rng& rng);

// Random graph with maximum degree ≤ max_degree: repeatedly samples
// candidate edges, keeping those that respect the degree bound, targeting
// roughly `target_edges` edges.
Graph MakeBoundedDegree(int n, int max_degree, int64_t target_edges,
                        Rng& rng);

// Preferential attachment (Barabási–Albert): each new vertex attaches to
// `attach` existing vertices sampled proportionally to degree + 1.
Graph MakePreferentialAttachment(int n, int attach, Rng& rng);

// The 1-subdivision of K_n: every clique edge replaced by a path of length
// 2 through a fresh subdivision vertex. The TEXTBOOK separator between
// degeneracy and nowhere denseness: each member is 2-degenerate, yet the
// family contains every clique as a depth-1 shallow topological minor, so
// it is SOMEWHERE dense — the splitter game at radius ≥ 2 takes Ω(n)
// rounds on it (exercised in E7 and the nd tests). Branch vertices are
// 0..n−1; subdivision vertices follow.
Graph MakeSubdividedComplete(int n);

// d-dimensional hypercube Q_d (2^d vertices); degree d, bipartite,
// unbounded degree as d grows but locally sparse.
Graph MakeHypercube(int dimensions);

// --- At-scale sparse families ----------------------------------------------
//
// Million-vertex variants of the sparse generators above: they accumulate a
// flat edge list and pack it straight into the CSR columns via
// Graph::FromEdges — no per-vertex heap allocations, memory linear in the
// edge count, and the result comes back finalized. Orders are int64 and
// checked against the 32-bit id limit (CHECK — these are internal
// builders, not external-input loaders). The small-n generators keep their
// exact RNG call sequences; these are separate families, not replacements.

// Random graph with maximum degree ≤ max_degree (same sampling scheme as
// MakeBoundedDegree: rejected candidates count against a 20× attempt cap).
Graph MakeBoundedDegreeAtScale(int64_t n, int max_degree,
                               int64_t target_edges, Rng& rng);

// width × height grid (planar, degree ≤ 4); vertex (x, y) is x + y·width.
Graph MakeGridAtScale(int64_t width, int64_t height);

// Preferential attachment (Barabási–Albert), as MakePreferentialAttachment.
Graph MakePreferentialAttachmentAtScale(int64_t n, int attach, Rng& rng);

// Declares the colours in `names` on `graph` and assigns each vertex to each
// colour independently with probability `probability`.
std::vector<ColorId> AddRandomColors(Graph& graph,
                                     const std::vector<std::string>& names,
                                     double probability, Rng& rng);

// Declares `name` and colours every vertex v with v % modulus == residue.
ColorId AddPeriodicColor(Graph& graph, const std::string& name, int modulus,
                         int residue);

}  // namespace folearn

#endif  // FOLEARN_GRAPH_GENERATORS_H_
