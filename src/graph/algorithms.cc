#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace folearn {

std::vector<int> BfsDistances(const Graph& graph,
                              std::span<const Vertex> sources,
                              int radius_cap) {
  std::vector<int> dist(graph.order(), kUnreachable);
  std::deque<Vertex> queue;
  for (Vertex s : sources) {
    FOLEARN_CHECK(graph.IsValidVertex(s));
    if (dist[s] == kUnreachable) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    Vertex v = queue.front();
    queue.pop_front();
    if (radius_cap >= 0 && dist[v] >= radius_cap) continue;
    for (Vertex u : graph.Neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

int Distance(const Graph& graph, Vertex u, Vertex v) {
  Vertex sources[] = {u};
  return BfsDistances(graph, sources)[v];
}

int TupleDistance(const Graph& graph, std::span<const Vertex> us,
                  std::span<const Vertex> vs) {
  std::vector<int> dist = BfsDistances(graph, us);
  int best = kUnreachable;
  for (Vertex v : vs) {
    if (dist[v] == kUnreachable) continue;
    if (best == kUnreachable || dist[v] < best) best = dist[v];
  }
  return best;
}

std::vector<Vertex> Ball(const Graph& graph, std::span<const Vertex> sources,
                         int radius) {
  FOLEARN_CHECK_GE(radius, 0);
  std::vector<int> dist = BfsDistances(graph, sources, radius);
  std::vector<Vertex> ball;
  for (Vertex v = 0; v < graph.order(); ++v) {
    if (dist[v] != kUnreachable && dist[v] <= radius) ball.push_back(v);
  }
  return ball;
}

std::span<const Vertex> BallCollector::Collect(
    std::span<const Vertex> sources, int radius) {
  FOLEARN_CHECK_GE(radius, 0);
  if (++epoch_ == 0) {  // epoch counter wrapped: invalidate all stamps
    std::fill(mark_.begin(), mark_.end(), 0);
    epoch_ = 1;
  }
  ball_.clear();
  frontier_.clear();
  for (Vertex s : sources) {
    FOLEARN_CHECK(graph_->IsValidVertex(s));
    if (mark_[s] != epoch_) {
      mark_[s] = epoch_;
      frontier_.push_back(s);
      ball_.push_back(s);
    }
  }
  for (int level = 0; level < radius && !frontier_.empty(); ++level) {
    next_.clear();
    for (Vertex v : frontier_) {
      for (Vertex u : graph_->Neighbors(v)) {
        if (mark_[u] != epoch_) {
          mark_[u] = epoch_;
          next_.push_back(u);
          ball_.push_back(u);
        }
      }
    }
    frontier_.swap(next_);
  }
  std::sort(ball_.begin(), ball_.end());
  return {ball_.data(), ball_.size()};
}

std::span<const Vertex> BallCache::VertexBall(Vertex v, int radius) {
  FOLEARN_CHECK_GE(radius, 0);
  FOLEARN_CHECK(graph_->IsValidVertex(v));
  const int64_t key =
      static_cast<int64_t>(radius) * graph_->order() + static_cast<int64_t>(v);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return {arena_.data() + it->second.offset, it->second.length};
  }
  ++misses_;
  if (collector_ == nullptr) {
    collector_ = std::make_unique<BallCollector>(*graph_);
  }
  Vertex sources[] = {v};
  const std::span<const Vertex> ball = collector_->Collect(sources, radius);
  const auto length = static_cast<uint32_t>(ball.size());
  const int64_t cost = EntryBytes(length);
  if (read_through_ != nullptr &&
      read_through_->load(std::memory_order_relaxed)) {
    // Pressure tier says: stop growing warm state. Serve uncached.
    ++shed_inserts_;
    scratch_.assign(ball.begin(), ball.end());
    return {scratch_.data(), scratch_.size()};
  }
  if (max_bytes_ >= 0 && cost > max_bytes_) {
    // This one ball is bigger than the whole budget: serve it from the
    // scratch slot instead of breaking the bytes() <= max_bytes invariant.
    ++oversize_misses_;
    scratch_.assign(ball.begin(), ball.end());
    return {scratch_.data(), scratch_.size()};
  }
  // FIFO eviction until the new entry fits. The loop always terminates
  // below budget because cost <= max_bytes_.
  while (max_bytes_ >= 0 && bytes_ + cost > max_bytes_) {
    FOLEARN_CHECK(!insertion_order_.empty());
    const int64_t oldest = insertion_order_.front();
    insertion_order_.pop_front();
    auto old_it = cache_.find(oldest);
    const int64_t freed = EntryBytes(old_it->second.length);
    bytes_ -= freed;
    if (account_ != nullptr) account_->Release(freed);
    dead_payload_bytes_ += static_cast<int64_t>(old_it->second.length) *
                           static_cast<int64_t>(sizeof(Vertex));
    cache_.erase(old_it);
    ++evictions_;
  }
  if (account_ != nullptr && !account_->TryCharge(cost)) {
    // The session/process byte budget refused the growth: degrade to
    // read-through for this ball rather than fail the query.
    ++shed_inserts_;
    scratch_.assign(ball.begin(), ball.end());
    return {scratch_.data(), scratch_.size()};
  }
  const int64_t live_payload_bytes =
      static_cast<int64_t>(arena_.size()) *
          static_cast<int64_t>(sizeof(Vertex)) -
      dead_payload_bytes_;
  if (dead_payload_bytes_ > 0 && dead_payload_bytes_ >= live_payload_bytes) {
    Compact();
  }
  Slice slice{arena_.size(), length};
  arena_.insert(arena_.end(), ball.begin(), ball.end());
  insertion_order_.push_back(key);
  bytes_ += cost;
  const Slice& stored = cache_.emplace(key, slice).first->second;
  return {arena_.data() + stored.offset, stored.length};
}

void BallCache::Clear() {
  if (account_ != nullptr) account_->Release(bytes_);
  evictions_ += static_cast<int64_t>(cache_.size());
  cache_.clear();
  insertion_order_.clear();
  std::vector<Vertex>().swap(arena_);
  std::vector<Vertex>().swap(scratch_);
  dead_payload_bytes_ = 0;
  bytes_ = 0;
}

void BallCache::Compact() {
  std::vector<Vertex> packed;
  packed.reserve(arena_.size() -
                 static_cast<size_t>(dead_payload_bytes_ / sizeof(Vertex)));
  for (const int64_t key : insertion_order_) {
    Slice& slice = cache_.at(key);
    const uint64_t offset = packed.size();
    packed.insert(packed.end(), arena_.begin() + slice.offset,
                  arena_.begin() + slice.offset + slice.length);
    slice.offset = offset;
  }
  arena_ = std::move(packed);
  dead_payload_bytes_ = 0;
}

std::vector<Vertex> BallCache::TupleBall(std::span<const Vertex> tuple,
                                         int radius) {
  std::vector<Vertex> merged;
  for (Vertex v : tuple) {
    const std::span<const Vertex> ball = VertexBall(v, radius);
    merged.insert(merged.end(), ball.begin(), ball.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

std::vector<Vertex> InducedSubgraph::MapTuple(
    std::span<const Vertex> tuple) const {
  std::vector<Vertex> mapped;
  mapped.reserve(tuple.size());
  for (Vertex v : tuple) {
    FOLEARN_CHECK_GE(v, 0);
    FOLEARN_CHECK_LT(static_cast<size_t>(v), from_original.size());
    FOLEARN_CHECK_NE(from_original[v], kNoVertex)
        << "tuple entry " << v << " not in induced subgraph";
    mapped.push_back(from_original[v]);
  }
  return mapped;
}

InducedSubgraph BuildInducedSubgraph(const Graph& graph,
                                     std::span<const Vertex> vertices) {
  InducedSubgraph result;
  result.from_original.assign(graph.order(), kNoVertex);
  std::vector<Vertex> sorted(vertices.begin(), vertices.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  result.graph = Graph(static_cast<int>(sorted.size()),
                       Vocabulary(graph.vocabulary()));
  result.to_original = sorted;
  for (Vertex i = 0; i < static_cast<Vertex>(sorted.size()); ++i) {
    result.from_original[sorted[i]] = i;
  }
  for (Vertex i = 0; i < static_cast<Vertex>(sorted.size()); ++i) {
    Vertex original = sorted[i];
    for (ColorId c = 0; c < graph.vocabulary().size(); ++c) {
      if (graph.HasColor(original, c)) result.graph.SetColor(i, c);
    }
    for (Vertex u : graph.Neighbors(original)) {
      Vertex mapped = result.from_original[u];
      if (mapped != kNoVertex && mapped > i) {
        result.graph.AddEdge(i, mapped);
      }
    }
  }
  result.graph.Finalize();
  return result;
}

NeighborhoodExtractor::Result NeighborhoodExtractor::Extract(
    std::span<const Vertex> tuple, int radius) {
  const std::span<const Vertex> ball = collector_.Collect(tuple, radius);
  const auto order = static_cast<int32_t>(ball.size());
  // The BFS only expanded rows of vertices at distance < radius; the
  // perimeter rows are about to be read cold. The ball is known up front,
  // so overlap those scattered reads: one sweep requesting every offset
  // pair, one requesting every row start.
  if (graph_->finalized()) {
    const std::span<const uint64_t> host_offsets = graph_->CsrOffsets();
    const std::span<const Vertex> host_neighbors = graph_->CsrNeighbors();
    for (Vertex v : ball) {
      __builtin_prefetch(&host_offsets[static_cast<uint32_t>(v)], 0, 1);
    }
    for (Vertex v : ball) {
      // data() + offset: an empty final row's offset is one-past-the-end,
      // where operator[] would be out of bounds.
      __builtin_prefetch(
          host_neighbors.data() + host_offsets[static_cast<uint32_t>(v)], 0,
          1);
    }
  }
  // Host rows are sorted and the sorted ball maps original ids to local
  // ids monotonically, so every induced row comes out sorted by
  // construction — the CSR columns can be emitted directly.
  std::vector<uint64_t> offsets(static_cast<size_t>(order) + 1, 0);
  std::vector<Vertex> neighbors;
  auto local_id = [ball](Vertex original) -> Vertex {
    const auto it = std::lower_bound(ball.begin(), ball.end(), original);
    if (it == ball.end() || *it != original) return kNoVertex;
    return static_cast<Vertex>(it - ball.begin());
  };
  for (int32_t i = 0; i < order; ++i) {
    offsets[i] = neighbors.size();
    for (Vertex u : graph_->Neighbors(ball[i])) {
      const Vertex mapped = local_id(u);
      if (mapped != kNoVertex) neighbors.push_back(mapped);
    }
  }
  offsets[order] = neighbors.size();
  Result result;
  result.graph = Graph::FromCsr(order, std::move(offsets),
                                std::move(neighbors),
                                Vocabulary(graph_->vocabulary()));
  for (int32_t i = 0; i < order; ++i) {
    for (ColorId c = 0; c < graph_->vocabulary().size(); ++c) {
      if (graph_->HasColor(ball[i], c)) result.graph.SetColor(i, c);
    }
  }
  result.graph.Finalize();  // refresh member columns touched by SetColor
  result.to_original.assign(ball.begin(), ball.end());
  result.tuple.reserve(tuple.size());
  for (Vertex v : tuple) {
    const Vertex mapped = local_id(v);
    FOLEARN_CHECK_NE(mapped, kNoVertex);
    result.tuple.push_back(mapped);
  }
  return result;
}

NeighborhoodGraph BuildNeighborhoodGraph(const Graph& graph,
                                         std::span<const Vertex> tuple,
                                         int radius) {
  NeighborhoodGraph result;
  std::vector<Vertex> ball = Ball(graph, tuple, radius);
  result.induced = BuildInducedSubgraph(graph, ball);
  result.tuple = result.induced.MapTuple(tuple);
  return result;
}

Graph DisjointCopies(const Graph& graph, int copies) {
  FOLEARN_CHECK_GE(copies, 1);
  int n = graph.order();
  Graph result(n * copies, Vocabulary(graph.vocabulary()));
  for (int i = 0; i < copies; ++i) {
    Vertex offset = i * n;
    for (Vertex v = 0; v < n; ++v) {
      for (ColorId c = 0; c < graph.vocabulary().size(); ++c) {
        if (graph.HasColor(v, c)) result.SetColor(offset + v, c);
      }
      for (Vertex u : graph.Neighbors(v)) {
        if (u > v) result.AddEdge(offset + v, offset + u);
      }
    }
  }
  result.Finalize();
  return result;
}

Graph DisjointUnion(const Graph& a, const Graph& b) {
  FOLEARN_CHECK(a.vocabulary() == b.vocabulary())
      << "disjoint union requires matching vocabularies";
  if (b.order() == 0) return a;
  Graph result = a;
  Vertex offset = result.AddVertices(b.order());
  for (Vertex v = 0; v < b.order(); ++v) {
    for (ColorId c = 0; c < b.vocabulary().size(); ++c) {
      if (b.HasColor(v, c)) result.SetColor(offset + v, c);
    }
    for (Vertex u : b.Neighbors(v)) {
      if (u > v) result.AddEdge(offset + v, offset + u);
    }
  }
  result.Finalize();
  return result;
}

std::pair<std::vector<int>, int> ConnectedComponents(const Graph& graph) {
  std::vector<int> component(graph.order(), -1);
  int count = 0;
  std::deque<Vertex> queue;
  for (Vertex start = 0; start < graph.order(); ++start) {
    if (component[start] != -1) continue;
    component[start] = count;
    queue.push_back(start);
    while (!queue.empty()) {
      Vertex v = queue.front();
      queue.pop_front();
      for (Vertex u : graph.Neighbors(v)) {
        if (component[u] == -1) {
          component[u] = count;
          queue.push_back(u);
        }
      }
    }
    ++count;
  }
  return {std::move(component), count};
}

bool ValidateGraph(const Graph& graph) {
  int64_t directed_edges = 0;
  for (Vertex v = 0; v < graph.order(); ++v) {
    const auto& adj = graph.Neighbors(v);
    if (!std::is_sorted(adj.begin(), adj.end())) return false;
    if (std::adjacent_find(adj.begin(), adj.end()) != adj.end()) return false;
    for (Vertex u : adj) {
      if (u == v) return false;  // irreflexive
      if (!graph.IsValidVertex(u)) return false;
      if (!graph.HasEdge(u, v)) return false;  // symmetric
    }
    directed_edges += adj.size();
  }
  return directed_edges == 2 * graph.EdgeCount();
}

}  // namespace folearn
