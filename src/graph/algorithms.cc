#include "graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace folearn {

std::vector<int> BfsDistances(const Graph& graph,
                              std::span<const Vertex> sources,
                              int radius_cap) {
  std::vector<int> dist(graph.order(), kUnreachable);
  std::deque<Vertex> queue;
  for (Vertex s : sources) {
    FOLEARN_CHECK(graph.IsValidVertex(s));
    if (dist[s] == kUnreachable) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    Vertex v = queue.front();
    queue.pop_front();
    if (radius_cap >= 0 && dist[v] >= radius_cap) continue;
    for (Vertex u : graph.Neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

int Distance(const Graph& graph, Vertex u, Vertex v) {
  Vertex sources[] = {u};
  return BfsDistances(graph, sources)[v];
}

int TupleDistance(const Graph& graph, std::span<const Vertex> us,
                  std::span<const Vertex> vs) {
  std::vector<int> dist = BfsDistances(graph, us);
  int best = kUnreachable;
  for (Vertex v : vs) {
    if (dist[v] == kUnreachable) continue;
    if (best == kUnreachable || dist[v] < best) best = dist[v];
  }
  return best;
}

std::vector<Vertex> Ball(const Graph& graph, std::span<const Vertex> sources,
                         int radius) {
  FOLEARN_CHECK_GE(radius, 0);
  std::vector<int> dist = BfsDistances(graph, sources, radius);
  std::vector<Vertex> ball;
  for (Vertex v = 0; v < graph.order(); ++v) {
    if (dist[v] != kUnreachable && dist[v] <= radius) ball.push_back(v);
  }
  return ball;
}

const std::vector<Vertex>& BallCache::VertexBall(Vertex v, int radius) {
  FOLEARN_CHECK_GE(radius, 0);
  FOLEARN_CHECK(graph_->IsValidVertex(v));
  const int64_t key =
      static_cast<int64_t>(radius) * graph_->order() + static_cast<int64_t>(v);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  Vertex sources[] = {v};
  if (max_bytes_ < 0) {
    return cache_.emplace(key, Ball(*graph_, sources, radius)).first->second;
  }
  // Budgeted path: materialise the ball first (trimmed — the BFS builder
  // may over-reserve) and charge its accurate footprint before deciding
  // whether it may live in the cache at all.
  std::vector<Vertex> ball = Ball(*graph_, sources, radius);
  ball.shrink_to_fit();
  const int64_t cost = EntryBytes(ball);
  if (cost > max_bytes_) {
    // This one ball is bigger than the whole budget: serve it from the
    // scratch slot instead of breaking the bytes() <= max_bytes invariant.
    ++oversize_misses_;
    scratch_ = std::move(ball);
    return scratch_;
  }
  // FIFO eviction until the new entry fits. The loop always terminates
  // below budget because cost <= max_bytes_.
  while (bytes_ + cost > max_bytes_) {
    FOLEARN_CHECK(!insertion_order_.empty());
    const int64_t oldest = insertion_order_.front();
    insertion_order_.pop_front();
    auto old_it = cache_.find(oldest);
    bytes_ -= EntryBytes(old_it->second);
    cache_.erase(old_it);
    ++evictions_;
  }
  insertion_order_.push_back(key);
  bytes_ += cost;
  return cache_.emplace(key, std::move(ball)).first->second;
}

std::vector<Vertex> BallCache::TupleBall(std::span<const Vertex> tuple,
                                         int radius) {
  std::vector<Vertex> merged;
  for (Vertex v : tuple) {
    const std::vector<Vertex>& ball = VertexBall(v, radius);
    merged.insert(merged.end(), ball.begin(), ball.end());
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  return merged;
}

std::vector<Vertex> InducedSubgraph::MapTuple(
    std::span<const Vertex> tuple) const {
  std::vector<Vertex> mapped;
  mapped.reserve(tuple.size());
  for (Vertex v : tuple) {
    FOLEARN_CHECK_GE(v, 0);
    FOLEARN_CHECK_LT(static_cast<size_t>(v), from_original.size());
    FOLEARN_CHECK_NE(from_original[v], kNoVertex)
        << "tuple entry " << v << " not in induced subgraph";
    mapped.push_back(from_original[v]);
  }
  return mapped;
}

InducedSubgraph BuildInducedSubgraph(const Graph& graph,
                                     std::span<const Vertex> vertices) {
  InducedSubgraph result;
  result.from_original.assign(graph.order(), kNoVertex);
  std::vector<Vertex> sorted(vertices.begin(), vertices.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  result.graph = Graph(static_cast<int>(sorted.size()),
                       Vocabulary(graph.vocabulary()));
  result.to_original = sorted;
  for (Vertex i = 0; i < static_cast<Vertex>(sorted.size()); ++i) {
    result.from_original[sorted[i]] = i;
  }
  for (Vertex i = 0; i < static_cast<Vertex>(sorted.size()); ++i) {
    Vertex original = sorted[i];
    for (ColorId c = 0; c < graph.vocabulary().size(); ++c) {
      if (graph.HasColor(original, c)) result.graph.SetColor(i, c);
    }
    for (Vertex u : graph.Neighbors(original)) {
      Vertex mapped = result.from_original[u];
      if (mapped != kNoVertex && mapped > i) {
        result.graph.AddEdge(i, mapped);
      }
    }
  }
  return result;
}

NeighborhoodGraph BuildNeighborhoodGraph(const Graph& graph,
                                         std::span<const Vertex> tuple,
                                         int radius) {
  NeighborhoodGraph result;
  std::vector<Vertex> ball = Ball(graph, tuple, radius);
  result.induced = BuildInducedSubgraph(graph, ball);
  result.tuple = result.induced.MapTuple(tuple);
  return result;
}

Graph DisjointCopies(const Graph& graph, int copies) {
  FOLEARN_CHECK_GE(copies, 1);
  int n = graph.order();
  Graph result(n * copies, Vocabulary(graph.vocabulary()));
  for (int i = 0; i < copies; ++i) {
    Vertex offset = i * n;
    for (Vertex v = 0; v < n; ++v) {
      for (ColorId c = 0; c < graph.vocabulary().size(); ++c) {
        if (graph.HasColor(v, c)) result.SetColor(offset + v, c);
      }
      for (Vertex u : graph.Neighbors(v)) {
        if (u > v) result.AddEdge(offset + v, offset + u);
      }
    }
  }
  return result;
}

Graph DisjointUnion(const Graph& a, const Graph& b) {
  FOLEARN_CHECK(a.vocabulary() == b.vocabulary())
      << "disjoint union requires matching vocabularies";
  if (b.order() == 0) return a;
  Graph result = a;
  Vertex offset = result.AddVertices(b.order());
  for (Vertex v = 0; v < b.order(); ++v) {
    for (ColorId c = 0; c < b.vocabulary().size(); ++c) {
      if (b.HasColor(v, c)) result.SetColor(offset + v, c);
    }
    for (Vertex u : b.Neighbors(v)) {
      if (u > v) result.AddEdge(offset + v, offset + u);
    }
  }
  return result;
}

std::pair<std::vector<int>, int> ConnectedComponents(const Graph& graph) {
  std::vector<int> component(graph.order(), -1);
  int count = 0;
  std::deque<Vertex> queue;
  for (Vertex start = 0; start < graph.order(); ++start) {
    if (component[start] != -1) continue;
    component[start] = count;
    queue.push_back(start);
    while (!queue.empty()) {
      Vertex v = queue.front();
      queue.pop_front();
      for (Vertex u : graph.Neighbors(v)) {
        if (component[u] == -1) {
          component[u] = count;
          queue.push_back(u);
        }
      }
    }
    ++count;
  }
  return {std::move(component), count};
}

bool ValidateGraph(const Graph& graph) {
  int64_t directed_edges = 0;
  for (Vertex v = 0; v < graph.order(); ++v) {
    const auto& adj = graph.Neighbors(v);
    if (!std::is_sorted(adj.begin(), adj.end())) return false;
    if (std::adjacent_find(adj.begin(), adj.end()) != adj.end()) return false;
    for (Vertex u : adj) {
      if (u == v) return false;  // irreflexive
      if (!graph.IsValidVertex(u)) return false;
      if (!graph.HasEdge(u, v)) return false;  // symmetric
    }
    directed_edges += adj.size();
  }
  return directed_edges == 2 * graph.EdgeCount();
}

}  // namespace folearn
