#include "graph/invariants.h"

#include <algorithm>
#include <deque>
#include <map>

#include "graph/algorithms.h"

namespace folearn {

DegeneracyResult ComputeDegeneracy(const Graph& graph) {
  const int n = graph.order();
  DegeneracyResult result;
  std::vector<int> degree(n);
  int max_degree = 0;
  for (Vertex v = 0; v < n; ++v) {
    degree[v] = graph.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket queue over current degrees.
  std::vector<std::vector<Vertex>> buckets(max_degree + 1);
  for (Vertex v = 0; v < n; ++v) buckets[degree[v]].push_back(v);
  std::vector<bool> removed(n, false);
  int floor = 0;
  for (int step = 0; step < n; ++step) {
    while (floor <= max_degree && buckets[floor].empty()) ++floor;
    // Degrees only decrease, but a vertex may sit in a stale bucket; skip
    // entries whose recorded degree no longer matches.
    Vertex v = kNoVertex;
    while (floor <= max_degree) {
      if (buckets[floor].empty()) {
        ++floor;
        continue;
      }
      Vertex candidate = buckets[floor].back();
      buckets[floor].pop_back();
      if (!removed[candidate] && degree[candidate] == floor) {
        v = candidate;
        break;
      }
    }
    FOLEARN_CHECK_NE(v, kNoVertex);
    result.degeneracy = std::max(result.degeneracy, floor);
    result.order.push_back(v);
    removed[v] = true;
    for (Vertex u : graph.Neighbors(v)) {
      if (removed[u]) continue;
      --degree[u];
      buckets[degree[u]].push_back(u);
      if (degree[u] < floor) floor = degree[u];
    }
  }
  return result;
}

int ComputeDiameter(const Graph& graph) {
  int diameter = 0;
  for (Vertex v = 0; v < graph.order(); ++v) {
    Vertex source[] = {v};
    std::vector<int> dist = BfsDistances(graph, source);
    for (int d : dist) {
      if (d != kUnreachable) diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

int ComputeGirth(const Graph& graph) {
  // For each start vertex, BFS; a non-tree edge between vertices at depths
  // d(u), d(v) closes a cycle of length d(u) + d(v) + 1 through the root's
  // BFS tree — the minimum over all starts is the girth.
  int best = kNoGirth;
  for (Vertex start = 0; start < graph.order(); ++start) {
    std::vector<int> dist(graph.order(), kUnreachable);
    std::vector<Vertex> parent(graph.order(), kNoVertex);
    std::deque<Vertex> queue;
    dist[start] = 0;
    queue.push_back(start);
    while (!queue.empty()) {
      Vertex v = queue.front();
      queue.pop_front();
      for (Vertex u : graph.Neighbors(v)) {
        if (u == parent[v]) continue;
        if (dist[u] == kUnreachable) {
          dist[u] = dist[v] + 1;
          parent[u] = v;
          queue.push_back(u);
        } else {
          int cycle = dist[u] + dist[v] + 1;
          if (best == kNoGirth || cycle < best) best = cycle;
        }
      }
    }
  }
  return best;
}

bool IsForest(const Graph& graph) {
  auto [components, count] = ConnectedComponents(graph);
  (void)components;
  // A graph is a forest iff |E| = |V| − #components.
  return graph.EdgeCount() ==
         static_cast<int64_t>(graph.order()) - count;
}

namespace {

// Size of each subtree when rooting the component at `root` (forest only).
// Returns the subtree-size map via DFS; used by the centroid search.
int CentroidDepth(const Graph& graph, std::vector<bool>& removed,
                  Vertex start) {
  // Collect the current component.
  std::vector<Vertex> component;
  std::deque<Vertex> queue = {start};
  std::vector<bool> seen(graph.order(), false);
  seen[start] = true;
  while (!queue.empty()) {
    Vertex v = queue.front();
    queue.pop_front();
    component.push_back(v);
    for (Vertex u : graph.Neighbors(v)) {
      if (!removed[u] && !seen[u]) {
        seen[u] = true;
        queue.push_back(u);
      }
    }
  }
  if (component.size() == 1) {
    removed[start] = true;
    return 1;
  }
  // Find a centroid: a vertex whose removal leaves components of size
  // ≤ |component| / 2 (always exists in a tree).
  const int total = static_cast<int>(component.size());
  Vertex centroid = kNoVertex;
  for (Vertex candidate : component) {
    // Max component size after removing `candidate`.
    int max_piece = 0;
    std::vector<bool> visited(graph.order(), false);
    visited[candidate] = true;
    for (Vertex root : graph.Neighbors(candidate)) {
      if (removed[root] || visited[root]) continue;
      int piece = 0;
      std::deque<Vertex> piece_queue = {root};
      visited[root] = true;
      while (!piece_queue.empty()) {
        Vertex v = piece_queue.front();
        piece_queue.pop_front();
        ++piece;
        for (Vertex u : graph.Neighbors(v)) {
          if (!removed[u] && !visited[u]) {
            visited[u] = true;
            piece_queue.push_back(u);
          }
        }
      }
      max_piece = std::max(max_piece, piece);
    }
    if (max_piece <= total / 2) {
      centroid = candidate;
      break;
    }
  }
  FOLEARN_CHECK_NE(centroid, kNoVertex) << "tree must have a centroid";
  removed[centroid] = true;
  int deepest = 0;
  for (Vertex root : graph.Neighbors(centroid)) {
    if (!removed[root]) {
      deepest = std::max(deepest, CentroidDepth(graph, removed, root));
    }
  }
  return deepest + 1;
}

}  // namespace

int TreedepthUpperBoundForest(const Graph& graph) {
  FOLEARN_CHECK(IsForest(graph)) << "centroid bound requires a forest";
  std::vector<bool> removed(graph.order(), false);
  int depth = 0;
  for (Vertex v = 0; v < graph.order(); ++v) {
    if (!removed[v]) {
      depth = std::max(depth, CentroidDepth(graph, removed, v));
    }
  }
  return depth;
}

namespace {

// Canonical key of an induced subgraph given by a sorted vertex subset.
using SubsetKey = std::vector<Vertex>;

int TreedepthRec(const Graph& graph, std::vector<Vertex> vertices,
                 std::map<SubsetKey, int>& memo, int64_t& budget) {
  if (vertices.empty()) return 0;
  auto it = memo.find(vertices);
  if (it != memo.end()) return it->second;
  FOLEARN_CHECK_GT(budget--, 0) << "ExactTreedepth budget exhausted";

  // Split into connected components within `vertices`.
  std::vector<bool> in_set(graph.order(), false);
  for (Vertex v : vertices) in_set[v] = true;
  std::vector<bool> seen(graph.order(), false);
  std::vector<std::vector<Vertex>> components;
  for (Vertex start : vertices) {
    if (seen[start]) continue;
    std::vector<Vertex> component;
    std::deque<Vertex> queue = {start};
    seen[start] = true;
    while (!queue.empty()) {
      Vertex v = queue.front();
      queue.pop_front();
      component.push_back(v);
      for (Vertex u : graph.Neighbors(v)) {
        if (in_set[u] && !seen[u]) {
          seen[u] = true;
          queue.push_back(u);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }

  int result;
  if (components.size() > 1) {
    result = 0;
    for (std::vector<Vertex>& component : components) {
      result = std::max(
          result, TreedepthRec(graph, std::move(component), memo, budget));
    }
  } else {
    result = static_cast<int>(vertices.size());
    for (Vertex v : vertices) {
      std::vector<Vertex> rest;
      rest.reserve(vertices.size() - 1);
      for (Vertex u : vertices) {
        if (u != v) rest.push_back(u);
      }
      result = std::min(
          result, 1 + TreedepthRec(graph, std::move(rest), memo, budget));
      if (result == 1) break;
    }
  }
  memo.emplace(std::move(vertices), result);
  return result;
}

}  // namespace

int ExactTreedepth(const Graph& graph, int64_t budget) {
  std::vector<Vertex> all(graph.order());
  for (Vertex v = 0; v < graph.order(); ++v) all[v] = v;
  std::map<SubsetKey, int> memo;
  return TreedepthRec(graph, std::move(all), memo, budget);
}

}  // namespace folearn
