#ifndef FOLEARN_GRAPH_IO_H_
#define FOLEARN_GRAPH_IO_H_

#include <optional>
#include <string>
#include <string_view>

#include "graph/graph.h"
#include "util/status.h"

namespace folearn {

// Serialises a graph to a line-oriented text format:
//
//   graph <order>
//   colors <name...>              # optional, one line
//   color <name> <vertex...>      # one line per non-empty colour
//   edge <u> <v>                  # one line per edge, u < v
//
// Deterministic (sorted) so it can be diffed in tests.
std::string ToText(const Graph& graph);

// Parses the format produced by ToText. Returns std::nullopt on malformed
// input (and fills *error if non-null). Error messages are prefixed with
// the offending 1-based line number ("line 3: ..."); the "empty input"
// error has no line to point at and carries no prefix.
std::optional<Graph> FromText(std::string_view text,
                              std::string* error = nullptr);

// Status-typed variants for callers that need recoverable errors (the CLI,
// checkpoint loading): malformed text is kInvalidArgument with the FromText
// diagnostic, never a crash.
StatusOr<Graph> ParseGraph(std::string_view text);

// Reads and parses `path`. A missing/unreadable file is kNotFound; malformed
// contents are kInvalidArgument. Diagnostics are prefixed with the path.
StatusOr<Graph> LoadGraphFile(const std::string& path);

// Graphviz DOT rendering (undirected), colours emitted as vertex labels.
std::string ToDot(const Graph& graph, std::string_view name = "G");

}  // namespace folearn

#endif  // FOLEARN_GRAPH_IO_H_
