#ifndef FOLEARN_GRAPH_ALGORITHMS_H_
#define FOLEARN_GRAPH_ALGORITHMS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/mem_budget.h"

namespace folearn {

inline constexpr int kUnreachable = -1;

// Multi-source BFS. Returns dist[v] = min distance from v to any source, or
// kUnreachable if none is reachable (or beyond `radius_cap` when
// radius_cap >= 0; vertices further than the cap report kUnreachable).
std::vector<int> BfsDistances(const Graph& graph,
                              std::span<const Vertex> sources,
                              int radius_cap = -1);

// Distance between a vertex and a tuple: min over entries (paper §2,
// dist(u, v̄)). Returns kUnreachable if disconnected.
int Distance(const Graph& graph, Vertex u, Vertex v);

// Distance between two tuples: min over pairs (paper §2, dist(ū, v̄)).
int TupleDistance(const Graph& graph, std::span<const Vertex> us,
                  std::span<const Vertex> vs);

// The r-ball N_r^G(sources) = { v : dist(v, sources) ≤ r }, sorted
// increasingly (paper §2, r-neighbourhood of a tuple / set).
std::vector<Vertex> Ball(const Graph& graph, std::span<const Vertex> sources,
                         int radius);

// Frontier BFS with reusable O(order) scratch: collects the sorted r-ball
// of a source set in O(|ball| log |ball|) per call — no per-call O(order)
// allocation or memset, which is what makes repeated ball queries viable
// on million-vertex graphs. Epoch-stamped visit marks make re-use free;
// the scratch vectors are recycled across calls.
//
// Not thread-safe; the graph must outlive the collector and collectors
// must be rebuilt if the graph mutates or grows.
class BallCollector {
 public:
  explicit BallCollector(const Graph& graph)
      : graph_(&graph), mark_(graph.order(), 0) {}

  // N_radius(sources), sorted increasingly — set-equal to
  // Ball(graph, sources, radius). The span is valid until the next call.
  std::span<const Vertex> Collect(std::span<const Vertex> sources,
                                  int radius);

 private:
  const Graph* graph_;
  // Visited iff mark_[v] == epoch_. One byte per vertex, not four: the BFS
  // probes this array once per directed edge endpoint, and at n = 10^6 the
  // byte array stays cache-resident where a wider stamp would not. The
  // narrow epoch wraps every 255 calls, which costs one O(n) clear —
  // amortised noise.
  std::vector<uint8_t> mark_;
  std::vector<Vertex> frontier_;
  std::vector<Vertex> next_;
  std::vector<Vertex> ball_;
  uint8_t epoch_ = 0;
};

// Memoises single-source balls per (vertex, radius), so the BFS for a
// recurring vertex is paid once and reused across examples and parameter
// candidates. A tuple ball N_r(v̄) is the union of the per-entry balls
// N_r(v) (immediate from the definition dist(u, v̄) = min_i dist(u, v_i)),
// so `TupleBall` merges cached per-vertex balls instead of running a
// multi-source BFS — the dominant saving in the ERM sweeps, where every
// example tuple reappears under each of the n^ℓ parameter candidates.
//
// Storage is columnar: every cached ball is an (offset, length) slice into
// one packed arena vector, so a cache of many small balls costs one
// allocation instead of one vector per ball, and a hit returns a span over
// contiguous memory. Evicted slices are reclaimed by compacting the arena
// once dead bytes exceed live bytes, so real memory stays within 2× the
// accounted bytes.
//
// With `max_bytes` ≥ 0 the accounted footprint (payload + per-entry map
// node, key, and insertion-queue overhead) never exceeds the budget:
// `bytes() <= max_bytes` is an invariant after every call. When an
// insertion would push the cache over budget, the oldest entries
// (insertion order — a deterministic FIFO independent of hash iteration
// order) are evicted until it fits; a single ball whose footprint alone
// exceeds the budget is served from a scratch slot and never cached.
// Appends, evictions, and compaction can move the arena, so a returned
// span is only valid until the next call (TupleBall consumes each ball
// immediately and is always safe).
//
// Not thread-safe — parallel sweeps keep one cache per worker. The graph
// must outlive the cache, and the cache must be dropped when the graph
// mutates.
class BallCache {
 public:
  // kNoBudget (< 0) = unbounded, the historical behaviour.
  static constexpr int64_t kNoBudget = -1;

  explicit BallCache(const Graph& graph, int64_t max_bytes = kNoBudget)
      : graph_(&graph), max_bytes_(max_bytes) {}

  ~BallCache() {
    if (account_ != nullptr) account_->Release(bytes_);
  }

  // Mirrors the accounted bytes into a MemBudget account (must outlive
  // the cache; bytes already cached are charged on attach). Every insert
  // then goes through MemBudget::TryCharge: a refused charge serves the
  // ball uncached from the scratch slot instead — caching is semantically
  // transparent, so results are byte-identical either way.
  void set_mem_account(MemBudget* account) {
    if (account_ != nullptr) account_->Release(bytes_);
    account_ = account;
    if (account_ != nullptr && bytes_ > 0) account_->Charge(bytes_);
  }

  // Read-through mode (the server's yellow/red pressure tiers): while
  // *flag is true, misses are served from scratch and never cached —
  // existing entries keep serving hits, but the cache stops growing.
  void set_read_through(const std::atomic<bool>* flag) {
    read_through_ = flag;
  }

  // Drops every cached entry and frees the arena (accounted bytes fall to
  // zero). The red pressure tier's reclamation hook: semantically a cold
  // cache, so results after a Clear() are byte-identical, just slower.
  void Clear();

  // N_radius(v), sorted increasingly; computed on first use. The span is
  // valid until the next call on this cache.
  std::span<const Vertex> VertexBall(Vertex v, int radius);

  // N_radius(tuple), sorted increasingly — set-equal to
  // Ball(graph, tuple, radius).
  std::vector<Vertex> TupleBall(std::span<const Vertex> tuple, int radius);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t cached_balls() const { return static_cast<int64_t>(cache_.size()); }
  // Accounted bytes currently held (full per-entry footprint; always
  // ≤ max_bytes under a budget) / entries evicted so far.
  int64_t bytes() const { return bytes_; }
  int64_t evictions() const { return evictions_; }
  // Balls whose footprint alone exceeded the budget, served uncached.
  int64_t oversize_misses() const { return oversize_misses_; }
  // Inserts refused by read-through mode or the memory account.
  int64_t shed_inserts() const { return shed_inserts_; }
  int64_t max_bytes() const { return max_bytes_; }

 private:
  // An arena slice: `length` vertices starting at arena_[offset].
  struct Slice {
    uint64_t offset = 0;
    uint32_t length = 0;
  };

  // Accounted footprint of one cached entry. Beyond the payload this
  // charges the slice record, the unordered_map node (int64 key + hash
  // link + cached hash + bucket-array share, libstdc++ layout) and the
  // insertion-order queue slot — the overhead that dominates on
  // many-small-ball workloads.
  static constexpr int64_t kPerEntryOverhead =
      static_cast<int64_t>(sizeof(Slice))  // map node payload
      + 4 * sizeof(void*)   // hash node header + bucket share
      + sizeof(int64_t)     // key
      + sizeof(int64_t);    // insertion_order_ slot
  static int64_t EntryBytes(uint64_t length) {
    return static_cast<int64_t>(length) *
               static_cast<int64_t>(sizeof(Vertex)) +
           kPerEntryOverhead;
  }

  // Squeezes evicted slices out of the arena (entries keep their
  // insertion order; offsets are rewritten).
  void Compact();

  const Graph* graph_;
  int64_t max_bytes_;
  // Lazily built on the first miss (its scratch is O(order)).
  std::unique_ptr<BallCollector> collector_;
  // Key: radius * order + vertex (both bounded by the graph order for all
  // realistic radii; radius values are small constants here).
  std::unordered_map<int64_t, Slice> cache_;
  std::deque<int64_t> insertion_order_;  // oldest key at the front
  std::vector<Vertex> arena_;            // packed payloads of live slices
  int64_t dead_payload_bytes_ = 0;       // evicted bytes still in the arena
  // Holds the most recent over-budget ball (see class comment).
  std::vector<Vertex> scratch_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t bytes_ = 0;
  int64_t evictions_ = 0;
  int64_t oversize_misses_ = 0;
  int64_t shed_inserts_ = 0;
  MemBudget* account_ = nullptr;
  const std::atomic<bool>* read_through_ = nullptr;
};

// An induced subgraph G[S] together with the vertex renaming in both
// directions (paper §2).
struct InducedSubgraph {
  Graph graph;
  // to_original[new_vertex] = original vertex.
  std::vector<Vertex> to_original;
  // from_original[original_vertex] = new vertex, or kNoVertex if dropped.
  std::vector<Vertex> from_original;

  // Maps a tuple of original vertices into the subgraph. CHECK-fails if an
  // entry was dropped.
  std::vector<Vertex> MapTuple(std::span<const Vertex> tuple) const;
};

// Builds G[S]; `vertices` need not be sorted and may contain duplicates
// (deduplicated). The subgraph keeps the full vocabulary.
InducedSubgraph BuildInducedSubgraph(const Graph& graph,
                                     std::span<const Vertex> vertices);

// The induced r-neighbourhood graph N_r^G(tuple) (paper §2): ball +
// induced subgraph, with the tuple mapped along.
struct NeighborhoodGraph {
  InducedSubgraph induced;
  std::vector<Vertex> tuple;  // the tuple's image inside `induced.graph`
};
NeighborhoodGraph BuildNeighborhoodGraph(const Graph& graph,
                                         std::span<const Vertex> tuple,
                                         int radius);

// Repeated-query variant of BuildNeighborhoodGraph for large graphs: owns
// a BallCollector (reusable O(order) scratch, allocated once) and builds
// the induced neighbourhood's CSR columns directly from the host graph's
// CSR rows — per query it costs O(|ball| · d · log |ball|), independent of
// the host order, instead of the free function's O(order) per call. The
// result omits the O(order) `from_original` column; the tuple is mapped
// for the caller.
//
// Not thread-safe; one extractor per worker, rebuilt if the graph mutates.
class NeighborhoodExtractor {
 public:
  explicit NeighborhoodExtractor(const Graph& graph)
      : graph_(&graph), collector_(graph) {}

  struct Result {
    Graph graph;                      // finalized induced subgraph
    std::vector<Vertex> to_original;  // sorted ball (new id -> original)
    std::vector<Vertex> tuple;        // the tuple's image in `graph`
  };
  Result Extract(std::span<const Vertex> tuple, int radius);

 private:
  const Graph* graph_;
  BallCollector collector_;
};

// Disjoint union of `copies` copies of `graph` (used by Lemma 7's general
// case: Ĝ = union of 2ℓ copies of G). Copy i occupies vertex range
// [i·n, (i+1)·n); the vocabulary is unchanged.
Graph DisjointCopies(const Graph& graph, int copies);

// Disjoint union of two graphs over the same vocabulary; `b`'s vertices are
// shifted by a.order().
Graph DisjointUnion(const Graph& a, const Graph& b);

// Connected components: returns (component id per vertex, component count).
std::pair<std::vector<int>, int> ConnectedComponents(const Graph& graph);

// True iff the edge relation stored is symmetric, irreflexive, and sorted —
// used by property tests and after surgery like Lemma 16's contraction.
bool ValidateGraph(const Graph& graph);

}  // namespace folearn

#endif  // FOLEARN_GRAPH_ALGORITHMS_H_
