#ifndef FOLEARN_GRAPH_FOG_H_
#define FOLEARN_GRAPH_FOG_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "graph/graph.h"
#include "util/status.h"

namespace folearn {

// .fog — the versioned, checksummed binary graph format.
//
// A .fog file is the columnar Graph representation written out verbatim, so
// loading is a read-only memory map plus validation — no parsing, no
// per-vertex allocations, and concurrent sessions on the same file share
// the page cache. Layout (little-endian, all sections 8-byte aligned):
//
//   header (64 bytes):
//     0  magic            "FOGRAPH1"
//     8  u32 version      (currently 1)
//     12 u32 flags        (reserved, 0)
//     16 u64 order        |V|
//     24 u64 num_colors   ℓ
//     32 u64 neighbor_entries   2·|E| (directed CSR entries)
//     40 u64 names_bytes  length of the colour-name blob
//     48 u64 payload_bytes
//     56 u64 checksum     FNV-1a 64 of the payload
//   payload:
//     offsets        (order+1) × u64   CSR row offsets
//     neighbors      neighbor_entries × i32, zero-padded to 8
//     colour words   num_colors × ⌈order/64⌉ × u64 membership bitsets
//     member counts  num_colors × u64
//     members        (Σ counts) × i32 sorted member columns, padded to 8
//     names          '\n'-joined colour names (names_bytes, no trailing \n)
//
// Every loader failure mode — truncation, bit flips, version skew, bad
// checksum, structurally inconsistent columns — returns a kDataLoss Status
// with a diagnostic (exit 65 at the CLI), never UB. Mappings are shared
// process-wide: loading the same (unchanged) file twice revalidates nothing
// and reuses the same pages, which is what makes folearnd session re-warm
// on a large graph near-instant.

// True iff `bytes` starts with the .fog magic (used to sniff binary vs
// text graph files).
bool LooksLikeFog(std::string_view bytes);

// Serialises a finalized graph to `path` (temp file + atomic rename).
// Graphs exceeding the format limits (order > kMaxGraphOrder or
// neighbour entries ≥ 2^32) are rejected with a Status, never truncated.
Status WriteFogFile(const std::string& path, const Graph& graph);

// Memory-maps and validates `path`, returning a finalized Graph that views
// the mapped columns zero-copy (the mapping lives as long as any Graph
// copy). If `fingerprint` is non-null it receives the payload checksum.
StatusOr<Graph> LoadFogFile(const std::string& path,
                            uint64_t* fingerprint = nullptr);

// Loads `path` as .fog if it carries the magic, as text otherwise. The
// fingerprint is the payload checksum (.fog) or the FNV-1a of the text
// bytes — either way it identifies the loaded content for session
// journaling.
StatusOr<Graph> LoadGraphAuto(const std::string& path,
                              uint64_t* fingerprint = nullptr);

}  // namespace folearn

#endif  // FOLEARN_GRAPH_FOG_H_
