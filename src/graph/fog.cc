#include "graph/fog.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/io.h"
#include "util/checkpoint.h"
#include "util/mem_budget.h"

namespace folearn {
namespace {

constexpr char kMagic[8] = {'F', 'O', 'G', 'R', 'A', 'P', 'H', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 64;
// Colour count sanity bound — far above anything real, low enough that the
// section-size arithmetic below cannot overflow.
constexpr uint64_t kMaxColors = uint64_t{1} << 20;

uint64_t Pad8(uint64_t bytes) { return (bytes + 7) & ~uint64_t{7}; }

void AppendBytes(std::string& out, const void* data, size_t bytes) {
  out.append(static_cast<const char*>(data), bytes);
}

void AppendU32(std::string& out, uint32_t value) {
  AppendBytes(out, &value, sizeof(value));
}

void AppendU64(std::string& out, uint64_t value) {
  AppendBytes(out, &value, sizeof(value));
}

uint64_t ReadU64(const char* base) {
  uint64_t value;
  std::memcpy(&value, base, sizeof(value));
  return value;
}

uint32_t ReadU32(const char* base) {
  uint32_t value;
  std::memcpy(&value, base, sizeof(value));
  return value;
}

// One memory-mapped, fully validated .fog file. Graphs built over it keep
// it alive through their GraphStorage handle; the process-wide registry
// below shares one mapping (and one validation pass) per distinct inode.
class FogMapping : public GraphStorage {
 public:
  FogMapping(void* data, size_t size) : data_(data), size_(size) {}
  FogMapping(const FogMapping&) = delete;
  FogMapping& operator=(const FogMapping&) = delete;
  ~FogMapping() override {
    if (data_ != nullptr) ::munmap(data_, size_);
  }

  const char* bytes() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }

  // Filled by Validate(); spans point into the mapping.
  int32_t order = 0;
  uint64_t checksum = 0;
  std::vector<std::string> color_names;
  std::span<const uint64_t> offsets;
  std::span<const Vertex> neighbors;
  std::vector<Graph::MappedColor> colors;

 private:
  void* data_;
  size_t size_;
};

// Structural validation of a mapped file. Everything here guards external
// bytes from reaching library CHECKs: after an OK return the columns
// satisfy the Graph::FromCsr contract (monotone offsets, strictly sorted
// in-range irreflexive symmetric rows, consistent colour columns).
Status Validate(FogMapping& m, const std::string& path) {
  auto corrupt = [&](const std::string& what) {
    return DataLossError(path + ": " + what);
  };
  if (m.size() < kHeaderBytes) return corrupt("truncated header");
  const char* base = m.bytes();
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return corrupt("not a .fog file (bad magic)");
  }
  const uint32_t version = ReadU32(base + 8);
  if (version != kVersion) {
    return corrupt("unsupported .fog version " + std::to_string(version) +
                   " (expected " + std::to_string(kVersion) + ")");
  }
  const uint32_t flags = ReadU32(base + 12);
  if (flags != 0) {
    // No flags are defined in version 1; a reader must not guess at bits
    // a future writer may have given meaning.
    return corrupt("unsupported flags " + std::to_string(flags));
  }
  const uint64_t order = ReadU64(base + 16);
  const uint64_t num_colors = ReadU64(base + 24);
  const uint64_t neighbor_entries = ReadU64(base + 32);
  const uint64_t names_bytes = ReadU64(base + 40);
  const uint64_t payload_bytes = ReadU64(base + 48);
  m.checksum = ReadU64(base + 56);
  if (payload_bytes != m.size() - kHeaderBytes) {
    return corrupt("payload length mismatch (header says " +
                   std::to_string(payload_bytes) + ", file holds " +
                   std::to_string(m.size() - kHeaderBytes) + ")");
  }
  if (order > static_cast<uint64_t>(kMaxGraphOrder)) {
    return corrupt("order " + std::to_string(order) +
                   " exceeds the 32-bit id limit");
  }
  if (num_colors > kMaxColors) {
    return corrupt("implausible colour count " + std::to_string(num_colors));
  }
  if (neighbor_entries >= kMaxNeighborEntries) {
    return corrupt("neighbour entries " + std::to_string(neighbor_entries) +
                   " exceed the format limit");
  }
  if (neighbor_entries % 2 != 0) {
    return corrupt("odd neighbour entry count (undirected graphs have an "
                   "even number of directed entries)");
  }
  const char* payload = base + kHeaderBytes;
  if (Fnv1a64(std::string_view(payload, payload_bytes)) != m.checksum) {
    return corrupt("payload checksum mismatch");
  }

  // Section arithmetic: all multiplicands are bounded above (order < 2^31,
  // num_colors <= 2^20, neighbor_entries < 2^32), so no uint64 overflow.
  const uint64_t words_per_color = (order + 63) / 64;
  uint64_t cursor = 0;
  auto take = [&](uint64_t bytes, const char* what,
                  const char** out) -> Status {
    if (bytes > payload_bytes - cursor) {
      return corrupt(std::string("truncated ") + what + " section");
    }
    *out = payload + cursor;
    cursor += bytes;
    return OkStatus();
  };
  const char* offsets_ptr = nullptr;
  const char* neighbors_ptr = nullptr;
  const char* words_ptr = nullptr;
  const char* counts_ptr = nullptr;
  const char* members_ptr = nullptr;
  const char* names_ptr = nullptr;
  Status section = take((order + 1) * 8, "offsets", &offsets_ptr);
  if (section.ok()) section = take(neighbor_entries * 4, "neighbors",
                                   &neighbors_ptr);
  if (section.ok()) {
    cursor = Pad8(cursor);
    if (cursor > payload_bytes) return corrupt("truncated neighbor padding");
    section = take(num_colors * words_per_color * 8, "colour words",
                   &words_ptr);
  }
  if (section.ok()) section = take(num_colors * 8, "member counts",
                                   &counts_ptr);
  if (!section.ok()) return section;
  const auto* counts = reinterpret_cast<const uint64_t*>(counts_ptr);
  uint64_t total_members = 0;
  for (uint64_t c = 0; c < num_colors; ++c) {
    if (counts[c] > order) return corrupt("colour member count exceeds order");
    total_members += counts[c];
  }
  section = take(total_members * 4, "members", &members_ptr);
  if (section.ok()) {
    cursor = Pad8(cursor);
    if (cursor > payload_bytes) return corrupt("truncated member padding");
    section = take(names_bytes, "names", &names_ptr);
  }
  if (!section.ok()) return section;
  if (cursor != payload_bytes) {
    return corrupt("trailing bytes after the names section");
  }

  // CSR structure.
  const auto* offsets = reinterpret_cast<const uint64_t*>(offsets_ptr);
  const auto* neighbors = reinterpret_cast<const Vertex*>(neighbors_ptr);
  if (offsets[0] != 0) return corrupt("CSR offsets do not start at 0");
  if (offsets[order] != neighbor_entries) {
    return corrupt("CSR offsets do not end at the neighbour count");
  }
  // The whole chain must be monotone BEFORE any row is scanned: a forged
  // offset larger than the neighbour section would otherwise drive the
  // row scan below out of the mapping.
  for (uint64_t v = 0; v < order; ++v) {
    if (offsets[v] > offsets[v + 1]) return corrupt("CSR offsets not monotone");
  }
  // Symmetry rides along as an order-invariant accumulator instead of a
  // per-entry mirror lookup: hash each entry's unordered pair {v, u} and
  // xor the hashes. Rows are strictly sorted (checked below), so a pair
  // can occur at most twice — once per endpoint row — which makes "the
  // accumulator returns to zero" equivalent to "every entry has its
  // mirror", up to a 64-bit hash collision between distinct pairs: the
  // same failure class the payload checksum already accepts. The mirror
  // lookup it replaces cost one scattered read per directed entry, which
  // dominated cold-load time at n = 10^6.
  const auto signed_order = static_cast<Vertex>(order);
  uint64_t symmetry = 0;
  for (uint64_t v = 0; v < order; ++v) {
    Vertex previous = kNoVertex;
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const Vertex u = neighbors[i];
      if (u < 0 || u >= signed_order) return corrupt("neighbour out of range");
      if (u <= previous) return corrupt("CSR row not strictly sorted");
      if (static_cast<uint64_t>(u) == v) return corrupt("self-loop stored");
      previous = u;
      const uint64_t lo =
          std::min(v, static_cast<uint64_t>(u));
      const uint64_t hi =
          std::max(v, static_cast<uint64_t>(u));
      uint64_t x = lo * 0x9e3779b97f4a7c15ULL ^ (hi + 0x165667b19e3779f9ULL);
      x ^= x >> 29;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 32;
      symmetry ^= x;
    }
  }
  if (symmetry != 0) return corrupt("edge relation not symmetric");

  // Colour columns: names, words, and member arrays must agree.
  std::string_view names_blob(names_ptr, names_bytes);
  std::vector<std::string> names;
  if (num_colors > 0) {
    size_t start = 0;
    while (names.size() < num_colors) {
      size_t split = names_blob.find('\n', start);
      if (names.size() + 1 == num_colors) {
        if (split != std::string_view::npos) {
          return corrupt("too many colour names");
        }
        split = names_blob.size();
      } else if (split == std::string_view::npos) {
        return corrupt("too few colour names");
      }
      names.emplace_back(names_blob.substr(start, split - start));
      start = split + 1;
    }
  } else if (names_bytes != 0) {
    return corrupt("names blob present with zero colours");
  }
  std::unordered_set<std::string_view> seen_names;
  for (const std::string& name : names) {
    if (name.empty()) return corrupt("empty colour name");
    if (name.find(' ') != std::string::npos) {
      return corrupt("colour name contains whitespace");
    }
    if (!seen_names.insert(name).second) {
      return corrupt("duplicate colour name '" + name + "'");
    }
  }
  const auto* words = reinterpret_cast<const uint64_t*>(words_ptr);
  const auto* members = reinterpret_cast<const Vertex*>(members_ptr);
  uint64_t member_cursor = 0;
  m.colors.clear();
  for (uint64_t c = 0; c < num_colors; ++c) {
    const uint64_t* color_words = words + c * words_per_color;
    uint64_t popcount = 0;
    for (uint64_t w = 0; w < words_per_color; ++w) {
      popcount += std::popcount(color_words[w]);
    }
    if (words_per_color > 0 && order % 64 != 0) {
      const uint64_t tail_mask = ~uint64_t{0} << (order % 64);
      if ((color_words[words_per_color - 1] & tail_mask) != 0) {
        return corrupt("colour bits set beyond the vertex range");
      }
    }
    if (popcount != counts[c]) {
      return corrupt("colour member count disagrees with its bitset");
    }
    const Vertex* column = members + member_cursor;
    Vertex previous = kNoVertex;
    for (uint64_t i = 0; i < counts[c]; ++i) {
      const Vertex v = column[i];
      if (v < 0 || v >= signed_order) {
        return corrupt("colour member out of range");
      }
      if (v <= previous) return corrupt("colour members not strictly sorted");
      if ((color_words[static_cast<uint32_t>(v) >> 6] &
           (uint64_t{1} << (v & 63))) == 0) {
        return corrupt("colour member missing from its bitset");
      }
      previous = v;
    }
    m.colors.push_back(Graph::MappedColor{
        std::span<const uint64_t>(color_words, words_per_color),
        std::span<const Vertex>(column, counts[c])});
    member_cursor += counts[c];
  }

  m.order = static_cast<int32_t>(order);
  m.color_names = std::move(names);
  m.offsets = {offsets, static_cast<size_t>(order) + 1};
  m.neighbors = {neighbors, static_cast<size_t>(neighbor_entries)};
  return OkStatus();
}

// Process-wide mapping registry keyed by file identity, so every session
// (and repeated load) of the same unchanged file shares one mapping and
// pays validation once. Weak pointers: a mapping lives exactly as long as
// some Graph views it.
std::mutex g_registry_mu;
std::unordered_map<std::string, std::weak_ptr<const FogMapping>>&
Registry() {
  static auto* registry =
      new std::unordered_map<std::string, std::weak_ptr<const FogMapping>>();
  return *registry;
}

std::string FileKey(const struct stat& st) {
  return std::to_string(st.st_dev) + ":" + std::to_string(st.st_ino) + ":" +
         std::to_string(st.st_size) + ":" + std::to_string(st.st_mtim.tv_sec) +
         "." + std::to_string(st.st_mtim.tv_nsec);
}

StatusOr<std::shared_ptr<const FogMapping>> MapFogFile(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return NotFoundError(path + ": cannot open: " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return UnavailableError(path + ": fstat failed: " + std::strerror(err));
  }
  const std::string key = FileKey(st);
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    auto it = Registry().find(key);
    if (it != Registry().end()) {
      if (std::shared_ptr<const FogMapping> live = it->second.lock()) {
        ::close(fd);
        return live;
      }
    }
  }
  if (st.st_size < static_cast<off_t>(kHeaderBytes)) {
    ::close(fd);
    return DataLossError(path + ": truncated header");
  }
  if (ResourceFaults::Instance().ShouldFailMmap()) {
    ::close(fd);
    return UnavailableError(path + ": mmap failed: injected ENOMEM");
  }
  void* data = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (data == MAP_FAILED) {
    return UnavailableError(path + ": mmap failed: " + std::strerror(errno));
  }
  auto mapping =
      std::make_shared<FogMapping>(data, static_cast<size_t>(st.st_size));
  Status valid = Validate(*mapping, path);
  if (!valid.ok()) return valid;
  {
    std::lock_guard<std::mutex> lock(g_registry_mu);
    Registry()[key] = mapping;
    // Drop dead registry entries opportunistically so repeated loads of
    // ever-changing files do not grow the map without bound.
    for (auto it = Registry().begin(); it != Registry().end();) {
      it = it->second.expired() ? Registry().erase(it) : std::next(it);
    }
  }
  return std::shared_ptr<const FogMapping>(std::move(mapping));
}

Graph GraphFromMapping(std::shared_ptr<const FogMapping> mapping) {
  Vocabulary vocabulary;
  for (const std::string& name : mapping->color_names) {
    vocabulary.AddColor(name);
  }
  const FogMapping& m = *mapping;
  return Graph::FromMappedCsr(m.order, m.offsets, m.neighbors,
                              std::move(vocabulary), m.colors,
                              std::move(mapping));
}

}  // namespace

bool LooksLikeFog(std::string_view bytes) {
  return bytes.size() >= sizeof(kMagic) &&
         std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0;
}

Status WriteFogFile(const std::string& path, const Graph& graph) {
  FOLEARN_CHECK(graph.finalized())
      << "WriteFogFile requires a finalized graph";
  const std::span<const uint64_t> offsets = graph.CsrOffsets();
  const std::span<const Vertex> neighbors = graph.CsrNeighbors();
  if (neighbors.size() >= kMaxNeighborEntries) {
    return InvalidArgumentError(
        path + ": graph exceeds the .fog neighbour-entry limit (" +
        std::to_string(neighbors.size()) + " entries)");
  }
  const int num_colors = graph.vocabulary().size();
  std::string names_blob;
  for (ColorId c = 0; c < num_colors; ++c) {
    if (c > 0) names_blob += '\n';
    names_blob += graph.vocabulary().Name(c);
  }

  std::string payload;
  AppendBytes(payload, offsets.data(), offsets.size_bytes());
  AppendBytes(payload, neighbors.data(), neighbors.size_bytes());
  payload.resize(Pad8(payload.size()), '\0');
  for (ColorId c = 0; c < num_colors; ++c) {
    const std::span<const uint64_t> words = graph.ColorWords(c);
    AppendBytes(payload, words.data(), words.size_bytes());
  }
  uint64_t total_members = 0;
  for (ColorId c = 0; c < num_colors; ++c) {
    const uint64_t count = graph.ColorMembers(c).size();
    AppendU64(payload, count);
    total_members += count;
  }
  (void)total_members;
  for (ColorId c = 0; c < num_colors; ++c) {
    const std::span<const Vertex> members = graph.ColorMembers(c);
    AppendBytes(payload, members.data(), members.size_bytes());
  }
  payload.resize(Pad8(payload.size()), '\0');
  payload += names_blob;

  std::string file;
  file.reserve(kHeaderBytes + payload.size());
  AppendBytes(file, kMagic, sizeof(kMagic));
  AppendU32(file, kVersion);
  AppendU32(file, 0);  // flags
  AppendU64(file, static_cast<uint64_t>(graph.order()));
  AppendU64(file, static_cast<uint64_t>(num_colors));
  AppendU64(file, static_cast<uint64_t>(neighbors.size()));
  AppendU64(file, static_cast<uint64_t>(names_blob.size()));
  AppendU64(file, static_cast<uint64_t>(payload.size()));
  AppendU64(file, Fnv1a64(payload));
  FOLEARN_CHECK_EQ(file.size(), kHeaderBytes);
  file += payload;
  return WriteFileAtomic(path, file);
}

StatusOr<Graph> LoadFogFile(const std::string& path, uint64_t* fingerprint) {
  StatusOr<std::shared_ptr<const FogMapping>> mapping = MapFogFile(path);
  if (!mapping.ok()) return mapping.status();
  if (fingerprint != nullptr) *fingerprint = (*mapping)->checksum;
  return GraphFromMapping(*std::move(mapping));
}

StatusOr<Graph> LoadGraphAuto(const std::string& path, uint64_t* fingerprint) {
  char magic[sizeof(kMagic)] = {};
  {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return NotFoundError(path + ": cannot open: " + std::strerror(errno));
    }
    const ssize_t got = ::read(fd, magic, sizeof(magic));
    ::close(fd);
    if (got == static_cast<ssize_t>(sizeof(magic)) &&
        LooksLikeFog(std::string_view(magic, sizeof(magic)))) {
      return LoadFogFile(path, fingerprint);
    }
  }
  StatusOr<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  if (fingerprint != nullptr) *fingerprint = Fnv1a64(*text);
  StatusOr<Graph> graph = ParseGraph(*text);
  if (!graph.ok()) {
    return Status(graph.status().code(),
                  path + ": " + graph.status().message());
  }
  return graph;
}

}  // namespace folearn
