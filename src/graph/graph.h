#ifndef FOLEARN_GRAPH_GRAPH_H_
#define FOLEARN_GRAPH_GRAPH_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"

namespace folearn {

// A vertex is a 32-bit index into the graph's vertex set. 32 bits keep the
// packed CSR neighbour column at 4 bytes per entry — half the footprint and
// twice the scan bandwidth of a 64-bit id at the 10^6–10^7-vertex scale the
// sublinear-learning results are about.
using Vertex = int32_t;
inline constexpr Vertex kNoVertex = -1;

// Hard order limit: vertex ids and order+1 CSR offsets must fit in int32.
// External input beyond the limit is rejected with a Status by the loaders
// (exit 65), never silently truncated.
inline constexpr int64_t kMaxGraphOrder =
    static_cast<int64_t>(std::numeric_limits<int32_t>::max()) - 1;
// Hard limit on directed neighbour entries (2 × undirected edges) in the
// binary format.
inline constexpr uint64_t kMaxNeighborEntries = uint64_t{1} << 32;

// Checked int64 → Vertex narrowing for internal callers (generators,
// builders). A violation is a programming error and aborts; external input
// goes through the Status-returning loaders instead, which reject
// out-of-range values with a diagnostic.
inline Vertex CheckedVertex(int64_t value) {
  FOLEARN_CHECK(value >= 0 && value <= kMaxGraphOrder)
      << "vertex id " << value << " outside the 32-bit id range [0, "
      << kMaxGraphOrder << "]";
  return static_cast<Vertex>(value);
}

// A colour (unary relation symbol) identifier within a Vocabulary.
using ColorId = int32_t;

// The vocabulary τ of a coloured graph: the binary edge relation E is
// implicit, and τ additionally carries a finite list of named unary colour
// predicates P_1, …, P_ℓ (paper §2, "τ-coloured graph").
//
// Colour identifiers are dense indices in declaration order, so a vocabulary
// expansion (paper: "τ′-expansion") simply appends colours and preserves all
// existing ids.
class Vocabulary {
 public:
  Vocabulary() = default;

  // Declares a new colour. The name must be distinct from existing colours.
  ColorId AddColor(std::string name);

  // Returns the id of `name` if declared.
  std::optional<ColorId> FindColor(std::string_view name) const;

  const std::string& Name(ColorId color) const {
    FOLEARN_CHECK_GE(color, 0);
    FOLEARN_CHECK_LT(static_cast<size_t>(color), names_.size());
    return names_[color];
  }

  int size() const { return static_cast<int>(names_.size()); }

  const std::vector<std::string>& names() const { return names_; }

  bool operator==(const Vocabulary& other) const {
    return names_ == other.names_;
  }

  // True iff this vocabulary is a prefix (sub-vocabulary with identical ids)
  // of `other`, i.e. `other` is an expansion of this one.
  bool IsPrefixOf(const Vocabulary& other) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ColorId> index_;
};

// Opaque handle that keeps externally owned CSR columns alive — in
// practice the read-only memory mapping of a .fog file (graph/fog.h). A
// Graph viewing mapped columns holds a shared_ptr to its storage, so
// copies are cheap (the columns are shared, not duplicated) and the
// mapping lives exactly as long as the last viewer.
class GraphStorage {
 public:
  virtual ~GraphStorage() = default;
};

// An undirected, simple, vertex-coloured graph G = (V, E, P_1, …, P_ℓ)
// (paper §2), stored columnar:
//
//   * adjacency is CSR — one offsets column (order+1 entries) into one
//     packed neighbour column, each row sorted — so iteration is a
//     contiguous scan, HasEdge a binary search over a cache-line-friendly
//     slice, and the whole structure can be written to (and memory-mapped
//     back from) the .fog binary format without re-packing;
//   * every colour class is kept twice: as a dense word bitset (order/64
//     uint64 words — O(1) membership, word-parallel algebra in the VM) and
//     as a sorted member array (cheap class scans).
//
// Construction is incremental through the same mutating API as before
// (AddVertex/AddEdge/SetColor …): a graph under construction keeps
// per-vertex adjacency vectors, and Finalize() packs them into the CSR
// columns by pointer-bumping. Reads work in either state; mutating a
// finalized graph transparently unpacks back into build mode first (O(m),
// intended for surgery on small graphs, not hot paths). Loaders and
// generators hand out finalized graphs.
//
// A finalized graph may view columns owned by a GraphStorage (a
// memory-mapped .fog file) instead of its own vectors; such a graph is
// read-only until a mutation copies the viewed columns out. Const reads
// never mutate, so sharing one finalized graph across threads is safe.
class Graph {
 public:
  // Creates a graph with `order` isolated vertices over `vocabulary`,
  // in build mode.
  explicit Graph(int order = 0, Vocabulary vocabulary = Vocabulary());

  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  // Builds a finalized graph from an undirected edge list (u ≠ v;
  // duplicates deduplicated) by degree-counting + pointer-bumping into the
  // CSR columns — no per-vertex heap allocations, the construction path
  // for the at-scale generators.
  static Graph FromEdges(int32_t order,
                         std::span<const std::pair<Vertex, Vertex>> edges,
                         Vocabulary vocabulary = Vocabulary());

  // Adopts already-validated CSR columns (offsets monotone, rows sorted,
  // symmetric, irreflexive). Internal contract — loaders validate external
  // bytes before calling this.
  static Graph FromCsr(int32_t order, std::vector<uint64_t> offsets,
                       std::vector<Vertex> neighbors, Vocabulary vocabulary);

  // One colour's columns inside externally owned storage.
  struct MappedColor {
    std::span<const uint64_t> words;
    std::span<const Vertex> members;
  };

  // Adopts CSR + colour columns living inside `storage` (a memory-mapped
  // .fog file) zero-copy. The fog loader validates every column first.
  static Graph FromMappedCsr(int32_t order, std::span<const uint64_t> offsets,
                             std::span<const Vertex> neighbors,
                             Vocabulary vocabulary,
                             std::vector<MappedColor> colors,
                             std::shared_ptr<const GraphStorage> storage);

  // Number of vertices |V(G)| (paper: the "order" of G).
  int order() const { return order_; }

  // Number of undirected edges.
  int64_t EdgeCount() const { return edge_count_; }

  // True once the adjacency lives in the packed CSR columns (and every
  // colour's member array is current). Mutations clear it; Finalize()
  // restores it.
  bool finalized() const { return finalized_ && dirty_colors_ == 0; }

  // Packs build-mode adjacency into the CSR columns and (re)builds member
  // arrays for any colour touched since the last call. Idempotent; cheap
  // when only colours changed.
  void Finalize();

  // Appends a fresh isolated vertex and returns it.
  Vertex AddVertex();

  // Appends `count` fresh isolated vertices; returns the first one.
  Vertex AddVertices(int count);

  // Inserts the undirected edge {u, v}. Requires u ≠ v. Idempotent.
  void AddEdge(Vertex u, Vertex v);

  // Removes the undirected edge {u, v} if present.
  void RemoveEdge(Vertex u, Vertex v);

  // Removes all edges incident to v (v stays in the graph, isolated).
  void IsolateVertex(Vertex v);

  bool HasEdge(Vertex u, Vertex v) const;

  // Sorted neighbour list of v: a CSR row slice (finalized) or the
  // build-mode vector (otherwise). The span is valid until the next
  // mutation of this graph.
  std::span<const Vertex> Neighbors(Vertex v) const {
    CheckVertex(v);
    if (finalized_) {
      const uint64_t begin = offsets_[v];
      return {neighbors_.data() + begin,
              static_cast<size_t>(offsets_[v + 1] - begin)};
    }
    return {dyn_adjacency_[v].data(), dyn_adjacency_[v].size()};
  }

  int Degree(Vertex v) const {
    return static_cast<int>(Neighbors(v).size());
  }

  int MaxDegree() const;

  // Raw CSR columns (finalized graphs only): offsets has order()+1
  // entries; neighbors holds 2·EdgeCount() vertex ids.
  std::span<const uint64_t> CsrOffsets() const {
    FOLEARN_CHECK(finalized_) << "CSR columns require Finalize()";
    return offsets_;
  }
  std::span<const Vertex> CsrNeighbors() const {
    FOLEARN_CHECK(finalized_) << "CSR columns require Finalize()";
    return neighbors_;
  }

  // --- Colours -------------------------------------------------------------

  const Vocabulary& vocabulary() const { return vocabulary_; }

  // Declares a new colour in this graph's vocabulary (a colour expansion;
  // all vertices start outside the new colour).
  ColorId AddColor(std::string name);

  std::optional<ColorId> FindColor(std::string_view name) const {
    return vocabulary_.FindColor(name);
  }

  void SetColor(Vertex v, ColorId color, bool member = true);

  bool HasColor(Vertex v, ColorId color) const {
    CheckVertex(v);
    CheckColor(color);
    return (colors_[color].words[static_cast<uint32_t>(v) >> 6] >>
            (v & 63)) &
           1;
  }

  // All vertices carrying `color`, in increasing order. Served from the
  // member column when current, otherwise by scanning the bitset.
  std::vector<Vertex> VerticesWithColor(ColorId color) const;

  // The sorted member column of `color` — zero-copy, valid until the next
  // mutation. Requires a finalized graph (Finalize() refreshes stale
  // member arrays).
  std::span<const Vertex> ColorMembers(ColorId color) const {
    CheckColor(color);
    FOLEARN_CHECK(colors_[color].members_clean)
        << "colour member column stale; call Finalize() first";
    return colors_[color].members;
  }

  // Raw membership bitset of `color`: WordsPerColor() little-endian words,
  // bit v of word v/64 set iff v ∈ P_c(G); bits at and above order() are
  // zero. For hot inner loops (the bytecode VM's word-parallel quantifier
  // bodies); everything else should go through HasColor.
  std::span<const uint64_t> ColorWords(ColorId color) const {
    CheckColor(color);
    return colors_[color].words;
  }

  int WordsPerColor() const { return WordCount(order_); }

  static int WordCount(int32_t order) {
    return static_cast<int>((static_cast<uint32_t>(order) + 63) / 64);
  }

  bool IsValidVertex(Vertex v) const { return v >= 0 && v < order_; }

 private:
  struct ColorClass {
    // Views: into the owned vectors below, or into mapping_'s bytes.
    std::span<const uint64_t> words;
    std::span<const Vertex> members;
    std::vector<uint64_t> owned_words;
    std::vector<Vertex> owned_members;
    // False after a SetColor until Finalize() rebuilds `members`.
    bool members_clean = true;
  };

  void CheckVertex(Vertex v) const {
    FOLEARN_CHECK(IsValidVertex(v)) << "vertex " << v << " out of range [0,"
                                    << order_ << ")";
  }
  void CheckColor(ColorId color) const {
    FOLEARN_CHECK_GE(color, 0);
    FOLEARN_CHECK_LT(color, vocabulary_.size());
  }

  // Copies mapped/viewed columns into owned vectors (no-op when already
  // owned) so they can be mutated; drops the storage handle.
  void EnsureOwnedColor(ColorId color);
  // Leaves finalized mode: materialises per-vertex adjacency vectors from
  // the CSR columns and unshares every mapped colour column.
  void Unpack();
  // Re-points the view spans at this object's own vectors where the
  // source's views pointed at *its* own vectors (copy/move support).
  void RebindViews(const Graph& source);
  void Reset();

  Vocabulary vocabulary_;
  int32_t order_ = 0;
  int64_t edge_count_ = 0;
  bool finalized_ = false;
  int dirty_colors_ = 0;  // colours whose member column is stale

  // Finalized storage (views into the owned vectors or into mapping_).
  std::span<const uint64_t> offsets_;
  std::span<const Vertex> neighbors_;
  std::vector<uint64_t> owned_offsets_;
  std::vector<Vertex> owned_neighbors_;
  std::shared_ptr<const GraphStorage> mapping_;

  // Build-mode storage (empty once finalized).
  std::vector<std::vector<Vertex>> dyn_adjacency_;

  std::vector<ColorClass> colors_;
};

}  // namespace folearn

#endif  // FOLEARN_GRAPH_GRAPH_H_
