#ifndef FOLEARN_GRAPH_GRAPH_H_
#define FOLEARN_GRAPH_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace folearn {

// A vertex is an index into the graph's vertex set.
using Vertex = int32_t;
inline constexpr Vertex kNoVertex = -1;

// A colour (unary relation symbol) identifier within a Vocabulary.
using ColorId = int32_t;

// The vocabulary τ of a coloured graph: the binary edge relation E is
// implicit, and τ additionally carries a finite list of named unary colour
// predicates P_1, …, P_ℓ (paper §2, "τ-coloured graph").
//
// Colour identifiers are dense indices in declaration order, so a vocabulary
// expansion (paper: "τ′-expansion") simply appends colours and preserves all
// existing ids.
class Vocabulary {
 public:
  Vocabulary() = default;

  // Declares a new colour. The name must be distinct from existing colours.
  ColorId AddColor(std::string name);

  // Returns the id of `name` if declared.
  std::optional<ColorId> FindColor(std::string_view name) const;

  const std::string& Name(ColorId color) const {
    FOLEARN_CHECK_GE(color, 0);
    FOLEARN_CHECK_LT(static_cast<size_t>(color), names_.size());
    return names_[color];
  }

  int size() const { return static_cast<int>(names_.size()); }

  const std::vector<std::string>& names() const { return names_; }

  bool operator==(const Vocabulary& other) const {
    return names_ == other.names_;
  }

  // True iff this vocabulary is a prefix (sub-vocabulary with identical ids)
  // of `other`, i.e. `other` is an expansion of this one.
  bool IsPrefixOf(const Vocabulary& other) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ColorId> index_;
};

// An undirected, simple, vertex-coloured graph G = (V, E, P_1, …, P_ℓ)
// (paper §2). The edge relation is kept symmetric and irreflexive by
// construction; adjacency lists are kept sorted so HasEdge is a binary
// search and iteration order is deterministic.
class Graph {
 public:
  // Creates a graph with `order` isolated vertices over `vocabulary`.
  explicit Graph(int order = 0, Vocabulary vocabulary = Vocabulary());

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // Number of vertices |V(G)| (paper: the "order" of G).
  int order() const { return static_cast<int>(adjacency_.size()); }

  // Number of undirected edges.
  int64_t EdgeCount() const { return edge_count_; }

  // Appends a fresh isolated vertex and returns it.
  Vertex AddVertex();

  // Appends `count` fresh isolated vertices; returns the first one.
  Vertex AddVertices(int count);

  // Inserts the undirected edge {u, v}. Requires u ≠ v. Idempotent.
  void AddEdge(Vertex u, Vertex v);

  // Removes the undirected edge {u, v} if present.
  void RemoveEdge(Vertex u, Vertex v);

  // Removes all edges incident to v (v stays in the graph, isolated).
  void IsolateVertex(Vertex v);

  bool HasEdge(Vertex u, Vertex v) const;

  // Sorted neighbour list of v.
  const std::vector<Vertex>& Neighbors(Vertex v) const {
    CheckVertex(v);
    return adjacency_[v];
  }

  int Degree(Vertex v) const {
    return static_cast<int>(Neighbors(v).size());
  }

  int MaxDegree() const;

  // --- Colours -------------------------------------------------------------

  const Vocabulary& vocabulary() const { return vocabulary_; }

  // Declares a new colour in this graph's vocabulary (a colour expansion;
  // all vertices start outside the new colour).
  ColorId AddColor(std::string name);

  std::optional<ColorId> FindColor(std::string_view name) const {
    return vocabulary_.FindColor(name);
  }

  void SetColor(Vertex v, ColorId color, bool member = true);

  bool HasColor(Vertex v, ColorId color) const {
    CheckVertex(v);
    FOLEARN_CHECK_GE(color, 0);
    FOLEARN_CHECK_LT(color, vocabulary_.size());
    return color_members_[color][v];
  }

  // All vertices carrying `color`, in increasing order.
  std::vector<Vertex> VerticesWithColor(ColorId color) const;

  // Raw membership bitmap of `color`, indexed by vertex (size order()).
  // For hot inner loops that validate their vertices once up front and
  // then want unchecked O(1) membership tests (the bytecode VM's atom
  // runs); everything else should go through HasColor.
  const std::vector<bool>& ColorBitmap(ColorId color) const {
    FOLEARN_CHECK_GE(color, 0);
    FOLEARN_CHECK_LT(color, vocabulary_.size());
    return color_members_[color];
  }

  bool IsValidVertex(Vertex v) const { return v >= 0 && v < order(); }

 private:
  void CheckVertex(Vertex v) const {
    FOLEARN_CHECK(IsValidVertex(v)) << "vertex " << v << " out of range [0,"
                                    << order() << ")";
  }

  Vocabulary vocabulary_;
  std::vector<std::vector<Vertex>> adjacency_;
  // color_members_[c][v] == true iff v ∈ P_c(G).
  std::vector<std::vector<bool>> color_members_;
  int64_t edge_count_ = 0;
};

}  // namespace folearn

#endif  // FOLEARN_GRAPH_GRAPH_H_
