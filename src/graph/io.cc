#include "graph/io.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "util/checkpoint.h"
#include "util/strings.h"

namespace folearn {

std::string ToText(const Graph& graph) {
  std::ostringstream out;
  out << "graph " << graph.order() << "\n";
  if (graph.vocabulary().size() > 0) {
    out << "colors";
    for (const std::string& name : graph.vocabulary().names()) {
      out << ' ' << name;
    }
    out << "\n";
  }
  for (ColorId c = 0; c < graph.vocabulary().size(); ++c) {
    std::vector<Vertex> members = graph.VerticesWithColor(c);
    if (members.empty()) continue;
    out << "color " << graph.vocabulary().Name(c);
    for (Vertex v : members) out << ' ' << v;
    out << "\n";
  }
  for (Vertex u = 0; u < graph.order(); ++u) {
    for (Vertex v : graph.Neighbors(u)) {
      if (v > u) out << "edge " << u << ' ' << v << "\n";
    }
  }
  return out.str();
}

namespace {
bool ParseInt(const std::string& token, int* out) {
  if (token.empty()) return false;
  size_t pos = 0;
  int64_t value = 0;
  bool negative = false;
  if (token[pos] == '-') {
    negative = true;
    ++pos;
  }
  if (pos >= token.size()) return false;
  for (; pos < token.size(); ++pos) {
    if (token[pos] < '0' || token[pos] > '9') return false;
    value = value * 10 + (token[pos] - '0');
    // Reject overflow instead of wrapping: a vertex id beyond the 32-bit
    // range is malformed input, not UB.
    if (value > std::numeric_limits<int32_t>::max()) return false;
  }
  *out = static_cast<int>(negative ? -value : value);
  return true;
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}
}  // namespace

std::optional<Graph> FromText(std::string_view text, std::string* error) {
  std::optional<Graph> graph;
  int line_number = 0;  // 1-based; prefixed to every parse error
  auto fail = [&](const std::string& message) -> std::optional<Graph> {
    Fail(error, "line " + std::to_string(line_number) + ": " + message);
    return std::nullopt;
  };
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string line(StripWhitespace(raw_line));
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tokens = Split(line, ' ');
    tokens.erase(std::remove(tokens.begin(), tokens.end(), std::string()),
                 tokens.end());
    const std::string& keyword = tokens[0];
    if (keyword == "graph") {
      if (graph.has_value()) return fail("duplicate 'graph' line");
      int order = 0;
      if (tokens.size() != 2 || !ParseInt(tokens[1], &order) || order < 0) {
        return fail("malformed 'graph' line: " + line);
      }
      if (static_cast<int64_t>(order) > kMaxGraphOrder) {
        return fail("order exceeds the 32-bit id limit");
      }
      graph.emplace(order);
    } else if (!graph.has_value()) {
      return fail("'graph <order>' must come first");
    } else if (keyword == "colors") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        if (graph->FindColor(tokens[i]).has_value()) {
          return fail("duplicate colour: " + tokens[i]);
        }
        graph->AddColor(tokens[i]);
      }
    } else if (keyword == "color") {
      if (tokens.size() < 2) return fail("malformed 'color' line: " + line);
      std::optional<ColorId> id = graph->FindColor(tokens[1]);
      if (!id.has_value()) id = graph->AddColor(tokens[1]);
      for (size_t i = 2; i < tokens.size(); ++i) {
        int v = 0;
        if (!ParseInt(tokens[i], &v) || !graph->IsValidVertex(v)) {
          return fail("bad vertex in 'color' line: " + line);
        }
        graph->SetColor(v, *id);
      }
    } else if (keyword == "edge") {
      int u = 0;
      int v = 0;
      if (tokens.size() != 3 || !ParseInt(tokens[1], &u) ||
          !ParseInt(tokens[2], &v) || !graph->IsValidVertex(u) ||
          !graph->IsValidVertex(v) || u == v) {
        return fail("malformed 'edge' line: " + line);
      }
      graph->AddEdge(u, v);
    } else {
      return fail("unknown keyword: " + keyword);
    }
  }
  if (!graph.has_value()) {
    Fail(error, "empty input");
  } else {
    // Loaders hand out finalized (CSR-packed) graphs.
    graph->Finalize();
  }
  return graph;
}

StatusOr<Graph> ParseGraph(std::string_view text) {
  std::string error;
  std::optional<Graph> graph = FromText(text, &error);
  if (!graph.has_value()) return InvalidArgumentError(error);
  return *std::move(graph);
}

StatusOr<Graph> LoadGraphFile(const std::string& path) {
  StatusOr<std::string> text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  StatusOr<Graph> graph = ParseGraph(*text);
  if (!graph.ok()) {
    return Status(graph.status().code(),
                  path + ": " + graph.status().message());
  }
  return graph;
}

std::string ToDot(const Graph& graph, std::string_view name) {
  std::ostringstream out;
  out << "graph " << name << " {\n";
  for (Vertex v = 0; v < graph.order(); ++v) {
    std::vector<std::string> colours;
    for (ColorId c = 0; c < graph.vocabulary().size(); ++c) {
      if (graph.HasColor(v, c)) colours.push_back(graph.vocabulary().Name(c));
    }
    out << "  v" << v << " [label=\"" << v;
    if (!colours.empty()) out << ":" << Join(colours, ",");
    out << "\"];\n";
  }
  for (Vertex u = 0; u < graph.order(); ++u) {
    for (Vertex v : graph.Neighbors(u)) {
      if (v > u) out << "  v" << u << " -- v" << v << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace folearn
