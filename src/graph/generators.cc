#include "graph/generators.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <utility>

namespace folearn {

Graph MakePath(int n) {
  FOLEARN_CHECK_GE(n, 0);
  Graph graph(n);
  for (Vertex v = 0; v + 1 < n; ++v) graph.AddEdge(v, v + 1);
  return graph;
}

Graph MakeCycle(int n) {
  FOLEARN_CHECK_GE(n, 3);
  Graph graph = MakePath(n);
  graph.AddEdge(n - 1, 0);
  return graph;
}

Graph MakeGrid(int width, int height) {
  FOLEARN_CHECK_GE(width, 1);
  FOLEARN_CHECK_GE(height, 1);
  Graph graph(width * height);
  auto id = [width](int x, int y) { return x + y * width; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (x + 1 < width) graph.AddEdge(id(x, y), id(x + 1, y));
      if (y + 1 < height) graph.AddEdge(id(x, y), id(x, y + 1));
    }
  }
  return graph;
}

Graph MakeComplete(int n) {
  FOLEARN_CHECK_GE(n, 0);
  Graph graph(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) graph.AddEdge(u, v);
  }
  return graph;
}

Graph MakeCompleteBipartite(int a, int b) {
  FOLEARN_CHECK_GE(a, 0);
  FOLEARN_CHECK_GE(b, 0);
  Graph graph(a + b);
  for (Vertex u = 0; u < a; ++u) {
    for (Vertex v = a; v < a + b; ++v) graph.AddEdge(u, v);
  }
  return graph;
}

Graph MakeStar(int leaves) {
  FOLEARN_CHECK_GE(leaves, 0);
  Graph graph(leaves + 1);
  for (Vertex v = 1; v <= leaves; ++v) graph.AddEdge(0, v);
  return graph;
}

Graph MakeCaterpillar(int spine, int legs) {
  FOLEARN_CHECK_GE(spine, 1);
  FOLEARN_CHECK_GE(legs, 0);
  Graph graph(spine + spine * legs);
  for (Vertex v = 0; v + 1 < spine; ++v) graph.AddEdge(v, v + 1);
  Vertex next_leaf = spine;
  for (Vertex v = 0; v < spine; ++v) {
    for (int i = 0; i < legs; ++i) graph.AddEdge(v, next_leaf++);
  }
  return graph;
}

Graph MakeBinaryTree(int depth) {
  FOLEARN_CHECK_GE(depth, 0);
  int n = (1 << (depth + 1)) - 1;
  Graph graph(n);
  for (Vertex v = 1; v < n; ++v) graph.AddEdge(v, (v - 1) / 2);
  return graph;
}

Graph MakeRandomTree(int n, Rng& rng) {
  FOLEARN_CHECK_GE(n, 1);
  Graph graph(n);
  if (n == 1) return graph;
  if (n == 2) {
    graph.AddEdge(0, 1);
    return graph;
  }
  // Decode a uniform random Prüfer sequence of length n−2.
  std::vector<int> pruefer(n - 2);
  for (int& entry : pruefer) {
    entry = static_cast<int>(rng.UniformIndex(n));
  }
  std::vector<int> degree(n, 1);
  for (int entry : pruefer) ++degree[entry];
  // Min-leaf decoding via a pointer sweep.
  std::vector<bool> used(n, false);
  int ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  int leaf = ptr;
  for (int entry : pruefer) {
    graph.AddEdge(leaf, entry);
    if (--degree[entry] == 1 && entry < ptr) {
      leaf = entry;
    } else {
      ++ptr;
      while (degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  graph.AddEdge(leaf, n - 1);
  return graph;
}

Graph MakeErdosRenyi(int n, double p, Rng& rng) {
  FOLEARN_CHECK_GE(n, 0);
  FOLEARN_CHECK(p >= 0.0 && p <= 1.0);
  Graph graph(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (rng.Bernoulli(p)) graph.AddEdge(u, v);
    }
  }
  return graph;
}

Graph MakeBoundedDegree(int n, int max_degree, int64_t target_edges,
                        Rng& rng) {
  FOLEARN_CHECK_GE(n, 2);
  FOLEARN_CHECK_GE(max_degree, 1);
  FOLEARN_CHECK_GE(target_edges, 0);
  Graph graph(n);
  int64_t attempts = 0;
  const int64_t max_attempts = 20 * std::max<int64_t>(target_edges, 1);
  while (graph.EdgeCount() < target_edges && attempts < max_attempts) {
    ++attempts;
    Vertex u = static_cast<Vertex>(rng.UniformIndex(n));
    Vertex v = static_cast<Vertex>(rng.UniformIndex(n));
    if (u == v || graph.HasEdge(u, v)) continue;
    if (graph.Degree(u) >= max_degree || graph.Degree(v) >= max_degree) {
      continue;
    }
    graph.AddEdge(u, v);
  }
  return graph;
}

Graph MakePreferentialAttachment(int n, int attach, Rng& rng) {
  FOLEARN_CHECK_GE(n, 1);
  FOLEARN_CHECK_GE(attach, 1);
  Graph graph(n);
  // Repeated-endpoint list: each vertex appears degree+1 times.
  std::vector<Vertex> endpoints;
  endpoints.push_back(0);
  for (Vertex v = 1; v < n; ++v) {
    int links = std::min<int>(attach, v);
    std::vector<Vertex> chosen;
    while (static_cast<int>(chosen.size()) < links) {
      Vertex target = endpoints[rng.UniformIndex(
          static_cast<int64_t>(endpoints.size()))];
      if (target == v) continue;
      if (std::find(chosen.begin(), chosen.end(), target) != chosen.end()) {
        continue;
      }
      chosen.push_back(target);
    }
    for (Vertex target : chosen) {
      graph.AddEdge(v, target);
      endpoints.push_back(target);
      endpoints.push_back(v);
    }
    endpoints.push_back(v);
  }
  return graph;
}

Graph MakeSubdividedComplete(int n) {
  FOLEARN_CHECK_GE(n, 1);
  Graph graph(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      Vertex middle = graph.AddVertex();
      graph.AddEdge(u, middle);
      graph.AddEdge(middle, v);
    }
  }
  return graph;
}

Graph MakeHypercube(int dimensions) {
  FOLEARN_CHECK_GE(dimensions, 0);
  FOLEARN_CHECK_LE(dimensions, 20);
  int n = 1 << dimensions;
  Graph graph(n);
  for (Vertex v = 0; v < n; ++v) {
    for (int bit = 0; bit < dimensions; ++bit) {
      Vertex u = v ^ (1 << bit);
      if (u > v) graph.AddEdge(v, u);
    }
  }
  return graph;
}

namespace {
// Canonical packed key of an undirected edge for duplicate detection.
uint64_t EdgeKey(Vertex u, Vertex v) {
  const auto lo = static_cast<uint64_t>(std::min(u, v));
  const auto hi = static_cast<uint64_t>(std::max(u, v));
  return (hi << 32) | lo;
}
}  // namespace

Graph MakeBoundedDegreeAtScale(int64_t n, int max_degree,
                               int64_t target_edges, Rng& rng) {
  FOLEARN_CHECK_GE(n, 2);
  FOLEARN_CHECK_GE(max_degree, 1);
  FOLEARN_CHECK_GE(target_edges, 0);
  const Vertex order = CheckedVertex(n);
  std::vector<int32_t> degree(n, 0);
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(2 * target_edges));
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(static_cast<size_t>(target_edges));
  int64_t attempts = 0;
  const int64_t max_attempts = 20 * std::max<int64_t>(target_edges, 1);
  while (static_cast<int64_t>(edges.size()) < target_edges &&
         attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<Vertex>(rng.UniformIndex(n));
    const auto v = static_cast<Vertex>(rng.UniformIndex(n));
    if (u == v) continue;
    if (degree[u] >= max_degree || degree[v] >= max_degree) continue;
    if (!seen.insert(EdgeKey(u, v)).second) continue;
    edges.emplace_back(u, v);
    ++degree[u];
    ++degree[v];
  }
  return Graph::FromEdges(order, edges);
}

Graph MakeGridAtScale(int64_t width, int64_t height) {
  FOLEARN_CHECK_GE(width, 1);
  FOLEARN_CHECK_GE(height, 1);
  const Vertex order = CheckedVertex(width * height);
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(static_cast<size_t>(2 * width * height));
  auto id = [width](int64_t x, int64_t y) {
    return static_cast<Vertex>(x + y * width);
  };
  for (int64_t y = 0; y < height; ++y) {
    for (int64_t x = 0; x < width; ++x) {
      if (x + 1 < width) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < height) edges.emplace_back(id(x, y), id(x, y + 1));
    }
  }
  return Graph::FromEdges(order, edges);
}

Graph MakePreferentialAttachmentAtScale(int64_t n, int attach, Rng& rng) {
  FOLEARN_CHECK_GE(n, 1);
  FOLEARN_CHECK_GE(attach, 1);
  const Vertex order = CheckedVertex(n);
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(static_cast<size_t>(attach) * static_cast<size_t>(n));
  // Repeated-endpoint list: each vertex appears degree+1 times.
  std::vector<Vertex> endpoints;
  endpoints.reserve(2 * static_cast<size_t>(attach) * static_cast<size_t>(n) +
                    static_cast<size_t>(n));
  endpoints.push_back(0);
  std::vector<Vertex> chosen;
  for (Vertex v = 1; v < order; ++v) {
    const int links = std::min<int>(attach, v);
    chosen.clear();
    while (static_cast<int>(chosen.size()) < links) {
      Vertex target = endpoints[rng.UniformIndex(
          static_cast<int64_t>(endpoints.size()))];
      if (target == v) continue;
      if (std::find(chosen.begin(), chosen.end(), target) != chosen.end()) {
        continue;
      }
      chosen.push_back(target);
    }
    for (Vertex target : chosen) {
      edges.emplace_back(v, target);
      endpoints.push_back(target);
      endpoints.push_back(v);
    }
    endpoints.push_back(v);
  }
  return Graph::FromEdges(order, edges);
}

std::vector<ColorId> AddRandomColors(Graph& graph,
                                     const std::vector<std::string>& names,
                                     double probability, Rng& rng) {
  std::vector<ColorId> ids;
  ids.reserve(names.size());
  for (const std::string& name : names) {
    ColorId id = graph.AddColor(name);
    ids.push_back(id);
    for (Vertex v = 0; v < graph.order(); ++v) {
      if (rng.Bernoulli(probability)) graph.SetColor(v, id);
    }
  }
  return ids;
}

ColorId AddPeriodicColor(Graph& graph, const std::string& name, int modulus,
                         int residue) {
  FOLEARN_CHECK_GT(modulus, 0);
  ColorId id = graph.AddColor(name);
  for (Vertex v = 0; v < graph.order(); ++v) {
    if (v % modulus == residue) graph.SetColor(v, id);
  }
  return id;
}

}  // namespace folearn
