#include "fo/printer.h"

#include <sstream>

#include "util/strings.h"

namespace folearn {

namespace {

// Precedence levels: higher binds tighter. Quantifiers bind weakest: their
// body extends maximally to the right (matching the parser), so they are
// parenthesised in any non-trailing position.
enum Precedence {
  kPrecQuantifier = 1,
  kPrecOr = 2,
  kPrecAnd = 3,
  kPrecUnary = 4,  // ¬
  kPrecAtom = 5,
};

void Render(const FormulaRef& f, int parent_precedence, std::ostream& out) {
  auto parenthesize = [&](int self_precedence, auto&& body) {
    bool need = self_precedence < parent_precedence;
    if (need) out << '(';
    body();
    if (need) out << ')';
  };
  switch (f->kind()) {
    case FormulaKind::kTrue:
      out << "true";
      return;
    case FormulaKind::kFalse:
      out << "false";
      return;
    case FormulaKind::kEdge:
      out << "E(" << f->var1() << ", " << f->var2() << ")";
      return;
    case FormulaKind::kColor:
      out << f->color_name() << "(" << f->var1() << ")";
      return;
    case FormulaKind::kEquals:
      parenthesize(kPrecAtom, [&] { out << f->var1() << " = " << f->var2(); });
      return;
    case FormulaKind::kNot:
      parenthesize(kPrecUnary, [&] {
        out << '!';
        Render(f->child(0), kPrecAtom, out);
      });
      return;
    case FormulaKind::kAnd:
      parenthesize(kPrecAnd, [&] {
        bool first = true;
        for (const FormulaRef& child : f->children()) {
          if (!first) out << " & ";
          Render(child, kPrecAnd + 1, out);
          first = false;
        }
      });
      return;
    case FormulaKind::kOr:
      parenthesize(kPrecOr, [&] {
        bool first = true;
        for (const FormulaRef& child : f->children()) {
          if (!first) out << " | ";
          Render(child, kPrecOr + 1, out);
          first = false;
        }
      });
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      parenthesize(kPrecQuantifier, [&] {
        out << (f->kind() == FormulaKind::kExists ? "exists " : "forall ")
            << f->quantified_var() << ". ";
        Render(f->child(0), kPrecQuantifier, out);
      });
      return;
    case FormulaKind::kCountExists:
      parenthesize(kPrecQuantifier, [&] {
        out << "exists>=" << f->threshold() << ' ' << f->quantified_var()
            << ". ";
        Render(f->child(0), kPrecQuantifier, out);
      });
      return;
    case FormulaKind::kSetMember:
      parenthesize(kPrecAtom,
                   [&] { out << f->var1() << " in " << f->set_name(); });
      return;
    case FormulaKind::kExistsSet:
    case FormulaKind::kForallSet:
      parenthesize(kPrecQuantifier, [&] {
        out << (f->kind() == FormulaKind::kExistsSet ? "existsset "
                                                     : "forallset ")
            << f->quantified_var() << ". ";
        Render(f->child(0), kPrecQuantifier, out);
      });
      return;
  }
}

}  // namespace

std::string ToString(const FormulaRef& formula) {
  FOLEARN_CHECK(formula != nullptr);
  std::ostringstream out;
  Render(formula, 0, out);
  return out.str();
}

std::string DescribeFormula(const FormulaRef& formula) {
  std::ostringstream out;
  out << "qrank=" << formula->quantifier_rank() << " free=["
      << Join(formula->free_variables(), ", ") << "] dag="
      << formula->DagSize();
  return out.str();
}

}  // namespace folearn
