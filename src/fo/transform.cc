#include "fo/transform.h"

#include <algorithm>

namespace folearn {

std::string FreshVariablePool::Fresh(const std::string& hint) {
  while (true) {
    std::string candidate = "_" + hint + std::to_string(++counter_);
    if (used_.insert(candidate).second) return candidate;
  }
}

std::set<std::string> CollectVariableNames(const FormulaRef& f) {
  std::set<std::string> names;
  std::vector<const Formula*> stack = {f.get()};
  while (!stack.empty()) {
    const Formula* node = stack.back();
    stack.pop_back();
    switch (node->kind()) {
      case FormulaKind::kEdge:
      case FormulaKind::kEquals:
        names.insert(node->var1());
        names.insert(node->var2());
        break;
      case FormulaKind::kColor:
      case FormulaKind::kSetMember:
        names.insert(node->var1());
        break;
      case FormulaKind::kExists:
      case FormulaKind::kForall:
      case FormulaKind::kCountExists:
        names.insert(node->quantified_var());
        break;
      default:
        break;
    }
    for (const FormulaRef& child : node->children()) {
      stack.push_back(child.get());
    }
  }
  return names;
}

namespace {

using Renaming = std::unordered_map<std::string, std::string>;

std::string Apply(const Renaming& renaming, const std::string& var) {
  auto it = renaming.find(var);
  return it == renaming.end() ? var : it->second;
}

// Recursive capture-avoiding renaming. `pool` supplies fresh names for
// alpha-renaming when a binder would capture a substituted target.
FormulaRef RenameRec(const FormulaRef& f, Renaming renaming,
                     FreshVariablePool& pool) {
  // Drop entries not free in f (both keeps the recursion cheap and makes the
  // capture check precise).
  for (auto it = renaming.begin(); it != renaming.end();) {
    if (!f->HasFreeVariable(it->first) || it->first == it->second) {
      it = renaming.erase(it);
    } else {
      ++it;
    }
  }
  if (renaming.empty()) return f;
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kEdge:
      return Formula::Edge(Apply(renaming, f->var1()),
                           Apply(renaming, f->var2()));
    case FormulaKind::kEquals:
      return Formula::Equals(Apply(renaming, f->var1()),
                             Apply(renaming, f->var2()));
    case FormulaKind::kColor:
      return Formula::Color(f->color_name(), Apply(renaming, f->var1()));
    case FormulaKind::kSetMember:
      return Formula::SetMember(Apply(renaming, f->var1()), f->set_name());
    case FormulaKind::kNot:
      return Formula::Not(RenameRec(f->child(0), renaming, pool));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaRef> children;
      children.reserve(f->children().size());
      for (const FormulaRef& child : f->children()) {
        children.push_back(RenameRec(child, renaming, pool));
      }
      return f->kind() == FormulaKind::kAnd
                 ? Formula::And(std::move(children))
                 : Formula::Or(std::move(children));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kCountExists: {
      std::string bound = f->quantified_var();
      FormulaRef body = f->child(0);
      renaming.erase(bound);  // bound occurrences are not renamed
      // Capture check: if some target name equals the binder, alpha-rename.
      bool captures = false;
      for (const auto& [from, to] : renaming) {
        if (to == bound && body->HasFreeVariable(from)) {
          captures = true;
          break;
        }
      }
      if (captures) {
        std::string fresh = pool.Fresh(bound);
        Renaming alpha = {{bound, fresh}};
        body = RenameRec(body, alpha, pool);
        bound = fresh;
      }
      body = RenameRec(body, renaming, pool);
      if (f->kind() == FormulaKind::kCountExists) {
        return Formula::CountExists(f->threshold(), std::move(bound),
                                    std::move(body));
      }
      return f->kind() == FormulaKind::kExists
                 ? Formula::Exists(std::move(bound), std::move(body))
                 : Formula::Forall(std::move(bound), std::move(body));
    }
    case FormulaKind::kExistsSet:
    case FormulaKind::kForallSet: {
      // Set binders live in a separate namespace: element renaming passes
      // straight through.
      FormulaRef body = RenameRec(f->child(0), renaming, pool);
      return f->kind() == FormulaKind::kExistsSet
                 ? Formula::ExistsSet(f->quantified_var(), std::move(body))
                 : Formula::ForallSet(f->quantified_var(), std::move(body));
    }
  }
  FOLEARN_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace

FormulaRef RenameFreeVariables(const FormulaRef& f, const Renaming& renaming) {
  std::set<std::string> used = CollectVariableNames(f);
  for (const auto& [from, to] : renaming) {
    used.insert(from);
    used.insert(to);
  }
  FreshVariablePool pool(std::move(used));
  return RenameRec(f, renaming, pool);
}

namespace {

FormulaRef AvoidRec(const FormulaRef& f, const std::set<std::string>& avoid,
                    FreshVariablePool& pool) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEdge:
    case FormulaKind::kEquals:
    case FormulaKind::kColor:
    case FormulaKind::kSetMember:
      return f;
    case FormulaKind::kNot:
      return Formula::Not(AvoidRec(f->child(0), avoid, pool));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaRef> children;
      for (const FormulaRef& child : f->children()) {
        children.push_back(AvoidRec(child, avoid, pool));
      }
      return f->kind() == FormulaKind::kAnd
                 ? Formula::And(std::move(children))
                 : Formula::Or(std::move(children));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kCountExists: {
      std::string bound = f->quantified_var();
      FormulaRef body = AvoidRec(f->child(0), avoid, pool);
      if (avoid.count(bound) > 0) {
        std::string fresh = pool.Fresh(bound);
        body = RenameFreeVariables(body, {{bound, fresh}});
        bound = fresh;
      }
      if (f->kind() == FormulaKind::kCountExists) {
        return Formula::CountExists(f->threshold(), std::move(bound),
                                    std::move(body));
      }
      return f->kind() == FormulaKind::kExists
                 ? Formula::Exists(std::move(bound), std::move(body))
                 : Formula::Forall(std::move(bound), std::move(body));
    }
    case FormulaKind::kExistsSet:
    case FormulaKind::kForallSet: {
      FormulaRef body = AvoidRec(f->child(0), avoid, pool);
      return f->kind() == FormulaKind::kExistsSet
                 ? Formula::ExistsSet(f->quantified_var(), std::move(body))
                 : Formula::ForallSet(f->quantified_var(), std::move(body));
    }
  }
  FOLEARN_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace

FormulaRef AvoidBoundVariables(const FormulaRef& f,
                               const std::set<std::string>& avoid) {
  std::set<std::string> used = CollectVariableNames(f);
  used.insert(avoid.begin(), avoid.end());
  FreshVariablePool pool(std::move(used));
  return AvoidRec(f, avoid, pool);
}

namespace {

FormulaRef EliminateRec(
    const FormulaRef& f, const std::string& var, const std::string& pt_color,
    const std::string& qt_color,
    const std::function<bool(const std::string&)>& color_truth) {
  if (!f->HasFreeVariable(var)) return f;
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kEquals:
      // var = var never survives construction (folded to true).
      if (f->var1() == var) return Formula::Color(pt_color, f->var2());
      if (f->var2() == var) return Formula::Color(pt_color, f->var1());
      return f;
    case FormulaKind::kEdge:
      if (f->var1() == var) return Formula::Color(qt_color, f->var2());
      if (f->var2() == var) return Formula::Color(qt_color, f->var1());
      return f;
    case FormulaKind::kColor:
      if (f->var1() == var) {
        return color_truth(f->color_name()) ? Formula::True()
                                            : Formula::False();
      }
      return f;
    case FormulaKind::kSetMember:
      FOLEARN_CHECK_NE(f->var1(), var)
          << "variable elimination does not support MSO membership atoms "
             "on the eliminated variable";
      return f;
    case FormulaKind::kNot:
      return Formula::Not(
          EliminateRec(f->child(0), var, pt_color, qt_color, color_truth));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaRef> children;
      for (const FormulaRef& child : f->children()) {
        children.push_back(
            EliminateRec(child, var, pt_color, qt_color, color_truth));
      }
      return f->kind() == FormulaKind::kAnd
                 ? Formula::And(std::move(children))
                 : Formula::Or(std::move(children));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kCountExists: {
      // HasFreeVariable(var) ruled out shadowing: the binder differs.
      FormulaRef body =
          EliminateRec(f->child(0), var, pt_color, qt_color, color_truth);
      if (f->kind() == FormulaKind::kCountExists) {
        return Formula::CountExists(f->threshold(), f->quantified_var(),
                                    std::move(body));
      }
      return f->kind() == FormulaKind::kExists
                 ? Formula::Exists(f->quantified_var(), std::move(body))
                 : Formula::Forall(f->quantified_var(), std::move(body));
    }
    case FormulaKind::kExistsSet:
    case FormulaKind::kForallSet: {
      FormulaRef body =
          EliminateRec(f->child(0), var, pt_color, qt_color, color_truth);
      return f->kind() == FormulaKind::kExistsSet
                 ? Formula::ExistsSet(f->quantified_var(), std::move(body))
                 : Formula::ForallSet(f->quantified_var(), std::move(body));
    }
  }
  FOLEARN_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace

FormulaRef EliminateVariableViaColors(
    const FormulaRef& f, const std::string& var, const std::string& pt_color,
    const std::string& qt_color,
    const std::function<bool(const std::string&)>& color_truth) {
  return EliminateRec(f, var, pt_color, qt_color, color_truth);
}

FormulaRef ReplaceColorsWithFalse(const FormulaRef& f,
                                  const std::set<std::string>& colors) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEdge:
    case FormulaKind::kEquals:
      return f;
    case FormulaKind::kColor:
      return colors.count(f->color_name()) > 0 ? Formula::False() : f;
    case FormulaKind::kNot:
      return Formula::Not(ReplaceColorsWithFalse(f->child(0), colors));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaRef> children;
      for (const FormulaRef& child : f->children()) {
        children.push_back(ReplaceColorsWithFalse(child, colors));
      }
      return f->kind() == FormulaKind::kAnd
                 ? Formula::And(std::move(children))
                 : Formula::Or(std::move(children));
    }
    case FormulaKind::kExists:
      return Formula::Exists(f->quantified_var(),
                             ReplaceColorsWithFalse(f->child(0), colors));
    case FormulaKind::kForall:
      return Formula::Forall(f->quantified_var(),
                             ReplaceColorsWithFalse(f->child(0), colors));
    case FormulaKind::kCountExists:
      return Formula::CountExists(
          f->threshold(), f->quantified_var(),
          ReplaceColorsWithFalse(f->child(0), colors));
    case FormulaKind::kSetMember:
      return f;
    case FormulaKind::kExistsSet:
      return Formula::ExistsSet(f->quantified_var(),
                                ReplaceColorsWithFalse(f->child(0), colors));
    case FormulaKind::kForallSet:
      return Formula::ForallSet(f->quantified_var(),
                                ReplaceColorsWithFalse(f->child(0), colors));
  }
  FOLEARN_CHECK(false) << "unreachable";
  return nullptr;
}

FormulaRef DistAtMost(const std::string& x, const std::string& y, int d,
                      FreshVariablePool& pool) {
  FOLEARN_CHECK_GE(d, 0);
  if (d == 0) return Formula::Equals(x, y);
  if (d == 1) return Formula::Or(Formula::Equals(x, y), Formula::Edge(x, y));
  int first_half = (d + 1) / 2;
  int second_half = d - first_half;
  std::string mid = pool.Fresh("m");
  return Formula::Exists(
      mid, Formula::And(DistAtMost(x, mid, first_half, pool),
                        DistAtMost(mid, y, second_half, pool)));
}

FormulaRef DistToTupleAtMost(const std::string& y,
                             const std::vector<std::string>& centers, int d,
                             FreshVariablePool& pool) {
  std::vector<FormulaRef> parts;
  parts.reserve(centers.size());
  for (const std::string& center : centers) {
    parts.push_back(DistAtMost(center, y, d, pool));
  }
  return Formula::Or(std::move(parts));
}

namespace {

FormulaRef RelativizeRec(const FormulaRef& f,
                         const std::vector<std::string>& centers, int r,
                         FreshVariablePool& pool) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEdge:
    case FormulaKind::kEquals:
    case FormulaKind::kColor:
      return f;
    case FormulaKind::kNot:
      return Formula::Not(RelativizeRec(f->child(0), centers, r, pool));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaRef> children;
      for (const FormulaRef& child : f->children()) {
        children.push_back(RelativizeRec(child, centers, r, pool));
      }
      return f->kind() == FormulaKind::kAnd
                 ? Formula::And(std::move(children))
                 : Formula::Or(std::move(children));
    }
    case FormulaKind::kExists: {
      FormulaRef body = RelativizeRec(f->child(0), centers, r, pool);
      FormulaRef guard = DistToTupleAtMost(f->quantified_var(), centers, r,
                                           pool);
      return Formula::Exists(f->quantified_var(),
                             Formula::And(std::move(guard), std::move(body)));
    }
    case FormulaKind::kForall: {
      FormulaRef body = RelativizeRec(f->child(0), centers, r, pool);
      FormulaRef guard = DistToTupleAtMost(f->quantified_var(), centers, r,
                                           pool);
      return Formula::Forall(
          f->quantified_var(),
          Formula::Implies(std::move(guard), std::move(body)));
    }
    case FormulaKind::kCountExists: {
      FormulaRef body = RelativizeRec(f->child(0), centers, r, pool);
      FormulaRef guard = DistToTupleAtMost(f->quantified_var(), centers, r,
                                           pool);
      return Formula::CountExists(
          f->threshold(), f->quantified_var(),
          Formula::And(std::move(guard), std::move(body)));
    }
    case FormulaKind::kSetMember:
      return f;
    case FormulaKind::kExistsSet:
      return Formula::ExistsSet(f->quantified_var(),
                                RelativizeRec(f->child(0), centers, r, pool));
    case FormulaKind::kForallSet:
      return Formula::ForallSet(f->quantified_var(),
                                RelativizeRec(f->child(0), centers, r, pool));
  }
  FOLEARN_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace

FormulaRef RelativizeToBall(const FormulaRef& f,
                            const std::vector<std::string>& centers, int r) {
  FOLEARN_CHECK_GE(r, 0);
  FOLEARN_CHECK(!centers.empty());
  std::set<std::string> center_set(centers.begin(), centers.end());
  FormulaRef clean = AvoidBoundVariables(f, center_set);
  std::set<std::string> used = CollectVariableNames(clean);
  used.insert(center_set.begin(), center_set.end());
  FreshVariablePool pool(std::move(used));
  return RelativizeRec(clean, centers, r, pool);
}

}  // namespace folearn
