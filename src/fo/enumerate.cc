#include "fo/enumerate.h"

#include <set>

#include "fo/printer.h"

namespace folearn {

namespace {

// Collects `f` into `out` if unseen; returns false once the cap is hit.
class Sink {
 public:
  Sink(std::vector<FormulaRef>* out, int max_count)
      : out_(out), max_count_(max_count) {}

  bool Add(FormulaRef f) {
    if (Full()) return false;
    std::string key = ToString(f);
    if (seen_.insert(std::move(key)).second) {
      out_->push_back(std::move(f));
    }
    return !Full();
  }

  bool Full() const {
    return static_cast<int>(out_->size()) >= max_count_;
  }

 private:
  std::vector<FormulaRef>* out_;
  int max_count_;
  std::set<std::string> seen_;
};

// All atoms over `variables` and `colors`.
std::vector<FormulaRef> Atoms(const std::vector<std::string>& variables,
                              const std::vector<std::string>& colors) {
  std::vector<FormulaRef> atoms = {Formula::True(), Formula::False()};
  for (size_t i = 0; i < variables.size(); ++i) {
    for (const std::string& color : colors) {
      atoms.push_back(Formula::Color(color, variables[i]));
    }
    for (size_t j = i + 1; j < variables.size(); ++j) {
      atoms.push_back(Formula::Equals(variables[i], variables[j]));
      atoms.push_back(Formula::Edge(variables[i], variables[j]));
    }
  }
  return atoms;
}

// One stratum of formulas with quantifier rank ≤ q over `variables`.
// Produces: base (atoms + quantified lower stratum), then boolean closure to
// `boolean_depth`.
std::vector<FormulaRef> Stratum(const std::vector<std::string>& variables,
                                const EnumerationOptions& options, int q,
                                Sink& sink) {
  std::vector<FormulaRef> base = Atoms(variables, options.colors);
  if (q > 0) {
    std::string fresh = "z" + std::to_string(q);
    std::vector<std::string> extended = variables;
    extended.push_back(fresh);
    std::vector<FormulaRef> inner =
        Stratum(extended, options, q - 1, sink);
    for (const FormulaRef& f : inner) {
      base.push_back(Formula::Exists(fresh, f));
      base.push_back(Formula::Forall(fresh, f));
    }
  }
  if (options.include_negations) {
    size_t original = base.size();
    for (size_t i = 0; i < original; ++i) {
      base.push_back(Formula::Not(base[i]));
    }
  }
  // Boolean closure, one depth level at a time.
  std::vector<FormulaRef> all = base;
  std::vector<FormulaRef> frontier = base;
  for (int depth = 0; depth < options.max_boolean_depth; ++depth) {
    std::vector<FormulaRef> next;
    for (const FormulaRef& f : frontier) {
      for (const FormulaRef& g : base) {
        next.push_back(Formula::And(f, g));
        next.push_back(Formula::Or(f, g));
        if (static_cast<int>(all.size() + next.size()) >
            4 * options.max_count) {
          break;  // keep intermediate blow-up bounded
        }
      }
    }
    all.insert(all.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  // Feed what we generated to the sink at the top level only (q == rank we
  // were asked for); recursion just returns the raw list.
  (void)sink;
  return all;
}

}  // namespace

std::vector<FormulaRef> EnumerateFormulas(const EnumerationOptions& options) {
  std::vector<FormulaRef> result;
  Sink sink(&result, options.max_count);
  for (int q = 0; q <= options.max_quantifier_rank && !sink.Full(); ++q) {
    std::vector<FormulaRef> stratum =
        Stratum(options.free_variables, options, q, sink);
    for (FormulaRef& f : stratum) {
      if (!sink.Add(std::move(f))) break;
    }
  }
  return result;
}

}  // namespace folearn
