#ifndef FOLEARN_FO_TRANSFORM_H_
#define FOLEARN_FO_TRANSFORM_H_

#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "fo/formula.h"

namespace folearn {

// Allocates variable names that avoid a set of used names. Fresh names look
// like "_v1", "_v2", …; every allocated name is added to the used set.
class FreshVariablePool {
 public:
  FreshVariablePool() = default;
  explicit FreshVariablePool(std::set<std::string> used)
      : used_(std::move(used)) {}

  // Marks `name` as used.
  void Reserve(const std::string& name) { used_.insert(name); }

  // Returns a fresh name, optionally derived from `hint`.
  std::string Fresh(const std::string& hint = "v");

 private:
  std::set<std::string> used_;
  int counter_ = 0;
};

// All variable names occurring in `f` (free, bound, and inside atoms).
std::set<std::string> CollectVariableNames(const FormulaRef& f);

// Capture-avoiding simultaneous renaming of free variables. Bound variables
// that would capture a substituted name are alpha-renamed.
FormulaRef RenameFreeVariables(
    const FormulaRef& f,
    const std::unordered_map<std::string, std::string>& renaming);

// Alpha-renames every *bound* variable whose name appears in `avoid`.
FormulaRef AvoidBoundVariables(const FormulaRef& f,
                               const std::set<std::string>& avoid);

// Lemma 7's variable elimination: given a formula ψ with free variable
// `var` and a distinguished vertex t marked by fresh colours P_t, Q_t
// (P_t = {t}, Q_t = N(t)), produces ψ_t with `var` eliminated:
//   var = y, y = var   ↦  pt_color(y)
//   E(var, y), E(y, var) ↦ qt_color(y)
//   C(var)             ↦  true/false according to color_truth(C)
// Only free occurrences of `var` are rewritten (rebinding shadows).
FormulaRef EliminateVariableViaColors(
    const FormulaRef& f, const std::string& var, const std::string& pt_color,
    const std::string& qt_color,
    const std::function<bool(const std::string&)>& color_truth);

// Replaces every colour atom whose name is in `colors` by `false` (the
// φ″ → φ‴ step in Lemma 7's general case).
FormulaRef ReplaceColorsWithFalse(const FormulaRef& f,
                                  const std::set<std::string>& colors);

// dist(x, y) ≤ d as a formula, via repeated squaring: quantifier rank
// ⌈log₂ d⌉ (0 for d ≤ 1), size O(d). This is the source of the paper's
// Q(k,ℓ,q) = q + log R rank increase.
FormulaRef DistAtMost(const std::string& x, const std::string& y, int d,
                      FreshVariablePool& pool);

// dist(y, centers) ≤ d: disjunction of DistAtMost over the centre variables.
FormulaRef DistToTupleAtMost(const std::string& y,
                             const std::vector<std::string>& centers, int d,
                             FreshVariablePool& pool);

// Relativizes every quantifier in `f` to the radius-r ball around the
// `centers` variables: ∃z φ ↦ ∃z (dist(z, centers) ≤ r ∧ φ),
// ∀z φ ↦ ∀z (dist(z, centers) ≤ r → φ). The result is r-local in the
// paper's sense: its value on a tuple depends only on the induced r-ball
// around the centre variables (assuming all free variables are centers).
// Bound variables colliding with centre names are alpha-renamed first.
FormulaRef RelativizeToBall(const FormulaRef& f,
                            const std::vector<std::string>& centers, int r);

}  // namespace folearn

#endif  // FOLEARN_FO_TRANSFORM_H_
