#include "fo/mso.h"

namespace folearn {

namespace {

// ∀u∀v (u∈X ∧ E(u,v) → v∈X).
FormulaRef EdgeClosed(const std::string& set_var) {
  return Formula::Forall(
      "_u", Formula::Forall(
                "_v", Formula::Implies(
                          Formula::And(Formula::SetMember("_u", set_var),
                                       Formula::Edge("_u", "_v")),
                          Formula::SetMember("_v", set_var))));
}

}  // namespace

FormulaRef MsoConnectivitySentence() {
  FormulaRef nonempty =
      Formula::Exists("_x", Formula::SetMember("_x", "X"));
  FormulaRef all = Formula::Forall("_w", Formula::SetMember("_w", "X"));
  return Formula::ForallSet(
      "X", Formula::Implies(Formula::And(nonempty, EdgeClosed("X")), all));
}

FormulaRef MsoBipartiteSentence() {
  FormulaRef proper = Formula::Forall(
      "_u",
      Formula::Forall(
          "_v", Formula::Implies(
                    Formula::Edge("_u", "_v"),
                    Formula::Iff(Formula::SetMember("_u", "X"),
                                 Formula::Not(
                                     Formula::SetMember("_v", "X"))))));
  return Formula::ExistsSet("X", proper);
}

FormulaRef MsoSameComponentFormula(const std::string& x,
                                   const std::string& y) {
  return Formula::ForallSet(
      "X", Formula::Implies(
               Formula::And(Formula::SetMember(x, "X"), EdgeClosed("X")),
               Formula::SetMember(y, "X")));
}

FormulaRef MsoIndependentDominatingSetSentence() {
  // independent: no edge inside X; dominating: every vertex is in X or has
  // a neighbour in X.
  FormulaRef independent = Formula::Forall(
      "_u", Formula::Forall(
                "_v", Formula::Implies(
                          Formula::And(Formula::SetMember("_u", "X"),
                                       Formula::SetMember("_v", "X")),
                          Formula::Not(Formula::Edge("_u", "_v")))));
  FormulaRef dominating = Formula::Forall(
      "_w", Formula::Or(
                Formula::SetMember("_w", "X"),
                Formula::Exists(
                    "_z", Formula::And(Formula::Edge("_w", "_z"),
                                       Formula::SetMember("_z", "X")))));
  return Formula::ExistsSet("X", Formula::And(independent, dominating));
}

}  // namespace folearn
