#include "fo/mso.h"

#include <algorithm>
#include <limits>

namespace folearn {

namespace {

// Saturation ceiling for work bounds; far above any budget a caller would
// actually set, far below INT64_MAX so sums of bounds cannot overflow.
constexpr int64_t kWorkBoundCap = std::numeric_limits<int64_t>::max() / 8;

int64_t SaturatingAdd(int64_t a, int64_t b) {
  return (a >= kWorkBoundCap - b) ? kWorkBoundCap : a + b;
}

// branches · (1 + per-branch work), saturating.
int64_t BranchWork(int64_t branches, int64_t child_work) {
  if (branches <= 0) return 0;
  if (child_work >= kWorkBoundCap / branches) return kWorkBoundCap;
  int64_t per_branch = SaturatingAdd(child_work, 1);
  if (per_branch >= kWorkBoundCap / branches) return kWorkBoundCap;
  return branches * per_branch;
}

int64_t WorkBound(const Formula* f, int order) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEdge:
    case FormulaKind::kEquals:
    case FormulaKind::kColor:
    case FormulaKind::kSetMember:
      return 0;
    case FormulaKind::kNot:
      return WorkBound(f->child(0).get(), order);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      int64_t total = 0;
      for (const FormulaRef& child : f->children()) {
        total = SaturatingAdd(total, WorkBound(child.get(), order));
      }
      return total;
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall:
    case FormulaKind::kCountExists:
      return BranchWork(order, WorkBound(f->child(0).get(), order));
    case FormulaKind::kExistsSet:
    case FormulaKind::kForallSet: {
      int64_t subsets = order >= 62 ? kWorkBoundCap
                                    : (int64_t{1} << std::max(order, 0));
      return BranchWork(subsets, WorkBound(f->child(0).get(), order));
    }
  }
  FOLEARN_CHECK(false) << "unreachable";
  return 0;
}

// ∀u∀v (u∈X ∧ E(u,v) → v∈X).
FormulaRef EdgeClosed(const std::string& set_var) {
  return Formula::Forall(
      "_u", Formula::Forall(
                "_v", Formula::Implies(
                          Formula::And(Formula::SetMember("_u", set_var),
                                       Formula::Edge("_u", "_v")),
                          Formula::SetMember("_v", set_var))));
}

}  // namespace

FormulaRef MsoConnectivitySentence() {
  FormulaRef nonempty =
      Formula::Exists("_x", Formula::SetMember("_x", "X"));
  FormulaRef all = Formula::Forall("_w", Formula::SetMember("_w", "X"));
  return Formula::ForallSet(
      "X", Formula::Implies(Formula::And(nonempty, EdgeClosed("X")), all));
}

FormulaRef MsoBipartiteSentence() {
  FormulaRef proper = Formula::Forall(
      "_u",
      Formula::Forall(
          "_v", Formula::Implies(
                    Formula::Edge("_u", "_v"),
                    Formula::Iff(Formula::SetMember("_u", "X"),
                                 Formula::Not(
                                     Formula::SetMember("_v", "X"))))));
  return Formula::ExistsSet("X", proper);
}

FormulaRef MsoSameComponentFormula(const std::string& x,
                                   const std::string& y) {
  return Formula::ForallSet(
      "X", Formula::Implies(
               Formula::And(Formula::SetMember(x, "X"), EdgeClosed("X")),
               Formula::SetMember(y, "X")));
}

FormulaRef MsoIndependentDominatingSetSentence() {
  // independent: no edge inside X; dominating: every vertex is in X or has
  // a neighbour in X.
  FormulaRef independent = Formula::Forall(
      "_u", Formula::Forall(
                "_v", Formula::Implies(
                          Formula::And(Formula::SetMember("_u", "X"),
                                       Formula::SetMember("_v", "X")),
                          Formula::Not(Formula::Edge("_u", "_v")))));
  FormulaRef dominating = Formula::Forall(
      "_w", Formula::Or(
                Formula::SetMember("_w", "X"),
                Formula::Exists(
                    "_z", Formula::And(Formula::Edge("_w", "_z"),
                                       Formula::SetMember("_z", "X")))));
  return Formula::ExistsSet("X", Formula::And(independent, dominating));
}

int64_t MsoEvaluationWorkBound(const FormulaRef& formula, int order) {
  FOLEARN_CHECK(formula != nullptr);
  FOLEARN_CHECK_GE(order, 0);
  return WorkBound(formula.get(), order);
}

}  // namespace folearn
