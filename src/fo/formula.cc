#include "fo/formula.h"

#include <algorithm>
#include <unordered_set>

namespace folearn {

namespace {

// Merges sorted unique string vectors.
std::vector<std::string> MergeSorted(const std::vector<std::string>& a,
                                     const std::vector<std::string>& b) {
  std::vector<std::string> merged;
  merged.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
  return merged;
}

}  // namespace

bool Formula::HasFreeVariable(const std::string& name) const {
  return std::binary_search(free_variables_.begin(), free_variables_.end(),
                            name);
}

int64_t Formula::DagSize() const {
  std::unordered_set<const Formula*> seen;
  std::vector<const Formula*> stack = {this};
  while (!stack.empty()) {
    const Formula* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) continue;
    for (const FormulaRef& child : node->children_) {
      stack.push_back(child.get());
    }
  }
  return static_cast<int64_t>(seen.size());
}

FormulaRef Formula::Make(Formula node) {
  return std::shared_ptr<const Formula>(new Formula(std::move(node)));
}

FormulaRef Formula::True() {
  static const FormulaRef instance = Make(Formula());
  return instance;
}

FormulaRef Formula::False() {
  static const FormulaRef instance = [] {
    Formula node;
    node.kind_ = FormulaKind::kFalse;
    return Make(std::move(node));
  }();
  return instance;
}

FormulaRef Formula::Edge(std::string x, std::string y) {
  FOLEARN_CHECK(!x.empty() && !y.empty());
  Formula node;
  node.kind_ = FormulaKind::kEdge;
  node.var1_ = std::move(x);
  node.var2_ = std::move(y);
  if (node.var1_ == node.var2_) return False();  // E is irreflexive
  node.free_variables_ = {node.var1_, node.var2_};
  std::sort(node.free_variables_.begin(), node.free_variables_.end());
  return Make(std::move(node));
}

FormulaRef Formula::Color(std::string color, std::string x) {
  FOLEARN_CHECK(!color.empty() && !x.empty());
  FOLEARN_CHECK(color != "E") << "'E' is reserved for the edge relation";
  Formula node;
  node.kind_ = FormulaKind::kColor;
  node.color_name_ = std::move(color);
  node.var1_ = std::move(x);
  node.free_variables_ = {node.var1_};
  return Make(std::move(node));
}

FormulaRef Formula::Equals(std::string x, std::string y) {
  FOLEARN_CHECK(!x.empty() && !y.empty());
  if (x == y) return True();
  Formula node;
  node.kind_ = FormulaKind::kEquals;
  node.var1_ = std::move(x);
  node.var2_ = std::move(y);
  node.free_variables_ = {node.var1_, node.var2_};
  std::sort(node.free_variables_.begin(), node.free_variables_.end());
  return Make(std::move(node));
}

FormulaRef Formula::Not(FormulaRef f) {
  FOLEARN_CHECK(f != nullptr);
  if (f->kind_ == FormulaKind::kTrue) return False();
  if (f->kind_ == FormulaKind::kFalse) return True();
  if (f->kind_ == FormulaKind::kNot) return f->children_[0];  // ¬¬φ = φ
  Formula node;
  node.kind_ = FormulaKind::kNot;
  node.quantifier_rank_ = f->quantifier_rank_;
  node.free_variables_ = f->free_variables_;
  node.free_set_variables_ = f->free_set_variables_;
  node.children_.push_back(std::move(f));
  return Make(std::move(node));
}

FormulaRef Formula::MakeNary(FormulaKind kind, std::vector<FormulaRef> fs) {
  // Flatten nested nodes of the same kind and fold the identity/absorbing
  // constants (true/false for And; false/true for Or).
  const bool is_and = kind == FormulaKind::kAnd;
  const FormulaKind identity =
      is_and ? FormulaKind::kTrue : FormulaKind::kFalse;
  const FormulaKind absorbing =
      is_and ? FormulaKind::kFalse : FormulaKind::kTrue;
  std::vector<FormulaRef> flat;
  std::vector<FormulaRef> stack(fs.rbegin(), fs.rend());
  while (!stack.empty()) {
    FormulaRef f = std::move(stack.back());
    stack.pop_back();
    FOLEARN_CHECK(f != nullptr);
    if (f->kind() == identity) continue;
    if (f->kind() == absorbing) {
      return is_and ? Formula::False() : Formula::True();
    }
    if (f->kind() == kind) {
      auto children = f->children();
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        stack.push_back(*it);
      }
      continue;
    }
    flat.push_back(std::move(f));
  }
  // Deduplicate identical shared nodes (pointer equality only — cheap and
  // catches the duplication Hintikka construction would otherwise produce).
  std::vector<FormulaRef> unique;
  for (FormulaRef& f : flat) {
    bool duplicate = false;
    for (const FormulaRef& g : unique) {
      if (g.get() == f.get()) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) unique.push_back(std::move(f));
  }
  if (unique.empty()) return is_and ? Formula::True() : Formula::False();
  if (unique.size() == 1) return unique[0];
  Formula node;
  node.kind_ = kind;
  for (const FormulaRef& f : unique) {
    node.quantifier_rank_ =
        std::max(node.quantifier_rank_, f->quantifier_rank());
    node.free_variables_ =
        MergeSorted(node.free_variables_, f->free_variables());
    node.free_set_variables_ =
        MergeSorted(node.free_set_variables_, f->free_set_variables());
  }
  node.children_ = std::move(unique);
  return Make(std::move(node));
}

FormulaRef Formula::And(std::vector<FormulaRef> fs) {
  return MakeNary(FormulaKind::kAnd, std::move(fs));
}

FormulaRef Formula::Or(std::vector<FormulaRef> fs) {
  return MakeNary(FormulaKind::kOr, std::move(fs));
}

FormulaRef Formula::And(FormulaRef a, FormulaRef b) {
  std::vector<FormulaRef> fs;
  fs.push_back(std::move(a));
  fs.push_back(std::move(b));
  return And(std::move(fs));
}

FormulaRef Formula::Or(FormulaRef a, FormulaRef b) {
  std::vector<FormulaRef> fs;
  fs.push_back(std::move(a));
  fs.push_back(std::move(b));
  return Or(std::move(fs));
}

FormulaRef Formula::Implies(FormulaRef a, FormulaRef b) {
  return Or(Not(std::move(a)), std::move(b));
}

FormulaRef Formula::Iff(FormulaRef a, FormulaRef b) {
  return And(Implies(a, b), Implies(b, a));
}

FormulaRef Formula::MakeQuantifier(FormulaKind kind, std::string var,
                                   FormulaRef body) {
  FOLEARN_CHECK(!var.empty());
  FOLEARN_CHECK(body != nullptr);
  if (body->kind_ == FormulaKind::kTrue || body->kind_ == FormulaKind::kFalse) {
    // Quantification over a non-empty domain preserves constants. (All our
    // graphs are non-empty whenever a quantifier is evaluated; evaluation
    // additionally handles the empty graph explicitly.)
    return body;
  }
  Formula node;
  node.kind_ = kind;
  node.quantifier_rank_ = body->quantifier_rank_ + 1;
  node.free_variables_ = body->free_variables_;
  node.free_set_variables_ = body->free_set_variables_;
  auto it = std::lower_bound(node.free_variables_.begin(),
                             node.free_variables_.end(), var);
  if (it != node.free_variables_.end() && *it == var) {
    node.free_variables_.erase(it);
  }
  node.quantified_var_ = std::move(var);
  node.children_.push_back(std::move(body));
  return Make(std::move(node));
}

FormulaRef Formula::Exists(std::string var, FormulaRef body) {
  return MakeQuantifier(FormulaKind::kExists, std::move(var), std::move(body));
}

FormulaRef Formula::Forall(std::string var, FormulaRef body) {
  return MakeQuantifier(FormulaKind::kForall, std::move(var), std::move(body));
}

FormulaRef Formula::CountExists(int threshold, std::string var,
                                FormulaRef body) {
  FOLEARN_CHECK(!var.empty());
  FOLEARN_CHECK(body != nullptr);
  if (threshold <= 0) return True();  // 0 witnesses always exist
  if (threshold == 1) return Exists(std::move(var), std::move(body));
  if (body->kind() == FormulaKind::kFalse) return False();
  // Note: a `true` body cannot be folded — ∃^{≥t} x true asks n ≥ t.
  Formula node;
  node.kind_ = FormulaKind::kCountExists;
  node.threshold_ = threshold;
  node.quantifier_rank_ = body->quantifier_rank() + 1;
  node.free_variables_ = body->free_variables();
  node.free_set_variables_ = body->free_set_variables();
  auto it = std::lower_bound(node.free_variables_.begin(),
                             node.free_variables_.end(), var);
  if (it != node.free_variables_.end() && *it == var) {
    node.free_variables_.erase(it);
  }
  node.quantified_var_ = std::move(var);
  node.children_.push_back(std::move(body));
  return Make(std::move(node));
}

FormulaRef Formula::SetMember(std::string element_var, std::string set_var) {
  FOLEARN_CHECK(!element_var.empty() && !set_var.empty());
  Formula node;
  node.kind_ = FormulaKind::kSetMember;
  node.var1_ = std::move(element_var);
  node.color_name_ = std::move(set_var);
  node.free_variables_ = {node.var1_};
  node.free_set_variables_ = {node.color_name_};
  return Make(std::move(node));
}

FormulaRef Formula::MakeSetQuantifier(FormulaKind kind, std::string set_var,
                                      FormulaRef body) {
  FOLEARN_CHECK(!set_var.empty());
  FOLEARN_CHECK(body != nullptr);
  if (body->kind() == FormulaKind::kTrue ||
      body->kind() == FormulaKind::kFalse) {
    return body;  // set quantification over a constant body
  }
  Formula node;
  node.kind_ = kind;
  node.quantifier_rank_ = body->quantifier_rank() + 1;
  node.free_variables_ = body->free_variables();
  node.free_set_variables_ = body->free_set_variables();
  auto it = std::lower_bound(node.free_set_variables_.begin(),
                             node.free_set_variables_.end(), set_var);
  if (it != node.free_set_variables_.end() && *it == set_var) {
    node.free_set_variables_.erase(it);
  }
  node.quantified_var_ = std::move(set_var);
  node.children_.push_back(std::move(body));
  return Make(std::move(node));
}

FormulaRef Formula::ExistsSet(std::string set_var, FormulaRef body) {
  return MakeSetQuantifier(FormulaKind::kExistsSet, std::move(set_var),
                           std::move(body));
}

FormulaRef Formula::ForallSet(std::string set_var, FormulaRef body) {
  return MakeSetQuantifier(FormulaKind::kForallSet, std::move(set_var),
                           std::move(body));
}

bool Formula::IsFirstOrder() const {
  std::vector<const Formula*> stack = {this};
  std::unordered_set<const Formula*> seen;
  while (!stack.empty()) {
    const Formula* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) continue;
    switch (node->kind()) {
      case FormulaKind::kSetMember:
      case FormulaKind::kExistsSet:
      case FormulaKind::kForallSet:
        return false;
      default:
        break;
    }
    for (const FormulaRef& child : node->children_) {
      stack.push_back(child.get());
    }
  }
  return true;
}

std::string QueryVar(int i) { return "x" + std::to_string(i); }
std::string ParamVar(int i) { return "y" + std::to_string(i); }

std::vector<std::string> QueryVars(int k) {
  std::vector<std::string> vars;
  vars.reserve(k);
  for (int i = 1; i <= k; ++i) vars.push_back(QueryVar(i));
  return vars;
}

std::vector<std::string> ParamVars(int ell) {
  std::vector<std::string> vars;
  vars.reserve(ell);
  for (int i = 1; i <= ell; ++i) vars.push_back(ParamVar(i));
  return vars;
}

}  // namespace folearn
