#ifndef FOLEARN_FO_MSO_H_
#define FOLEARN_FO_MSO_H_

#include <cstdint>

#include "fo/formula.h"

namespace folearn {

// Canned MSO sentences — the classic properties beyond FO that the
// Grohe–Turán framework (the paper's origin, [23]) studies learnability
// for. Evaluation enumerates subsets, so these are for small structures
// (the testing/teaching regime).

// "G is connected": every non-empty, edge-closed set contains every vertex.
//   ∀X ((∃x x∈X) ∧ ∀u∀v (u∈X ∧ E(u,v) → v∈X) → ∀w w∈X).
FormulaRef MsoConnectivitySentence();

// "G is 2-colourable (bipartite)": ∃X ∀u∀v (E(u,v) → (u∈X ↔ ¬v∈X)).
FormulaRef MsoBipartiteSentence();

// "x and y are in the same connected component":
//   ∀X (x∈X ∧ closure → y∈X), free element variables `x`, `y`.
FormulaRef MsoSameComponentFormula(const std::string& x,
                                   const std::string& y);

// "G has an independent dominating set":
//   ∃X (independent(X) ∧ dominating(X)).
FormulaRef MsoIndependentDominatingSetSentence();

// Upper bound on the number of quantifier branches (= governor checkpoints)
// the recursive evaluator can spend on `formula` over a structure with
// `order` vertices. Set quantifiers contribute 2^order branches each, so
// this is the right scale for GovernorLimits::max_work when budgeting an
// MSO evaluation. Saturates instead of overflowing.
int64_t MsoEvaluationWorkBound(const FormulaRef& formula, int order);

}  // namespace folearn

#endif  // FOLEARN_FO_MSO_H_
