#include "fo/normal_form.h"

#include <unordered_set>

#include "fo/transform.h"

namespace folearn {

namespace {

FormulaRef NnfRec(const FormulaRef& f, bool negated) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
      return negated ? Formula::False() : f;
    case FormulaKind::kFalse:
      return negated ? Formula::True() : f;
    case FormulaKind::kEdge:
    case FormulaKind::kEquals:
    case FormulaKind::kColor:
      return negated ? Formula::Not(f) : f;
    case FormulaKind::kNot:
      return NnfRec(f->child(0), !negated);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaRef> children;
      children.reserve(f->children().size());
      for (const FormulaRef& child : f->children()) {
        children.push_back(NnfRec(child, negated));
      }
      const bool make_and = (f->kind() == FormulaKind::kAnd) != negated;
      return make_and ? Formula::And(std::move(children))
                      : Formula::Or(std::move(children));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      FormulaRef body = NnfRec(f->child(0), negated);
      const bool make_exists = (f->kind() == FormulaKind::kExists) != negated;
      return make_exists ? Formula::Exists(f->quantified_var(),
                                           std::move(body))
                         : Formula::Forall(f->quantified_var(),
                                           std::move(body));
    }
    case FormulaKind::kCountExists: {
      // No positive dual for ¬∃^{≥t}: normalise the body and keep the
      // outer negation if present.
      FormulaRef body = NnfRec(f->child(0), false);
      FormulaRef rebuilt = Formula::CountExists(
          f->threshold(), f->quantified_var(), std::move(body));
      return negated ? Formula::Not(std::move(rebuilt)) : rebuilt;
    }
    case FormulaKind::kSetMember:
      return negated ? Formula::Not(f) : f;
    case FormulaKind::kExistsSet:
    case FormulaKind::kForallSet: {
      FormulaRef body = NnfRec(f->child(0), negated);
      const bool make_exists =
          (f->kind() == FormulaKind::kExistsSet) != negated;
      return make_exists
                 ? Formula::ExistsSet(f->quantified_var(), std::move(body))
                 : Formula::ForallSet(f->quantified_var(), std::move(body));
    }
  }
  FOLEARN_CHECK(false) << "unreachable";
  return nullptr;
}

struct PrefixEntry {
  bool is_exists;
  std::string var;
};

// Pulls quantifiers out of an NNF formula; appends prefix entries
// outermost-first and returns the matrix.
FormulaRef PullQuantifiers(const FormulaRef& f,
                           std::vector<PrefixEntry>& prefix,
                           FreshVariablePool& pool) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEdge:
    case FormulaKind::kEquals:
    case FormulaKind::kColor:
      return f;
    case FormulaKind::kNot:
      // NNF: child is an atom.
      return f;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<FormulaRef> children;
      for (const FormulaRef& child : f->children()) {
        children.push_back(PullQuantifiers(child, prefix, pool));
      }
      return f->kind() == FormulaKind::kAnd
                 ? Formula::And(std::move(children))
                 : Formula::Or(std::move(children));
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      // Rename the bound variable to a globally fresh one so pulling it out
      // cannot capture anything.
      std::string fresh = pool.Fresh(f->quantified_var());
      FormulaRef body =
          RenameFreeVariables(f->child(0), {{f->quantified_var(), fresh}});
      prefix.push_back({f->kind() == FormulaKind::kExists, fresh});
      return PullQuantifiers(body, prefix, pool);
    }
    case FormulaKind::kCountExists:
      FOLEARN_CHECK(false)
          << "prenex normal form requires a counting-free formula";
      return nullptr;
    case FormulaKind::kSetMember:
    case FormulaKind::kExistsSet:
    case FormulaKind::kForallSet:
      FOLEARN_CHECK(false)
          << "prenex normal form requires a first-order formula";
      return nullptr;
  }
  FOLEARN_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace

FormulaRef ToNegationNormalForm(const FormulaRef& f) {
  return NnfRec(f, false);
}

FormulaRef ToPrenexNormalForm(const FormulaRef& f) {
  FormulaRef nnf = ToNegationNormalForm(f);
  FreshVariablePool pool(CollectVariableNames(nnf));
  std::vector<PrefixEntry> prefix;
  FormulaRef matrix = PullQuantifiers(nnf, prefix, pool);
  // Wrap innermost-last: the prefix list is outermost-first.
  for (auto it = prefix.rbegin(); it != prefix.rend(); ++it) {
    matrix = it->is_exists ? Formula::Exists(it->var, std::move(matrix))
                           : Formula::Forall(it->var, std::move(matrix));
  }
  return matrix;
}

bool IsPrenex(const FormulaRef& f) {
  const Formula* node = f.get();
  while (node->kind() == FormulaKind::kExists ||
         node->kind() == FormulaKind::kForall ||
         node->kind() == FormulaKind::kCountExists) {
    node = node->child(0).get();
  }
  // The matrix must be quantifier-free.
  std::vector<const Formula*> stack = {node};
  while (!stack.empty()) {
    const Formula* current = stack.back();
    stack.pop_back();
    switch (current->kind()) {
      case FormulaKind::kExists:
      case FormulaKind::kForall:
      case FormulaKind::kCountExists:
      case FormulaKind::kExistsSet:
      case FormulaKind::kForallSet:
        return false;
      default:
        break;
    }
    for (const FormulaRef& child : current->children()) {
      stack.push_back(child.get());
    }
  }
  return true;
}

bool IsNegationNormalForm(const FormulaRef& f) {
  std::vector<const Formula*> stack = {f.get()};
  while (!stack.empty()) {
    const Formula* node = stack.back();
    stack.pop_back();
    if (node->kind() == FormulaKind::kNot) {
      switch (node->child(0)->kind()) {
        case FormulaKind::kEdge:
        case FormulaKind::kEquals:
        case FormulaKind::kColor:
        case FormulaKind::kSetMember:
        case FormulaKind::kCountExists:  // ¬∃^{≥t} is irreducible here
          break;
        default:
          return false;
      }
    }
    for (const FormulaRef& child : node->children()) {
      stack.push_back(child.get());
    }
  }
  return true;
}

FormulaStats ComputeFormulaStats(const FormulaRef& f) {
  FormulaStats stats;
  stats.quantifier_rank = f->quantifier_rank();
  stats.dag_nodes = f->DagSize();
  // Occurrence counts are over the TREE unfolding but computed on the DAG
  // with per-node multiplicities capped implicitly by revisiting shared
  // nodes once per parent — here we simply walk the DAG once (occurrence
  // counts of shared nodes are counted once; documented behaviour).
  std::unordered_set<const Formula*> seen;
  std::vector<const Formula*> stack = {f.get()};
  while (!stack.empty()) {
    const Formula* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) continue;
    switch (node->kind()) {
      case FormulaKind::kEdge:
      case FormulaKind::kEquals:
      case FormulaKind::kColor:
      case FormulaKind::kSetMember:
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
        ++stats.atom_occurrences;
        break;
      case FormulaKind::kNot:
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
        ++stats.connective_occurrences;
        break;
      case FormulaKind::kExists:
      case FormulaKind::kForall:
      case FormulaKind::kCountExists:
      case FormulaKind::kExistsSet:
      case FormulaKind::kForallSet:
        ++stats.quantifier_occurrences;
        break;
    }
    for (const FormulaRef& child : node->children()) {
      stack.push_back(child.get());
    }
  }
  return stats;
}

}  // namespace folearn
