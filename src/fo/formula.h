#ifndef FOLEARN_FO_FORMULA_H_
#define FOLEARN_FO_FORMULA_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/check.h"

namespace folearn {

// First-order formulas over coloured graphs (paper §2, FO[τ]): atoms
// E(x, y), P(x), x = y, the boolean connectives, and the quantifiers
// ∃x, ∀x. Conjunction and disjunction are n-ary so Hintikka formulas stay
// compact.
//
// Formulas are immutable and shared via `FormulaRef`; equal subformulas may
// be shared, so the structure is a DAG. Quantifier rank and the sorted free
// variable list are computed at construction and are O(1) to query —
// important because Hintikka DAGs can have exponentially many tree paths.
//
// Colour atoms refer to colours *by name*; they are resolved against the
// graph's vocabulary at evaluation time. This is what makes the paper's
// colour expansions (Lemma 7's P_t/Q_t, Lemma 16's fresh colours) natural:
// a formula mentioning colour "Pt" is evaluated on the expanded graph.
enum class FormulaKind {
  kTrue,
  kFalse,
  kEdge,    // E(var1, var2)
  kColor,   // color_name(var1)
  kEquals,  // var1 = var2
  kNot,     // children[0]
  kAnd,     // children (n ≥ 2)
  kOr,      // children (n ≥ 2)
  kExists,  // quantified_var, children[0]
  kForall,  // quantified_var, children[0]
  // FO+C extension (paper conclusion: "extensions of first-order logic
  // with counting"): the threshold counting quantifier ∃^{≥t} x φ,
  // "at least t witnesses". ∃ ≡ ∃^{≥1}; thresholds t ≥ 2 strictly extend
  // plain FO at a given rank (e.g. "degree ≥ 2" at rank 1).
  kCountExists,  // threshold, quantified_var, children[0]
  // MSO extension (the Grohe–Turán framework the paper builds on, and the
  // conclusion's "MSO over bounded tree width" direction): monotone
  // second-order set variables. Set variables live in their own namespace
  // (bound only by the set quantifiers; element renaming never touches
  // them). Evaluation enumerates subsets — tiny structures only.
  kSetMember,  // var1 ∈ set_name
  kExistsSet,  // quantified_var (a set variable), children[0]
  kForallSet,  // quantified_var (a set variable), children[0]
};

class Formula;
using FormulaRef = std::shared_ptr<const Formula>;

class Formula {
 public:
  FormulaKind kind() const { return kind_; }

  // First variable of an Edge/Equals atom, or the variable of a Color atom.
  const std::string& var1() const { return var1_; }
  // Second variable of an Edge/Equals atom.
  const std::string& var2() const { return var2_; }
  // Colour name of a Color atom.
  const std::string& color_name() const { return color_name_; }
  // Set-variable name of a SetMember atom (stored in the colour slot).
  const std::string& set_name() const { return color_name_; }

  // Subformulas: 1 for Not/Exists/Forall, ≥ 2 for And/Or, 0 for atoms.
  std::span<const FormulaRef> children() const { return children_; }
  const FormulaRef& child(int i) const { return children_[i]; }

  // Bound variable of an Exists/Forall/CountExists node.
  const std::string& quantified_var() const { return quantified_var_; }

  // Threshold t of a CountExists node (∃^{≥t}); always ≥ 2 after folding
  // (t ≤ 0 folds to true, t = 1 folds to a plain Exists).
  int threshold() const { return threshold_; }

  // Quantifier rank (paper §2).
  int quantifier_rank() const { return quantifier_rank_; }

  // Free ELEMENT variables, sorted lexicographically, no duplicates.
  const std::vector<std::string>& free_variables() const {
    return free_variables_;
  }

  // Free SET variables (MSO), sorted, no duplicates.
  const std::vector<std::string>& free_set_variables() const {
    return free_set_variables_;
  }

  // True iff no MSO construct occurs anywhere in the formula.
  bool IsFirstOrder() const;

  bool HasFreeVariable(const std::string& name) const;

  // Number of nodes in the underlying DAG reachable from this node.
  int64_t DagSize() const;

  // --- Factories (the only way to create formulas) -------------------------
  // All factories fold constants: And(φ, false) = false, Not(true) = false,
  // ∃x true = true, etc., and And/Or flatten nested nodes of the same kind.

  static FormulaRef True();
  static FormulaRef False();
  static FormulaRef Edge(std::string x, std::string y);
  static FormulaRef Color(std::string color, std::string x);
  static FormulaRef Equals(std::string x, std::string y);
  static FormulaRef Not(FormulaRef f);
  static FormulaRef And(std::vector<FormulaRef> fs);
  static FormulaRef Or(std::vector<FormulaRef> fs);
  static FormulaRef And(FormulaRef a, FormulaRef b);
  static FormulaRef Or(FormulaRef a, FormulaRef b);
  // φ → ψ, desugared to ¬φ ∨ ψ at construction.
  static FormulaRef Implies(FormulaRef a, FormulaRef b);
  // φ ↔ ψ, desugared to (φ→ψ) ∧ (ψ→φ).
  static FormulaRef Iff(FormulaRef a, FormulaRef b);
  static FormulaRef Exists(std::string var, FormulaRef body);
  static FormulaRef Forall(std::string var, FormulaRef body);
  // ∃^{≥threshold} var. body (threshold ≤ 0 folds to true, 1 to Exists).
  static FormulaRef CountExists(int threshold, std::string var,
                                FormulaRef body);
  // MSO: x ∈ X, ∃X φ, ∀X φ.
  static FormulaRef SetMember(std::string element_var, std::string set_var);
  static FormulaRef ExistsSet(std::string set_var, FormulaRef body);
  static FormulaRef ForallSet(std::string set_var, FormulaRef body);

 private:
  Formula() = default;

  static FormulaRef Make(Formula node);
  static FormulaRef MakeNary(FormulaKind kind, std::vector<FormulaRef> fs);
  static FormulaRef MakeQuantifier(FormulaKind kind, std::string var,
                                   FormulaRef body);
  static FormulaRef MakeSetQuantifier(FormulaKind kind, std::string set_var,
                                      FormulaRef body);

  FormulaKind kind_ = FormulaKind::kTrue;
  std::string var1_;
  std::string var2_;
  std::string color_name_;
  std::string quantified_var_;
  std::vector<FormulaRef> children_;
  int threshold_ = 0;
  int quantifier_rank_ = 0;
  std::vector<std::string> free_variables_;
  std::vector<std::string> free_set_variables_;
};

// Canonical variable names used throughout: the k query variables x1..xk,
// the ℓ parameter variables y1..yℓ (paper: φ(x̄; ȳ)).
std::string QueryVar(int i);  // 1-based: "x1", "x2", …
std::string ParamVar(int i);  // 1-based: "y1", "y2", …

// The standard variable tuples (x1..xk) and (y1..yℓ).
std::vector<std::string> QueryVars(int k);
std::vector<std::string> ParamVars(int ell);

}  // namespace folearn

#endif  // FOLEARN_FO_FORMULA_H_
