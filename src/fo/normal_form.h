#ifndef FOLEARN_FO_NORMAL_FORM_H_
#define FOLEARN_FO_NORMAL_FORM_H_

#include "fo/formula.h"

namespace folearn {

// Normal forms (the paper's §2 "we syntactically define a normal form…"
// device that makes FO[τ, q] finite, plus standard shapes the hardness
// reduction and tests rely on).

// Negation normal form: negations pushed to the atoms (¬∃ ↦ ∀¬, ¬∀ ↦ ∃¬,
// De Morgan over ∧/∨). Counting quantifiers keep their negation (¬∃^{≥t}
// has no positive dual in this syntax). Preserves semantics and quantifier
// rank.
FormulaRef ToNegationNormalForm(const FormulaRef& f);

// Prenex normal form: all (plain) quantifiers pulled to an outer prefix
// with capture-avoiding renaming; input must be counting-free. The matrix
// is quantifier-free; the prefix length equals the number of quantifier
// occurrences (not the rank). Preserves semantics.
FormulaRef ToPrenexNormalForm(const FormulaRef& f);

// True iff no quantifier occurs under a boolean connective or another
// quantifier's sibling (i.e. the formula is a quantifier prefix followed
// by a quantifier-free matrix).
bool IsPrenex(const FormulaRef& f);

// True iff every kNot has an atom directly beneath it.
bool IsNegationNormalForm(const FormulaRef& f);

// Structural statistics used by the experiment harnesses.
struct FormulaStats {
  int quantifier_rank = 0;
  int64_t quantifier_occurrences = 0;
  int64_t atom_occurrences = 0;
  int64_t connective_occurrences = 0;
  int64_t dag_nodes = 0;
};
FormulaStats ComputeFormulaStats(const FormulaRef& f);

}  // namespace folearn

#endif  // FOLEARN_FO_NORMAL_FORM_H_
