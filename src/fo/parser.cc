#include "fo/parser.h"

#include <cctype>
#include <vector>

namespace folearn {

namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kLParen,
  kRParen,
  kComma,
  kEquals,
  kAnd,
  kOr,
  kNot,
  kImplies,
  kDot,
  kGreaterEquals,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t offset;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  // Tokenises the whole input; returns false on an illegal character.
  bool Tokenize(std::vector<Token>& tokens, std::string* error) {
    size_t pos = 0;
    while (pos < text_.size()) {
      char c = text_[pos];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = pos;
        while (pos < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos]))) {
          ++pos;
        }
        tokens.push_back(
            {TokenKind::kNumber, std::string(text_.substr(start, pos - start)),
             start});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos;
        while (pos < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos])) ||
                text_[pos] == '_')) {
          ++pos;
        }
        tokens.push_back(
            {TokenKind::kIdent, std::string(text_.substr(start, pos - start)),
             start});
        continue;
      }
      switch (c) {
        case '(':
          tokens.push_back({TokenKind::kLParen, "(", pos});
          break;
        case ')':
          tokens.push_back({TokenKind::kRParen, ")", pos});
          break;
        case ',':
          tokens.push_back({TokenKind::kComma, ",", pos});
          break;
        case '=':
          tokens.push_back({TokenKind::kEquals, "=", pos});
          break;
        case '>':
          if (pos + 1 < text_.size() && text_[pos + 1] == '=') {
            tokens.push_back({TokenKind::kGreaterEquals, ">=", pos});
            ++pos;
            break;
          }
          if (error != nullptr) {
            *error = "expected '>=' at offset " + std::to_string(pos);
          }
          return false;
        case '&':
          tokens.push_back({TokenKind::kAnd, "&", pos});
          break;
        case '|':
          tokens.push_back({TokenKind::kOr, "|", pos});
          break;
        case '!':
          tokens.push_back({TokenKind::kNot, "!", pos});
          break;
        case '.':
          tokens.push_back({TokenKind::kDot, ".", pos});
          break;
        case '-':
          if (pos + 1 < text_.size() && text_[pos + 1] == '>') {
            tokens.push_back({TokenKind::kImplies, "->", pos});
            ++pos;
            break;
          }
          [[fallthrough]];
        default:
          if (error != nullptr) {
            *error = "illegal character '" + std::string(1, c) +
                     "' at offset " + std::to_string(pos);
          }
          return false;
      }
      ++pos;
    }
    tokens.push_back({TokenKind::kEnd, "", text_.size()});
    return true;
  }

 private:
  std::string_view text_;
};

bool IsReserved(const std::string& word) {
  return word == "E" || word == "exists" || word == "forall" ||
         word == "true" || word == "false" || word == "in" ||
         word == "existsset" || word == "forallset";
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string* error)
      : tokens_(std::move(tokens)), error_(error) {}

  FormulaRef ParseTop() {
    FormulaRef f = ParseImplication();
    if (f != nullptr && !Match(TokenKind::kEnd)) {
      SetError("unexpected trailing input");
      return nullptr;
    }
    return f;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }

  const Token& Advance() { return tokens_[index_++]; }

  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++index_;
    return true;
  }

  void SetError(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ =
          message + " at offset " + std::to_string(Peek().offset);
    }
  }

  FormulaRef ParseImplication() {
    FormulaRef left = ParseOr();
    if (left == nullptr) return nullptr;
    if (Match(TokenKind::kImplies)) {
      FormulaRef right = ParseImplication();  // right-associative
      if (right == nullptr) return nullptr;
      return Formula::Implies(std::move(left), std::move(right));
    }
    return left;
  }

  FormulaRef ParseOr() {
    FormulaRef left = ParseAnd();
    if (left == nullptr) return nullptr;
    std::vector<FormulaRef> parts = {std::move(left)};
    while (Match(TokenKind::kOr)) {
      FormulaRef next = ParseAnd();
      if (next == nullptr) return nullptr;
      parts.push_back(std::move(next));
    }
    return parts.size() == 1 ? parts[0] : Formula::Or(std::move(parts));
  }

  FormulaRef ParseAnd() {
    FormulaRef left = ParseUnary();
    if (left == nullptr) return nullptr;
    std::vector<FormulaRef> parts = {std::move(left)};
    while (Match(TokenKind::kAnd)) {
      FormulaRef next = ParseUnary();
      if (next == nullptr) return nullptr;
      parts.push_back(std::move(next));
    }
    return parts.size() == 1 ? parts[0] : Formula::And(std::move(parts));
  }

  FormulaRef ParseUnary() {
    if (Match(TokenKind::kNot)) {
      FormulaRef inner = ParseUnary();
      if (inner == nullptr) return nullptr;
      return Formula::Not(std::move(inner));
    }
    if (Match(TokenKind::kLParen)) {
      FormulaRef inner = ParseImplication();
      if (inner == nullptr) return nullptr;
      if (!Match(TokenKind::kRParen)) {
        SetError("expected ')'");
        return nullptr;
      }
      return inner;
    }
    if (Peek().kind != TokenKind::kIdent) {
      SetError("expected formula");
      return nullptr;
    }
    std::string word = Advance().text;
    if (word == "true") return Formula::True();
    if (word == "false") return Formula::False();
    if (word == "exists" || word == "forall") {
      // Counting quantifier: exists>=K var. body.
      int threshold = -1;
      if (word == "exists" && Match(TokenKind::kGreaterEquals)) {
        if (Peek().kind != TokenKind::kNumber) {
          SetError("expected threshold after 'exists>='");
          return nullptr;
        }
        threshold = std::stoi(Advance().text);
      }
      if (Peek().kind != TokenKind::kIdent || IsReserved(Peek().text)) {
        SetError("expected variable after quantifier");
        return nullptr;
      }
      std::string var = Advance().text;
      if (!Match(TokenKind::kDot)) {
        SetError("expected '.' after quantified variable");
        return nullptr;
      }
      FormulaRef body = ParseImplication();
      if (body == nullptr) return nullptr;
      if (threshold >= 0) {
        return Formula::CountExists(threshold, std::move(var),
                                    std::move(body));
      }
      return word == "exists" ? Formula::Exists(std::move(var), std::move(body))
                              : Formula::Forall(std::move(var),
                                                std::move(body));
    }
    if (word == "existsset" || word == "forallset") {
      if (Peek().kind != TokenKind::kIdent || IsReserved(Peek().text)) {
        SetError("expected set variable after set quantifier");
        return nullptr;
      }
      std::string set_var = Advance().text;
      if (!Match(TokenKind::kDot)) {
        SetError("expected '.' after set variable");
        return nullptr;
      }
      FormulaRef body = ParseImplication();
      if (body == nullptr) return nullptr;
      return word == "existsset"
                 ? Formula::ExistsSet(std::move(set_var), std::move(body))
                 : Formula::ForallSet(std::move(set_var), std::move(body));
    }
    if (word == "E") {
      if (!Match(TokenKind::kLParen)) {
        SetError("expected '(' after 'E'");
        return nullptr;
      }
      std::string x;
      std::string y;
      if (!ParseVariable(&x) || !Match(TokenKind::kComma) ||
          !ParseVariable(&y) || !Match(TokenKind::kRParen)) {
        SetError("malformed edge atom");
        return nullptr;
      }
      return Formula::Edge(std::move(x), std::move(y));
    }
    // `word` is either a colour atom `word(var)` or the left side of an
    // equality `word = var`.
    if (Match(TokenKind::kLParen)) {
      std::string x;
      if (!ParseVariable(&x) || !Match(TokenKind::kRParen)) {
        SetError("malformed colour atom");
        return nullptr;
      }
      return Formula::Color(std::move(word), std::move(x));
    }
    if (Match(TokenKind::kEquals)) {
      std::string y;
      if (!ParseVariable(&y)) {
        SetError("malformed equality atom");
        return nullptr;
      }
      return Formula::Equals(std::move(word), std::move(y));
    }
    if (Peek().kind == TokenKind::kIdent && Peek().text == "in") {
      Advance();  // 'in'
      if (Peek().kind != TokenKind::kIdent || IsReserved(Peek().text)) {
        SetError("expected set variable after 'in'");
        return nullptr;
      }
      return Formula::SetMember(std::move(word), Advance().text);
    }
    SetError("expected '(' or '=' after identifier '" + word + "'");
    return nullptr;
  }

  bool ParseVariable(std::string* out) {
    if (Peek().kind != TokenKind::kIdent || IsReserved(Peek().text)) {
      return false;
    }
    *out = Advance().text;
    return true;
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
  std::string* error_;
};

}  // namespace

std::optional<FormulaRef> ParseFormula(std::string_view text,
                                       std::string* error) {
  if (error != nullptr) error->clear();
  std::vector<Token> tokens;
  if (!Lexer(text).Tokenize(tokens, error)) return std::nullopt;
  Parser parser(std::move(tokens), error);
  FormulaRef formula = parser.ParseTop();
  if (formula == nullptr) return std::nullopt;
  return formula;
}

FormulaRef MustParseFormula(std::string_view text) {
  std::string error;
  std::optional<FormulaRef> formula = ParseFormula(text, &error);
  FOLEARN_CHECK(formula.has_value())
      << "parse error in '" << std::string(text) << "': " << error;
  return *formula;
}

}  // namespace folearn
