#ifndef FOLEARN_FO_PRINTER_H_
#define FOLEARN_FO_PRINTER_H_

#include <string>

#include "fo/formula.h"

namespace folearn {

// Renders a formula in the concrete syntax accepted by ParseFormula:
//
//   E(x, y)   Red(x)   x = y   true   false
//   !φ        φ & ψ    φ | ψ   exists x. φ   forall x. φ
//
// Parenthesised minimally (precedence ! > & > |; quantifier bodies extend
// maximally to the right). Round-trips through the parser up to the
// constructor-level simplifications.
std::string ToString(const FormulaRef& formula);

// One-line summary "qrank=… free=[…] dag=…" used in logs and examples.
std::string DescribeFormula(const FormulaRef& formula);

}  // namespace folearn

#endif  // FOLEARN_FO_PRINTER_H_
