#ifndef FOLEARN_FO_PARSER_H_
#define FOLEARN_FO_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "fo/formula.h"

namespace folearn {

// Parses the concrete formula syntax produced by ToString:
//
//   formula    := or_expr [ '->' formula ]
//   or_expr    := and_expr ( '|' and_expr )*
//   and_expr   := unary ( '&' unary )*
//   unary      := '!' unary
//              |  ('exists' | 'forall') ident '.' formula
//              |  '(' formula ')'
//              |  'true' | 'false'
//              |  'E' '(' ident ',' ident ')'
//              |  ident '(' ident ')'          (colour atom)
//              |  ident '=' ident              (equality atom)
//
// Identifiers are [A-Za-z_][A-Za-z0-9_]*; 'E', 'exists', 'forall', 'true',
// 'false' are reserved. Implication is desugared at construction.
//
// Returns std::nullopt on syntax errors (and fills *error if non-null).
std::optional<FormulaRef> ParseFormula(std::string_view text,
                                       std::string* error = nullptr);

// CHECK-failing convenience wrapper for literals in tests and examples.
FormulaRef MustParseFormula(std::string_view text);

}  // namespace folearn

#endif  // FOLEARN_FO_PARSER_H_
