#ifndef FOLEARN_FO_ENUMERATE_H_
#define FOLEARN_FO_ENUMERATE_H_

#include <string>
#include <vector>

#include "fo/formula.h"

namespace folearn {

// Bounded syntactic formula enumeration.
//
// The paper leans on the fact that FO[τ, q] is finite up to logical
// equivalence, but the count is astronomically large; the library's learners
// therefore work with types instead (see src/types). This enumerator exists
// for the *cross-checking* experiments (E9): on tiny instances it
// exhaustively materialises a syntactic slice of FO[τ, q] so the
// type-majority ERM optimum can be validated against literal
// try-every-formula search.
struct EnumerationOptions {
  // Free variables the formulas may use.
  std::vector<std::string> free_variables;
  // Colour names available for colour atoms.
  std::vector<std::string> colors;
  // Maximum quantifier rank.
  int max_quantifier_rank = 1;
  // Maximum boolean-combination depth applied per quantifier layer.
  int max_boolean_depth = 1;
  // Hard cap on the number of formulas produced.
  int max_count = 100000;
  // Include negations of generated formulas.
  bool include_negations = true;
};

// Enumerates distinct formulas (deduplicated by printed form), smaller
// strata first: atoms, then boolean combinations, then one quantifier layer,
// and so on up to max_quantifier_rank. Stops at max_count.
std::vector<FormulaRef> EnumerateFormulas(const EnumerationOptions& options);

}  // namespace folearn

#endif  // FOLEARN_FO_ENUMERATE_H_
