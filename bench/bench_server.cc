// folearnd server benchmark: what a long-lived daemon buys over the batch
// CLI, measured over the real socket protocol against an in-process server.
//   * cold vs warm learn on one session — the warm TypeRegistry + BallCache
//     must cut latency by >= 3x (the daemon's reason to exist);
//   * cold vs warm query — shared plan cache + per-graph memo;
//   * evaluate throughput and latency percentiles at concurrency 1/4/16
//     (one session per client: cross-session requests share nothing
//     mutable but the internally-locked plan cache);
//   * overload: more concurrent learns than max-inflight slots — every
//     extra request must get a status=shed response on a healthy
//     connection, never a hang or a severed one;
//   * handle-based evaluate vs shipping the full hypothesis text — the
//     registered-model path must be measurably cheaper at p50 (it skips
//     the per-request model parse and the model bytes on the wire);
//   * recovery: journaled sessions re-indexed at startup and lazily
//     re-warmed on first use, against the steady-state warm path.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_json.h"
#include "graph/fog.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "learn/model_io.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

namespace {

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/folearn_bench_server_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

// A coloured random tree with periodic (non-realisable) labels, so learns
// never early-stop at zero error and every run does the same full scan.
struct Problem {
  std::string graph_text;
  std::string data_text;
  int n = 0;
};

Problem MakeProblem(int n, int seed) {
  Rng rng(seed);
  Graph graph = MakeRandomTree(n, rng);
  ColorId red = graph.AddColor("Red");
  for (Vertex v = 0; v < n; v += 3) graph.SetColor(v, red);
  TrainingSet data;
  for (Vertex v = 0; v < n; ++v) data.push_back({{v}, v % 7 < 3});
  return {ToText(graph), TrainingSetToText(data), n};
}

// In-process server plus its serve thread; sockets are real.
class ServerHarness {
 public:
  explicit ServerHarness(ServerOptions options) {
    options.socket_path = UniqueSocketPath();
    server_ = std::make_unique<Server>(std::move(options));
    Status started = server_->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "bench_server: %s\n", started.message().c_str());
      std::exit(1);
    }
    thread_ = std::thread([this] { server_->Serve(); });
  }

  ~ServerHarness() {
    server_->Shutdown();
    thread_.join();
  }

  Client Connect() {
    StatusOr<Client> client = Client::Connect(server_->socket_path());
    if (!client.ok()) {
      std::fprintf(stderr, "bench_server: %s\n",
                   client.status().message().c_str());
      std::exit(1);
    }
    return *std::move(client);
  }

  ServerStats Snapshot() const { return server_->Snapshot(); }

 private:
  std::unique_ptr<Server> server_;
  std::thread thread_;
};

Message LearnRequest(uint64_t session, const Problem& problem) {
  Message request;
  request.Set("op", "learn");
  request.Set("session", std::to_string(session));
  request.Set("data", problem.data_text);
  request.Set("rank", "1");
  request.Set("radius", "2");
  return request;
}

double Percentile(std::vector<double> sorted, double pct) {
  size_t index = static_cast<size_t>(pct / 100.0 * (sorted.size() - 1));
  return sorted[std::min(index, sorted.size() - 1)];
}

// Cold = first request on a fresh session (empty registry, empty ball
// cache, no memo); warm = the identical request repeated on the same
// session. Best-of-k on both sides so the ratio measures the caches, not
// scheduler noise. Returns non-zero on a determinism or speedup violation.
int BenchColdVsWarm(const Problem& problem, BenchJsonWriter& json) {
  ServerHarness harness((ServerOptions()));
  Client client = harness.Connect();

  const int kReps = 5;
  double learn_cold_ms = 1e300;
  double learn_warm_ms = 1e300;
  double query_cold_ms = 1e300;
  double query_warm_ms = 1e300;
  std::string cold_model;
  std::string warm_model;
  for (int rep = 0; rep < kReps; ++rep) {
    StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
    if (!session.ok()) {
      std::fprintf(stderr, "bench_server: %s\n",
                   session.status().message().c_str());
      return 1;
    }

    Message learn = LearnRequest(*session, problem);
    Stopwatch cold_watch;
    StatusOr<Message> cold = client.Call(learn);
    learn_cold_ms = std::min(learn_cold_ms, cold_watch.ElapsedMillis());
    if (!cold.ok() || cold->Get("status") != kStatusOk) return 1;
    cold_model = cold->Get("model");

    // Same session, same request: the registry holds every realised type
    // and the ball cache every ball the scan touches.
    for (int warm_rep = 0; warm_rep < 3; ++warm_rep) {
      Stopwatch warm_watch;
      StatusOr<Message> warm = client.Call(learn);
      learn_warm_ms = std::min(learn_warm_ms, warm_watch.ElapsedMillis());
      if (!warm.ok() || warm->Get("status") != kStatusOk) return 1;
      warm_model = warm->Get("model");
      if (warm_model != cold_model) {
        std::printf("VIOLATION: warm learn changed the model!\n");
        return 1;
      }
    }

    Message query;
    query.Set("op", "query");
    query.Set("session", std::to_string(*session));
    query.Set("sentence",
              "exists x. exists y. exists z. "
              "(E(x, y) & E(y, z) & Red(x) & Red(y) & Red(z))");
    Stopwatch query_cold_watch;
    StatusOr<Message> first = client.Call(query);
    query_cold_ms =
        std::min(query_cold_ms, query_cold_watch.ElapsedMillis());
    if (!first.ok() || first->Get("status") != kStatusOk) return 1;
    for (int warm_rep = 0; warm_rep < 3; ++warm_rep) {
      Stopwatch query_warm_watch;
      StatusOr<Message> again = client.Call(query);
      query_warm_ms =
          std::min(query_warm_ms, query_warm_watch.ElapsedMillis());
      if (!again.ok() || again->Get("result") != first->Get("result")) {
        std::printf("VIOLATION: warm query changed the answer!\n");
        return 1;
      }
    }

    // Next rep starts cold again on a brand-new session.
    Message close;
    close.Set("op", "close-session");
    close.Set("session", std::to_string(*session));
    (void)client.Call(close);
  }

  std::printf("cold vs warm, one session (n = %d, rank 1, radius 2, "
              "best-of-%d):\n\n", problem.n, kReps);
  Table table({"request", "cold ms", "warm ms", "speedup"});
  table.AddRow({"learn", FormatDouble(learn_cold_ms, 3),
                FormatDouble(learn_warm_ms, 3),
                FormatDouble(learn_cold_ms / learn_warm_ms, 2)});
  table.AddRow({"query", FormatDouble(query_cold_ms, 3),
                FormatDouble(query_warm_ms, 3),
                FormatDouble(query_cold_ms / query_warm_ms, 2)});
  table.Print();

  std::string config = "n=" + std::to_string(problem.n) + " rank=1 radius=2";
  json.Record("server/learn", "variant=cold " + config, learn_cold_ms,
              problem.n);
  json.Record("server/learn", "variant=warm " + config, learn_warm_ms,
              problem.n);
  json.Record("server/query", "variant=cold " + config, query_cold_ms, 1);
  json.Record("server/query", "variant=warm " + config, query_warm_ms, 1);

  // The headline criterion: a repeated request against warm caches (the
  // shared plan cache plus the session's per-graph memo) must be at
  // least 3x cheaper than the same request against a cold session. The
  // learn rows reuse the session ball cache and registry, which only
  // shaves the ball-extraction share of the scan — reported, but the
  // hard floor applies to the fully-memoised path.
  if (query_cold_ms < 3.0 * query_warm_ms) {
    std::printf("VIOLATION: warm query is only %.2fx faster than cold "
                "(need >= 3x)!\n", query_cold_ms / query_warm_ms);
    return 1;
  }
  return 0;
}

// Evaluate throughput at growing client counts. Sessions (one per client)
// and the learned model are set up off the clock; the timed region is
// pure request traffic. max_inflight is raised above the largest client
// count so this leg measures throughput, not shedding.
int BenchThroughput(const Problem& problem, BenchJsonWriter& json) {
  ServerOptions options;
  options.max_inflight = 32;
  ServerHarness harness(std::move(options));

  // One learned model, reused by every evaluate request.
  Client setup = harness.Connect();
  StatusOr<uint64_t> setup_session = setup.LoadGraph(problem.graph_text);
  if (!setup_session.ok()) return 1;
  StatusOr<Message> learned =
      setup.Call(LearnRequest(*setup_session, problem));
  if (!learned.ok() || learned->Get("status") != kStatusOk) return 1;
  std::string model = learned->Get("model");

  std::printf("\nevaluate throughput (n = %d, one session per client, "
              "40 requests each):\n\n", problem.n);
  Table table({"clients", "requests", "req/s", "p50 ms", "p99 ms"});
  for (int clients : {1, 4, 16}) {
    const int kRequestsPerClient = 40;
    std::vector<Client> connections;
    std::vector<uint64_t> sessions;
    for (int c = 0; c < clients; ++c) {
      connections.push_back(harness.Connect());
      StatusOr<uint64_t> session =
          connections.back().LoadGraph(problem.graph_text);
      if (!session.ok()) return 1;
      sessions.push_back(*session);
      // Prime the session's evaluator memo so the timed region measures
      // steady-state traffic, matching a daemon that has been up a while.
      Message prime;
      prime.Set("op", "evaluate");
      prime.Set("session", std::to_string(*session));
      prime.Set("model", model);
      prime.Set("data", problem.data_text);
      StatusOr<Message> primed = connections.back().Call(prime);
      if (!primed.ok() || primed->Get("status") != kStatusOk) return 1;
    }

    std::vector<std::vector<double>> latencies(clients);
    std::atomic<int> failures{0};
    Stopwatch watch;
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        Message request;
        request.Set("op", "evaluate");
        request.Set("session", std::to_string(sessions[c]));
        request.Set("model", model);
        request.Set("data", problem.data_text);
        for (int r = 0; r < kRequestsPerClient; ++r) {
          Stopwatch request_watch;
          StatusOr<Message> response = connections[c].Call(request);
          latencies[c].push_back(request_watch.ElapsedMillis());
          if (!response.ok() || response->Get("status") != kStatusOk) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    double elapsed_ms = watch.ElapsedMillis();
    if (failures.load() != 0) {
      std::printf("VIOLATION: %d evaluate requests failed under "
                  "concurrency %d!\n", failures.load(), clients);
      return 1;
    }

    std::vector<double> all;
    for (const std::vector<double>& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    std::sort(all.begin(), all.end());
    long long requests = static_cast<long long>(all.size());
    double per_second = requests / (elapsed_ms / 1000.0);
    double p50 = Percentile(all, 50.0);
    double p99 = Percentile(all, 99.0);
    table.AddRow({std::to_string(clients), std::to_string(requests),
                  FormatDouble(per_second, 1), FormatDouble(p50, 3),
                  FormatDouble(p99, 3)});

    std::string config = "clients=" + std::to_string(clients) +
                         " n=" + std::to_string(problem.n);
    json.Record("server/evaluate_throughput", config, elapsed_ms, requests);
    json.Record("server/evaluate_p50", config, p50, 1);
    json.Record("server/evaluate_p99", config, p99, 1);
  }
  table.Print();
  return 0;
}

// More concurrent learns than admission slots: the overflow must be shed
// with a well-formed response, and the daemon must stay responsive to
// control-plane pings throughout.
int BenchOverload(const Problem& problem, BenchJsonWriter& json) {
  ServerOptions options;
  options.max_inflight = 1;
  ServerHarness harness(std::move(options));

  const int kClients = 6;
  std::vector<Client> connections;
  std::vector<uint64_t> sessions;
  for (int c = 0; c < kClients; ++c) {
    connections.push_back(harness.Connect());
    StatusOr<uint64_t> session =
        connections.back().LoadGraph(problem.graph_text);
    if (!session.ok()) return 1;
    sessions.push_back(*session);
  }

  std::atomic<int> ok{0};
  std::atomic<int> shed{0};
  std::atomic<int> severed{0};
  Stopwatch watch;
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      StatusOr<Message> response =
          connections[c].Call(LearnRequest(sessions[c], problem));
      if (!response.ok()) {
        severed.fetch_add(1);
      } else if (response->Get("status") == kStatusShed) {
        shed.fetch_add(1);
      } else if (response->Get("status") == kStatusOk) {
        ok.fetch_add(1);
      }
    });
  }
  // The control plane must answer while the one admitted learn runs.
  Client pinger = harness.Connect();
  Message ping;
  ping.Set("op", "ping");
  StatusOr<Message> pinged = pinger.Call(ping);
  bool ping_ok = pinged.ok() && pinged->Get("status") == kStatusOk;
  for (std::thread& worker : workers) worker.join();
  double elapsed_ms = watch.ElapsedMillis();

  std::printf("\noverload (%d concurrent learns, max-inflight 1): "
              "%d ok, %d shed, %d severed, ping %s, %.1f ms\n",
              kClients, ok.load(), shed.load(), severed.load(),
              ping_ok ? "ok" : "FAILED", elapsed_ms);
  json.Record("server/overload",
              "clients=" + std::to_string(kClients) + " max-inflight=1",
              elapsed_ms, shed.load());

  if (severed.load() != 0 || !ping_ok ||
      ok.load() + shed.load() != kClients) {
    std::printf("VIOLATION: overload must shed, never hang or sever!\n");
    return 1;
  }
  if (shed.load() == 0) {
    std::printf("VIOLATION: no request was shed at max-inflight 1!\n");
    return 1;
  }
  return 0;
}

// Evaluate by model handle vs by shipped hypothesis text, same session,
// same data. The handle path skips the per-request ParseHypothesis and
// keeps the model bytes off the wire; its p50 must come in below the
// full-text path (the re-parse BENCH p50 was dominated by).
int BenchHandleEvaluate(const Problem& problem, BenchJsonWriter& json) {
  ServerHarness harness((ServerOptions()));
  Client client = harness.Connect();
  StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
  if (!session.ok()) return 1;
  StatusOr<Message> learned = client.Call(LearnRequest(*session, problem));
  if (!learned.ok() || learned->Get("status") != kStatusOk) return 1;
  const std::string model = learned->Get("model");
  const std::string model_id = learned->Get("model-id");

  // A handful of examples: the evaluation itself is nearly free, so the
  // measured gap is the cost the handle path removes — re-parsing the
  // hypothesis on every request and shipping its bytes over the wire.
  TrainingSet tiny;
  for (Vertex v = 0; v < 4; ++v) tiny.push_back({{v}, v % 2 == 0});
  const std::string tiny_data = TrainingSetToText(tiny);

  Message by_text;
  by_text.Set("op", "evaluate");
  by_text.Set("session", std::to_string(*session));
  by_text.Set("model", model);
  by_text.Set("data", tiny_data);
  Message by_handle;
  by_handle.Set("op", "evaluate");
  by_handle.Set("session", std::to_string(*session));
  by_handle.Set("model-id", model_id);
  by_handle.Set("data", tiny_data);

  // Prime both paths (plan cache, session memo), then measure.
  for (const Message* request : {&by_text, &by_handle}) {
    StatusOr<Message> primed = client.Call(*request);
    if (!primed.ok() || primed->Get("status") != kStatusOk) return 1;
  }
  const int kReps = 60;
  std::vector<double> text_ms;
  std::vector<double> handle_ms;
  std::string text_error;
  std::string handle_error;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch text_watch;
    StatusOr<Message> text_response = client.Call(by_text);
    text_ms.push_back(text_watch.ElapsedMillis());
    if (!text_response.ok()) return 1;
    text_error = text_response->Get("error");
    Stopwatch handle_watch;
    StatusOr<Message> handle_response = client.Call(by_handle);
    handle_ms.push_back(handle_watch.ElapsedMillis());
    if (!handle_response.ok()) return 1;
    handle_error = handle_response->Get("error");
  }
  if (text_error != handle_error) {
    std::printf("VIOLATION: handle evaluate disagrees with full text!\n");
    return 1;
  }
  std::sort(text_ms.begin(), text_ms.end());
  std::sort(handle_ms.begin(), handle_ms.end());
  const double text_p50 = Percentile(text_ms, 50.0);
  const double handle_p50 = Percentile(handle_ms, 50.0);

  std::printf("\nevaluate: model handle vs full hypothesis text "
              "(n = %d, %zu examples, %d reps):\n\n",
              problem.n, tiny.size(), kReps);
  Table table({"path", "p50 ms", "p99 ms"});
  table.AddRow({"full text", FormatDouble(text_p50, 4),
                FormatDouble(Percentile(text_ms, 99.0), 4)});
  table.AddRow({"model-id", FormatDouble(handle_p50, 4),
                FormatDouble(Percentile(handle_ms, 99.0), 4)});
  table.Print();

  std::string config = "n=" + std::to_string(problem.n);
  json.Record("server/evaluate_fulltext_p50", config, text_p50, 1);
  json.Record("server/evaluate_handle_p50", config, handle_p50, 1);
  if (handle_p50 >= text_p50) {
    std::printf("VIOLATION: handle evaluate p50 (%.4f ms) is not below "
                "the full-text path (%.4f ms)!\n", handle_p50, text_p50);
    return 1;
  }
  return 0;
}

// Restart cost with a journaled state dir: Start() re-indexes every
// session without parsing anything, the first request on a recovered
// session pays the lazy re-warm (graph + model parse), and the second is
// back on the steady-state warm path.
int BenchRecovery(const Problem& problem, BenchJsonWriter& json) {
  const std::string state_dir =
      "/tmp/folearn_bench_server_state_" + std::to_string(::getpid());
  std::string scrub = "rm -rf '" + state_dir + "'";
  if (std::system(scrub.c_str()) != 0) return 1;
  ServerOptions options;
  options.state_dir = state_dir;

  const int kSessions = 8;
  std::string model;
  std::string model_id;
  uint64_t first_session = 0;
  {
    ServerHarness harness(options);
    Client client = harness.Connect();
    for (int s = 0; s < kSessions; ++s) {
      StatusOr<uint64_t> session = client.LoadGraph(problem.graph_text);
      if (!session.ok()) return 1;
      if (s == 0) first_session = *session;
      StatusOr<Message> learned =
          client.Call(LearnRequest(*session, problem));
      if (!learned.ok() || learned->Get("status") != kStatusOk) return 1;
      if (s == 0) {
        model = learned->Get("model");
        model_id = learned->Get("model-id");
      }
    }
  }  // clean shutdown; every session lives only in the journal now

  options.socket_path = UniqueSocketPath();
  ServerOptions restart_options = options;
  Server server(std::move(restart_options));
  Stopwatch start_watch;
  if (!server.Start().ok()) return 1;
  const double start_ms = start_watch.ElapsedMillis();
  std::thread serve([&server] { server.Serve(); });
  StatusOr<Client> client = Client::Connect(server.socket_path());
  if (!client.ok()) return 1;

  // Tiny evaluation payload: the delta between the first and second
  // request is then the lazy re-warm itself (journal read, graph parse,
  // model parse), not the evaluation work.
  TrainingSet tiny;
  for (Vertex v = 0; v < 4; ++v) tiny.push_back({{v}, v % 2 == 0});
  Message evaluate;
  evaluate.Set("op", "evaluate");
  evaluate.Set("session", std::to_string(first_session));
  evaluate.Set("model-id", model_id);
  evaluate.Set("data", TrainingSetToText(tiny));
  Stopwatch first_watch;
  StatusOr<Message> first = client->Call(evaluate);
  const double first_ms = first_watch.ElapsedMillis();
  if (!first.ok() || first->Get("status") != kStatusOk) return 1;
  Stopwatch warm_watch;
  StatusOr<Message> warm = client->Call(evaluate);
  const double warm_ms = warm_watch.ElapsedMillis();
  if (!warm.ok() || warm->Get("status") != kStatusOk) return 1;

  // Recovery must be complete and byte-faithful before it is fast.
  Message get;
  get.Set("op", "get-model");
  get.Set("session", std::to_string(first_session));
  get.Set("model-id", model_id);
  StatusOr<Message> fetched = client->Call(get);
  ServerStats stats = server.Snapshot();
  server.Shutdown();
  serve.join();
  if (std::system(scrub.c_str()) != 0) return 1;
  if (!fetched.ok() || fetched->Get("model") != model) {
    std::printf("VIOLATION: recovered model is not byte-identical!\n");
    return 1;
  }
  if (stats.sessions_recovered != kSessions) {
    std::printf("VIOLATION: recovered %lld of %d journaled sessions!\n",
                static_cast<long long>(stats.sessions_recovered),
                kSessions);
    return 1;
  }

  std::printf("\nrecovery (%d journaled sessions, n = %d): "
              "start %.3f ms, first evaluate (re-warm) %.3f ms, "
              "steady-state %.3f ms\n",
              kSessions, problem.n, start_ms, first_ms, warm_ms);
  std::string config =
      "sessions=" + std::to_string(kSessions) + " n=" +
      std::to_string(problem.n);
  json.Record("server/recovery_start", config, start_ms, kSessions);
  json.Record("server/recovery_first_evaluate", config, first_ms, 1);
  json.Record("server/recovery_warm_evaluate", config, warm_ms, 1);
  return 0;
}

// Pressure ladder: the same evaluate workload at green, yellow and red —
// the degraded tiers must answer identically, just slower (yellow: caches
// frozen read-through; red: idle warm state demoted between requests).
// The session rides a .fog pack, the one graph form admitted under
// pressure. Then the black-tier contract: every substantive request is
// shed retry-safe while heartbeats answer — a daemon that computes at
// black is one OOM kill away from losing every session.
int BenchPressureTiers(BenchJsonWriter& json) {
  const int n = 120;
  Rng rng(2024);
  Graph graph = MakeRandomTree(n, rng);
  ColorId red = graph.AddColor("Red");
  for (Vertex v = 0; v < n; v += 3) graph.SetColor(v, red);
  TrainingSet data;
  for (Vertex v = 0; v < n; ++v) data.push_back({{v}, v % 7 < 3});
  const std::string data_text = TrainingSetToText(data);
  graph.Finalize();
  const std::string fog_path = "/tmp/folearn_bench_pressure_" +
                               std::to_string(::getpid()) + ".fog";
  if (!WriteFogFile(fog_path, graph).ok()) return 1;

  const int kRequests = 60;
  Table table({"tier", "evaluate p50 ms", "p99 ms"});
  for (int tier = 0; tier <= 2; ++tier) {
    ServerOptions options;
    options.force_tier = tier;
    options.mem_watchdog_ms = 20;  // red: demotions actually interleave
    ServerHarness harness(std::move(options));
    Client client = harness.Connect();
    Message load;
    load.Set("op", "load-graph");
    load.Set("graph-file", fog_path);
    StatusOr<Message> loaded = client.Call(load);
    if (!loaded.ok() || loaded->Get("status") != kStatusOk) {
      std::remove(fog_path.c_str());
      return 1;
    }
    const std::string session = loaded->Get("session");
    Message learn;
    learn.Set("op", "learn");
    learn.Set("session", session);
    learn.Set("data", data_text);
    learn.Set("rank", "1");
    learn.Set("radius", "1");
    StatusOr<Message> learned = client.Call(learn);
    if (!learned.ok() || learned->Get("status") != kStatusOk) {
      std::remove(fog_path.c_str());
      return 1;
    }
    Message evaluate;
    evaluate.Set("op", "evaluate");
    evaluate.Set("session", session);
    evaluate.Set("model", learned->Get("model"));
    evaluate.Set("data", data_text);
    std::vector<double> ms;
    for (int i = 0; i < kRequests; ++i) {
      Stopwatch watch;
      StatusOr<Message> response = client.Call(evaluate);
      ms.push_back(watch.ElapsedMillis());
      if (!response.ok() || response->Get("status") != kStatusOk) {
        std::printf("VIOLATION: evaluate failed under tier %d!\n", tier);
        std::remove(fog_path.c_str());
        return 1;
      }
    }
    std::sort(ms.begin(), ms.end());
    const double p50 = Percentile(ms, 50.0);
    const double p99 = Percentile(ms, 99.0);
    const char* name = PressureTierName(static_cast<PressureTier>(tier));
    table.AddRow({name, FormatDouble(p50, 4), FormatDouble(p99, 4)});
    json.Record("server/pressure_evaluate_p50",
                std::string("tier=") + name + " n=" + std::to_string(n),
                p50, 1);
    json.Record("server/pressure_evaluate_p99",
                std::string("tier=") + name + " n=" + std::to_string(n),
                p99, 1);
  }
  std::printf("\nevaluate latency across pressure tiers "
              "(n=%d, .fog-backed session):\n", n);
  table.Print();

  // Black: count substantive answers that are anything but a retry-safe
  // shed. The aggregate gate in run_benches.sh fails the run when this
  // record's work_units is non-zero.
  int nonshed = 0;
  bool ping_ok = false;
  Stopwatch watch;
  {
    ServerOptions options;
    options.force_tier = static_cast<int>(PressureTier::kBlack);
    ServerHarness harness(std::move(options));
    Client client = harness.Connect();
    for (int i = 0; i < 10; ++i) {
      Message load;
      load.Set("op", "load-graph");
      load.Set("graph-file", fog_path);
      StatusOr<Message> response = client.Call(load);
      if (!response.ok() || response->Get("status") != kStatusShed) {
        ++nonshed;
      }
    }
    Message ping;
    ping.Set("op", "ping");
    StatusOr<Message> pinged = client.Call(ping);
    ping_ok = pinged.ok() && pinged->Get("status") == kStatusOk;
  }
  const double black_ms = watch.ElapsedMillis();
  std::remove(fog_path.c_str());
  std::printf("black tier: %d/10 substantive requests shed, heartbeat %s\n",
              10 - nonshed, ping_ok ? "ok" : "FAILED");
  json.Record("server/pressure_black_nonshed", "requests=10", black_ms,
              nonshed);
  if (nonshed != 0 || !ping_ok) {
    std::printf("VIOLATION: black tier must shed substantive work and "
                "keep heartbeats!\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  std::printf("folearnd: request latency over the socket protocol "
              "(in-process server)\n\n");
  Problem problem = MakeProblem(120, 2024);
  if (int rc = BenchColdVsWarm(problem, json); rc != 0) return rc;
  if (int rc = BenchThroughput(problem, json); rc != 0) return rc;
  if (int rc = BenchOverload(problem, json); rc != 0) return rc;
  if (int rc = BenchHandleEvaluate(problem, json); rc != 0) return rc;
  if (int rc = BenchPressureTiers(json); rc != 0) return rc;
  return BenchRecovery(problem, json);
}
