// E12 — VC dimension of H_{k,ℓ,q}(G) (paper §3 + the Adler–Adler citation):
//  (a) boundedness: on nowhere dense families the VC dimension stays flat
//      as n grows (fixed k, ℓ, q, r);
//  (b) growth in the hyperparameters: ℓ and the colour diversity raise it;
//  (c) the uniform-convergence consequence: the sample bound m(ε, δ)
//      driven by the measured dimension.

#include <cstdio>

#include "bench_json.h"
#include "graph/generators.h"
#include "learn/pac.h"
#include "learn/vc.h"
#include "util/rng.h"
#include "util/table.h"

using namespace folearn;

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  BenchTotalTimer bench_total(json, "vc_dimension");
  Rng rng(90210);

  std::printf("E12a: VC dimension vs n (k=1, ℓ=0, q=1, r=1), nowhere dense "
              "families\n\n");
  {
    Table table({"family", "n", "VC", "partitions"});
    for (int n : {8, 12, 16, 24}) {
      Graph tree = MakeRandomTree(n, rng);
      AddPeriodicColor(tree, "Red", 3, 0);
      VcOptions options;
      options.rank = 1;
      options.radius = 1;
      VcResult result = ComputeVcDimension(tree, 1, options);
      table.AddRow({"random tree", std::to_string(n),
                    std::to_string(result.vc_dimension),
                    std::to_string(result.distinct_partitions)});
    }
    for (int n : {8, 12, 16}) {
      Graph path = MakePath(n);
      AddPeriodicColor(path, "Red", 3, 0);
      VcOptions options;
      options.rank = 1;
      options.radius = 1;
      VcResult result = ComputeVcDimension(path, 1, options);
      table.AddRow({"path", std::to_string(n),
                    std::to_string(result.vc_dimension),
                    std::to_string(result.distinct_partitions)});
    }
    table.Print();
    std::printf("\nVC stays flat as n triples — the uniform bound "
                "d(C, k, ℓ, q) of paper §3\n(via Adler–Adler) made "
                "visible.\n\n");
  }

  std::printf("E12b: VC dimension vs hyperparameters (path n=8 with two "
              "colours)\n\n");
  {
    Graph g = MakePath(8);
    AddPeriodicColor(g, "A", 2, 0);
    AddPeriodicColor(g, "B", 3, 0);
    Table table({"ell", "rank", "VC", "partitions"});
    for (int ell : {0, 1}) {
      for (int rank : {0, 1}) {
        VcOptions options;
        options.ell = ell;
        options.rank = rank;
        options.radius = 1;
        options.max_dimension = 7;
        VcResult result = ComputeVcDimension(g, 1, options);
        table.AddRow({std::to_string(ell), std::to_string(rank),
                      std::to_string(result.vc_dimension),
                      std::to_string(result.distinct_partitions)});
      }
    }
    table.Print();
    std::printf("\nBoth knobs of H_{k,ℓ,q} raise the dimension — ℓ through "
                "n^ℓ parameter choices,\nq through finer type "
                "partitions.\n\n");
  }

  std::printf("E12c: sample-complexity consequence (ε=0.1, δ=0.05)\n\n");
  {
    Table table({"measured VC", "m from VC (≈)", "m from ln|H| estimate"});
    Graph g = MakeRandomTree(16, rng);
    AddPeriodicColor(g, "Red", 3, 0);
    VcOptions options;
    options.rank = 1;
    options.radius = 1;
    VcResult vc = ComputeVcDimension(g, 1, options);
    // Agnostic VC bound: m = O((d + ln 1/δ)/ε²); use the same constant as
    // the finite-class bound for comparability.
    int64_t m_vc = AgnosticSampleComplexity(
        static_cast<double>(vc.vc_dimension), 0.1, 0.05);
    double ln_h = EstimateLnHypothesisCount(g, 1, 0, 1, 1, 400, rng);
    int64_t m_lnh = AgnosticSampleComplexity(ln_h, 0.1, 0.05);
    table.AddRow({std::to_string(vc.vc_dimension), std::to_string(m_vc),
                  std::to_string(m_lnh)});
    table.Print();
    std::printf("\nVC ≤ log₂|H| (paper §3): the dimension-based bound is "
                "the tighter of the two.\n");
  }
  return 0;
}
