// The bytecode VM's headline bench: the E9 rank-2 enumeration grid timed
// under all three evaluation engines — the register VM (mc/vm.h), the tree
// engine it was lowered from (mc/compiled_eval.h), and the reference
// interpreter — with every graph-independent artifact (the syntactic
// enumeration, plan compilation, bytecode lowering) hoisted out of the
// timed region via PrepareFormulas. The grid search itself is what is
// measured, so the vm/tree ratio is the dispatch-loop win, not a
// compilation-amortisation artifact.
//
// Records (via --json, aggregated into BENCH_vm.json by run_benches.sh):
//   vm/e9_grid        config "engine=<name> n=<n>"  — best-of-3 grid ms
//   vm/prepare        config "engine=<name> n=<n>"  — one-time prepare ms
//   vm/lowering       config "n=<n> phase=lower|exec" — EvalStats split
//   vm/opcode_profile config "op=<name> n=<n>"      — counting-lane
//       dispatch tally per opcode (work_units = dispatches; wall_ms is the
//       profile run's exec_ms, identical across the rows of one n)
//
// run_benches.sh fails the whole run if any e9_grid VM row is slower than
// the tree-engine row for the same n.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "fo/parser.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "mc/bytecode.h"
#include "mc/vm.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

namespace {

constexpr EvalEngine kEngines[] = {EvalEngine::kInterpreted,
                                   EvalEngine::kCompiled, EvalEngine::kVm};

// Per-opcode dispatch profile: one representative rank-2 guarded query run
// over every vertex through the counting lane (the lane that tallies
// dispatches), plus the lower/exec wall-clock split.
void ProfileOpcodes(const Graph& graph, int n, BenchJsonWriter& json) {
  FormulaRef formula = MustParseFormula(
      "exists y. (E(x1, y) & Red(y) & exists z. (E(y, z) & !Red(z)))");
  const std::vector<std::string> frame = QueryVars(1);
  CompiledFormula plan = CompileFormula(formula, frame);

  Stopwatch lower_watch;
  LoweredPlan lowered = LowerPlan(plan);
  double lower_ms = lower_watch.ElapsedMillis();

  EvalStats stats;
  stats.lower_ms = lower_ms;
  VmEvaluator vm(plan, lowered, graph, {});
  for (Vertex v = 0; v < graph.order(); ++v) {
    const std::vector<Vertex> tuple = {v};
    vm.Eval(tuple, &stats);
  }

  json.Record("vm/lowering", "n=" + std::to_string(n) + " phase=lower",
              stats.lower_ms, 1);
  json.Record("vm/lowering", "n=" + std::to_string(n) + " phase=exec",
              stats.exec_ms, graph.order());
  std::printf("\nopcode dispatch profile (counting lane, n = %d, "
              "lower %.3f ms, exec %.3f ms):\n\n",
              n, stats.lower_ms, stats.exec_ms);
  Table table({"opcode", "dispatches"});
  for (int op = 0; op < static_cast<int>(stats.vm_op_dispatches.size());
       ++op) {
    int64_t count = stats.vm_op_dispatches[op];
    if (count == 0) continue;
    const char* name = VmOpName(static_cast<VmOp>(op));
    table.AddRow({name, std::to_string(count)});
    json.Record("vm/opcode_profile",
                "op=" + std::string(name) + " n=" + std::to_string(n),
                stats.exec_ms, count);
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  Rng rng(777);
  std::printf("bytecode VM vs tree engine vs interpreter on the E9 rank-2 "
              "enumeration grid\n(plan compilation and bytecode lowering "
              "hoisted out of the timed region)\n\n");

  Table table({"n", "formulas", "interp ms", "tree ms", "vm ms",
               "vm/tree", "vm/interp"});
  int profiled_n = 0;
  Graph profiled_graph;
  for (int n : {12, 16, 20, 24}) {
    Graph graph = MakeRandomTree(n, rng);
    AddRandomColors(graph, {"Red"}, 0.4, rng);
    std::vector<std::vector<Vertex>> tuples =
        SampleTuples(graph.order(), 1, 8 * n, rng);
    TrainingSet examples = LabelByQuery(
        graph, MustParseFormula("exists z. (E(x1, z) & Red(z))"),
        QueryVars(1), tuples);
    FlipLabels(examples, 0.15, rng);

    EnumerationOptions enumeration;
    enumeration.free_variables = QueryVars(1);
    enumeration.colors = {"Red"};
    enumeration.max_quantifier_rank = 2;
    enumeration.max_boolean_depth = 1;
    enumeration.max_count = 4000;
    std::vector<FormulaRef> formulas = EnumerateFormulas(enumeration);

    const int kReps = 3;  // best-of-k: the ratio, not the noise
    double best_ms[3] = {1e300, 1e300, 1e300};
    EnumerationErmResult results[3];
    for (int e = 0; e < 3; ++e) {
      EvalEngine engine = kEngines[e];
      // One-time per-engine preparation (compile + lower), outside the
      // grid stopwatch — this is what PlanCache amortises in production.
      Stopwatch prepare_watch;
      std::vector<PreparedFormula> prepared =
          PrepareFormulas(formulas, 1, 0, engine);
      json.Record("vm/prepare",
                  "engine=" + std::string(EvalEngineName(engine)) +
                      " n=" + std::to_string(n),
                  prepare_watch.ElapsedMillis(),
                  static_cast<long long>(prepared.size()));

      EvalOptions eval;
      eval.engine = engine;
      for (int rep = 0; rep < kReps; ++rep) {
        Stopwatch watch;
        results[e] = EnumerationErm(graph, examples, 0, prepared, nullptr, 1,
                                    eval);
        best_ms[e] = std::min(best_ms[e], watch.ElapsedMillis());
      }
      json.Record("vm/e9_grid",
                  "engine=" + std::string(EvalEngineName(engine)) +
                      " n=" + std::to_string(n),
                  best_ms[e], results[e].formulas_tried);
    }

    for (int e = 1; e < 3; ++e) {
      if (results[e].training_error != results[0].training_error ||
          results[e].formulas_tried != results[0].formulas_tried) {
        std::printf("VIOLATION: engine '%s' disagrees with the "
                    "interpreter on the E9 grid!\n",
                    EvalEngineName(kEngines[e]));
        return 1;
      }
    }

    table.AddRow({std::to_string(n), std::to_string(results[0].formulas_tried),
                  FormatDouble(best_ms[0], 1), FormatDouble(best_ms[1], 1),
                  FormatDouble(best_ms[2], 1),
                  FormatDouble(best_ms[1] / best_ms[2], 2),
                  FormatDouble(best_ms[0] / best_ms[2], 2)});
    profiled_n = n;
    profiled_graph = graph;
  }
  table.Print();
  std::printf("\n'vm/tree' is the dispatch-loop win over the flattened "
              "node-tree walk on identical plans;\nall three engines return "
              "identical errors and formulas_tried on every row.\n");

  ProfileOpcodes(profiled_graph, profiled_n, json);
  return 0;
}
