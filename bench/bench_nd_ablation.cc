// E8 — ablations of the Theorem 13 learner's design knobs on a
// conflict-heavy workload (three hidden hubs, noisy labels, k = 1, ℓ* = 1):
//   (a) the Y-guess branch cap (the deterministic unrolling of the paper's
//       nondeterministic guess);
//   (b) the Splitter strategy used for parameter extraction;
//   (c) ε, which sizes the Lemma 14 centre budget ⌈kℓ*s/ε⌉.

#include <cstdio>

#include "bench_json.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "learn/nd_learner.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

namespace {

struct Workload {
  Graph graph;
  TrainingSet examples;
};

// Three disjoint star clusters; label = near hub of cluster 0 or 1 (so one
// parameter is not enough for zero error — conflicts survive step 1).
Workload ThreeHubs(int leaves, double noise, Rng& rng) {
  Workload w{DisjointCopies(MakeStar(leaves), 3), {}};
  int cluster = leaves + 1;
  std::vector<Vertex> hubs = {0, static_cast<Vertex>(cluster)};
  std::vector<int> dist = BfsDistances(w.graph, hubs);
  for (Vertex v = 0; v < w.graph.order(); ++v) {
    bool label = dist[v] != kUnreachable && dist[v] <= 1;
    if (rng.Bernoulli(noise)) label = !label;
    w.examples.push_back({{v}, label});
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  BenchTotalTimer bench_total(json, "nd_ablation");
  Rng rng(2468);
  Workload w = ThreeHubs(30, 0.05, rng);
  ErmResult brute = BruteForceErm(w.graph, w.examples, 1, {1, 1});
  ErmResult brute2 = BruteForceErm(w.graph, w.examples, 2, {1, 1});
  std::printf("E8: Theorem 13 ablations (3-cluster workload, %d examples; "
              "brute-force optimum: ℓ=1 → %.3f, ℓ=2 → %.3f)\n\n",
              static_cast<int>(w.examples.size()), brute.training_error,
              brute2.training_error);

  std::printf("E8a: branch cap (max Y-guesses per step), ℓ* = 2\n\n");
  {
    Table table({"branch cap", "train err", "candidates", "time ms"});
    for (int cap : {1, 2, 4, 8, 16}) {
      NdLearnerOptions options;
      options.rank = 1;
      options.radius = 1;
      options.ell_star = 2;
      options.epsilon = 0.2;
      options.max_branches_per_step = cap;
      Stopwatch watch;
      NdLearnerResult result = LearnNowhereDense(w.graph, w.examples,
                                                 options);
      table.AddRow({std::to_string(cap),
                    FormatDouble(result.erm.training_error, 3),
                    std::to_string(result.candidates_evaluated),
                    FormatDouble(watch.ElapsedMillis(), 1)});
    }
    table.Print();
    std::printf("\nMore branches = more of the nondeterministic guess "
                "explored = error approaches the\nbrute-force optimum, at "
                "linear extra cost.\n\n");
  }

  std::printf("E8b: Splitter strategy (ℓ* = 2, cap 8)\n\n");
  {
    Table table({"strategy", "train err", "candidates", "time ms"});
    std::vector<std::unique_ptr<SplitterStrategy>> strategies;
    strategies.push_back(MakeCenterSplitter());
    strategies.push_back(MakeTreeSplitter());
    strategies.push_back(MakeGreedyDegreeSplitter());
    for (auto& strategy : strategies) {
      NdLearnerOptions options;
      options.rank = 1;
      options.radius = 1;
      options.ell_star = 2;
      options.epsilon = 0.2;
      options.max_branches_per_step = 8;
      options.splitter = strategy.get();
      Stopwatch watch;
      NdLearnerResult result = LearnNowhereDense(w.graph, w.examples,
                                                 options);
      table.AddRow({strategy->name(),
                    FormatDouble(result.erm.training_error, 3),
                    std::to_string(result.candidates_evaluated),
                    FormatDouble(watch.ElapsedMillis(), 1)});
    }
    table.Print();
    std::printf("\nThe parameters ARE Splitter's moves (paper §5): a "
                "strategy that removes hubs finds\nthe discriminating "
                "vertices; a poor strategy still satisfies the ε guarantee "
                "via the\ncandidate pool but may need more branches.\n\n");
  }

  std::printf("E8c: ε (sizes the Lemma 14 centre budget kℓ*s/ε)\n\n");
  {
    Table table({"epsilon", "centre budget", "train err", "time ms"});
    for (double epsilon : {0.5, 0.25, 0.1, 0.05}) {
      NdLearnerOptions options;
      options.rank = 1;
      options.radius = 1;
      options.ell_star = 2;
      options.epsilon = epsilon;
      options.max_branches_per_step = 8;
      int budget = static_cast<int>(
          std::ceil(1 * options.ell_star *
                    options.EffectiveRounds(1) / epsilon));
      Stopwatch watch;
      NdLearnerResult result = LearnNowhereDense(w.graph, w.examples,
                                                 options);
      table.AddRow({FormatDouble(epsilon, 2), std::to_string(budget),
                    FormatDouble(result.erm.training_error, 3),
                    FormatDouble(watch.ElapsedMillis(), 1)});
    }
    table.Print();
    std::printf("\nSmaller ε buys a larger centre set X (more conflict mass "
                "attended) — the paper's\nerror-vs-work dial.\n");
  }
  return 0;
}
