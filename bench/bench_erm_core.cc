// E9 — the executable form of "enumerate all rank-q formulas": type-majority
// ERM vs literal formula enumeration on tiny instances.
//   * optimality: the type optimum lower-bounds every enumerated formula
//     (Corollary 6 made computational);
//   * cost: the enumeration explodes combinatorially while the type count
//     stays bounded by the number of realised local types.

#include <algorithm>
#include <cstdio>

#include "fo/parser.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "util/governor.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

// Governed-vs-ungoverned ERM core: the governor's per-type-computation
// checkpoint must stay under ~2% overhead (it is a couple of branches and
// two increments; the wall clock is only probed every 256 checkpoints).
// Fixed workload (early_stop off), best-of-k timing to suppress noise.
int BenchGovernorOverhead(Rng& rng) {
  Graph graph = MakeRandomTree(60, rng);
  AddRandomColors(graph, {"Red"}, 0.4, rng);
  std::vector<std::vector<Vertex>> tuples =
      SampleTuples(graph.order(), 1, 4 * graph.order(), rng);
  TrainingSet examples = LabelByQuery(
      graph, MustParseFormula("exists z. (E(x1, z) & Red(z))"),
      QueryVars(1), tuples);
  FlipLabels(examples, 0.3, rng);

  const int kReps = 15;
  double plain_ms = 1e300;
  double work_ms = 1e300;
  double deadline_ms = 1e300;
  double plain_error = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch plain_watch;
    ErmResult plain = BruteForceErm(graph, examples, 1, {1, -1}, nullptr,
                                    /*early_stop=*/false);
    plain_ms = std::min(plain_ms, plain_watch.ElapsedMillis());
    plain_error = plain.training_error;

    GovernorLimits work_limits;
    work_limits.max_work = int64_t{1} << 60;  // present but never trips
    ResourceGovernor work_governor(work_limits);
    ErmOptions work_options;
    work_options.governor = &work_governor;
    Stopwatch work_watch;
    ErmResult governed = BruteForceErm(graph, examples, 1, work_options,
                                       nullptr, /*early_stop=*/false);
    work_ms = std::min(work_ms, work_watch.ElapsedMillis());
    if (governed.status != RunStatus::kComplete ||
        governed.training_error != plain.training_error) {
      std::printf("VIOLATION: a non-tripping governor changed the result!\n");
      return 1;
    }

    GovernorLimits deadline_limits;
    deadline_limits.deadline_ms = 1000 * 60 * 60;  // exercises clock probes
    ResourceGovernor deadline_governor(deadline_limits);
    ErmOptions deadline_options;
    deadline_options.governor = &deadline_governor;
    Stopwatch deadline_watch;
    BruteForceErm(graph, examples, 1, deadline_options, nullptr,
                  /*early_stop=*/false);
    deadline_ms = std::min(deadline_ms, deadline_watch.ElapsedMillis());
  }

  Table table({"variant", "best ms", "overhead %"});
  table.AddRow({"ungoverned", FormatDouble(plain_ms, 3), "-"});
  table.AddRow({"work budget",
                FormatDouble(work_ms, 3),
                FormatDouble((work_ms - plain_ms) / plain_ms * 100.0, 2)});
  table.AddRow({"deadline",
                FormatDouble(deadline_ms, 3),
                FormatDouble((deadline_ms - plain_ms) / plain_ms * 100.0,
                             2)});
  table.Print();
  std::printf("\nfixed workload: full n^ℓ scan, n = %d, m = %zu, error "
              "%.3f identical across variants;\ntarget: < 2%% overhead "
              "per variant (best-of-%d timing)\n",
              graph.order(), examples.size(), plain_error, kReps);
  return 0;
}

int main() {
  Rng rng(777);
  std::printf("E9: type-majority ERM vs literal formula enumeration "
              "(noisy rank-1 target, k=1, ℓ=0)\n\n");

  Table table({"n", "types err", "types seen", "types ms", "enum err",
               "formulas tried", "enum ms"});
  for (int n : {6, 8, 10, 12}) {
    Graph graph = MakeRandomTree(n, rng);
    AddRandomColors(graph, {"Red"}, 0.4, rng);
    std::vector<std::vector<Vertex>> tuples =
        SampleTuples(graph.order(), 1, 4 * n, rng);
    TrainingSet examples = LabelByQuery(
        graph, MustParseFormula("exists z. (E(x1, z) & Red(z))"),
        QueryVars(1), tuples);
    FlipLabels(examples, 0.15, rng);

    Stopwatch type_watch;
    ErmResult types = TypeMajorityErm(graph, examples, {}, {1, -1});
    double type_ms = type_watch.ElapsedMillis();

    EnumerationOptions enumeration;
    enumeration.colors = {"Red"};
    enumeration.max_quantifier_rank = 1;
    enumeration.max_boolean_depth = 1;
    enumeration.max_count = 4000;
    Stopwatch enum_watch;
    EnumerationErmResult enumerated =
        EnumerationErm(graph, examples, 0, enumeration);
    double enum_ms = enum_watch.ElapsedMillis();

    table.AddRow({std::to_string(n), FormatDouble(types.training_error, 3),
                  std::to_string(types.distinct_types_seen),
                  FormatDouble(type_ms, 2),
                  FormatDouble(enumerated.training_error, 3),
                  std::to_string(enumerated.formulas_tried),
                  FormatDouble(enum_ms, 1)});
    if (types.training_error > enumerated.training_error + 1e-12) {
      std::printf("VIOLATION: type ERM worse than an enumerated formula!\n");
      return 1;
    }
  }
  table.Print();
  std::printf("\n'types err' ≤ 'enum err' on every row (Corollary 6: "
              "rank-q hypotheses are unions of\nlocal types, and the "
              "majority vote is the exact minimiser over those unions),\n"
              "at a tiny fraction of the enumeration cost — and the "
              "enumeration here covers only a\nbounded syntactic slice of "
              "FO[τ, 1], while the type ERM covers ALL of it.\n");

  std::printf("\ngovernor checkpoint overhead on the ERM core:\n\n");
  return BenchGovernorOverhead(rng);
}
