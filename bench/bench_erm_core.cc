// E9 — the executable form of "enumerate all rank-q formulas": type-majority
// ERM vs literal formula enumeration on tiny instances.
//   * optimality: the type optimum lower-bounds every enumerated formula
//     (Corollary 6 made computational);
//   * cost: the enumeration explodes combinatorially while the type count
//     stays bounded by the number of realised local types.

#include <cstdio>

#include "fo/parser.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

int main() {
  Rng rng(777);
  std::printf("E9: type-majority ERM vs literal formula enumeration "
              "(noisy rank-1 target, k=1, ℓ=0)\n\n");

  Table table({"n", "types err", "types seen", "types ms", "enum err",
               "formulas tried", "enum ms"});
  for (int n : {6, 8, 10, 12}) {
    Graph graph = MakeRandomTree(n, rng);
    AddRandomColors(graph, {"Red"}, 0.4, rng);
    std::vector<std::vector<Vertex>> tuples =
        SampleTuples(graph.order(), 1, 4 * n, rng);
    TrainingSet examples = LabelByQuery(
        graph, MustParseFormula("exists z. (E(x1, z) & Red(z))"),
        QueryVars(1), tuples);
    FlipLabels(examples, 0.15, rng);

    Stopwatch type_watch;
    ErmResult types = TypeMajorityErm(graph, examples, {}, {1, -1});
    double type_ms = type_watch.ElapsedMillis();

    EnumerationOptions enumeration;
    enumeration.colors = {"Red"};
    enumeration.max_quantifier_rank = 1;
    enumeration.max_boolean_depth = 1;
    enumeration.max_count = 4000;
    Stopwatch enum_watch;
    EnumerationErmResult enumerated =
        EnumerationErm(graph, examples, 0, enumeration);
    double enum_ms = enum_watch.ElapsedMillis();

    table.AddRow({std::to_string(n), FormatDouble(types.training_error, 3),
                  std::to_string(types.distinct_types_seen),
                  FormatDouble(type_ms, 2),
                  FormatDouble(enumerated.training_error, 3),
                  std::to_string(enumerated.formulas_tried),
                  FormatDouble(enum_ms, 1)});
    if (types.training_error > enumerated.training_error + 1e-12) {
      std::printf("VIOLATION: type ERM worse than an enumerated formula!\n");
      return 1;
    }
  }
  table.Print();
  std::printf("\n'types err' ≤ 'enum err' on every row (Corollary 6: "
              "rank-q hypotheses are unions of\nlocal types, and the "
              "majority vote is the exact minimiser over those unions),\n"
              "at a tiny fraction of the enumeration cost — and the "
              "enumeration here covers only a\nbounded syntactic slice of "
              "FO[τ, 1], while the type ERM covers ALL of it.\n");
  return 0;
}
