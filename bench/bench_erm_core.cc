// E9 — the executable form of "enumerate all rank-q formulas": type-majority
// ERM vs literal formula enumeration on tiny instances.
//   * optimality: the type optimum lower-bounds every enumerated formula
//     (Corollary 6 made computational);
//   * cost: the enumeration explodes combinatorially while the type count
//     stays bounded by the number of realised local types.

#include <algorithm>
#include <cstdio>

#include "bench_json.h"
#include "fo/parser.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "util/governor.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

// Governed-vs-ungoverned ERM core: the governor's per-type-computation
// checkpoint must stay under ~2% overhead (it is a couple of branches and
// two increments; the wall clock is only probed every 256 checkpoints).
// Fixed workload (early_stop off), best-of-k timing to suppress noise.
int BenchGovernorOverhead(Rng& rng, BenchJsonWriter& json) {
  Graph graph = MakeRandomTree(60, rng);
  AddRandomColors(graph, {"Red"}, 0.4, rng);
  std::vector<std::vector<Vertex>> tuples =
      SampleTuples(graph.order(), 1, 4 * graph.order(), rng);
  TrainingSet examples = LabelByQuery(
      graph, MustParseFormula("exists z. (E(x1, z) & Red(z))"),
      QueryVars(1), tuples);
  FlipLabels(examples, 0.3, rng);

  const int kReps = 15;
  double plain_ms = 1e300;
  double work_ms = 1e300;
  double deadline_ms = 1e300;
  double plain_error = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch plain_watch;
    ErmResult plain = BruteForceErm(graph, examples, 1, {1, -1}, nullptr,
                                    /*early_stop=*/false);
    plain_ms = std::min(plain_ms, plain_watch.ElapsedMillis());
    plain_error = plain.training_error;

    GovernorLimits work_limits;
    work_limits.max_work = int64_t{1} << 60;  // present but never trips
    ResourceGovernor work_governor(work_limits);
    ErmOptions work_options;
    work_options.governor = &work_governor;
    Stopwatch work_watch;
    ErmResult governed = BruteForceErm(graph, examples, 1, work_options,
                                       nullptr, /*early_stop=*/false);
    work_ms = std::min(work_ms, work_watch.ElapsedMillis());
    if (governed.status != RunStatus::kComplete ||
        governed.training_error != plain.training_error) {
      std::printf("VIOLATION: a non-tripping governor changed the result!\n");
      return 1;
    }

    GovernorLimits deadline_limits;
    deadline_limits.deadline_ms = 1000 * 60 * 60;  // exercises clock probes
    ResourceGovernor deadline_governor(deadline_limits);
    ErmOptions deadline_options;
    deadline_options.governor = &deadline_governor;
    Stopwatch deadline_watch;
    BruteForceErm(graph, examples, 1, deadline_options, nullptr,
                  /*early_stop=*/false);
    deadline_ms = std::min(deadline_ms, deadline_watch.ElapsedMillis());
  }

  Table table({"variant", "best ms", "overhead %"});
  table.AddRow({"ungoverned", FormatDouble(plain_ms, 3), "-"});
  table.AddRow({"work budget",
                FormatDouble(work_ms, 3),
                FormatDouble((work_ms - plain_ms) / plain_ms * 100.0, 2)});
  table.AddRow({"deadline",
                FormatDouble(deadline_ms, 3),
                FormatDouble((deadline_ms - plain_ms) / plain_ms * 100.0,
                             2)});
  table.Print();
  std::printf("\nfixed workload: full n^ℓ scan, n = %d, m = %zu, error "
              "%.3f identical across variants;\ntarget: < 2%% overhead "
              "per variant (best-of-%d timing)\n",
              graph.order(), examples.size(), plain_error, kReps);
  const long long scan = static_cast<long long>(graph.order());
  json.Record("erm_core/governor", "variant=ungoverned", plain_ms, scan);
  json.Record("erm_core/governor", "variant=work-budget", work_ms, scan);
  json.Record("erm_core/governor", "variant=deadline", deadline_ms, scan);
  return 0;
}

// Thread sweep on the full brute-force parameter scan plus cold-vs-warm
// ball-cache timings. The determinism contract means every row computes
// the same result; only the wall clock may move. On a single-core host
// the threaded rows measure the coordination overhead, not a speedup —
// the JSON records whatever this machine actually does.
int BenchParallelSweep(Rng& rng, BenchJsonWriter& json) {
  Graph graph = MakeRandomTree(60, rng);
  AddRandomColors(graph, {"Red"}, 0.4, rng);
  std::vector<std::vector<Vertex>> tuples =
      SampleTuples(graph.order(), 1, 4 * graph.order(), rng);
  TrainingSet examples = LabelByQuery(
      graph, MustParseFormula("exists z. (E(x1, z) & Red(z))"),
      QueryVars(1), tuples);
  FlipLabels(examples, 0.3, rng);

  const int kReps = 5;
  std::printf("\nparallel brute-force sweep (full n^ℓ scan, n = %d, "
              "m = %zu, best-of-%d):\n\n",
              graph.order(), examples.size(), kReps);
  Table table({"threads", "best ms", "speedup", "error"});
  double base_ms = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    double best_ms = 1e300;
    double error = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      ErmOptions options;
      options.threads = threads;
      Stopwatch watch;
      ErmResult result = BruteForceErm(graph, examples, 1, options, nullptr,
                                       /*early_stop=*/false);
      best_ms = std::min(best_ms, watch.ElapsedMillis());
      error = result.training_error;
    }
    if (threads == 1) base_ms = best_ms;
    table.AddRow({std::to_string(threads), FormatDouble(best_ms, 3),
                  FormatDouble(base_ms / best_ms, 2),
                  FormatDouble(error, 3)});
    json.Record("erm_core/thread_sweep",
                "threads=" + std::to_string(threads) +
                    " n=" + std::to_string(graph.order()),
                best_ms, static_cast<long long>(graph.order()));
  }
  table.Print();
  std::printf("(hardware threads available: %d)\n", EffectiveThreads(0));

  std::printf("\nball cache, cold vs warm (same scan, threads = 1):\n\n");
  Table cache_table({"variant", "best ms", "hits", "misses"});
  double cold_ms = 1e300;
  double warm_ms = 1e300;
  long long hits = 0;
  long long misses = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    BallCache cold_cache(graph);
    ErmOptions cold_options;
    cold_options.ball_cache = &cold_cache;
    Stopwatch cold_watch;
    BruteForceErm(graph, examples, 1, cold_options, nullptr,
                  /*early_stop=*/false);
    cold_ms = std::min(cold_ms, cold_watch.ElapsedMillis());

    // Warm: same cache reused — every per-vertex ball is already there.
    ErmOptions warm_options;
    warm_options.ball_cache = &cold_cache;
    Stopwatch warm_watch;
    BruteForceErm(graph, examples, 1, warm_options, nullptr,
                  /*early_stop=*/false);
    warm_ms = std::min(warm_ms, warm_watch.ElapsedMillis());
    hits = cold_cache.hits();
    misses = cold_cache.misses();
  }
  cache_table.AddRow({"cold", FormatDouble(cold_ms, 3), "-", "-"});
  cache_table.AddRow({"warm", FormatDouble(warm_ms, 3),
                      std::to_string(hits), std::to_string(misses)});
  cache_table.Print();
  json.Record("erm_core/ball_cache", "variant=cold", cold_ms,
              static_cast<long long>(examples.size()));
  json.Record("erm_core/ball_cache", "variant=warm", warm_ms,
              static_cast<long long>(examples.size()));
  return 0;
}

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  Rng rng(777);
  std::printf("E9: type-majority ERM vs literal formula enumeration "
              "(noisy rank-1 target, rank-2 slice, k=1, ℓ=0)\n\n");

  Table table({"n", "types err", "types seen", "types ms", "enum err",
               "formulas tried", "vm ms", "tree ms", "interp ms",
               "vm/tree", "interp/vm"});
  for (int n : {12, 16, 20, 24}) {
    Graph graph = MakeRandomTree(n, rng);
    AddRandomColors(graph, {"Red"}, 0.4, rng);
    std::vector<std::vector<Vertex>> tuples =
        SampleTuples(graph.order(), 1, 8 * n, rng);
    TrainingSet examples = LabelByQuery(
        graph, MustParseFormula("exists z. (E(x1, z) & Red(z))"),
        QueryVars(1), tuples);
    FlipLabels(examples, 0.15, rng);

    Stopwatch type_watch;
    ErmResult types = TypeMajorityErm(graph, examples, {}, {2, -1});
    double type_ms = type_watch.ElapsedMillis();

    // Enumerate the rank-2 syntactic slice ONCE, outside the stopwatches:
    // the enumeration is pure formula syntax (identical for every eval
    // mode) and would otherwise swamp the grid-search timing. Per-engine
    // PrepareFormulas then hoists plan compilation AND bytecode lowering
    // out of the timed region too (mirroring the production PlanCache), so
    // the rows measure the search itself under all three engines: the
    // bytecode VM (the default), the tree engine, and the interpreted
    // reference oracle.
    EnumerationOptions enumeration;
    enumeration.free_variables = QueryVars(1);
    enumeration.colors = {"Red"};
    enumeration.max_quantifier_rank = 2;
    enumeration.max_boolean_depth = 1;
    enumeration.max_count = 4000;
    std::vector<FormulaRef> formulas = EnumerateFormulas(enumeration);

    constexpr EvalEngine kEngines[] = {
        EvalEngine::kVm, EvalEngine::kCompiled, EvalEngine::kInterpreted};
    const int kGridReps = 3;  // best-of-k: the ratio, not the noise
    double engine_ms[3] = {1e300, 1e300, 1e300};
    EnumerationErmResult engine_results[3];
    for (int e = 0; e < 3; ++e) {
      std::vector<PreparedFormula> prepared =
          PrepareFormulas(formulas, 1, 0, kEngines[e]);
      EvalOptions eval;
      eval.engine = kEngines[e];
      for (int rep = 0; rep < kGridReps; ++rep) {
        Stopwatch watch;
        engine_results[e] =
            EnumerationErm(graph, examples, 0, prepared, nullptr, 1, eval);
        engine_ms[e] = std::min(engine_ms[e], watch.ElapsedMillis());
      }
    }
    const double vm_ms = engine_ms[0];
    const double tree_ms = engine_ms[1];
    const double interp_ms = engine_ms[2];
    const EnumerationErmResult& enumerated = engine_results[0];

    table.AddRow({std::to_string(n), FormatDouble(types.training_error, 3),
                  std::to_string(types.distinct_types_seen),
                  FormatDouble(type_ms, 2),
                  FormatDouble(enumerated.training_error, 3),
                  std::to_string(enumerated.formulas_tried),
                  FormatDouble(vm_ms, 1), FormatDouble(tree_ms, 1),
                  FormatDouble(interp_ms, 1),
                  FormatDouble(tree_ms / vm_ms, 2),
                  FormatDouble(interp_ms / vm_ms, 2)});
    json.Record("erm_core/e9_types", "n=" + std::to_string(n), type_ms,
                types.distinct_types_seen);
    json.Record("erm_core/e9_enumeration", "n=" + std::to_string(n), vm_ms,
                enumerated.formulas_tried);
    json.Record("erm_core/e9_enumeration_tree", "n=" + std::to_string(n),
                tree_ms, engine_results[1].formulas_tried);
    json.Record("erm_core/e9_enumeration_interpreted",
                "n=" + std::to_string(n), interp_ms,
                engine_results[2].formulas_tried);
    if (types.training_error > enumerated.training_error + 1e-12) {
      std::printf("VIOLATION: type ERM worse than an enumerated formula!\n");
      return 1;
    }
    for (int e = 1; e < 3; ++e) {
      if (engine_results[e].training_error != enumerated.training_error ||
          engine_results[e].formulas_tried != enumerated.formulas_tried) {
        std::printf("VIOLATION: the %s and vm grids disagree!\n",
                    EvalEngineName(kEngines[e]));
        return 1;
      }
    }
  }
  table.Print();
  std::printf("\n'types err' ≤ 'enum err' on every row (Corollary 6: "
              "rank-q hypotheses are unions of\nlocal types, and the "
              "majority vote is the exact minimiser over those unions),\n"
              "at a tiny fraction of the enumeration cost — and the "
              "enumeration here covers only a\nbounded syntactic slice of "
              "FO[τ, 2], while the type ERM covers ALL of it.\n");

  std::printf("\ngovernor checkpoint overhead on the ERM core:\n\n");
  if (int rc = BenchGovernorOverhead(rng, json); rc != 0) return rc;
  return BenchParallelSweep(rng, json);
}
