// E7 — the splitter game as a nowhere-density meter (Fact 4): on nowhere
// dense families the rounds Splitter needs are bounded by s(r) independent
// of n; on the somewhere-dense controls (cliques) they grow with n.

#include <cstdio>

#include "bench_json.h"
#include "graph/generators.h"
#include "nd/splitter_game.h"
#include "util/rng.h"
#include "util/table.h"

using namespace folearn;

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  BenchTotalTimer bench_total(json, "splitter_game");
  std::printf("E7: (r, s)-splitter game profile — rounds needed vs family, "
              "n, and r\n\n");
  Rng rng(860);
  auto tree_splitter = MakeTreeSplitter();
  auto degree_splitter = MakeGreedyDegreeSplitter();
  auto greedy_connector = MakeGreedyBallConnector();
  Rng connector_rng(861);
  auto random_connector = MakeRandomConnector(connector_rng);
  std::vector<ConnectorStrategy*> connectors = {greedy_connector.get(),
                                                random_connector.get()};
  const int max_rounds = 64;

  struct Row {
    const char* family;
    Graph graph;
    SplitterStrategy* splitter;
  };
  std::vector<Row> rows;
  for (int n : {64, 256, 1024}) {
    rows.push_back({"path", MakePath(n), tree_splitter.get()});
  }
  for (int n : {64, 256, 1024}) {
    rows.push_back({"random tree", MakeRandomTree(n, rng),
                    tree_splitter.get()});
  }
  for (int side : {8, 16, 32}) {
    rows.push_back({"grid", MakeGrid(side, side), degree_splitter.get()});
  }
  for (int n : {64, 256}) {
    rows.push_back({"bounded-deg(4)", MakeBoundedDegree(n, 4, 3 * n / 2, rng),
                    degree_splitter.get()});
  }
  for (int n : {6, 12, 24}) {
    rows.push_back({"clique (control)", MakeComplete(n),
                    degree_splitter.get()});
  }
  for (int n : {6, 10, 14}) {
    // 2-degenerate yet somewhere dense: dense behaviour appears at r = 3.
    rows.push_back({"subdivided clique", MakeSubdividedComplete(n),
                    degree_splitter.get()});
  }

  Table table({"family", "n", "r=1", "r=2", "r=3"});
  for (Row& row : rows) {
    std::vector<std::string> cells = {row.family,
                                      std::to_string(row.graph.order())};
    for (int r : {1, 2, 3}) {
      int rounds = MeasureSplitterRounds(row.graph, r, max_rounds,
                                         *row.splitter, connectors);
      cells.push_back(rounds > max_rounds ? ">" + std::to_string(max_rounds)
                                          : std::to_string(rounds));
    }
    table.AddRow(std::move(cells));
  }
  table.Print();
  std::printf(
      "\nNowhere dense rows: rounds bounded by s(r), flat as n grows 16×. "
      "Clique rows:\nrounds = n exactly. Subdivided cliques — 2-DEGENERATE "
      "graphs — stay easy at r ≤ 2\nbut grow linearly at r = 3: somewhere "
      "dense despite bounded degeneracy, the\nsubtlety that makes nowhere "
      "denseness (not degeneracy) Theorem 2's boundary.\n");
  return 0;
}
