// E2 — Proposition 11 vs Theorem 13: the brute-force parameter search costs
// n^ℓ, the splitter-guided learner restricts the candidate set.
//
// Part A: ℓ sweep at small fixed n — brute force candidate count explodes
// as n^ℓ (the Proposition 11 bound is tight); noisy labels keep the
// early-exit from firing.
// Part B: n sweep at ℓ = 1 — brute force vs the Theorem 13 learner on the
// two-hubs workload; error parity and the candidate-count gap.

#include <cstdio>

#include "bench_json.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "learn/nd_learner.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

namespace {

// Two bounded-degree clusters; positives around hub A, negatives around
// hub B, with label noise.
struct Workload {
  Graph graph;
  TrainingSet examples;
};

Workload TwoHubs(int n_per_side, double noise, Rng& rng) {
  Graph star = MakeStar(n_per_side - 1);
  Workload w{DisjointCopies(star, 2), {}};
  Vertex hub_a = 0;
  Vertex source[] = {hub_a};
  std::vector<int> dist = BfsDistances(w.graph, source);
  for (Vertex v = 0; v < w.graph.order(); ++v) {
    bool label = dist[v] != kUnreachable && dist[v] <= 1;
    if (rng.Bernoulli(noise)) label = !label;
    w.examples.push_back({{v}, label});
  }
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  Rng rng(99);

  std::printf("E2a: Proposition 11 brute force, candidates and time vs ℓ "
              "(n = 24, noisy labels)\n\n");
  {
    Workload w = TwoHubs(12, 0.15, rng);
    Table table({"ell", "candidates", "train err", "time ms"});
    for (int ell : {0, 1, 2}) {
      Stopwatch watch;
      ErmResult result = BruteForceErm(w.graph, w.examples, ell, {1, 1},
                                       nullptr, /*early_stop=*/false);
      double ms = watch.ElapsedMillis();
      table.AddRow({std::to_string(ell),
                    std::to_string(result.parameter_tuples_tried),
                    FormatDouble(result.training_error, 3),
                    FormatDouble(ms, 1)});
      json.Record("bruteforce_vs_nd/ell_sweep", "ell=" + std::to_string(ell),
                  ms, result.parameter_tuples_tried);
    }
    table.Print();
    std::printf("\ncandidates = n^ℓ exactly (24^0, 24^1, 24^2): the "
                "XP-not-FPT shape in ℓ.\n\n");
  }

  std::printf("E2b: brute force vs Theorem 13 at ℓ = 1, n sweep\n\n");
  {
    Table table({"n", "bf err", "bf cand", "bf ms", "bf ms (4t)", "nd err",
                 "nd cand", "nd ms"});
    for (int n_per_side : {25, 50, 100, 200}) {
      Workload w = TwoHubs(n_per_side, 0.1, rng);
      Stopwatch bf_watch;
      ErmResult bf = BruteForceErm(w.graph, w.examples, 1, {1, 1}, nullptr,
                                   /*early_stop=*/false);
      double bf_ms = bf_watch.ElapsedMillis();

      ErmOptions threaded{1, 1};
      threaded.threads = 4;
      Stopwatch bf4_watch;
      ErmResult bf4 = BruteForceErm(w.graph, w.examples, 1, threaded,
                                    nullptr, /*early_stop=*/false);
      double bf4_ms = bf4_watch.ElapsedMillis();
      if (bf4.training_error != bf.training_error) {
        std::printf("VIOLATION: --threads 4 changed the brute-force "
                    "result!\n");
        return 1;
      }

      NdLearnerOptions options;
      options.rank = 1;
      options.radius = 1;
      options.epsilon = 0.2;
      auto splitter = MakeGreedyDegreeSplitter();
      options.splitter = splitter.get();
      Stopwatch nd_watch;
      NdLearnerResult nd = LearnNowhereDense(w.graph, w.examples, options);
      double nd_ms = nd_watch.ElapsedMillis();

      table.AddRow({std::to_string(w.graph.order()),
                    FormatDouble(bf.training_error, 3),
                    std::to_string(bf.parameter_tuples_tried),
                    FormatDouble(bf_ms, 1), FormatDouble(bf4_ms, 1),
                    FormatDouble(nd.erm.training_error, 3),
                    std::to_string(nd.candidates_evaluated),
                    FormatDouble(nd_ms, 1)});
      json.Record("bruteforce_vs_nd/n_sweep_bf",
                  "n=" + std::to_string(w.graph.order()) + " threads=1",
                  bf_ms, bf.parameter_tuples_tried);
      json.Record("bruteforce_vs_nd/n_sweep_bf",
                  "n=" + std::to_string(w.graph.order()) + " threads=4",
                  bf4_ms, bf4.parameter_tuples_tried);
      json.Record("bruteforce_vs_nd/n_sweep_nd",
                  "n=" + std::to_string(w.graph.order()), nd_ms,
                  nd.candidates_evaluated);
    }
    table.Print();
    std::printf("\nTheorem 13 evaluates a bounded candidate set (conflict "
                "analysis + splitter moves)\nwhile matching brute-force "
                "error within ε.\n");
  }
  return 0;
}
