// E14 — the MSO layer (Grohe–Turán heritage + the conclusion's MSO
// direction): classic beyond-FO properties evaluated by subset
// enumeration, with the 2^n cost curve that explains why the MSO side of
// the framework needs automata/treewidth techniques rather than brute
// force.

#include <cstdio>

#include "bench_json.h"
#include "fo/mso.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "mc/evaluator.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  BenchTotalTimer bench_total(json, "mso");
  Rng rng(8080);

  std::printf("E14a: MSO properties across families (n = 12)\n\n");
  {
    struct Row {
      const char* name;
      Graph graph;
    };
    std::vector<Row> rows;
    rows.push_back({"path", MakePath(12)});
    rows.push_back({"cycle C12 (even)", MakeCycle(12)});
    rows.push_back({"cycle C11 (odd)", MakeCycle(11)});
    rows.push_back({"two paths", DisjointUnion(MakePath(6), MakePath(6))});
    rows.push_back({"star", MakeStar(11)});
    rows.push_back({"K4 + path", DisjointUnion(MakeComplete(4),
                                               MakePath(8))});
    FormulaRef connected = MsoConnectivitySentence();
    FormulaRef bipartite = MsoBipartiteSentence();
    Table table({"graph", "connected (MSO)", "bipartite (MSO)"});
    for (Row& row : rows) {
      table.AddRow({row.name,
                    EvaluateSentence(row.graph, connected) ? "yes" : "no",
                    EvaluateSentence(row.graph, bipartite) ? "yes" : "no"});
    }
    table.Print();
    std::printf("\nConnectivity and 2-colourability are NOT first-order "
                "definable; one set quantifier\neach suffices in MSO.\n\n");
  }

  std::printf("E14b: the 2^n cost of subset enumeration (bipartiteness "
              "check)\n\n");
  {
    FormulaRef bipartite = MsoBipartiteSentence();
    Table table({"n", "time ms", "ratio"});
    double previous = 0;
    for (int n : {10, 12, 14, 16}) {
      Graph g = MakeCycle(n);
      Stopwatch watch;
      EvaluateSentence(g, bipartite);
      double ms = watch.ElapsedMillis();
      table.AddRow({std::to_string(n), FormatDouble(ms, 2),
                    previous > 0 ? FormatDouble(ms / previous, 1) : "-"});
      previous = ms;
    }
    table.Print();
    std::printf("\nTime roughly ×4 per +2 vertices (2^n subsets, each with "
                "an O(n²) check inside) —\nwhy Grohe–Turán's MSO results "
                "go through trees/automata, not enumeration.\n");
  }
  return 0;
}
