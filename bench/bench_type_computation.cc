// E5 — type computation cost: tp_q is n^{O(q)} (the f(q) factor of every
// algorithm in the paper), local types ltp_{q,r} are |ball|^{O(q)} —
// effectively constant per example on bounded-degree graphs.
//
// google-benchmark microbenchmarks.

#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "types/hintikka.h"
#include "types/type.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace folearn {
namespace {

// Global type computation: rank sweep on a fixed random tree.
void BM_GlobalType(benchmark::State& state) {
  const int rank = static_cast<int>(state.range(0));
  Rng rng(5);
  Graph graph = MakeRandomTree(40, rng);
  AddRandomColors(graph, {"Red"}, 0.4, rng);
  Vertex tuple[] = {7};
  for (auto _ : state) {
    TypeRegistry registry(graph.vocabulary());
    TypeComputer computer(graph, &registry);
    benchmark::DoNotOptimize(computer.Type(tuple, rank));
  }
  state.SetLabel("n=40, rank=" + std::to_string(rank));
}
BENCHMARK(BM_GlobalType)->Arg(0)->Arg(1)->Arg(2);

// Global type computation: n sweep at rank 2.
void BM_GlobalTypeBySize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  Graph graph = MakeRandomTree(n, rng);
  Vertex tuple[] = {0};
  for (auto _ : state) {
    TypeRegistry registry(graph.vocabulary());
    TypeComputer computer(graph, &registry);
    benchmark::DoNotOptimize(computer.Type(tuple, 2));
  }
}
BENCHMARK(BM_GlobalTypeBySize)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

// Local type computation: radius sweep at rank 2 — cost follows the ball
// size, not n.
void BM_LocalType(benchmark::State& state) {
  const int radius = static_cast<int>(state.range(0));
  Rng rng(7);
  Graph graph = MakeBoundedDegree(2000, 4, 3000, rng);
  Vertex tuple[] = {42};
  for (auto _ : state) {
    TypeRegistry registry(graph.vocabulary());
    benchmark::DoNotOptimize(
        ComputeLocalType(graph, tuple, 2, radius, &registry));
  }
  state.SetLabel("n=2000 (bounded degree), radius=" +
                 std::to_string(radius));
}
BENCHMARK(BM_LocalType)->Arg(1)->Arg(2)->Arg(3);

// Local types are n-independent on bounded-degree graphs.
void BM_LocalTypeBySize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(8);
  Graph graph = MakeBoundedDegree(n, 4, 3 * n / 2, rng);
  Vertex tuple[] = {static_cast<Vertex>(n / 2)};
  for (auto _ : state) {
    TypeRegistry registry(graph.vocabulary());
    benchmark::DoNotOptimize(
        ComputeLocalType(graph, tuple, 2, 2, &registry));
  }
}
BENCHMARK(BM_LocalTypeBySize)->Arg(500)->Arg(2000)->Arg(8000);

// Local types through a cold ball cache: every per-vertex ball is a fresh
// BFS, same as the uncached path plus bookkeeping.
void BM_LocalTypeColdCache(benchmark::State& state) {
  Rng rng(7);
  Graph graph = MakeBoundedDegree(2000, 4, 3000, rng);
  Vertex tuple[] = {42, 1042};
  for (auto _ : state) {
    BallCache cache(graph);
    TypeRegistry registry(graph.vocabulary());
    benchmark::DoNotOptimize(
        ComputeLocalType(graph, tuple, 2, 2, &registry, &cache));
  }
  state.SetLabel("n=2000 (bounded degree), radius=2, fresh cache");
}
BENCHMARK(BM_LocalTypeColdCache);

// Warm cache: the balls are already there, only the induced-subgraph type
// computation remains. The gap to the cold variant is what every ERM sweep
// saves from the second candidate on.
void BM_LocalTypeWarmCache(benchmark::State& state) {
  Rng rng(7);
  Graph graph = MakeBoundedDegree(2000, 4, 3000, rng);
  Vertex tuple[] = {42, 1042};
  BallCache cache(graph);
  {
    TypeRegistry registry(graph.vocabulary());
    ComputeLocalType(graph, tuple, 2, 2, &registry, &cache);  // prime
  }
  for (auto _ : state) {
    TypeRegistry registry(graph.vocabulary());
    benchmark::DoNotOptimize(
        ComputeLocalType(graph, tuple, 2, 2, &registry, &cache));
  }
  state.SetLabel("n=2000 (bounded degree), radius=2, primed cache");
}
BENCHMARK(BM_LocalTypeWarmCache);

// Hintikka emission from an interned type.
void BM_HintikkaEmission(benchmark::State& state) {
  Rng rng(9);
  Graph graph = MakeRandomTree(30, rng);
  AddRandomColors(graph, {"Red"}, 0.4, rng);
  TypeRegistry registry(graph.vocabulary());
  Vertex tuple[] = {3};
  TypeId type = ComputeType(graph, tuple, 2, &registry);
  for (auto _ : state) {
    HintikkaBuilder builder(registry);
    benchmark::DoNotOptimize(builder.Build(type, {"x1"}));
  }
}
BENCHMARK(BM_HintikkaEmission);

// Manual cold-vs-warm timing for the JSON report (google-benchmark owns
// its own reporting; the machine-readable record is measured directly).
void RecordCacheJson(folearn::BenchJsonWriter& json) {
  if (!json.enabled()) return;
  Rng rng(7);
  Graph graph = MakeBoundedDegree(2000, 4, 3000, rng);
  const int kTuples = 200;
  std::vector<std::vector<Vertex>> tuples;
  for (int i = 0; i < kTuples; ++i) {
    tuples.push_back({static_cast<Vertex>((i * 37) % graph.order()),
                      static_cast<Vertex>((i * 101 + 9) % graph.order())});
  }
  BallCache cache(graph);
  TypeRegistry cold_registry(graph.vocabulary());
  Stopwatch cold_watch;
  for (const auto& tuple : tuples) {
    ComputeLocalType(graph, tuple, 2, 2, &cold_registry, &cache);
  }
  json.Record("type_computation/ball_cache", "variant=cold",
              cold_watch.ElapsedMillis(), kTuples);
  TypeRegistry warm_registry(graph.vocabulary());
  Stopwatch warm_watch;
  for (const auto& tuple : tuples) {
    ComputeLocalType(graph, tuple, 2, 2, &warm_registry, &cache);
  }
  json.Record("type_computation/ball_cache", "variant=warm",
              warm_watch.ElapsedMillis(), kTuples);

  // Ball assembly alone (the part the cache actually replaces): fresh
  // multi-source BFS per tuple vs union of cached per-vertex balls.
  Stopwatch bfs_watch;
  for (const auto& tuple : tuples) {
    benchmark::DoNotOptimize(Ball(graph, tuple, 2));
  }
  json.Record("type_computation/ball_assembly", "variant=bfs",
              bfs_watch.ElapsedMillis(), kTuples);
  Stopwatch cached_watch;
  for (const auto& tuple : tuples) {
    benchmark::DoNotOptimize(cache.TupleBall(tuple, 2));
  }
  json.Record("type_computation/ball_assembly", "variant=cached",
              cached_watch.ElapsedMillis(), kTuples);
}

}  // namespace
}  // namespace folearn

// BENCHMARK_MAIN rejects arguments it does not recognise, so --json must
// be stripped before benchmark::Initialize sees it.
int main(int argc, char** argv) {
  folearn::BenchJsonWriter json(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  folearn::RecordCacheJson(json);
  return 0;
}
