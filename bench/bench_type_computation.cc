// E5 — type computation cost: tp_q is n^{O(q)} (the f(q) factor of every
// algorithm in the paper), local types ltp_{q,r} are |ball|^{O(q)} —
// effectively constant per example on bounded-degree graphs.
//
// google-benchmark microbenchmarks.

#include <benchmark/benchmark.h>

#include "graph/generators.h"
#include "types/hintikka.h"
#include "types/type.h"
#include "util/rng.h"

namespace folearn {
namespace {

// Global type computation: rank sweep on a fixed random tree.
void BM_GlobalType(benchmark::State& state) {
  const int rank = static_cast<int>(state.range(0));
  Rng rng(5);
  Graph graph = MakeRandomTree(40, rng);
  AddRandomColors(graph, {"Red"}, 0.4, rng);
  Vertex tuple[] = {7};
  for (auto _ : state) {
    TypeRegistry registry(graph.vocabulary());
    TypeComputer computer(graph, &registry);
    benchmark::DoNotOptimize(computer.Type(tuple, rank));
  }
  state.SetLabel("n=40, rank=" + std::to_string(rank));
}
BENCHMARK(BM_GlobalType)->Arg(0)->Arg(1)->Arg(2);

// Global type computation: n sweep at rank 2.
void BM_GlobalTypeBySize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  Graph graph = MakeRandomTree(n, rng);
  Vertex tuple[] = {0};
  for (auto _ : state) {
    TypeRegistry registry(graph.vocabulary());
    TypeComputer computer(graph, &registry);
    benchmark::DoNotOptimize(computer.Type(tuple, 2));
  }
}
BENCHMARK(BM_GlobalTypeBySize)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

// Local type computation: radius sweep at rank 2 — cost follows the ball
// size, not n.
void BM_LocalType(benchmark::State& state) {
  const int radius = static_cast<int>(state.range(0));
  Rng rng(7);
  Graph graph = MakeBoundedDegree(2000, 4, 3000, rng);
  Vertex tuple[] = {42};
  for (auto _ : state) {
    TypeRegistry registry(graph.vocabulary());
    benchmark::DoNotOptimize(
        ComputeLocalType(graph, tuple, 2, radius, &registry));
  }
  state.SetLabel("n=2000 (bounded degree), radius=" +
                 std::to_string(radius));
}
BENCHMARK(BM_LocalType)->Arg(1)->Arg(2)->Arg(3);

// Local types are n-independent on bounded-degree graphs.
void BM_LocalTypeBySize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(8);
  Graph graph = MakeBoundedDegree(n, 4, 3 * n / 2, rng);
  Vertex tuple[] = {static_cast<Vertex>(n / 2)};
  for (auto _ : state) {
    TypeRegistry registry(graph.vocabulary());
    benchmark::DoNotOptimize(
        ComputeLocalType(graph, tuple, 2, 2, &registry));
  }
}
BENCHMARK(BM_LocalTypeBySize)->Arg(500)->Arg(2000)->Arg(8000);

// Hintikka emission from an interned type.
void BM_HintikkaEmission(benchmark::State& state) {
  Rng rng(9);
  Graph graph = MakeRandomTree(30, rng);
  AddRandomColors(graph, {"Red"}, 0.4, rng);
  TypeRegistry registry(graph.vocabulary());
  Vertex tuple[] = {3};
  TypeId type = ComputeType(graph, tuple, 2, &registry);
  for (auto _ : state) {
    HintikkaBuilder builder(registry);
    benchmark::DoNotOptimize(builder.Build(type, {"x1"}));
  }
}
BENCHMARK(BM_HintikkaEmission);

}  // namespace
}  // namespace folearn

BENCHMARK_MAIN();
