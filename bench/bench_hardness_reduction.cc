// E4 — Lemma 7 (the Theorem 1 reduction) is a *polynomial* fpt Turing
// reduction: oracle calls grow as O(n²) per quantifier level, the
// representative set |T| stays bounded by the number of rank-(q−1) types
// (not by n), and the recursion degree is |T|.

#include <cstdio>

#include "bench_json.h"
#include "fo/parser.h"
#include "graph/generators.h"
#include "learn/hardness.h"
#include "mc/evaluator.h"
#include "util/rng.h"
#include "util/table.h"

using namespace folearn;

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  BenchTotalTimer bench_total(json, "hardness_reduction");
  Rng rng(1234);

  std::printf("E4a: oracle calls vs n (sentence: ∃x(Red(x) ∧ ∃y(E(x,y) ∧ "
              "¬Red(y))), q = 2)\n\n");
  {
    FormulaRef sentence = MustParseFormula(
        "exists x. (Red(x) & exists y. (E(x, y) & !Red(y)))");
    Table table({"n", "oracle calls", "calls / n^2", "max |T|",
                 "recursion", "agrees"});
    for (int n : {6, 8, 12, 16, 24}) {
      Graph graph = MakeRandomTree(n, rng);
      AddRandomColors(graph, {"Red"}, 0.4, rng);
      TypeErmOracle oracle;
      HardnessStats stats;
      bool reduced = ModelCheckViaErm(graph, sentence, oracle, {}, &stats);
      bool direct = EvaluateSentence(graph, sentence);
      table.AddRow({std::to_string(n), std::to_string(stats.oracle_calls),
                    FormatDouble(static_cast<double>(stats.oracle_calls) /
                                     (static_cast<double>(n) * n),
                                 2),
                    std::to_string(stats.max_representatives),
                    std::to_string(stats.recursion_nodes),
                    reduced == direct ? "yes" : "NO"});
    }
    table.Print();
    std::printf("\n|T| tracks the number of vertex types, NOT n — the "
                "Ramsey pruning bounds the\nrecursion degree by a function "
                "of the parameter alone.\n\n");
  }

  std::printf("E4b: quantifier-rank sweep at n = 10\n\n");
  {
    const char* sentences[] = {
        "exists x. Red(x)",
        "exists x. forall y. (E(x, y) -> Red(y))",
        "exists x. forall y. (E(x, y) -> exists z. (E(y, z) & Red(z)))",
    };
    Graph graph = MakeRandomTree(10, rng);
    AddRandomColors(graph, {"Red"}, 0.4, rng);
    Table table({"q", "oracle calls", "max |T|", "recursion", "agrees"});
    int q = 1;
    for (const char* text : sentences) {
      FormulaRef sentence = MustParseFormula(text);
      TypeErmOracle oracle;
      HardnessStats stats;
      bool reduced = ModelCheckViaErm(graph, sentence, oracle, {}, &stats);
      bool direct = EvaluateSentence(graph, sentence);
      table.AddRow({std::to_string(q++),
                    std::to_string(stats.oracle_calls),
                    std::to_string(stats.max_representatives),
                    std::to_string(stats.recursion_nodes),
                    reduced == direct ? "yes" : "NO"});
    }
    table.Print();
    std::printf("\nCost grows with q through |T|-ary recursion — the f(q) "
                "factor of an fpt reduction —\nwhile staying polynomial in "
                "n at each level.\n");
  }
  return 0;
}
