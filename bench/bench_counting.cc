// E11 — the FO+C extension (paper conclusion): expressiveness and cost of
// counting types vs plain types at equal rank.
//  (a) error on degree-threshold concepts: plain rank-1 fails, counting
//      rank-1 (cap = t) is exact; plain FO needs higher rank;
//  (b) class counts and computation cost as the cap grows.

#include <cstdio>
#include <set>

#include "bench_json.h"
#include "graph/generators.h"
#include "learn/counting_erm.h"
#include "learn/erm.h"
#include "types/counting_type.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  BenchTotalTimer bench_total(json, "counting");
  Rng rng(4242);

  std::printf("E11a: degree-threshold concepts on random trees "
              "(target: deg(x) >= t)\n\n");
  {
    Table table({"t", "FO q=1", "FO q=2", "FO q=3", "FO+C q=1 cap=t"});
    Graph g = MakeRandomTree(60, rng);
    for (int t : {2, 3}) {
      TrainingSet examples;
      for (Vertex v = 0; v < g.order(); ++v) {
        examples.push_back({{v}, g.Degree(v) >= t});
      }
      std::vector<std::string> cells = {std::to_string(t)};
      for (int rank : {1, 2, 3}) {
        ErmResult plain = TypeMajorityErm(g, examples, {}, {rank, 1});
        cells.push_back(FormatDouble(plain.training_error, 3));
      }
      CountingErmOptions options;
      options.rank = 1;
      options.cap = t;
      options.radius = 1;
      CountingErmResult counting =
          CountingTypeMajorityErm(g, examples, {}, options);
      cells.push_back(FormatDouble(counting.training_error, 3));
      table.AddRow(std::move(cells));
    }
    table.Print();
    std::printf("\nPlain FO needs rank ≥ 3 for 'deg ≥ 2'; FO+C expresses it "
                "at rank 1 — the rank\ncollapse that motivates the "
                "counting extension.\n\n");
  }

  std::printf("E11b: counting-type cost and class count vs cap "
              "(preferential attachment n=80, rank 1, radius 1)\n\n");
  {
    Graph g = MakePreferentialAttachment(80, 1, rng);
    Table table({"cap", "distinct classes", "time ms"});
    for (int cap : {1, 2, 4, 8}) {
      CountingTypeRegistry registry(g.vocabulary(), cap);
      Stopwatch watch;
      std::set<TypeId> classes;
      for (Vertex v = 0; v < g.order(); ++v) {
        Vertex tuple[] = {v};
        classes.insert(
            ComputeLocalCountingType(g, tuple, 1, 1, &registry));
      }
      table.AddRow({std::to_string(cap), std::to_string(classes.size()),
                    FormatDouble(watch.ElapsedMillis(), 1)});
    }
    table.Print();
    std::printf("\ncap = 1 degenerates to plain FO types; larger caps "
                "refine the partition at\nnear-identical cost (the cap only "
                "affects multiplicity truncation).\n");
  }
  return 0;
}
