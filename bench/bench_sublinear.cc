// E13 — sublinear learning (the paper's [22]/[21]/[19] line + conclusion):
//  (a) degree-bounded sublinear ERM: runtime flat in n at fixed m, because
//      the parameter pool is the examples' (2r+1)-neighbourhood, not V(G);
//  (b) preprocessing + O(m) queries: LocalTypeIndex build cost grows with
//      n once, after which each ERM query is n-independent.

#include <cstdio>

#include "bench_json.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/sublinear.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  BenchTotalTimer bench_total(json, "sublinear");
  Rng rng(31337);

  std::printf("E13a: degree-bounded sublinear ERM vs full brute force "
              "(m = 40 fixed, ℓ = 1, degree ≤ 4)\n\n");
  {
    Table table({"n", "pool", "sub err", "sub ms", "bf err", "bf ms"});
    for (int n : {250, 500, 1000, 2000, 4000}) {
      Graph g = MakeBoundedDegree(n, 4, 3 * n / 2, rng);
      Vertex w_star = static_cast<Vertex>(rng.UniformIndex(40));
      Vertex source[] = {w_star};
      std::vector<int> dist = BfsDistances(g, source, 1);
      TrainingSet examples;
      for (Vertex v = 0; v < 40; ++v) {
        examples.push_back({{v}, dist[v] != kUnreachable && dist[v] <= 1});
      }
      ErmOptions options{1, 1};
      Stopwatch sub_watch;
      SublinearErmResult sub = SublinearErm(g, examples, 1, options);
      double sub_ms = sub_watch.ElapsedMillis();
      Stopwatch bf_watch;
      ErmResult brute = BruteForceErm(g, examples, 1, options, nullptr,
                                      /*early_stop=*/false);
      double bf_ms = bf_watch.ElapsedMillis();
      table.AddRow({std::to_string(n),
                    std::to_string(sub.candidate_pool_size),
                    FormatDouble(sub.erm.training_error, 3),
                    FormatDouble(sub_ms, 1),
                    FormatDouble(brute.training_error, 3),
                    FormatDouble(bf_ms, 1)});
    }
    table.Print();
    std::printf("\nThe pool (and the sublinear learner's time) is governed "
                "by m·d^{O(r)}, flat in n;\nbrute force scans all n "
                "parameters. Same training error on every row.\n\n");
  }

  std::printf("E13b: preprocessing + O(m) ERM queries (LocalTypeIndex, "
              "k = 1, ℓ = 0)\n\n");
  {
    Table table({"n", "build ms", "query ms (m=100)", "queries/s equiv"});
    for (int n : {500, 1000, 2000, 4000}) {
      Graph g = MakeBoundedDegree(n, 4, 3 * n / 2, rng);
      AddRandomColors(g, {"Red"}, 0.3, rng);
      Stopwatch build_watch;
      LocalTypeIndex index(g, 1, 2);
      double build_ms = build_watch.ElapsedMillis();

      TrainingSet examples;
      for (int i = 0; i < 100; ++i) {
        Vertex v = static_cast<Vertex>(rng.UniformIndex(g.order()));
        examples.push_back({{v}, g.Degree(v) >= 2});
      }
      const int reps = 50;
      Stopwatch query_watch;
      for (int i = 0; i < reps; ++i) index.Erm(examples);
      double query_ms = query_watch.ElapsedMillis() / reps;
      table.AddRow({std::to_string(n), FormatDouble(build_ms, 1),
                    FormatDouble(query_ms, 3),
                    FormatDouble(1000.0 / std::max(query_ms, 1e-6), 0)});
    }
    table.Print();
    std::printf("\nBuild cost scales with n (the one-off preprocessing "
                "pass); the per-query cost is\nflat — the 'sublinear "
                "learning after preprocessing' regime the conclusion "
                "conjectures.\n");
  }
  return 0;
}
