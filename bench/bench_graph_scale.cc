// Million-vertex graph-core bench: the columnar CSR layout and the `.fog`
// memory-mapped binary format measured end to end at n = 10^5..10^6 (pass
// `--max-n 10000000` to extend the sweep; the default keeps CI bounded).
//
// Three experiments per n over a bounded-degree random graph (max degree
// 8, ~2n edges, periodic Red colour):
//
//   graph_scale/load   config "mode=text|fog|fog_warm n=<n>"
//       wall-clock to get a servable Graph from disk. `text` parses the
//       line format; `fog` memory-maps and validates the binary format
//       cold; `fog_warm` hits the process-wide mapping registry (the
//       folearnd re-warm path). work_units = edge count.
//
//   graph_scale/ball   config "n=<n> radius=2"
//       radius-2 ball assembly through BallCache for a fixed batch of
//       random centres. work_units = total ball vertices returned.
//
//   graph_scale/vm_ball_query   config "n=<n> radius=2"
//       NeighborhoodExtractor + VmEvaluator per tuple: extract the
//       radius-2 neighbourhood as its own finalized CSR graph, build the
//       VM index over it, evaluate a rank-1 guarded query. Includes an
//       n=400 row so the per-edge cost (wall_ms / work_units, work_units
//       = sum of neighbourhood edge counts) can be compared across four
//       orders of magnitude — locality means it should be flat.
//
// run_benches.sh aggregates the --json rows into BENCH_graph.json and
// fails the run if the fog load at the largest n is not at least 10x
// faster than the text parse.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "fo/parser.h"
#include "graph/algorithms.h"
#include "graph/fog.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "mc/bytecode.h"
#include "mc/compiled_eval.h"
#include "mc/vm.h"
#include "util/checkpoint.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

namespace {

constexpr int kRadius = 2;
constexpr int kBallQueries = 200;
constexpr int kTupleQueries = 300;

Graph MakeSubstrate(int64_t n, Rng& rng) {
  Graph graph = MakeBoundedDegreeAtScale(n, /*max_degree=*/8,
                                         /*target_edges=*/2 * n, rng);
  AddPeriodicColor(graph, "Red", 3, 0);
  graph.Finalize();
  return graph;
}

struct LoadTimes {
  double text_ms = 0.0;
  double fog_ms = 0.0;
  double fog_warm_ms = 0.0;
};

LoadTimes MeasureLoads(const Graph& graph, int64_t n,
                       BenchJsonWriter& json) {
  const std::string stem =
      "/tmp/folearn_bench_graph_" + std::to_string(::getpid()) + "_" +
      std::to_string(n);
  const std::string text_path = stem + ".graph";
  const std::string fog_path = stem + ".fog";
  Status wrote = WriteFileAtomic(text_path, ToText(graph));
  FOLEARN_CHECK(wrote.ok()) << wrote.message();
  wrote = WriteFogFile(fog_path, graph);
  FOLEARN_CHECK(wrote.ok()) << wrote.message();

  LoadTimes times;
  const long long edges = graph.EdgeCount();
  {
    Stopwatch watch;
    StatusOr<Graph> loaded = LoadGraphAuto(text_path);
    times.text_ms = watch.ElapsedMillis();
    FOLEARN_CHECK(loaded.ok()) << loaded.status().message();
    FOLEARN_CHECK_EQ(loaded->EdgeCount(), edges);
  }
  {
    // Cold: first map of this file validates the whole payload.
    Stopwatch watch;
    StatusOr<Graph> loaded = LoadGraphAuto(fog_path);
    times.fog_ms = watch.ElapsedMillis();
    FOLEARN_CHECK(loaded.ok()) << loaded.status().message();
    FOLEARN_CHECK_EQ(loaded->EdgeCount(), edges);
    // Warm: the mapping registry still holds the validated mapping while
    // `loaded` is alive, so this is the many-sessions-one-graph path.
    Stopwatch warm;
    StatusOr<Graph> again = LoadGraphAuto(fog_path);
    times.fog_warm_ms = warm.ElapsedMillis();
    FOLEARN_CHECK(again.ok()) << again.status().message();
    FOLEARN_CHECK_EQ(again->EdgeCount(), edges);
  }
  std::remove(text_path.c_str());
  std::remove(fog_path.c_str());

  const std::string suffix = " n=" + std::to_string(n);
  json.Record("graph_scale/load", "mode=text" + suffix, times.text_ms,
              edges);
  json.Record("graph_scale/load", "mode=fog" + suffix, times.fog_ms, edges);
  json.Record("graph_scale/load", "mode=fog_warm" + suffix,
              times.fog_warm_ms, edges);
  return times;
}

double MeasureBalls(const Graph& graph, int64_t n, BenchJsonWriter& json) {
  Rng rng(7 * n + 1);
  BallCache cache(graph, /*max_bytes=*/64 << 20);
  long long total_ball_vertices = 0;
  Stopwatch watch;
  for (int i = 0; i < kBallQueries; ++i) {
    const auto v = static_cast<Vertex>(rng.UniformIndex(graph.order()));
    total_ball_vertices +=
        static_cast<long long>(cache.VertexBall(v, kRadius).size());
  }
  const double wall_ms = watch.ElapsedMillis();
  json.Record("graph_scale/ball",
              "n=" + std::to_string(n) + " radius=" + std::to_string(kRadius),
              wall_ms, total_ball_vertices);
  return wall_ms;
}

// Per-tuple local evaluation: extract the radius-2 neighbourhood, lower
// the fixed plan onto it through the VM, evaluate. Returns {wall_ms,
// neighbourhood edges processed}.
std::pair<double, long long> MeasureVmBallQueries(const Graph& graph,
                                                  int64_t n,
                                                  BenchJsonWriter& json) {
  FormulaRef formula =
      MustParseFormula("exists y. (E(x1, y) & Red(y))");
  const std::vector<std::string> frame = {"x1"};
  CompiledFormula plan = CompileFormula(formula, frame);
  LoweredPlan lowered = LowerPlan(plan);
  FOLEARN_CHECK(lowered.supported);

  NeighborhoodExtractor extractor(graph);
  long long edges = 0;
  int accepted = 0;
  // One untimed pass first: the extractor's scratch buffers, the
  // allocator's arenas, and the touched graph pages all reach steady state
  // there, which is the regime the per-edge claim is about (folearnd keeps
  // extractors alive across requests).
  {
    Rng warm_rng(13 * n + 5);
    for (int i = 0; i < kTupleQueries; ++i) {
      const Vertex tuple[] = {
          static_cast<Vertex>(warm_rng.UniformIndex(graph.order()))};
      NeighborhoodExtractor::Result local = extractor.Extract(tuple, kRadius);
      VmEvaluator vm(plan, lowered, local.graph, {});
      (void)vm.Eval(local.tuple);
    }
  }
  Rng rng(13 * n + 5);
  Stopwatch watch;
  for (int i = 0; i < kTupleQueries; ++i) {
    const Vertex tuple[] = {
        static_cast<Vertex>(rng.UniformIndex(graph.order()))};
    NeighborhoodExtractor::Result local = extractor.Extract(tuple, kRadius);
    edges += local.graph.EdgeCount();
    VmEvaluator vm(plan, lowered, local.graph, {});
    if (vm.Eval(local.tuple)) ++accepted;
  }
  const double wall_ms = watch.ElapsedMillis();
  json.Record("graph_scale/vm_ball_query",
              "n=" + std::to_string(n) + " radius=" + std::to_string(kRadius),
              wall_ms, edges);
  std::fprintf(stderr, "  vm_ball_query n=%lld: %d/%d accepted\n",
               static_cast<long long>(n), accepted, kTupleQueries);
  return {wall_ms, edges};
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  int64_t max_n = 1000000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-n") == 0 && i + 1 < argc) {
      max_n = std::atoll(argv[i + 1]);
      ++i;
    }
  }

  std::vector<int64_t> sweep = {400, 100000};
  for (int64_t n = 1000000; n <= max_n; n *= 10) sweep.push_back(n);

  Table table({"n", "edges", "text_ms", "fog_ms", "fog_warm_ms", "ball_ms",
               "vm_query_ms", "vm_us_per_edge"});
  for (int64_t n : sweep) {
    Rng rng(n);
    std::fprintf(stderr, "n=%lld: generating...\n",
                 static_cast<long long>(n));
    Graph graph = MakeSubstrate(n, rng);
    LoadTimes loads{};
    double ball_ms = 0.0;
    if (n >= 1000) {
      // The load and ball experiments only carry signal at scale; n=400
      // exists purely as the vm_ball_query per-edge baseline.
      loads = MeasureLoads(graph, n, json);
      ball_ms = MeasureBalls(graph, n, json);
    }
    auto [query_ms, query_edges] = MeasureVmBallQueries(graph, n, json);
    table.AddRow({std::to_string(n), std::to_string(graph.EdgeCount()),
                  FormatDouble(loads.text_ms), FormatDouble(loads.fog_ms),
                  FormatDouble(loads.fog_warm_ms), FormatDouble(ball_ms),
                  FormatDouble(query_ms),
                  FormatDouble(query_edges > 0
                                   ? 1e3 * query_ms / query_edges
                                   : 0.0,
                               3)});
  }
  table.Print();
  return 0;
}
