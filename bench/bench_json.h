#ifndef FOLEARN_BENCH_BENCH_JSON_H_
#define FOLEARN_BENCH_BENCH_JSON_H_

// Machine-readable bench output, shared by every bench_* binary.
//
// Usage:
//   int main(int argc, char** argv) {
//     BenchJsonWriter json(argc, argv);   // consumes --json <path>
//     ...
//     json.Record("erm_core/threads", "threads=8 n=60", wall_ms, items);
//   }
//
// With `--json <path>` the writer appends one JSON object per line
// (JSONL) of the form
//   {"bench": "...", "config": "...", "wall_ms": 12.34, "work_units": 56}
// and tools/run_benches.sh aggregates the per-binary files into
// BENCH_parallel.json. Without the flag the writer is inert, so the
// human-readable tables stay the default. Unknown arguments are left
// untouched for the binary's own parsing (bench_type_computation hands
// the remainder to google-benchmark).

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

namespace folearn {

class BenchJsonWriter {
 public:
  // Scans argv for "--json <path>" (or "--json=<path>") and removes it
  // from the argument list, adjusting argc in place.
  BenchJsonWriter(int& argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string path;
      int consumed = 0;
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        path = argv[i + 1];
        consumed = 2;
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        path = argv[i] + 7;
        consumed = 1;
      }
      if (consumed == 0) continue;
      for (int j = i + consumed; j < argc; ++j) argv[j - consumed] = argv[j];
      argc -= consumed;
      file_ = std::fopen(path.c_str(), "w");
      if (file_ == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
        std::exit(64);
      }
      break;
    }
  }

  ~BenchJsonWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  bool enabled() const { return file_ != nullptr; }

  // One measurement: `bench` names the experiment, `config` the knob
  // setting (free-form "key=value key=value" text), `wall_ms` the wall
  // time, `work_units` the size of the work done (items scanned, types
  // computed, …) so speedups can be normalised. Every record also carries
  // the process's peak RSS at write time, so memory regressions show up
  // in the same BENCH_*.json diffs that catch latency regressions.
  void Record(const std::string& bench, const std::string& config,
              double wall_ms, long long work_units) {
    if (file_ == nullptr) return;
    std::fprintf(file_,
                 "{\"bench\": \"%s\", \"config\": \"%s\", \"wall_ms\": %.3f, "
                 "\"work_units\": %lld, \"peak_rss_bytes\": %lld}\n",
                 Escaped(bench).c_str(), Escaped(config).c_str(), wall_ms,
                 work_units, PeakRssBytes());
    std::fflush(file_);
  }

 private:
  // ru_maxrss is kilobytes on Linux; high-water mark, so monotone across
  // a binary's records (the last record carries the binary's peak).
  static long long PeakRssBytes() {
    rusage usage{};
    if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
    return static_cast<long long>(usage.ru_maxrss) * 1024;
  }

  // The fields are programmer-chosen ASCII; escape just enough to keep
  // the output valid JSON if a quote or backslash ever slips in.
  static std::string Escaped(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::FILE* file_ = nullptr;
};

// Records the binary's total wall time on destruction: the coarse default
// for bench binaries whose tables don't break down into individually
// re-runnable measurements. Declare it right after the writer in main().
class BenchTotalTimer {
 public:
  BenchTotalTimer(BenchJsonWriter& json, std::string bench)
      : json_(json),
        bench_(std::move(bench)),
        start_(std::chrono::steady_clock::now()) {}

  ~BenchTotalTimer() {
    std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start_;
    json_.Record(bench_, "total", elapsed.count(), 1);
  }

  BenchTotalTimer(const BenchTotalTimer&) = delete;
  BenchTotalTimer& operator=(const BenchTotalTimer&) = delete;

 private:
  BenchJsonWriter& json_;
  std::string bench_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace folearn

#endif  // FOLEARN_BENCH_BENCH_JSON_H_
