// E3 — PAC / uniform convergence (paper §3): generalisation error of the
// ERM hypothesis vs training-set size m, against the
// O((ln|H| + ln 1/δ)/ε²) bound.
//
// Realisable case (noise 0): error → 0.
// Agnostic case (noise 0.2): error → the Bayes floor 0.2, train/test gap → 0.

#include <cstdio>

#include "bench_json.h"
#include "fo/parser.h"
#include "graph/generators.h"
#include "learn/erm.h"
#include "learn/pac.h"
#include "util/rng.h"
#include "util/table.h"

using namespace folearn;

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  BenchTotalTimer bench_total(json, "sample_complexity");
  Rng rng(314);
  Graph graph = MakeRandomTree(200, rng);
  AddRandomColors(graph, {"Red"}, 0.3, rng);
  FormulaRef target = MustParseFormula("exists z. (E(x1, z) & Red(z))");

  double ln_h = EstimateLnHypothesisCount(graph, 1, 0, 1, 2, 500, rng);
  std::printf("E3: sample complexity on a 200-vertex tree; "
              "estimated ln|H| = %.1f\n", ln_h);
  std::printf("uniform-convergence bound: m(ε=0.1, δ=0.05) = %lld samples\n\n",
              static_cast<long long>(
                  AgnosticSampleComplexity(ln_h, 0.1, 0.05)));

  for (double noise : {0.0, 0.2}) {
    std::printf("noise = %.1f (Bayes error %.1f):\n", noise, noise);
    auto dist = MakeQueryDistribution(graph, target, QueryVars(1), 1, noise);
    auto learner = [&](const TrainingSet& train) {
      return TypeMajorityErm(graph, train, {}, {1, 2}).hypothesis;
    };
    Table table({"m", "train err", "test err", "gap"});
    for (int m : {10, 25, 50, 100, 250, 500, 1000}) {
      // Average over repetitions to stabilise the small-m rows.
      const int reps = 5;
      double train_sum = 0;
      double test_sum = 0;
      for (int rep = 0; rep < reps; ++rep) {
        PacExperimentResult result =
            RunPacExperiment(graph, *dist, m, 1500, learner, rng);
        train_sum += result.training_error;
        test_sum += result.generalization_error;
      }
      double train = train_sum / reps;
      double test = test_sum / reps;
      table.AddRow({std::to_string(m), FormatDouble(train, 3),
                    FormatDouble(test, 3),
                    FormatDouble(std::abs(test - train), 3)});
    }
    table.Print();
    std::printf("\n");
  }
  std::printf("Realisable: test error decays to ~0. Agnostic: both errors "
              "converge to the 0.2\nnoise floor and the train/test gap "
              "closes — uniform convergence in action.\n");
  return 0;
}
