// E10 — the relational-database substrate: encoding cost/size scales
// linearly in the database, and learning over the encoded graph reaches
// zero training error for concepts definable over the schema (the paper's
// "relational structures encode as graphs" claim, measured).

#include <cstdio>

#include "bench_json.h"
#include "db/database.h"
#include "db/encoding.h"
#include "learn/erm.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

namespace {

Database MakeRandomMovieDb(int people, int movies, Rng& rng) {
  Schema schema;
  schema.AddRelation("Person", 1);
  schema.AddRelation("Movie", 1);
  schema.AddRelation("Directed", 2);
  schema.AddRelation("ActedIn", 2);
  Database db(schema, people + movies);
  for (int p = 0; p < people; ++p) db.AddTuple("Person", {p});
  for (int m = 0; m < movies; ++m) db.AddTuple("Movie", {people + m});
  for (int m = 0; m < movies; ++m) {
    db.AddTuple("Directed",
                {static_cast<int>(rng.UniformIndex(people)), people + m});
    int cast = 2 + static_cast<int>(rng.UniformIndex(3));
    for (int i = 0; i < cast; ++i) {
      db.AddTuple("ActedIn",
                  {static_cast<int>(rng.UniformIndex(people)), people + m});
    }
  }
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  BenchTotalTimer bench_total(json, "db_encoding");
  Rng rng(1001);
  std::printf("E10: relational encoding + learning over encoded databases\n"
              "(concept: 'x directed a movie', rank-2 over the incidence "
              "encoding)\n\n");
  Table table({"people", "movies", "db tuples", "graph n", "graph m",
               "encode ms", "learn ms", "train err"});
  for (int scale : {1, 2, 4, 8}) {
    int people = 25 * scale;
    int movies = 20 * scale;
    Database db = MakeRandomMovieDb(people, movies, rng);
    Stopwatch encode_watch;
    EncodedDatabase encoded = EncodeDatabase(db);
    double encode_ms = encode_watch.ElapsedMillis();

    TrainingSet examples;
    for (int p = 0; p < people; ++p) {
      bool directs = false;
      for (const std::vector<int>& t : db.Tuples("Directed")) {
        if (t[0] == p) {
          directs = true;
          break;
        }
      }
      examples.push_back({{encoded.VertexOf(p)}, directs});
    }
    Stopwatch learn_watch;
    ErmResult result = TypeMajorityErm(encoded.graph, examples, {}, {2, 2});
    double learn_ms = learn_watch.ElapsedMillis();

    table.AddRow({std::to_string(people), std::to_string(movies),
                  std::to_string(db.TotalTuples()),
                  std::to_string(encoded.graph.order()),
                  std::to_string(encoded.graph.EdgeCount()),
                  FormatDouble(encode_ms, 1), FormatDouble(learn_ms, 1),
                  FormatDouble(result.training_error, 3)});
  }
  table.Print();
  std::printf("\nGraph size is linear in Σ tuples·(1+arity); the learner "
              "stays exact (0 training\nerror) because 'is a director' is "
              "rank-2 definable over the encoding.\n");
  return 0;
}
