// E1 — Theorem 13 is FPT: learner runtime scales polynomially (near
// linearly) in n + m on nowhere dense families with all parameters fixed.
//
// Workload: hidden 1-parameter target "x within distance 1 of w*" on
// paths, random trees, and grids; k=1, ℓ*=1, q*=1, ε=0.2 fixed; n sweeps.
// The "ratio" column is time(n) / time(previous n): a bounded ratio ≈
// the sweep factor certifies polynomial scaling; exponential growth would
// blow the ratio up.

#include <cstdio>

#include "bench_json.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "learn/nd_learner.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

namespace {

TrainingSet DistanceOneWorkload(const Graph& graph, Rng& rng) {
  Vertex w_star = static_cast<Vertex>(rng.UniformIndex(graph.order()));
  Vertex source[] = {w_star};
  std::vector<int> dist = BfsDistances(graph, source);
  TrainingSet examples;
  for (Vertex v = 0; v < graph.order(); ++v) {
    examples.push_back({{v}, dist[v] != kUnreachable && dist[v] <= 1});
  }
  return examples;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  BenchTotalTimer bench_total(json, "fpt_scaling");
  std::printf("E1: Theorem 13 learner, runtime vs n "
              "(k=1, ℓ*=1, q*=1, r=1, ε=0.2 fixed)\n\n");
  Rng rng(2024);
  Table table({"family", "n", "train err", "time ms", "ratio"});

  struct FamilySpec {
    const char* name;
    Graph (*make)(int, Rng&);
  };
  auto make_path = [](int n, Rng&) { return MakePath(n); };
  auto make_tree = [](int n, Rng& r) { return MakeRandomTree(n, r); };
  auto make_grid = [](int n, Rng&) {
    int side = 1;
    while (side * side < n) ++side;
    return MakeGrid(side, side);
  };
  struct Entry {
    const char* name;
    Graph (*make)(int, Rng&);
  };
  Entry families[] = {{"path", +make_path},
                      {"random tree", +make_tree},
                      {"grid", +make_grid}};

  for (const Entry& family : families) {
    double previous = 0.0;
    for (int n : {100, 200, 400, 800}) {
      Graph graph = family.make(n, rng);
      TrainingSet examples = DistanceOneWorkload(graph, rng);
      NdLearnerOptions options;
      options.rank = 1;
      options.radius = 1;
      options.epsilon = 0.2;
      Stopwatch watch;
      NdLearnerResult result = LearnNowhereDense(graph, examples, options);
      double ms = watch.ElapsedMillis();
      table.AddRow({family.name, std::to_string(graph.order()),
                    FormatDouble(result.erm.training_error, 3),
                    FormatDouble(ms, 1),
                    previous > 0 ? FormatDouble(ms / previous, 2) : "-"});
      previous = ms;
    }
  }
  table.Print();
  std::printf(
      "\nn doubles each row; a bounded time ratio (near ~2 on paths/trees, "
      "a larger but\nstable constant on grids whose radius-R balls are "
      "quadratically bigger) is the\npoly(n+m) signature of Theorem 13 — "
      "exponential behaviour would blow the ratio up.\n");
  return 0;
}
