// E6 — Gaifman locality (Fact 5 / Corollary 6), measured:
//  (a) refinement: equal (q, r(q))-local types never split a global q-type
//      class (violations would falsify Fact 5 for our r(q));
//  (b) class counts: #local-type classes ≥ #global-type classes, both
//      bounded in n;
//  (c) cost: classifying a vertex via its local type beats global type
//      computation by orders of magnitude on large sparse graphs.

#include <cstdio>
#include <map>
#include <set>

#include "bench_json.h"
#include "graph/generators.h"
#include "types/type.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace folearn;

int main(int argc, char** argv) {
  BenchJsonWriter json(argc, argv);
  BenchTotalTimer bench_total(json, "locality");
  Rng rng(5150);
  const int q = 1;
  const int r = GaifmanRadius(q);
  std::printf("E6: Gaifman locality at q = %d, r(q) = %d\n\n", q, r);

  std::printf("E6a/b: refinement check + class counts (random coloured "
              "trees)\n\n");
  {
    Table table({"n", "global classes", "local classes", "violations"});
    for (int n : {20, 40, 80, 160}) {
      Graph graph = MakeRandomTree(n, rng);
      AddRandomColors(graph, {"Red"}, 0.4, rng);
      TypeRegistry registry(graph.vocabulary());
      std::map<TypeId, std::set<TypeId>> local_to_global;
      std::set<TypeId> global_classes;
      std::set<TypeId> local_classes;
      for (Vertex v = 0; v < graph.order(); ++v) {
        Vertex tuple[] = {v};
        TypeId global = ComputeType(graph, tuple, q, &registry);
        TypeId local = ComputeLocalType(graph, tuple, q, r, &registry);
        global_classes.insert(global);
        local_classes.insert(local);
        local_to_global[local].insert(global);
      }
      int violations = 0;
      for (const auto& [local, globals] : local_to_global) {
        if (globals.size() > 1) ++violations;
      }
      table.AddRow({std::to_string(n), std::to_string(global_classes.size()),
                    std::to_string(local_classes.size()),
                    std::to_string(violations)});
    }
    table.Print();
    std::printf("\n0 violations = Fact 5 holds: local (q, r(q))-types "
                "refine global q-types.\n\n");
  }

  std::printf("E6c: per-vertex classification cost, local vs global "
              "(bounded-degree graphs, q = 1)\n\n");
  {
    Table table({"n", "global ms/vertex", "local ms/vertex", "speedup"});
    for (int n : {200, 400, 800, 1600}) {
      Graph graph = MakeBoundedDegree(n, 4, 3 * n / 2, rng);
      AddRandomColors(graph, {"Red"}, 0.3, rng);
      const int probes = 20;
      TypeRegistry global_registry(graph.vocabulary());
      TypeComputer computer(graph, &global_registry);
      Stopwatch global_watch;
      for (int i = 0; i < probes; ++i) {
        Vertex tuple[] = {static_cast<Vertex>(i * (n / probes))};
        computer.Type(tuple, q);
      }
      double global_ms = global_watch.ElapsedMillis() / probes;

      TypeRegistry local_registry(graph.vocabulary());
      Stopwatch local_watch;
      for (int i = 0; i < probes; ++i) {
        Vertex tuple[] = {static_cast<Vertex>(i * (n / probes))};
        ComputeLocalType(graph, tuple, q, 2, &local_registry);
      }
      double local_ms = local_watch.ElapsedMillis() / probes;
      table.AddRow({std::to_string(n), FormatDouble(global_ms, 3),
                    FormatDouble(local_ms, 4),
                    FormatDouble(global_ms / std::max(local_ms, 1e-6), 1)});
    }
    table.Print();
    std::printf("\nLocal-type cost is flat in n (ball-sized); global-type "
                "cost grows with n —\nthe reason every learner in the paper "
                "works through Gaifman locality.\n");
  }
  return 0;
}
