// folearnd: the long-lived folearn daemon. Loads graphs once per session
// and serves learn / evaluate / query requests over a local stream socket
// with warm type registries, ball caches, and compiled-plan memos (see
// src/server/server.h for the protocol and concurrency model).
//
//   folearnd --socket /tmp/folearnd.sock [--max-inflight 8]
//            [--max-deadline-ms N] [--max-work N]
//            [--cache-bytes N] [--plan-cache-bytes N]
//            [--state-dir DIR] [--session-ttl-ms N]
//            [--dedup-window N] [--crash-at-journal-write N]
//
// With --state-dir, sessions and learned-model handles are journaled
// through the checkpoint envelope and recovered on restart; see
// src/server/session_store.h. --session-ttl-ms evicts idle sessions
// (journaled ones re-warm lazily on next use). --crash-at-journal-write
// is the chaos-test hook: die after the Nth completed journal write.
//
// SIGINT/SIGTERM stop the daemon gracefully: in-flight requests finish,
// connections drain, the socket file is removed. Exit codes follow the
// CLI conventions: 0 clean, 64 usage, 1 environment failure.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "server/server.h"
#include "util/status.h"

namespace folearn {
namespace {

Server* g_server = nullptr;

extern "C" void HandleTerminationSignal(int sig) {
  (void)sig;
  if (g_server != nullptr) g_server->Shutdown();  // one write(2): safe
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: folearnd --socket <path> [--max-inflight N]\n"
      "                [--max-deadline-ms N] [--max-work N]\n"
      "                [--cache-bytes N] [--plan-cache-bytes N]\n"
      "                [--eval vm|compiled] [--state-dir DIR]\n"
      "                [--session-ttl-ms N] [--dedup-window N]\n"
      "                [--crash-at-journal-write N]\n"
      "                [--mem-budget-bytes N] [--session-mem-bytes N]\n"
      "                [--mem-watchdog-ms N] [--max-session-models N]\n"
      "                [--journal-compact-bytes N] [--force-tier 0..3]\n"
      "\n"
      "Serves folearn learn/evaluate/query requests on a local socket.\n"
      "--eval picks the evaluation engine for evaluate/query (default\n"
      "vm: compiled plans lowered to bytecode; verdicts are identical in\n"
      "both modes).\n"
      "--max-inflight caps concurrently executing requests (excess is\n"
      "shed, not queued); --max-deadline-ms/--max-work cap per-request\n"
      "governor limits; --cache-bytes budgets each session's ball cache\n"
      "and --plan-cache-bytes the shared compiled-plan cache.\n"
      "--state-dir journals sessions/models for crash recovery;\n"
      "--session-ttl-ms evicts idle sessions (journaled ones re-warm\n"
      "lazily); --dedup-window bounds the per-session learn request-id\n"
      "window; --crash-at-journal-write is a fault-injection test hook.\n"
      "--mem-budget-bytes caps the daemon's memory: an RSS watchdog\n"
      "(--mem-watchdog-ms cadence) degrades service through pressure\n"
      "tiers (yellow: caches stop growing; red: idle warm state evicted;\n"
      "black: substantive requests shed retry-safe) instead of dying.\n"
      "--session-mem-bytes caps each session; an over-budget learn\n"
      "returns partial with run-status=resource-exhausted.\n"
      "--max-session-models/--journal-compact-bytes compact a session's\n"
      "journal by dropping its oldest model handles. --force-tier pins\n"
      "the pressure tier (testing).\n");
  return 64;
}

// Minimal --key value parser (same conventions as folearn_cli: each flag
// at most once, malformed numbers exit 64).
int64_t ParseInt64(const std::string& key, const std::string& value) {
  try {
    size_t pos = 0;
    int64_t parsed = std::stoll(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    std::fprintf(stderr, "invalid value '%s' for flag '--%s'\n",
                 value.c_str(), key.c_str());
    std::exit(64);
  }
}

int Main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.size() < 3 || key[0] != '-' || key[1] != '-') return Usage();
    if (!flags.emplace(key.substr(2), argv[i + 1]).second) {
      std::fprintf(stderr, "duplicate flag '%s'\n", key.c_str());
      return 64;
    }
  }
  if ((argc - 1) % 2 != 0) return Usage();
  for (const auto& [key, value] : flags) {
    (void)value;
    if (key != "socket" && key != "max-inflight" &&
        key != "max-deadline-ms" && key != "max-work" &&
        key != "cache-bytes" && key != "plan-cache-bytes" &&
        key != "eval" && key != "state-dir" && key != "session-ttl-ms" &&
        key != "dedup-window" && key != "crash-at-journal-write" &&
        key != "mem-budget-bytes" && key != "session-mem-bytes" &&
        key != "mem-watchdog-ms" && key != "max-session-models" &&
        key != "journal-compact-bytes" && key != "force-tier") {
      std::fprintf(stderr, "unknown flag '--%s'\n", key.c_str());
      return 64;
    }
  }
  if (flags.count("socket") == 0) return Usage();

  ServerOptions options;
  options.socket_path = flags["socket"];
  {
    // Catch over-long paths before they reach bind(2): sun_path would
    // silently truncate them.
    Status path_ok = ValidateSocketPath(options.socket_path);
    if (!path_ok.ok()) {
      std::fprintf(stderr, "folearnd: %s\n", path_ok.message().c_str());
      return 64;
    }
  }
  if (flags.count("state-dir") != 0) options.state_dir = flags["state-dir"];
  if (flags.count("max-inflight") != 0) {
    int64_t n = ParseInt64("max-inflight", flags["max-inflight"]);
    if (n < 1) {
      std::fprintf(stderr, "--max-inflight must be >= 1\n");
      return 64;
    }
    options.max_inflight = static_cast<int>(n);
  }
  if (flags.count("max-deadline-ms") != 0) {
    options.max_deadline_ms =
        ParseInt64("max-deadline-ms", flags["max-deadline-ms"]);
    if (options.max_deadline_ms < 0) {
      std::fprintf(stderr, "--max-deadline-ms must be >= 0\n");
      return 64;
    }
  }
  if (flags.count("max-work") != 0) {
    options.max_work = ParseInt64("max-work", flags["max-work"]);
    if (options.max_work <= 0) {
      std::fprintf(stderr, "--max-work must be positive\n");
      return 64;
    }
  }
  if (flags.count("cache-bytes") != 0) {
    options.ball_cache_bytes = ParseInt64("cache-bytes", flags["cache-bytes"]);
    if (options.ball_cache_bytes < 0) {
      std::fprintf(stderr, "--cache-bytes must be >= 0\n");
      return 64;
    }
  }
  if (flags.count("plan-cache-bytes") != 0) {
    options.plan_cache_bytes =
        ParseInt64("plan-cache-bytes", flags["plan-cache-bytes"]);
    if (options.plan_cache_bytes < 0) {
      std::fprintf(stderr, "--plan-cache-bytes must be >= 0\n");
      return 64;
    }
  }
  if (flags.count("session-ttl-ms") != 0) {
    options.session_ttl_ms =
        ParseInt64("session-ttl-ms", flags["session-ttl-ms"]);
    if (options.session_ttl_ms <= 0) {
      std::fprintf(stderr, "--session-ttl-ms must be positive\n");
      return 64;
    }
  }
  if (flags.count("dedup-window") != 0) {
    int64_t n = ParseInt64("dedup-window", flags["dedup-window"]);
    if (n < 1) {
      std::fprintf(stderr, "--dedup-window must be >= 1\n");
      return 64;
    }
    options.dedup_window = static_cast<int>(n);
  }
  if (flags.count("eval") != 0) {
    // The daemon's warm-evaluator architecture is built on the compiled
    // engines; the interpreter has no per-graph state worth keeping warm,
    // so it is not offered here (the CLI has it as the reference oracle).
    std::optional<EvalEngine> engine = ParseEvalEngine(flags["eval"]);
    if (!engine.has_value() || *engine == EvalEngine::kInterpreted) {
      std::fprintf(stderr, "--eval must be 'vm' or 'compiled', got '%s'\n",
                   flags["eval"].c_str());
      return 64;
    }
    options.eval_engine = *engine;
  }
  if (flags.count("crash-at-journal-write") != 0) {
    options.crash_at_journal_write =
        ParseInt64("crash-at-journal-write", flags["crash-at-journal-write"]);
  }
  if (flags.count("mem-budget-bytes") != 0) {
    options.mem_budget_bytes =
        ParseInt64("mem-budget-bytes", flags["mem-budget-bytes"]);
    if (options.mem_budget_bytes <= 0) {
      std::fprintf(stderr, "--mem-budget-bytes must be positive\n");
      return 64;
    }
  }
  if (flags.count("session-mem-bytes") != 0) {
    options.session_mem_bytes =
        ParseInt64("session-mem-bytes", flags["session-mem-bytes"]);
    if (options.session_mem_bytes <= 0) {
      std::fprintf(stderr, "--session-mem-bytes must be positive\n");
      return 64;
    }
  }
  if (flags.count("mem-watchdog-ms") != 0) {
    options.mem_watchdog_ms =
        ParseInt64("mem-watchdog-ms", flags["mem-watchdog-ms"]);
    if (options.mem_watchdog_ms < 1) {
      std::fprintf(stderr, "--mem-watchdog-ms must be >= 1\n");
      return 64;
    }
  }
  if (flags.count("max-session-models") != 0) {
    options.max_session_models =
        ParseInt64("max-session-models", flags["max-session-models"]);
    if (options.max_session_models < 1) {
      std::fprintf(stderr, "--max-session-models must be >= 1\n");
      return 64;
    }
  }
  if (flags.count("journal-compact-bytes") != 0) {
    options.journal_compact_bytes =
        ParseInt64("journal-compact-bytes", flags["journal-compact-bytes"]);
    if (options.journal_compact_bytes <= 0) {
      std::fprintf(stderr, "--journal-compact-bytes must be positive\n");
      return 64;
    }
  }
  if (flags.count("force-tier") != 0) {
    int64_t tier = ParseInt64("force-tier", flags["force-tier"]);
    if (tier < 0 || tier > 3) {
      std::fprintf(stderr,
                   "--force-tier must be 0 (green) .. 3 (black)\n");
      return 64;
    }
    options.force_tier = static_cast<int>(tier);
  }

  Server server(std::move(options));
  // Handlers go in before Start(): the socket file becomes visible (and
  // connectable) during Start(), so a supervisor may signal us the moment
  // it appears. Shutdown() before Serve() just makes Serve() return
  // immediately.
  g_server = &server;
  std::signal(SIGINT, HandleTerminationSignal);
  std::signal(SIGTERM, HandleTerminationSignal);
  std::signal(SIGPIPE, SIG_IGN);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "folearnd: %s\n", started.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "folearnd: listening on %s\n",
               server.socket_path().c_str());
  server.Serve();
  g_server = nullptr;
  std::fprintf(stderr, "folearnd: shut down cleanly\n");
  return 0;
}

}  // namespace
}  // namespace folearn

int main(int argc, char** argv) { return folearn::Main(argc, argv); }
